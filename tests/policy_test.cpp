// Tests for the policy layer helpers and the fixed-interval baselines
// (delay, batch, delay&batch).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "policy/baseline.hpp"
#include "policy/batch.hpp"
#include "policy/delay.hpp"
#include "policy/delay_batch.hpp"
#include "policy/policy.hpp"

namespace netmaster::policy {
namespace {

/// One day; a session at [100 s, 160 s); screen-off deferrable
/// activities at 10 s, 20 s and 200 s; one user-initiated transfer
/// inside the session.
UserTrace fixture() {
  UserTrace t;
  t.user = 1;
  t.num_days = 1;
  t.app_names = {"a"};
  t.sessions = {{seconds(100), seconds(160)}};
  t.usages = {{0, seconds(110), seconds(5)}};
  auto bg = [](TimeMs start) {
    NetworkActivity n;
    n.app = 0;
    n.start = start;
    n.duration = seconds(4);
    n.bytes_down = 1000;
    n.deferrable = true;
    return n;
  };
  NetworkActivity fg;
  fg.app = 0;
  fg.start = seconds(110);
  fg.duration = seconds(2);
  fg.bytes_down = 5000;
  fg.user_initiated = true;

  t.activities = {bg(seconds(10)), bg(seconds(20)), fg,
                  bg(seconds(200))};
  return t;
}

TimeMs start_of(const sim::PolicyOutcome& o, std::size_t activity) {
  for (const sim::ExecutedTransfer& tr : o.transfers) {
    if (tr.activity_index == activity) return tr.start;
  }
  ADD_FAILURE() << "activity " << activity << " not executed";
  return -1;
}

TEST(Helpers, IsDeferrableScreenOff) {
  const UserTrace t = fixture();
  EXPECT_TRUE(is_deferrable_screen_off(t, t.activities[0]));
  EXPECT_FALSE(is_deferrable_screen_off(t, t.activities[2]));  // fg
  NetworkActivity in_session = t.activities[0];
  in_session.start = seconds(120);
  EXPECT_FALSE(is_deferrable_screen_off(t, in_session));
}

TEST(Helpers, ClampRelease) {
  EXPECT_EQ(clamp_release(500, 100, 1000, 200), 500);
  EXPECT_EQ(clamp_release(100, 100, 1000, 200), 200);   // not before
  EXPECT_EQ(clamp_release(5000, 100, 1000, 200), 900);  // fits horizon
  EXPECT_THROW(clamp_release(0, 100, 1000, 950), Error);
  EXPECT_THROW(clamp_release(0, -1, 1000, 0), Error);
}

TEST(Helpers, ClampReleaseEdges) {
  // A duration longer than the whole horizon can never fit.
  EXPECT_THROW(clamp_release(0, 2000, 1000, 0), Error);
  EXPECT_THROW(clamp_release(0, 1001, 1000, 0), Error);
  // not_before past the horizon leaves no room even for zero work.
  EXPECT_THROW(clamp_release(0, 0, 1000, 1001), Error);
  // Exactly at the boundary still fits (half-open horizon arithmetic).
  EXPECT_EQ(clamp_release(1500, 0, 1000, 1000), 1000);
  EXPECT_EQ(clamp_release(0, 1000, 1000, 0), 0);
  // Zero-duration activities clamp into [not_before, horizon].
  EXPECT_EQ(clamp_release(500, 0, 1000, 200), 500);
  EXPECT_EQ(clamp_release(2000, 0, 1000, 200), 1000);
  EXPECT_EQ(clamp_release(-50, 0, 1000, 200), 200);
}

TEST(Helpers, DeferredDuration) {
  EXPECT_EQ(deferred_duration(6000),
            static_cast<DurationMs>(6000 / kDchSpeedup));
  EXPECT_EQ(deferred_duration(100), 500);  // floor
  EXPECT_EQ(deferred_duration(0), 500);
  EXPECT_THROW(deferred_duration(-1), Error);
}

TEST(Baseline, ExecutesEverythingInPlace) {
  const UserTrace t = fixture();
  const sim::PolicyOutcome o = BaselinePolicy().run(t);
  ASSERT_EQ(o.transfers.size(), t.activities.size());
  for (const sim::ExecutedTransfer& tr : o.transfers) {
    EXPECT_EQ(tr.start, t.activities[tr.activity_index].start);
    EXPECT_EQ(tr.duration, t.activities[tr.activity_index].duration);
  }
  EXPECT_TRUE(o.blocked.empty());
  EXPECT_EQ(o.interrupts, 0u);
  EXPECT_FALSE(o.radio_allowed.has_value());
}

TEST(Delay, QuantizesToWindowEnd) {
  const UserTrace t = fixture();
  const DelayPolicy policy(seconds(30));
  const sim::PolicyOutcome o = policy.run(t);
  EXPECT_EQ(start_of(o, 0), seconds(30));  // 10 s -> window end 30 s
  EXPECT_EQ(start_of(o, 1), seconds(30));  // 20 s -> same window
  EXPECT_EQ(start_of(o, 2), seconds(110));  // fg untouched
  EXPECT_EQ(start_of(o, 3), seconds(210));
  // Blocked windows cover the deferrals.
  EXPECT_TRUE(o.blocked.contains(seconds(15)));
  EXPECT_TRUE(o.blocked.contains(seconds(205)));
  EXPECT_FALSE(o.blocked.contains(seconds(110)));
  EXPECT_EQ(o.deferral_latency_s.size(), 3u);
}

TEST(Delay, DeferredTransfersSpeedUp) {
  const UserTrace t = fixture();
  const sim::PolicyOutcome o = DelayPolicy(seconds(30)).run(t);
  for (const sim::ExecutedTransfer& tr : o.transfers) {
    const NetworkActivity& act = t.activities[tr.activity_index];
    if (tr.start > act.start) {
      EXPECT_EQ(tr.duration, deferred_duration(act.duration));
    } else {
      EXPECT_EQ(tr.duration, act.duration);
    }
  }
}

TEST(Delay, NameAndValidation) {
  EXPECT_EQ(DelayPolicy(seconds(60)).name(), "delay(60s)");
  EXPECT_THROW(DelayPolicy(0), Error);
  EXPECT_THROW(DelayPolicy(-5), Error);
}

TEST(Batch, FlushesAtCount) {
  const UserTrace t = fixture();
  const BatchPolicy policy(2);
  const sim::PolicyOutcome o = policy.run(t);
  // Activities 0 and 1 flush together when the 2nd arrives (at 20 s).
  EXPECT_EQ(start_of(o, 0), seconds(20));
  EXPECT_EQ(start_of(o, 1), seconds(20));
}

TEST(Batch, FlushesAtHorizonWhenQueueUnderfull) {
  const UserTrace t = fixture();
  const BatchPolicy policy(5);
  const sim::PolicyOutcome o = policy.run(t);
  // The three bg activities never reach 5: 10 s/20 s flush at the
  // screen-on edge (100 s); 200 s flushes at the horizon.
  EXPECT_EQ(start_of(o, 0), seconds(100));
  EXPECT_EQ(start_of(o, 1), seconds(100));
  const TimeMs horizon = t.trace_end();
  EXPECT_EQ(start_of(o, 3),
            horizon - deferred_duration(t.activities[3].duration));
}

TEST(Batch, SizeOneIsBaselineForBackground) {
  const UserTrace t = fixture();
  const sim::PolicyOutcome o = BatchPolicy(1).run(t);
  for (const sim::ExecutedTransfer& tr : o.transfers) {
    EXPECT_EQ(tr.start, t.activities[tr.activity_index].start);
  }
  EXPECT_EQ(BatchPolicy(3).name(), "batch(3)");
}

TEST(DelayBatch, FlushesAtOldestDeadlineOrScreenOn) {
  const UserTrace t = fixture();
  const DelayBatchPolicy policy(seconds(30));
  const sim::PolicyOutcome o = policy.run(t);
  // Oldest (10 s) deadline 40 s: both queued activities release there.
  EXPECT_EQ(start_of(o, 0), seconds(40));
  EXPECT_EQ(start_of(o, 1), seconds(40));
  // The 200 s activity's deadline (230 s) precedes the horizon.
  EXPECT_EQ(start_of(o, 3), seconds(230));
  EXPECT_EQ(policy.name(), "delay&batch(30s)");
  EXPECT_THROW(DelayBatchPolicy(0), Error);
}

TEST(DelayBatch, ScreenOnPreemptsDeadline) {
  UserTrace t = fixture();
  // Move the background activity to 95 s: its 30 s deadline (125 s) is
  // after the session start (100 s), so the screen-on edge flushes it.
  t.activities[0].start = seconds(95);
  std::sort(t.activities.begin(), t.activities.end(),
            [](const NetworkActivity& a, const NetworkActivity& b) {
              return a.start < b.start;
            });
  const sim::PolicyOutcome o = DelayBatchPolicy(seconds(30)).run(t);
  bool found = false;
  for (const sim::ExecutedTransfer& tr : o.transfers) {
    const NetworkActivity& act = t.activities[tr.activity_index];
    if (act.start == seconds(95)) {
      EXPECT_EQ(tr.start, seconds(100));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AllFixedPolicies, ExecuteEveryActivityExactlyOnce) {
  const UserTrace t = fixture();
  const BaselinePolicy baseline;
  const DelayPolicy delay(seconds(20));
  const BatchPolicy batch(3);
  const DelayBatchPolicy db(seconds(20));
  for (const Policy* p :
       std::initializer_list<const Policy*>{&baseline, &delay, &batch,
                                            &db}) {
    const sim::PolicyOutcome o = p->run(t);
    ASSERT_EQ(o.transfers.size(), t.activities.size()) << p->name();
    std::vector<bool> seen(t.activities.size(), false);
    for (const sim::ExecutedTransfer& tr : o.transfers) {
      EXPECT_FALSE(seen[tr.activity_index]) << p->name();
      seen[tr.activity_index] = true;
    }
  }
}

}  // namespace
}  // namespace netmaster::policy
