// End-to-end multi-radio co-scheduling: NetMaster with Wi-Fi offload
// enabled assigns streaming transfers a radio as well as a time, the
// off switch stays bit-identical to the single-radio policy, and the
// multi-radio accountant closes the loop on the resulting outcome.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "policy/netmaster.hpp"
#include "sim/accounting.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster::policy {
namespace {

struct Traces {
  UserTrace training;
  UserTrace eval;
};

/// 14-day training + 7-day eval from the podcast commuter — bulk
/// episode downloads on a habitual schedule, the classic offload
/// candidate.
Traces make_traces(std::uint64_t seed = 42) {
  const auto profile =
      synth::make_user(synth::Archetype::kPodcastCommuter, 3);
  const UserTrace full = synth::generate_trace(profile, 21, seed);
  return {full.slice_days(0, 14), full.slice_days(14, 7)};
}

std::size_t count_wifi(const sim::PolicyOutcome& o) {
  std::size_t n = 0;
  for (const sim::ExecutedTransfer& t : o.transfers) {
    n += t.radio == RadioId::kWifi;
  }
  return n;
}

TEST(Multiradio, OffSwitchLeavesEverythingCellular) {
  const Traces tr = make_traces();
  NetMasterConfig cfg;  // enable_wifi_offload defaults to false
  const NetMasterPolicy policy(tr.training, cfg);
  const sim::PolicyOutcome o = policy.run(tr.eval);
  EXPECT_EQ(count_wifi(o), 0u);
  // With an all-cellular outcome the RadioSet accountant reproduces
  // the single-radio report bit for bit.
  const sim::SimReport single =
      sim::account(tr.eval, o, RadioModel::wcdma());
  const sim::SimReport multi = sim::account(tr.eval, o, RadioSet{});
  EXPECT_EQ(multi.energy_j, single.energy_j);
  EXPECT_EQ(multi.radio_on_ms, single.radio_on_ms);
  EXPECT_EQ(multi.wifi_transfer_count, 0u);
}

TEST(Multiradio, OffloadAssignsWifiAndSavesEnergy) {
  const Traces tr = make_traces();
  NetMasterConfig off;
  NetMasterConfig on = off;
  on.enable_wifi_offload = true;

  const sim::PolicyOutcome o_off =
      NetMasterPolicy(tr.training, off).run(tr.eval);
  const sim::PolicyOutcome o_on =
      NetMasterPolicy(tr.training, on).run(tr.eval);
  EXPECT_GT(count_wifi(o_on), 0u);

  // Every activity still executes exactly once, inside the horizon.
  ASSERT_EQ(o_on.transfers.size(), tr.eval.activities.size());
  std::vector<bool> seen(tr.eval.activities.size(), false);
  for (const sim::ExecutedTransfer& t : o_on.transfers) {
    ASSERT_LT(t.activity_index, seen.size());
    EXPECT_FALSE(seen[t.activity_index]);
    seen[t.activity_index] = true;
    EXPECT_GE(t.start, 0);
    EXPECT_LE(t.start + t.duration, tr.eval.trace_end());
    const NetworkActivity& act = tr.eval.activities[t.activity_index];
    if (act.user_initiated) {
      EXPECT_EQ(t.radio, RadioId::kCellular);
      EXPECT_EQ(t.start, act.start);
    }
    if (t.radio == RadioId::kWifi) {
      // Offloads run the same bytes at WLAN goodput: never slower
      // than the cellular execution they replace.
      EXPECT_LE(t.duration, std::max<DurationMs>(act.duration, 1));
      EXPECT_GE(t.start, act.start);  // offload defers, never prefetches
    }
  }

  // The radio-aware schedule beats the single-radio one on the same
  // trace under the same multi-radio accountant.
  const RadioSet radios;
  const sim::SimReport rep_off = sim::account(tr.eval, o_off, radios);
  const sim::SimReport rep_on = sim::account(tr.eval, o_on, radios);
  EXPECT_EQ(rep_on.wifi_transfer_count, count_wifi(o_on));
  EXPECT_GT(rep_on.wifi_energy_j, 0.0);
  EXPECT_LE(rep_on.energy_j, rep_off.energy_j);
  EXPECT_EQ(rep_on.bytes_down + rep_on.bytes_up,
            rep_off.bytes_down + rep_off.bytes_up);
}

TEST(Multiradio, StricterPresenceThresholdOffloadsNoMore) {
  const Traces tr = make_traces();
  NetMasterConfig loose;
  loose.enable_wifi_offload = true;
  loose.wifi_presence_delta = 0.55;
  NetMasterConfig strict = loose;
  strict.wifi_presence_delta = 1.0;  // only Pr == 1 hours qualify
  const std::size_t n_loose =
      count_wifi(NetMasterPolicy(tr.training, loose).run(tr.eval));
  const std::size_t n_strict =
      count_wifi(NetMasterPolicy(tr.training, strict).run(tr.eval));
  EXPECT_LE(n_strict, n_loose);
}

TEST(Multiradio, OffloadRequiresPrediction) {
  // Wi-Fi presence windows come from the habit model; with prediction
  // ablated there is nothing to predict presence from, so the offload
  // path stays dormant even when enabled.
  const Traces tr = make_traces();
  NetMasterConfig cfg;
  cfg.enable_wifi_offload = true;
  cfg.enable_prediction = false;
  const sim::PolicyOutcome o =
      NetMasterPolicy(tr.training, cfg).run(tr.eval);
  EXPECT_EQ(count_wifi(o), 0u);
}

TEST(Multiradio, ConfigValidation) {
  const Traces tr = make_traces();
  NetMasterConfig cfg;
  cfg.enable_wifi_offload = true;
  cfg.wifi_presence_delta = 1.5;
  EXPECT_THROW(NetMasterPolicy(tr.training, cfg), Error);
  cfg.wifi_presence_delta = -0.1;
  EXPECT_THROW(NetMasterPolicy(tr.training, cfg), Error);
  cfg = NetMasterConfig{};
  cfg.enable_wifi_offload = true;
  cfg.profit.wifi.assoc_ms = -5;  // invalid Wi-Fi model is rejected
  EXPECT_THROW(NetMasterPolicy(tr.training, cfg), Error);
}

}  // namespace
}  // namespace netmaster::policy
