// Tests for the portable networking layer (src/net/): virtual clocks,
// line transports (in-process and TCP loopback), and the netmasterd
// wire protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "net/clock.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"

namespace netmaster::net {
namespace {

// ---- Clocks. ---------------------------------------------------------

TEST(NetClock, SimClockAdvancesAndSleepIsInstant) {
  SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0);
  clock.advance_to_ns(1'000);
  EXPECT_EQ(clock.now_ns(), 1'000);
  clock.advance_to_ns(500);  // never goes backwards
  EXPECT_EQ(clock.now_ns(), 1'000);
  clock.sleep_for_ns(2'500);  // sleep == advance, returns immediately
  EXPECT_EQ(clock.now_ns(), 3'500);
  clock.sleep_until_ns(3'000);  // past deadline: no-op
  EXPECT_EQ(clock.now_ns(), 3'500);
}

TEST(NetClock, SimClockWaitBlocksUntilAdvanced) {
  SimClock clock;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.wait_until_ns(10'000);
    woke.store(true);
  });
  // The sleeper must not wake until the clock passes its deadline.
  clock.advance_to_ns(5'000);
  EXPECT_FALSE(woke.load());
  clock.advance_to_ns(10'000);
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(NetClock, RealClockIsMonotonic) {
  RealClock clock;
  const ClockNs a = clock.now_ns();
  clock.sleep_for_ns(1'000'000);  // 1 ms
  const ClockNs b = clock.now_ns();
  EXPECT_GE(b - a, 1'000'000);
}

// ---- In-process transport. -------------------------------------------

TEST(NetTransport, LineQueuePushPopAndClose) {
  LineQueue q(2);
  EXPECT_TRUE(q.push("a"));
  EXPECT_TRUE(q.push("b"));
  std::string line;
  EXPECT_TRUE(q.pop(line));
  EXPECT_EQ(line, "a");
  q.close();
  // Closed but not drained: the remaining line is still delivered.
  EXPECT_TRUE(q.pop(line));
  EXPECT_EQ(line, "b");
  EXPECT_FALSE(q.pop(line));
  EXPECT_FALSE(q.push("c"));
}

TEST(NetTransport, LineQueueBlocksWhenFullUntilPopped) {
  LineQueue q(1);
  ASSERT_TRUE(q.push("first"));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push("second");  // must block until the consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  std::string line;
  EXPECT_TRUE(q.pop(line));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_TRUE(q.pop(line));
  EXPECT_EQ(line, "second");
}

TEST(NetTransport, LocalListenerConnectAcceptRoundTrip) {
  LocalListener listener;
  std::unique_ptr<Connection> client = listener.connect();
  std::unique_ptr<Connection> server = listener.accept();
  ASSERT_TRUE(client && server);

  client->write_line("ping");
  std::string line;
  ASSERT_TRUE(server->read_line(line));
  EXPECT_EQ(line, "ping");
  server->write_line("pong");
  ASSERT_TRUE(client->read_line(line));
  EXPECT_EQ(line, "pong");

  client->close();
  EXPECT_FALSE(server->read_line(line));
}

TEST(NetTransport, ClosedLocalListenerUnblocksAcceptAndRejectsConnect) {
  LocalListener listener;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    listener.close();
  });
  EXPECT_EQ(listener.accept(), nullptr);
  closer.join();
  EXPECT_THROW(listener.connect(), Error);
}

// ---- TCP loopback transport. -----------------------------------------

TEST(NetTransport, TcpLoopbackLineRoundTrip) {
  SocketListener listener(0);  // ephemeral port
  ASSERT_GT(listener.port(), 0);

  std::thread server([&] {
    std::unique_ptr<Connection> conn = listener.accept();
    ASSERT_TRUE(conn);
    std::string line;
    while (conn->read_line(line)) {
      conn->write_line("echo " + line);
    }
    conn->close();
  });

  SocketConnection client(TcpStream::connect("127.0.0.1", listener.port()));
  client.write_line("hello");
  client.write_line("world");
  std::string line;
  ASSERT_TRUE(client.read_line(line));
  EXPECT_EQ(line, "echo hello");
  ASSERT_TRUE(client.read_line(line));
  EXPECT_EQ(line, "echo world");
  client.close();
  server.join();
  listener.close();
}

TEST(NetTransport, ClosingTcpConnectionUnblocksBlockedReader) {
  SocketListener listener(0);
  std::thread server([&] {
    std::unique_ptr<Connection> conn = listener.accept();
    ASSERT_TRUE(conn);
    std::string line;
    EXPECT_FALSE(conn->read_line(line));  // woken by the client close
  });

  auto client = std::make_shared<SocketConnection>(
      TcpStream::connect("127.0.0.1", listener.port()));
  std::thread reader([client] {
    std::string line;
    EXPECT_FALSE(client->read_line(line));
  });
  // Give the reader time to block in recv; close() from this thread
  // must wake it (shutdown-first teardown), not strand it forever.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  client->close();
  reader.join();
  server.join();
}

TEST(NetTransport, ClosingTcpListenerUnblocksAccept) {
  SocketListener listener(0);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    listener.close();
  });
  EXPECT_EQ(listener.accept(), nullptr);
  closer.join();
}

// ---- Protocol. -------------------------------------------------------

TEST(NetProtocol, ParsesUserRegistration) {
  Request req;
  std::string error;
  ASSERT_TRUE(parse_request("user 7 14 21 mail im video", req, error))
      << error;
  EXPECT_EQ(req.kind, RequestKind::kUser);
  EXPECT_EQ(req.user, 7);
  EXPECT_EQ(req.train_days, 14);
  EXPECT_EQ(req.num_days, 21);
  EXPECT_EQ(req.apps,
            (std::vector<std::string>{"mail", "im", "video"}));
}

TEST(NetProtocol, ParsesIngestVariants) {
  Request req;
  std::string error;
  ASSERT_TRUE(parse_request("ingest 3 screen-on 1000", req, error));
  EXPECT_EQ(req.kind, RequestKind::kIngest);
  EXPECT_EQ(req.record.kind, service::RecordKind::kScreenOn);
  EXPECT_EQ(req.record.time, 1000);

  ASSERT_TRUE(parse_request("ingest 3 screen-off 2000", req, error));
  EXPECT_EQ(req.record.kind, service::RecordKind::kScreenOff);

  ASSERT_TRUE(parse_request("ingest 3 app 1500 2 30000", req, error));
  EXPECT_EQ(req.record.kind, service::RecordKind::kAppForeground);
  EXPECT_EQ(req.record.app, 2);
  EXPECT_EQ(req.record.duration, 30000);

  ASSERT_TRUE(
      parse_request("ingest 3 net 1600 2 5000 1024 256 1 0", req, error));
  EXPECT_EQ(req.record.kind, service::RecordKind::kNetworkActivity);
  EXPECT_EQ(req.record.bytes_down, 1024);
  EXPECT_EQ(req.record.bytes_up, 256);
  EXPECT_TRUE(req.record.user_initiated);
  EXPECT_FALSE(req.record.deferrable);
}

TEST(NetProtocol, RejectsMalformedLines) {
  Request req;
  std::string error;
  const char* bad[] = {
      "",                               // empty
      "bogus 1",                        // unknown verb
      "user",                           // missing fields
      "user 1 13 21 mail",              // train_days not a multiple of 7
      "user 1 14 14 mail",              // num_days <= train_days
      "user 1 14 21",                   // no apps
      "ingest 1 screen-on",             // missing timestamp
      "ingest 1 screen-on xyz",         // non-numeric timestamp
      "ingest 1 app 5 2",               // missing duration
      "ingest 1 net 5 2 10 1 1 2 0",    // boolean out of range
      "ingest 1 warp 5",                // unknown record kind
      "get-schedule",                   // missing user
      "stats 3",                        // trailing junk
  };
  for (const char* line : bad) {
    error.clear();
    EXPECT_FALSE(parse_request(line, req, error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

TEST(NetProtocol, FormatParsesBackBitIdentical) {
  std::vector<Request> requests;
  {
    Request user;
    user.kind = RequestKind::kUser;
    user.user = 5;
    user.train_days = 14;
    user.num_days = 21;
    user.apps = {"mail", "im"};
    requests.push_back(user);
  }
  requests.push_back(make_screen_request(5, true, 123));
  requests.push_back(make_screen_request(5, false, 456));
  requests.push_back(make_app_request(5, 789, 1, 60000));
  requests.push_back(make_net_request(5, 900, 0, 5000, 4096, 128,
                                      false, true));
  {
    Request fin;
    fin.kind = RequestKind::kFinish;
    fin.user = 5;
    requests.push_back(fin);
  }
  for (RequestKind kind : {RequestKind::kGetSchedule, RequestKind::kStats,
                           RequestKind::kDrain, RequestKind::kShutdown}) {
    Request r;
    r.kind = kind;
    r.user = 5;
    requests.push_back(r);
  }

  for (const Request& original : requests) {
    const std::string line = format_request(original);
    Request parsed;
    std::string error;
    ASSERT_TRUE(parse_request(line, parsed, error))
        << line << ": " << error;
    EXPECT_EQ(parsed.kind, original.kind) << line;
    if (original.kind == RequestKind::kUser) {
      EXPECT_EQ(parsed.apps, original.apps);
      EXPECT_EQ(parsed.train_days, original.train_days);
      EXPECT_EQ(parsed.num_days, original.num_days);
    }
    if (original.kind == RequestKind::kIngest) {
      EXPECT_EQ(parsed.record, original.record) << line;
    }
    // A second round trip must be textually identical.
    EXPECT_EQ(format_request(parsed), line);
  }
}

TEST(NetProtocol, ResponseHelpers) {
  EXPECT_EQ(ok_response(), "ok");
  EXPECT_EQ(ok_response("drained"), "ok drained");
  EXPECT_EQ(err_response("nope"), "err nope");
}

}  // namespace
}  // namespace netmaster::net
