// Tests for eval::run_fleet: grid shape and addressing, aggregate
// consistency with the cells, agreement with the per-volunteer
// comparison path, and thread-count determinism.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "eval/experiments.hpp"
#include "eval/fleet.hpp"
#include "synth/presets.hpp"

namespace netmaster::eval {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.train_days = 7;
  cfg.eval_days = 3;
  cfg.seed = 42;
  return cfg;
}

std::vector<synth::UserProfile> small_fleet() {
  return {synth::make_user(synth::Archetype::kOfficeWorker, 1),
          synth::make_user(synth::Archetype::kNightOwl, 2),
          synth::make_user(synth::Archetype::kLightUser, 3)};
}

TEST(Fleet, GridShapeAndBaselineReference) {
  const ExperimentConfig cfg = small_config();
  const auto suite = standard_policy_suite(cfg.netmaster);
  const FleetReport report = run_fleet(small_fleet(), suite, cfg);

  ASSERT_EQ(report.num_users, 3u);
  ASSERT_EQ(report.num_policies, suite.size());
  ASSERT_EQ(report.cells.size(), report.num_users * report.num_policies);
  ASSERT_EQ(report.aggregates.size(), suite.size());

  for (std::size_t u = 0; u < report.num_users; ++u) {
    for (std::size_t p = 0; p < report.num_policies; ++p) {
      const FleetCell& cell = report.cell(u, p);
      EXPECT_EQ(cell.policy, suite[p].name);
      EXPECT_GT(cell.report.energy_j, 0.0);
    }
    // Policy 0 is the baseline: saving 0 against itself, radio-on
    // fraction exactly 1.
    const FleetCell& base = report.cell(u, 0);
    EXPECT_DOUBLE_EQ(base.energy_saving, 0.0);
    EXPECT_DOUBLE_EQ(base.radio_on_fraction, 1.0);
  }
}

TEST(Fleet, AggregatesFoldTheCells) {
  const ExperimentConfig cfg = small_config();
  const auto suite = standard_policy_suite(cfg.netmaster);
  const FleetReport report = run_fleet(small_fleet(), suite, cfg);

  for (std::size_t p = 0; p < report.num_policies; ++p) {
    const FleetAggregate& agg = report.aggregates[p];
    EXPECT_EQ(agg.policy, suite[p].name);
    EXPECT_EQ(agg.energy_saving.count(), report.num_users);
    double saving_sum = 0.0;
    double energy_sum = 0.0;
    for (std::size_t u = 0; u < report.num_users; ++u) {
      saving_sum += report.cell(u, p).energy_saving;
      energy_sum += report.cell(u, p).report.energy_j;
    }
    EXPECT_NEAR(agg.energy_saving.mean(),
                saving_sum / static_cast<double>(report.num_users), 1e-12);
    EXPECT_NEAR(agg.total_energy_j, energy_sum, 1e-9);
  }
}

TEST(Fleet, MatchesPerVolunteerComparison) {
  const ExperimentConfig cfg = small_config();
  const auto suite = standard_policy_suite(cfg.netmaster);
  const auto users = small_fleet();
  const FleetReport report = run_fleet(users, suite, cfg);

  // compare_policies runs the same suite in the same order (baseline,
  // oracle, netmaster, delay&batch 10/20/60) on the same traces.
  for (std::size_t u = 0; u < users.size(); ++u) {
    const VolunteerComparison comparison = compare_policies(users[u], cfg);
    ASSERT_EQ(comparison.rows.size(), suite.size());
    for (std::size_t p = 0; p < suite.size(); ++p) {
      EXPECT_DOUBLE_EQ(report.cell(u, p).report.energy_j,
                       comparison.rows[p].report.energy_j)
          << users[u].name << " / " << suite[p].name;
      EXPECT_DOUBLE_EQ(report.cell(u, p).energy_saving,
                       comparison.rows[p].energy_saving);
    }
  }
}

TEST(Fleet, DeterministicAcrossThreadCounts) {
  const ExperimentConfig cfg = small_config();
  const auto suite = standard_policy_suite(cfg.netmaster);
  const auto users = small_fleet();
  const FleetReport serial = run_fleet(users, suite, cfg, 1);
  const FleetReport threaded = run_fleet(users, suite, cfg, 4);

  ASSERT_EQ(serial.cells.size(), threaded.cells.size());
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    EXPECT_EQ(serial.cells[c].policy, threaded.cells[c].policy);
    EXPECT_EQ(serial.cells[c].report.energy_j,
              threaded.cells[c].report.energy_j);
    EXPECT_EQ(serial.cells[c].report.radio_on_ms,
              threaded.cells[c].report.radio_on_ms);
    EXPECT_EQ(serial.cells[c].energy_saving,
              threaded.cells[c].energy_saving);
  }
}

TEST(Fleet, FusedGraphMatchesStagedSessionAtEveryWorkerCount) {
  // The fused run_fleet path (one graph: trace_gen -> prepare -> cells
  // per user, no stage barrier) must be bit-identical to building the
  // session first and running the grid over it — at every worker count.
  const ExperimentConfig cfg = small_config();
  const auto suite = standard_policy_suite(cfg.netmaster);
  const auto users = small_fleet();
  const EvalSession session(users, cfg, 1);
  const FleetReport staged = run_fleet(session, suite, 1);

  for (const unsigned threads : {1u, 2u, 8u}) {
    const FleetReport fused = run_fleet(users, suite, cfg, threads);
    ASSERT_EQ(fused.cells.size(), staged.cells.size()) << threads;
    for (std::size_t c = 0; c < staged.cells.size(); ++c) {
      EXPECT_EQ(fused.cells[c].policy, staged.cells[c].policy);
      EXPECT_EQ(fused.cells[c].report.energy_j,
                staged.cells[c].report.energy_j)
          << "threads=" << threads << " cell=" << c;
      EXPECT_EQ(fused.cells[c].report.radio_on_ms,
                staged.cells[c].report.radio_on_ms);
      EXPECT_EQ(fused.cells[c].energy_saving,
                staged.cells[c].energy_saving);
      EXPECT_EQ(fused.cells[c].report.affected_usages,
                staged.cells[c].report.affected_usages);
    }
    ASSERT_EQ(fused.aggregates.size(), staged.aggregates.size());
    for (std::size_t p = 0; p < staged.aggregates.size(); ++p) {
      EXPECT_EQ(fused.aggregates[p].total_energy_j,
                staged.aggregates[p].total_energy_j);
    }
  }
}

TEST(Fleet, RejectsEmptyPolicySuite) {
  const ExperimentConfig cfg = small_config();
  EXPECT_THROW(run_fleet(small_fleet(), {}, cfg), Error);
}

TEST(Fleet, BoundsCheckedAtMatchesRawCell) {
  const ExperimentConfig cfg = small_config();
  const auto suite = standard_policy_suite(cfg.netmaster);
  const FleetReport report = run_fleet(small_fleet(), suite, cfg);

  for (std::size_t u = 0; u < report.num_users; ++u) {
    for (std::size_t p = 0; p < report.num_policies; ++p) {
      EXPECT_EQ(&report.at(u, p), &report.cell(u, p));
    }
  }
  EXPECT_THROW(report.at(report.num_users, 0), Error);
  EXPECT_THROW(report.at(0, report.num_policies), Error);

  // A truncated grid is caught even when the indexes look in-range.
  FleetReport truncated = report;
  truncated.cells.resize(truncated.cells.size() - 1);
  EXPECT_THROW(
      truncated.at(truncated.num_users - 1, truncated.num_policies - 1),
      Error);
}

TEST(Fleet, SessionIsReusableAcrossRuns) {
  const ExperimentConfig cfg = small_config();
  const auto suite = standard_policy_suite(cfg.netmaster);
  const EvalSession session(small_fleet(), cfg);

  ASSERT_EQ(session.num_users(), 3u);
  EXPECT_EQ(session.num_ok(), 3u);
  for (std::size_t u = 0; u < session.num_users(); ++u) {
    EXPECT_TRUE(session.ok(u));
    EXPECT_GT(session.baseline(u).energy_j, 0.0);
    EXPECT_EQ(session.index(u).trace().user, session.user_id(u));
  }

  // Two runs over the same session agree with the throwaway-session
  // entry point bit for bit — the cache changes cost, not results.
  const FleetReport fresh = run_fleet(small_fleet(), suite, cfg);
  const FleetReport first = run_fleet(session, suite);
  const FleetReport second = run_fleet(session, suite);
  ASSERT_EQ(first.cells.size(), fresh.cells.size());
  for (std::size_t c = 0; c < fresh.cells.size(); ++c) {
    EXPECT_EQ(first.cells[c].report.energy_j, fresh.cells[c].report.energy_j);
    EXPECT_EQ(first.cells[c].report.energy_j,
              second.cells[c].report.energy_j);
    EXPECT_EQ(first.cells[c].energy_saving, second.cells[c].energy_saving);
  }
}

TEST(Fleet, SlicePoliciesExtractsColumns) {
  const ExperimentConfig cfg = small_config();
  const auto suite = standard_policy_suite(cfg.netmaster);
  const EvalSession session(small_fleet(), cfg);
  const FleetReport report = run_fleet(session, suite);

  const FleetReport slice = slice_policies(session, report, 1, 2);
  ASSERT_EQ(slice.num_users, report.num_users);
  ASSERT_EQ(slice.num_policies, 2u);
  ASSERT_EQ(slice.aggregates.size(), 2u);
  EXPECT_EQ(slice.aggregates[0].policy, suite[1].name);
  EXPECT_EQ(slice.aggregates[1].policy, suite[2].name);
  for (std::size_t u = 0; u < slice.num_users; ++u) {
    for (std::size_t p = 0; p < 2u; ++p) {
      EXPECT_EQ(slice.at(u, p).report.energy_j,
                report.at(u, p + 1).report.energy_j);
    }
  }
  // Aggregates of a slice fold exactly the sliced columns.
  EXPECT_NEAR(slice.aggregates[0].energy_saving.mean(),
              report.aggregates[1].energy_saving.mean(), 1e-12);
  EXPECT_THROW(slice_policies(session, report, 0, 0), Error);
  EXPECT_THROW(slice_policies(session, report, 5, 2), Error);
}

}  // namespace
}  // namespace netmaster::eval
