// Tests for eval::run_fleet: grid shape and addressing, aggregate
// consistency with the cells, agreement with the per-volunteer
// comparison path, and thread-count determinism.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "eval/fleet.hpp"
#include "synth/presets.hpp"

namespace netmaster::eval {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.train_days = 7;
  cfg.eval_days = 3;
  cfg.seed = 42;
  return cfg;
}

std::vector<synth::UserProfile> small_fleet() {
  return {synth::make_user(synth::Archetype::kOfficeWorker, 1),
          synth::make_user(synth::Archetype::kNightOwl, 2),
          synth::make_user(synth::Archetype::kLightUser, 3)};
}

TEST(Fleet, GridShapeAndBaselineReference) {
  const ExperimentConfig cfg = small_config();
  const auto suite = standard_policy_suite(cfg.netmaster);
  const FleetReport report = run_fleet(small_fleet(), suite, cfg);

  ASSERT_EQ(report.num_users, 3u);
  ASSERT_EQ(report.num_policies, suite.size());
  ASSERT_EQ(report.cells.size(), report.num_users * report.num_policies);
  ASSERT_EQ(report.aggregates.size(), suite.size());

  for (std::size_t u = 0; u < report.num_users; ++u) {
    for (std::size_t p = 0; p < report.num_policies; ++p) {
      const FleetCell& cell = report.cell(u, p);
      EXPECT_EQ(cell.policy, suite[p].name);
      EXPECT_GT(cell.report.energy_j, 0.0);
    }
    // Policy 0 is the baseline: saving 0 against itself, radio-on
    // fraction exactly 1.
    const FleetCell& base = report.cell(u, 0);
    EXPECT_DOUBLE_EQ(base.energy_saving, 0.0);
    EXPECT_DOUBLE_EQ(base.radio_on_fraction, 1.0);
  }
}

TEST(Fleet, AggregatesFoldTheCells) {
  const ExperimentConfig cfg = small_config();
  const auto suite = standard_policy_suite(cfg.netmaster);
  const FleetReport report = run_fleet(small_fleet(), suite, cfg);

  for (std::size_t p = 0; p < report.num_policies; ++p) {
    const FleetAggregate& agg = report.aggregates[p];
    EXPECT_EQ(agg.policy, suite[p].name);
    EXPECT_EQ(agg.energy_saving.count(), report.num_users);
    double saving_sum = 0.0;
    double energy_sum = 0.0;
    for (std::size_t u = 0; u < report.num_users; ++u) {
      saving_sum += report.cell(u, p).energy_saving;
      energy_sum += report.cell(u, p).report.energy_j;
    }
    EXPECT_NEAR(agg.energy_saving.mean(),
                saving_sum / static_cast<double>(report.num_users), 1e-12);
    EXPECT_NEAR(agg.total_energy_j, energy_sum, 1e-9);
  }
}

TEST(Fleet, MatchesPerVolunteerComparison) {
  const ExperimentConfig cfg = small_config();
  const auto suite = standard_policy_suite(cfg.netmaster);
  const auto users = small_fleet();
  const FleetReport report = run_fleet(users, suite, cfg);

  // compare_policies runs the same suite in the same order (baseline,
  // oracle, netmaster, delay&batch 10/20/60) on the same traces.
  for (std::size_t u = 0; u < users.size(); ++u) {
    const VolunteerComparison comparison = compare_policies(users[u], cfg);
    ASSERT_EQ(comparison.rows.size(), suite.size());
    for (std::size_t p = 0; p < suite.size(); ++p) {
      EXPECT_DOUBLE_EQ(report.cell(u, p).report.energy_j,
                       comparison.rows[p].report.energy_j)
          << users[u].name << " / " << suite[p].name;
      EXPECT_DOUBLE_EQ(report.cell(u, p).energy_saving,
                       comparison.rows[p].energy_saving);
    }
  }
}

TEST(Fleet, DeterministicAcrossThreadCounts) {
  const ExperimentConfig cfg = small_config();
  const auto suite = standard_policy_suite(cfg.netmaster);
  const auto users = small_fleet();
  const FleetReport serial = run_fleet(users, suite, cfg, 1);
  const FleetReport threaded = run_fleet(users, suite, cfg, 4);

  ASSERT_EQ(serial.cells.size(), threaded.cells.size());
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    EXPECT_EQ(serial.cells[c].policy, threaded.cells[c].policy);
    EXPECT_EQ(serial.cells[c].report.energy_j,
              threaded.cells[c].report.energy_j);
    EXPECT_EQ(serial.cells[c].report.radio_on_ms,
              threaded.cells[c].report.radio_on_ms);
    EXPECT_EQ(serial.cells[c].energy_saving,
              threaded.cells[c].energy_saving);
  }
}

TEST(Fleet, RejectsEmptyPolicySuite) {
  const ExperimentConfig cfg = small_config();
  EXPECT_THROW(run_fleet(small_fleet(), {}, cfg), Error);
}

}  // namespace
}  // namespace netmaster::eval
