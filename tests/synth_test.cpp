// Tests for the synthetic workload generator and the preset
// populations (the paper's study/volunteer substitutes).
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "mining/pearson.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"

namespace netmaster::synth {
namespace {

TEST(Generator, DeterministicForSameSeed) {
  const UserProfile user = make_user(Archetype::kOfficeWorker, 1);
  const UserTrace a = generate_trace(user, 3, 99);
  const UserTrace b = generate_trace(user, 3, 99);
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.usages, b.usages);
  EXPECT_EQ(a.activities, b.activities);
}

TEST(Generator, DifferentSeedsDiffer) {
  const UserProfile user = make_user(Archetype::kOfficeWorker, 1);
  const UserTrace a = generate_trace(user, 3, 1);
  const UserTrace b = generate_trace(user, 3, 2);
  EXPECT_NE(a.activities, b.activities);
}

TEST(Generator, ProducesValidTraces) {
  for (const UserProfile& user : study_population()) {
    const UserTrace t = generate_trace(user, 7, 7);
    EXPECT_NO_THROW(t.validate());
    EXPECT_FALSE(t.sessions.empty()) << user.name;
    EXPECT_FALSE(t.activities.empty()) << user.name;
  }
}

TEST(Generator, RejectsBadInputs) {
  UserProfile user = make_user(Archetype::kLightUser, 1);
  EXPECT_THROW(generate_trace(user, 0, 1), Error);
  user.apps.clear();
  EXPECT_THROW(generate_trace(user, 1, 1), Error);
}

TEST(Generator, GeneratedTraceSerializes) {
  const UserTrace t =
      generate_trace(make_user(Archetype::kStudent, 2), 2, 5);
  std::stringstream ss;
  write_trace(ss, t);
  const UserTrace back = read_trace(ss);
  EXPECT_EQ(back.activities, t.activities);
  EXPECT_EQ(back.sessions, t.sessions);
  EXPECT_EQ(back.usages, t.usages);
}

TEST(Presets, StandardPopulationHas23Apps) {
  const auto apps = standard_app_population();
  EXPECT_EQ(apps.size(), 23u);
  // The dominant messenger leads the weights.
  for (std::size_t i = 1; i < apps.size(); ++i) {
    EXPECT_GE(apps[0].usage_weight, apps[i].usage_weight);
  }
}

TEST(Presets, StudyPopulationIdsAndDistinctness) {
  const auto users = study_population();
  ASSERT_EQ(users.size(), 8u);
  for (std::size_t i = 0; i < users.size(); ++i) {
    EXPECT_EQ(users[i].id, static_cast<UserId>(i + 1));
    for (std::size_t j = i + 1; j < users.size(); ++j) {
      EXPECT_NE(users[i].name, users[j].name);
    }
  }
}

TEST(Presets, VolunteersAreThree) {
  EXPECT_EQ(volunteer_population().size(), 3u);
}

TEST(Presets, KeepOnlyZeroesWeightAndSync) {
  // The light user keeps only 5 apps; everything else must have no
  // launches and no background syncs.
  const UserProfile user = make_user(Archetype::kLightUser, 8);
  int active = 0;
  for (const AppProfile& app : user.apps) {
    if (app.usage_weight > 0.0) ++active;
    if (app.usage_weight == 0.0) {
      EXPECT_EQ(app.sync_style, SyncStyle::kNone) << app.name;
    }
  }
  EXPECT_EQ(active, 5);
}

TEST(PopulationStats, ScreenOffFractionInPaperBand) {
  // Fig. 1a target: ~41% of activities screen-off; accept a generous
  // band since this is a stochastic aggregate.
  const TraceSet traces =
      generate_population(study_population(), 14, 42);
  double sum = 0.0;
  for (const UserTrace& t : traces.users) {
    sum += traffic_split(t).screen_off_activity_fraction();
  }
  const double avg = sum / traces.users.size();
  EXPECT_GT(avg, 0.30);
  EXPECT_LT(avg, 0.60);
}

TEST(PopulationStats, TransferRatePercentilesMatchFig1b) {
  const TraceSet traces =
      generate_population(study_population(), 14, 42);
  std::vector<double> on, off;
  for (const UserTrace& t : traces.users) {
    const RateSamples s = transfer_rate_samples(t);
    on.insert(on.end(), s.screen_on_kbps.begin(), s.screen_on_kbps.end());
    off.insert(off.end(), s.screen_off_kbps.begin(),
               s.screen_off_kbps.end());
  }
  EXPECT_LT(percentile(off, 0.9), 1.2);  // paper: 90% below 1 kB/s
  EXPECT_LT(percentile(on, 0.9), 5.5);   // paper: 90% below 5 kB/s
  EXPECT_GT(percentile(on, 0.5), percentile(off, 0.5));
}

TEST(PopulationStats, ScreenUtilizationInPaperBand) {
  const TraceSet traces =
      generate_population(study_population(), 14, 42);
  double sum = 0.0;
  for (const UserTrace& t : traces.users) {
    sum += screen_utilization(t).radio_utilization;
  }
  const double avg = sum / traces.users.size();
  EXPECT_GT(avg, 0.25);  // paper: 45.14%
  EXPECT_LT(avg, 0.60);
}

TEST(PopulationStats, IntraUserBeatsCrossUserCorrelation) {
  // The paper's central motivation: per-user day-to-day correlation is
  // far higher than cross-user correlation.
  const TraceSet traces =
      generate_population(study_population(), 14, 42);
  const double cross =
      mining::cross_user_matrix(traces).off_diagonal_mean();
  double intra = 0.0;
  for (const UserTrace& t : traces.users) {
    intra += mining::cross_day_matrix(t, t.num_days).off_diagonal_mean();
  }
  intra /= traces.users.size();
  EXPECT_LT(cross, 0.30);
  EXPECT_GT(intra, 0.30);
  EXPECT_GT(intra, cross + 0.15);
}

TEST(PopulationStats, Fig5SubjectUsesEightApps) {
  const auto users = study_population();
  const UserTrace t = generate_trace(users[2], 7, 42);  // user 3
  EXPECT_EQ(active_networked_app_count(t), 8u);
  // Dominant messenger share near the paper's 59%.
  const auto counts = per_app_usage_counts(t);
  std::size_t total = 0;
  for (auto c : counts) total += c;
  const double share = static_cast<double>(counts[0]) / total;
  EXPECT_GT(share, 0.45);
  EXPECT_LT(share, 0.72);
}

TEST(Generator, BackgroundOnlyAppStillSyncs) {
  // An app with zero usage weight but a sync config emits background
  // traffic (installed-but-unused apps sync — the paper's motivation).
  UserProfile user = make_user(Archetype::kOfficeWorker, 1);
  for (auto& app : user.apps) {
    app.usage_weight = 0.0;
    app.sync_style = SyncStyle::kNone;
  }
  user.apps[0].usage_weight = 1.0;  // one launchable app keeps pick_app sane
  user.apps[7].sync_style = SyncStyle::kPeriodic;
  user.apps[7].sync_interval_ms = 30 * kMsPerMinute;
  const UserTrace t = generate_trace(user, 2, 3);
  bool saw_email = false;
  for (const NetworkActivity& n : t.activities) {
    if (n.app == 7) {
      saw_email = true;
      EXPECT_TRUE(n.deferrable);
      EXPECT_FALSE(n.user_initiated);
    }
  }
  EXPECT_TRUE(saw_email);
}

TEST(Generator, PresenceDropoutSpreadsHourlyProbability) {
  // With dropout, the fraction of days a mid-intensity hour is used
  // must sit strictly between 0 and 1 for a decent share of hours.
  UserProfile user = make_user(Archetype::kOfficeWorker, 1);
  const UserTrace t = generate_trace(user, 28, 11);
  int fractional_hours = 0;
  for (int hour = 0; hour < kHoursPerDay; ++hour) {
    int used_days = 0;
    std::vector<bool> day_used(t.num_days, false);
    for (const AppUsage& u : t.usages) {
      if (hour_of(u.time) == hour) day_used[day_of(u.time)] = true;
    }
    for (bool b : day_used) used_days += b ? 1 : 0;
    const double pr = static_cast<double>(used_days) / t.num_days;
    if (pr > 0.1 && pr < 0.9) ++fractional_hours;
  }
  EXPECT_GE(fractional_hours, 4);
}

}  // namespace
}  // namespace netmaster::synth
