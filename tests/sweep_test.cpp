// Golden-figure equivalence for the unified eval pipeline: each §VI
// runner migrated onto EvalSession + the generic sweep driver must
// reproduce the pre-refactor (seed) runner's numbers bit for bit at
// every thread count, and a poisoned volunteer must surface as
// FleetFailure rows instead of aborting a sweep.
//
// The `legacy_*` helpers below are faithful copies of the seed
// runners' replay loops (per-profile shared state, hand-rolled
// accumulation in user order); they are the reference the fleet-backed
// runners are held to.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "engine/trace_index.hpp"
#include "eval/experiments.hpp"
#include "eval/fleet.hpp"
#include "eval/session.hpp"
#include "eval/sweep.hpp"
#include "mining/habits.hpp"
#include "policy/baseline.hpp"
#include "policy/batch.hpp"
#include "policy/delay.hpp"
#include "policy/delay_batch.hpp"
#include "policy/netmaster.hpp"
#include "policy/oracle.hpp"
#include "sched/solver.hpp"
#include "synth/presets.hpp"

namespace netmaster::eval {
namespace {

ExperimentConfig golden_config() {
  ExperimentConfig cfg;
  cfg.train_days = 7;
  cfg.eval_days = 2;
  cfg.seed = 42;
  return cfg;
}

std::vector<synth::UserProfile> golden_profiles() {
  return {synth::make_user(synth::Archetype::kOfficeWorker, 1),
          synth::make_user(synth::Archetype::kNightOwl, 2),
          synth::make_user(synth::Archetype::kLightUser, 3)};
}

// ---- Seed-runner reference implementations. --------------------------

struct LegacyShared {
  std::vector<VolunteerTraces> traces;
  std::vector<std::unique_ptr<engine::TraceIndex>> index;
  std::vector<sim::SimReport> baseline;
};

LegacyShared legacy_prepare(const std::vector<synth::UserProfile>& profiles,
                            const ExperimentConfig& config) {
  LegacyShared shared;
  const std::size_t n = profiles.size();
  shared.traces.resize(n);
  shared.index.resize(n);
  shared.baseline.resize(n);
  const RadioModel& radio = config.netmaster.profit.radio;
  for (std::size_t i = 0; i < n; ++i) {
    shared.traces[i] = make_traces(profiles[i], config);
    shared.index[i] =
        std::make_unique<engine::TraceIndex>(shared.traces[i].eval);
    const policy::BaselinePolicy baseline;
    shared.baseline[i] = sim::account(shared.traces[i].eval,
                                      baseline.run(*shared.index[i]), radio);
  }
  return shared;
}

template <typename MakePolicy>
SweepPoint legacy_sweep_point(double x, const LegacyShared& shared,
                              const ExperimentConfig& config,
                              MakePolicy&& make_policy) {
  SweepPoint point;
  point.x = x;
  const RadioModel& radio = config.netmaster.profit.radio;
  for (std::size_t i = 0; i < shared.index.size(); ++i) {
    const sim::SimReport& base = shared.baseline[i];
    const auto p = make_policy();
    const sim::SimReport rep = sim::account(
        shared.traces[i].eval, p->run(*shared.index[i]), radio);
    if (base.energy_j > 0.0) {
      point.energy_saving += 1.0 - rep.energy_j / base.energy_j;
    }
    if (base.radio_on_ms > 0) {
      point.radio_on_reduction +=
          1.0 - static_cast<double>(rep.radio_on_ms) /
                    static_cast<double>(base.radio_on_ms);
    }
    if (base.avg_down_rate_kbps > 0.0) {
      point.bandwidth_increase +=
          rep.avg_down_rate_kbps / base.avg_down_rate_kbps - 1.0;
    }
    point.affected_fraction += rep.affected_fraction;
  }
  const auto n = static_cast<double>(shared.index.size());
  point.energy_saving /= n;
  point.radio_on_reduction /= n;
  point.bandwidth_increase /= n;
  point.affected_fraction /= n;
  return point;
}

std::vector<SweepPoint> legacy_delay_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<double>& delays_s, const ExperimentConfig& config) {
  const LegacyShared shared = legacy_prepare(profiles, config);
  std::vector<SweepPoint> points(delays_s.size());
  for (std::size_t i = 0; i < delays_s.size(); ++i) {
    const double d = delays_s[i];
    if (d <= 0.0) {
      points[i] = legacy_sweep_point(d, shared, config, [] {
        return std::make_unique<policy::BaselinePolicy>();
      });
    } else {
      points[i] = legacy_sweep_point(d, shared, config, [d] {
        return std::make_unique<policy::DelayPolicy>(seconds(d));
      });
    }
  }
  return points;
}

std::vector<SweepPoint> legacy_batch_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<std::size_t>& sizes, const ExperimentConfig& config) {
  const LegacyShared shared = legacy_prepare(profiles, config);
  std::vector<SweepPoint> points(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    points[i] =
        legacy_sweep_point(static_cast<double>(n), shared, config, [n] {
          return std::make_unique<policy::BatchPolicy>(n);
        });
  }
  return points;
}

std::vector<ThresholdPoint> legacy_threshold_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<double>& deltas, const ExperimentConfig& config) {
  const LegacyShared shared = legacy_prepare(profiles, config);
  const RadioModel& radio = config.netmaster.profit.radio;

  std::vector<sim::SimReport> oracle_reports(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const policy::OraclePolicy oracle(config.netmaster.profit);
    oracle_reports[i] = sim::account(shared.traces[i].eval,
                                     oracle.run(*shared.index[i]), radio);
  }

  std::vector<ThresholdPoint> points(deltas.size());
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    ThresholdPoint point;
    point.delta = deltas[i];
    for (std::size_t u = 0; u < profiles.size(); ++u) {
      const VolunteerTraces& traces = shared.traces[u];
      policy::NetMasterConfig nm = config.netmaster;
      nm.predictor.delta_weekday = deltas[i];
      nm.predictor.delta_weekend = deltas[i];
      nm.slot_powered_radio = true;
      const policy::NetMasterPolicy netmaster(traces.training, nm);
      point.accuracy +=
          mining::prediction_accuracy(netmaster.predictor(), traces.eval);

      const sim::SimReport& base = shared.baseline[u];
      const sim::SimReport rep = sim::account(
          traces.eval, netmaster.run(*shared.index[u]), radio);
      const sim::SimReport& orep = oracle_reports[u];
      const double saving = base.energy_j - rep.energy_j;
      const double oracle_saving = base.energy_j - orep.energy_j;
      if (oracle_saving > 0.0) {
        point.energy_saving += std::max(saving, 0.0) / oracle_saving;
      }
    }
    const auto n = static_cast<double>(profiles.size());
    point.accuracy /= n;
    point.energy_saving /= n;
    points[i] = point;
  }
  return points;
}

std::vector<AblationRow> legacy_ablation_study(
    const std::vector<synth::UserProfile>& profiles,
    const ExperimentConfig& config) {
  struct Variant {
    const char* name;
    bool prediction, duty, special;
  };
  const Variant variants[] = {
      {"full", true, true, true},
      {"no-prediction", false, true, true},
      {"no-duty-cycle", true, false, true},
      {"no-special-apps", true, true, false},
  };
  const LegacyShared shared = legacy_prepare(profiles, config);
  const RadioModel& radio = config.netmaster.profit.radio;

  std::vector<AblationRow> rows(std::size(variants));
  for (std::size_t v = 0; v < std::size(variants); ++v) {
    const Variant& variant = variants[v];
    AblationRow row;
    row.variant = variant.name;
    for (std::size_t u = 0; u < profiles.size(); ++u) {
      const VolunteerTraces& traces = shared.traces[u];
      policy::NetMasterConfig nm = config.netmaster;
      nm.enable_prediction = variant.prediction;
      nm.enable_duty = variant.duty;
      nm.enable_special_apps = variant.special;
      const policy::NetMasterPolicy p(traces.training, nm);
      const sim::SimReport& base = shared.baseline[u];
      const sim::SimReport rep = sim::account(
          traces.eval, p.run(*shared.index[u]), radio);
      if (base.energy_j > 0.0) {
        row.energy_saving += 1.0 - rep.energy_j / base.energy_j;
      }
      row.affected_fraction += rep.affected_fraction;
      row.mean_deferral_latency_s += rep.mean_deferral_latency_s;
      row.wake_count += static_cast<double>(rep.wake_count);
    }
    const auto n = static_cast<double>(profiles.size());
    row.energy_saving /= n;
    row.affected_fraction /= n;
    row.mean_deferral_latency_s /= n;
    row.wake_count /= n;
    rows[v] = row;
  }
  return rows;
}

/// Seed compare_policies: per-volunteer bespoke replay loop over the
/// hard-coded roster (baseline, oracle, NetMaster, delay&batch
/// 10/20/60 s).
VolunteerComparison legacy_compare_policies(
    const synth::UserProfile& profile, const ExperimentConfig& config) {
  const VolunteerTraces traces = make_traces(profile, config);
  const engine::TraceIndex index(traces.eval);
  const RadioModel& radio = config.netmaster.profit.radio;

  VolunteerComparison result;
  result.user = profile.id;
  result.profile_name = profile.name;
  const policy::BaselinePolicy baseline;
  result.baseline = sim::account(traces.eval, baseline.run(index), radio);

  auto make_row = [&](const policy::Policy& p) {
    ComparisonRow row;
    row.policy = p.name();
    row.report = sim::account(traces.eval, p.run(index), radio);
    if (result.baseline.energy_j > 0.0) {
      row.energy_saving =
          1.0 - row.report.energy_j / result.baseline.energy_j;
    }
    if (result.baseline.radio_on_ms > 0) {
      row.radio_on_fraction =
          static_cast<double>(row.report.radio_on_ms) /
          static_cast<double>(result.baseline.radio_on_ms);
    }
    auto ratio = [](double v, double base) {
      return base > 0.0 ? v / base : 0.0;
    };
    row.down_rate_ratio = ratio(row.report.avg_down_rate_kbps,
                                result.baseline.avg_down_rate_kbps);
    row.up_rate_ratio = ratio(row.report.avg_up_rate_kbps,
                              result.baseline.avg_up_rate_kbps);
    row.peak_down_ratio = ratio(row.report.peak_down_rate_kbps,
                                result.baseline.peak_down_rate_kbps);
    row.peak_up_ratio = ratio(row.report.peak_up_rate_kbps,
                              result.baseline.peak_up_rate_kbps);
    return row;
  };

  result.rows.push_back(make_row(baseline));
  result.rows.push_back(
      make_row(policy::OraclePolicy(config.netmaster.profit)));
  result.rows.push_back(
      make_row(policy::NetMasterPolicy(traces.training, config.netmaster)));
  for (const double d : {10.0, 20.0, 60.0}) {
    result.rows.push_back(make_row(policy::DelayBatchPolicy(seconds(d))));
  }
  return result;
}

void expect_points_identical(const std::vector<SweepPoint>& got,
                             const std::vector<SweepPoint>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].x, want[i].x) << "point " << i;
    EXPECT_EQ(got[i].energy_saving, want[i].energy_saving) << "point " << i;
    EXPECT_EQ(got[i].radio_on_reduction, want[i].radio_on_reduction)
        << "point " << i;
    EXPECT_EQ(got[i].bandwidth_increase, want[i].bandwidth_increase)
        << "point " << i;
    EXPECT_EQ(got[i].affected_fraction, want[i].affected_fraction)
        << "point " << i;
  }
}

// ---- Golden equivalence, serial and threaded. ------------------------

TEST(GoldenFigures, DelaySweepMatchesSeedRunnerBitForBit) {
  const ExperimentConfig cfg = golden_config();
  const auto profiles = golden_profiles();
  const std::vector<double> delays = {0.0, 10.0, 60.0, 300.0};

  const auto want = legacy_delay_sweep(profiles, delays, cfg);
  expect_points_identical(delay_sweep(profiles, delays, cfg, 1), want);
  expect_points_identical(delay_sweep(profiles, delays, cfg), want);

  const EvalSession session(profiles, cfg);
  expect_points_identical(delay_sweep(session, delays, 1), want);
  expect_points_identical(delay_sweep(session, delays), want);
}

TEST(GoldenFigures, BatchSweepMatchesSeedRunnerBitForBit) {
  const ExperimentConfig cfg = golden_config();
  const auto profiles = golden_profiles();
  const std::vector<std::size_t> sizes = {0, 1, 3, 5};

  const auto want = legacy_batch_sweep(profiles, sizes, cfg);
  expect_points_identical(batch_sweep(profiles, sizes, cfg, 1), want);
  expect_points_identical(batch_sweep(profiles, sizes, cfg), want);
}

TEST(GoldenFigures, ThresholdSweepMatchesSeedRunnerBitForBit) {
  const ExperimentConfig cfg = golden_config();
  const auto profiles = golden_profiles();
  const std::vector<double> deltas = {0.1, 0.3};

  const auto want = legacy_threshold_sweep(profiles, deltas, cfg);
  for (const unsigned threads : {1u, 0u}) {
    const auto got = threshold_sweep(profiles, deltas, cfg, threads);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].delta, want[i].delta);
      EXPECT_EQ(got[i].accuracy, want[i].accuracy);
      EXPECT_EQ(got[i].energy_saving, want[i].energy_saving);
    }
  }
}

TEST(GoldenFigures, AblationStudyMatchesSeedRunnerBitForBit) {
  const ExperimentConfig cfg = golden_config();
  const auto profiles = golden_profiles();

  const auto want = legacy_ablation_study(profiles, cfg);
  for (const unsigned threads : {1u, 0u}) {
    const auto got = ablation_study(profiles, cfg, threads);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t v = 0; v < got.size(); ++v) {
      EXPECT_EQ(got[v].variant, want[v].variant);
      EXPECT_EQ(got[v].energy_saving, want[v].energy_saving);
      EXPECT_EQ(got[v].affected_fraction, want[v].affected_fraction);
      EXPECT_EQ(got[v].mean_deferral_latency_s,
                want[v].mean_deferral_latency_s);
      EXPECT_EQ(got[v].wake_count, want[v].wake_count);
    }
  }
}

TEST(GoldenFigures, ComparisonMatchesSeedRunnerBitForBit) {
  const ExperimentConfig cfg = golden_config();
  for (const synth::UserProfile& profile : golden_profiles()) {
    const VolunteerComparison want = legacy_compare_policies(profile, cfg);
    const VolunteerComparison got = compare_policies(profile, cfg);
    ASSERT_EQ(got.rows.size(), want.rows.size());
    EXPECT_EQ(got.baseline.energy_j, want.baseline.energy_j);
    for (std::size_t r = 0; r < got.rows.size(); ++r) {
      EXPECT_EQ(got.rows[r].report.energy_j, want.rows[r].report.energy_j)
          << profile.name << " / " << want.rows[r].policy;
      EXPECT_EQ(got.rows[r].energy_saving, want.rows[r].energy_saving);
      EXPECT_EQ(got.rows[r].radio_on_fraction,
                want.rows[r].radio_on_fraction);
      EXPECT_EQ(got.rows[r].down_rate_ratio, want.rows[r].down_rate_ratio);
      EXPECT_EQ(got.rows[r].peak_down_ratio, want.rows[r].peak_down_ratio);
    }
  }
}

TEST(GoldenFigures, SolverKnobDefaultMatchesExplicitFptasBitForBit) {
  // The solver-layer refactor must leave the default path untouched:
  // NetMaster with an untouched config and NetMaster with the solver
  // knob explicitly set to kFptas replay to identical reports, and the
  // alternate backends (greedy, auto) complete on real traces where
  // the exact DP would throw on byte-scale slot capacities.
  const ExperimentConfig cfg = golden_config();
  const EvalSession session(golden_profiles(), cfg);

  auto netmaster_spec = [](const char* name,
                           const policy::NetMasterConfig& nm) {
    PolicySpec spec;
    spec.name = name;
    spec.make = [nm](const UserTrace& training) {
      return std::make_unique<policy::NetMasterPolicy>(training, nm);
    };
    return spec;
  };
  policy::NetMasterConfig explicit_fptas = cfg.netmaster;
  explicit_fptas.solver = sched::SolverChoice::kFptas;
  policy::NetMasterConfig greedy_nm = cfg.netmaster;
  greedy_nm.solver = sched::SolverChoice::kGreedy;
  policy::NetMasterConfig auto_nm = cfg.netmaster;
  auto_nm.solver = sched::SolverChoice::kAuto;

  const std::vector<PolicySpec> specs = {
      netmaster_spec("default", cfg.netmaster),
      netmaster_spec("fptas", explicit_fptas),
      netmaster_spec("greedy", greedy_nm),
      netmaster_spec("auto", auto_nm)};
  for (const unsigned threads : {1u, 0u}) {
    const FleetReport report = run_fleet(session, specs, threads);
    EXPECT_TRUE(report.failures.empty());
    for (std::size_t u = 0; u < report.num_users; ++u) {
      const FleetCell& def = report.at(u, 0);
      const FleetCell& fptas = report.at(u, 1);
      EXPECT_EQ(def.report.energy_j, fptas.report.energy_j);
      EXPECT_EQ(def.energy_saving, fptas.energy_saving);
      EXPECT_EQ(def.report.affected_fraction,
                fptas.report.affected_fraction);
      EXPECT_EQ(def.report.mean_deferral_latency_s,
                fptas.report.mean_deferral_latency_s);
      EXPECT_FALSE(report.at(u, 2).failed);
      EXPECT_FALSE(report.at(u, 3).failed);
    }
  }

  // The solver-ablation roster rides the same session: fptas / greedy /
  // auto columns, all completing, with the fptas column agreeing with
  // the default-config NetMaster cell grid above.
  const auto rows = solver_ablation_study(session);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].solver, "netmaster[fptas]");
  EXPECT_EQ(rows[1].solver, "netmaster[greedy]");
  EXPECT_EQ(rows[2].solver, "netmaster[auto]");
  double default_saving = 0.0;
  const FleetReport report = run_fleet(session, specs, 1);
  for (std::size_t u = 0; u < report.num_users; ++u) {
    default_saving += report.at(u, 0).energy_saving;
  }
  default_saving /= static_cast<double>(report.num_users);
  EXPECT_EQ(rows[0].energy_saving, default_saving);
}

// ---- Sweep driver semantics. -----------------------------------------

TEST(SweepDriver, SlicesMultiPolicyRostersPerPoint) {
  const ExperimentConfig cfg = golden_config();
  const EvalSession session(golden_profiles(), cfg);

  const std::vector<double> delays = {10.0, 20.0};
  const auto results = sweep(
      session, delays,
      [](double d) {
        std::vector<PolicySpec> specs;
        specs.push_back({"delay",
                         [d](const UserTrace&) {
                           return std::make_unique<policy::DelayPolicy>(
                               seconds(d));
                         },
                         {}});
        specs.push_back({"delay&batch",
                         [d](const UserTrace&) {
                           return std::make_unique<policy::DelayBatchPolicy>(
                               seconds(d));
                         },
                         {}});
        return specs;
      },
      [&](double d, const FleetReport& report) {
        EXPECT_EQ(report.num_users, session.num_users());
        EXPECT_EQ(report.num_policies, 2u);
        EXPECT_EQ(report.aggregates[0].policy, "delay");
        EXPECT_EQ(report.aggregates[1].policy, "delay&batch");
        return std::make_pair(d, report.aggregates[1].energy_saving.mean());
      });
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].first, 10.0);
  EXPECT_EQ(results[1].first, 20.0);
  // A longer delay&batch window saves at least as much energy.
  EXPECT_LE(results[0].second, results[1].second + 1e-9);
}

TEST(SweepDriver, EmptyPointListIsANoOp) {
  const ExperimentConfig cfg = golden_config();
  const EvalSession session(golden_profiles(), cfg);
  const auto results = sweep(
      session, std::vector<double>{},
      [](double) { return std::vector<PolicySpec>{}; },
      [](double, const FleetReport&) { return 0; });
  EXPECT_TRUE(results.empty());
}

// ---- Failure isolation across a sweep. -------------------------------

TEST(SweepDriver, PoisonedVolunteerYieldsFailureRowsNotAnAbort) {
  const ExperimentConfig cfg = golden_config();
  std::vector<VolunteerTraces> volunteers;
  for (const synth::UserProfile& profile : golden_profiles()) {
    volunteers.push_back(make_traces(profile, cfg));
  }
  const UserId poisoned = volunteers[1].eval.user;
  volunteers[1].eval.num_days = 0;  // validate() rejects this outright
  ASSERT_THROW(volunteers[1].eval.validate(), Error);

  std::vector<VolunteerTraces> healthy = {volunteers[0], volunteers[2]};
  const EvalSession session(std::move(volunteers), cfg);
  EXPECT_TRUE(session.ok(0));
  EXPECT_FALSE(session.ok(1));
  EXPECT_TRUE(session.ok(2));
  EXPECT_EQ(session.num_ok(), 2u);
  EXPECT_FALSE(session.prep_error(1).empty());
  EXPECT_THROW(session.index(1), Error);
  EXPECT_THROW(session.baseline(1), Error);

  // Every sweep point reports the poisoned row as one FleetFailure and
  // still reduces over the two healthy users.
  const std::vector<double> delays = {0.0, 30.0, 120.0};
  const auto failures_per_point = sweep(
      session, delays,
      [](double d) {
        std::vector<PolicySpec> specs;
        specs.push_back({"delay",
                         [d](const UserTrace&) -> std::unique_ptr<policy::Policy> {
                           if (d <= 0.0) {
                             return std::make_unique<policy::BaselinePolicy>();
                           }
                           return std::make_unique<policy::DelayPolicy>(
                               seconds(d));
                         },
                         {}});
        return specs;
      },
      [](double, const FleetReport& report) { return report.failures; });
  ASSERT_EQ(failures_per_point.size(), delays.size());
  for (const auto& failures : failures_per_point) {
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].user, poisoned);
    EXPECT_TRUE(failures[0].policy.empty());  // whole row failed in prep
    EXPECT_FALSE(failures[0].error.empty());
  }

  // The figure runner's averages over the poisoned fleet equal the
  // healthy two-user fleet exactly — the bad row is excluded, not
  // smeared into the mean.
  const EvalSession healthy_session(std::move(healthy), cfg);
  expect_points_identical(delay_sweep(session, delays),
                          delay_sweep(healthy_session, delays));

  // And compare_all leaves the poisoned volunteer's rows empty.
  const auto comparisons = compare_all(session);
  ASSERT_EQ(comparisons.size(), 3u);
  EXPECT_FALSE(comparisons[0].rows.empty());
  EXPECT_TRUE(comparisons[1].rows.empty());
  EXPECT_FALSE(comparisons[2].rows.empty());
}

}  // namespace
}  // namespace netmaster::eval
