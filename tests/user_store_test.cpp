// Tests for eval::UserStore and the spill-to-disk fleet path: LRU
// eviction under a byte cap, lossless rehydration, Pin safety across
// evictions, the generation-handle regression (an evicted user's
// TraceIndex::trace() throws instead of dereferencing freed memory),
// and bit-for-bit fleet determinism with and without spilling.
#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "common/error.hpp"
#include "eval/fleet.hpp"
#include "eval/session.hpp"
#include "eval/user_store.hpp"
#include "mem/blob.hpp"
#include "synth/presets.hpp"

namespace netmaster::eval {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.train_days = 7;
  config.eval_days = 7;
  config.seed = 7;
  return config;
}

std::vector<synth::UserProfile> small_fleet(std::size_t n) {
  std::vector<synth::UserProfile> profiles;
  for (std::size_t i = 0; i < n; ++i) {
    profiles.push_back(synth::make_user(
        static_cast<synth::Archetype>(i % 3), static_cast<UserId>(i + 1)));
  }
  return profiles;
}

TEST(UserStore, DefaultConfigKeepsEverythingResident) {
  UserStore store;  // cap 0: no spilling, no disk
  store.resize(2);
  VolunteerTraces traces = make_traces(small_fleet(1)[0], small_config());
  const UserTrace eval_copy = traces.eval;
  store.admit(0, std::move(traces));
  store.admit(1, make_traces(small_fleet(2)[1], small_config()));

  EXPECT_FALSE(store.spill_enabled());
  EXPECT_TRUE(store.spill_dir().empty());
  EXPECT_EQ(store.resident_count(), 2u);
  EXPECT_EQ(store.evictions(), 0u);
  const UserStore::Pin pin = store.pin(0);
  EXPECT_EQ(pin.eval().activities, eval_copy.activities);
  EXPECT_TRUE(pin.lifetime().alive());
}

TEST(UserStore, EvictsUnderCapAndRehydratesLosslessly) {
  UserStoreConfig config;
  config.cache_cap_bytes = 1;  // evict everything evictable
  UserStore store(config);
  const std::vector<synth::UserProfile> profiles = small_fleet(3);
  store.resize(3);
  std::vector<VolunteerTraces> originals;
  for (std::size_t u = 0; u < 3; ++u) {
    originals.push_back(make_traces(profiles[u], small_config()));
    store.admit(u, originals[u]);
  }
  EXPECT_GT(store.evictions(), 0u);
  EXPECT_LE(store.resident_count(), 1u);
  EXPECT_FALSE(store.spill_dir().empty());

  // Rehydration returns bit-identical traces, any number of times, in
  // any order.
  for (const std::size_t u : {2u, 0u, 1u, 0u}) {
    const UserStore::Pin pin = store.pin(u);
    EXPECT_EQ(pin.training().activities, originals[u].training.activities);
    EXPECT_EQ(pin.training().sessions, originals[u].training.sessions);
    EXPECT_EQ(pin.eval().activities, originals[u].eval.activities);
    EXPECT_EQ(pin.eval().usages, originals[u].eval.usages);
    EXPECT_EQ(pin.eval().app_names, originals[u].eval.app_names);
  }
}

TEST(UserStore, PinKeepsAnEvictedHydrationAlive) {
  UserStoreConfig config;
  config.cache_cap_bytes = 1;
  UserStore store(config);
  store.resize(2);
  const std::vector<synth::UserProfile> profiles = small_fleet(2);
  const VolunteerTraces original = make_traces(profiles[0], small_config());
  store.admit(0, original);

  const UserStore::Pin pin = store.pin(0);
  EXPECT_TRUE(pin.lifetime().alive());
  store.admit(1, make_traces(profiles[1], small_config()));
  store.pin(1);  // touches 1; 0 becomes the LRU victim

  // Slot 0's hydration was evicted: its lifetime is retired, but the
  // pin still holds the bytes — reading through it stays valid.
  EXPECT_FALSE(pin.lifetime().alive());
  EXPECT_EQ(pin.eval().activities, original.eval.activities);

  // A fresh pin rehydrates into a fresh, live hydration.
  const UserStore::Pin again = store.pin(0);
  EXPECT_TRUE(again.lifetime().alive());
  EXPECT_EQ(again.eval().activities, original.eval.activities);
}

TEST(UserStore, RespectsCallerSpillDirectory) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "nm_store_test_dir";
  std::filesystem::remove_all(dir);
  {
    UserStoreConfig config;
    config.cache_cap_bytes = 1;
    config.spill_dir = dir.string();
    UserStore store(config);
    store.resize(1);
    store.admit(0, make_traces(small_fleet(1)[0], small_config()));
    EXPECT_EQ(store.spill_dir(), dir);
    EXPECT_FALSE(std::filesystem::is_empty(dir));
  }
  // The store removes its blobs but leaves the caller's directory.
  EXPECT_TRUE(std::filesystem::exists(dir));
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

TEST(SpillFleet, EvictedIndexTraceAccessIsCaught) {
  // Regression for the dangling-reference hazard: TraceIndex used to
  // borrow the eval trace by raw reference, so an evicted (or
  // moved-from) trace was silently read after free. Now the handle
  // flips and trace() throws, while the columnar replay path stays
  // valid.
  ExperimentConfig config = small_config();
  config.store.cache_cap_bytes = 1;
  const EvalSession session(small_fleet(4), config);
  ASSERT_EQ(session.num_ok(), 4u);
  EXPECT_GT(session.store().evictions(), 0u);

  std::size_t evicted = 0;
  for (std::size_t u = 0; u < session.num_users(); ++u) {
    const engine::TraceIndex& index = session.index(u);
    if (index.source_alive()) continue;
    ++evicted;
    EXPECT_THROW(index.trace(), Error);
    // Self-contained columns keep replaying.
    EXPECT_GT(index.sessions().size(), 0u);
    EXPECT_EQ(index.activities().size(),
              session.traces(u).eval().activities.size());
  }
  EXPECT_GT(evicted, 0u);
}

TEST(SpillFleet, ResultsBitIdenticalWithAndWithoutSpill) {
  const std::vector<synth::UserProfile> profiles = small_fleet(5);
  const std::vector<PolicySpec> suite =
      standard_policy_suite(small_config().netmaster);

  ExperimentConfig resident_config = small_config();
  const EvalSession resident(profiles, resident_config);
  const FleetReport baseline = run_fleet(resident, suite);

  ExperimentConfig spill_config = small_config();
  spill_config.store.cache_cap_bytes = 4096;  // far below the fleet
  const EvalSession spilled(profiles, spill_config);

  // The whole point of the cap: the fleet's aggregate trace footprint
  // exceeds it, so the run must lean on eviction + rehydration.
  std::size_t aggregate = 0;
  for (std::size_t u = 0; u < spilled.num_users(); ++u) {
    const UserStore::Pin pin = spilled.traces(u);
    aggregate += mem::trace_footprint_bytes(pin.training()) +
                 mem::trace_footprint_bytes(pin.eval());
  }
  EXPECT_GT(aggregate, spill_config.store.cache_cap_bytes);

  const FleetReport report = run_fleet(spilled, suite);
  EXPECT_GT(spilled.store().evictions(), 0u);

  ASSERT_EQ(report.cells.size(), baseline.cells.size());
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    const FleetCell& a = baseline.cells[c];
    const FleetCell& b = report.cells[c];
    EXPECT_EQ(a.failed, b.failed) << "cell " << c;
    EXPECT_EQ(a.policy, b.policy);
    // Bit-for-bit: same transfers, same accounting, same doubles.
    EXPECT_EQ(a.report.energy_j, b.report.energy_j) << "cell " << c;
    EXPECT_EQ(a.report.radio_on_ms, b.report.radio_on_ms) << "cell " << c;
    EXPECT_EQ(a.energy_saving, b.energy_saving) << "cell " << c;
    EXPECT_EQ(a.radio_on_fraction, b.radio_on_fraction) << "cell " << c;
  }
}

TEST(SpillFleet, VolunteerSessionsSpillToo) {
  const std::vector<synth::UserProfile> profiles = small_fleet(3);
  std::vector<VolunteerTraces> volunteers;
  for (const synth::UserProfile& profile : profiles) {
    volunteers.push_back(make_traces(profile, small_config()));
  }
  ExperimentConfig config = small_config();
  config.store.cache_cap_bytes = 1;
  const EvalSession session(volunteers, config);
  EXPECT_EQ(session.num_ok(), 3u);
  const FleetReport report =
      run_fleet(session, standard_policy_suite(config.netmaster));
  EXPECT_TRUE(report.failures.empty());
}

}  // namespace
}  // namespace netmaster::eval
