// Tests for the trace data model: invariants, queries, slicing.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "trace/trace.hpp"

namespace netmaster {
namespace {

UserTrace small_trace() {
  UserTrace t;
  t.user = 1;
  t.num_days = 2;
  t.app_names = {"app0", "app1"};
  t.sessions = {{1000, 5000}, {10'000, 20'000},
                {kMsPerDay + 100, kMsPerDay + 900}};
  t.usages = {{0, 1200, 800}, {1, 11'000, 2000},
              {0, kMsPerDay + 200, 300}};
  t.activities = {
      {0, 1500, 1000, 5000, 500, true, false},
      {1, 7000, 2000, 3000, 300, false, true},
      {1, kMsPerDay + 400, 200, 100, 10, false, true},
  };
  return t;
}

TEST(Trace, ValidTraceValidates) {
  EXPECT_NO_THROW(small_trace().validate());
}

TEST(Trace, ActivityHelpers) {
  const NetworkActivity n{0, 100, 2000, 3000, 1000, false, true};
  EXPECT_EQ(n.end(), 2100);
  EXPECT_EQ(n.total_bytes(), 4000);
  EXPECT_DOUBLE_EQ(n.rate_kbps(), 4.0 / 2.0);
  const NetworkActivity zero{0, 100, 0, 3000, 0, false, true};
  EXPECT_DOUBLE_EQ(zero.rate_kbps(), 0.0);
}

TEST(Trace, ScreenOnAt) {
  const UserTrace t = small_trace();
  EXPECT_FALSE(t.screen_on_at(999));
  EXPECT_TRUE(t.screen_on_at(1000));
  EXPECT_TRUE(t.screen_on_at(4999));
  EXPECT_FALSE(t.screen_on_at(5000));
  EXPECT_TRUE(t.screen_on_at(15'000));
  EXPECT_FALSE(t.screen_on_at(kMsPerDay));
  EXPECT_TRUE(t.screen_on_at(kMsPerDay + 500));
}

TEST(Trace, ScreenOnSetMeasure) {
  const UserTrace t = small_trace();
  EXPECT_EQ(t.screen_on_set().total_length(), 4000 + 10'000 + 800);
}

TEST(Trace, ValidateRejectsZeroDays) {
  UserTrace t = small_trace();
  t.num_days = 0;
  EXPECT_THROW(t.validate(), Error);
}

TEST(Trace, ValidateRejectsOverlappingSessions) {
  UserTrace t = small_trace();
  t.sessions = {{0, 100}, {50, 200}};
  EXPECT_THROW(t.validate(), Error);
}

TEST(Trace, ValidateRejectsEmptySession) {
  UserTrace t = small_trace();
  t.sessions = {{100, 100}};
  EXPECT_THROW(t.validate(), Error);
}

TEST(Trace, ValidateRejectsUnsortedUsages) {
  UserTrace t = small_trace();
  std::swap(t.usages[0], t.usages[1]);
  EXPECT_THROW(t.validate(), Error);
}

TEST(Trace, ValidateRejectsUnknownAppId) {
  UserTrace t = small_trace();
  t.usages[0].app = 9;
  EXPECT_THROW(t.validate(), Error);
}

TEST(Trace, ValidateRejectsNegativeBytes) {
  UserTrace t = small_trace();
  t.activities[0].bytes_down = -1;
  EXPECT_THROW(t.validate(), Error);
}

TEST(Trace, ValidateRejectsActivityBeyondEnd) {
  UserTrace t = small_trace();
  t.activities.push_back(
      {0, 2 * kMsPerDay - 100, 500, 10, 10, false, true});
  EXPECT_THROW(t.validate(), Error);
}

TEST(Trace, ValidateRejectsSessionBeyondEnd) {
  UserTrace t = small_trace();
  t.sessions.push_back({2 * kMsPerDay - 10, 2 * kMsPerDay + 10});
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceSlice, BasicRebasing) {
  const UserTrace t = small_trace();
  const UserTrace day1 = t.slice_days(1, 1);
  EXPECT_EQ(day1.num_days, 1);
  ASSERT_EQ(day1.sessions.size(), 1u);
  EXPECT_EQ(day1.sessions[0].begin, 100);
  ASSERT_EQ(day1.usages.size(), 1u);
  EXPECT_EQ(day1.usages[0].time, 200);
  ASSERT_EQ(day1.activities.size(), 1u);
  EXPECT_EQ(day1.activities[0].start, 400);
  EXPECT_NO_THROW(day1.validate());
}

TEST(TraceSlice, FullSliceIsIdentityModuloNothing) {
  const UserTrace t = small_trace();
  const UserTrace whole = t.slice_days(0, 2);
  EXPECT_EQ(whole.sessions.size(), t.sessions.size());
  EXPECT_EQ(whole.usages.size(), t.usages.size());
  EXPECT_EQ(whole.activities.size(), t.activities.size());
}

TEST(TraceSlice, ClipsSessionStraddlingBoundary) {
  UserTrace t = small_trace();
  t.sessions = {{kMsPerDay - 1000, kMsPerDay + 1000}};
  t.usages.clear();
  t.activities.clear();
  const UserTrace day0 = t.slice_days(0, 1);
  ASSERT_EQ(day0.sessions.size(), 1u);
  EXPECT_EQ(day0.sessions[0].end, kMsPerDay);
  const UserTrace day1 = t.slice_days(1, 1);
  ASSERT_EQ(day1.sessions.size(), 1u);
  EXPECT_EQ(day1.sessions[0].begin, 0);
  EXPECT_EQ(day1.sessions[0].end, 1000);
}

TEST(TraceSlice, ClipsActivityStraddlingBoundary) {
  UserTrace t = small_trace();
  t.sessions.clear();
  t.usages.clear();
  t.activities = {{0, kMsPerDay - 500, 2000, 10, 10, false, true}};
  // The raw trace itself is fine (activity ends within day 1).
  EXPECT_NO_THROW(t.validate());
  const UserTrace day0 = t.slice_days(0, 1);
  ASSERT_EQ(day0.activities.size(), 1u);
  EXPECT_EQ(day0.activities[0].duration, 500);  // clipped
  EXPECT_NO_THROW(day0.validate());
  const UserTrace day1 = t.slice_days(1, 1);
  EXPECT_TRUE(day1.activities.empty());  // starts in day 0
}

TEST(TraceSlice, RejectsOutOfRange) {
  const UserTrace t = small_trace();
  EXPECT_THROW(t.slice_days(-1, 1), Error);
  EXPECT_THROW(t.slice_days(0, 0), Error);
  EXPECT_THROW(t.slice_days(1, 2), Error);
}

}  // namespace
}  // namespace netmaster
