// Tests for the pluggable scheduler-solver layer: a frozen copy of the
// pre-refactor (map-based, allocation-per-call) Algorithm 1 guards the
// default path bit for bit, a cross-backend equivalence suite checks
// the solver contracts on randomized instances, and workspace reuse is
// verified deterministic across a thousand solves.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sched/knapsack.hpp"
#include "sched/overlap.hpp"
#include "sched/solver.hpp"

namespace netmaster::sched {
namespace {

// ---------------------------------------------------------------------
// Frozen pre-refactor reference: the seed-era knapsack_fptas and
// solve_overlapped, verbatim (std::map id indexes, fresh DP tables and
// vector<vector<bool>> take matrices per call). The solver layer must
// reproduce this bit for bit under default options.
// ---------------------------------------------------------------------
namespace legacy {

KnapResult fptas(std::span<const KnapItem> items, std::int64_t capacity,
                 double eps) {
  KnapResult result;
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const KnapItem& item = items[i];
    if (item.profit <= 0.0 || item.weight > capacity) continue;
    if (item.weight == 0) {
      result.chosen.push_back(item.id);
      result.profit += item.profit;
    } else {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) return result;

  double pmax = 0.0;
  for (std::size_t i : candidates) pmax = std::max(pmax, items[i].profit);
  const auto n = static_cast<double>(candidates.size());
  const double scale = eps * pmax / n;

  std::vector<std::int64_t> scaled(candidates.size());
  std::int64_t total_scaled = 0;
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    scaled[k] = static_cast<std::int64_t>(
        std::floor(items[candidates[k]].profit / scale));
    total_scaled += scaled[k];
  }

  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> min_weight(
      static_cast<std::size_t>(total_scaled) + 1, kInf);
  min_weight[0] = 0;
  std::vector<std::vector<bool>> take(candidates.size());

  std::int64_t reach = 0;
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    const KnapItem& item = items[candidates[k]];
    const std::int64_t sp = scaled[k];
    take[k].assign(static_cast<std::size_t>(total_scaled) + 1, false);
    if (sp == 0) continue;
    reach = std::min(reach + sp, total_scaled);
    for (std::int64_t s = reach; s >= sp; --s) {
      const std::int64_t base = min_weight[static_cast<std::size_t>(s - sp)];
      if (base == kInf) continue;
      const std::int64_t w = base + item.weight;
      if (w < min_weight[static_cast<std::size_t>(s)]) {
        min_weight[static_cast<std::size_t>(s)] = w;
        take[k][static_cast<std::size_t>(s)] = true;
      }
    }
  }

  std::int64_t best_s = 0;
  for (std::int64_t s = total_scaled; s > 0; --s) {
    if (min_weight[static_cast<std::size_t>(s)] <= capacity) {
      best_s = s;
      break;
    }
  }

  std::int64_t s = best_s;
  for (std::size_t k = candidates.size(); k-- > 0;) {
    if (s > 0 && take[k][static_cast<std::size_t>(s)]) {
      const KnapItem& item = items[candidates[k]];
      result.chosen.push_back(item.id);
      result.profit += item.profit;
      result.weight += item.weight;
      s -= scaled[k];
    }
  }
  return result;
}

OverlapSolution solve_overlapped(std::span<const OverlapSlot> slots,
                                 std::span<const OverlapItem> items,
                                 double eps) {
  std::map<int, const OverlapItem*> by_id;
  for (const OverlapItem& item : items) by_id[item.id] = &item;

  std::vector<std::vector<KnapItem>> slot_items(slots.size());
  for (const OverlapItem& item : items) {
    for (int s : {item.prev_slot, item.next_slot}) {
      if (s >= 0) {
        slot_items[static_cast<std::size_t>(s)].push_back(
            {item.id, item.profit, item.weight});
      }
    }
  }

  std::vector<std::vector<int>> chosen_per_slot(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    auto& list = slot_items[s];
    std::sort(list.begin(), list.end(),
              [](const KnapItem& a, const KnapItem& b) {
                if (a.weight == 0 || b.weight == 0) {
                  if (a.weight == 0 && b.weight == 0)
                    return a.profit > b.profit;
                  return a.weight == 0;
                }
                return a.profit * static_cast<double>(b.weight) >
                       b.profit * static_cast<double>(a.weight);
              });
    chosen_per_slot[s] = fptas(list, slots[s].capacity, eps).chosen;
  }

  std::map<int, std::vector<int>> slots_of_item;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    for (int id : chosen_per_slot[s]) {
      slots_of_item[id].push_back(static_cast<int>(s));
    }
  }

  OverlapSolution solution;
  solution.slot_used.assign(slots.size(), 0);
  std::map<int, bool> assigned;
  for (const auto& [id, cand] : slots_of_item) {
    const OverlapItem& item = *by_id.at(id);
    int slot = cand.front();
    if (cand.size() == 2) {
      const std::int64_t r0 =
          slots[static_cast<std::size_t>(cand[0])].capacity - item.weight;
      const std::int64_t r1 =
          slots[static_cast<std::size_t>(cand[1])].capacity - item.weight;
      slot = r0 <= r1 ? cand[0] : cand[1];
    }
    solution.assignments.push_back({id, slot});
    solution.slot_used[static_cast<std::size_t>(slot)] += item.weight;
    solution.total_profit += item.profit;
    assigned[id] = true;
  }

  for (std::size_t s = 0; s < slots.size(); ++s) {
    std::int64_t residual = slots[s].capacity - solution.slot_used[s];
    for (const KnapItem& ki : slot_items[s]) {
      if (assigned.count(ki.id) || ki.profit <= 0.0) continue;
      if (ki.weight <= residual) {
        solution.assignments.push_back({ki.id, static_cast<int>(s)});
        solution.slot_used[s] += ki.weight;
        solution.total_profit += ki.profit;
        residual -= ki.weight;
        assigned[ki.id] = true;
      }
    }
  }
  return solution;
}

}  // namespace legacy

struct OverlapInstance {
  std::vector<OverlapSlot> slots;
  std::vector<OverlapItem> items;
};

/// Random instance with non-dense, shuffled item ids (the sorted flat
/// index must reproduce the ascending-id map iteration even when input
/// order and id values are arbitrary).
OverlapInstance random_instance(Rng& rng, int n_items, int n_slots,
                                std::int64_t max_capacity = 250) {
  OverlapInstance inst;
  for (int s = 0; s < n_slots; ++s) {
    inst.slots.push_back({s, rng.uniform_int(20, max_capacity)});
  }
  for (int i = 0; i < n_items; ++i) {
    const int prev = n_slots >= 2
                         ? static_cast<int>(rng.uniform_int(0, n_slots - 2))
                         : 0;
    const int id = i * 7 + static_cast<int>(rng.uniform_int(0, 3));
    inst.items.push_back({id, rng.uniform_int(1, 120),
                          rng.uniform(-5.0, 50.0), prev,
                          n_slots >= 2 ? prev + 1 : -1});
  }
  // Ensure ids stayed unique despite the jitter (stride 7 > jitter 3).
  for (std::size_t i = 1; i < inst.items.size(); ++i) {
    EXPECT_GT(inst.items[i].id, inst.items[i - 1].id);
  }
  // Shuffle input order so it differs from id order.
  for (std::size_t i = inst.items.size(); i > 1; --i) {
    std::swap(inst.items[i - 1],
              inst.items[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  }
  return inst;
}

void expect_same_solution(const OverlapSolution& a,
                          const OverlapSolution& b) {
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.slot_used, b.slot_used);
  EXPECT_EQ(a.total_profit, b.total_profit);  // bit-for-bit, no tolerance
}

TEST(FrozenLegacy, DefaultPathIsBitForBit) {
  Rng rng(1234);
  for (int run = 0; run < 100; ++run) {
    const int n_slots = static_cast<int>(rng.uniform_int(2, 8));
    const int n_items = static_cast<int>(rng.uniform_int(1, 40));
    const OverlapInstance inst = random_instance(rng, n_items, n_slots);
    const OverlapSolution want =
        legacy::solve_overlapped(inst.slots, inst.items, 0.1);

    // Legacy 3-arg API (thread workspace) and explicit workspace + stats
    // must both reproduce the frozen reference exactly.
    expect_same_solution(want,
                         solve_overlapped(inst.slots, inst.items, 0.1));
    SchedWorkspace ws;
    SolverOptions options;  // kFptas, eps = 0.1: the default config
    SolveStats stats;
    expect_same_solution(
        want,
        solve_overlapped(inst.slots, inst.items, options, ws, &stats));
    EXPECT_EQ(stats.slot_solves_fptas, inst.slots.size());
    EXPECT_EQ(stats.slot_solves_exact, 0u);
    EXPECT_EQ(stats.slot_solves_greedy, 0u);
  }
}

TEST(SolverChoiceNames, RoundTrip) {
  for (const SolverChoice c :
       {SolverChoice::kFptas, SolverChoice::kExact, SolverChoice::kGreedy,
        SolverChoice::kAuto}) {
    EXPECT_EQ(parse_solver_choice(to_string(c)), c);
    EXPECT_EQ(solver_for(c).choice(), c);
    EXPECT_STREQ(solver_for(c).name(), to_string(c));
  }
  EXPECT_THROW(parse_solver_choice("simplex"), Error);
  EXPECT_THROW(parse_solver_choice(""), Error);
}

TEST(SolverOptionsValidation, RejectsOutOfRange) {
  SolverOptions options;
  EXPECT_NO_THROW(options.validate());
  options.eps = 0.0;
  EXPECT_THROW(options.validate(), Error);
  options.eps = 1.0;
  EXPECT_THROW(options.validate(), Error);
  options.eps = 0.1;
  options.auto_exact_cells = 0;
  EXPECT_THROW(options.validate(), Error);
  options.auto_exact_cells = 500'000'000;  // above the exact DP limit
  EXPECT_THROW(options.validate(), Error);
}

TEST(AutoResolve, PicksExactOnlyWhenCheapAndSmall) {
  const SinKnapSolver& auto_solver = solver_for(SolverChoice::kAuto);
  SolverOptions options;
  // Small capacity, enough items: the weight-indexed table beats the
  // profit-scaling estimate n^2 * ceil(n/eps).
  EXPECT_EQ(auto_solver.resolve(20, 100, options), SolverChoice::kExact);
  // Byte-scale capacity (a real slot): table over the ceiling -> FPTAS.
  EXPECT_EQ(auto_solver.resolve(20, 180'000'000, options),
            SolverChoice::kFptas);
  // Tiny ceiling forces FPTAS regardless of the cost comparison.
  options.auto_exact_cells = 1;
  EXPECT_EQ(auto_solver.resolve(20, 100, options), SolverChoice::kFptas);
  // Few items, big capacity: exact table n*(cap+1) dwarfs the FPTAS
  // estimate, so the FPTAS runs even under the ceiling.
  options.auto_exact_cells = 400'000'000;
  EXPECT_EQ(auto_solver.resolve(2, 1'000'000, options),
            SolverChoice::kFptas);
  // Concrete solvers resolve to themselves.
  EXPECT_EQ(solver_for(SolverChoice::kGreedy).resolve(20, 100, options),
            SolverChoice::kGreedy);
}

TEST(AutoResolve, SolveMatchesDelegateBitForBit) {
  Rng rng(77);
  const SinKnapSolver& auto_solver = solver_for(SolverChoice::kAuto);
  SolverOptions options;
  SchedWorkspace ws;
  bool saw_exact = false, saw_fptas = false;
  for (int run = 0; run < 200; ++run) {
    std::vector<KnapItem> items;
    const int n = static_cast<int>(rng.uniform_int(1, 30));
    for (int i = 0; i < n; ++i) {
      items.push_back({i, rng.uniform(0.5, 60.0), rng.uniform_int(1, 80)});
    }
    // Mix capacities around the auto threshold so both delegates fire.
    const std::int64_t cap = rng.uniform_int(10, 200'000);
    const SolverChoice resolved =
        auto_solver.resolve(items.size(), cap, options);
    (resolved == SolverChoice::kExact ? saw_exact : saw_fptas) = true;
    std::uint64_t cells_auto = 0, cells_delegate = 0;
    const KnapResult via_auto =
        auto_solver.solve(items, cap, options, ws, cells_auto);
    const KnapResult via_delegate =
        solver_for(resolved).solve(items, cap, options, ws,
                                   cells_delegate);
    EXPECT_EQ(via_auto.chosen, via_delegate.chosen);
    EXPECT_EQ(via_auto.profit, via_delegate.profit);
    EXPECT_EQ(via_auto.weight, via_delegate.weight);
    EXPECT_EQ(cells_auto, cells_delegate);
  }
  EXPECT_TRUE(saw_exact);
  EXPECT_TRUE(saw_fptas);
}

TEST(CrossBackend, ExactDominatesFptasWithinEps) {
  Rng rng(555);
  SchedWorkspace ws;
  for (const double eps : {0.05, 0.1, 0.5}) {
    for (int run = 0; run < 60; ++run) {
      std::vector<KnapItem> items;
      const int n = static_cast<int>(rng.uniform_int(1, 40));
      for (int i = 0; i < n; ++i) {
        items.push_back(
            {i, rng.uniform(0.5, 100.0), rng.uniform_int(1, 60)});
      }
      const std::int64_t cap = rng.uniform_int(30, 600);
      const double exact = knapsack_exact(items, cap, ws).profit;
      const double fptas = knapsack_fptas(items, cap, eps, ws).profit;
      const double greedy = knapsack_greedy(items, cap, ws).profit;
      EXPECT_LE(fptas, exact + 1e-9);
      EXPECT_GE(fptas, (1.0 - eps) * exact - 1e-9)
          << "n=" << n << " cap=" << cap << " eps=" << eps;
      EXPECT_LE(greedy, exact + 1e-9);
    }
  }
}

TEST(CrossBackend, EveryBackendFeasibleWithSaneStats) {
  Rng rng(31337);
  SchedWorkspace ws;
  for (const SolverChoice backend :
       {SolverChoice::kFptas, SolverChoice::kExact, SolverChoice::kGreedy,
        SolverChoice::kAuto}) {
    SolverOptions options;
    options.choice = backend;
    for (int run = 0; run < 40; ++run) {
      const int n_slots = static_cast<int>(rng.uniform_int(2, 6));
      const int n_items = static_cast<int>(rng.uniform_int(1, 25));
      // Small capacities keep the exact backend inside its DP limits.
      const OverlapInstance inst =
          random_instance(rng, n_items, n_slots, 200);
      SolveStats stats;
      // solve_overlapped runs check_feasible internally: not throwing
      // is the per-backend feasibility invariant.
      const OverlapSolution sol = solve_overlapped(
          inst.slots, inst.items, options, ws, &stats);

      EXPECT_EQ(stats.requested, backend);
      EXPECT_EQ(stats.items, inst.items.size());
      EXPECT_EQ(stats.slots, inst.slots.size());
      EXPECT_EQ(stats.slot_solves_fptas + stats.slot_solves_exact +
                    stats.slot_solves_greedy,
                inst.slots.size());
      if (backend != SolverChoice::kAuto) {
        const std::size_t taken =
            backend == SolverChoice::kFptas ? stats.slot_solves_fptas
            : backend == SolverChoice::kExact ? stats.slot_solves_exact
                                              : stats.slot_solves_greedy;
        EXPECT_EQ(taken, inst.slots.size());
      }
      EXPECT_GE(stats.upper_bound, stats.profit - 1e-9);
      EXPECT_GE(stats.gap, 0.0);
      EXPECT_LE(stats.gap, 1.0);
      EXPECT_EQ(stats.profit, sol.total_profit);
      if (backend == SolverChoice::kGreedy) {
        EXPECT_EQ(stats.dp_cells, 0u);
      }
      // Each assignment targets one of the item's candidate slots and
      // every item appears at most once (re-checked here on top of the
      // internal check_feasible).
      std::map<int, int> seen;
      for (const OverlapAssignment& a : sol.assignments) {
        EXPECT_EQ(++seen[a.item_id], 1);
      }
    }
  }
}

TEST(CrossBackend, ExactBackendNeverWorseThanGreedyBackend) {
  // Filtering/GreedyAdd are shared; the per-slot DP is what the backend
  // changes. The exact per-slot packing dominates the greedy per-slot
  // packing before filtering, and on single-slot instances (no overlap,
  // filtering is the identity) that dominance survives to the total.
  Rng rng(99);
  SchedWorkspace ws;
  for (int run = 0; run < 50; ++run) {
    OverlapInstance inst;
    inst.slots.push_back({0, rng.uniform_int(50, 300)});
    const int n_items = static_cast<int>(rng.uniform_int(1, 20));
    for (int i = 0; i < n_items; ++i) {
      inst.items.push_back(
          {i, rng.uniform_int(1, 100), rng.uniform(0.5, 40.0), 0, -1});
    }
    SolverOptions exact_options, greedy_options;
    exact_options.choice = SolverChoice::kExact;
    greedy_options.choice = SolverChoice::kGreedy;
    const double exact_profit =
        solve_overlapped(inst.slots, inst.items, exact_options, ws)
            .total_profit;
    const double greedy_profit =
        solve_overlapped(inst.slots, inst.items, greedy_options, ws)
            .total_profit;
    EXPECT_GE(exact_profit, greedy_profit - 1e-9);
  }
}

TEST(Workspace, ReuseIsDeterministicAcross1kSolves) {
  // One workspace carried through 1000 solves of varied instances must
  // produce exactly what a fresh workspace produces per solve — reused
  // scratch may never leak state between calls.
  SchedWorkspace shared;
  SolverOptions options;
  Rng rng(2024);
  for (int run = 0; run < 1000; ++run) {
    const int n_slots = static_cast<int>(rng.uniform_int(2, 6));
    const int n_items = static_cast<int>(rng.uniform_int(1, 25));
    const OverlapInstance inst = random_instance(rng, n_items, n_slots);
    // Rotate backends so the shared workspace also crosses kernels.
    options.choice = static_cast<SolverChoice>(run % 4);
    const OverlapSolution reused =
        solve_overlapped(inst.slots, inst.items, options, shared);
    SchedWorkspace fresh;
    const OverlapSolution pristine =
        solve_overlapped(inst.slots, inst.items, options, fresh);
    expect_same_solution(reused, pristine);
  }
  EXPECT_EQ(shared.solves(), 1000u);
}

TEST(Workspace, ThreadWorkspaceIsStableAndCounts) {
  SchedWorkspace& ws = thread_workspace();
  EXPECT_EQ(&ws, &thread_workspace());
  const std::uint64_t before = ws.solves();
  const std::vector<OverlapSlot> slots = {{0, 10}, {1, 10}};
  const std::vector<OverlapItem> items = {{0, 5, 2.0, 0, 1}};
  (void)solve_overlapped(slots, items, 0.1);  // legacy API rides it
  EXPECT_EQ(ws.solves(), before + 1);
}

TEST(SolveStats, ReportsBackendMixUnderAuto) {
  // Two slots on opposite sides of the auto threshold: one tiny
  // capacity (exact) and one byte-scale capacity (FPTAS).
  const std::vector<OverlapSlot> slots = {{0, 100}, {1, 50'000'000}};
  std::vector<OverlapItem> items;
  for (int i = 0; i < 12; ++i) {
    items.push_back({i, 10 + i, 5.0 + i, 0, 1});
  }
  SolverOptions options;
  options.choice = SolverChoice::kAuto;
  SchedWorkspace ws;
  SolveStats stats;
  (void)solve_overlapped(slots, items, options, ws, &stats);
  EXPECT_EQ(stats.slot_solves_exact, 1u);
  EXPECT_EQ(stats.slot_solves_fptas, 1u);
  EXPECT_GT(stats.dp_cells, 0u);
  EXPECT_EQ(stats.duplicated_items, 24u);
}

}  // namespace
}  // namespace netmaster::sched
