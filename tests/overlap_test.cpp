// Tests for Algorithm 1 — the multiple knapsack with overlapped
// itemsets — including the (1−ε)/2 bound against brute force.
#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sched/overlap.hpp"

namespace netmaster::sched {
namespace {

TEST(OverlapExact, SimpleAssignment) {
  const std::vector<OverlapSlot> slots = {{0, 10}, {1, 10}};
  const std::vector<OverlapItem> items = {
      {0, 6, 5.0, 0, 1},
      {1, 6, 4.0, 0, 1},
  };
  const OverlapSolution s = solve_overlapped_exact(slots, items);
  // Both fit only if split across the two slots.
  EXPECT_DOUBLE_EQ(s.total_profit, 9.0);
  EXPECT_EQ(s.assignments.size(), 2u);
  EXPECT_NE(s.assignments[0].slot_index, s.assignments[1].slot_index);
}

TEST(OverlapExact, SkipsWhenNothingFits) {
  const std::vector<OverlapSlot> slots = {{0, 3}};
  const std::vector<OverlapItem> items = {{0, 5, 10.0, 0, -1}};
  const OverlapSolution s = solve_overlapped_exact(slots, items);
  EXPECT_DOUBLE_EQ(s.total_profit, 0.0);
  EXPECT_TRUE(s.assignments.empty());
}

TEST(OverlapExact, NegativeProfitNeverAssigned) {
  const std::vector<OverlapSlot> slots = {{0, 100}};
  const std::vector<OverlapItem> items = {{0, 5, -1.0, 0, -1},
                                          {1, 5, 2.0, 0, -1}};
  const OverlapSolution s = solve_overlapped_exact(slots, items);
  EXPECT_DOUBLE_EQ(s.total_profit, 2.0);
  EXPECT_EQ(s.assignments.size(), 1u);
}

TEST(OverlapExact, SizeGuard) {
  std::vector<OverlapSlot> slots = {{0, 10}, {1, 10}};
  std::vector<OverlapItem> items;
  for (int i = 0; i < 19; ++i) items.push_back({i, 1, 1.0, 0, 1});
  EXPECT_THROW(solve_overlapped_exact(slots, items), Error);
}

TEST(Algorithm1, FeasibleAndSingleAssignment) {
  const std::vector<OverlapSlot> slots = {{0, 20}, {1, 15}, {2, 10}};
  std::vector<OverlapItem> items;
  Rng rng(3);
  for (int i = 0; i < 12; ++i) {
    const int prev = static_cast<int>(rng.uniform_int(0, 1));
    items.push_back({i, rng.uniform_int(1, 12), rng.uniform(0.5, 9.0),
                     prev, prev + 1});
  }
  const OverlapSolution s = solve_overlapped(slots, items, 0.1);
  // check_feasible already ran inside; assert the invariants here too.
  std::vector<int> seen;
  for (const OverlapAssignment& a : s.assignments) {
    seen.push_back(a.item_id);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_LE(s.slot_used[i], slots[i].capacity);
  }
}

TEST(Algorithm1, SingleCandidateSlotItems) {
  // Items at the horizon edges have only one candidate slot.
  const std::vector<OverlapSlot> slots = {{0, 10}};
  const std::vector<OverlapItem> items = {{0, 4, 3.0, -1, 0},
                                          {1, 4, 2.0, 0, -1}};
  const OverlapSolution s = solve_overlapped(slots, items, 0.1);
  EXPECT_DOUBLE_EQ(s.total_profit, 5.0);
}

TEST(Algorithm1, EmptyInstances) {
  EXPECT_DOUBLE_EQ(solve_overlapped({}, {}, 0.1).total_profit, 0.0);
  const std::vector<OverlapSlot> slots = {{0, 10}};
  EXPECT_DOUBLE_EQ(solve_overlapped(slots, {}, 0.1).total_profit, 0.0);
}

TEST(Algorithm1, ValidationErrors) {
  const std::vector<OverlapSlot> slots = {{0, 10}, {1, -5}};
  EXPECT_THROW(solve_overlapped(slots, {}, 0.1), Error);

  const std::vector<OverlapSlot> ok = {{0, 10}, {1, 10}};
  std::vector<OverlapItem> dup = {{7, 1, 1.0, 0, 1}, {7, 1, 1.0, 0, 1}};
  EXPECT_THROW(solve_overlapped(ok, dup, 0.1), Error);

  std::vector<OverlapItem> oob = {{0, 1, 1.0, 0, 5}};
  EXPECT_THROW(solve_overlapped(ok, oob, 0.1), Error);

  std::vector<OverlapItem> same = {{0, 1, 1.0, 1, 1}};
  EXPECT_THROW(solve_overlapped(ok, same, 0.1), Error);

  std::vector<OverlapItem> fine = {{0, 1, 1.0, 0, 1}};
  EXPECT_THROW(solve_overlapped(ok, fine, 0.0), Error);
  EXPECT_THROW(solve_overlapped(ok, fine, 1.0), Error);
}

TEST(Algorithm1, RejectsNonFiniteProfit) {
  // Instance validation must catch non-finite profits before any item
  // reaches the per-slot kernels, for every solve entry point.
  const std::vector<OverlapSlot> slots = {{0, 10}, {1, 10}};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const double bad : {nan, inf, -inf}) {
    const std::vector<OverlapItem> items = {{0, 1, 2.0, 0, 1},
                                            {1, 1, bad, 0, 1}};
    EXPECT_THROW(solve_overlapped(slots, items, 0.1), Error);
    EXPECT_THROW(solve_overlapped_greedy(slots, items), Error);
    EXPECT_THROW(solve_overlapped_exact(slots, items), Error);
  }
}

TEST(CheckFeasible, CatchesViolations) {
  const std::vector<OverlapSlot> slots = {{0, 10}, {1, 10}};
  const std::vector<OverlapItem> items = {{0, 6, 5.0, 0, 1}};

  OverlapSolution double_assign;
  double_assign.assignments = {{0, 0}, {0, 1}};
  double_assign.slot_used = {6, 6};
  double_assign.total_profit = 10.0;
  EXPECT_THROW(check_feasible(slots, items, double_assign), Error);

  OverlapSolution wrong_slot;
  wrong_slot.assignments = {{0, 0}};
  wrong_slot.slot_used = {6, 0};
  wrong_slot.total_profit = 5.0;
  std::vector<OverlapItem> narrow = {{0, 6, 5.0, 1, -1}};
  EXPECT_THROW(check_feasible(slots, narrow, wrong_slot), Error);

  OverlapSolution wrong_profit;
  wrong_profit.assignments = {{0, 0}};
  wrong_profit.slot_used = {6, 0};
  wrong_profit.total_profit = 99.0;
  EXPECT_THROW(check_feasible(slots, items, wrong_profit), Error);

  OverlapSolution unknown_item;
  unknown_item.assignments = {{42, 0}};
  unknown_item.slot_used = {0, 0};
  unknown_item.total_profit = 0.0;
  EXPECT_THROW(check_feasible(slots, items, unknown_item), Error);
}

TEST(GreedyBaseline, FeasibleAndReasonable) {
  const std::vector<OverlapSlot> slots = {{0, 20}, {1, 15}};
  const std::vector<OverlapItem> items = {
      {0, 10, 8.0, 0, 1}, {1, 10, 6.0, 0, 1}, {2, 10, 4.0, 0, 1}};
  const OverlapSolution s = solve_overlapped_greedy(slots, items);
  // Ratio order: item 0 into the tighter slot 1; items 1 and 2 fill
  // slot 0 (capacity 20).
  EXPECT_DOUBLE_EQ(s.total_profit, 18.0);
  EXPECT_EQ(s.assignments.size(), 3u);
}

TEST(GreedyBaseline, PrefersTighterSlot) {
  const std::vector<OverlapSlot> slots = {{0, 100}, {1, 10}};
  const std::vector<OverlapItem> items = {{0, 10, 5.0, 0, 1}};
  const OverlapSolution s = solve_overlapped_greedy(slots, items);
  ASSERT_EQ(s.assignments.size(), 1u);
  EXPECT_EQ(s.assignments[0].slot_index, 1);
}

TEST(GreedyBaseline, NeverBeatsExactAndOftenTrailsAlgorithm1) {
  Rng rng(77);
  double greedy_sum = 0.0, algo1_sum = 0.0;
  for (int run = 0; run < 50; ++run) {
    const int n_slots = static_cast<int>(rng.uniform_int(2, 4));
    std::vector<OverlapSlot> slots;
    for (int s = 0; s < n_slots; ++s) {
      slots.push_back({s, rng.uniform_int(20, 120)});
    }
    std::vector<OverlapItem> items;
    for (int i = 0; i < 12; ++i) {
      const int prev = static_cast<int>(rng.uniform_int(0, n_slots - 2));
      items.push_back({i, rng.uniform_int(5, 60), rng.uniform(0.5, 40.0),
                       prev, prev + 1});
    }
    const double exact =
        solve_overlapped_exact(slots, items).total_profit;
    const double greedy =
        solve_overlapped_greedy(slots, items).total_profit;
    const double algo1 = solve_overlapped(slots, items, 0.1).total_profit;
    EXPECT_LE(greedy, exact + 1e-9);
    greedy_sum += greedy;
    algo1_sum += algo1;
  }
  // Aggregate quality: Algorithm 1's DP step beats plain greedy.
  EXPECT_GE(algo1_sum, greedy_sum);
}

// ---- Per-candidate profit overrides (multi-radio candidates) ----

TEST(PerCandidateProfit, ProfitInSelectsOverride) {
  OverlapItem item{0, 5, 3.0, 1, 4};
  // NaN defaults: both candidates share the item profit.
  EXPECT_DOUBLE_EQ(item.profit_in(1), 3.0);
  EXPECT_DOUBLE_EQ(item.profit_in(4), 3.0);
  item.prev_profit = 1.0;
  item.next_profit = 9.0;
  EXPECT_DOUBLE_EQ(item.profit_in(1), 1.0);
  EXPECT_DOUBLE_EQ(item.profit_in(4), 9.0);
  // Any other index falls back to the shared profit.
  EXPECT_DOUBLE_EQ(item.profit_in(2), 3.0);
}

TEST(PerCandidateProfit, SolversPickTheRicherCandidate) {
  // Both slots have room for the single item; its Wi-Fi-style next
  // candidate is worth 9 against 1 for the cellular prev — every
  // solver must land it in slot 1.
  const std::vector<OverlapSlot> slots = {{0, 10},
                                          {1, 10, RadioId::kWifi}};
  OverlapItem item{0, 5, 1.0, 0, 1};
  item.prev_profit = 1.0;
  item.next_profit = 9.0;
  const std::vector<OverlapItem> items = {item};
  for (const OverlapSolution& s :
       {solve_overlapped_exact(slots, items),
        solve_overlapped(slots, items, 0.1),
        solve_overlapped_greedy(slots, items)}) {
    ASSERT_EQ(s.assignments.size(), 1u);
    EXPECT_EQ(s.assignments[0].slot_index, 1);
    EXPECT_DOUBLE_EQ(s.total_profit, 9.0);
  }
}

TEST(PerCandidateProfit, NegativeCandidateNeverChosen) {
  // A Wi-Fi candidate whose association cost outweighs the saving gets
  // a negative override; the item must take its cellular slot instead,
  // and take nothing if the cellular slot is full.
  const std::vector<OverlapSlot> slots = {{0, 10},
                                          {1, 100, RadioId::kWifi}};
  OverlapItem item{0, 5, 2.0, 0, 1};
  item.next_profit = -0.5;
  const std::vector<OverlapItem> items = {item};
  const OverlapSolution s = solve_overlapped_exact(slots, items);
  ASSERT_EQ(s.assignments.size(), 1u);
  EXPECT_EQ(s.assignments[0].slot_index, 0);

  const std::vector<OverlapSlot> tight = {{0, 3},
                                          {1, 100, RadioId::kWifi}};
  const OverlapSolution none = solve_overlapped_exact(tight, items);
  EXPECT_TRUE(none.assignments.empty());
  EXPECT_DOUBLE_EQ(none.total_profit, 0.0);
}

TEST(PerCandidateProfit, NanDefaultBitCompatibleWithSharedProfit) {
  // Explicitly setting both overrides to the shared value must produce
  // the same solutions (bitwise profits) as the NaN defaults, across
  // random instances and all three solvers.
  Rng rng(2026);
  for (int run = 0; run < 20; ++run) {
    const int n_slots = static_cast<int>(rng.uniform_int(2, 4));
    std::vector<OverlapSlot> slots;
    for (int s = 0; s < n_slots; ++s) {
      slots.push_back({s, rng.uniform_int(20, 120)});
    }
    std::vector<OverlapItem> plain, pinned;
    const int n_items = static_cast<int>(rng.uniform_int(4, 12));
    for (int i = 0; i < n_items; ++i) {
      const int prev = static_cast<int>(rng.uniform_int(0, n_slots - 2));
      OverlapItem item{i, rng.uniform_int(5, 60), rng.uniform(0.5, 40.0),
                       prev, prev + 1};
      plain.push_back(item);
      item.prev_profit = item.profit;
      item.next_profit = item.profit;
      pinned.push_back(item);
    }
    const OverlapSolution a = solve_overlapped(slots, plain, 0.1);
    const OverlapSolution b = solve_overlapped(slots, pinned, 0.1);
    EXPECT_EQ(a.total_profit, b.total_profit) << "run " << run;
    EXPECT_EQ(a.assignments.size(), b.assignments.size()) << "run " << run;
    EXPECT_EQ(solve_overlapped_exact(slots, plain).total_profit,
              solve_overlapped_exact(slots, pinned).total_profit);
    EXPECT_EQ(solve_overlapped_greedy(slots, plain).total_profit,
              solve_overlapped_greedy(slots, pinned).total_profit);
  }
}

TEST(PerCandidateProfit, CheckFeasibleUsesPerCandidateTotals) {
  const std::vector<OverlapSlot> slots = {{0, 10}, {1, 10}};
  OverlapItem item{0, 5, 1.0, 0, 1};
  item.next_profit = 9.0;
  const std::vector<OverlapItem> items = {item};
  OverlapSolution s;
  s.assignments = {{0, 1}};
  s.slot_used = {0, 5};
  s.total_profit = 9.0;
  EXPECT_NO_THROW(check_feasible(slots, items, s));
  s.total_profit = 1.0;  // the shared profit is NOT the slot-1 value
  EXPECT_THROW(check_feasible(slots, items, s), Error);
}

TEST(PerCandidateProfit, RejectsNonFiniteOverride) {
  const std::vector<OverlapSlot> slots = {{0, 10}, {1, 10}};
  OverlapItem item{0, 5, 1.0, 0, 1};
  item.next_profit = std::numeric_limits<double>::infinity();
  const std::vector<OverlapItem> items = {item};
  EXPECT_THROW(solve_overlapped(slots, items, 0.1), Error);
}

// Property suite: Algorithm 1 achieves at least (1−ε)/2 of the
// brute-force optimum on random overlapped instances.
struct BoundCase {
  double eps;
  std::uint64_t seed;
};

class Algorithm1Bound : public ::testing::TestWithParam<BoundCase> {};

TEST_P(Algorithm1Bound, AchievesHalfGuarantee) {
  const auto [eps, seed] = GetParam();
  Rng rng(seed);
  for (int run = 0; run < 20; ++run) {
    const int n_slots = static_cast<int>(rng.uniform_int(2, 4));
    std::vector<OverlapSlot> slots;
    for (int s = 0; s < n_slots; ++s) {
      slots.push_back({s, rng.uniform_int(20, 120)});
    }
    std::vector<OverlapItem> items;
    const int n_items = static_cast<int>(rng.uniform_int(4, 12));
    for (int i = 0; i < n_items; ++i) {
      const int prev = static_cast<int>(rng.uniform_int(0, n_slots - 2));
      items.push_back({i, rng.uniform_int(5, 60), rng.uniform(0.5, 40.0),
                       prev, prev + 1});
    }
    const double exact =
        solve_overlapped_exact(slots, items).total_profit;
    const double approx =
        solve_overlapped(slots, items, eps).total_profit;
    EXPECT_GE(approx, (1.0 - eps) / 2.0 * exact - 1e-9)
        << "eps=" << eps << " run=" << run;
    EXPECT_LE(approx, exact + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EpsGrid, Algorithm1Bound,
    ::testing::Values(BoundCase{0.05, 11}, BoundCase{0.1, 12},
                      BoundCase{0.1, 13}, BoundCase{0.25, 14},
                      BoundCase{0.5, 15}, BoundCase{0.9, 16}));

}  // namespace
}  // namespace netmaster::sched
