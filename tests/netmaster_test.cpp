// Tests for the full NetMaster policy: classification, scheduling,
// real-time adjustment, duty fallback, ablations.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "policy/baseline.hpp"
#include "policy/netmaster.hpp"
#include "sim/accounting.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster::policy {
namespace {

/// 14-day training + 7-day eval from a synthetic volunteer.
struct Traces {
  UserTrace training;
  UserTrace eval;
};

Traces make_traces(std::uint64_t seed = 42) {
  const auto profile = synth::make_user(synth::Archetype::kStudent, 2);
  const UserTrace full = synth::generate_trace(profile, 21, seed);
  return {full.slice_days(0, 14), full.slice_days(14, 7)};
}

TEST(NetMaster, ExecutesEveryActivityOnce) {
  const Traces tr = make_traces();
  const NetMasterPolicy policy(tr.training, NetMasterConfig{});
  const sim::PolicyOutcome o = policy.run(tr.eval);
  ASSERT_EQ(o.transfers.size(), tr.eval.activities.size());
  std::vector<bool> seen(tr.eval.activities.size(), false);
  for (const sim::ExecutedTransfer& t : o.transfers) {
    ASSERT_LT(t.activity_index, seen.size());
    EXPECT_FALSE(seen[t.activity_index]);
    seen[t.activity_index] = true;
    EXPECT_GE(t.start, 0);
    EXPECT_LE(t.start + t.duration, tr.eval.trace_end());
  }
}

TEST(NetMaster, EnergyWellBelowBaseline) {
  const Traces tr = make_traces();
  const RadioPowerParams radio = RadioPowerParams::wcdma();
  const sim::SimReport base =
      sim::account(tr.eval, BaselinePolicy().run(tr.eval), radio);
  const NetMasterPolicy policy(tr.training, NetMasterConfig{});
  const sim::SimReport nm =
      sim::account(tr.eval, policy.run(tr.eval), radio);
  EXPECT_LT(nm.energy_j, 0.6 * base.energy_j);
  EXPECT_LT(nm.radio_on_ms, 0.6 * base.radio_on_ms);
  EXPECT_EQ(nm.bytes_down + nm.bytes_up, base.bytes_down + base.bytes_up);
}

TEST(NetMaster, InterruptsStayUnderPaperBound) {
  const Traces tr = make_traces();
  const NetMasterPolicy policy(tr.training, NetMasterConfig{});
  const sim::SimReport rep = sim::account(
      tr.eval, policy.run(tr.eval), RadioPowerParams::wcdma());
  EXPECT_LT(rep.affected_fraction, 0.01);  // paper: < 1%
}

TEST(NetMaster, UserInitiatedNeverMoved) {
  const Traces tr = make_traces();
  const NetMasterPolicy policy(tr.training, NetMasterConfig{});
  const sim::PolicyOutcome o = policy.run(tr.eval);
  for (const sim::ExecutedTransfer& t : o.transfers) {
    const NetworkActivity& act = tr.eval.activities[t.activity_index];
    if (act.user_initiated) {
      EXPECT_EQ(t.start, act.start);
      EXPECT_EQ(t.duration, act.duration);
    }
  }
}

TEST(NetMaster, DutyWakesOnlyOutsidePredictedSlots) {
  const Traces tr = make_traces();
  const NetMasterPolicy policy(tr.training, NetMasterConfig{});
  const sim::PolicyOutcome o = policy.run(tr.eval);
  IntervalSet active;
  for (int day = 0; day < tr.eval.num_days; ++day) {
    active.add(policy.predictor().predict_day(day).active_slots);
  }
  for (const duty::WakeEvent& w : o.wakes) {
    EXPECT_FALSE(active.contains(w.time)) << "wake at " << w.time;
  }
}

TEST(NetMaster, DrivesTheDataSwitch) {
  const Traces tr = make_traces();
  const NetMasterPolicy policy(tr.training, NetMasterConfig{});
  const sim::PolicyOutcome o = policy.run(tr.eval);
  ASSERT_TRUE(o.radio_allowed.has_value());
  // Every transfer is covered once the accountant unions them in; the
  // grace windows alone must already cover each transfer start.
  for (const sim::ExecutedTransfer& t : o.transfers) {
    EXPECT_TRUE(o.radio_allowed->contains(t.start));
  }
}

TEST(NetMaster, SpecialAppAblationRaisesInterrupts) {
  const Traces tr = make_traces();
  NetMasterConfig with = {};
  NetMasterConfig without = {};
  without.enable_special_apps = false;
  const auto o_with = NetMasterPolicy(tr.training, with).run(tr.eval);
  const auto o_without =
      NetMasterPolicy(tr.training, without).run(tr.eval);
  EXPECT_GT(o_without.interrupts, o_with.interrupts);
}

TEST(NetMaster, NoPredictionRoutesEverythingThroughDuty) {
  const Traces tr = make_traces();
  NetMasterConfig cfg;
  cfg.enable_prediction = false;
  const NetMasterPolicy policy(tr.training, cfg);
  const sim::PolicyOutcome o = policy.run(tr.eval);
  // With no slots, the duty path must serve far more releases.
  NetMasterConfig full;
  const auto o_full = NetMasterPolicy(tr.training, full).run(tr.eval);
  EXPECT_GT(o.duty_releases, o_full.duty_releases);
  EXPECT_GT(o.wakes.size(), o_full.wakes.size());
}

TEST(NetMaster, NoDutyStillExecutesEverything) {
  const Traces tr = make_traces();
  NetMasterConfig cfg;
  cfg.enable_duty = false;
  const NetMasterPolicy policy(tr.training, cfg);
  const sim::PolicyOutcome o = policy.run(tr.eval);
  EXPECT_EQ(o.transfers.size(), tr.eval.activities.size());
  EXPECT_TRUE(o.wakes.empty());
}

TEST(NetMaster, SlotPoweredModeSavesLess) {
  const Traces tr = make_traces();
  const RadioPowerParams radio = RadioPowerParams::wcdma();
  NetMasterConfig powered;
  powered.slot_powered_radio = true;
  const sim::SimReport rep_powered = sim::account(
      tr.eval, NetMasterPolicy(tr.training, powered).run(tr.eval), radio);
  const sim::SimReport rep_full = sim::account(
      tr.eval, NetMasterPolicy(tr.training, {}).run(tr.eval), radio);
  EXPECT_GT(rep_powered.energy_j, rep_full.energy_j);
}

TEST(NetMaster, DeterministicAcrossRuns) {
  const Traces tr = make_traces();
  const NetMasterPolicy policy(tr.training, NetMasterConfig{});
  const sim::PolicyOutcome a = policy.run(tr.eval);
  const sim::PolicyOutcome b = policy.run(tr.eval);
  ASSERT_EQ(a.transfers.size(), b.transfers.size());
  for (std::size_t i = 0; i < a.transfers.size(); ++i) {
    EXPECT_EQ(a.transfers[i].start, b.transfers[i].start);
    EXPECT_EQ(a.transfers[i].activity_index,
              b.transfers[i].activity_index);
  }
  EXPECT_EQ(a.wakes.size(), b.wakes.size());
  EXPECT_EQ(a.interrupts, b.interrupts);
}

TEST(NetMaster, RejectsBadEps) {
  const Traces tr = make_traces();
  NetMasterConfig cfg;
  cfg.eps = 0.0;
  EXPECT_THROW(NetMasterPolicy(tr.training, cfg), Error);
  cfg.eps = 1.0;
  EXPECT_THROW(NetMasterPolicy(tr.training, cfg), Error);
}

TEST(NetMaster, DeferralLatenciesAreReasonable) {
  const Traces tr = make_traces();
  const NetMasterPolicy policy(tr.training, NetMasterConfig{});
  const sim::PolicyOutcome o = policy.run(tr.eval);
  EXPECT_FALSE(o.deferral_latency_s.empty());
  for (double lat : o.deferral_latency_s) {
    EXPECT_GE(lat, 0.0);
    EXPECT_LE(lat, 24.0 * 3600.0);  // never held past a day
  }
}

}  // namespace
}  // namespace netmaster::policy
