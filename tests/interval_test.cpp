// Unit + property tests for Interval / IntervalSet.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/interval.hpp"
#include "common/rng.hpp"

namespace netmaster {
namespace {

TEST(Interval, BasicProperties) {
  const Interval iv{10, 20};
  EXPECT_EQ(iv.length(), 10);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.contains(10));
  EXPECT_TRUE(iv.contains(19));
  EXPECT_FALSE(iv.contains(20));
  EXPECT_FALSE(iv.contains(9));
}

TEST(Interval, EmptyInterval) {
  const Interval iv{5, 5};
  EXPECT_TRUE(iv.empty());
  EXPECT_EQ(iv.length(), 0);
  EXPECT_FALSE(iv.contains(5));
}

TEST(Interval, Intersection) {
  EXPECT_EQ(intersect({0, 10}, {5, 15}), (Interval{5, 10}));
  EXPECT_EQ(intersect({0, 10}, {10, 20}).length(), 0);
  EXPECT_TRUE(intersect({0, 5}, {6, 9}).empty());
  EXPECT_EQ(intersect({0, 100}, {20, 30}), (Interval{20, 30}));
}

TEST(Interval, Overlaps) {
  EXPECT_TRUE(overlaps({0, 10}, {9, 20}));
  EXPECT_FALSE(overlaps({0, 10}, {10, 20}));  // half-open: touching only
  EXPECT_TRUE(overlaps({5, 6}, {0, 100}));
}

TEST(IntervalSet, AddMergesOverlapping) {
  IntervalSet set;
  set.add(0, 10);
  set.add(5, 15);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals().front(), (Interval{0, 15}));
  EXPECT_EQ(set.total_length(), 15);
}

TEST(IntervalSet, AddMergesAdjacent) {
  IntervalSet set;
  set.add(0, 10);
  set.add(10, 20);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.total_length(), 20);
}

TEST(IntervalSet, DisjointStaysDisjoint) {
  IntervalSet set;
  set.add(0, 10);
  set.add(20, 30);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.total_length(), 20);
}

TEST(IntervalSet, EmptyAddIsNoop) {
  IntervalSet set;
  set.add(5, 5);
  set.add(7, 3);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.total_length(), 0);
}

TEST(IntervalSet, OutOfOrderAdds) {
  IntervalSet set;
  set.add(50, 60);
  set.add(0, 10);
  set.add(30, 40);
  set.add(8, 35);  // bridges the first two
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 40}));
  EXPECT_EQ(set.intervals()[1], (Interval{50, 60}));
}

TEST(IntervalSet, ConstructorCanonicalizes) {
  const IntervalSet set({{5, 10}, {0, 6}, {20, 20}, {12, 14}});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 10}));
  EXPECT_EQ(set.intervals()[1], (Interval{12, 14}));
}

TEST(IntervalSet, Contains) {
  IntervalSet set;
  set.add(10, 20);
  set.add(30, 40);
  EXPECT_TRUE(set.contains(10));
  EXPECT_TRUE(set.contains(19));
  EXPECT_FALSE(set.contains(20));
  EXPECT_FALSE(set.contains(25));
  EXPECT_TRUE(set.contains(35));
  EXPECT_FALSE(set.contains(40));
}

TEST(IntervalSet, OverlapLength) {
  IntervalSet set;
  set.add(10, 20);
  set.add(30, 40);
  EXPECT_EQ(set.overlap_length(0, 100), 20);
  EXPECT_EQ(set.overlap_length(15, 35), 10);
  EXPECT_EQ(set.overlap_length(20, 30), 0);
  EXPECT_EQ(set.overlap_length(12, 18), 6);
  EXPECT_EQ(set.overlap_length(18, 12), 0);  // inverted window
}

TEST(IntervalSet, UnionWithOtherSet) {
  IntervalSet a;
  a.add(0, 10);
  IntervalSet b;
  b.add(5, 20);
  b.add(30, 40);
  a.add(b);
  EXPECT_EQ(a.total_length(), 30);
  EXPECT_EQ(a.size(), 2u);
}

TEST(IntervalSet, ComplementBasic) {
  IntervalSet set;
  set.add(10, 20);
  set.add(30, 40);
  const IntervalSet comp = set.complement(0, 50);
  ASSERT_EQ(comp.size(), 3u);
  EXPECT_EQ(comp.intervals()[0], (Interval{0, 10}));
  EXPECT_EQ(comp.intervals()[1], (Interval{20, 30}));
  EXPECT_EQ(comp.intervals()[2], (Interval{40, 50}));
}

TEST(IntervalSet, ComplementOfEmptyIsWindow) {
  const IntervalSet set;
  const IntervalSet comp = set.complement(5, 15);
  ASSERT_EQ(comp.size(), 1u);
  EXPECT_EQ(comp.intervals().front(), (Interval{5, 15}));
}

TEST(IntervalSet, ComplementClipsToWindow) {
  IntervalSet set;
  set.add(0, 100);
  EXPECT_TRUE(set.complement(20, 80).empty());
  IntervalSet partial;
  partial.add(0, 50);
  const IntervalSet comp = partial.complement(20, 80);
  ASSERT_EQ(comp.size(), 1u);
  EXPECT_EQ(comp.intervals().front(), (Interval{50, 80}));
}

TEST(IntervalSet, ComplementEmptyWindow) {
  IntervalSet set;
  set.add(0, 10);
  EXPECT_TRUE(set.complement(5, 5).empty());
  EXPECT_TRUE(set.complement(10, 5).empty());
}

// Property test: the canonical set must agree with a brute-force
// boolean timeline under random adds.
class IntervalSetProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IntervalSetProperty, MatchesBruteForceTimeline) {
  Rng rng(GetParam());
  constexpr int kUniverse = 300;
  std::vector<bool> timeline(kUniverse, false);
  IntervalSet set;

  for (int step = 0; step < 60; ++step) {
    const TimeMs a = rng.uniform_int(0, kUniverse - 1);
    const TimeMs b = rng.uniform_int(0, kUniverse - 1);
    const TimeMs lo = std::min(a, b), hi = std::max(a, b);
    set.add(lo, hi);
    for (TimeMs t = lo; t < hi; ++t) timeline[t] = true;
  }

  // Coverage agrees pointwise.
  for (TimeMs t = 0; t < kUniverse; ++t) {
    EXPECT_EQ(set.contains(t), timeline[t]) << "at t=" << t;
  }
  // Total measure agrees.
  DurationMs measure = 0;
  for (bool on : timeline) measure += on ? 1 : 0;
  EXPECT_EQ(set.total_length(), measure);
  // Canonical form: sorted, disjoint, non-empty.
  const auto& ivs = set.intervals();
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    EXPECT_LT(ivs[i].begin, ivs[i].end);
    if (i > 0) {
      EXPECT_LT(ivs[i - 1].end, ivs[i].begin);
    }
  }
  // Complement partitions the window.
  const IntervalSet comp = set.complement(0, kUniverse);
  EXPECT_EQ(set.total_length() + comp.total_length(), kUniverse);
  for (TimeMs t = 0; t < kUniverse; ++t) {
    EXPECT_NE(set.contains(t), comp.contains(t));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, IntervalSetProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace netmaster
