// Tests for trace CSV serialization: round trips and failure injection.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "trace/trace_io.hpp"

namespace netmaster {
namespace {

UserTrace sample_trace() {
  UserTrace t;
  t.user = 7;
  t.num_days = 1;
  t.app_names = {"alpha", "beta"};
  t.sessions = {{100, 500}, {1000, 2000}};
  t.usages = {{0, 150, 40}, {1, 1100, 300}};
  t.activities = {
      {0, 200, 100, 1234, 56, true, false},
      {1, 5000, 400, 9, 0, false, true},
  };
  return t;
}

TEST(TraceIo, RoundTripIdentity) {
  const UserTrace original = sample_trace();
  std::stringstream ss;
  write_trace(ss, original);
  const UserTrace parsed = read_trace(ss);
  EXPECT_EQ(parsed.user, original.user);
  EXPECT_EQ(parsed.num_days, original.num_days);
  EXPECT_EQ(parsed.app_names, original.app_names);
  EXPECT_EQ(parsed.sessions, original.sessions);
  EXPECT_EQ(parsed.usages, original.usages);
  EXPECT_EQ(parsed.activities, original.activities);
}

TEST(TraceIo, ParserResortsRecords) {
  // Records in arbitrary order parse into sorted vectors.
  std::stringstream ss;
  ss << "user,1,days,1\n"
     << "app,0,a\n"
     << "screen,1000,2000\n"
     << "screen,100,500\n"
     << "usage,0,1500,10\n"
     << "usage,0,200,10\n"
     << "net,0,1200,50,1,1,0,1\n"
     << "net,0,300,50,1,1,1,0\n";
  const UserTrace t = read_trace(ss);
  EXPECT_EQ(t.sessions[0].begin, 100);
  EXPECT_EQ(t.usages[0].time, 200);
  EXPECT_EQ(t.activities[0].start, 300);
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream ss;
  ss << "# a comment\n\n"
     << "user,1,days,1\n"
     << "# another\n"
     << "app,0,a\n\n";
  EXPECT_NO_THROW(read_trace(ss));
}

TEST(TraceIo, MissingHeaderThrows) {
  std::stringstream ss;
  ss << "app,0,a\nscreen,0,10\n";
  EXPECT_THROW(read_trace(ss), TraceParseError);
}

TEST(TraceIo, UnknownRecordKindThrows) {
  std::stringstream ss;
  ss << "user,1,days,1\nbogus,1,2\n";
  EXPECT_THROW(read_trace(ss), TraceParseError);
}

TEST(TraceIo, WrongFieldCountThrows) {
  std::stringstream ss;
  ss << "user,1,days,1\nscreen,100\n";
  EXPECT_THROW(read_trace(ss), TraceParseError);
}

TEST(TraceIo, NonIntegerFieldThrows) {
  std::stringstream ss;
  ss << "user,1,days,1\nscreen,abc,200\n";
  EXPECT_THROW(read_trace(ss), TraceParseError);
}

TEST(TraceIo, EmptyIntegerFieldThrows) {
  std::stringstream ss;
  ss << "user,1,days,1\nscreen,,200\n";
  EXPECT_THROW(read_trace(ss), TraceParseError);
}

TEST(TraceIo, TrailingGarbageAfterIntegerThrows) {
  // from_chars stops at the first non-digit; the parser must reject
  // the remainder instead of silently truncating "100abc" to 100.
  for (const char* line : {"screen,100abc,200", "screen,100,200 ",
                           "screen,100,2e2", "screen,0x10,200"}) {
    std::stringstream ss;
    ss << "user,1,days,1\n" << line << '\n';
    EXPECT_THROW(read_trace(ss), TraceParseError) << line;
  }
}

TEST(TraceIo, OutOfRangeIntegerThrows) {
  // Values past int64 range must fail parsing, not wrap or saturate
  // into a default-initialized value.
  std::stringstream ss;
  ss << "user,1,days,1\nscreen,99999999999999999999999,200\n";
  EXPECT_THROW(read_trace(ss), TraceParseError);
  std::stringstream header;
  header << "user,99999999999999999999999,days,1\n";
  EXPECT_THROW(read_trace(header), TraceParseError);
}

TEST(TraceIo, WhitespacePaddedIntegerThrows) {
  std::stringstream ss;
  ss << "user,1,days,1\nscreen, 100,200\n";
  EXPECT_THROW(read_trace(ss), TraceParseError);
}

TEST(TraceIo, NonDenseAppIdsThrow) {
  std::stringstream ss;
  ss << "user,1,days,1\napp,1,beta\n";
  EXPECT_THROW(read_trace(ss), TraceParseError);
}

TEST(TraceIo, BadBooleanFlagThrows) {
  std::stringstream ss;
  ss << "user,1,days,1\napp,0,a\nnet,0,100,50,1,1,2,0\n";
  EXPECT_THROW(read_trace(ss), TraceParseError);
}

TEST(TraceIo, MalformedHeaderThrows) {
  std::stringstream ss;
  ss << "user,1,weeks,1\n";
  EXPECT_THROW(read_trace(ss), TraceParseError);
}

TEST(TraceIo, ParsedTraceStillValidated) {
  // Structurally fine CSV whose content violates model invariants
  // (activity outside the declared day span).
  std::stringstream ss;
  ss << "user,1,days,1\napp,0,a\n"
     << "net,0," << 2 * kMsPerDay << ",50,1,1,0,1\n";
  EXPECT_THROW(read_trace(ss), Error);
}

TEST(TraceIo, CommaInAppNameRejectedOnWrite) {
  UserTrace t = sample_trace();
  t.app_names[0] = "bad,name";
  std::stringstream ss;
  EXPECT_THROW(write_trace(ss, t), Error);
}

TEST(TraceIo, FileSaveLoadRoundTrip) {
  const UserTrace original = sample_trace();
  const std::string path = testing::TempDir() + "/nm_trace_test.csv";
  save_trace(path, original);
  const UserTrace loaded = load_trace(path);
  EXPECT_EQ(loaded.activities, original.activities);
  EXPECT_EQ(loaded.sessions, original.sessions);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/dir/trace.csv"), Error);
}

}  // namespace
}  // namespace netmaster
