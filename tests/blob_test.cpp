// Tests for mem::UserBlob: lossless round trips (synthetic traces,
// empty users, invariant-violating edge traces, CRLF CSV imports),
// file I/O through the mmap read path, and rejection of corrupted
// images — truncations, bit flips, bad magic/version/CRC, trailing
// bytes — via BlobError, never UB.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>
#include <random>
#include <sstream>
#include <vector>

#include "mem/blob.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace netmaster::mem {
namespace {

void expect_trace_eq(const UserTrace& a, const UserTrace& b) {
  EXPECT_EQ(a.user, b.user);
  EXPECT_EQ(a.num_days, b.num_days);
  EXPECT_EQ(a.app_names, b.app_names);
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.usages, b.usages);
  EXPECT_EQ(a.activities, b.activities);
}

std::vector<UserTrace> round_trip(std::span<const UserTrace> traces) {
  return UserBlob::decode(UserBlob::encode(traces));
}

TEST(UserBlob, RoundTripsSynthTraces) {
  for (const std::uint64_t seed : {1u, 42u}) {
    for (int arch = 0; arch < 3; ++arch) {
      const UserTrace t = synth::generate_trace(
          synth::make_user(static_cast<synth::Archetype>(arch), 9), 14,
          seed);
      const std::vector<UserTrace> back = round_trip({&t, 1});
      ASSERT_EQ(back.size(), 1u);
      expect_trace_eq(back[0], t);
    }
  }
}

TEST(UserBlob, RoundTripsEmptyUserAndEmptyBlob) {
  UserTrace empty;
  empty.user = 77;
  const std::vector<UserTrace> back = round_trip({&empty, 1});
  ASSERT_EQ(back.size(), 1u);
  expect_trace_eq(back[0], empty);

  const std::vector<UserTrace> none = round_trip({});
  EXPECT_TRUE(none.empty());
}

TEST(UserBlob, RoundTripsValidateRejectedEdgeTraces) {
  // Blobs store traces as-is: even traces validate() rejects must
  // survive eviction unchanged, or a spilled failed user would decode
  // differently than it was admitted.
  UserTrace bad;
  bad.user = -3;
  bad.num_days = -1;
  bad.app_names = {"", "x,y was sanitized upstream", "z"};
  bad.sessions = {{seconds(50), seconds(10)},   // inverted
                  {seconds(5), seconds(60)}};   // overlapping
  bad.usages = {{99, -seconds(7), -seconds(1)}};  // unknown app, t<0
  NetworkActivity n;
  n.app = -5;
  n.start = -seconds(100);
  n.duration = -1;
  n.bytes_down = -42;
  n.bytes_up = std::numeric_limits<std::int64_t>::max();
  n.user_initiated = true;
  n.deferrable = true;
  bad.activities = {n};
  EXPECT_THROW(bad.validate(), Error);

  const std::vector<UserTrace> back = round_trip({&bad, 1});
  ASSERT_EQ(back.size(), 1u);
  expect_trace_eq(back[0], bad);
}

TEST(UserBlob, RoundTripsCrlfCsvImport) {
  // A trace shipped through Windows tooling arrives with CRLF line
  // endings; the parser strips them and the blob round trip preserves
  // the parsed trace exactly.
  const UserTrace original = synth::generate_trace(
      synth::make_user(synth::Archetype::kCommuter, 4), 7, 11);
  std::ostringstream csv;
  write_trace(csv, original);
  std::string crlf = csv.str();
  std::string::size_type at = 0;
  while ((at = crlf.find('\n', at)) != std::string::npos) {
    crlf.replace(at, 1, "\r\n");
    at += 2;
  }
  std::istringstream in(crlf);
  const UserTrace parsed = read_trace(in);
  expect_trace_eq(parsed, original);

  const std::vector<UserTrace> back = round_trip({&parsed, 1});
  ASSERT_EQ(back.size(), 1u);
  expect_trace_eq(back[0], original);
}

TEST(UserBlob, RoundTripsMultiTraceImages) {
  const UserTrace a = synth::generate_trace(
      synth::make_user(synth::Archetype::kCommuter, 1), 7, 3);
  const UserTrace b = synth::generate_trace(
      synth::make_user(synth::Archetype::kStudent, 2), 14, 4);
  const UserTrace traces[] = {a, b};
  const std::vector<UserTrace> back = round_trip(traces);
  ASSERT_EQ(back.size(), 2u);
  expect_trace_eq(back[0], a);
  expect_trace_eq(back[1], b);
}

TEST(UserBlob, FileRoundTripViaMmapPath) {
  const UserTrace t = synth::generate_trace(
      synth::make_user(synth::Archetype::kNightOwl, 6), 7, 8);
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "nm_blob_test.nmub";
  const UserTrace traces[] = {t, t};
  UserBlob::write_file(path.string(), traces);
  const std::vector<UserTrace> back = UserBlob::read_file(path.string());
  ASSERT_EQ(back.size(), 2u);
  expect_trace_eq(back[0], t);
  expect_trace_eq(back[1], t);
  std::filesystem::remove(path);
  EXPECT_THROW(UserBlob::read_file(path.string()), Error);
}

std::vector<std::byte> sample_image() {
  const UserTrace t = synth::generate_trace(
      synth::make_user(synth::Archetype::kCommuter, 2), 7, 5);
  return UserBlob::encode({&t, 1});
}

TEST(UserBlob, RejectsEveryHeaderCorruption) {
  const std::vector<std::byte> image = sample_image();
  // Flipping any single header byte must be caught: magic, version,
  // payload length, CRC, or trace count.
  for (std::size_t i = 0; i < 24; ++i) {
    std::vector<std::byte> bad = image;
    bad[i] ^= std::byte{0x40};
    EXPECT_THROW(UserBlob::decode(bad), BlobError) << "header byte " << i;
  }
}

TEST(UserBlob, RejectsTruncationAtEveryBoundary) {
  const std::vector<std::byte> image = sample_image();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{23}, std::size_t{24},
        image.size() / 2, image.size() - 1}) {
    const std::span<const std::byte> cut{image.data(), keep};
    EXPECT_THROW(UserBlob::decode(cut), BlobError) << "kept " << keep;
  }
}

TEST(UserBlob, RejectsTrailingBytes) {
  std::vector<std::byte> image = sample_image();
  image.push_back(std::byte{0});
  EXPECT_THROW(UserBlob::decode(image), BlobError);
}

TEST(UserBlob, FuzzedPayloadFlipsAlwaysRejected) {
  // Any payload bit flip must trip the CRC (or a structural check) —
  // seeded, so a failure reproduces.
  const std::vector<std::byte> image = sample_image();
  std::mt19937 rng(1234);
  std::uniform_int_distribution<std::size_t> pick(24, image.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::byte> bad = image;
    bad[pick(rng)] ^= std::byte{static_cast<unsigned char>(1 << bit(rng))};
    EXPECT_THROW(UserBlob::decode(bad), BlobError) << "iteration " << iter;
  }
}

TEST(UserBlob, FuzzedRandomImagesNeverCrash) {
  // Pure garbage images: decode must throw BlobError, never read out
  // of bounds (the ASan rerun enforces the "never" part).
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::byte> garbage(static_cast<std::size_t>(iter * 7 % 256));
    for (std::byte& b : garbage) {
      b = std::byte{static_cast<unsigned char>(byte(rng))};
    }
    EXPECT_THROW(UserBlob::decode(garbage), BlobError);
  }
}

TEST(TraceFootprint, CountsHeapBytes) {
  UserTrace t;
  EXPECT_EQ(trace_footprint_bytes(t), sizeof(UserTrace));
  t.activities.resize(100);
  t.app_names.push_back(std::string(200, 'x'));  // beyond SSO
  const std::size_t footprint = trace_footprint_bytes(t);
  EXPECT_GE(footprint,
            sizeof(UserTrace) + 100 * sizeof(NetworkActivity) + 200);
}

}  // namespace
}  // namespace netmaster::mem
