// Tests for the correlation matrices behind Figs. 3–4.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mining/pearson.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster::mining {
namespace {

UserTrace trace_with_usages(UserId id, std::vector<int> hours_per_day,
                            int days) {
  UserTrace t;
  t.user = id;
  t.num_days = days;
  t.app_names = {"a"};
  for (int day = 0; day < days; ++day) {
    for (int hour : hours_per_day) {
      const TimeMs at = hour_start(day, hour) + kMsPerMinute;
      t.sessions.push_back({at, at + 5000});
      t.usages.push_back({0, at, 1000});
    }
  }
  return t;
}

TEST(CrossUser, IdenticalPatternsCorrelatePerfectly) {
  TraceSet set;
  set.users.push_back(trace_with_usages(1, {9, 12, 20}, 3));
  set.users.push_back(trace_with_usages(2, {9, 12, 20}, 3));
  const CorrelationMatrix m = cross_user_matrix(set);
  EXPECT_EQ(m.n, 2u);
  EXPECT_NEAR(m.at(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(m.off_diagonal_mean(), 1.0, 1e-12);
}

TEST(CrossUser, MatrixIsSymmetricWithUnitDiagonal) {
  TraceSet set;
  set.users.push_back(trace_with_usages(1, {9, 12}, 3));
  set.users.push_back(trace_with_usages(2, {2, 22}, 3));
  set.users.push_back(trace_with_usages(3, {9, 22}, 3));
  const CorrelationMatrix m = cross_user_matrix(set);
  for (std::size_t i = 0; i < m.n; ++i) {
    EXPECT_DOUBLE_EQ(m.at(i, i), 1.0);
    for (std::size_t j = 0; j < m.n; ++j) {
      EXPECT_DOUBLE_EQ(m.at(i, j), m.at(j, i));
      EXPECT_GE(m.at(i, j), -1.0);
      EXPECT_LE(m.at(i, j), 1.0);
    }
  }
}

TEST(CrossUser, DisjointHoursAnticorrelate) {
  TraceSet set;
  set.users.push_back(trace_with_usages(1, {9}, 3));
  set.users.push_back(trace_with_usages(2, {21}, 3));
  const CorrelationMatrix m = cross_user_matrix(set);
  EXPECT_LT(m.at(0, 1), 0.0);
}

TEST(CrossDay, IdenticalDaysCorrelatePerfectly) {
  const UserTrace t = trace_with_usages(1, {9, 12, 20}, 5);
  const CorrelationMatrix m = cross_day_matrix(t, 5);
  EXPECT_NEAR(m.off_diagonal_mean(), 1.0, 1e-12);
}

TEST(CrossDay, RangeValidation) {
  const UserTrace t = trace_with_usages(1, {9}, 3);
  EXPECT_THROW(cross_day_matrix(t, 0), Error);
  EXPECT_THROW(cross_day_matrix(t, 4), Error);
  EXPECT_NO_THROW(cross_day_matrix(t, 3));
}

TEST(CrossDay, OffDiagonalMeanOfTrivialMatrix) {
  const UserTrace t = trace_with_usages(1, {9}, 1);
  const CorrelationMatrix m = cross_day_matrix(t, 1);
  EXPECT_DOUBLE_EQ(m.off_diagonal_mean(), 0.0);  // n < 2
}

TEST(StudyPopulation, PaperShapeHolds) {
  // Regression guard for the Figs. 3–4 calibration: cross-user mean
  // low, the Fig. 4 subject (user 4, retiree) high.
  const auto profiles = synth::study_population();
  const TraceSet traces = synth::generate_population(profiles, 21, 42);
  const double cross = cross_user_matrix(traces).off_diagonal_mean();
  EXPECT_LT(cross, 0.25);
  const double user4 =
      cross_day_matrix(traces.users[3], 8).off_diagonal_mean();
  EXPECT_GT(user4, 0.6);
  EXPECT_GT(user4, cross + 0.3);
}

}  // namespace
}  // namespace netmaster::mining
