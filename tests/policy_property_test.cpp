// Cross-policy property suite over randomized synthetic workloads:
// invariants every policy must satisfy regardless of seed, archetype,
// or parameter choice.
#include <gtest/gtest.h>

#include <memory>

#include "policy/baseline.hpp"
#include "policy/batch.hpp"
#include "policy/delay.hpp"
#include "policy/delay_batch.hpp"
#include "policy/netmaster.hpp"
#include "policy/oracle.hpp"
#include "sim/accounting.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster::policy {
namespace {

struct Case {
  synth::Archetype archetype;
  std::uint64_t seed;
};

class PolicyProperties : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    const auto profile = synth::make_user(GetParam().archetype, 1);
    const UserTrace full =
        synth::generate_trace(profile, 14, GetParam().seed);
    training_ = full.slice_days(0, 7);
    eval_ = full.slice_days(7, 7);
    policies_.push_back(std::make_unique<BaselinePolicy>());
    policies_.push_back(std::make_unique<DelayPolicy>(seconds(45)));
    policies_.push_back(std::make_unique<BatchPolicy>(4));
    policies_.push_back(std::make_unique<DelayBatchPolicy>(seconds(45)));
    policies_.push_back(std::make_unique<OraclePolicy>());
    policies_.push_back(
        std::make_unique<NetMasterPolicy>(training_, NetMasterConfig{}));
  }

  UserTrace training_;
  UserTrace eval_;
  std::vector<std::unique_ptr<Policy>> policies_;
};

TEST_P(PolicyProperties, EveryPolicyAccountsCleanly) {
  for (const auto& p : policies_) {
    EXPECT_NO_THROW(sim::account(eval_, p->run(eval_),
                                 RadioPowerParams::wcdma()))
        << p->name();
  }
}

TEST_P(PolicyProperties, BytesAreConserved) {
  const RadioPowerParams radio = RadioPowerParams::wcdma();
  const sim::SimReport base =
      sim::account(eval_, BaselinePolicy().run(eval_), radio);
  for (const auto& p : policies_) {
    const sim::SimReport rep = sim::account(eval_, p->run(eval_), radio);
    EXPECT_EQ(rep.bytes_down, base.bytes_down) << p->name();
    EXPECT_EQ(rep.bytes_up, base.bytes_up) << p->name();
  }
}

TEST_P(PolicyProperties, NoPolicyWastesMoreThanBaseline) {
  // Every optimization policy must do no worse than stock (they only
  // merge/shift deferrable traffic and possibly cut tails).
  const RadioPowerParams radio = RadioPowerParams::wcdma();
  const double base =
      sim::account(eval_, BaselinePolicy().run(eval_), radio).energy_j;
  for (const auto& p : policies_) {
    const double e = sim::account(eval_, p->run(eval_), radio).energy_j;
    EXPECT_LE(e, base * 1.0001) << p->name();
  }
}

TEST_P(PolicyProperties, UserInitiatedTrafficNeverDeferred) {
  for (const auto& p : policies_) {
    const sim::PolicyOutcome o = p->run(eval_);
    for (const sim::ExecutedTransfer& t : o.transfers) {
      const NetworkActivity& act = eval_.activities[t.activity_index];
      if (act.user_initiated) {
        EXPECT_EQ(t.start, act.start) << p->name();
      }
    }
  }
}

TEST_P(PolicyProperties, DeferralLatenciesNonNegative) {
  for (const auto& p : policies_) {
    const sim::PolicyOutcome o = p->run(eval_);
    for (double lat : o.deferral_latency_s) {
      EXPECT_GE(lat, 0.0) << p->name();
    }
  }
}

TEST_P(PolicyProperties, FixedIntervalPoliciesAreCausal) {
  // Delay/batch/delay&batch never run anything before it arrived
  // (only the oracle and NetMaster's planned prefetch may).
  for (const auto& p : policies_) {
    const std::string name = p->name();
    if (name.rfind("delay", 0) != 0 && name.rfind("batch", 0) != 0) {
      continue;
    }
    const sim::PolicyOutcome o = p->run(eval_);
    for (const sim::ExecutedTransfer& t : o.transfers) {
      EXPECT_GE(t.start, eval_.activities[t.activity_index].start)
          << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PolicyProperties,
    ::testing::Values(Case{synth::Archetype::kOfficeWorker, 1},
                      Case{synth::Archetype::kStudent, 2},
                      Case{synth::Archetype::kNightOwl, 3},
                      Case{synth::Archetype::kCommuter, 4},
                      Case{synth::Archetype::kRetiree, 5},
                      Case{synth::Archetype::kHeavyMessenger, 6},
                      Case{synth::Archetype::kWeekendWarrior, 7},
                      Case{synth::Archetype::kLightUser, 8},
                      Case{synth::Archetype::kStudent, 1001},
                      Case{synth::Archetype::kOfficeWorker, 777}));

}  // namespace
}  // namespace netmaster::policy
