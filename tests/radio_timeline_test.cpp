// Tests for engine::RadioTimeline: horizon clamping, the canonical
// (order-independent) union, and the transfer/wake convenience
// builders matching the hand-assembled IntervalSets they replaced.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "engine/radio_timeline.hpp"

namespace netmaster::engine {
namespace {

TEST(RadioTimeline, ClampsWindowsToHorizon) {
  RadioTimeline timeline(1000);
  timeline.allow(-100, 50);    // clipped at 0
  timeline.allow(900, 5000);   // clipped at the horizon
  timeline.allow(400, 400);    // empty: dropped
  timeline.allow(300, 200);    // inverted: dropped
  timeline.allow(2000, 3000);  // fully past the horizon: dropped
  const IntervalSet set = timeline.build();
  ASSERT_EQ(set.intervals().size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 50}));
  EXPECT_EQ(set.intervals()[1], (Interval{900, 1000}));
}

TEST(RadioTimeline, UnionIsCanonicalRegardlessOfOrder) {
  const std::vector<Interval> windows = {
      {100, 200}, {150, 300}, {300, 400}, {50, 120}};
  RadioTimeline forward(1000);
  for (const Interval& w : windows) forward.allow(w);
  RadioTimeline reverse(1000);
  for (auto it = windows.rbegin(); it != windows.rend(); ++it) {
    reverse.allow(*it);
  }
  EXPECT_EQ(forward.allowed().intervals(), reverse.allowed().intervals());
  // Touching/overlapping windows merge into one canonical interval.
  ASSERT_EQ(forward.allowed().intervals().size(), 1u);
  EXPECT_EQ(forward.allowed().intervals()[0], (Interval{50, 400}));
}

TEST(RadioTimeline, TransfersExtendByGrace) {
  RadioTimeline timeline(10000);
  const std::vector<sim::ExecutedTransfer> transfers = {
      {0, 1000, 500},   // -> [1000, 1500 + grace)
      {1, 8500, 1000},  // -> clipped at the horizon
  };
  timeline.allow_transfers(transfers, 3000);
  const IntervalSet set = timeline.build();
  ASSERT_EQ(set.intervals().size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{1000, 4500}));
  EXPECT_EQ(set.intervals()[1], (Interval{8500, 10000}));

  // Zero grace covers exactly the execution windows.
  RadioTimeline bare(10000);
  bare.allow_transfers(transfers);
  EXPECT_EQ(bare.allowed().intervals()[0], (Interval{1000, 1500}));
}

TEST(RadioTimeline, WakesCoverProbeWindows) {
  RadioTimeline timeline(5000);
  std::vector<duty::WakeEvent> wakes(2);
  wakes[0].time = 100;
  wakes[0].window = 50;
  wakes[1].time = 4990;
  wakes[1].window = 100;  // clipped at the horizon
  timeline.allow_wakes(wakes);
  const IntervalSet set = timeline.build();
  ASSERT_EQ(set.intervals().size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{100, 150}));
  EXPECT_EQ(set.intervals()[1], (Interval{4990, 5000}));
}

TEST(RadioTimeline, MatchesHandAssembledSet) {
  // The construction the policies used to do by hand: transfer windows
  // plus grace, unioned with an existing allowed set.
  const std::vector<sim::ExecutedTransfer> transfers = {{0, 100, 200},
                                                        {1, 600, 100}};
  IntervalSet by_hand;
  for (const sim::ExecutedTransfer& tr : transfers) {
    by_hand.add(tr.start, std::min<TimeMs>(tr.start + tr.duration + 300,
                                           2000));
  }
  by_hand.add(1500, 1800);

  RadioTimeline timeline(2000);
  IntervalSet prior;
  prior.add(1500, 1800);
  timeline.allow(prior);
  timeline.allow_transfers(transfers, 300);
  EXPECT_EQ(timeline.build().intervals(), by_hand.intervals());
}

TEST(RadioTimeline, RejectsNegativeHorizon) {
  EXPECT_THROW(RadioTimeline(-1), Error);
}

// ---------------------------------------------------------------------------
// Differential tests: the vectorized SoA accounting kernel
// (account_columns / account_interval_set) against the reference
// branchy implementation (power/radio_model.cpp account_transfers).
// The contract is bit-for-bit equality — every integer field AND the
// energy double — on every input.

void expect_accounting_equal(const RadioAccounting& got,
                             const RadioAccounting& want,
                             const std::string& context) {
  EXPECT_EQ(got.active_ms, want.active_ms) << context;
  EXPECT_EQ(got.tail_dch_ms, want.tail_dch_ms) << context;
  EXPECT_EQ(got.tail_fach_ms, want.tail_fach_ms) << context;
  EXPECT_EQ(got.promo_ms, want.promo_ms) << context;
  EXPECT_EQ(got.promotions, want.promotions) << context;
  EXPECT_EQ(got.radio_on_ms, want.radio_on_ms) << context;
  // Bitwise, not approximate: the kernel derives energy from the same
  // integer totals with the same expression.
  EXPECT_EQ(got.energy_j, want.energy_j) << context;
}

void expect_matches_reference(const IntervalSet& transfers,
                              const RadioPowerParams& params,
                              TimeMs horizon,
                              const IntervalSet* allowed,
                              const std::string& context) {
  const RadioAccounting want =
      account_transfers(transfers, params, horizon, allowed);
  const RadioAccounting got =
      account_interval_set(transfers, params, horizon, allowed);
  expect_accounting_equal(got, want, context);
}

std::vector<RadioPowerParams> param_suite() {
  std::vector<RadioPowerParams> suite;
  suite.push_back(RadioPowerParams::wcdma());
  suite.push_back(RadioPowerParams::lte());  // promo_fach_ms == 0
  RadioPowerParams zero_tails = RadioPowerParams::wcdma();
  zero_tails.dch_tail_ms = 0;
  zero_tails.fach_tail_ms = 0;
  suite.push_back(zero_tails);
  RadioPowerParams zero_promos = RadioPowerParams::wcdma();
  zero_promos.promo_idle_ms = 0;
  zero_promos.promo_fach_ms = 0;
  suite.push_back(zero_promos);
  return suite;
}

TEST(AccountColumns, MatchesReferenceOnEdgeCases) {
  const TimeMs horizon = 100000;
  std::vector<std::pair<std::string, IntervalSet>> cases;
  cases.emplace_back("empty", IntervalSet{});
  {
    IntervalSet one;
    one.add(1000, 1500);
    cases.emplace_back("single", one);
  }
  {
    // Gaps landing exactly on the DCH-tail and FACH-tail boundaries —
    // the promotion-class edges the boolean selectors must get right.
    IntervalSet s;
    const RadioPowerParams p = RadioPowerParams::wcdma();
    TimeMs connected = 0 + p.promo_idle_ms + 500;  // first transfer end
    s.add(0, 500);
    s.add(connected + p.dch_tail_ms, connected + p.dch_tail_ms + 100);
    cases.emplace_back("gap-at-dch-boundary", s);
  }
  {
    IntervalSet s;
    s.add(0, 200);
    s.add(100000 - 300, 100000);  // ends exactly at the horizon
    cases.emplace_back("ends-at-horizon", s);
  }
  {
    IntervalSet s;  // back-to-back: connected period just extends
    s.add(0, 1000);
    s.add(1001, 2000);
    s.add(2001, 3000);
    cases.emplace_back("near-contiguous", s);
  }
  for (const RadioPowerParams& params : param_suite()) {
    for (const auto& [name, set] : cases) {
      expect_matches_reference(set, params, horizon, nullptr, name);
      // With an allowed set cutting shortly after each transfer.
      RadioTimeline timeline(horizon);
      timeline.allow(set);
      for (const Interval& iv : set.intervals()) {
        timeline.allow(iv.begin, iv.end + 700);
      }
      const IntervalSet allowed = std::move(timeline).build();
      expect_matches_reference(set, params, horizon, &allowed,
                               name + "+allowed");
    }
  }
}

TEST(AccountColumns, FuzzMatchesReference) {
  std::mt19937_64 rng(20260808);
  const std::vector<RadioPowerParams> params = param_suite();
  for (int iter = 0; iter < 400; ++iter) {
    const TimeMs horizon = 50000 + static_cast<TimeMs>(rng() % 200000);
    const int n = static_cast<int>(rng() % 40);
    IntervalSet transfers;
    TimeMs t = static_cast<TimeMs>(rng() % 2000);
    for (int k = 0; k < n && t < horizon; ++k) {
      const DurationMs dur = 1 + static_cast<DurationMs>(rng() % 4000);
      const TimeMs end = std::min<TimeMs>(t + dur, horizon);
      if (t < end) transfers.add(t, end);
      t = end + static_cast<TimeMs>(rng() % 20000);
    }
    const RadioPowerParams& p = params[iter % params.size()];
    const std::string context = "iter " + std::to_string(iter);
    expect_matches_reference(transfers, p, horizon, nullptr, context);

    // Allowed set: the transfers themselves plus random extra windows,
    // so tails are cut at random boundaries.
    RadioTimeline timeline(horizon);
    timeline.allow(transfers);
    for (const Interval& iv : transfers.intervals()) {
      timeline.allow(iv.begin, iv.end + static_cast<DurationMs>(
                                             rng() % 30000));
    }
    for (int w = 0; w < 4; ++w) {
      const TimeMs b = static_cast<TimeMs>(rng() % horizon);
      timeline.allow(b, b + static_cast<DurationMs>(rng() % 10000));
    }
    const IntervalSet allowed = std::move(timeline).build();
    expect_matches_reference(transfers, p, horizon, &allowed,
                             context + "+allowed");
  }
}

TEST(AccountColumns, RejectsInvalidInputLikeReference) {
  const RadioPowerParams params = RadioPowerParams::wcdma();
  {
    IntervalSet past;  // extends beyond the horizon
    past.add(500, 2000);
    EXPECT_THROW(account_interval_set(past, params, 1000), Error);
    EXPECT_THROW(account_transfers(past, params, 1000), Error);
  }
  {
    IntervalSet transfers;  // outside the allowed set
    transfers.add(100, 200);
    transfers.add(5000, 6000);
    IntervalSet allowed;
    allowed.add(100, 200);
    EXPECT_THROW(account_interval_set(transfers, params, 10000, &allowed),
                 Error);
    EXPECT_THROW(account_transfers(transfers, params, 10000, &allowed),
                 Error);
  }
  {
    // Mismatched column lengths (the span entry point only).
    const std::vector<TimeMs> begins = {0, 100};
    const std::vector<TimeMs> ends = {50};
    EXPECT_THROW(account_columns(begins, ends, params, 1000), Error);
  }
}

}  // namespace
}  // namespace netmaster::engine
