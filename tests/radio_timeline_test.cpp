// Tests for engine::RadioTimeline: horizon clamping, the canonical
// (order-independent) union, and the transfer/wake convenience
// builders matching the hand-assembled IntervalSets they replaced.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "engine/radio_timeline.hpp"

namespace netmaster::engine {
namespace {

TEST(RadioTimeline, ClampsWindowsToHorizon) {
  RadioTimeline timeline(1000);
  timeline.allow(-100, 50);    // clipped at 0
  timeline.allow(900, 5000);   // clipped at the horizon
  timeline.allow(400, 400);    // empty: dropped
  timeline.allow(300, 200);    // inverted: dropped
  timeline.allow(2000, 3000);  // fully past the horizon: dropped
  const IntervalSet set = timeline.build();
  ASSERT_EQ(set.intervals().size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 50}));
  EXPECT_EQ(set.intervals()[1], (Interval{900, 1000}));
}

TEST(RadioTimeline, UnionIsCanonicalRegardlessOfOrder) {
  const std::vector<Interval> windows = {
      {100, 200}, {150, 300}, {300, 400}, {50, 120}};
  RadioTimeline forward(1000);
  for (const Interval& w : windows) forward.allow(w);
  RadioTimeline reverse(1000);
  for (auto it = windows.rbegin(); it != windows.rend(); ++it) {
    reverse.allow(*it);
  }
  EXPECT_EQ(forward.allowed().intervals(), reverse.allowed().intervals());
  // Touching/overlapping windows merge into one canonical interval.
  ASSERT_EQ(forward.allowed().intervals().size(), 1u);
  EXPECT_EQ(forward.allowed().intervals()[0], (Interval{50, 400}));
}

TEST(RadioTimeline, TransfersExtendByGrace) {
  RadioTimeline timeline(10000);
  const std::vector<sim::ExecutedTransfer> transfers = {
      {0, 1000, 500},   // -> [1000, 1500 + grace)
      {1, 8500, 1000},  // -> clipped at the horizon
  };
  timeline.allow_transfers(transfers, 3000);
  const IntervalSet set = timeline.build();
  ASSERT_EQ(set.intervals().size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{1000, 4500}));
  EXPECT_EQ(set.intervals()[1], (Interval{8500, 10000}));

  // Zero grace covers exactly the execution windows.
  RadioTimeline bare(10000);
  bare.allow_transfers(transfers);
  EXPECT_EQ(bare.allowed().intervals()[0], (Interval{1000, 1500}));
}

TEST(RadioTimeline, WakesCoverProbeWindows) {
  RadioTimeline timeline(5000);
  std::vector<duty::WakeEvent> wakes(2);
  wakes[0].time = 100;
  wakes[0].window = 50;
  wakes[1].time = 4990;
  wakes[1].window = 100;  // clipped at the horizon
  timeline.allow_wakes(wakes);
  const IntervalSet set = timeline.build();
  ASSERT_EQ(set.intervals().size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{100, 150}));
  EXPECT_EQ(set.intervals()[1], (Interval{4990, 5000}));
}

TEST(RadioTimeline, MatchesHandAssembledSet) {
  // The construction the policies used to do by hand: transfer windows
  // plus grace, unioned with an existing allowed set.
  const std::vector<sim::ExecutedTransfer> transfers = {{0, 100, 200},
                                                        {1, 600, 100}};
  IntervalSet by_hand;
  for (const sim::ExecutedTransfer& tr : transfers) {
    by_hand.add(tr.start, std::min<TimeMs>(tr.start + tr.duration + 300,
                                           2000));
  }
  by_hand.add(1500, 1800);

  RadioTimeline timeline(2000);
  IntervalSet prior;
  prior.add(1500, 1800);
  timeline.allow(prior);
  timeline.allow_transfers(transfers, 300);
  EXPECT_EQ(timeline.build().intervals(), by_hand.intervals());
}

TEST(RadioTimeline, RejectsNegativeHorizon) {
  EXPECT_THROW(RadioTimeline(-1), Error);
}

// ---------------------------------------------------------------------------
// Differential tests: the vectorized SoA accounting kernel
// (account_columns / account_interval_set) against the reference
// branchy implementation (power/radio_model.cpp account_transfers).
// The contract is bit-for-bit equality — every integer field AND the
// energy double — on every input.

void expect_accounting_equal(const RadioAccounting& got,
                             const RadioAccounting& want,
                             const std::string& context) {
  EXPECT_EQ(got.active_ms, want.active_ms) << context;
  for (std::size_t tier = 0; tier < got.tail_tier_ms.size(); ++tier) {
    EXPECT_EQ(got.tail_tier_ms[tier], want.tail_tier_ms[tier])
        << context << " tier " << tier;
  }
  EXPECT_EQ(got.promo_ms, want.promo_ms) << context;
  EXPECT_EQ(got.promotions, want.promotions) << context;
  EXPECT_EQ(got.assoc_ms, want.assoc_ms) << context;
  EXPECT_EQ(got.associations, want.associations) << context;
  EXPECT_EQ(got.radio_on_ms, want.radio_on_ms) << context;
  // Bitwise, not approximate: the kernel derives energy from the same
  // integer totals with the same expression.
  EXPECT_EQ(got.energy_j, want.energy_j) << context;
}

void expect_matches_reference(const IntervalSet& transfers,
                              const RadioModel& model,
                              TimeMs horizon,
                              const IntervalSet* allowed,
                              const std::string& context) {
  const RadioAccounting want =
      account_transfers(transfers, model, horizon, allowed);
  const RadioAccounting got =
      account_interval_set(transfers, model, horizon, allowed);
  expect_accounting_equal(got, want, context);
}

std::vector<RadioPowerParams> param_suite() {
  std::vector<RadioPowerParams> suite;
  suite.push_back(RadioPowerParams::wcdma());
  suite.push_back(RadioPowerParams::lte());  // promo_fach_ms == 0
  RadioPowerParams zero_tails = RadioPowerParams::wcdma();
  zero_tails.dch_tail_ms = 0;
  zero_tails.fach_tail_ms = 0;
  suite.push_back(zero_tails);
  RadioPowerParams zero_promos = RadioPowerParams::wcdma();
  zero_promos.promo_idle_ms = 0;
  zero_promos.promo_fach_ms = 0;
  suite.push_back(zero_promos);
  return suite;
}

TEST(AccountColumns, MatchesReferenceOnEdgeCases) {
  const TimeMs horizon = 100000;
  std::vector<std::pair<std::string, IntervalSet>> cases;
  cases.emplace_back("empty", IntervalSet{});
  {
    IntervalSet one;
    one.add(1000, 1500);
    cases.emplace_back("single", one);
  }
  {
    // Gaps landing exactly on the DCH-tail and FACH-tail boundaries —
    // the promotion-class edges the boolean selectors must get right.
    IntervalSet s;
    const RadioPowerParams p = RadioPowerParams::wcdma();
    TimeMs connected = 0 + p.promo_idle_ms + 500;  // first transfer end
    s.add(0, 500);
    s.add(connected + p.dch_tail_ms, connected + p.dch_tail_ms + 100);
    cases.emplace_back("gap-at-dch-boundary", s);
  }
  {
    IntervalSet s;
    s.add(0, 200);
    s.add(100000 - 300, 100000);  // ends exactly at the horizon
    cases.emplace_back("ends-at-horizon", s);
  }
  {
    IntervalSet s;  // back-to-back: connected period just extends
    s.add(0, 1000);
    s.add(1001, 2000);
    s.add(2001, 3000);
    cases.emplace_back("near-contiguous", s);
  }
  for (const RadioPowerParams& params : param_suite()) {
    for (const auto& [name, set] : cases) {
      expect_matches_reference(set, params, horizon, nullptr, name);
      // With an allowed set cutting shortly after each transfer.
      RadioTimeline timeline(horizon);
      timeline.allow(set);
      for (const Interval& iv : set.intervals()) {
        timeline.allow(iv.begin, iv.end + 700);
      }
      const IntervalSet allowed = std::move(timeline).build();
      expect_matches_reference(set, params, horizon, &allowed,
                               name + "+allowed");
    }
  }
}

TEST(AccountColumns, FuzzMatchesReference) {
  std::mt19937_64 rng(20260808);
  const std::vector<RadioPowerParams> params = param_suite();
  for (int iter = 0; iter < 400; ++iter) {
    const TimeMs horizon = 50000 + static_cast<TimeMs>(rng() % 200000);
    const int n = static_cast<int>(rng() % 40);
    IntervalSet transfers;
    TimeMs t = static_cast<TimeMs>(rng() % 2000);
    for (int k = 0; k < n && t < horizon; ++k) {
      const DurationMs dur = 1 + static_cast<DurationMs>(rng() % 4000);
      const TimeMs end = std::min<TimeMs>(t + dur, horizon);
      if (t < end) transfers.add(t, end);
      t = end + static_cast<TimeMs>(rng() % 20000);
    }
    const RadioPowerParams& p = params[iter % params.size()];
    const std::string context = "iter " + std::to_string(iter);
    expect_matches_reference(transfers, p, horizon, nullptr, context);

    // Allowed set: the transfers themselves plus random extra windows,
    // so tails are cut at random boundaries.
    RadioTimeline timeline(horizon);
    timeline.allow(transfers);
    for (const Interval& iv : transfers.intervals()) {
      timeline.allow(iv.begin, iv.end + static_cast<DurationMs>(
                                             rng() % 30000));
    }
    for (int w = 0; w < 4; ++w) {
      const TimeMs b = static_cast<TimeMs>(rng() % horizon);
      timeline.allow(b, b + static_cast<DurationMs>(rng() % 10000));
    }
    const IntervalSet allowed = std::move(timeline).build();
    expect_matches_reference(transfers, p, horizon, &allowed,
                             context + "+allowed");
  }
}

/// A random generalized model: 1–4 tail tiers with monotone
/// non-increasing powers, random (possibly zero) durations and
/// promotion costs, and an association cost on about a third of the
/// draws — the full descriptive space the N-tier machine admits, well
/// beyond the two-tail instantiations in param_suite().
RadioModel random_model(std::mt19937_64& rng) {
  RadioModel m;
  m.idle_mw = static_cast<double>(rng() % 30);
  m.active_mw = 400.0 + static_cast<double>(rng() % 1400);
  m.promo_mw = 100.0 + static_cast<double>(rng() % 800);
  m.promo_idle_ms = static_cast<DurationMs>(rng() % 3000);
  if (rng() % 3 == 0) {
    m.assoc_mw = 100.0 + static_cast<double>(rng() % 600);
    m.assoc_ms = static_cast<DurationMs>(rng() % 4000);
  } else {
    m.assoc_mw = 0.0;
    m.assoc_ms = 0;
  }
  m.num_tails = 1 + rng() % kMaxRadioTiers;
  double power = m.active_mw;
  for (std::size_t tier = 0; tier < m.num_tails; ++tier) {
    // Keep the chain non-increasing; tier 0 may sit at active power
    // (the WCDMA shape) and any tier may have a zero-length window.
    power -= static_cast<double>(rng() % 300);
    if (power < 1.0) power = 1.0;
    m.tails[tier].power_mw = power;
    m.tails[tier].duration_ms = static_cast<DurationMs>(rng() % 15000);
    m.tails[tier].promo_ms =
        tier == 0 ? 0 : static_cast<DurationMs>(rng() % 2000);
  }
  m.validate();
  return m;
}

TEST(AccountColumns, ZeroLengthTailTiersDegenerate) {
  // Every tail window empty: the connected period is exactly
  // promo + active, and any gap re-promotes from idle. The vectorized
  // tier scan must not divide the zero-width windows into spurious
  // residency or misclassify the promotion tier.
  RadioModel m = RadioModel::nr_cdrx();
  for (std::size_t tier = 0; tier < m.num_tails; ++tier) {
    m.tails[tier].duration_ms = 0;
  }
  m.validate();
  IntervalSet transfers;
  transfers.add(0, 1000);
  transfers.add(1500, 2500);   // past the (empty) tails: cold again
  transfers.add(2500, 3000);   // merged with the previous transfer
  expect_matches_reference(transfers, m, 100000, nullptr, "zero-tails");
  const RadioAccounting acc = account_transfers(transfers, m, 100000);
  EXPECT_EQ(acc.tail_dch_ms(), 0);
  EXPECT_EQ(acc.promotions, 2);

  // Middle tier empty, outer tiers live: the boundary scan must skip
  // the zero-width tier without charging its promotion.
  RadioModel hollow = RadioModel::nr_cdrx();
  hollow.tails[1].duration_ms = 0;
  hollow.validate();
  IntervalSet probes;
  TimeMs t = 0;
  for (int k = 0; k < 12; ++k) {
    probes.add(t, t + 400);
    t += 400 + 100 + 1000 * k;  // gaps sweep across the tier edges
  }
  expect_matches_reference(probes, hollow, 200000, nullptr, "hollow-tier");
}

TEST(AccountColumns, FuzzMatchesReferenceOnRandomTierModels) {
  std::mt19937_64 rng(20260809);
  for (int iter = 0; iter < 400; ++iter) {
    const RadioModel model = random_model(rng);
    const TimeMs horizon = 50000 + static_cast<TimeMs>(rng() % 200000);
    const int n = static_cast<int>(rng() % 40);
    IntervalSet transfers;
    TimeMs t = static_cast<TimeMs>(rng() % 2000);
    for (int k = 0; k < n && t < horizon; ++k) {
      const DurationMs dur = 1 + static_cast<DurationMs>(rng() % 4000);
      const TimeMs end = std::min<TimeMs>(t + dur, horizon);
      if (t < end) transfers.add(t, end);
      t = end + static_cast<TimeMs>(rng() % 25000);
    }
    const std::string context = "tier-model iter " + std::to_string(iter);
    expect_matches_reference(transfers, model, horizon, nullptr, context);

    RadioTimeline timeline(horizon);
    timeline.allow(transfers);
    for (const Interval& iv : transfers.intervals()) {
      timeline.allow(iv.begin, iv.end + static_cast<DurationMs>(
                                             rng() % 30000));
    }
    for (int w = 0; w < 4; ++w) {
      const TimeMs b = static_cast<TimeMs>(rng() % horizon);
      timeline.allow(b, b + static_cast<DurationMs>(rng() % 10000));
    }
    const IntervalSet allowed = std::move(timeline).build();
    expect_matches_reference(transfers, model, horizon, &allowed,
                             context + "+allowed");
  }
}

TEST(AccountColumns, RejectsInvalidInputLikeReference) {
  const RadioPowerParams params = RadioPowerParams::wcdma();
  {
    IntervalSet past;  // extends beyond the horizon
    past.add(500, 2000);
    EXPECT_THROW(account_interval_set(past, params, 1000), Error);
    EXPECT_THROW(account_transfers(past, params, 1000), Error);
  }
  {
    IntervalSet transfers;  // outside the allowed set
    transfers.add(100, 200);
    transfers.add(5000, 6000);
    IntervalSet allowed;
    allowed.add(100, 200);
    EXPECT_THROW(account_interval_set(transfers, params, 10000, &allowed),
                 Error);
    EXPECT_THROW(account_transfers(transfers, params, 10000, &allowed),
                 Error);
  }
  {
    // Mismatched column lengths (the span entry point only).
    const std::vector<TimeMs> begins = {0, 100};
    const std::vector<TimeMs> ends = {50};
    EXPECT_THROW(account_columns(begins, ends, params, 1000), Error);
  }
}

}  // namespace
}  // namespace netmaster::engine
