// Tests for engine::RadioTimeline: horizon clamping, the canonical
// (order-independent) union, and the transfer/wake convenience
// builders matching the hand-assembled IntervalSets they replaced.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "engine/radio_timeline.hpp"

namespace netmaster::engine {
namespace {

TEST(RadioTimeline, ClampsWindowsToHorizon) {
  RadioTimeline timeline(1000);
  timeline.allow(-100, 50);    // clipped at 0
  timeline.allow(900, 5000);   // clipped at the horizon
  timeline.allow(400, 400);    // empty: dropped
  timeline.allow(300, 200);    // inverted: dropped
  timeline.allow(2000, 3000);  // fully past the horizon: dropped
  const IntervalSet set = timeline.build();
  ASSERT_EQ(set.intervals().size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{0, 50}));
  EXPECT_EQ(set.intervals()[1], (Interval{900, 1000}));
}

TEST(RadioTimeline, UnionIsCanonicalRegardlessOfOrder) {
  const std::vector<Interval> windows = {
      {100, 200}, {150, 300}, {300, 400}, {50, 120}};
  RadioTimeline forward(1000);
  for (const Interval& w : windows) forward.allow(w);
  RadioTimeline reverse(1000);
  for (auto it = windows.rbegin(); it != windows.rend(); ++it) {
    reverse.allow(*it);
  }
  EXPECT_EQ(forward.allowed().intervals(), reverse.allowed().intervals());
  // Touching/overlapping windows merge into one canonical interval.
  ASSERT_EQ(forward.allowed().intervals().size(), 1u);
  EXPECT_EQ(forward.allowed().intervals()[0], (Interval{50, 400}));
}

TEST(RadioTimeline, TransfersExtendByGrace) {
  RadioTimeline timeline(10000);
  const std::vector<sim::ExecutedTransfer> transfers = {
      {0, 1000, 500},   // -> [1000, 1500 + grace)
      {1, 8500, 1000},  // -> clipped at the horizon
  };
  timeline.allow_transfers(transfers, 3000);
  const IntervalSet set = timeline.build();
  ASSERT_EQ(set.intervals().size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{1000, 4500}));
  EXPECT_EQ(set.intervals()[1], (Interval{8500, 10000}));

  // Zero grace covers exactly the execution windows.
  RadioTimeline bare(10000);
  bare.allow_transfers(transfers);
  EXPECT_EQ(bare.allowed().intervals()[0], (Interval{1000, 1500}));
}

TEST(RadioTimeline, WakesCoverProbeWindows) {
  RadioTimeline timeline(5000);
  std::vector<duty::WakeEvent> wakes(2);
  wakes[0].time = 100;
  wakes[0].window = 50;
  wakes[1].time = 4990;
  wakes[1].window = 100;  // clipped at the horizon
  timeline.allow_wakes(wakes);
  const IntervalSet set = timeline.build();
  ASSERT_EQ(set.intervals().size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{100, 150}));
  EXPECT_EQ(set.intervals()[1], (Interval{4990, 5000}));
}

TEST(RadioTimeline, MatchesHandAssembledSet) {
  // The construction the policies used to do by hand: transfer windows
  // plus grace, unioned with an existing allowed set.
  const std::vector<sim::ExecutedTransfer> transfers = {{0, 100, 200},
                                                        {1, 600, 100}};
  IntervalSet by_hand;
  for (const sim::ExecutedTransfer& tr : transfers) {
    by_hand.add(tr.start, std::min<TimeMs>(tr.start + tr.duration + 300,
                                           2000));
  }
  by_hand.add(1500, 1800);

  RadioTimeline timeline(2000);
  IntervalSet prior;
  prior.add(1500, 1800);
  timeline.allow(prior);
  timeline.allow_transfers(transfers, 300);
  EXPECT_EQ(timeline.build().intervals(), by_hand.intervals());
}

TEST(RadioTimeline, RejectsNegativeHorizon) {
  EXPECT_THROW(RadioTimeline(-1), Error);
}

}  // namespace
}  // namespace netmaster::engine
