// End-to-end chaos matrix for the monitoring -> mining -> policy
// pipeline: every fault kind x rate x seed is injected at the trace
// boundary and driven through the full stack. Hard invariants, checked
// for every scenario:
//   - no crash and no uncaught throw anywhere downstream,
//   - energy accounting stays conserved (total = transfers + duty),
//   - interruption probability stays bounded near the clean run,
//   - the degraded fallback path is visible in the outcome/report,
//   - one poisoned user never aborts the other N-1 fleet rows.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eval/experiments.hpp"
#include "eval/fleet.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/sanitize.hpp"
#include "policy/baseline.hpp"
#include "policy/netmaster.hpp"
#include "service/online_sim.hpp"
#include "sim/accounting.hpp"
#include "synth/drift.hpp"
#include "synth/presets.hpp"

namespace netmaster {
namespace {

constexpr double kRates[] = {0.05, 0.2, 0.5};
constexpr std::uint64_t kSeeds[] = {1, 7, 31};

eval::ExperimentConfig chaos_config() {
  eval::ExperimentConfig cfg;
  cfg.train_days = 7;
  cfg.eval_days = 3;
  cfg.seed = 42;
  return cfg;
}

eval::VolunteerTraces clean_traces() {
  return eval::make_traces(
      synth::make_user(synth::Archetype::kOfficeWorker, 1),
      chaos_config());
}

/// Energy conservation: the accountant's headline figure must be the
/// exact sum of its parts, degraded or not.
void expect_conserved(const sim::SimReport& report,
                      const std::string& context) {
  EXPECT_NEAR(report.energy_j,
              report.transfer_energy_j + report.duty_energy_j,
              1e-9 * (1.0 + report.energy_j))
      << context;
  EXPECT_GT(report.energy_j, 0.0) << context;
  EXPECT_GE(report.affected_fraction, 0.0) << context;
  EXPECT_LE(report.affected_fraction, 1.0) << context;
}

// ---- The matrix: corrupted TRAINING data. ----------------------------
// Every fault kind at every rate and seed hits the training trace raw
// (no pre-sanitation — the policy owns its tolerance). The policy must
// construct, run on the clean evaluation window, and stay within the
// stated band of the clean run's headline numbers.

TEST(ChaosMatrix, CorruptedTrainingNeverCrashesAndStaysInBand) {
  const eval::ExperimentConfig cfg = chaos_config();
  const eval::VolunteerTraces traces = clean_traces();
  const RadioModel& radio = cfg.netmaster.profit.radio;

  const sim::SimReport base = sim::account(
      traces.eval, policy::BaselinePolicy().run(traces.eval), radio);
  const policy::NetMasterPolicy clean_policy(traces.training,
                                             cfg.netmaster);
  const sim::SimReport clean =
      sim::account(traces.eval, clean_policy.run(traces.eval), radio);
  const double clean_saving = 1.0 - clean.energy_j / base.energy_j;

  for (const fault::FaultKind kind : fault::all_fault_kinds()) {
    for (const double rate : kRates) {
      for (const std::uint64_t seed : kSeeds) {
        const std::string context = std::string(fault::kind_name(kind)) +
                                    " rate " + std::to_string(rate) +
                                    " seed " + std::to_string(seed);
        fault::FaultPlan plan;
        plan.seed = seed;
        plan.with(kind, rate);
        const fault::InjectionResult injected =
            fault::inject_faults(traces.training, plan);

        // No crash, no throw: the tolerant mine + degradation gate
        // absorb whatever the injector produced.
        const policy::NetMasterPolicy policy(injected.trace,
                                             cfg.netmaster);
        const sim::SimReport report =
            sim::account(traces.eval, policy.run(traces.eval), radio);

        expect_conserved(report, context);

        // Degradation provenance is visible end to end.
        EXPECT_EQ(report.degraded, policy.degraded()) << context;
        if (report.degraded) {
          EXPECT_FALSE(report.degraded_reason.empty()) << context;
          EXPECT_EQ(report.degraded_reason, policy.degraded_reason())
              << context;
        }

        // Band vs. the clean run: a policy running on damaged history
        // (or its safe fallback) may lose savings but must never blow
        // past the baseline's energy, and the interruption probability
        // stays bounded near the clean figure.
        const double saving = 1.0 - report.energy_j / base.energy_j;
        EXPECT_GE(saving, clean_saving - 0.5) << context;
        EXPECT_LE(report.energy_j, 1.05 * base.energy_j) << context;
        EXPECT_LE(report.affected_fraction,
                  clean.affected_fraction + 0.35)
            << context;
      }
    }
  }
}

// ---- The matrix: corrupted EVALUATION data. --------------------------
// Replayed monitoring data is corrupted too. The strict replay path
// requires a valid trace, so corrupted eval data flows through the
// sanitizer first; the repaired trace must then replay under the same
// conserved-accounting invariants for every scenario.

TEST(ChaosMatrix, SanitizedCorruptEvalReplaysConserved) {
  const eval::ExperimentConfig cfg = chaos_config();
  const eval::VolunteerTraces traces = clean_traces();
  const RadioModel& radio = cfg.netmaster.profit.radio;
  const policy::NetMasterPolicy policy(traces.training, cfg.netmaster);

  for (const fault::FaultKind kind : fault::all_fault_kinds()) {
    for (const double rate : kRates) {
      for (const std::uint64_t seed : kSeeds) {
        const std::string context = std::string(fault::kind_name(kind)) +
                                    " rate " + std::to_string(rate) +
                                    " seed " + std::to_string(seed);
        fault::FaultPlan plan;
        plan.seed = seed;
        plan.with(kind, rate);
        const fault::SanitizeResult repaired = fault::sanitize_trace(
            fault::inject_faults(traces.eval, plan).trace);
        ASSERT_NO_THROW(repaired.trace.validate()) << context;

        const sim::SimReport report = sim::account(
            repaired.trace, policy.run(repaired.trace), radio);
        expect_conserved(report, context);
      }
    }
  }
}

// ---- Compound chaos: every fault kind at once. -----------------------

TEST(ChaosMatrix, AllKindsStackedStillDegradeGracefully) {
  const eval::ExperimentConfig cfg = chaos_config();
  const eval::VolunteerTraces traces = clean_traces();
  const RadioModel& radio = cfg.netmaster.profit.radio;

  for (const std::uint64_t seed : kSeeds) {
    fault::FaultPlan plan;
    plan.seed = seed;
    for (const fault::FaultKind kind : fault::all_fault_kinds()) {
      plan.with(kind, 0.4);
    }
    const fault::InjectionResult injected =
        fault::inject_faults(traces.training, plan);
    const policy::NetMasterPolicy policy(injected.trace, cfg.netmaster);
    const sim::SimReport report =
        sim::account(traces.eval, policy.run(traces.eval), radio);
    expect_conserved(report, "stacked seed " + std::to_string(seed));
  }
}

// ---- Forced degradation: the fallback path is taken and visible. -----

TEST(ChaosDegradation, ColdStartTripsTheSafeFallback) {
  // Truncating training history below min_training_days must trip the
  // delay-batch fallback, and the taken path must be visible in the
  // outcome, the report, and (below) the fleet grid.
  const eval::ExperimentConfig cfg = chaos_config();
  const eval::VolunteerTraces traces = clean_traces();

  fault::FaultPlan plan;
  plan.seed = 3;
  plan.with(fault::FaultKind::kTruncateDays, 0.95);  // keeps 1 day
  const fault::InjectionResult injected =
      fault::inject_faults(traces.training, plan);
  ASSERT_EQ(injected.trace.num_days, 1);

  const policy::NetMasterPolicy policy(injected.trace, cfg.netmaster);
  EXPECT_TRUE(policy.degraded());
  EXPECT_FALSE(policy.degraded_reason().empty());

  const sim::PolicyOutcome outcome = policy.run(traces.eval);
  EXPECT_EQ(outcome.path, sim::ExecutionPath::kDegradedFallback);
  EXPECT_EQ(outcome.policy_name, policy.name());
  EXPECT_EQ(outcome.degraded_reason, policy.degraded_reason());

  const sim::SimReport report = sim::account(
      traces.eval, outcome, cfg.netmaster.profit.radio);
  EXPECT_TRUE(report.degraded);
  expect_conserved(report, "cold start");

  // The fallback is the safe schedule, not a no-op: it must still beat
  // the always-on baseline.
  const sim::SimReport base = sim::account(
      traces.eval, policy::BaselinePolicy().run(traces.eval),
      cfg.netmaster.profit.radio);
  EXPECT_LT(report.energy_j, base.energy_j);
}

TEST(ChaosDegradation, HealthyTrainingStaysOnNormalPath) {
  const eval::ExperimentConfig cfg = chaos_config();
  const eval::VolunteerTraces traces = clean_traces();
  const policy::NetMasterPolicy policy(traces.training, cfg.netmaster);
  EXPECT_FALSE(policy.degraded());
  const sim::PolicyOutcome outcome = policy.run(traces.eval);
  EXPECT_EQ(outcome.path, sim::ExecutionPath::kNormal);
  EXPECT_TRUE(outcome.degraded_reason.empty());
}

// ---- Fleet isolation: one poisoned user fails alone. -----------------

TEST(ChaosFleet, PoisonedUserFailsAloneInTheGrid) {
  const eval::ExperimentConfig cfg = chaos_config();
  const auto suite = eval::standard_policy_suite(cfg.netmaster);

  std::vector<eval::VolunteerTraces> volunteers;
  for (UserId id = 1; id <= 3; ++id) {
    volunteers.push_back(eval::make_traces(
        synth::make_user(static_cast<synth::Archetype>(id - 1), id),
        cfg));
  }
  // Poison user 1 (index 1): raw field corruption on the eval trace,
  // deliberately NOT sanitized — an invalid replay input.
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.with(fault::FaultKind::kFieldCorruption, 0.5);
  volunteers[1].eval =
      fault::inject_faults(volunteers[1].eval, plan).trace;
  ASSERT_THROW(volunteers[1].eval.validate(), Error);

  const eval::FleetReport report =
      eval::run_fleet(volunteers, suite, cfg);

  // The run completed, the poisoned row is a failure ledger entry, and
  // every cell of the other two users is healthy.
  ASSERT_EQ(report.num_users, 3u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].user, volunteers[1].eval.user);
  EXPECT_TRUE(report.failures[0].policy.empty());  // whole row failed
  EXPECT_FALSE(report.failures[0].error.empty());

  for (std::size_t p = 0; p < report.num_policies; ++p) {
    EXPECT_TRUE(report.cell(1, p).failed);
    for (const std::size_t u : {std::size_t{0}, std::size_t{2}}) {
      const eval::FleetCell& cell = report.cell(u, p);
      EXPECT_FALSE(cell.failed) << cell.policy;
      expect_conserved(cell.report, cell.policy);
    }
    // Failed cells are counted out of the aggregates, not folded in.
    EXPECT_EQ(report.aggregates[p].failed_cells, 1u);
    EXPECT_EQ(report.aggregates[p].energy_saving.count(), 2u);
  }
}

TEST(ChaosFleet, DegradedUserIsVisibleInTheFleetReport) {
  const eval::ExperimentConfig cfg = chaos_config();
  const auto suite = eval::standard_policy_suite(cfg.netmaster);

  std::vector<eval::VolunteerTraces> volunteers;
  for (UserId id = 1; id <= 2; ++id) {
    volunteers.push_back(eval::make_traces(
        synth::make_user(static_cast<synth::Archetype>(id - 1), id),
        cfg));
  }
  // User 1 is a cold-start user: one day of history.
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.with(fault::FaultKind::kTruncateDays, 0.95);
  volunteers[1].training =
      fault::inject_faults(volunteers[1].training, plan).trace;

  const eval::FleetReport report =
      eval::run_fleet(volunteers, suite, cfg);
  EXPECT_TRUE(report.failures.empty());

  // Exactly the NetMaster cell of the cold-start user runs degraded,
  // and the aggregate counts it.
  for (std::size_t p = 0; p < report.num_policies; ++p) {
    const bool is_netmaster = suite[p].name == "netmaster";
    EXPECT_EQ(report.cell(1, p).degraded, is_netmaster)
        << suite[p].name;
    EXPECT_FALSE(report.cell(0, p).degraded) << suite[p].name;
    EXPECT_EQ(report.aggregates[p].degraded_cells,
              is_netmaster ? 1u : 0u);
    if (is_netmaster) {
      EXPECT_FALSE(report.cell(1, p).report.degraded_reason.empty());
    }
  }
}

// ---- Drift + fault combined matrix. ----------------------------------
// Non-stationary users whose monitoring data is ALSO damaged: every
// drift archetype x every fault kind, driven through the adaptive
// online executive (detector + record store + re-mine-on-drift). The
// invariants are the chaos ones — never crash, conserved accounting,
// bounded degradation vs the baseline — with the adaptation loop live.

TEST(ChaosDrift, DriftPlusFaultsDegradeGracefullyUnderAdaptation) {
  eval::ExperimentConfig cfg;
  cfg.train_days = 14;  // adaptation needs a real horizon
  cfg.eval_days = 14;
  cfg.seed = 42;
  const RadioModel& radio = cfg.netmaster.profit.radio;

  const synth::DriftKind kinds[] = {synth::DriftKind::kAbrupt,
                                    synth::DriftKind::kGradual,
                                    synth::DriftKind::kSeasonal};
  service::AdaptationConfig adapt;
  adapt.enable = true;

  for (const synth::DriftKind drift_kind : kinds) {
    synth::DriftSpec spec;
    spec.kind = drift_kind;
    spec.onset_day = 2;
    const eval::VolunteerTraces traces = eval::make_drifting_traces(
        synth::make_user(synth::Archetype::kOfficeWorker, 1), cfg, spec);
    const engine::TraceIndex eval_idx(traces.eval);
    const sim::SimReport base = sim::account(
        traces.eval, policy::BaselinePolicy().run(eval_idx), radio);

    for (const fault::FaultKind fault_kind : fault::all_fault_kinds()) {
      const std::string context =
          "drift " + std::to_string(static_cast<int>(drift_kind)) +
          " fault " + std::string(fault::kind_name(fault_kind));
      fault::FaultPlan plan;
      plan.seed = 7;
      plan.with(fault_kind, 0.2);

      // Corrupted training + drifting eval through the adaptive loop:
      // the tolerant mine absorbs the damage, the detector watches the
      // drifting stream, refreshes hot-swap the predictor mid-replay.
      const UserTrace damaged =
          fault::inject_faults(traces.training, plan).trace;
      const service::OnlineSimResult result =
          service::run_online(damaged, eval_idx, cfg.netmaster, adapt);
      const sim::SimReport report =
          sim::account(traces.eval, result.outcome, radio);
      expect_conserved(report, context);
      EXPECT_LE(report.energy_j, 1.05 * base.energy_j) << context;
      EXPECT_LE(report.affected_fraction, 1.0) << context;
      EXPECT_GE(result.outcome.drift_score, 0.0) << context;
      EXPECT_LE(result.outcome.drift_score, 1.0) << context;

      // Corrupted EVAL stream as well: sanitize, then adapt over the
      // repaired drifting trace. Must still replay conserved.
      const fault::SanitizeResult repaired = fault::sanitize_trace(
          fault::inject_faults(traces.eval, plan).trace);
      ASSERT_NO_THROW(repaired.trace.validate()) << context;
      const engine::TraceIndex repaired_idx(repaired.trace);
      const service::OnlineSimResult dirty_eval = service::run_online(
          traces.training, repaired_idx, cfg.netmaster, adapt);
      const sim::SimReport dirty_report =
          sim::account(repaired.trace, dirty_eval.outcome, radio);
      expect_conserved(dirty_report, context + " dirty eval");
    }
  }
}

// ---- Chaos through the synthetic-profile fleet entry point. ----------

TEST(ChaosFleet, ProfileFleetSurvivesSanitizedChaosSweep) {
  // The volunteer overload replays sanitized chaos traces fleet-wide:
  // each user gets a different fault kind; zero failures, conserved
  // accounting everywhere.
  const eval::ExperimentConfig cfg = chaos_config();
  const auto suite = eval::standard_policy_suite(cfg.netmaster);

  std::vector<eval::VolunteerTraces> volunteers;
  std::size_t kind_index = 0;
  for (UserId id = 1; id <= 4; ++id, ++kind_index) {
    eval::VolunteerTraces v = eval::make_traces(
        synth::make_user(static_cast<synth::Archetype>(id - 1), id),
        cfg);
    fault::FaultPlan plan;
    plan.seed = 100 + id;
    plan.with(fault::all_fault_kinds()[kind_index % fault::kNumFaultKinds],
              0.3);
    v.training = fault::inject_faults(v.training, plan).trace;
    v.eval = fault::sanitize_trace(
                 fault::inject_faults(v.eval, plan).trace)
                 .trace;
    volunteers.push_back(std::move(v));
  }

  const eval::FleetReport report =
      eval::run_fleet(volunteers, suite, cfg);
  EXPECT_TRUE(report.failures.empty());
  for (const eval::FleetCell& cell : report.cells) {
    EXPECT_FALSE(cell.failed) << cell.policy;
    expect_conserved(cell.report,
                     cell.profile_name + "/" + cell.policy);
  }
}

}  // namespace
}  // namespace netmaster
