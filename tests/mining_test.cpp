// Tests for habit mining, slot prediction (Eqs. 2–3) and special apps.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mining/habits.hpp"
#include "mining/special_apps.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster::mining {
namespace {

/// 7-day hand-built trace (days 0–4 weekdays, 5–6 weekend under the
/// day-0-is-Monday convention): usage at hour 9 every weekday, hour 20
/// on 3 of 5 weekdays, hour 11 on weekends only; screen-off network
/// activity at hour 3 every day.
UserTrace fixture() {
  UserTrace t;
  t.user = 1;
  t.num_days = 7;
  t.app_names = {"im", "game"};
  for (int day = 0; day < 7; ++day) {
    const bool weekend = is_weekend(day);
    auto add_usage = [&](int hour, AppId app) {
      const TimeMs at = hour_start(day, hour) + 5 * kMsPerMinute;
      t.sessions.push_back({at, at + 30'000});
      t.usages.push_back({app, at, 10'000});
    };
    if (!weekend) {
      add_usage(9, 0);
      if (day < 3) add_usage(20, 0);
    } else {
      add_usage(11, 1);
    }
    // Screen-off network activity by app 0 at hour 3, every day.
    t.activities.push_back({0, hour_start(day, 3), 2000, 100, 10,
                            false, true});
  }
  return t;
}

TEST(HabitModel, PrActiveExactValues) {
  const HabitModel model = HabitModel::mine(fixture());
  const HourStats& wd = model.stats(DayKind::kWeekday);
  EXPECT_EQ(wd.days_observed, 5);
  EXPECT_DOUBLE_EQ(wd.pr_active[9], 1.0);
  EXPECT_DOUBLE_EQ(wd.pr_active[20], 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(wd.pr_active[11], 0.0);
  const HourStats& we = model.stats(DayKind::kWeekend);
  EXPECT_EQ(we.days_observed, 2);
  EXPECT_DOUBLE_EQ(we.pr_active[11], 1.0);
  EXPECT_DOUBLE_EQ(we.pr_active[9], 0.0);
}

TEST(HabitModel, ScreenOffNetworkStats) {
  const HabitModel model = HabitModel::mine(fixture());
  const HourStats& wd = model.stats(DayKind::kWeekday);
  // One of two apps active at hour 3 -> Eq. 3 value 0.5 per day.
  EXPECT_DOUBLE_EQ(wd.pr_net[3], 0.5);
  EXPECT_DOUBLE_EQ(wd.mean_net_count[3], 1.0);
  EXPECT_DOUBLE_EQ(wd.mean_net_bytes[3], 110.0);
  EXPECT_DOUBLE_EQ(wd.pr_net[9], 0.0);  // screen-on traffic excluded
}

TEST(HabitModel, PrActiveAtUsesDayRegime) {
  const HabitModel model = HabitModel::mine(fixture());
  EXPECT_DOUBLE_EQ(model.pr_active_at(hour_start(0, 9) + 5), 1.0);
  EXPECT_DOUBLE_EQ(model.pr_active_at(hour_start(5, 9) + 5), 0.0);
  EXPECT_DOUBLE_EQ(model.pr_active_at(hour_start(5, 11) + 5), 1.0);
  EXPECT_THROW(model.pr_active_at(-1), Error);
  EXPECT_THROW(model.pr_active(DayKind::kWeekday, 24), Error);
}

TEST(SlotPredictor, ThresholdSelectsSlots) {
  const HabitModel model = HabitModel::mine(fixture());
  PredictorConfig cfg;
  cfg.delta_weekday = 0.5;
  cfg.delta_weekend = 0.5;
  const SlotPredictor pred(model, cfg);

  const DayPrediction day0 = pred.predict_day(0);  // weekday
  // Hours 9 (Pr=1) and 20 (Pr=0.6) exceed delta 0.5.
  EXPECT_TRUE(day0.active_slots.contains(hour_start(0, 9) + 1));
  EXPECT_TRUE(day0.active_slots.contains(hour_start(0, 20) + 1));
  EXPECT_FALSE(day0.active_slots.contains(hour_start(0, 11) + 1));
  // Hour 3 has screen-off traffic and is outside U -> net slot.
  EXPECT_TRUE(day0.net_slots.contains(hour_start(0, 3) + 1));
  EXPECT_FALSE(day0.net_slots.contains(hour_start(0, 9) + 1));
}

TEST(SlotPredictor, HigherDeltaShrinksSlots) {
  const HabitModel model = HabitModel::mine(fixture());
  PredictorConfig strict;
  strict.delta_weekday = 0.8;  // excludes hour 20 (Pr = 0.6)
  strict.delta_weekend = 0.8;
  const SlotPredictor pred(model, strict);
  const DayPrediction day0 = pred.predict_day(0);
  EXPECT_TRUE(day0.active_slots.contains(hour_start(0, 9) + 1));
  EXPECT_FALSE(day0.active_slots.contains(hour_start(0, 20) + 1));
}

TEST(SlotPredictor, WeekdayWeekendDeltasIndependent) {
  const HabitModel model = HabitModel::mine(fixture());
  PredictorConfig cfg;
  cfg.delta_weekday = 0.2;
  cfg.delta_weekend = 0.1;
  const SlotPredictor pred(model, cfg);
  EXPECT_DOUBLE_EQ(pred.delta_for_day(0), 0.2);
  EXPECT_DOUBLE_EQ(pred.delta_for_day(5), 0.1);
}

TEST(SlotPredictor, AdjacentHoursMergeIntoOneSlot) {
  UserTrace t = fixture();
  // Add usage at hour 10 every weekday so hours 9 and 10 both qualify.
  for (int day = 0; day < 5; ++day) {
    const TimeMs at = hour_start(day, 10) + kMsPerMinute;
    t.sessions.push_back({at, at + 5000});
    t.usages.push_back({0, at, 1000});
  }
  std::sort(t.sessions.begin(), t.sessions.end(),
            [](const ScreenSession& a, const ScreenSession& b) {
              return a.begin < b.begin;
            });
  std::sort(t.usages.begin(), t.usages.end(),
            [](const AppUsage& a, const AppUsage& b) {
              return a.time < b.time;
            });
  const SlotPredictor pred(HabitModel::mine(t), PredictorConfig{});
  const DayPrediction day0 = pred.predict_day(0);
  // Hours 9 and 10 merge into a single 2-hour slot.
  bool found = false;
  for (const Interval& iv : day0.active_slots.intervals()) {
    if (iv.begin == hour_start(0, 9) && iv.end == hour_start(0, 11)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SlotPredictor, ActiveProbabilityIntegral) {
  const HabitModel model = HabitModel::mine(fixture());
  const SlotPredictor pred(model, PredictorConfig{});
  // Over hour 9 of a weekday (Pr = 1): integral = 3600 prob-seconds.
  EXPECT_NEAR(pred.active_probability_integral(hour_start(0, 9),
                                               hour_start(0, 10)),
              3600.0, 1e-9);
  // Over hour 20 (Pr = 0.6): 2160.
  EXPECT_NEAR(pred.active_probability_integral(hour_start(0, 20),
                                               hour_start(0, 21)),
              2160.0, 1e-9);
  // Split across two hours uses per-hour values.
  const double mixed = pred.active_probability_integral(
      hour_start(0, 9) + 30 * kMsPerMinute,
      hour_start(0, 10) + 30 * kMsPerMinute);
  EXPECT_NEAR(mixed, 1800.0 * 1.0 + 1800.0 * 0.0, 1e-9);
  // Degenerate and invalid windows.
  EXPECT_DOUBLE_EQ(pred.active_probability_integral(100, 100), 0.0);
  EXPECT_THROW(pred.active_probability_integral(100, 50), Error);
}

TEST(SlotPredictor, RejectsBadDeltas) {
  const HabitModel model = HabitModel::mine(fixture());
  PredictorConfig bad;
  bad.delta_weekday = 1.5;
  EXPECT_THROW(SlotPredictor(model, bad), Error);
  bad.delta_weekday = -0.1;
  EXPECT_THROW(SlotPredictor(model, bad), Error);
}

TEST(PredictionAccuracy, ExactOnFixture) {
  const HabitModel model = HabitModel::mine(fixture());
  PredictorConfig cfg;
  cfg.delta_weekday = 0.5;
  cfg.delta_weekend = 0.5;
  const SlotPredictor pred(model, cfg);
  // Evaluate on the training trace itself: weekday usages at hours 9
  // (5x) and 20 (3x) are inside U; weekend usages at hour 11 (2x) are
  // inside weekend U. All 10 usages covered.
  EXPECT_DOUBLE_EQ(prediction_accuracy(pred, fixture()), 1.0);

  PredictorConfig strict;
  strict.delta_weekday = 0.8;
  strict.delta_weekend = 0.8;
  const SlotPredictor pred2(model, strict);
  // Hour-20 usages (3 of 10) now fall outside.
  EXPECT_DOUBLE_EQ(prediction_accuracy(pred2, fixture()), 0.7);
}

TEST(PredictionAccuracy, EmptyEvalIsPerfect) {
  const SlotPredictor pred(HabitModel::mine(fixture()),
                           PredictorConfig{});
  UserTrace empty = fixture();
  empty.usages.clear();
  EXPECT_DOUBLE_EQ(prediction_accuracy(pred, empty), 1.0);
}

TEST(SpecialApps, DetectionRequiresUsageAndNetwork) {
  const SpecialApps special = SpecialApps::detect(fixture());
  EXPECT_TRUE(special.is_special(0));   // used + networked
  EXPECT_FALSE(special.is_special(1));  // used, never networked
  EXPECT_EQ(special.count(), 1u);
}

TEST(SpecialApps, UnseenAppsDefaultSpecial) {
  const SpecialApps special = SpecialApps::detect(fixture());
  EXPECT_TRUE(special.is_special(99));  // newly installed
  EXPECT_FALSE(special.is_special(-1));
}

// Property: raising delta never grows the active slot set.
class DeltaMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(DeltaMonotonicity, ActiveSlotsShrinkWithDelta) {
  const auto user = synth::make_user(synth::Archetype::kStudent, 2);
  const UserTrace trace = synth::generate_trace(user, 14, 17);
  const HabitModel model = HabitModel::mine(trace);

  const double delta = GetParam();
  PredictorConfig lo_cfg, hi_cfg;
  lo_cfg.delta_weekday = lo_cfg.delta_weekend = delta;
  hi_cfg.delta_weekday = hi_cfg.delta_weekend = delta + 0.15;
  const SlotPredictor lo(model, lo_cfg);
  const SlotPredictor hi(model, hi_cfg);
  for (int day = 0; day < 7; ++day) {
    const DurationMs lo_len =
        lo.predict_day(day).active_slots.total_length();
    const DurationMs hi_len =
        hi.predict_day(day).active_slots.total_length();
    EXPECT_GE(lo_len, hi_len) << "day " << day << " delta " << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(DeltaGrid, DeltaMonotonicity,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                           0.6, 0.7));

}  // namespace
}  // namespace netmaster::mining
