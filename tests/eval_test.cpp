// Tests for the evaluation layer: table formatting and experiment
// runners (smoke-level; the heavy sweeps are exercised by the benches).
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "eval/battery.hpp"
#include "eval/experiments.hpp"
#include "eval/table.hpp"
#include "synth/presets.hpp"

namespace netmaster::eval {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.train_days = 7;
  cfg.eval_days = 2;
  cfg.seed = 5;
  return cfg;
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, RejectsMismatchedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.1234), "12.3%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Csv, EmitsRowsAndValidates) {
  std::ostringstream os;
  print_csv(os, {"x", "y"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
  std::ostringstream os2;
  EXPECT_THROW(print_csv(os2, {"a"}, {{"has,comma"}}), Error);
}

TEST(MakeTraces, SplitsTrainEval) {
  const auto profile = synth::make_user(synth::Archetype::kLightUser, 1);
  const VolunteerTraces traces = make_traces(profile, tiny_config());
  EXPECT_EQ(traces.training.num_days, 7);
  EXPECT_EQ(traces.eval.num_days, 2);
  EXPECT_NO_THROW(traces.training.validate());
  EXPECT_NO_THROW(traces.eval.validate());
}

TEST(MakeTraces, RequiresWholeWeekTraining) {
  ExperimentConfig cfg = tiny_config();
  cfg.train_days = 10;
  const auto profile = synth::make_user(synth::Archetype::kLightUser, 1);
  EXPECT_THROW(make_traces(profile, cfg), Error);
}

TEST(ComparePolicies, ProducesExpectedRows) {
  const auto profile =
      synth::make_user(synth::Archetype::kOfficeWorker, 1);
  const VolunteerComparison cmp =
      compare_policies(profile, tiny_config());
  ASSERT_EQ(cmp.rows.size(), 6u);
  EXPECT_EQ(cmp.rows[0].policy, "baseline");
  EXPECT_EQ(cmp.rows[1].policy, "oracle");
  EXPECT_EQ(cmp.rows[2].policy, "netmaster");
  EXPECT_DOUBLE_EQ(cmp.rows[0].energy_saving, 0.0);
  // NetMaster and the oracle must clearly beat the baseline.
  EXPECT_GT(cmp.rows[1].energy_saving, 0.3);
  EXPECT_GT(cmp.rows[2].energy_saving, 0.3);
  // Bandwidth utilization rises when radio-on shrinks.
  EXPECT_GT(cmp.rows[2].down_rate_ratio, 1.0);
  // Peak rates are schedule-invariant.
  EXPECT_NEAR(cmp.rows[2].peak_down_ratio, 1.0, 1e-9);
}

TEST(DelaySweep, MonotoneUserImpact) {
  const std::vector<synth::UserProfile> profiles = {
      synth::make_user(synth::Archetype::kOfficeWorker, 1)};
  const auto points = delay_sweep(profiles, {0, 30, 300}, tiny_config());
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].affected_fraction, 0.0);
  EXPECT_LE(points[1].affected_fraction, points[2].affected_fraction);
  EXPECT_LE(points[0].energy_saving, points[2].energy_saving + 1e-9);
}

TEST(BatchSweep, SizeZeroAndOneAreNeutral) {
  const std::vector<synth::UserProfile> profiles = {
      synth::make_user(synth::Archetype::kLightUser, 1)};
  const auto points = batch_sweep(profiles, {0, 1, 4}, tiny_config());
  EXPECT_NEAR(points[0].energy_saving, 0.0, 1e-9);
  EXPECT_NEAR(points[1].energy_saving, 0.0, 1e-9);
  EXPECT_GT(points[2].energy_saving, 0.0);
}

TEST(ThresholdSweep, AccuracyFallsSavingRises) {
  const std::vector<synth::UserProfile> profiles = {
      synth::make_user(synth::Archetype::kOfficeWorker, 1)};
  const auto points =
      threshold_sweep(profiles, {0.05, 0.45}, tiny_config());
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GE(points[0].accuracy, points[1].accuracy);
  EXPECT_LE(points[0].energy_saving, points[1].energy_saving + 0.05);
}

TEST(Battery, FractionPerDay) {
  // A full charge burned over one day is exactly 100%.
  EXPECT_DOUBLE_EQ(battery_fraction_per_day(kBatteryJoules, 1), 1.0);
  // Half a charge over two days: 25% per day.
  EXPECT_DOUBLE_EQ(battery_fraction_per_day(kBatteryJoules / 2.0, 2),
                   0.25);
  EXPECT_DOUBLE_EQ(battery_fraction_per_day(0.0, 7), 0.0);
  // The reference battery is a 2014-class pack (~28.7 kJ).
  EXPECT_NEAR(kBatteryJoules, 28'728.0, 1.0);
}

TEST(AblationStudy, ReportsAllVariants) {
  const std::vector<synth::UserProfile> profiles = {
      synth::make_user(synth::Archetype::kStudent, 2)};
  const auto rows = ablation_study(profiles, tiny_config());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].variant, "full");
  // The full system has prediction-scale latency; the no-prediction
  // variant leans on frequent duty wake-ups.
  EXPECT_GT(rows[1].wake_count, rows[0].wake_count);
}

}  // namespace
}  // namespace netmaster::eval
