// Robustness suite: failure injection on the trace parser (random
// mutations must throw cleanly, never crash or accept garbage
// silently), analytic checks on the monitoring timers, and multi-seed
// stability of the calibrated headline statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "service/monitoring.hpp"
#include "service/record_store.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"

namespace netmaster {
namespace {

// ---- Parser fuzzing. -------------------------------------------------

std::string serialized_sample() {
  const UserTrace trace = synth::generate_trace(
      synth::make_user(synth::Archetype::kLightUser, 1), 2, 5);
  std::stringstream ss;
  write_trace(ss, trace);
  return ss.str();
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, MutatedInputThrowsOrParses) {
  // Random single-byte mutations of a valid trace file: the parser must
  // either produce a *valid* trace or throw netmaster::Error — never
  // crash, hang, or return something that fails validate().
  const std::string original = serialized_sample();
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = original;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    std::stringstream ss(mutated);
    try {
      const UserTrace parsed = read_trace(ss);
      EXPECT_NO_THROW(parsed.validate());
    } catch (const Error&) {
      // Expected for most mutations.
    }
  }
}

TEST_P(ParserFuzz, TruncatedInputThrowsOrParses) {
  const std::string original = serialized_sample();
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const auto cut = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(original.size()) - 1));
    std::stringstream ss(original.substr(0, cut));
    try {
      const UserTrace parsed = read_trace(ss);
      EXPECT_NO_THROW(parsed.validate());
    } catch (const Error&) {
    }
  }
}

TEST_P(ParserFuzz, MultiByteSpliceThrowsOrParses) {
  // Replace a random span with random printable bytes (models a torn
  // write / partial overwrite of the file), same invariant: parse a
  // *valid* trace or throw — never crash or accept garbage silently.
  const std::string original = serialized_sample();
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    std::string mutated = original;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
    const auto len = static_cast<std::size_t>(rng.uniform_int(
        1, std::min<std::int64_t>(
               64, static_cast<std::int64_t>(mutated.size() - pos))));
    std::string splice(len, '\0');
    for (char& c : splice) {
      c = static_cast<char>(rng.uniform_int(32, 126));
    }
    mutated.replace(pos, len, splice);
    std::stringstream ss(mutated);
    try {
      const UserTrace parsed = read_trace(ss);
      EXPECT_NO_THROW(parsed.validate());
    } catch (const Error&) {
    }
  }
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

TEST_P(ParserFuzz, LineDeletionThrowsOrParses) {
  // Whole records lost in transit. Deleting data lines must still
  // yield a valid (smaller) trace or a clean throw (e.g. a deleted
  // header or app-table row).
  const std::vector<std::string> lines =
      split_lines(serialized_sample());
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::string> mutated = lines;
    const auto kills = static_cast<std::size_t>(rng.uniform_int(1, 3));
    for (std::size_t k = 0; k < kills && mutated.size() > 1; ++k) {
      mutated.erase(mutated.begin() +
                    rng.uniform_int(
                        0, static_cast<std::int64_t>(mutated.size()) - 1));
    }
    std::stringstream ss(join_lines(mutated));
    try {
      const UserTrace parsed = read_trace(ss);
      EXPECT_NO_THROW(parsed.validate());
    } catch (const Error&) {
    }
  }
}

TEST_P(ParserFuzz, LineDuplicationThrowsOrParses) {
  // Records delivered twice. Duplicated screen sessions overlap, so
  // the parser's validate() must reject them; duplicated activities
  // may legitimately parse.
  const std::vector<std::string> lines =
      split_lines(serialized_sample());
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::string> mutated = lines;
    const auto at = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated.insert(mutated.begin() + at, mutated[at]);
    std::stringstream ss(join_lines(mutated));
    try {
      const UserTrace parsed = read_trace(ss);
      EXPECT_NO_THROW(parsed.validate());
    } catch (const Error&) {
    }
  }
}

TEST(ParserFuzz, CrlfAndWhitespaceVariants) {
  // Files round-tripped through Windows tooling (CRLF line endings) or
  // padded with stray whitespace must throw cleanly or parse valid —
  // the strict parser currently rejects both, which is fine; what it
  // must never do is crash or silently misparse a field.
  const std::string original = serialized_sample();

  std::string crlf;
  for (const char c : original) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  for (const std::string& variant :
       {crlf,
        "  " + original,               // leading indentation
        original + "\n   \t  \n",      // trailing whitespace lines
        "\xEF\xBB\xBF" + original}) {  // UTF-8 BOM
    std::stringstream ss(variant);
    try {
      const UserTrace parsed = read_trace(ss);
      EXPECT_NO_THROW(parsed.validate());
    } catch (const Error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ParserFuzz, GarbageInputsThrow) {
  for (const char* garbage :
       {"\0\0\0", "user", "user,,days,", "user,1,days,1\nnet,,,,,,,",
        "user,1,days,-5", "user,99999999999999999999,days,1"}) {
    std::stringstream ss{std::string(garbage)};
    EXPECT_THROW(read_trace(ss), Error) << '"' << garbage << '"';
  }
}

// ---- Monitoring timer math. ------------------------------------------

TEST(MonitoringTimers, SampleCountMatchesAnalyticBound) {
  // With no sessions at all, the 30 s screen-off timer fires exactly
  // horizon / 30 s times (the last partial interval still samples).
  UserTrace idle;
  idle.user = 1;
  idle.num_days = 1;
  idle.app_names = {"a"};
  service::RecordStore store;
  service::MonitoringComponent monitor(store);
  monitor.observe(idle);
  EXPECT_EQ(monitor.sample_records(),
            static_cast<std::size_t>(kMsPerDay / (30 * kMsPerSecond)));
}

TEST(MonitoringTimers, ScreenOnSamplesFaster) {
  // One hour fully screen-on inside a one-day trace: the 1 s timer
  // contributes ~3600 samples on top of the 30 s background timer.
  UserTrace t;
  t.user = 1;
  t.num_days = 1;
  t.app_names = {"a"};
  t.sessions = {{hours(10), hours(11)}};
  service::RecordStore store;
  service::MonitoringComponent monitor(store);
  monitor.observe(t);
  const std::size_t off_only =
      static_cast<std::size_t>((kMsPerDay - kMsPerHour) /
                               (30 * kMsPerSecond));
  EXPECT_GT(monitor.sample_records(), off_only + 3500);
  EXPECT_LT(monitor.sample_records(), off_only + 3700);
}

// ---- Multi-seed stability of the calibration. ------------------------

TEST(CalibrationStability, HeadlineStatsHoldAcrossSeeds) {
  // The §III statistics must stay in their paper bands for any seed —
  // the calibration is structural, not a lucky draw.
  for (std::uint64_t seed : {1ull, 42ull, 999ull, 31337ull}) {
    const TraceSet traces = synth::generate_population(
        synth::study_population(), 14, seed);
    double off = 0.0, util = 0.0;
    for (const UserTrace& t : traces.users) {
      off += traffic_split(t).screen_off_activity_fraction();
      util += screen_utilization(t).radio_utilization;
    }
    off /= traces.users.size();
    util /= traces.users.size();
    EXPECT_GT(off, 0.30) << "seed " << seed;
    EXPECT_LT(off, 0.60) << "seed " << seed;
    EXPECT_GT(util, 0.25) << "seed " << seed;
    EXPECT_LT(util, 0.60) << "seed " << seed;
  }
}

}  // namespace
}  // namespace netmaster
