// Tests for the work-stealing job system: determinism across worker
// counts and steal orders, dependency-chain poison semantics, and the
// scheduler's no-starvation / steal behavior under adversarial skew.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "jobs/job_system.hpp"
#include "obs/metrics.hpp"

namespace netmaster::jobs {
namespace {

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

TEST(TaskGraph, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  TaskGraph graph;
  std::vector<std::atomic<int>> hits(128);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    graph.add([&hits, i] { ++hits[i]; });
  }
  pool.run(graph);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskGraph, EmptyGraphCompletes) {
  WorkerPool pool(2);
  TaskGraph graph;
  pool.run(graph);
  EXPECT_TRUE(graph.ran());
}

TEST(TaskGraph, RunsOnlyOnce) {
  WorkerPool pool(1);
  TaskGraph graph;
  graph.add([] {});
  pool.run(graph);
  EXPECT_THROW(pool.run(graph), Error);
}

TEST(TaskGraph, DependencyOrderingRespected) {
  // A diamond: a -> {b, c} -> d. Whatever the interleaving of b and c,
  // a runs first and d runs last.
  WorkerPool pool(4);
  TaskGraph graph;
  std::atomic<int> step{0};
  std::atomic<bool> order_ok{true};
  const TaskId a = graph.add([&] { order_ok = order_ok && step++ == 0; });
  const TaskId b = graph.add_after({a}, [&] {
    const int s = step++;
    order_ok = order_ok && (s == 1 || s == 2);
  });
  const TaskId c = graph.add_after({a}, [&] {
    const int s = step++;
    order_ok = order_ok && (s == 1 || s == 2);
  });
  const TaskId d = graph.add_after({b, c}, [&] {
    order_ok = order_ok && step++ == 3;
  });
  (void)d;
  pool.run(graph);
  EXPECT_TRUE(order_ok.load());
  EXPECT_EQ(step.load(), 4);
}

TEST(TaskGraph, CycleIsRejected) {
  WorkerPool pool(2);
  TaskGraph graph;
  const TaskId a = graph.add([] {});
  const TaskId b = graph.add_after({a}, [] {});
  graph.add_dependency(b, a);
  try {
    pool.run(graph);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
  }
}

/// Builds and runs the same fleet-shaped graph — per-user chains of
/// prepare -> mine -> account, each stage doing real floating-point
/// work into a pre-allocated slot — and returns the result vector.
std::vector<double> run_chained_workload(unsigned workers) {
  constexpr std::size_t kUsers = 24;
  std::vector<double> prep(kUsers);
  std::vector<double> mined(kUsers);
  std::vector<double> out(kUsers);
  WorkerPool pool(workers);
  TaskGraph graph;
  for (std::size_t u = 0; u < kUsers; ++u) {
    const TaskId p = graph.add([&prep, u] {
      double acc = 1.0;
      for (int k = 1; k <= 200; ++k) {
        acc += std::sin(static_cast<double>(u * k)) / k;
      }
      prep[u] = acc;
    });
    const TaskId m = graph.add_after(
        {p}, [&prep, &mined, u] { mined[u] = prep[u] * prep[u] + u; });
    graph.add_after({m}, [&mined, &out, u] {
      out[u] = std::sqrt(mined[u]) * 0.5;
    });
  }
  pool.run(graph);
  return out;
}

TEST(TaskGraph, BitIdenticalAcrossWorkerCountsAndRepeats) {
  // The determinism contract: per-task result slots make the output
  // independent of worker count, steal order, and repetition.
  const std::vector<double> one = run_chained_workload(1);
  const std::vector<double> two = run_chained_workload(2);
  const std::vector<double> eight = run_chained_workload(8);
  const std::vector<double> eight_again = run_chained_workload(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_EQ(eight, eight_again);
}

TEST(TaskGraph, FailurePoisonsDependentsAndRethrows) {
  for (const unsigned workers : {1u, 4u}) {
    WorkerPool pool(workers);
    TaskGraph graph;
    std::atomic<int> ran{0};
    const TaskId a =
        graph.add([] { throw std::runtime_error("prep failed"); });
    const TaskId b = graph.add_after({a}, [&] { ++ran; });
    const TaskId c = graph.add_after({b}, [&] { ++ran; });
    const TaskId d = graph.add([&] { ++ran; });  // independent: must run
    const std::uint64_t cancelled_before = counter_value("jobs.cancelled");
    try {
      pool.run(graph);
      FAIL() << "expected runtime_error (workers=" << workers << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "prep failed");
    }
    EXPECT_EQ(ran.load(), 1) << "only the independent task may run";
    EXPECT_TRUE(graph.was_cancelled(b));
    EXPECT_TRUE(graph.was_cancelled(c));
    EXPECT_FALSE(graph.was_cancelled(a));
    EXPECT_FALSE(graph.was_cancelled(d));
    EXPECT_EQ(counter_value("jobs.cancelled") - cancelled_before, 2u);
  }
}

TEST(TaskGraph, LowestSubmissionIndexErrorWins) {
  // Several failing chains: the rethrown failure is the one with the
  // lowest submission index, deterministic in the graph regardless of
  // which worker reaches which failure first.
  for (const unsigned workers : {2u, 4u, 8u}) {
    WorkerPool pool(workers);
    TaskGraph graph;
    for (std::size_t i = 0; i < 64; ++i) {
      graph.add([i] {
        if (i % 17 == 5) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
    }
    try {
      pool.run(graph);
      FAIL() << "expected runtime_error (workers=" << workers << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 5") << "workers=" << workers;
    }
  }
}

TEST(WorkerPool, IdleWorkerStealsFromBlockedOwnersDeque) {
  // Pool of 2: seeds go round-robin, so deque 0 holds {t0, t2} and
  // deque 1 holds {t1}. The caller (slot 0) picks t0 off the front and
  // blocks in it until t2 has run — but t2 sits *behind* the blocked
  // caller, so the only way it can run is worker 1 stealing it from the
  // back of deque 0. Completion therefore proves a steal; the steal
  // counter must agree.
  const std::uint64_t steals_before = counter_value("jobs.steals");
  std::atomic<bool> unblocked{false};
  std::atomic<bool> timed_out{false};
  WorkerPool pool(2);
  TaskGraph graph;
  graph.add([&] {  // t0: seeded to deque 0, runs on the caller
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!unblocked.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() > deadline) {
        timed_out.store(true);
        return;
      }
      std::this_thread::yield();
    }
  });
  graph.add([] {});  // t1: seeded to deque 1, keeps worker 1 honest
  graph.add([&] {    // t2: seeded to deque 0, behind the blocked t0
    unblocked.store(true, std::memory_order_release);
  });
  pool.run(graph);
  EXPECT_FALSE(timed_out.load()) << "worker 1 never stole the unblocker";
  EXPECT_GE(counter_value("jobs.steals") - steals_before, 1u);
}

TEST(WorkerPool, AdversarialSkewDoesNotStarveAndCountsTasks) {
  // One task runs ~100x longer than the rest. Every other task must
  // still complete (no worker starves behind the heavy one), the task
  // counter must see all of them, and the result must be bit-identical
  // to the single-worker run.
  constexpr std::size_t kTasks = 96;
  const auto run = [](unsigned workers) {
    std::vector<double> out(kTasks);
    WorkerPool pool(workers);
    TaskGraph graph;
    for (std::size_t i = 0; i < kTasks; ++i) {
      graph.add([&out, i] {
        const int iters = i == 0 ? 200000 : 2000;
        double acc = 0.0;
        for (int k = 1; k <= iters; ++k) {
          acc += 1.0 / (static_cast<double>(i) + k);
        }
        out[i] = acc;
      });
    }
    pool.run(graph);
    return out;
  };
  const std::uint64_t tasks_before = counter_value("jobs.tasks");
  const std::vector<double> skewed = run(8);
  EXPECT_EQ(counter_value("jobs.tasks") - tasks_before, kTasks);
  EXPECT_EQ(skewed, run(1));
}

TEST(WorkerPool, NestedParallelForInsideTaskCompletes) {
  // A task that itself calls parallel_for must not deadlock: the
  // waiting caller executes queued work instead of parking.
  WorkerPool pool(4);
  TaskGraph graph;
  std::vector<std::atomic<int>> inner(64);
  std::atomic<int> outer{0};
  for (int t = 0; t < 4; ++t) {
    graph.add([&] {
      parallel_for(inner.size(), [&](std::size_t i) { ++inner[i]; }, 2);
      ++outer;
    });
  }
  pool.run(graph);
  EXPECT_EQ(outer.load(), 4);
  for (const auto& h : inner) EXPECT_EQ(h.load(), 4);
}

TEST(RunGraph, HonorsThreadCapAndSharedPool) {
  // run_graph must work both below the shared pool's width (temporary
  // pool) and at/above it (shared pool), with identical results.
  const auto run = [](unsigned cap) {
    std::vector<double> out(32);
    TaskGraph graph;
    for (std::size_t i = 0; i < out.size(); ++i) {
      graph.add([&out, i] { out[i] = static_cast<double>(i) * 1.5; });
    }
    run_graph(graph, cap);
    return out;
  };
  const std::vector<double> capped = run(2);
  const std::vector<double> wide = run(64);
  EXPECT_EQ(capped, wide);
}

}  // namespace
}  // namespace netmaster::jobs
