// netmasterd suite: the streaming daemon's batch-equivalence anchor
// (a replayed fleet's schedules match the batch policy path bit for
// bit), the drift-refresh path, the line protocol end to end over the
// in-process and TCP transports, and the shard queue semantics
// (drain, backpressure, late/dropped accounting, shutdown).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"
#include "daemon/loadgen.hpp"
#include "daemon/netmasterd.hpp"
#include "engine/trace_index.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "policy/netmaster.hpp"
#include "synth/drift.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster::daemon {
namespace {

void expect_outcomes_bitwise_equal(const sim::PolicyOutcome& streamed,
                                   const sim::PolicyOutcome& batch,
                                   const std::string& context) {
  ASSERT_EQ(streamed.transfers.size(), batch.transfers.size()) << context;
  for (std::size_t i = 0; i < batch.transfers.size(); ++i) {
    // EQ, not NEAR: the daemon's incremental path must reproduce the
    // batch schedule bit for bit (decay 0, clean stream).
    ASSERT_EQ(streamed.transfers[i].activity_index,
              batch.transfers[i].activity_index)
        << context << " transfer " << i;
    ASSERT_EQ(streamed.transfers[i].start, batch.transfers[i].start)
        << context << " transfer " << i;
    ASSERT_EQ(streamed.transfers[i].duration, batch.transfers[i].duration)
        << context << " transfer " << i;
  }
  EXPECT_EQ(streamed.interrupts, batch.interrupts) << context;
  EXPECT_EQ(streamed.duty_releases, batch.duty_releases) << context;
  EXPECT_EQ(streamed.path, batch.path) << context;
}

// ---- The correctness anchor. -----------------------------------------

TEST(DaemonEquivalence, StreamedSchedulesMatchBatchBitForBit) {
  LoadConfig load;
  load.users = 4;  // first four archetypes
  load.train_days = 14;
  load.eval_days = 7;
  const LoadPlan plan = build_load_plan(load);
  ASSERT_EQ(plan.users.size(), 4u);
  ASSERT_FALSE(plan.events.empty());

  DaemonConfig config;
  config.num_shards = 2;
  Netmasterd daemon(config);
  replay_plan(plan, daemon);
  daemon.drain();

  for (const LoadUser& user : plan.users) {
    const ScheduleResult streamed = daemon.schedule(user.session.user);
    // Stationary streams never alarm, so the serving model is still
    // the training snapshot.
    EXPECT_EQ(streamed.model_version, 1)
        << "user " << user.session.user;

    const policy::NetMasterPolicy batch(user.training, config.policy);
    const engine::TraceIndex eval_index(user.eval);
    const sim::PolicyOutcome expected = batch.run(eval_index);
    expect_outcomes_bitwise_equal(
        streamed.outcome, expected,
        "user " + std::to_string(user.session.user));
    EXPECT_EQ(streamed.degraded,
              expected.path == sim::ExecutionPath::kDegradedFallback);
  }

  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.totals.users, 4u);
  EXPECT_EQ(stats.totals.users_trained, 4u);
  EXPECT_EQ(stats.totals.users_finished, 4u);
  EXPECT_EQ(stats.totals.events, plan.events.size());
  EXPECT_EQ(stats.totals.dropped_events, 0u);
  EXPECT_EQ(stats.totals.refreshes, 0u);
  EXPECT_EQ(stats.totals.days_folded, 4u * 21u);
}

TEST(DaemonEquivalence, ScheduleIsCachedAndStableAcrossRepeats) {
  LoadConfig load;
  load.users = 1;
  const LoadPlan plan = build_load_plan(load);
  Netmasterd daemon;
  replay_plan(plan, daemon);

  const ScheduleResult first = daemon.schedule(0);
  const ScheduleResult second = daemon.schedule(0);
  expect_outcomes_bitwise_equal(second.outcome, first.outcome, "repeat");
  EXPECT_EQ(second.model_version, first.model_version);
}

// ---- Drift adaptation in the daemon. ---------------------------------

TEST(DaemonDrift, AbruptDriftTriggersAdoptedRefresh) {
  const int train_days = 14;
  const int eval_days = 14;
  const auto profile =
      synth::make_user(synth::Archetype::kOfficeWorker, 1);
  synth::DriftSpec spec;
  spec.kind = synth::DriftKind::kAbrupt;
  spec.onset_day = train_days;  // drift starts with the eval window
  const UserTrace full = synth::generate_drifting_trace(
      profile, spec, train_days + eval_days, 42);

  DaemonConfig config;
  // The refreshed model's slot layout can push a two-week drifted eval
  // window past the FPTAS instance-size guard; this test exercises the
  // adaptation loop, not the solver, so use the greedy backend.
  config.policy.solver = sched::SolverChoice::kGreedy;
  Netmasterd daemon(config);
  UserSessionConfig session;
  session.user = 1;
  session.train_days = train_days;
  session.num_days = train_days + eval_days;
  session.app_names = full.app_names;
  daemon.add_user(session);

  std::vector<LoadEvent> events;
  append_trace_events(full, 1, events);
  sort_events(events);
  for (const LoadEvent& e : events) daemon.ingest(e.user, e.record);
  daemon.finish_user(1);

  const DaemonStats stats = daemon.stats();
  EXPECT_GE(stats.totals.alarms, 1u);
  EXPECT_GE(stats.totals.refreshes, 1u);
  const ScheduleResult result = daemon.schedule(1);
  EXPECT_GT(result.model_version, 1);
}

// ---- Protocol surface. -----------------------------------------------

TEST(DaemonProtocol, HandleLineErrorsNeverThrow) {
  Netmasterd daemon;
  EXPECT_EQ(daemon.handle_line("bogus request").substr(0, 4), "err ");
  EXPECT_EQ(daemon.handle_line("").substr(0, 4), "err ");
  // Unknown user: the schedule request fails in-band.
  EXPECT_EQ(daemon.handle_line("get-schedule 99").substr(0, 4), "err ");
  // Registered but untrained user: still an in-band error.
  EXPECT_EQ(daemon.handle_line("user 3 14 21 mail im"), "ok");
  EXPECT_EQ(daemon.handle_line("get-schedule 3").substr(0, 4), "err ");
  // Duplicate registration.
  EXPECT_EQ(daemon.handle_line("user 3 14 21 mail im").substr(0, 4),
            "err ");
  // Ingest for an unknown user is fire-and-forget: accepted on the
  // wire, counted as dropped by the owning shard.
  EXPECT_EQ(daemon.handle_line("ingest 99 screen-on 5"), "ok");
  EXPECT_EQ(daemon.handle_line("drain"), "ok drained");
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.totals.dropped_events, 1u);
}

TEST(DaemonProtocol, EndToEndOverLocalTransport) {
  LoadConfig load;
  load.users = 2;
  const LoadPlan plan = build_load_plan(load);

  Netmasterd daemon;
  net::LocalListener listener;
  std::thread server([&] { daemon.serve(listener); });

  std::unique_ptr<net::Connection> client = listener.connect();
  std::string reply;
  for (const std::string& line : plan_request_lines(plan)) {
    client->write_line(line);
    ASSERT_TRUE(client->read_line(reply)) << line;
    ASSERT_EQ(reply, "ok") << line << " -> " << reply;
  }

  client->write_line("drain");
  ASSERT_TRUE(client->read_line(reply));
  EXPECT_EQ(reply, "ok drained");

  for (const LoadUser& user : plan.users) {
    client->write_line("get-schedule " +
                       std::to_string(user.session.user));
    ASSERT_TRUE(client->read_line(reply));
    EXPECT_EQ(reply.substr(0, 13), "ok transfers=") << reply;
    EXPECT_NE(reply.find(" model=1"), std::string::npos) << reply;
    EXPECT_NE(reply.find(" digest="), std::string::npos) << reply;
  }

  client->write_line("stats");
  ASSERT_TRUE(client->read_line(reply));
  EXPECT_EQ(reply.substr(0, 10), "ok shards=") << reply;
  EXPECT_NE(reply.find(" users=2"), std::string::npos) << reply;
  EXPECT_NE(reply.find(" trained=2"), std::string::npos) << reply;
  EXPECT_NE(reply.find(" dropped=0"), std::string::npos) << reply;

  // In-band shutdown: the reply arrives, then the transport closes and
  // serve() returns.
  client->write_line("shutdown");
  ASSERT_TRUE(client->read_line(reply));
  EXPECT_EQ(reply, "ok shutting down");
  EXPECT_FALSE(client->read_line(reply));
  server.join();
}

TEST(DaemonProtocol, WireSchedulesMatchDirectApiDigests) {
  // The same plan driven over the wire and through the direct API must
  // serve identical schedules — compare through the wire digest.
  LoadConfig load;
  load.users = 2;
  const LoadPlan plan = build_load_plan(load);

  Netmasterd wire_daemon;
  for (const std::string& line : plan_request_lines(plan)) {
    ASSERT_EQ(wire_daemon.handle_line(line), "ok");
  }
  Netmasterd direct_daemon;
  replay_plan(plan, direct_daemon);

  for (const LoadUser& user : plan.users) {
    const std::string query =
        "get-schedule " + std::to_string(user.session.user);
    const std::string a = wire_daemon.handle_line(query);
    const std::string b = direct_daemon.handle_line(query);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.substr(0, 13), "ok transfers=") << a;
  }
}

TEST(DaemonProtocol, EndToEndOverTcpLoopback) {
  Netmasterd daemon;
  net::SocketListener listener(0);
  std::thread server([&] { daemon.serve(listener); });

  net::SocketConnection client(
      net::TcpStream::connect("127.0.0.1", listener.port()));
  client.write_line("user 1 14 21 mail im");
  std::string reply;
  ASSERT_TRUE(client.read_line(reply));
  EXPECT_EQ(reply, "ok");
  client.write_line("stats");
  ASSERT_TRUE(client.read_line(reply));
  EXPECT_EQ(reply.substr(0, 10), "ok shards=") << reply;
  client.write_line("shutdown");
  ASSERT_TRUE(client.read_line(reply));
  EXPECT_EQ(reply, "ok shutting down");
  server.join();
}

TEST(DaemonProtocol, ShutdownUnblocksIdleTcpConnections) {
  Netmasterd daemon;
  net::SocketListener listener(0);
  std::thread server([&] { daemon.serve(listener); });

  // An idle connection whose worker sits blocked in recv...
  net::SocketConnection idle(
      net::TcpStream::connect("127.0.0.1", listener.port()));
  idle.write_line("stats");
  std::string reply;
  ASSERT_TRUE(idle.read_line(reply));

  // ...must not keep serve() from joining after an in-band shutdown:
  // closing the connection has to wake its blocked worker.
  net::SocketConnection control(
      net::TcpStream::connect("127.0.0.1", listener.port()));
  control.write_line("shutdown");
  ASSERT_TRUE(control.read_line(reply));
  EXPECT_EQ(reply, "ok shutting down");
  server.join();
  EXPECT_FALSE(idle.read_line(reply));
}

// ---- Shard queue semantics. ------------------------------------------

TEST(DaemonQueue, TinyQueueBackpressureStillProcessesEverything) {
  LoadConfig load;
  load.users = 2;
  const LoadPlan plan = build_load_plan(load);

  DaemonConfig config;
  config.num_shards = 2;
  config.queue_capacity = 1;  // every ingest hits the full-queue path
  Netmasterd daemon(config);
  replay_plan(plan, daemon);
  daemon.drain();

  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.totals.events, plan.events.size());
  EXPECT_EQ(stats.totals.queue_depth, 0u);
}

TEST(DaemonQueue, LateEventsAreCountedNotRefolded) {
  Netmasterd daemon;
  UserSessionConfig session;
  session.user = 7;
  session.train_days = 7;
  session.num_days = 8;
  session.app_names = {"mail"};
  daemon.add_user(session);

  // A minimal clean week: one session + usage + transfer per day.
  for (int d = 0; d < 7; ++d) {
    const TimeMs base = day_start(d) + 8 * kMsPerHour;
    daemon.ingest(7, net::make_screen_request(7, true, base).record);
    daemon.ingest(
        7, net::make_app_request(7, base + 60'000, 0, 120'000).record);
    daemon.ingest(7, net::make_net_request(7, base + 90'000, 0, 5'000,
                                           4096, 512, true, false)
                         .record);
    daemon.ingest(
        7, net::make_screen_request(7, false, base + kMsPerHour).record);
  }
  // This timestamp's day is already folded: late, never re-folded.
  daemon.ingest(7, net::make_app_request(7, day_start(0), 0, 1000).record);
  // Beyond the horizon: also late.
  daemon.ingest(
      7, net::make_app_request(7, day_start(9), 0, 1000).record);
  daemon.finish_user(7);

  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.totals.late_events, 2u);
  EXPECT_EQ(stats.totals.days_folded, 8u);
  EXPECT_EQ(stats.totals.users_finished, 1u);
  // The schedule still computes (possibly on the degraded fallback —
  // one quiet week is thin evidence, but never an error).
  const ScheduleResult result = daemon.schedule(7);
  EXPECT_EQ(result.model_version, 1);
}

TEST(DaemonQueue, LateEvalRecordInvalidatesCachedSchedule) {
  // A record for an already-folded *evaluation* day still lands in the
  // schedule() reconstruction, so a schedule cached before it arrived
  // must not survive it. Compare against a daemon that saw the same
  // record in order: both stores end up identical, so both daemons
  // must serve the same schedule bit for bit.
  LoadConfig load;
  load.users = 1;
  const LoadPlan plan = build_load_plan(load);
  const TimeMs train_end = day_start(load.train_days);
  const TimeMs last_day = day_start(load.train_days + load.eval_days - 1);

  // Withhold one eval-window net record from before the last day, so
  // delivering it after the full stream makes it late (day folded).
  std::size_t withheld = plan.events.size();
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const service::Record& r = plan.events[i].record;
    if (r.kind == service::RecordKind::kNetworkActivity &&
        r.time >= train_end && r.time < last_day) {
      withheld = i;
      break;
    }
  }
  ASSERT_LT(withheld, plan.events.size());

  // Adaptation off: the daemons' eval folds differ by the withheld
  // record, and this test pins the reconstruction, not the detector.
  DaemonConfig config;
  config.adapt.enable = false;
  Netmasterd in_order(config);
  Netmasterd late(config);
  const UserId user = plan.users[0].session.user;
  in_order.add_user(plan.users[0].session);
  late.add_user(plan.users[0].session);
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    in_order.ingest(plan.events[i].user, plan.events[i].record);
    if (i != withheld) {
      late.ingest(plan.events[i].user, plan.events[i].record);
    }
  }
  const ScheduleResult expected = in_order.schedule(user);
  late.schedule(user);  // warm the cache without the withheld record
  late.ingest(plan.events[withheld].user, plan.events[withheld].record);

  const DaemonStats stats = late.stats();
  EXPECT_EQ(stats.totals.late_events, 1u);
  expect_outcomes_bitwise_equal(late.schedule(user).outcome,
                                expected.outcome, "late eval record");
}

TEST(DaemonQueue, ShutdownIsIdempotentAndRejectsFurtherWork) {
  Netmasterd daemon;
  UserSessionConfig session;
  session.user = 1;
  session.train_days = 7;
  session.num_days = 8;
  session.app_names = {"mail"};
  daemon.add_user(session);
  daemon.shutdown();
  daemon.shutdown();  // idempotent
  EXPECT_THROW(
      daemon.ingest(1, net::make_screen_request(1, true, 0).record),
      Error);
  EXPECT_THROW(daemon.stats(), Error);
}

}  // namespace
}  // namespace netmaster::daemon
