// Tests for the §V middleware layer: record store, monitoring, mining
// and scheduling components, and the end-to-end service facade.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "policy/netmaster.hpp"
#include "service/components.hpp"
#include "service/monitoring.hpp"
#include "service/record_store.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster::service {
namespace {

UserTrace sample_trace() {
  return synth::generate_trace(
      synth::make_user(synth::Archetype::kOfficeWorker, 1), 7, 42);
}

TEST(RecordStore, AppendAndRead) {
  RecordStore store;
  store.append({RecordKind::kScreenOn, 100, -1, 0, 0, 0, false, false});
  store.append({RecordKind::kScreenOff, 200, -1, 0, 0, 0, false, false});
  EXPECT_EQ(store.size(), 2u);
  const auto records = store.all_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, RecordKind::kScreenOn);
  EXPECT_EQ(records[1].time, 200);
}

TEST(RecordStore, CacheFlushesWhenFull) {
  // A tiny cache (room for exactly 2 records) flushes on the 2nd
  // append.
  RecordStore store(2 * sizeof(Record));
  EXPECT_EQ(store.flush_count(), 0u);
  store.append({RecordKind::kScreenOn, 1, -1, 0, 0, 0, false, false});
  EXPECT_EQ(store.cached(), 1u);
  store.append({RecordKind::kScreenOff, 2, -1, 0, 0, 0, false, false});
  EXPECT_EQ(store.cached(), 0u);
  EXPECT_EQ(store.flush_count(), 1u);
  EXPECT_EQ(store.bytes_flushed(), 2 * sizeof(Record));
  // Reads still see everything.
  EXPECT_EQ(store.all_records().size(), 2u);
}

TEST(RecordStore, ExplicitFlushAndIdempotence) {
  RecordStore store;
  store.append({RecordKind::kScreenOn, 1, -1, 0, 0, 0, false, false});
  store.flush();
  EXPECT_EQ(store.flush_count(), 1u);
  store.flush();  // empty cache: no-op
  EXPECT_EQ(store.flush_count(), 1u);
}

TEST(RecordStore, ToTraceReconstructsEvents) {
  const UserTrace original = sample_trace();
  RecordStore store;
  MonitoringComponent monitor(store);
  monitor.observe(original);
  const UserTrace rebuilt =
      store.to_trace(original.user, original.num_days,
                     original.app_names);
  EXPECT_EQ(rebuilt.sessions, original.sessions);
  EXPECT_EQ(rebuilt.usages, original.usages);
  EXPECT_EQ(rebuilt.activities, original.activities);
}

TEST(Monitoring, HybridTriggerRecordCounts) {
  const UserTrace t = sample_trace();
  RecordStore store;
  MonitoringComponent monitor(store);
  const std::size_t emitted = monitor.observe(t);
  EXPECT_EQ(emitted, store.size());
  // Event records: 2 per session + usages + activities.
  EXPECT_EQ(monitor.event_records(),
            2 * t.sessions.size() + t.usages.size() +
                t.activities.size());
  // Time-triggered samples exist and dominate during screen-off (30 s
  // period over 7 days -> thousands).
  EXPECT_GT(monitor.sample_records(), 10'000u);
}

TEST(Monitoring, SamplePeriodValidation) {
  RecordStore store;
  MonitoringConfig bad;
  bad.screen_on_sample_ms = 0;
  EXPECT_THROW(MonitoringComponent(store, bad), Error);
}

TEST(MiningComponent, RetrainBroadcasts) {
  const UserTrace t = sample_trace();
  RecordStore store;
  MonitoringComponent monitor(store);
  monitor.observe(t);

  MiningComponent mining(store);
  int broadcasts = 0;
  mining.subscribe([&](const MiningComponent::Broadcast& b) {
    ++broadcasts;
    EXPECT_GT(b.special.count(), 0u);
  });
  EXPECT_FALSE(mining.latest().has_value());
  mining.retrain(t.user, t.num_days, t.app_names);
  EXPECT_EQ(broadcasts, 1);
  ASSERT_TRUE(mining.latest().has_value());
  EXPECT_THROW(mining.subscribe(nullptr), Error);
}

TEST(SchedulingComponent, RadioCommands) {
  const UserTrace t = sample_trace();
  RecordStore store;
  MonitoringComponent monitor(store);
  monitor.observe(t);
  MiningComponent mining(store);

  SchedulingComponent sched(policy::NetMasterConfig{});
  mining.subscribe([&](const MiningComponent::Broadcast& b) {
    sched.on_broadcast(b);
  });
  EXPECT_FALSE(sched.has_model());
  mining.retrain(t.user, t.num_days, t.app_names);
  ASSERT_TRUE(sched.has_model());

  // Screen-off outside active slots: radio down; duty wake with
  // traffic: radio up.
  const TimeMs night = hour_start(3, 3);
  EXPECT_EQ(sched.on_screen_off(night), RadioCommand::kDisable);
  EXPECT_EQ(sched.on_duty_wake(night + 30'000, true),
            RadioCommand::kEnable);
  EXPECT_GE(sched.radio_switches(), 1u);
}

TEST(SchedulingComponent, SpecialAppGatesScreenOnRadio) {
  const UserTrace t = sample_trace();
  RecordStore store;
  MonitoringComponent monitor(store);
  monitor.observe(t);
  MiningComponent mining(store);
  SchedulingComponent sched(policy::NetMasterConfig{});
  mining.subscribe([&](const MiningComponent::Broadcast& b) {
    sched.on_broadcast(b);
  });
  mining.retrain(t.user, t.num_days, t.app_names);

  const mining::SpecialApps special = mining::SpecialApps::detect(t);
  AppId non_special = -1;
  for (AppId a = 0; a < static_cast<AppId>(t.app_names.size()); ++a) {
    if (!special.is_special(a)) {
      non_special = a;
      break;
    }
  }
  ASSERT_GE(non_special, 0);
  // At night (outside predicted slots) a non-special foreground app
  // does not power the radio; a special one does.
  const TimeMs night = hour_start(3, 3);
  EXPECT_EQ(sched.on_screen_on(night, non_special),
            RadioCommand::kDisable);
  EXPECT_EQ(sched.on_screen_on(night, 0), RadioCommand::kEnable);
}

TEST(SchedulingComponent, DecideRequiresModel) {
  SchedulingComponent sched(policy::NetMasterConfig{});
  EXPECT_THROW(sched.decide({}, {}), Error);
}

TEST(NetMasterService, EndToEndMatchesPolicy) {
  const auto profile = synth::make_user(synth::Archetype::kStudent, 2);
  const UserTrace full = synth::generate_trace(profile, 21, 7);
  const UserTrace training = full.slice_days(0, 14);
  const UserTrace eval = full.slice_days(14, 7);

  NetMasterService service;
  service.train(training);
  const sim::SimReport via_service = service.evaluate(eval);

  const policy::NetMasterPolicy policy(training,
                                       policy::NetMasterConfig{});
  const sim::SimReport direct = sim::account(
      eval, policy.run(eval), policy::NetMasterConfig{}.profit.radio);

  EXPECT_DOUBLE_EQ(via_service.energy_j, direct.energy_j);
  EXPECT_EQ(via_service.radio_on_ms, direct.radio_on_ms);
  EXPECT_EQ(via_service.interrupts, direct.interrupts);
}

TEST(NetMasterService, EvaluateBeforeTrainThrows) {
  NetMasterService service;
  EXPECT_THROW(service.evaluate(sample_trace()), Error);
}

}  // namespace
}  // namespace netmaster::service
