// Tests for the §V middleware layer: record store, monitoring, mining
// and scheduling components, and the end-to-end service facade.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "policy/netmaster.hpp"
#include "service/components.hpp"
#include "service/monitoring.hpp"
#include "service/record_store.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster::service {
namespace {

UserTrace sample_trace() {
  return synth::generate_trace(
      synth::make_user(synth::Archetype::kOfficeWorker, 1), 7, 42);
}

TEST(RecordStore, AppendAndRead) {
  RecordStore store;
  store.append({RecordKind::kScreenOn, 100, -1, 0, 0, 0, false, false});
  store.append({RecordKind::kScreenOff, 200, -1, 0, 0, 0, false, false});
  EXPECT_EQ(store.size(), 2u);
  const auto records = store.all_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, RecordKind::kScreenOn);
  EXPECT_EQ(records[1].time, 200);
}

TEST(RecordStore, CacheFlushesWhenFull) {
  // A tiny cache (room for exactly 2 records) flushes on the 2nd
  // append.
  RecordStore store(2 * sizeof(Record));
  EXPECT_EQ(store.flush_count(), 0u);
  store.append({RecordKind::kScreenOn, 1, -1, 0, 0, 0, false, false});
  EXPECT_EQ(store.cached(), 1u);
  store.append({RecordKind::kScreenOff, 2, -1, 0, 0, 0, false, false});
  EXPECT_EQ(store.cached(), 0u);
  EXPECT_EQ(store.flush_count(), 1u);
  EXPECT_EQ(store.bytes_flushed(), 2 * sizeof(Record));
  // Reads still see everything.
  EXPECT_EQ(store.all_records().size(), 2u);
}

TEST(RecordStore, AppendExactlyAtCapacityFlushesOnce) {
  // Capacity for exactly 3 records: appends 1 and 2 stay cached, the
  // 3rd lands exactly at capacity and triggers one flush of all 3.
  RecordStore store(3 * sizeof(Record));
  store.append({RecordKind::kScreenOn, 1, -1, 0, 0, 0, false, false});
  store.append({RecordKind::kScreenOff, 2, -1, 0, 0, 0, false, false});
  EXPECT_EQ(store.cached(), 2u);
  EXPECT_EQ(store.flush_count(), 0u);
  store.append({RecordKind::kScreenOn, 3, -1, 0, 0, 0, false, false});
  EXPECT_EQ(store.cached(), 0u);
  EXPECT_EQ(store.flush_count(), 1u);
  EXPECT_EQ(store.bytes_flushed(), 3 * sizeof(Record));
  EXPECT_EQ(store.size(), 3u);
}

TEST(RecordStore, RecordLargerThanCacheFlushesEveryAppend) {
  // A cache smaller than one record degenerates to capacity 1: every
  // append writes through immediately, nothing is ever cached, and no
  // record is lost.
  RecordStore store(sizeof(Record) / 2);
  for (TimeMs t = 1; t <= 5; ++t) {
    store.append({RecordKind::kNetworkSample, t, -1, 0, 0, 0, false,
                  false});
    EXPECT_EQ(store.cached(), 0u);
  }
  EXPECT_EQ(store.flush_count(), 5u);
  EXPECT_EQ(store.bytes_flushed(), 5 * sizeof(Record));
  EXPECT_EQ(store.all_records().size(), 5u);
}

TEST(RecordStore, RepeatedFillFlushCyclesAccountExactly) {
  // 10 fill/flush cycles of a 2-record cache plus one trailing partial
  // fill: counters must account every byte exactly once.
  RecordStore store(2 * sizeof(Record));
  const std::size_t cycles = 10;
  for (std::size_t i = 0; i < 2 * cycles; ++i) {
    store.append({RecordKind::kNetworkSample,
                  static_cast<TimeMs>(i + 1), -1, 0, 0, 0, false,
                  false});
  }
  EXPECT_EQ(store.flush_count(), cycles);
  EXPECT_EQ(store.bytes_flushed(), 2 * cycles * sizeof(Record));
  // Trailing partial fill: cached but not yet flushed...
  store.append({RecordKind::kScreenOn, 999, -1, 0, 0, 0, false, false});
  EXPECT_EQ(store.cached(), 1u);
  EXPECT_EQ(store.flush_count(), cycles);
  // ...until an explicit flush, which accounts the partial batch.
  store.flush();
  EXPECT_EQ(store.flush_count(), cycles + 1);
  EXPECT_EQ(store.bytes_flushed(), (2 * cycles + 1) * sizeof(Record));
  EXPECT_EQ(store.size(), 2 * cycles + 1);
  // Append order survives the cycles.
  const auto records = store.all_records();
  ASSERT_EQ(records.size(), 2 * cycles + 1);
  for (std::size_t i = 0; i < 2 * cycles; ++i) {
    EXPECT_EQ(records[i].time, static_cast<TimeMs>(i + 1));
  }
}

TEST(RecordStore, ExplicitFlushAndIdempotence) {
  RecordStore store;
  store.append({RecordKind::kScreenOn, 1, -1, 0, 0, 0, false, false});
  store.flush();
  EXPECT_EQ(store.flush_count(), 1u);
  store.flush();  // empty cache: no-op
  EXPECT_EQ(store.flush_count(), 1u);
}

TEST(RecordStore, ToTraceReconstructsEvents) {
  const UserTrace original = sample_trace();
  RecordStore store;
  MonitoringComponent monitor(store);
  monitor.observe(original);
  const UserTrace rebuilt =
      store.to_trace(original.user, original.num_days,
                     original.app_names);
  EXPECT_EQ(rebuilt.sessions, original.sessions);
  EXPECT_EQ(rebuilt.usages, original.usages);
  EXPECT_EQ(rebuilt.activities, original.activities);
}

TEST(Monitoring, HybridTriggerRecordCounts) {
  const UserTrace t = sample_trace();
  RecordStore store;
  MonitoringComponent monitor(store);
  const std::size_t emitted = monitor.observe(t);
  EXPECT_EQ(emitted, store.size());
  // Event records: 2 per session + usages + activities.
  EXPECT_EQ(monitor.event_records(),
            2 * t.sessions.size() + t.usages.size() +
                t.activities.size());
  // Time-triggered samples exist and dominate during screen-off (30 s
  // period over 7 days -> thousands).
  EXPECT_GT(monitor.sample_records(), 10'000u);
}

TEST(Monitoring, SamplePeriodValidation) {
  RecordStore store;
  MonitoringConfig bad;
  bad.screen_on_sample_ms = 0;
  EXPECT_THROW(MonitoringComponent(store, bad), Error);
}

TEST(MiningComponent, RetrainBroadcasts) {
  const UserTrace t = sample_trace();
  RecordStore store;
  MonitoringComponent monitor(store);
  monitor.observe(t);

  MiningComponent mining(store);
  int broadcasts = 0;
  mining.subscribe([&](const MiningComponent::Broadcast& b) {
    ++broadcasts;
    EXPECT_GT(b.special.count(), 0u);
  });
  EXPECT_FALSE(mining.latest().has_value());
  mining.retrain(t.user, t.num_days, t.app_names);
  EXPECT_EQ(broadcasts, 1);
  ASSERT_TRUE(mining.latest().has_value());
  EXPECT_THROW(mining.subscribe(nullptr), Error);
}

TEST(MiningComponent, RetrainToleratesDamagedRecords) {
  // A store holding records a valid trace cannot express — negative
  // byte deltas (counter reset), an unknown app id, a timestamp past
  // the horizon — must degrade the broadcast, not kill the retrain.
  const UserTrace t = sample_trace();
  RecordStore store;
  MonitoringComponent monitor(store);
  monitor.observe(t);
  store.append({RecordKind::kNetworkActivity, 100, 0, -5'000, -3, 10,
                false, true});
  store.append({RecordKind::kNetworkActivity, 200,
                static_cast<AppId>(t.app_names.size() + 4), 10, 10, 10,
                false, true});
  store.append({RecordKind::kAppForeground,
                t.trace_end() + kMsPerHour, 0, 0, 0, 5, false, false});

  // The strict path rejects the damaged store...
  EXPECT_THROW(store.to_trace(t.user, t.num_days, t.app_names), Error);

  // ...the tolerant retrain repairs it and reports what it discarded.
  MiningComponent mining(store);
  mining.retrain(t.user, t.num_days, t.app_names);
  ASSERT_TRUE(mining.latest().has_value());
  const MiningComponent::Broadcast& b = *mining.latest();
  EXPECT_FALSE(b.repair.clean());
  EXPECT_GE(b.repair.dropped_events + b.repair.clamped_events, 2u);
  EXPECT_LT(b.repair.quality(), 1.0);
  EXPECT_GT(b.model.training_days(), 0);
}

TEST(SchedulingComponent, RadioCommands) {
  const UserTrace t = sample_trace();
  RecordStore store;
  MonitoringComponent monitor(store);
  monitor.observe(t);
  MiningComponent mining(store);

  SchedulingComponent sched(policy::NetMasterConfig{});
  mining.subscribe([&](const MiningComponent::Broadcast& b) {
    sched.on_broadcast(b);
  });
  EXPECT_FALSE(sched.has_model());
  mining.retrain(t.user, t.num_days, t.app_names);
  ASSERT_TRUE(sched.has_model());

  // Screen-off outside active slots: radio down; duty wake with
  // traffic: radio up.
  const TimeMs night = hour_start(3, 3);
  EXPECT_EQ(sched.on_screen_off(night), RadioCommand::kDisable);
  EXPECT_EQ(sched.on_duty_wake(night + 30'000, true),
            RadioCommand::kEnable);
  EXPECT_GE(sched.radio_switches(), 1u);
}

TEST(SchedulingComponent, SpecialAppGatesScreenOnRadio) {
  const UserTrace t = sample_trace();
  RecordStore store;
  MonitoringComponent monitor(store);
  monitor.observe(t);
  MiningComponent mining(store);
  SchedulingComponent sched(policy::NetMasterConfig{});
  mining.subscribe([&](const MiningComponent::Broadcast& b) {
    sched.on_broadcast(b);
  });
  mining.retrain(t.user, t.num_days, t.app_names);

  const mining::SpecialApps special = mining::SpecialApps::detect(t);
  AppId non_special = -1;
  for (AppId a = 0; a < static_cast<AppId>(t.app_names.size()); ++a) {
    if (!special.is_special(a)) {
      non_special = a;
      break;
    }
  }
  ASSERT_GE(non_special, 0);
  // At night (outside predicted slots) a non-special foreground app
  // does not power the radio; a special one does.
  const TimeMs night = hour_start(3, 3);
  EXPECT_EQ(sched.on_screen_on(night, non_special),
            RadioCommand::kDisable);
  EXPECT_EQ(sched.on_screen_on(night, 0), RadioCommand::kEnable);
}

TEST(SchedulingComponent, DecideRequiresModel) {
  SchedulingComponent sched(policy::NetMasterConfig{});
  EXPECT_THROW(sched.decide({}, {}), Error);
}

TEST(NetMasterService, EndToEndMatchesPolicy) {
  const auto profile = synth::make_user(synth::Archetype::kStudent, 2);
  const UserTrace full = synth::generate_trace(profile, 21, 7);
  const UserTrace training = full.slice_days(0, 14);
  const UserTrace eval = full.slice_days(14, 7);

  NetMasterService service;
  service.train(training);
  const sim::SimReport via_service = service.evaluate(eval);

  const policy::NetMasterPolicy policy(training,
                                       policy::NetMasterConfig{});
  const sim::SimReport direct = sim::account(
      eval, policy.run(eval), policy::NetMasterConfig{}.profit.radio);

  EXPECT_DOUBLE_EQ(via_service.energy_j, direct.energy_j);
  EXPECT_EQ(via_service.radio_on_ms, direct.radio_on_ms);
  EXPECT_EQ(via_service.interrupts, direct.interrupts);
}

TEST(NetMasterService, EvaluateBeforeTrainThrows) {
  NetMasterService service;
  EXPECT_THROW(service.evaluate(sample_trace()), Error);
}

}  // namespace
}  // namespace netmaster::service
