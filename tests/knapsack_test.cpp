// Tests for the 0/1 knapsack solvers, including the (1−ε) FPTAS bound
// as a property suite against the exact DP.
#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sched/knapsack.hpp"

namespace netmaster::sched {
namespace {

TEST(KnapsackExact, KnownInstance) {
  // Classic: capacity 10, best = items {1,2} with profit 9.
  const std::vector<KnapItem> items = {
      {0, 6.0, 7}, {1, 5.0, 5}, {2, 4.0, 4}, {3, 1.0, 3}};
  const KnapResult r = knapsack_exact(items, 10);
  EXPECT_DOUBLE_EQ(r.profit, 9.0);
  EXPECT_EQ(r.weight, 9);
  EXPECT_EQ(r.chosen, (std::vector<int>{1, 2}));
}

TEST(KnapsackExact, ZeroCapacityTakesOnlyWeightless) {
  const std::vector<KnapItem> items = {{0, 3.0, 0}, {1, 9.0, 1}};
  const KnapResult r = knapsack_exact(items, 0);
  EXPECT_DOUBLE_EQ(r.profit, 3.0);
  EXPECT_EQ(r.chosen, (std::vector<int>{0}));
}

TEST(KnapsackExact, IgnoresNonPositiveProfit) {
  const std::vector<KnapItem> items = {{0, -5.0, 1}, {1, 0.0, 1},
                                       {2, 2.0, 1}};
  const KnapResult r = knapsack_exact(items, 10);
  EXPECT_DOUBLE_EQ(r.profit, 2.0);
  EXPECT_EQ(r.chosen.size(), 1u);
}

TEST(KnapsackExact, EmptyAndErrors) {
  EXPECT_DOUBLE_EQ(knapsack_exact({}, 100).profit, 0.0);
  EXPECT_THROW(knapsack_exact({}, -1), Error);
  const std::vector<KnapItem> neg = {{0, 1.0, -2}};
  EXPECT_THROW(knapsack_exact(neg, 10), Error);
  EXPECT_THROW(knapsack_exact({}, 100'000'000), Error);
}

TEST(KnapsackValidation, RejectsNonFiniteProfit) {
  // A NaN profit would poison the ratio sort and the DP silently;
  // every kernel must reject it up front with a clear error.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const double bad : {nan, inf, -inf}) {
    const std::vector<KnapItem> items = {{0, 2.0, 1}, {1, bad, 1}};
    EXPECT_THROW(knapsack_exact(items, 10), Error);
    EXPECT_THROW(knapsack_greedy(items, 10), Error);
    EXPECT_THROW(knapsack_fptas(items, 10, 0.1), Error);
    EXPECT_THROW(fractional_upper_bound(items, 10), Error);
  }
}

TEST(KnapsackGreedy, TakesByRatio) {
  const std::vector<KnapItem> items = {
      {0, 10.0, 10}, {1, 9.0, 3}, {2, 8.0, 3}};  // ratios 1, 3, 2.67
  const KnapResult r = knapsack_greedy(items, 7);
  EXPECT_DOUBLE_EQ(r.profit, 17.0);  // takes 1 then 2; 0 no longer fits
  EXPECT_EQ(r.weight, 6);
}

TEST(KnapsackGreedy, ZeroWeightFirst) {
  const std::vector<KnapItem> items = {{0, 1.0, 5}, {1, 0.5, 0}};
  const KnapResult r = knapsack_greedy(items, 5);
  EXPECT_DOUBLE_EQ(r.profit, 1.5);
}

TEST(KnapsackFptas, TrivialCases) {
  EXPECT_DOUBLE_EQ(knapsack_fptas({}, 100, 0.1).profit, 0.0);
  const std::vector<KnapItem> items = {{0, 5.0, 200}};  // does not fit
  EXPECT_DOUBLE_EQ(knapsack_fptas(items, 100, 0.1).profit, 0.0);
  const std::vector<KnapItem> zero_w = {{0, 5.0, 0}, {1, 3.0, 50}};
  const KnapResult r = knapsack_fptas(zero_w, 100, 0.1);
  EXPECT_DOUBLE_EQ(r.profit, 8.0);
}

TEST(KnapsackFptas, EpsValidation) {
  const std::vector<KnapItem> items = {{0, 1.0, 1}};
  EXPECT_THROW(knapsack_fptas(items, 10, 0.0), Error);
  EXPECT_THROW(knapsack_fptas(items, 10, 1.0), Error);
  EXPECT_THROW(knapsack_fptas(items, 10, -0.5), Error);
  EXPECT_NO_THROW(knapsack_fptas(items, 10, 0.999));
}

TEST(KnapsackFptas, RespectsCapacity) {
  Rng rng(5);
  for (int run = 0; run < 50; ++run) {
    std::vector<KnapItem> items;
    for (int i = 0; i < 30; ++i) {
      items.push_back({i, rng.uniform(0.1, 50.0),
                       rng.uniform_int(1, 40)});
    }
    const std::int64_t cap = rng.uniform_int(10, 300);
    const KnapResult r = knapsack_fptas(items, cap, 0.2);
    EXPECT_LE(r.weight, cap);
    double profit = 0.0;
    for (int id : r.chosen) profit += items[id].profit;
    EXPECT_NEAR(profit, r.profit, 1e-9);
  }
}

TEST(FractionalBound, DominatesExact) {
  Rng rng(6);
  for (int run = 0; run < 30; ++run) {
    std::vector<KnapItem> items;
    for (int i = 0; i < 20; ++i) {
      items.push_back({i, rng.uniform(0.1, 30.0),
                       rng.uniform_int(1, 30)});
    }
    const std::int64_t cap = rng.uniform_int(5, 200);
    EXPECT_GE(fractional_upper_bound(items, cap) + 1e-9,
              knapsack_exact(items, cap).profit);
  }
}

// Property suite: FPTAS >= (1 - eps) * OPT across eps values and
// random instances; greedy is also compared for reference feasibility.
struct FptasCase {
  double eps;
  std::uint64_t seed;
};

class FptasBound : public ::testing::TestWithParam<FptasCase> {};

TEST_P(FptasBound, AchievesGuarantee) {
  const auto [eps, seed] = GetParam();
  Rng rng(seed);
  for (int run = 0; run < 25; ++run) {
    std::vector<KnapItem> items;
    const int n = static_cast<int>(rng.uniform_int(5, 40));
    for (int i = 0; i < n; ++i) {
      items.push_back({i, rng.uniform(0.5, 100.0),
                       rng.uniform_int(1, 50)});
    }
    const std::int64_t cap = rng.uniform_int(20, 400);
    const double exact = knapsack_exact(items, cap).profit;
    const KnapResult approx = knapsack_fptas(items, cap, eps);
    EXPECT_GE(approx.profit, (1.0 - eps) * exact - 1e-9)
        << "eps=" << eps << " run=" << run;
    EXPECT_LE(approx.profit, exact + 1e-9);
    EXPECT_LE(approx.weight, cap);
    // Greedy stays feasible too.
    const KnapResult greedy = knapsack_greedy(items, cap);
    EXPECT_LE(greedy.weight, cap);
    EXPECT_LE(greedy.profit, exact + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    EpsGrid, FptasBound,
    ::testing::Values(FptasCase{0.01, 1}, FptasCase{0.05, 2},
                      FptasCase{0.1, 3}, FptasCase{0.1, 4},
                      FptasCase{0.25, 5}, FptasCase{0.5, 6},
                      FptasCase{0.75, 7}, FptasCase{0.9, 8}));

}  // namespace
}  // namespace netmaster::sched
