// End-to-end integration tests: synth -> mine -> schedule -> simulate,
// with the cross-policy invariants that define the paper's result,
// parameterized over volunteers and seeds.
#include <gtest/gtest.h>

#include <sstream>

#include "eval/experiments.hpp"
#include "policy/baseline.hpp"
#include "policy/delay_batch.hpp"
#include "policy/netmaster.hpp"
#include "policy/oracle.hpp"
#include "sim/accounting.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"
#include "trace/trace_io.hpp"

namespace netmaster {
namespace {

struct Scenario {
  synth::Archetype archetype;
  std::uint64_t seed;
};

class Pipeline : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    const auto profile = synth::make_user(GetParam().archetype, 1);
    const UserTrace full =
        synth::generate_trace(profile, 21, GetParam().seed);
    training_ = full.slice_days(0, 14);
    eval_ = full.slice_days(14, 7);
    radio_ = RadioPowerParams::wcdma();
    baseline_ = sim::account(eval_, policy::BaselinePolicy().run(eval_),
                             radio_);
  }

  UserTrace training_;
  UserTrace eval_;
  RadioPowerParams radio_;
  sim::SimReport baseline_;
};

TEST_P(Pipeline, NetMasterSavesSubstantialEnergy) {
  const policy::NetMasterPolicy nm(training_, policy::NetMasterConfig{});
  const sim::SimReport rep = sim::account(eval_, nm.run(eval_), radio_);
  // The headline claim, with slack for workload variety: NetMaster
  // saves a large fraction of radio energy and radio-on time.
  EXPECT_LT(rep.energy_j, 0.65 * baseline_.energy_j);
  EXPECT_LT(rep.radio_on_ms, 0.65 * baseline_.radio_on_ms);
}

TEST_P(Pipeline, AllBytesEventuallyMove) {
  const policy::NetMasterPolicy nm(training_, policy::NetMasterConfig{});
  const sim::SimReport rep = sim::account(eval_, nm.run(eval_), radio_);
  EXPECT_EQ(rep.bytes_down, baseline_.bytes_down);
  EXPECT_EQ(rep.bytes_up, baseline_.bytes_up);
}

TEST_P(Pipeline, OracleAndNetMasterAgreeClosely) {
  const policy::NetMasterPolicy nm(training_, policy::NetMasterConfig{});
  const policy::OraclePolicy oracle;
  const double e_nm =
      sim::account(eval_, nm.run(eval_), radio_).energy_j;
  const double e_oracle =
      sim::account(eval_, oracle.run(eval_), radio_).energy_j;
  // The paper reports a gap below 5% of baseline in ~82% of runs and
  // 11.2% worst case; allow 15% of baseline either way (our oracle is a
  // strong heuristic, not a proven optimum).
  EXPECT_NEAR(e_nm, e_oracle, 0.15 * baseline_.energy_j);
}

TEST_P(Pipeline, UserExperiencePreserved) {
  const policy::NetMasterPolicy nm(training_, policy::NetMasterConfig{});
  const sim::SimReport rep = sim::account(eval_, nm.run(eval_), radio_);
  EXPECT_LT(rep.affected_fraction, 0.01);  // paper: < 1%
}

TEST_P(Pipeline, NetMasterBeatsDelayAndBatch) {
  const policy::NetMasterPolicy nm(training_, policy::NetMasterConfig{});
  const double e_nm =
      sim::account(eval_, nm.run(eval_), radio_).energy_j;
  for (double interval_s : {10.0, 20.0, 60.0}) {
    const policy::DelayBatchPolicy db(seconds(interval_s));
    const double e_db =
        sim::account(eval_, db.run(eval_), radio_).energy_j;
    EXPECT_LT(e_nm, e_db) << "interval " << interval_s;
    EXPECT_LE(e_db, baseline_.energy_j + 1e-6);
  }
}

TEST_P(Pipeline, BandwidthUtilizationImproves) {
  const policy::NetMasterPolicy nm(training_, policy::NetMasterConfig{});
  const sim::SimReport rep = sim::account(eval_, nm.run(eval_), radio_);
  EXPECT_GT(rep.avg_down_rate_kbps, 1.5 * baseline_.avg_down_rate_kbps);
  // Peak rates do not change (paper Fig. 7c).
  EXPECT_DOUBLE_EQ(rep.peak_down_rate_kbps,
                   baseline_.peak_down_rate_kbps);
}

TEST_P(Pipeline, ReportsAreDeterministic) {
  const policy::NetMasterPolicy nm(training_, policy::NetMasterConfig{});
  const sim::SimReport a = sim::account(eval_, nm.run(eval_), radio_);
  const sim::SimReport b = sim::account(eval_, nm.run(eval_), radio_);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.radio_on_ms, b.radio_on_ms);
  EXPECT_EQ(a.wake_count, b.wake_count);
}

TEST_P(Pipeline, TracesSurviveSerialization) {
  std::stringstream ss;
  write_trace(ss, eval_);
  const UserTrace back = read_trace(ss);
  const policy::NetMasterPolicy nm(training_, policy::NetMasterConfig{});
  const sim::SimReport from_original =
      sim::account(eval_, nm.run(eval_), radio_);
  const sim::SimReport from_roundtrip =
      sim::account(back, nm.run(back), radio_);
  EXPECT_DOUBLE_EQ(from_original.energy_j, from_roundtrip.energy_j);
}

INSTANTIATE_TEST_SUITE_P(
    VolunteersAndSeeds, Pipeline,
    ::testing::Values(
        Scenario{synth::Archetype::kOfficeWorker, 42},
        Scenario{synth::Archetype::kStudent, 42},
        Scenario{synth::Archetype::kHeavyMessenger, 42},
        Scenario{synth::Archetype::kOfficeWorker, 7},
        Scenario{synth::Archetype::kStudent, 1234},
        Scenario{synth::Archetype::kCommuter, 42},
        Scenario{synth::Archetype::kNightOwl, 42},
        Scenario{synth::Archetype::kRetiree, 42}));

// Pathological workloads the system must survive.
TEST(PipelineEdgeCases, NoScreenOffTraffic) {
  UserTrace training;
  training.user = 1;
  training.num_days = 7;
  training.app_names = {"a"};
  for (int day = 0; day < 7; ++day) {
    const TimeMs at = hour_start(day, 12);
    training.sessions.push_back({at, at + 60'000});
    training.usages.push_back({0, at, 5000});
    NetworkActivity n;
    n.app = 0;
    n.start = at + 1000;
    n.duration = 2000;
    n.bytes_down = 1000;
    n.user_initiated = true;
    training.activities.push_back(n);
  }
  const UserTrace eval = training;
  const policy::NetMasterPolicy nm(training, policy::NetMasterConfig{});
  const sim::SimReport rep = sim::account(
      eval, nm.run(eval), RadioPowerParams::wcdma());
  EXPECT_EQ(rep.interrupts, 0u);
  EXPECT_GT(rep.energy_j, 0.0);
}

TEST(PipelineEdgeCases, AllNightSyncsOnly) {
  // No usage at all: everything rides the duty-cycle path.
  UserTrace training;
  training.user = 1;
  training.num_days = 7;
  training.app_names = {"sync"};
  for (int day = 0; day < 7; ++day) {
    for (int hour = 0; hour < 24; hour += 2) {
      NetworkActivity n;
      n.app = 0;
      n.start = hour_start(day, hour);
      n.duration = 3000;
      n.bytes_down = 500;
      n.deferrable = true;
      training.activities.push_back(n);
    }
  }
  const UserTrace eval = training;
  const policy::NetMasterPolicy nm(training, policy::NetMasterConfig{});
  const sim::PolicyOutcome o = nm.run(eval);
  EXPECT_EQ(o.transfers.size(), eval.activities.size());
  EXPECT_GT(o.duty_releases, 0u);
  EXPECT_NO_THROW(
      sim::account(eval, o, RadioPowerParams::wcdma()));
}

TEST(PipelineEdgeCases, EmptyEvalTrace) {
  const auto profile = synth::make_user(synth::Archetype::kLightUser, 1);
  const UserTrace training = synth::generate_trace(profile, 7, 3);
  UserTrace eval;
  eval.user = 1;
  eval.num_days = 1;
  eval.app_names = training.app_names;
  const policy::NetMasterPolicy nm(training, policy::NetMasterConfig{});
  const sim::SimReport rep = sim::account(
      eval, nm.run(eval), RadioPowerParams::wcdma());
  EXPECT_DOUBLE_EQ(rep.transfer_energy_j, 0.0);
}

}  // namespace
}  // namespace netmaster
