// Tests for the RRC radio power model — hand-computed trajectories plus
// monotonicity / aggregation properties.
#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "power/radio_model.hpp"

namespace netmaster {
namespace {

constexpr TimeMs kHorizon = 10 * kMsPerMinute;

RadioPowerParams wcdma() { return RadioPowerParams::wcdma(); }

double joules(double mw, DurationMs ms) { return mw * ms * 1e-6; }

TEST(RadioParams, Validate) {
  EXPECT_NO_THROW(wcdma().validate());
  EXPECT_NO_THROW(RadioPowerParams::lte().validate());
  RadioPowerParams bad = wcdma();
  bad.dch_mw = -1.0;
  EXPECT_THROW(bad.validate(), Error);
  bad = wcdma();
  bad.dch_tail_ms = -5;
  EXPECT_THROW(bad.validate(), Error);
}

TEST(RadioModel, SingleIsolatedTransfer) {
  const RadioPowerParams p = wcdma();
  IntervalSet transfers;
  transfers.add(10'000, 14'000);  // 4 s transfer
  const RadioAccounting acc = account_transfers(transfers, p, kHorizon);
  EXPECT_EQ(acc.promotions, 1);
  EXPECT_EQ(acc.promo_ms, p.promo_idle_ms);
  EXPECT_EQ(acc.active_ms, 4000);
  EXPECT_EQ(acc.tail_dch_ms(), p.dch_tail_ms);
  EXPECT_EQ(acc.tail_fach_ms(), p.fach_tail_ms);
  EXPECT_EQ(acc.radio_on_ms,
            p.promo_idle_ms + 4000 + p.dch_tail_ms + p.fach_tail_ms);
  const double expected =
      joules(p.promo_mw, p.promo_idle_ms) +
      joules(p.dch_mw, 4000 + p.dch_tail_ms) +
      joules(p.fach_mw, p.fach_tail_ms);
  EXPECT_NEAR(acc.energy_j, expected, 1e-9);
  // And it equals the closed-form g function.
  EXPECT_NEAR(acc.energy_j, isolated_activity_energy(4000, p), 1e-9);
}

TEST(RadioModel, TailClippedAtHorizon) {
  const RadioPowerParams p = wcdma();
  IntervalSet transfers;
  // Connected (incl. the 2 s promotion shift) until horizon − 2 s, so
  // only 2 s of DCH tail fit before the accounting window closes.
  transfers.add(kHorizon - 6000, kHorizon - 4000);
  const RadioAccounting acc = account_transfers(transfers, p, kHorizon);
  EXPECT_EQ(acc.tail_dch_ms(), 2000);
  EXPECT_EQ(acc.tail_fach_ms(), 0);
}

TEST(RadioModel, SecondTransferInDchTailNoPromotion) {
  const RadioPowerParams p = wcdma();
  IntervalSet transfers;
  transfers.add(10'000, 12'000);
  // Connected until 12'000 + promo shift 2'000 = 14'000; arrive 2 s
  // later, inside the 5 s DCH tail.
  transfers.add(16'000, 18'000);
  const RadioAccounting acc = account_transfers(transfers, p, kHorizon);
  EXPECT_EQ(acc.promotions, 1);
  EXPECT_EQ(acc.tail_dch_ms(), 2000 + p.dch_tail_ms);  // inter + trailing
}

TEST(RadioModel, SecondTransferInFachTailFachPromotion) {
  const RadioPowerParams p = wcdma();
  IntervalSet transfers;
  transfers.add(10'000, 12'000);  // connected until 14'000
  transfers.add(22'000, 24'000);  // 8 s gap: past DCH tail (5 s), in FACH
  const RadioAccounting acc = account_transfers(transfers, p, kHorizon);
  EXPECT_EQ(acc.promotions, 2);
  EXPECT_EQ(acc.promo_ms, p.promo_idle_ms + p.promo_fach_ms);
  // Inter-transfer tails: full DCH tail + 3 s FACH.
  EXPECT_EQ(acc.tail_dch_ms(), p.dch_tail_ms + p.dch_tail_ms);
  EXPECT_EQ(acc.tail_fach_ms(), 3000 + p.fach_tail_ms);
}

TEST(RadioModel, FarApartTransfersTwoColdPromotions) {
  const RadioPowerParams p = wcdma();
  IntervalSet transfers;
  transfers.add(10'000, 12'000);
  transfers.add(100'000, 102'000);
  const RadioAccounting acc = account_transfers(transfers, p, kHorizon);
  EXPECT_EQ(acc.promotions, 2);
  EXPECT_EQ(acc.promo_ms, 2 * p.promo_idle_ms);
  EXPECT_EQ(acc.tail_dch_ms(), 2 * p.dch_tail_ms);
  EXPECT_EQ(acc.tail_fach_ms(), 2 * p.fach_tail_ms);
}

TEST(RadioModel, OverlappingBusyExtends) {
  const RadioPowerParams p = wcdma();
  // A transfer arriving during the promotion shift of the previous one
  // extends the connected period without another promotion.
  IntervalSet transfers;
  transfers.add(10'000, 12'000);
  transfers.add(13'000, 15'000);  // 13'000 < connected_until (14'000)
  const RadioAccounting acc = account_transfers(transfers, p, kHorizon);
  EXPECT_EQ(acc.promotions, 1);
  EXPECT_EQ(acc.active_ms, 4000);
}

TEST(RadioModel, EmptyTransferSet) {
  const RadioAccounting acc =
      account_transfers(IntervalSet{}, wcdma(), kHorizon);
  EXPECT_EQ(acc.energy_j, 0.0);
  EXPECT_EQ(acc.radio_on_ms, 0);
  EXPECT_EQ(acc.promotions, 0);
}

TEST(RadioModel, TransferBeyondHorizonThrows) {
  IntervalSet transfers;
  transfers.add(kHorizon - 10, kHorizon + 10);
  EXPECT_THROW(account_transfers(transfers, wcdma(), kHorizon), Error);
}

TEST(RadioModel, AllowedSetCutsTail) {
  const RadioPowerParams p = wcdma();
  IntervalSet transfers;
  transfers.add(10'000, 14'000);
  // Connected (incl. the 2 s promotion shift) until 16'000; the switch
  // allows 3 s beyond that, so only 3 s of DCH tail survive.
  IntervalSet allowed;
  allowed.add(10'000, 19'000);
  const RadioAccounting acc =
      account_transfers(transfers, p, kHorizon, &allowed);
  EXPECT_EQ(acc.tail_dch_ms(), 3000);
  EXPECT_EQ(acc.tail_fach_ms(), 0);
}

TEST(RadioModel, AllowedSetForcesColdPromotionAfterCut) {
  const RadioPowerParams p = wcdma();
  IntervalSet transfers;
  transfers.add(10'000, 12'000);  // connected until 14'000
  transfers.add(16'000, 18'000);  // would be in DCH tail...
  IntervalSet allowed;
  allowed.add(10'000, 14'000);  // ...but the switch cut at 14'000
  allowed.add(16'000, 18'000);
  const RadioAccounting acc =
      account_transfers(transfers, p, kHorizon, &allowed);
  EXPECT_EQ(acc.promotions, 2);
  EXPECT_EQ(acc.promo_ms, 2 * p.promo_idle_ms);
  EXPECT_EQ(acc.tail_dch_ms(), 0);
  EXPECT_EQ(acc.tail_fach_ms(), 0);
}

TEST(RadioModel, TransferOutsideAllowedSetThrows) {
  IntervalSet transfers;
  transfers.add(10'000, 12'000);
  IntervalSet allowed;
  allowed.add(50'000, 60'000);
  EXPECT_THROW(
      account_transfers(transfers, wcdma(), kHorizon, &allowed), Error);
}

TEST(RadioModel, PiggybackedCheaperThanIsolated) {
  const RadioPowerParams p = wcdma();
  for (DurationMs d : {0, 500, 5000, 60'000}) {
    EXPECT_LT(piggybacked_activity_energy(d, p),
              isolated_activity_energy(d, p));
  }
  EXPECT_THROW(isolated_activity_energy(-1, p), Error);
  EXPECT_THROW(piggybacked_activity_energy(-1, p), Error);
}

TEST(RadioModel, LteProfileShape) {
  const RadioPowerParams lte = RadioPowerParams::lte();
  // LTE promotes much faster but burns more in the connected state.
  EXPECT_LT(lte.promo_idle_ms, wcdma().promo_idle_ms);
  EXPECT_GT(lte.dch_mw, wcdma().dch_mw);
  IntervalSet transfers;
  transfers.add(10'000, 14'000);
  const RadioAccounting acc = account_transfers(transfers, lte, kHorizon);
  EXPECT_GT(acc.energy_j, 0.0);
}

// Property suite over random transfer sets.
class RadioModelProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  IntervalSet random_transfers(Rng& rng, int count) {
    IntervalSet set;
    for (int i = 0; i < count; ++i) {
      const TimeMs start = rng.uniform_int(0, kHorizon - 20'000);
      set.add(start, start + rng.uniform_int(500, 15'000));
    }
    return set;
  }
};

TEST_P(RadioModelProperty, MoreTrafficNeverCheaper) {
  Rng rng(GetParam());
  const IntervalSet base = random_transfers(rng, 5);
  IntervalSet more = base;
  more.add(random_transfers(rng, 3));
  const RadioPowerParams p = wcdma();
  const double e_base = account_transfers(base, p, kHorizon).energy_j;
  const double e_more = account_transfers(more, p, kHorizon).energy_j;
  EXPECT_GE(e_more, e_base - 1e-9);
}

TEST_P(RadioModelProperty, MergingTransfersNeverCostsMore) {
  Rng rng(GetParam());
  // Spread: k isolated transfers far apart. Merged: the same total
  // active time back to back.
  const int k = 4;
  const DurationMs dur = rng.uniform_int(1000, 8000);
  IntervalSet spread, merged;
  for (int i = 0; i < k; ++i) {
    const TimeMs start = 60'000 * (i + 1);
    spread.add(start, start + dur);
    merged.add(60'000 + i * dur, 60'000 + (i + 1) * dur);
  }
  const RadioPowerParams p = wcdma();
  EXPECT_LE(account_transfers(merged, p, kHorizon).energy_j,
            account_transfers(spread, p, kHorizon).energy_j + 1e-9);
}

TEST_P(RadioModelProperty, AllowedSetNeverIncreasesEnergy) {
  Rng rng(GetParam());
  const IntervalSet transfers = random_transfers(rng, 6);
  IntervalSet allowed = transfers;  // exact cut after every transfer
  const RadioPowerParams p = wcdma();
  const double unrestricted =
      account_transfers(transfers, p, kHorizon).energy_j;
  const double cut =
      account_transfers(transfers, p, kHorizon, &allowed).energy_j;
  EXPECT_LE(cut, unrestricted + 1e-9);
}

TEST_P(RadioModelProperty, EnergyMatchesTimeBreakdown) {
  Rng rng(GetParam());
  const IntervalSet transfers = random_transfers(rng, 6);
  const RadioPowerParams p = wcdma();
  const RadioAccounting acc = account_transfers(transfers, p, kHorizon);
  const double expected =
      joules(p.dch_mw, acc.active_ms + acc.tail_dch_ms()) +
      joules(p.fach_mw, acc.tail_fach_ms()) +
      joules(p.promo_mw, acc.promo_ms);
  EXPECT_NEAR(acc.energy_j, expected, 1e-9);
  EXPECT_EQ(acc.radio_on_ms, acc.active_ms + acc.tail_dch_ms() +
                                 acc.tail_fach_ms() + acc.promo_ms);
  EXPECT_GE(acc.overhead_fraction(), 0.0);
  EXPECT_LE(acc.overhead_fraction(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, RadioModelProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- Generalized N-tier RadioModel ----

TEST(RadioModelGeneralized, FactoryProfilesValidate) {
  EXPECT_NO_THROW(RadioModel::wcdma().validate());
  EXPECT_NO_THROW(RadioModel::lte_cdrx().validate());
  EXPECT_NO_THROW(RadioModel::nr_cdrx().validate());
  EXPECT_NO_THROW(RadioModel::wifi().validate());
  EXPECT_NO_THROW(RadioModel(wcdma()).validate());
}

TEST(RadioModelGeneralized, ValidateRejectsBadModels) {
  RadioModel m = RadioModel::wifi();
  m.active_mw = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(m.validate(), Error);

  m = RadioModel::wifi();
  m.assoc_mw = std::numeric_limits<double>::infinity();
  EXPECT_THROW(m.validate(), Error);

  m = RadioModel::wifi();
  m.assoc_ms = -1;
  EXPECT_THROW(m.validate(), Error);

  m = RadioModel::nr_cdrx();
  m.tails[1].duration_ms = -5;
  EXPECT_THROW(m.validate(), Error);

  m = RadioModel::nr_cdrx();
  m.tails[1].promo_ms = -1;
  EXPECT_THROW(m.validate(), Error);

  m = RadioModel::nr_cdrx();
  m.tails[1].power_mw = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(m.validate(), Error);

  // Non-monotone chains: a tail above the active power, and a tier
  // hotter than its predecessor.
  m = RadioModel::nr_cdrx();
  m.tails[0].power_mw = m.active_mw + 1.0;
  EXPECT_THROW(m.validate(), Error);

  m = RadioModel::nr_cdrx();
  m.tails[2].power_mw = m.tails[1].power_mw + 1.0;
  EXPECT_THROW(m.validate(), Error);

  m = RadioModel::nr_cdrx();
  m.num_tails = kMaxRadioTiers + 1;
  EXPECT_THROW(m.validate(), Error);
}

TEST(RadioModelGeneralized, TwoTailProfileBitIdenticalToLegacyFormula) {
  // The generalized accountant must reproduce the historical two-tail
  // energy expression *bitwise*, not just to a tolerance — this is the
  // contract that keeps every WCDMA golden in the repo unchanged.
  const RadioPowerParams p = wcdma();
  const RadioModel m = RadioModel::wcdma();
  EXPECT_EQ(m.probe_mw(), p.fach_mw);
  EXPECT_EQ(m.total_tail_ms(), p.total_tail_ms());
  for (DurationMs d : {0, 1, 777, 4000, 60'000}) {
    const double legacy =
        joules(p.promo_mw, p.promo_idle_ms) +
        joules(p.dch_mw, d + p.dch_tail_ms) +
        joules(p.fach_mw, p.fach_tail_ms);
    EXPECT_EQ(isolated_activity_energy(d, m), legacy);
    EXPECT_EQ(isolated_activity_energy(d, p), legacy);
  }
  Rng rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    IntervalSet transfers;
    for (int i = 0; i < 6; ++i) {
      const TimeMs start = rng.uniform_int(0, kHorizon - 20'000);
      transfers.add(start, start + rng.uniform_int(500, 15'000));
    }
    const RadioAccounting a = account_transfers(transfers, p, kHorizon);
    const RadioAccounting b = account_transfers(transfers, m, kHorizon);
    EXPECT_EQ(a.energy_j, b.energy_j);
    EXPECT_EQ(a.radio_on_ms, b.radio_on_ms);
    EXPECT_EQ(a.assoc_ms, 0);
    EXPECT_EQ(a.associations, 0);
    EXPECT_EQ(a.tail_tier_ms[2], 0);
    EXPECT_EQ(a.tail_tier_ms[3], 0);
  }
}

TEST(RadioModelGeneralized, WifiColdAttachPaysAssociation) {
  const RadioModel w = RadioModel::wifi();
  IntervalSet transfers;
  transfers.add(10'000, 14'000);
  const RadioAccounting acc = account_transfers(transfers, w, kHorizon);
  EXPECT_EQ(acc.associations, 1);
  EXPECT_EQ(acc.assoc_ms, w.assoc_ms);
  EXPECT_EQ(acc.promotions, 1);
  EXPECT_EQ(acc.promo_ms, w.promo_idle_ms);
  EXPECT_EQ(acc.active_ms, 4000);
  EXPECT_EQ(acc.tail_dch_ms(), w.tails[0].duration_ms);
  EXPECT_EQ(acc.radio_on_ms, w.assoc_ms + w.promo_idle_ms + 4000 +
                                 w.tails[0].duration_ms);
  const double expected = joules(w.active_mw, 4000) +
                          joules(w.tails[0].power_mw,
                                 w.tails[0].duration_ms) +
                          joules(w.promo_mw, w.promo_idle_ms) +
                          joules(w.assoc_mw, w.assoc_ms);
  EXPECT_EQ(acc.energy_j, expected);
  EXPECT_EQ(isolated_activity_energy(4000, w), expected);
}

TEST(RadioModelGeneralized, WifiWarmReuseSkipsAssociation) {
  const RadioModel w = RadioModel::wifi();
  IntervalSet transfers;
  transfers.add(10'000, 12'000);
  // connected until 12'000 + assoc 2'500 + promo 80 = 14'580; arrive
  // 100 ms into the 200 ms PSM tail: no second association.
  transfers.add(14'680, 15'680);
  RadioAccounting acc = account_transfers(transfers, w, kHorizon);
  EXPECT_EQ(acc.associations, 1);
  // Far apart: past the PSM tail, a second cold attach.
  transfers.add(200'000, 201'000);
  acc = account_transfers(transfers, w, kHorizon);
  EXPECT_EQ(acc.associations, 2);
  EXPECT_EQ(acc.assoc_ms, 2 * w.assoc_ms);
}

TEST(RadioModelGeneralized, NrTierPromotionsFollowTheChain) {
  const RadioModel nr = RadioModel::nr_cdrx();
  ASSERT_EQ(nr.num_tails, 3u);
  // One transfer per tier of the inactivity chain, placed by its gap
  // from the previous connected period's end.
  IntervalSet transfers;
  transfers.add(10'000, 11'000);  // cold: promo 120, connected 11'120
  transfers.add(11'170, 12'170);  // gap 50 < 100: tier 0, promo 0
  // connected until 12'170; gap 1'000 lands in tier 1 (100..2'100).
  transfers.add(13'170, 14'170);  // tier 1: promo 5, connected 14'175
  // gap 5'000 lands in tier 2 (2'100..10'100).
  transfers.add(19'175, 20'175);  // tier 2: promo 25
  const RadioAccounting acc = account_transfers(transfers, nr, kHorizon);
  EXPECT_EQ(acc.promo_ms, nr.promo_idle_ms + 0 + nr.tails[1].promo_ms +
                              nr.tails[2].promo_ms);
  // Tier-0 re-entry is free (promo 0), so only three *paid* promotions.
  EXPECT_EQ(acc.promotions, 3);
  EXPECT_EQ(acc.associations, 0);
}

TEST(RadioModelGeneralized, ProbePowerFallsBackToActive) {
  RadioModel m = RadioModel::wifi();
  EXPECT_EQ(m.probe_mw(), m.tails[0].power_mw);
  m.num_tails = 0;
  EXPECT_EQ(m.probe_mw(), m.active_mw);
}

TEST(RadioModelGeneralized, RadioSetValidatesBothInterfaces) {
  RadioSet set;
  EXPECT_NO_THROW(set.validate());
  EXPECT_EQ(&set.model(RadioId::kCellular), &set.cellular);
  EXPECT_EQ(&set.model(RadioId::kWifi), &set.wifi);
  set.wifi.assoc_ms = -1;
  EXPECT_THROW(set.validate(), Error);
}

}  // namespace
}  // namespace netmaster
