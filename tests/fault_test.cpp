// Unit tests for the fault-injection subsystem: plan/injector
// determinism, the per-kind corruption surfaces, and the sanitizer's
// repair guarantees (valid output, honest ledger, clean passthrough).
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/sanitize.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster::fault {
namespace {

UserTrace sample_trace(std::uint64_t seed = 5) {
  return synth::generate_trace(
      synth::make_user(synth::Archetype::kOfficeWorker, 1), 7, seed);
}

bool traces_equal(const UserTrace& a, const UserTrace& b) {
  return a.user == b.user && a.num_days == b.num_days &&
         a.app_names == b.app_names && a.sessions == b.sessions &&
         a.usages == b.usages && a.activities == b.activities;
}

// ---- Plan / taxonomy. ------------------------------------------------

TEST(FaultPlan, KindNamesAreDistinct) {
  std::set<std::string> names;
  for (const FaultKind kind : all_fault_kinds()) {
    names.insert(kind_name(kind));
  }
  EXPECT_EQ(names.size(), kNumFaultKinds);
}

TEST(FaultPlan, BuilderAppendsInOrder) {
  FaultPlan plan;
  plan.seed = 9;
  plan.with(FaultKind::kClockSkew, 0.1).with(FaultKind::kDropRecord, 0.05);
  ASSERT_EQ(plan.specs.size(), 2u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kClockSkew);
  EXPECT_DOUBLE_EQ(plan.specs[1].rate, 0.05);
}

// ---- Injector. -------------------------------------------------------

TEST(Injector, RejectsRatesOutsideUnitInterval) {
  const UserTrace clean = sample_trace();
  FaultPlan plan;
  plan.with(FaultKind::kDropRecord, -0.1);
  EXPECT_THROW(inject_faults(clean, plan), Error);
  plan.specs[0].rate = 1.5;
  EXPECT_THROW(inject_faults(clean, plan), Error);
}

TEST(Injector, ZeroRatePlanIsIdentity) {
  const UserTrace clean = sample_trace();
  FaultPlan plan;
  for (const FaultKind kind : all_fault_kinds()) plan.with(kind, 0.0);
  const InjectionResult out = inject_faults(clean, plan);
  EXPECT_TRUE(traces_equal(out.trace, clean));
  EXPECT_EQ(out.log.total(), 0u);
}

TEST(Injector, SamePlanSameCorruptionBytes) {
  // Reproducibility is the whole point of the declarative plan: the
  // same (trace, plan) must corrupt identically on every run.
  const UserTrace clean = sample_trace();
  FaultPlan plan;
  plan.seed = 1234;
  plan.with(FaultKind::kDropRecord, 0.1)
      .with(FaultKind::kFieldCorruption, 0.2)
      .with(FaultKind::kClockSkew, 0.3);
  const InjectionResult a = inject_faults(clean, plan);
  const InjectionResult b = inject_faults(clean, plan);
  EXPECT_TRUE(traces_equal(a.trace, b.trace));
  EXPECT_EQ(a.log.injected, b.log.injected);
}

TEST(Injector, DifferentSeedsDiverge) {
  const UserTrace clean = sample_trace();
  FaultPlan a, b;
  a.seed = 1;
  b.seed = 2;
  a.with(FaultKind::kDropRecord, 0.2);
  b.with(FaultKind::kDropRecord, 0.2);
  EXPECT_FALSE(traces_equal(inject_faults(clean, a).trace,
                            inject_faults(clean, b).trace));
}

TEST(Injector, EveryKindReportsInjections) {
  // At a healthy rate on a dense trace, every fault kind must actually
  // do something and log it.
  const UserTrace clean = sample_trace();
  for (const FaultKind kind : all_fault_kinds()) {
    FaultPlan plan;
    plan.seed = 77;
    plan.with(kind, 0.5);
    const InjectionResult out = inject_faults(clean, plan);
    EXPECT_GT(out.log.count(kind), 0u) << kind_name(kind);
    EXPECT_EQ(out.log.total(), out.log.count(kind)) << kind_name(kind);
  }
}

TEST(Injector, TruncateDaysAlwaysKeepsOneDay) {
  const UserTrace clean = sample_trace();
  FaultPlan plan;
  plan.with(FaultKind::kTruncateDays, 1.0);
  const InjectionResult out = inject_faults(clean, plan);
  EXPECT_EQ(out.trace.num_days, 1);
  EXPECT_NO_THROW(out.trace.validate());
}

TEST(Injector, CounterResetMakesByteDeltasNegative) {
  const UserTrace clean = sample_trace();
  FaultPlan plan;
  plan.with(FaultKind::kCounterReset, 1.0);
  const InjectionResult out = inject_faults(clean, plan);
  ASSERT_FALSE(out.trace.activities.empty());
  for (const NetworkActivity& a : out.trace.activities) {
    EXPECT_LT(a.bytes_down, 0);
    EXPECT_LT(a.bytes_up, 0);
  }
}

// ---- Sanitizer. ------------------------------------------------------

TEST(Sanitize, ValidTracePassesThroughBitIdentically) {
  const UserTrace clean = sample_trace();
  const SanitizeResult out = sanitize_trace(clean);
  EXPECT_TRUE(out.report.clean());
  EXPECT_DOUBLE_EQ(out.report.quality(), 1.0);
  EXPECT_TRUE(traces_equal(out.trace, clean));
}

TEST(Sanitize, RepairsEveryFaultKindToValidity) {
  // The core guarantee: whatever the injector emits, the sanitizer's
  // output satisfies validate(), and non-trivial corruption leaves a
  // non-clean ledger.
  const UserTrace clean = sample_trace();
  for (const FaultKind kind : all_fault_kinds()) {
    for (const double rate : {0.1, 0.4, 0.9}) {
      FaultPlan plan;
      plan.seed = 31;
      plan.with(kind, rate);
      const InjectionResult injected = inject_faults(clean, plan);
      const SanitizeResult out = sanitize_trace(injected.trace);
      EXPECT_NO_THROW(out.trace.validate())
          << kind_name(kind) << " rate " << rate;
      EXPECT_GE(out.report.quality(), 0.0);
      EXPECT_LE(out.report.quality(), 1.0);
    }
  }
}

TEST(Sanitize, RepairsAllKindsStacked) {
  const UserTrace clean = sample_trace();
  FaultPlan plan;
  plan.seed = 99;
  for (const FaultKind kind : all_fault_kinds()) plan.with(kind, 0.3);
  const InjectionResult injected = inject_faults(clean, plan);
  const SanitizeResult out = sanitize_trace(injected.trace);
  EXPECT_NO_THROW(out.trace.validate());
  EXPECT_FALSE(out.report.clean());
  EXPECT_LT(out.report.quality(), 1.0);
}

TEST(Sanitize, DropsUnknownAppsAndOutOfHorizonEvents) {
  UserTrace t;
  t.user = 1;
  t.num_days = 1;
  t.app_names = {"a"};
  t.usages = {{0, 100, 10},            // fine
              {5, 200, 10},            // unknown app: dropped
              {0, 2 * kMsPerDay, 10},  // past horizon: dropped
              {-1, 300, 10}};          // negative app: dropped
  const SanitizeResult out = sanitize_trace(t);
  EXPECT_EQ(out.trace.usages.size(), 1u);
  EXPECT_EQ(out.report.dropped_events, 3u);
  EXPECT_NO_THROW(out.trace.validate());
}

TEST(Sanitize, ClampsNegativeBytesAndClipsAtHorizon) {
  UserTrace t;
  t.user = 1;
  t.num_days = 1;
  t.app_names = {"a"};
  t.activities = {{0, 100, 50, -500, -2, false, true},
                  {0, kMsPerDay - 10, 100, 5, 5, false, true}};
  const SanitizeResult out = sanitize_trace(t);
  ASSERT_EQ(out.trace.activities.size(), 2u);
  EXPECT_EQ(out.trace.activities[0].bytes_down, 0);
  EXPECT_EQ(out.trace.activities[0].bytes_up, 0);
  EXPECT_EQ(out.trace.activities[1].duration, 10);
  EXPECT_EQ(out.report.clamped_events, 2u);
  EXPECT_NO_THROW(out.trace.validate());
}

TEST(Sanitize, MergesOverlappingSessionsAndDropsStubs) {
  UserTrace t;
  t.user = 1;
  t.num_days = 1;
  t.app_names = {"a"};
  t.sessions = {{100, 500}, {400, 900}, {900, 900}, {2000, 1500}};
  const SanitizeResult out = sanitize_trace(t);
  ASSERT_EQ(out.trace.sessions.size(), 1u);
  EXPECT_EQ(out.trace.sessions[0].begin, 100);
  EXPECT_EQ(out.trace.sessions[0].end, 900);
  EXPECT_EQ(out.report.merged_sessions, 1u);
  EXPECT_EQ(out.report.dropped_events, 2u);  // the two empty stubs
  EXPECT_NO_THROW(out.trace.validate());
}

TEST(Sanitize, ResortsOutOfOrderStreams) {
  UserTrace t;
  t.user = 1;
  t.num_days = 1;
  t.app_names = {"a"};
  t.usages = {{0, 500, 10}, {0, 100, 10}};
  t.activities = {{0, 900, 10, 1, 1, false, true},
                  {0, 200, 10, 1, 1, false, true}};
  const SanitizeResult out = sanitize_trace(t);
  EXPECT_EQ(out.report.resorted_streams, 2u);
  EXPECT_EQ(out.trace.usages.front().time, 100);
  EXPECT_EQ(out.trace.activities.front().start, 200);
  EXPECT_NO_THROW(out.trace.validate());
}

TEST(Sanitize, RepairsNonPositiveDayCount) {
  UserTrace t;
  t.user = 1;
  t.num_days = 0;
  t.app_names = {"a"};
  const SanitizeResult out = sanitize_trace(t);
  EXPECT_EQ(out.trace.num_days, 1);
  EXPECT_TRUE(out.report.day_count_repaired);
  EXPECT_NO_THROW(out.trace.validate());
}

TEST(Sanitize, QualityScoreWeighsDropsOverClamps) {
  SanitizeReport rep;
  rep.total_events = 10;
  rep.dropped_events = 2;
  rep.clamped_events = 2;
  EXPECT_DOUBLE_EQ(rep.quality(), 1.0 - (2.0 + 1.0) / 10.0);
  EXPECT_FALSE(rep.clean());
  SanitizeReport all_lost;
  all_lost.total_events = 4;
  all_lost.dropped_events = 4;
  all_lost.clamped_events = 4;  // degenerate: floor at 0
  EXPECT_DOUBLE_EQ(all_lost.quality(), 0.0);
}

}  // namespace
}  // namespace netmaster::fault
