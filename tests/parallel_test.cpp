// Tests for the parallel_for utility.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"

namespace netmaster {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(int(i)); },
               /*max_threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  auto compute = [](unsigned threads) {
    std::vector<double> out(64);
    parallel_for(out.size(),
                 [&](std::size_t i) { out[i] = static_cast<double>(i * i); },
                 threads);
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
  EXPECT_EQ(compute(2), compute(8));
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, SequentialExceptionPreservesEarlierWork) {
  std::atomic<int> done{0};
  try {
    parallel_for(
        100,
        [&](std::size_t i) {
          if (i == 50) throw std::runtime_error("boom");
          ++done;
        },
        /*max_threads=*/1);
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace netmaster
