// Tests for the parallel_for utility.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "jobs/threads.hpp"
#include "obs/metrics.hpp"

namespace netmaster {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(int(i)); },
               /*max_threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  auto compute = [](unsigned threads) {
    std::vector<double> out(64);
    parallel_for(out.size(),
                 [&](std::size_t i) { out[i] = static_cast<double>(i * i); },
                 threads);
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
  EXPECT_EQ(compute(2), compute(8));
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      ParallelTaskError);
}

TEST(ParallelFor, ThrowingWorkerReportsTaskContext) {
  // The rethrown error must carry which index failed and the original
  // message, so a fleet caller can name the poisoned user.
  try {
    parallel_for(64, [](std::size_t i) {
      if (i == 37) throw std::runtime_error("poisoned trace");
    });
    FAIL() << "expected ParallelTaskError";
  } catch (const ParallelTaskError& e) {
    EXPECT_EQ(e.index(), 37u);
    EXPECT_NE(std::string(e.what()).find("37"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("poisoned trace"),
              std::string::npos);
    ASSERT_TRUE(e.cause());
    EXPECT_THROW(std::rethrow_exception(e.cause()), std::runtime_error);
  }
}

TEST(ParallelFor, LowestFailingIndexWinsAcrossThreads) {
  // With several failing indices spread across workers, the reported
  // failure is the lowest index — deterministic in the input, not in
  // thread scheduling.
  for (unsigned threads : {2u, 4u, 8u}) {
    try {
      parallel_for(
          256,
          [](std::size_t i) {
            if (i % 50 == 13) throw std::runtime_error("boom");
          },
          threads);
      FAIL() << "expected ParallelTaskError";
    } catch (const ParallelTaskError& e) {
      EXPECT_EQ(e.index(), 13u) << "threads=" << threads;
    }
  }
}

TEST(ParallelFor, ForeignThrowablePassesThrough) {
  // Non-std::exception throwables cannot be wrapped with a message but
  // must still reach the caller unchanged.
  EXPECT_THROW(parallel_for(8,
                            [](std::size_t i) {
                              if (i == 3) throw 42;
                            },
                            /*max_threads=*/2),
               int);
}

TEST(ParallelFor, ThrowingTaskStillRecordsTelemetry) {
  // A task that throws still costs wall time; the task counter must see
  // it (the old implementation lost the throwing task's sample, so
  // failure-heavy chaos runs under-reported load).
  obs::Counter& tasks = obs::Registry::global().counter("parallel.tasks");
  const std::uint64_t before = tasks.value();
  try {
    parallel_for(
        100,
        [](std::size_t i) {
          if (i == 50) throw std::runtime_error("boom");
        },
        /*max_threads=*/1);
    FAIL() << "expected exception";
  } catch (const ParallelTaskError&) {
  }
  // Sequential path: indices 0..49 succeeded, index 50 threw — all 51
  // invocations recorded.
  EXPECT_EQ(tasks.value() - before, 51u);
}

TEST(ParallelFor, DefaultMaxThreadsOverrideHook) {
  // The explicit override beats NETMASTER_THREADS / hardware defaults;
  // 0 restores them. This is the knob the thread-matrix tests and the
  // single-threaded CI rerun share with the pool itself.
  const unsigned ambient = default_max_threads();
  set_default_max_threads(3);
  EXPECT_EQ(default_max_threads(), 3u);
  set_default_max_threads(0);
  EXPECT_EQ(default_max_threads(), ambient);
}

TEST(ParallelFor, ResultsIdenticalUnderOverrideMatrix) {
  auto compute = [] {
    std::vector<double> out(128);
    parallel_for(out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 0.75 + 1.0;
    });
    return out;
  };
  std::vector<std::vector<double>> results;
  for (const unsigned threads : {1u, 2u, 8u}) {
    set_default_max_threads(threads);
    results.push_back(compute());
  }
  set_default_max_threads(0);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(ParallelFor, SequentialExceptionPreservesEarlierWork) {
  std::atomic<int> done{0};
  try {
    parallel_for(
        100,
        [&](std::size_t i) {
          if (i == 50) throw std::runtime_error("boom");
          ++done;
        },
        /*max_threads=*/1);
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace netmaster
