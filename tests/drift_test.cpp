// Drift suite (ROADMAP item 5): incremental-miner equivalence with the
// batch miner, drift-detector true/false-positive behaviour over the
// synthetic drift archetypes, the policy-level drift confidence gate,
// and the online re-mine-on-drift adaptation loop.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <vector>

#include "engine/trace_index.hpp"
#include "eval/session.hpp"
#include "mining/drift.hpp"
#include "mining/habits.hpp"
#include "mining/incremental.hpp"
#include "policy/netmaster.hpp"
#include "service/online_sim.hpp"
#include "sim/accounting.hpp"
#include "synth/drift.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster {
namespace {

constexpr synth::Archetype kAllArchetypes[] = {
    synth::Archetype::kOfficeWorker,   synth::Archetype::kStudent,
    synth::Archetype::kNightOwl,       synth::Archetype::kCommuter,
    synth::Archetype::kRetiree,        synth::Archetype::kHeavyMessenger,
    synth::Archetype::kWeekendWarrior, synth::Archetype::kLightUser,
};
constexpr std::uint64_t kSeeds[] = {1, 7, 31};

void expect_models_bitwise_equal(const mining::HabitModel& a,
                                 const mining::HabitModel& b,
                                 const std::string& context) {
  for (const mining::DayKind kind :
       {mining::DayKind::kWeekday, mining::DayKind::kWeekend}) {
    const mining::HourStats& sa = a.stats(kind);
    const mining::HourStats& sb = b.stats(kind);
    ASSERT_EQ(sa.days_observed, sb.days_observed) << context;
    for (int h = 0; h < kHoursPerDay; ++h) {
      // EQ, not NEAR: decay = 0 must reproduce the batch fold bit for
      // bit (same additions in the same order, same final division).
      ASSERT_EQ(sa.pr_active[h], sb.pr_active[h]) << context << " h" << h;
      ASSERT_EQ(sa.pr_net[h], sb.pr_net[h]) << context << " h" << h;
      ASSERT_EQ(sa.mean_intensity[h], sb.mean_intensity[h])
          << context << " h" << h;
      ASSERT_EQ(sa.mean_net_count[h], sb.mean_net_count[h])
          << context << " h" << h;
      ASSERT_EQ(sa.mean_net_bytes[h], sb.mean_net_bytes[h])
          << context << " h" << h;
      ASSERT_EQ(sa.confidence[h], sb.confidence[h]) << context << " h" << h;
    }
  }
  ASSERT_EQ(a.data_quality(), b.data_quality()) << context;
  ASSERT_EQ(a.overall_confidence(), b.overall_confidence()) << context;
}

// ---- Incremental miner: batch equivalence. ---------------------------

TEST(IncrementalMiner, DecayZeroReproducesBatchBitForBit) {
  for (const synth::Archetype arch : kAllArchetypes) {
    for (const std::uint64_t seed : kSeeds) {
      const synth::UserProfile profile = synth::make_user(arch, 1);
      const UserTrace trace = synth::generate_trace(profile, 14, seed);
      const engine::TraceIndex index(trace);

      const mining::HabitModel batch = mining::HabitModel::mine(index);
      mining::IncrementalHabitMiner miner;  // decay = 0
      miner.observe_index(index);
      expect_models_bitwise_equal(
          batch, miner.snapshot(),
          "archetype " + profile.name + " seed " + std::to_string(seed));
    }
  }
}

TEST(IncrementalMiner, WindowedBatchMineMatchesFullMine) {
  const UserTrace trace = synth::generate_trace(
      synth::make_user(synth::Archetype::kStudent, 2), 21, 9);
  const engine::TraceIndex index(trace);
  expect_models_bitwise_equal(mining::HabitModel::mine(index),
                              mining::HabitModel::mine(index, 0, 21),
                              "full window");

  // A strict sub-window equals incremental observation of those days.
  mining::IncrementalHabitMiner miner;
  for (int d = 7; d < 18; ++d) miner.observe_day(d, index);
  expect_models_bitwise_equal(mining::HabitModel::mine(index, 7, 18),
                              miner.snapshot(), "days [7, 18)");
}

TEST(IncrementalMiner, DecayShiftsEstimatesTowardRecentDays) {
  // Office-worker days then night-owl days: a decayed miner's daytime
  // pr_active must fall below the undecayed miner's, and its estimate
  // of late-night activity must exceed it.
  const synth::UserProfile office =
      synth::make_user(synth::Archetype::kOfficeWorker, 1);
  const UserTrace early = synth::generate_trace(office, 14, 3);
  const UserTrace late = synth::generate_trace(
      synth::make_user(synth::Archetype::kNightOwl, 1), 14, 4);
  const engine::TraceIndex early_idx(early);
  const engine::TraceIndex late_idx(late);

  mining::IncrementalHabitMiner plain;
  mining::IncrementalHabitMiner decayed({0.3});
  for (const auto* idx : {&early_idx, &late_idx}) {
    plain.observe_index(*idx);
    decayed.observe_index(*idx);
  }
  ASSERT_EQ(plain.days_observed(), 28);
  EXPECT_LT(decayed.effective_days(mining::DayKind::kWeekday),
            plain.effective_days(mining::DayKind::kWeekday));
  // Hour 23 is the night owl's prime time, hour 10 the office worker's.
  EXPECT_GT(decayed.pr_active(mining::DayKind::kWeekday, 23),
            plain.pr_active(mining::DayKind::kWeekday, 23));
  EXPECT_LT(decayed.pr_active(mining::DayKind::kWeekday, 10),
            plain.pr_active(mining::DayKind::kWeekday, 10));
}

TEST(IncrementalMiner, DuplicateDayFoldsLeaveDecayZeroEstimatesExact) {
  // The streaming daemon promises at-most-once folds; this pins down
  // what a violation would do: a duplicated day doubles the evidence
  // weight but (at decay 0) leaves every estimate bit-identical,
  // because sums and weight scale by exactly the same power of two.
  const UserTrace trace = synth::generate_trace(
      synth::make_user(synth::Archetype::kCommuter, 3), 7, 5);
  const engine::TraceIndex index(trace);
  const auto day = mining::IncrementalHabitMiner::summarize_day(1, index);

  mining::IncrementalHabitMiner once;
  once.observe_summary(day);
  mining::IncrementalHabitMiner twice;
  twice.observe_summary(day);
  twice.observe_summary(day);

  EXPECT_EQ(twice.days_observed(day.kind), 2);
  EXPECT_EQ(twice.effective_days(day.kind), 2.0);
  for (int h = 0; h < kHoursPerDay; ++h) {
    EXPECT_EQ(twice.pr_active(day.kind, h), once.pr_active(day.kind, h))
        << "h" << h;
    EXPECT_EQ(twice.pr_net(day.kind, h), once.pr_net(day.kind, h))
        << "h" << h;
    EXPECT_EQ(twice.mean_intensity(day.kind, h),
              once.mean_intensity(day.kind, h))
        << "h" << h;
  }
}

TEST(IncrementalMiner, OutOfOrderFoldsAgreeAtDecayZero) {
  // Decay-0 counters are plain sums, so fold order only moves rounding
  // in the last ulp — day counts are exact and estimates agree to a
  // tight relative tolerance.
  const UserTrace trace = synth::generate_trace(
      synth::make_user(synth::Archetype::kStudent, 4), 7, 11);
  const engine::TraceIndex index(trace);

  mining::IncrementalHabitMiner forward;
  for (int d = 0; d < 7; ++d) forward.observe_day(d, index);
  mining::IncrementalHabitMiner shuffled;
  for (const int d : {4, 0, 6, 2, 5, 1, 3}) {
    shuffled.observe_day(d, index);
  }

  EXPECT_EQ(shuffled.days_observed(), forward.days_observed());
  for (const mining::DayKind kind :
       {mining::DayKind::kWeekday, mining::DayKind::kWeekend}) {
    EXPECT_EQ(shuffled.effective_days(kind), forward.effective_days(kind));
    for (int h = 0; h < kHoursPerDay; ++h) {
      EXPECT_NEAR(shuffled.pr_active(kind, h), forward.pr_active(kind, h),
                  1e-12)
          << "h" << h;
      EXPECT_NEAR(shuffled.mean_intensity(kind, h),
                  forward.mean_intensity(kind, h), 1e-9)
          << "h" << h;
    }
  }
}

TEST(IncrementalMiner, AdoptCountersCopiesStateAcrossDecayConfigs) {
  const UserTrace trace = synth::generate_trace(
      synth::make_user(synth::Archetype::kHeavyMessenger, 5), 14, 13);
  const engine::TraceIndex index(trace);

  mining::IncrementalHabitMiner source({0.2});
  source.observe_index(index);
  mining::IncrementalHabitMiner sink({0.05});
  sink.observe_day(0, index);  // pre-existing state must be replaced

  sink.adopt_counters(source);
  // The adopted counters are a verbatim copy; only the decay config
  // (future folds) differs.
  EXPECT_EQ(sink.config().decay, 0.05);
  EXPECT_EQ(sink.days_observed(), source.days_observed());
  for (const mining::DayKind kind :
       {mining::DayKind::kWeekday, mining::DayKind::kWeekend}) {
    EXPECT_EQ(sink.effective_days(kind), source.effective_days(kind));
    for (int h = 0; h < kHoursPerDay; ++h) {
      EXPECT_EQ(sink.pr_active(kind, h), source.pr_active(kind, h));
      EXPECT_EQ(sink.pr_net(kind, h), source.pr_net(kind, h));
      EXPECT_EQ(sink.mean_intensity(kind, h),
                source.mean_intensity(kind, h));
    }
  }
}

TEST(IncrementalMiner, RescaleWeightsMovesInertiaNotEstimates) {
  const UserTrace trace = synth::generate_trace(
      synth::make_user(synth::Archetype::kRetiree, 6), 14, 17);
  const engine::TraceIndex index(trace);

  mining::IncrementalHabitMiner miner;
  miner.observe_index(index);
  std::array<double, kHoursPerDay> before{};
  for (int h = 0; h < kHoursPerDay; ++h) {
    before[h] = miner.pr_active(mining::DayKind::kWeekday, h);
  }

  miner.rescale_weights(30.0);
  EXPECT_DOUBLE_EQ(miner.effective_days(mining::DayKind::kWeekday), 30.0);
  EXPECT_DOUBLE_EQ(miner.effective_days(mining::DayKind::kWeekend), 30.0);
  for (int h = 0; h < kHoursPerDay; ++h) {
    // Ratios survive the common rescale up to rounding.
    EXPECT_DOUBLE_EQ(miner.pr_active(mining::DayKind::kWeekday, h),
                     before[h])
        << "h" << h;
  }

  // An empty miner has nothing to rescale: weights stay zero.
  mining::IncrementalHabitMiner empty;
  empty.rescale_weights(30.0);
  EXPECT_EQ(empty.effective_days(mining::DayKind::kWeekday), 0.0);
}

TEST(IncrementalMiner, RejectsInvalidConfig) {
  EXPECT_THROW(mining::IncrementalHabitMiner({1.0}), Error);
  EXPECT_THROW(mining::IncrementalHabitMiner({-0.1}), Error);
  EXPECT_THROW(
      mining::IncrementalHabitMiner(
          {std::numeric_limits<double>::quiet_NaN()}),
      Error);
}

// ---- Single-day regime confidence (the k/(k+1) = 0.5 edge). ----------

TEST(SlotConfidence, SingleDayRegimeStaysBelowDefaultGate) {
  // One day pins p to 0 or 1, so the binomial shrink vanishes and the
  // raw k/(k+1) factor alone would report 0.5 — above the default
  // min_confidence of 0.25 for history that is barely evidence.
  const policy::RobustnessConfig gate;
  EXPECT_LT(mining::slot_confidence(1.0, 1.0), gate.min_confidence);
  EXPECT_LT(mining::slot_confidence(1.0, 0.0), gate.min_confidence);
  // Two clean days already clear it (0.666 * (1 - 0.5·√2⁻¹) ≈ 0.43...
  // at worst p = 0.5).
  EXPECT_GT(mining::slot_confidence(2.0, 0.0), gate.min_confidence);
  // Fractional effective days from a decayed history count as weak.
  EXPECT_LT(mining::slot_confidence(0.8, 1.0),
            mining::slot_confidence(2.0, 1.0));
}

TEST(SlotConfidence, OneDayModelTripsTheRobustnessGate) {
  // End to end: a model mined from one day must not clear the default
  // confidence gate even with min_training_days relaxed.
  const UserTrace trace = synth::generate_trace(
      synth::make_user(synth::Archetype::kHeavyMessenger, 1), 1, 5);
  const mining::HabitModel model = mining::HabitModel::mine(trace);
  ASSERT_EQ(model.training_days(), 1);
  const policy::RobustnessConfig gate;
  EXPECT_LT(model.overall_confidence(), gate.min_confidence);
}

// ---- Synthetic drift archetypes. -------------------------------------

TEST(SynthDrift, NoneKindIsBitIdenticalToStationary) {
  const synth::UserProfile profile =
      synth::make_user(synth::Archetype::kCommuter, 3);
  const UserTrace plain = synth::generate_trace(profile, 21, 11);
  synth::DriftSpec spec;  // kNone
  const UserTrace drifted =
      synth::generate_drifting_trace(profile, spec, 21, 11);
  EXPECT_EQ(plain.sessions.size(), drifted.sessions.size());
  EXPECT_EQ(plain.usages.size(), drifted.usages.size());
  EXPECT_EQ(plain.activities.size(), drifted.activities.size());
  for (std::size_t i = 0; i < plain.sessions.size(); ++i) {
    EXPECT_EQ(plain.sessions[i].begin, drifted.sessions[i].begin);
    EXPECT_EQ(plain.sessions[i].end, drifted.sessions[i].end);
  }
  for (std::size_t i = 0; i < plain.activities.size(); ++i) {
    EXPECT_EQ(plain.activities[i].start, drifted.activities[i].start);
    EXPECT_EQ(plain.activities[i].bytes_down,
              drifted.activities[i].bytes_down);
  }
}

TEST(SynthDrift, AlphaSchedulesMatchTheirKind) {
  synth::DriftSpec spec;
  spec.onset_day = 5;
  spec.max_alpha = 0.8;

  spec.kind = synth::DriftKind::kAbrupt;
  EXPECT_EQ(synth::drift_alpha(spec, 4), 0.0);
  EXPECT_EQ(synth::drift_alpha(spec, 5), 0.8);
  EXPECT_EQ(synth::drift_alpha(spec, 30), 0.8);

  spec.kind = synth::DriftKind::kGradual;
  spec.ramp_days = 4;
  EXPECT_EQ(synth::drift_alpha(spec, 4), 0.0);
  EXPECT_NEAR(synth::drift_alpha(spec, 5), 0.2, 1e-12);
  EXPECT_NEAR(synth::drift_alpha(spec, 7), 0.6, 1e-12);
  EXPECT_EQ(synth::drift_alpha(spec, 9), 0.8);
  EXPECT_EQ(synth::drift_alpha(spec, 60), 0.8);

  spec.kind = synth::DriftKind::kSeasonal;
  spec.period_days = 3;
  EXPECT_EQ(synth::drift_alpha(spec, 4), 0.0);
  EXPECT_EQ(synth::drift_alpha(spec, 5), 0.8);   // first drifted block
  EXPECT_EQ(synth::drift_alpha(spec, 7), 0.8);
  EXPECT_EQ(synth::drift_alpha(spec, 8), 0.0);   // back to base
  EXPECT_EQ(synth::drift_alpha(spec, 11), 0.8);  // drifted again
}

TEST(SynthDrift, BlendMovesIntensityBetweenArchetypes) {
  const synth::UserProfile office =
      synth::make_user(synth::Archetype::kOfficeWorker, 1);
  const synth::UserProfile owl =
      synth::make_user(synth::Archetype::kNightOwl, 1);
  const synth::UserProfile half = synth::blend_profiles(office, owl, 0.5);
  for (int h = 0; h < kHoursPerDay; ++h) {
    EXPECT_NEAR(half.weekday_intensity[h],
                0.5 * (office.weekday_intensity[h] +
                       owl.weekday_intensity[h]),
                1e-12);
  }
  EXPECT_EQ(half.apps.size(), office.apps.size());
  EXPECT_THROW(synth::blend_profiles(office, owl, 1.5), Error);
}

TEST(SynthDrift, SpecValidationRejectsBadKnobs) {
  const synth::UserProfile profile =
      synth::make_user(synth::Archetype::kStudent, 1);
  synth::DriftSpec spec;
  spec.kind = synth::DriftKind::kAbrupt;
  spec.max_alpha = 1.5;
  EXPECT_THROW(synth::generate_drifting_trace(profile, spec, 7, 1), Error);
  spec.max_alpha = 1.0;
  spec.ramp_days = 0;
  EXPECT_THROW(synth::drift_alpha(spec, 3), Error);
}

// ---- Drift detector: true positives. ---------------------------------

mining::DriftDetector seeded_detector(const engine::TraceIndex& train) {
  mining::DriftDetector detector;
  detector.observe_index(train);
  detector.notify_adapted();
  return detector;
}

TEST(DriftDetector, AlarmsWithinDaysOfAnAbruptChange) {
  // Office worker flips to night-owl habits at eval day 0. Detector is
  // seeded with 14 stationary days, then fed drifted days; it must
  // alarm within the first week and localize the onset near day 0.
  eval::ExperimentConfig cfg;
  cfg.train_days = 14;
  cfg.eval_days = 14;
  for (const std::uint64_t seed : kSeeds) {
    cfg.seed = seed;
    synth::DriftSpec spec;
    spec.kind = synth::DriftKind::kAbrupt;
    spec.onset_day = 0;
    const eval::VolunteerTraces traces = eval::make_drifting_traces(
        synth::make_user(synth::Archetype::kOfficeWorker, 1), cfg, spec);

    mining::DriftDetector detector =
        seeded_detector(engine::TraceIndex(traces.training));
    const engine::TraceIndex eval_idx(traces.eval);
    int alarm_after = -1;
    for (int d = 0; d < cfg.eval_days; ++d) {
      detector.observe_day(d, eval_idx);
      if (detector.alarmed()) {
        alarm_after = d;
        break;
      }
    }
    ASSERT_GE(alarm_after, 0) << "no alarm, seed " << seed;
    EXPECT_LE(alarm_after, 7) << "seed " << seed;
    EXPECT_GE(detector.score(), 0.5) << "seed " << seed;
    // Changepoint estimate: at or after the true onset, not far past.
    EXPECT_GE(detector.changepoint_day(), 0) << "seed " << seed;
    EXPECT_LE(detector.changepoint_day(), alarm_after) << "seed " << seed;
  }
}

TEST(DriftDetector, AlarmsOnAGradualShift) {
  eval::ExperimentConfig cfg;
  cfg.train_days = 14;
  cfg.eval_days = 21;
  synth::DriftSpec spec;
  spec.kind = synth::DriftKind::kGradual;
  spec.onset_day = 0;
  spec.ramp_days = 10;
  const eval::VolunteerTraces traces = eval::make_drifting_traces(
      synth::make_user(synth::Archetype::kCommuter, 1), cfg, spec);

  mining::DriftDetector detector =
      seeded_detector(engine::TraceIndex(traces.training));
  detector.observe_index(engine::TraceIndex(traces.eval));
  EXPECT_TRUE(detector.alarmed());
}

TEST(DriftDetector, StaysQuietOnEveryStationaryArchetype) {
  // False-positive check: 14 seeded + 14 monitored stationary days for
  // all 8 archetypes x 3 seeds must never alarm, and the reported
  // score stays low.
  eval::ExperimentConfig cfg;
  cfg.train_days = 14;
  cfg.eval_days = 14;
  for (const synth::Archetype arch : kAllArchetypes) {
    for (const std::uint64_t seed : kSeeds) {
      cfg.seed = seed;
      const eval::VolunteerTraces traces = eval::make_traces(
          synth::make_user(arch, 1), cfg);
      mining::DriftDetector detector =
          seeded_detector(engine::TraceIndex(traces.training));
      detector.observe_index(engine::TraceIndex(traces.eval));
      const std::string context = "archetype " +
                                  std::to_string(static_cast<int>(arch)) +
                                  " seed " + std::to_string(seed);
      EXPECT_FALSE(detector.alarmed())
          << context << " score " << detector.score() << " ph wk "
          << detector.ph_statistic(mining::DayKind::kWeekday) << " ph we "
          << detector.ph_statistic(mining::DayKind::kWeekend);
      EXPECT_LT(detector.score(), 1.0) << context;
    }
  }
}

TEST(DriftDetector, NotifyAdaptedClearsTheAlarm) {
  eval::ExperimentConfig cfg;
  cfg.train_days = 14;
  cfg.eval_days = 14;
  synth::DriftSpec spec;
  spec.kind = synth::DriftKind::kAbrupt;
  spec.onset_day = 0;
  const eval::VolunteerTraces traces = eval::make_drifting_traces(
      synth::make_user(synth::Archetype::kOfficeWorker, 1), cfg, spec);

  mining::DriftDetector detector =
      seeded_detector(engine::TraceIndex(traces.training));
  const engine::TraceIndex eval_idx(traces.eval);
  detector.observe_index(eval_idx);
  ASSERT_TRUE(detector.alarmed());
  detector.notify_adapted();
  EXPECT_FALSE(detector.alarmed());
  EXPECT_EQ(detector.alarm_day(), -1);
  EXPECT_EQ(detector.score(), 0.0);
}

TEST(DriftDetector, RejectsInvalidConfig) {
  mining::DriftConfig bad;
  bad.fast_decay = 0.04;
  bad.slow_decay = 0.30;  // inverted banks
  EXPECT_THROW(mining::DriftDetector{bad}, Error);
  bad = {};
  bad.ph_lambda = 0.0;
  EXPECT_THROW(mining::DriftDetector{bad}, Error);
  bad = {};
  bad.divergence_full_scale = -1.0;
  EXPECT_THROW(mining::DriftDetector{bad}, Error);
  bad = {};
  bad.ph_delta = std::numeric_limits<double>::infinity();
  EXPECT_THROW(mining::DriftDetector{bad}, Error);
  bad = {};
  bad.warmup_days = -1;
  EXPECT_THROW(mining::DriftDetector{bad}, Error);
}

// ---- Policy drift gate. ----------------------------------------------

TEST(PolicyDriftGate, HighDriftForcesTheSafeFallback) {
  eval::ExperimentConfig cfg;
  cfg.train_days = 14;
  cfg.eval_days = 7;
  const eval::VolunteerTraces traces = eval::make_traces(
      synth::make_user(synth::Archetype::kOfficeWorker, 1), cfg);

  // Stationary: normal path, drift score rides the outcome/report.
  policy::NetMasterConfig on_cfg = cfg.netmaster;
  on_cfg.robustness.drift_score = 0.0;
  const policy::NetMasterPolicy calm(traces.training, on_cfg);
  ASSERT_FALSE(calm.degraded());
  const sim::PolicyOutcome calm_out = calm.run(traces.eval);
  EXPECT_EQ(calm_out.drift_score, 0.0);

  // Full drift: the same model's effective confidence hits zero and
  // the policy degrades, with the drift visible in the reason.
  policy::NetMasterConfig drift_cfg = cfg.netmaster;
  drift_cfg.robustness.drift_score = 1.0;
  const policy::NetMasterPolicy drifted(traces.training, drift_cfg);
  EXPECT_TRUE(drifted.degraded());
  EXPECT_NE(drifted.degraded_reason().find("drift"), std::string::npos);
  const sim::PolicyOutcome out = drifted.run(traces.eval);
  EXPECT_EQ(out.path, sim::ExecutionPath::kDegradedFallback);
  EXPECT_EQ(out.drift_score, 1.0);
  const sim::SimReport report =
      sim::account(traces.eval, out, drift_cfg.profit.radio);
  EXPECT_EQ(report.drift_score, 1.0);
  EXPECT_TRUE(report.degraded);
}

TEST(PolicyDriftGate, ZeroDriftLeavesTheScheduleUntouched) {
  // drift_score = 0 must be bitwise inert: identical transfers to a
  // config that predates the knob.
  eval::ExperimentConfig cfg;
  cfg.train_days = 14;
  cfg.eval_days = 7;
  const eval::VolunteerTraces traces = eval::make_traces(
      synth::make_user(synth::Archetype::kStudent, 1), cfg);
  policy::NetMasterConfig zero = cfg.netmaster;
  zero.robustness.drift_score = 0.0;
  zero.robustness.drift_confidence_gain = 123.0;  // inert at score 0
  const sim::PolicyOutcome a =
      policy::NetMasterPolicy(traces.training, cfg.netmaster)
          .run(traces.eval);
  const sim::PolicyOutcome b =
      policy::NetMasterPolicy(traces.training, zero).run(traces.eval);
  ASSERT_EQ(a.transfers.size(), b.transfers.size());
  for (std::size_t i = 0; i < a.transfers.size(); ++i) {
    EXPECT_EQ(a.transfers[i].start, b.transfers[i].start);
    EXPECT_EQ(a.transfers[i].duration, b.transfers[i].duration);
  }
  EXPECT_EQ(a.interrupts, b.interrupts);
}

TEST(PolicyDriftGate, RejectsInvalidKnobs) {
  eval::ExperimentConfig cfg;
  cfg.train_days = 7;
  cfg.eval_days = 3;
  const eval::VolunteerTraces traces = eval::make_traces(
      synth::make_user(synth::Archetype::kLightUser, 1), cfg);
  policy::NetMasterConfig bad = cfg.netmaster;
  bad.robustness.drift_score = 1.5;
  EXPECT_THROW(policy::NetMasterPolicy(traces.training, bad), Error);
  bad = cfg.netmaster;
  bad.robustness.drift_score = -0.1;
  EXPECT_THROW(policy::NetMasterPolicy(traces.training, bad), Error);
  bad = cfg.netmaster;
  bad.robustness.drift_confidence_gain = -1.0;
  EXPECT_THROW(policy::NetMasterPolicy(traces.training, bad), Error);
}

// ---- Online adaptation loop. -----------------------------------------

TEST(OnlineAdaptation, DisabledAdaptationIsBitIdentical) {
  eval::ExperimentConfig cfg;
  cfg.train_days = 14;
  cfg.eval_days = 7;
  const eval::VolunteerTraces traces = eval::make_traces(
      synth::make_user(synth::Archetype::kOfficeWorker, 1), cfg);
  const engine::TraceIndex index(traces.eval);

  const service::OnlineSimResult plain =
      service::run_online(traces.training, index, cfg.netmaster);
  service::AdaptationConfig off;  // enable = false
  const service::OnlineSimResult gated =
      service::run_online(traces.training, index, cfg.netmaster, off);

  ASSERT_EQ(plain.outcome.transfers.size(),
            gated.outcome.transfers.size());
  for (std::size_t i = 0; i < plain.outcome.transfers.size(); ++i) {
    EXPECT_EQ(plain.outcome.transfers[i].start,
              gated.outcome.transfers[i].start);
  }
  EXPECT_EQ(plain.events_processed, gated.events_processed);
  EXPECT_EQ(gated.drift_alarms, 0u);
  EXPECT_EQ(gated.model_refreshes, 0u);
  EXPECT_EQ(gated.final_drift_score, 0.0);
}

TEST(OnlineAdaptation, RefreshesTheModelAfterAbruptDrift) {
  eval::ExperimentConfig cfg;
  cfg.train_days = 14;
  cfg.eval_days = 14;
  synth::DriftSpec spec;
  spec.kind = synth::DriftKind::kAbrupt;
  spec.onset_day = 0;
  const eval::VolunteerTraces traces = eval::make_drifting_traces(
      synth::make_user(synth::Archetype::kOfficeWorker, 1), cfg, spec);
  const engine::TraceIndex index(traces.eval);

  service::AdaptationConfig adapt;
  adapt.enable = true;
  const service::OnlineSimResult result =
      service::run_online(traces.training, index, cfg.netmaster, adapt);

  EXPECT_GE(result.drift_alarms, 1u);
  EXPECT_GE(result.model_refreshes, 1u);
  EXPECT_GE(result.first_alarm_day, 0);
  EXPECT_LE(result.first_alarm_day, 7);
  // Post-adaptation the detector is re-anchored: the final score must
  // not still be screaming.
  EXPECT_LT(result.final_drift_score, 1.0);
}

TEST(OnlineAdaptation, StationaryRunNeverRefreshes) {
  eval::ExperimentConfig cfg;
  cfg.train_days = 14;
  cfg.eval_days = 14;
  for (const std::uint64_t seed : kSeeds) {
    cfg.seed = seed;
    const eval::VolunteerTraces traces = eval::make_traces(
        synth::make_user(synth::Archetype::kStudent, 1), cfg);
    const engine::TraceIndex index(traces.eval);
    service::AdaptationConfig adapt;
    adapt.enable = true;
    const service::OnlineSimResult result =
        service::run_online(traces.training, index, cfg.netmaster, adapt);
    EXPECT_EQ(result.drift_alarms, 0u) << "seed " << seed;
    EXPECT_EQ(result.model_refreshes, 0u) << "seed " << seed;
  }
}

TEST(OnlineAdaptation, RejectsInvalidConfig) {
  eval::ExperimentConfig cfg;
  cfg.train_days = 7;
  cfg.eval_days = 3;
  const eval::VolunteerTraces traces = eval::make_traces(
      synth::make_user(synth::Archetype::kLightUser, 1), cfg);
  const engine::TraceIndex index(traces.eval);
  service::AdaptationConfig bad;
  bad.enable = true;
  bad.window_days = 0;
  EXPECT_THROW(
      service::run_online(traces.training, index, cfg.netmaster, bad),
      Error);
  bad = {};
  bad.enable = true;
  bad.backoff_factor = 0;
  EXPECT_THROW(
      service::run_online(traces.training, index, cfg.netmaster, bad),
      Error);
}

// ---- Calibration diagnostics (always passes; prints the signal). -----

TEST(DriftCalibration, PrintSignalLevels) {
  eval::ExperimentConfig cfg;
  cfg.train_days = 14;
  cfg.eval_days = 14;
  synth::DriftSpec spec;
  spec.kind = synth::DriftKind::kAbrupt;
  spec.onset_day = 0;
  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{7},
                                   std::uint64_t{31}, std::uint64_t{42}}) {
    cfg.seed = seed;
    const eval::VolunteerTraces drifted = eval::make_drifting_traces(
        synth::make_user(synth::Archetype::kOfficeWorker, 1), cfg, spec);
    const eval::VolunteerTraces still = eval::make_traces(
        synth::make_user(synth::Archetype::kOfficeWorker, 1), cfg);

    for (const auto* traces : {&still, &drifted}) {
      mining::DriftDetector detector =
          seeded_detector(engine::TraceIndex(traces->training));
      const engine::TraceIndex eval_idx(traces->eval);
      std::printf("%s seed %llu:\n",
                  traces == &still ? "stationary" : "abrupt",
                  static_cast<unsigned long long>(seed));
      for (int d = 0; d < cfg.eval_days; ++d) {
        detector.observe_day(d, eval_idx);
        const mining::DayKind kind = mining::day_kind(d);
        std::printf(
            "  day %2d kind %d div %.4f mean %.4f ph %.4f score %.3f "
            "alarmed %d\n",
            d, static_cast<int>(kind), detector.divergence(kind),
            detector.mean_divergence(kind), detector.ph_statistic(kind),
            detector.score(), detector.alarmed() ? 1 : 0);
      }
    }
  }
}

}  // namespace
}  // namespace netmaster
