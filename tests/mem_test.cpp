// Tests for the mem subsystem: arena allocation and alignment,
// lifetime tokens, packed bit sets, and the SoA trace columns
// (build/materialize round trip, AoS-compatible views, proxy
// iterators).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "mem/arena.hpp"
#include "mem/soa.hpp"
#include "obs/metrics.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"
#include "trace/trace.hpp"

namespace netmaster::mem {
namespace {

UserTrace fixture() {
  UserTrace t;
  t.user = 11;
  t.num_days = 2;
  t.app_names = {"mail", "maps", ""};  // empty name must survive
  t.sessions = {{seconds(10), seconds(20)}, {seconds(50), seconds(90)}};
  t.usages = {{0, seconds(12), seconds(3)}, {1, seconds(55), seconds(8)}};
  NetworkActivity a;
  a.app = 1;
  a.start = seconds(30);
  a.duration = seconds(2);
  a.bytes_down = 1234;
  a.bytes_up = 56;
  a.user_initiated = true;
  a.deferrable = false;
  NetworkActivity b;
  b.app = 2;
  b.start = seconds(95);
  b.duration = seconds(4);
  b.bytes_down = 7;
  b.bytes_up = 8;
  b.user_initiated = false;
  b.deferrable = true;
  t.activities = {a, b};
  return t;
}

TEST(Arena, AlignsAndTracksUsage) {
  Arena arena(128);  // tiny chunks force growth
  const std::span<char> c = arena.alloc_array<char>(3);
  ASSERT_EQ(c.size(), 3u);
  const std::span<std::int64_t> w = arena.alloc_array<std::int64_t>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % alignof(std::int64_t),
            0u);
  EXPECT_GE(arena.bytes_used(), 3u + 4 * sizeof(std::int64_t));
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());

  // Many small allocations spill into fresh chunks.
  for (int i = 0; i < 100; ++i) arena.alloc_array<std::int64_t>(4);
  EXPECT_GT(arena.chunk_count(), 1u);

  // Oversize request gets a dedicated, still-aligned chunk.
  const std::span<double> big = arena.alloc_array<double>(1000);
  EXPECT_EQ(big.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big.data()) % alignof(double),
            0u);
}

TEST(Arena, ZeroedAndCopiedArrays) {
  Arena arena;
  const std::span<int> z = arena.alloc_zeroed<int>(17);
  for (const int v : z) EXPECT_EQ(v, 0);
  const std::vector<std::uint32_t> src = {5, 6, 7};
  const std::span<const std::uint32_t> copy =
      arena.copy_array<std::uint32_t>(src);
  ASSERT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy[0], 5u);
  EXPECT_EQ(copy[2], 7u);
  EXPECT_TRUE(arena.alloc_array<int>(0).empty());
}

TEST(Arena, ResetBumpsGenerationAndReleasesMemory) {
  Arena arena;
  arena.alloc_array<std::int64_t>(100);
  const std::uint64_t gen = arena.generation();
  EXPECT_GT(arena.bytes_used(), 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_GT(arena.generation(), gen);
}

TEST(Arena, ReportsBytesToObsRegistry) {
  obs::Counter& bytes =
      obs::Registry::global().counter("mem.arena.bytes");
  const std::uint64_t before = bytes.value();
  Arena arena;
  arena.alloc_array<std::int64_t>(10);
  EXPECT_GT(bytes.value(), before);
}

TEST(Lifetime, HandlesFollowOwnerRetirement) {
  Lifetime owner;
  const LifetimeHandle handle = owner.handle();
  EXPECT_TRUE(owner.alive());
  EXPECT_TRUE(handle.alive());
  owner.retire();
  EXPECT_FALSE(owner.alive());
  EXPECT_FALSE(handle.alive());
  owner.retire();  // idempotent
  EXPECT_FALSE(handle.alive());
}

TEST(Lifetime, MoveTransfersGuardAndDestructionRetires) {
  LifetimeHandle handle;
  EXPECT_FALSE(handle.alive());  // default handle is dead
  {
    Lifetime owner;
    handle = owner.handle();
    Lifetime stolen = std::move(owner);
    EXPECT_FALSE(owner.alive());   // moved-from guards nothing
    EXPECT_TRUE(handle.alive());   // the new owner still guards it
    EXPECT_TRUE(stolen.alive());
  }
  EXPECT_FALSE(handle.alive());  // owner destroyed
  EXPECT_TRUE(Lifetime::immortal().alive());
}

TEST(BitSpan, SetAndTestAcrossWordBoundaries) {
  Arena arena;
  auto [bits, words] = BitSpan::build(130, arena);
  EXPECT_EQ(bits.size(), 130u);
  for (const std::size_t i : {std::size_t{0}, std::size_t{63},
                              std::size_t{64}, std::size_t{129}}) {
    EXPECT_FALSE(bits.test(i));
    BitSpan::set(words, i);
    EXPECT_TRUE(bits.test(i));
  }
  EXPECT_FALSE(bits.test(1));
  EXPECT_FALSE(bits.test(128));
}

TEST(SoaColumns, BuildMaterializeRoundTripsFixture) {
  const UserTrace t = fixture();
  Arena arena;
  const TraceColumns columns = TraceColumns::build(t, arena);
  EXPECT_EQ(columns.user, t.user);
  EXPECT_EQ(columns.num_days, t.num_days);
  const UserTrace back = columns.materialize();
  EXPECT_EQ(back.user, t.user);
  EXPECT_EQ(back.num_days, t.num_days);
  EXPECT_EQ(back.app_names, t.app_names);
  EXPECT_EQ(back.sessions, t.sessions);
  EXPECT_EQ(back.usages, t.usages);
  EXPECT_EQ(back.activities, t.activities);
}

TEST(SoaColumns, BuildMaterializeRoundTripsSynthTraces) {
  for (const std::uint64_t seed : {2u, 19u}) {
    for (int arch = 0; arch < 3; ++arch) {
      const UserTrace t = synth::generate_trace(
          synth::make_user(static_cast<synth::Archetype>(arch), 1), 7,
          seed);
      Arena arena;
      const UserTrace back = TraceColumns::build(t, arena).materialize();
      EXPECT_EQ(back.sessions, t.sessions);
      EXPECT_EQ(back.usages, t.usages);
      EXPECT_EQ(back.activities, t.activities);
      EXPECT_EQ(back.app_names, t.app_names);
    }
  }
}

TEST(SoaColumns, ViewsMatchAosAccess) {
  const UserTrace t = fixture();
  Arena arena;
  const TraceColumns columns = TraceColumns::build(t, arena);

  ASSERT_EQ(columns.sessions.size(), t.sessions.size());
  for (std::size_t i = 0; i < t.sessions.size(); ++i) {
    EXPECT_EQ(columns.sessions[i], t.sessions[i]);
    EXPECT_EQ(columns.sessions.begin_at(i), t.sessions[i].begin);
    EXPECT_EQ(columns.sessions.end_at(i), t.sessions[i].end);
  }
  ASSERT_EQ(columns.activities.size(), t.activities.size());
  for (std::size_t i = 0; i < t.activities.size(); ++i) {
    EXPECT_EQ(columns.activities[i], t.activities[i]);
    EXPECT_EQ(columns.activities.total_bytes_at(i),
              t.activities[i].total_bytes());
    EXPECT_EQ(columns.activities.user_initiated_at(i),
              t.activities[i].user_initiated);
    EXPECT_EQ(columns.activities.deferrable_at(i),
              t.activities[i].deferrable);
  }
  ASSERT_EQ(columns.usages.size(), t.usages.size());
  for (std::size_t i = 0; i < t.usages.size(); ++i) {
    EXPECT_EQ(columns.usages[i], t.usages[i]);
  }
  ASSERT_EQ(columns.app_names.size(), t.app_names.size());
  for (std::size_t i = 0; i < t.app_names.size(); ++i) {
    EXPECT_EQ(columns.app_names.name(i), t.app_names[i]);
  }
}

TEST(SoaColumns, ProxyIteratorsSupportCursorLoops) {
  const UserTrace t = fixture();
  Arena arena;
  const TraceColumns columns = TraceColumns::build(t, arena);

  // Cursor-style loop with arrow access, as the batch policies use.
  auto it = columns.sessions.begin();
  ASSERT_NE(it, columns.sessions.end());
  EXPECT_EQ(it->begin, t.sessions[0].begin);
  ++it;
  EXPECT_EQ(it->end, t.sessions[1].end);
  ++it;
  EXPECT_EQ(it, columns.sessions.end());

  // Range-for materialises records.
  std::size_t i = 0;
  for (const NetworkActivity act : columns.activities) {
    EXPECT_EQ(act, t.activities[i++]);
  }
  EXPECT_EQ(i, t.activities.size());

  // Random access arithmetic.
  EXPECT_EQ(columns.sessions.end() - columns.sessions.begin(),
            static_cast<std::ptrdiff_t>(t.sessions.size()));
  EXPECT_EQ((columns.sessions.begin() + 1)->begin, t.sessions[1].begin);
}

TEST(SoaColumns, EmptyTraceBuilds) {
  UserTrace t;
  t.user = 3;
  t.num_days = 0;
  Arena arena;
  const TraceColumns columns = TraceColumns::build(t, arena);
  EXPECT_TRUE(columns.sessions.empty());
  EXPECT_TRUE(columns.activities.empty());
  EXPECT_TRUE(columns.usages.empty());
  EXPECT_EQ(columns.app_names.size(), 0u);
  const UserTrace back = columns.materialize();
  EXPECT_EQ(back.user, 3);
  EXPECT_TRUE(back.sessions.empty());
}

}  // namespace
}  // namespace netmaster::mem
