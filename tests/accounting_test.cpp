// Tests for the accounting layer (PolicyOutcome -> SimReport).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/accounting.hpp"

namespace netmaster::sim {
namespace {

UserTrace fixture() {
  UserTrace t;
  t.user = 1;
  t.num_days = 1;
  t.app_names = {"a"};
  t.sessions = {{seconds(50), seconds(80)}};
  t.usages = {{0, seconds(55), seconds(5)}, {0, seconds(70), seconds(5)}};
  NetworkActivity n1;
  n1.app = 0;
  n1.start = seconds(10);
  n1.duration = seconds(4);
  n1.bytes_down = 8000;
  n1.bytes_up = 2000;
  n1.deferrable = true;
  NetworkActivity n2 = n1;
  n2.start = seconds(60);
  n2.bytes_down = 4000;
  n2.bytes_up = 0;
  n2.user_initiated = true;
  n2.deferrable = false;
  t.activities = {n1, n2};
  return t;
}

PolicyOutcome in_place_outcome(const UserTrace& t) {
  PolicyOutcome o;
  o.policy_name = "test";
  for (std::size_t i = 0; i < t.activities.size(); ++i) {
    o.transfers.push_back(
        {i, t.activities[i].start, t.activities[i].duration});
  }
  return o;
}

TEST(Accounting, BasicMetrics) {
  const UserTrace t = fixture();
  const SimReport r =
      account(t, in_place_outcome(t), RadioPowerParams::wcdma());
  EXPECT_EQ(r.policy_name, "test");
  EXPECT_EQ(r.bytes_down, 12'000);
  EXPECT_EQ(r.bytes_up, 2000);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_GT(r.radio_on_ms, 0);
  EXPECT_EQ(r.total_usages, 2u);
  EXPECT_EQ(r.screen_on_ms, seconds(30));
  EXPECT_EQ(r.horizon_ms, kMsPerDay);
  // Two isolated transfers: two promotions.
  EXPECT_EQ(r.radio.promotions, 2);
  // Peak rates from single activities: n1 down 8kB/4s = 2 kB/s.
  EXPECT_DOUBLE_EQ(r.peak_down_rate_kbps, 2.0);
  EXPECT_DOUBLE_EQ(r.peak_up_rate_kbps, 0.5);
  // Avg rate = bytes / radio-on seconds.
  EXPECT_NEAR(r.avg_down_rate_kbps,
              12.0 / to_seconds(r.radio_on_ms), 1e-9);
}

TEST(Accounting, MissingTransferThrows) {
  const UserTrace t = fixture();
  PolicyOutcome o = in_place_outcome(t);
  o.transfers.pop_back();
  EXPECT_THROW(account(t, o, RadioPowerParams::wcdma()), Error);
}

TEST(Accounting, DuplicateTransferThrows) {
  const UserTrace t = fixture();
  PolicyOutcome o = in_place_outcome(t);
  o.transfers.back().activity_index = 0;
  EXPECT_THROW(account(t, o, RadioPowerParams::wcdma()), Error);
}

TEST(Accounting, TransferBeyondHorizonThrows) {
  const UserTrace t = fixture();
  PolicyOutcome o = in_place_outcome(t);
  o.transfers.back().start = t.trace_end() - 1000;
  EXPECT_THROW(account(t, o, RadioPowerParams::wcdma()), Error);
}

TEST(Accounting, UnknownActivityIndexThrows) {
  const UserTrace t = fixture();
  PolicyOutcome o = in_place_outcome(t);
  o.transfers.back().activity_index = 99;
  EXPECT_THROW(account(t, o, RadioPowerParams::wcdma()), Error);
}

TEST(Accounting, BlockedWindowsCountAffectedUsages) {
  const UserTrace t = fixture();
  PolicyOutcome o = in_place_outcome(t);
  o.blocked.add(seconds(54), seconds(56));  // covers the first usage
  const SimReport r = account(t, o, RadioPowerParams::wcdma());
  EXPECT_EQ(r.affected_usages, 1u);
  EXPECT_DOUBLE_EQ(r.affected_fraction, 0.5);
}

TEST(Accounting, InterruptsAddToAffectedFraction) {
  const UserTrace t = fixture();
  PolicyOutcome o = in_place_outcome(t);
  o.interrupts = 1;
  const SimReport r = account(t, o, RadioPowerParams::wcdma());
  EXPECT_DOUBLE_EQ(r.affected_fraction, 0.5);
  EXPECT_EQ(r.interrupts, 1u);
}

TEST(Accounting, DutyWakesChargedAtFachPower) {
  const UserTrace t = fixture();
  PolicyOutcome quiet = in_place_outcome(t);
  const SimReport base = account(t, quiet, RadioPowerParams::wcdma());

  PolicyOutcome with_wakes = in_place_outcome(t);
  with_wakes.wakes.push_back({seconds(200), 2000, false});
  const SimReport r = account(t, with_wakes, RadioPowerParams::wcdma());
  EXPECT_EQ(r.wake_count, 1u);
  const double expected = 460.0 * 2000 * 1e-6;
  EXPECT_NEAR(r.duty_energy_j, expected, 1e-9);
  EXPECT_NEAR(r.energy_j, base.energy_j + expected, 1e-9);
  EXPECT_EQ(r.radio_on_ms, base.radio_on_ms + 2000);
}

TEST(Accounting, WakeOverlappingTransferNotDoubleCharged) {
  const UserTrace t = fixture();
  PolicyOutcome o = in_place_outcome(t);
  // Probe entirely inside the first transfer: zero extra energy.
  o.wakes.push_back({seconds(11), 2000, true});
  const SimReport r = account(t, o, RadioPowerParams::wcdma());
  EXPECT_DOUBLE_EQ(r.duty_energy_j, 0.0);
}

TEST(Accounting, RadioAllowedCutsEnergy) {
  const UserTrace t = fixture();
  PolicyOutcome stock = in_place_outcome(t);
  const SimReport full = account(t, stock, RadioPowerParams::wcdma());

  PolicyOutcome switched = in_place_outcome(t);
  switched.radio_allowed = IntervalSet{};  // transfers only, no tails
  const SimReport cut = account(t, switched, RadioPowerParams::wcdma());
  EXPECT_LT(cut.energy_j, full.energy_j);
  EXPECT_LT(cut.radio_on_ms, full.radio_on_ms);
}

TEST(Accounting, MeanDeferralLatency) {
  const UserTrace t = fixture();
  PolicyOutcome o = in_place_outcome(t);
  o.deferral_latency_s = {10.0, 30.0};
  const SimReport r = account(t, o, RadioPowerParams::wcdma());
  EXPECT_EQ(r.deferred_count, 2u);
  EXPECT_DOUBLE_EQ(r.mean_deferral_latency_s, 20.0);
}

// ---- Multi-radio accountant (RadioSet overload) ----

TEST(Accounting, RadioSetAllCellularBitIdentical) {
  // Outcomes with no Wi-Fi transfers must reproduce the single-radio
  // report bit for bit through the RadioSet overload — this is what
  // lets the fleet layer route every run through one accountant.
  const UserTrace t = fixture();
  PolicyOutcome o = in_place_outcome(t);
  o.wakes.push_back({seconds(200), 2000, false});
  o.deferral_latency_s = {10.0};
  RadioSet radios;  // wcdma cellular + wifi defaults
  const SimReport single = account(t, o, RadioModel::wcdma());
  const SimReport multi = account(t, o, radios);
  EXPECT_EQ(multi.energy_j, single.energy_j);
  EXPECT_EQ(multi.transfer_energy_j, single.transfer_energy_j);
  EXPECT_EQ(multi.duty_energy_j, single.duty_energy_j);
  EXPECT_EQ(multi.radio_on_ms, single.radio_on_ms);
  EXPECT_EQ(multi.radio.energy_j, single.radio.energy_j);
  EXPECT_DOUBLE_EQ(multi.wifi_energy_j, 0.0);
  EXPECT_EQ(multi.wifi_on_ms, 0);
  EXPECT_EQ(multi.wifi_transfer_count, 0u);
  EXPECT_EQ(multi.wifi.associations, 0);
}

TEST(Accounting, WifiTransfersPartitionedOntoOwnMachine) {
  const UserTrace t = fixture();
  PolicyOutcome o = in_place_outcome(t);
  o.transfers[0].radio = RadioId::kWifi;
  RadioSet radios;
  const SimReport r = account(t, o, radios);
  EXPECT_EQ(r.wifi_transfer_count, 1u);
  EXPECT_GT(r.wifi_energy_j, 0.0);
  EXPECT_GT(r.wifi_on_ms, 0);
  EXPECT_EQ(r.wifi.associations, 1);
  // One isolated cellular transfer remains: a single promotion.
  EXPECT_EQ(r.radio.promotions, 1);
  // The two interfaces sum into the headline figures.
  EXPECT_DOUBLE_EQ(r.transfer_energy_j,
                   r.radio.energy_j + r.wifi_energy_j);
  EXPECT_EQ(r.radio_on_ms, r.radio.radio_on_ms + r.wifi_on_ms);
  // Bytes are radio-agnostic.
  EXPECT_EQ(r.bytes_down, 12'000);
}

TEST(Accounting, WifiNotBehindCellularDataSwitch) {
  // A data switch that blocks everything outside the transfer windows
  // cuts cellular tails but leaves the Wi-Fi machine free-running: the
  // AP association is not behind `svc data disable`.
  const UserTrace t = fixture();
  PolicyOutcome o = in_place_outcome(t);
  o.transfers[0].radio = RadioId::kWifi;
  const RadioSet radios;
  const SimReport free_running = account(t, o, radios);
  o.radio_allowed = IntervalSet{};
  for (const ExecutedTransfer& tr : o.transfers) {
    if (tr.radio == RadioId::kCellular) {
      o.radio_allowed->add(tr.start, tr.start + tr.duration);
    }
  }
  const SimReport switched = account(t, o, radios);
  EXPECT_EQ(switched.wifi_energy_j, free_running.wifi_energy_j);
  EXPECT_LT(switched.radio.energy_j, free_running.radio.energy_j);
}

TEST(Accounting, SingleRadioOverloadRejectsWifiTransfers) {
  const UserTrace t = fixture();
  PolicyOutcome o = in_place_outcome(t);
  o.transfers[0].radio = RadioId::kWifi;
  EXPECT_THROW(account(t, o, RadioModel::wcdma()), Error);
}

TEST(Accounting, EmptyTrace) {
  UserTrace t;
  t.user = 1;
  t.num_days = 1;
  t.app_names = {"a"};
  PolicyOutcome o;
  o.policy_name = "empty";
  const SimReport r = account(t, o, RadioPowerParams::wcdma());
  EXPECT_DOUBLE_EQ(r.energy_j, 0.0);
  EXPECT_EQ(r.radio_on_ms, 0);
  EXPECT_DOUBLE_EQ(r.affected_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.avg_down_rate_kbps, 0.0);
}

}  // namespace
}  // namespace netmaster::sim
