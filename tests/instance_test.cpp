// Tests for the profit model and scheduling-instance builder.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mining/habits.hpp"
#include "sched/instance.hpp"

namespace netmaster::sched {
namespace {

/// A predictor mined from a trace with weekday usage at hours 8 and 18
/// every day (Pr = 1 there, 0 elsewhere).
mining::SlotPredictor make_predictor() {
  UserTrace t;
  t.user = 1;
  t.num_days = 7;
  t.app_names = {"a"};
  for (int day = 0; day < 7; ++day) {
    for (int hour : {8, 18}) {
      const TimeMs at = hour_start(day, hour) + kMsPerMinute;
      t.sessions.push_back({at, at + 5000});
      t.usages.push_back({0, at, 1000});
    }
  }
  return mining::SlotPredictor(mining::HabitModel::mine(t),
                               mining::PredictorConfig{});
}

NetworkActivity activity(TimeMs start, DurationMs dur = 2000,
                         std::int64_t bytes = 1000) {
  NetworkActivity n;
  n.app = 0;
  n.start = start;
  n.duration = dur;
  n.bytes_down = bytes;
  n.deferrable = true;
  return n;
}

TEST(ProfitModel, EnergySavingPositive) {
  const ProfitConfig cfg;
  const NetworkActivity n = activity(1000);
  EXPECT_GT(energy_saving_j(n, cfg), 0.0);
  // Longer transfers save at most the same overhead (tails are fixed).
  const NetworkActivity longer = activity(1000, 60'000);
  EXPECT_NEAR(energy_saving_j(n, cfg), energy_saving_j(longer, cfg),
              1e-9);
}

TEST(ProfitModel, PenaltyGrowsWithWindowAndProbability) {
  const ProfitConfig cfg;
  const mining::SlotPredictor pred = make_predictor();
  // Deferral across a quiet stretch (hours 2 -> 4): Pr = 0 everywhere.
  const double quiet = deferral_penalty_j(hour_start(0, 2),
                                          hour_start(0, 4), pred, cfg);
  EXPECT_DOUBLE_EQ(quiet, 0.0);
  // Deferral across the hour-8 active slot picks up probability mass.
  const double busy = deferral_penalty_j(hour_start(0, 7),
                                         hour_start(0, 10), pred, cfg);
  EXPECT_GT(busy, 0.0);
  // Widening the window can only grow the penalty.
  const double wider = deferral_penalty_j(hour_start(0, 5),
                                          hour_start(0, 12), pred, cfg);
  EXPECT_GT(wider, busy);
  // The penalty is symmetric in direction (prefetch windows charge the
  // same way).
  EXPECT_DOUBLE_EQ(deferral_penalty_j(hour_start(0, 10), hour_start(0, 7),
                                      pred, cfg),
                   busy);
}

TEST(ProfitModel, SlotCapacityEq5) {
  ProfitConfig cfg;
  cfg.bandwidth_kbps = 25.0;
  // A 1-hour slot: 25 kB/s * 3600 s = 90 MB.
  EXPECT_EQ(slot_capacity_bytes({0, kMsPerHour}, cfg), 90'000'000);
  cfg.bandwidth_kbps = 0.0;
  EXPECT_THROW(slot_capacity_bytes({0, kMsPerHour}, cfg), Error);
}

TEST(ProfitModel, AssignmentAnchor) {
  const Interval slot{1000, 2000};
  EXPECT_EQ(assignment_anchor(slot, 5000), 2000);  // preceding slot
  EXPECT_EQ(assignment_anchor(slot, 500), 1000);   // following slot
  EXPECT_EQ(assignment_anchor(slot, 1500), 1500);  // inside
}

TEST(BuildInstance, MapsItemsToAdjacentSlots) {
  const mining::SlotPredictor pred = make_predictor();
  const ProfitConfig cfg;
  const std::vector<Interval> slots = {
      {hour_start(0, 8), hour_start(0, 9)},
      {hour_start(0, 18), hour_start(0, 19)},
  };
  const std::vector<NetworkActivity> pending = {
      activity(hour_start(0, 3)),    // before first slot
      activity(hour_start(0, 12)),   // between slots
      activity(hour_start(0, 22)),   // after last slot
  };
  const Instance inst = build_instance(slots, pending, pred, cfg);
  ASSERT_EQ(inst.items.size(), 3u);
  ASSERT_EQ(inst.slots.size(), 2u);

  EXPECT_EQ(inst.items[0].prev_slot, -1);
  EXPECT_EQ(inst.items[0].next_slot, 0);
  EXPECT_EQ(inst.items[1].prev_slot, 0);
  EXPECT_EQ(inst.items[1].next_slot, 1);
  EXPECT_EQ(inst.items[2].prev_slot, 1);
  EXPECT_EQ(inst.items[2].next_slot, -1);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(inst.item_activity[i], i);
    EXPECT_EQ(inst.items[i].weight, pending[i].total_bytes());
  }
  EXPECT_TRUE(inst.unschedulable.empty());
}

TEST(BuildInstance, ExcludesInSlotActivities) {
  const mining::SlotPredictor pred = make_predictor();
  const std::vector<Interval> slots = {
      {hour_start(0, 8), hour_start(0, 9)}};
  const std::vector<NetworkActivity> pending = {
      activity(hour_start(0, 8) + kMsPerMinute)};  // inside the slot
  const Instance inst = build_instance(slots, pending, pred, {});
  EXPECT_TRUE(inst.items.empty());
  EXPECT_TRUE(inst.unschedulable.empty());
}

TEST(BuildInstance, NoSlotsMeansUnschedulable) {
  const mining::SlotPredictor pred = make_predictor();
  const std::vector<NetworkActivity> pending = {activity(1000)};
  const Instance inst = build_instance({}, pending, pred, {});
  EXPECT_TRUE(inst.items.empty());
  ASSERT_EQ(inst.unschedulable.size(), 1u);
  EXPECT_EQ(inst.unschedulable[0], 0u);
}

TEST(BuildInstance, RejectsNonDeferrable) {
  const mining::SlotPredictor pred = make_predictor();
  NetworkActivity n = activity(1000);
  n.deferrable = false;
  EXPECT_THROW(
      build_instance({}, std::vector<NetworkActivity>{n}, pred, {}),
      Error);
}

TEST(BuildInstance, RejectsOverlappingSlots) {
  const mining::SlotPredictor pred = make_predictor();
  const std::vector<Interval> slots = {{0, 2000}, {1000, 3000}};
  EXPECT_THROW(build_instance(slots, {}, pred, {}), Error);
}

TEST(BuildInstance, ProfitReflectsDistance) {
  // An activity just before a slot has a smaller penalty than one far
  // before it (same ΔE), so its profit is at least as large.
  const mining::SlotPredictor pred = make_predictor();
  const std::vector<Interval> slots = {
      {hour_start(0, 18), hour_start(0, 19)}};
  const std::vector<NetworkActivity> near = {
      activity(hour_start(0, 17) + 50 * kMsPerMinute)};
  const std::vector<NetworkActivity> far = {activity(hour_start(0, 9))};
  const Instance inst_near = build_instance(slots, near, pred, {});
  const Instance inst_far = build_instance(slots, far, pred, {});
  EXPECT_GE(inst_near.items[0].profit, inst_far.items[0].profit);
}

}  // namespace
}  // namespace netmaster::sched
