// Tests for the profit model and scheduling-instance builder.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mining/habits.hpp"
#include "sched/instance.hpp"

namespace netmaster::sched {
namespace {

/// A predictor mined from a trace with weekday usage at hours 8 and 18
/// every day (Pr = 1 there, 0 elsewhere).
mining::SlotPredictor make_predictor() {
  UserTrace t;
  t.user = 1;
  t.num_days = 7;
  t.app_names = {"a"};
  for (int day = 0; day < 7; ++day) {
    for (int hour : {8, 18}) {
      const TimeMs at = hour_start(day, hour) + kMsPerMinute;
      t.sessions.push_back({at, at + 5000});
      t.usages.push_back({0, at, 1000});
    }
  }
  return mining::SlotPredictor(mining::HabitModel::mine(t),
                               mining::PredictorConfig{});
}

NetworkActivity activity(TimeMs start, DurationMs dur = 2000,
                         std::int64_t bytes = 1000) {
  NetworkActivity n;
  n.app = 0;
  n.start = start;
  n.duration = dur;
  n.bytes_down = bytes;
  n.deferrable = true;
  return n;
}

TEST(ProfitModel, EnergySavingPositive) {
  const ProfitConfig cfg;
  const NetworkActivity n = activity(1000);
  EXPECT_GT(energy_saving_j(n, cfg), 0.0);
  // Longer transfers save at most the same overhead (tails are fixed).
  const NetworkActivity longer = activity(1000, 60'000);
  EXPECT_NEAR(energy_saving_j(n, cfg), energy_saving_j(longer, cfg),
              1e-9);
}

TEST(ProfitModel, PenaltyGrowsWithWindowAndProbability) {
  const ProfitConfig cfg;
  const mining::SlotPredictor pred = make_predictor();
  // Deferral across a quiet stretch (hours 2 -> 4): Pr = 0 everywhere.
  const double quiet = deferral_penalty_j(hour_start(0, 2),
                                          hour_start(0, 4), pred, cfg);
  EXPECT_DOUBLE_EQ(quiet, 0.0);
  // Deferral across the hour-8 active slot picks up probability mass.
  const double busy = deferral_penalty_j(hour_start(0, 7),
                                         hour_start(0, 10), pred, cfg);
  EXPECT_GT(busy, 0.0);
  // Widening the window can only grow the penalty.
  const double wider = deferral_penalty_j(hour_start(0, 5),
                                          hour_start(0, 12), pred, cfg);
  EXPECT_GT(wider, busy);
  // The penalty is symmetric in direction (prefetch windows charge the
  // same way).
  EXPECT_DOUBLE_EQ(deferral_penalty_j(hour_start(0, 10), hour_start(0, 7),
                                      pred, cfg),
                   busy);
}

TEST(ProfitModel, SlotCapacityEq5) {
  ProfitConfig cfg;
  cfg.bandwidth_kbps = 25.0;
  // A 1-hour slot: 25 kB/s * 3600 s = 90 MB.
  EXPECT_EQ(slot_capacity_bytes({0, kMsPerHour}, cfg), 90'000'000);
  cfg.bandwidth_kbps = 0.0;
  EXPECT_THROW(slot_capacity_bytes({0, kMsPerHour}, cfg), Error);
}

TEST(ProfitModel, AssignmentAnchor) {
  const Interval slot{1000, 2000};
  EXPECT_EQ(assignment_anchor(slot, 5000), 2000);  // preceding slot
  EXPECT_EQ(assignment_anchor(slot, 500), 1000);   // following slot
  EXPECT_EQ(assignment_anchor(slot, 1500), 1500);  // inside
}

TEST(BuildInstance, MapsItemsToAdjacentSlots) {
  const mining::SlotPredictor pred = make_predictor();
  const ProfitConfig cfg;
  const std::vector<Interval> slots = {
      {hour_start(0, 8), hour_start(0, 9)},
      {hour_start(0, 18), hour_start(0, 19)},
  };
  const std::vector<NetworkActivity> pending = {
      activity(hour_start(0, 3)),    // before first slot
      activity(hour_start(0, 12)),   // between slots
      activity(hour_start(0, 22)),   // after last slot
  };
  const Instance inst = build_instance(slots, pending, pred, cfg);
  ASSERT_EQ(inst.items.size(), 3u);
  ASSERT_EQ(inst.slots.size(), 2u);

  EXPECT_EQ(inst.items[0].prev_slot, -1);
  EXPECT_EQ(inst.items[0].next_slot, 0);
  EXPECT_EQ(inst.items[1].prev_slot, 0);
  EXPECT_EQ(inst.items[1].next_slot, 1);
  EXPECT_EQ(inst.items[2].prev_slot, 1);
  EXPECT_EQ(inst.items[2].next_slot, -1);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(inst.item_activity[i], i);
    EXPECT_EQ(inst.items[i].weight, pending[i].total_bytes());
  }
  EXPECT_TRUE(inst.unschedulable.empty());
}

TEST(BuildInstance, ExcludesInSlotActivities) {
  const mining::SlotPredictor pred = make_predictor();
  const std::vector<Interval> slots = {
      {hour_start(0, 8), hour_start(0, 9)}};
  const std::vector<NetworkActivity> pending = {
      activity(hour_start(0, 8) + kMsPerMinute)};  // inside the slot
  const Instance inst = build_instance(slots, pending, pred, {});
  EXPECT_TRUE(inst.items.empty());
  EXPECT_TRUE(inst.unschedulable.empty());
}

TEST(BuildInstance, NoSlotsMeansUnschedulable) {
  const mining::SlotPredictor pred = make_predictor();
  const std::vector<NetworkActivity> pending = {activity(1000)};
  const Instance inst = build_instance({}, pending, pred, {});
  EXPECT_TRUE(inst.items.empty());
  ASSERT_EQ(inst.unschedulable.size(), 1u);
  EXPECT_EQ(inst.unschedulable[0], 0u);
}

TEST(BuildInstance, RejectsNonDeferrable) {
  const mining::SlotPredictor pred = make_predictor();
  NetworkActivity n = activity(1000);
  n.deferrable = false;
  EXPECT_THROW(
      build_instance({}, std::vector<NetworkActivity>{n}, pred, {}),
      Error);
}

TEST(BuildInstance, RejectsOverlappingSlots) {
  const mining::SlotPredictor pred = make_predictor();
  const std::vector<Interval> slots = {{0, 2000}, {1000, 3000}};
  EXPECT_THROW(build_instance(slots, {}, pred, {}), Error);
}

TEST(BuildInstance, ProfitReflectsDistance) {
  // An activity just before a slot has a smaller penalty than one far
  // before it (same ΔE), so its profit is at least as large.
  const mining::SlotPredictor pred = make_predictor();
  const std::vector<Interval> slots = {
      {hour_start(0, 18), hour_start(0, 19)}};
  const std::vector<NetworkActivity> near = {
      activity(hour_start(0, 17) + 50 * kMsPerMinute)};
  const std::vector<NetworkActivity> far = {activity(hour_start(0, 9))};
  const Instance inst_near = build_instance(slots, near, pred, {});
  const Instance inst_far = build_instance(slots, far, pred, {});
  EXPECT_GE(inst_near.items[0].profit, inst_far.items[0].profit);
}

TEST(WifiTransfer, DurationFromGoodputClampedToCellular) {
  ProfitConfig cfg;
  cfg.wifi_bandwidth_kbps = 400.0;
  // 1000 bytes at 400 kB/s (= bytes per ms) -> ceil(2.5) = 3 ms.
  EXPECT_EQ(wifi_transfer_ms(activity(0, 2000, 1000), cfg), 3);
  // Never shorter than one tick, even for zero bytes.
  EXPECT_EQ(wifi_transfer_ms(activity(0, 2000, 0), cfg), 1);
  // Never slower than the cellular execution it replaces.
  EXPECT_EQ(wifi_transfer_ms(activity(0, 2000, 10'000'000), cfg), 2000);
  cfg.wifi_bandwidth_kbps = 0.0;
  EXPECT_THROW(wifi_transfer_ms(activity(0), cfg), Error);
}

TEST(WifiTransfer, OffloadSavingPositiveForBulkFlows) {
  const ProfitConfig cfg;
  // A multi-second cellular transfer pays promotion + both tails; the
  // same bytes on WLAN finish quickly and pay only the association
  // burst and PSM tail, so offloading nets a saving.
  const NetworkActivity bulk = activity(0, 8000, 500'000);
  EXPECT_GT(wifi_offload_saving_j(bulk, cfg), 0.0);
  // The saving equals the difference of the two isolated-cost curves.
  EXPECT_DOUBLE_EQ(
      wifi_offload_saving_j(bulk, cfg),
      isolated_activity_energy(bulk.duration, cfg.radio) -
          isolated_activity_energy(wifi_transfer_ms(bulk, cfg), cfg.wifi));
}

TEST(BuildMultiradio, ReducesToSingleRadioWithNoWifiWindows) {
  const mining::SlotPredictor pred = make_predictor();
  const ProfitConfig cfg;
  const std::vector<Interval> slots = {
      {hour_start(0, 8), hour_start(0, 9)},
      {hour_start(0, 18), hour_start(0, 19)},
  };
  const std::vector<NetworkActivity> pending = {
      activity(hour_start(0, 3)),
      activity(hour_start(0, 12)),
      activity(hour_start(0, 22)),
  };
  const Instance single = build_instance(slots, pending, pred, cfg);
  const Instance multi =
      build_multiradio_instance(slots, {}, pending, pred, cfg);
  ASSERT_EQ(multi.items.size(), single.items.size());
  EXPECT_EQ(multi.slots.size(), single.slots.size());
  EXPECT_EQ(multi.num_cellular_slots, single.num_cellular_slots);
  for (std::size_t i = 0; i < single.items.size(); ++i) {
    EXPECT_EQ(multi.items[i].id, single.items[i].id);
    EXPECT_EQ(multi.items[i].weight, single.items[i].weight);
    EXPECT_EQ(multi.items[i].profit, single.items[i].profit);  // bitwise
    EXPECT_EQ(multi.items[i].prev_slot, single.items[i].prev_slot);
    EXPECT_EQ(multi.items[i].next_slot, single.items[i].next_slot);
    EXPECT_TRUE(std::isnan(multi.items[i].prev_profit));
    EXPECT_TRUE(std::isnan(multi.items[i].next_profit));
  }
  for (const OverlapSlot& slot : multi.slots) {
    EXPECT_EQ(slot.radio, RadioId::kCellular);
  }
}

TEST(BuildMultiradio, WifiWindowBecomesTaggedSlot) {
  const mining::SlotPredictor pred = make_predictor();
  const ProfitConfig cfg;
  const std::vector<Interval> slots = {
      {hour_start(0, 18), hour_start(0, 19)}};
  const std::vector<Interval> wifi = {
      {hour_start(0, 13), hour_start(0, 14)}};
  const std::vector<NetworkActivity> pending = {
      activity(hour_start(0, 12))};
  const Instance inst =
      build_multiradio_instance(slots, wifi, pending, pred, cfg);
  ASSERT_EQ(inst.slots.size(), 2u);
  EXPECT_EQ(inst.num_cellular_slots, 1u);
  EXPECT_EQ(inst.slots[0].radio, RadioId::kCellular);
  EXPECT_EQ(inst.slots[1].radio, RadioId::kWifi);
  // The Wi-Fi knapsack is sized by the WLAN goodput, not the carrier.
  EXPECT_EQ(inst.slots[1].capacity,
            static_cast<std::int64_t>(cfg.wifi_bandwidth_kbps * 1000.0 *
                                      to_seconds(kMsPerHour)));

  // The item carries both candidates with their own profits: the
  // forward cellular slot and the Wi-Fi window following the arrival.
  ASSERT_EQ(inst.items.size(), 1u);
  const OverlapItem& item = inst.items[0];
  EXPECT_EQ(item.prev_slot, 0);
  EXPECT_EQ(item.next_slot, 1);
  const NetworkActivity& act = pending[0];
  const double cell_profit =
      energy_saving_j(act, cfg) -
      deferral_penalty_j(act.start, hour_start(0, 18), pred, cfg);
  const double wifi_profit =
      wifi_offload_saving_j(act, cfg) -
      deferral_penalty_j(act.start, hour_start(0, 13), pred, cfg);
  EXPECT_EQ(item.prev_profit, cell_profit);
  EXPECT_EQ(item.next_profit, wifi_profit);
  EXPECT_EQ(item.profit, cell_profit);
}

TEST(BuildMultiradio, WifiOnlyCoverageStillSchedulable) {
  const mining::SlotPredictor pred = make_predictor();
  const ProfitConfig cfg;
  // No cellular slots at all: under build_instance this activity would
  // be unschedulable; a Wi-Fi presence window rescues it.
  const std::vector<Interval> wifi = {
      {hour_start(0, 13), hour_start(0, 14)}};
  const std::vector<NetworkActivity> pending = {
      activity(hour_start(0, 12))};
  const Instance inst =
      build_multiradio_instance({}, wifi, pending, pred, cfg);
  EXPECT_TRUE(inst.unschedulable.empty());
  ASSERT_EQ(inst.items.size(), 1u);
  EXPECT_EQ(inst.items[0].prev_slot, -1);
  EXPECT_EQ(inst.items[0].next_slot, 0);
  EXPECT_EQ(inst.num_cellular_slots, 0u);
  const double wifi_profit =
      wifi_offload_saving_j(pending[0], cfg) -
      deferral_penalty_j(pending[0].start, hour_start(0, 13), pred, cfg);
  EXPECT_EQ(inst.items[0].profit, wifi_profit);

  // An arrival *inside* the window offloads immediately: no deferral
  // penalty at all.
  const std::vector<NetworkActivity> inside = {
      activity(hour_start(0, 13) + kMsPerMinute)};
  const Instance inst2 =
      build_multiradio_instance({}, wifi, inside, pred, cfg);
  ASSERT_EQ(inst2.items.size(), 1u);
  EXPECT_EQ(inst2.items[0].profit, wifi_offload_saving_j(inside[0], cfg));
}

TEST(BuildMultiradio, RejectsOverlappingWifiWindows) {
  const mining::SlotPredictor pred = make_predictor();
  const std::vector<Interval> wifi = {{0, 2000}, {1000, 3000}};
  EXPECT_THROW(build_multiradio_instance({}, wifi, {}, pred, {}), Error);
}

}  // namespace
}  // namespace netmaster::sched
