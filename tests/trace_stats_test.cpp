// Tests for trace profiling statistics (the Fig. 1/2/5 measurements).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "trace/trace_stats.hpp"

namespace netmaster {
namespace {

/// One day, one session [1000, 11000); two screen-on activities and two
/// screen-off activities with known bytes and rates.
UserTrace fixture() {
  UserTrace t;
  t.user = 1;
  t.num_days = 1;
  t.app_names = {"a", "b", "c"};
  t.sessions = {{1000, 11'000}};
  t.usages = {{0, 1500, 500}, {1, 2000, 500},
              {0, 3 * kMsPerHour + 10, 500}};
  t.activities = {
      {0, 1500, 1000, 10'000, 0, true, false},   // on, 10 kB/s
      {1, 2000, 2000, 2000, 2000, true, false},  // on, 2 kB/s
      {1, 50'000, 4000, 800, 200, false, true},  // off, 0.25 kB/s
      {2, 60'000, 1000, 100, 100, false, true},  // off, 0.2 kB/s
  };
  return t;
}

TEST(TrafficSplit, CountsAndBytes) {
  const TrafficSplit s = traffic_split(fixture());
  EXPECT_EQ(s.activities_screen_on, 2u);
  EXPECT_EQ(s.activities_screen_off, 2u);
  EXPECT_EQ(s.bytes_screen_on, 14'000);
  EXPECT_EQ(s.bytes_screen_off, 1200);
  EXPECT_DOUBLE_EQ(s.screen_off_activity_fraction(), 0.5);
  EXPECT_NEAR(s.screen_off_byte_fraction(), 1200.0 / 15'200.0, 1e-12);
}

TEST(TrafficSplit, EmptyTrace) {
  UserTrace t = fixture();
  t.activities.clear();
  const TrafficSplit s = traffic_split(t);
  EXPECT_DOUBLE_EQ(s.screen_off_activity_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(s.screen_off_byte_fraction(), 0.0);
}

TEST(RateSamples, SplitByScreenState) {
  const RateSamples s = transfer_rate_samples(fixture());
  ASSERT_EQ(s.screen_on_kbps.size(), 2u);
  ASSERT_EQ(s.screen_off_kbps.size(), 2u);
  EXPECT_DOUBLE_EQ(s.screen_on_kbps[0], 10.0);
  EXPECT_DOUBLE_EQ(s.screen_on_kbps[1], 2.0);
  EXPECT_DOUBLE_EQ(s.screen_off_kbps[0], 0.25);
  EXPECT_DOUBLE_EQ(s.screen_off_kbps[1], 0.2);
}

TEST(RateSamples, SkipsZeroDuration) {
  UserTrace t = fixture();
  t.activities[0].duration = 0;
  const RateSamples s = transfer_rate_samples(t);
  EXPECT_EQ(s.screen_on_kbps.size(), 1u);
}

TEST(ScreenUtilization, KnownValues) {
  const ScreenUtilization u = screen_utilization(fixture());
  // One 10 s session, transfers cover [1500,2500) + [2000,4000) =
  // [1500,4000) -> 2.5 s utilized.
  EXPECT_DOUBLE_EQ(u.avg_session_s, 10.0);
  EXPECT_DOUBLE_EQ(u.avg_utilized_s, 2.5);
  EXPECT_DOUBLE_EQ(u.radio_utilization, 0.25);
}

TEST(ScreenUtilization, NoSessions) {
  UserTrace t = fixture();
  t.sessions.clear();
  t.usages.clear();
  const ScreenUtilization u = screen_utilization(t);
  EXPECT_DOUBLE_EQ(u.radio_utilization, 0.0);
  EXPECT_DOUBLE_EQ(u.avg_session_s, 0.0);
}

TEST(UsageIntensity, HourBuckets) {
  const IntensityVector v = usage_intensity(fixture());
  EXPECT_DOUBLE_EQ(v[0], 2.0);  // two usages in hour 0
  EXPECT_DOUBLE_EQ(v[3], 1.0);
  EXPECT_DOUBLE_EQ(v[12], 0.0);
}

TEST(UsageIntensity, PerDay) {
  UserTrace t = fixture();
  t.num_days = 2;
  t.usages.push_back({2, kMsPerDay + 5 * kMsPerHour, 100});
  const IntensityVector d0 = usage_intensity_for_day(t, 0);
  const IntensityVector d1 = usage_intensity_for_day(t, 1);
  EXPECT_DOUBLE_EQ(d0[0], 2.0);
  EXPECT_DOUBLE_EQ(d0[5], 0.0);
  EXPECT_DOUBLE_EQ(d1[5], 1.0);
  EXPECT_THROW(usage_intensity_for_day(t, 2), Error);
}

TEST(PerApp, IntensityAndCounts) {
  const auto per_app = per_app_intensity(fixture());
  ASSERT_EQ(per_app.size(), 3u);
  EXPECT_DOUBLE_EQ(per_app[0][0], 1.0);
  EXPECT_DOUBLE_EQ(per_app[1][0], 1.0);
  EXPECT_DOUBLE_EQ(per_app[0][3], 1.0);
  const auto counts = per_app_usage_counts(fixture());
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
}

TEST(ActiveNetworkedApps, RequiresBothUsageAndNetwork) {
  // App 0: used + networked. App 1: used + networked. App 2: networked
  // only (never used) -> excluded.
  EXPECT_EQ(active_networked_app_count(fixture()), 2u);
}

}  // namespace
}  // namespace netmaster
