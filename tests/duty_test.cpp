// Tests for the duty-cycle sleep schemes (§IV-C.2, Fig. 10a/b).
#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "duty/duty_cycle.hpp"

namespace netmaster::duty {
namespace {

DutyConfig config(SleepScheme scheme,
                  DurationMs sleep = 30 * kMsPerSecond) {
  DutyConfig cfg;
  cfg.scheme = scheme;
  cfg.initial_sleep_ms = sleep;
  cfg.seed = 7;
  return cfg;
}

TEST(DutyCycler, ExponentialDoublesOnFruitlessWakes) {
  DutyCycler c(config(SleepScheme::kExponential));
  c.reset(0);
  EXPECT_EQ(c.next_wake(), 30'000);
  c.advance_fruitless();  // wake at 30 s + 2 s window, then sleep 60 s
  EXPECT_EQ(c.next_wake(), 32'000 + 60'000);
  c.advance_fruitless();
  EXPECT_EQ(c.current_sleep(), 120'000);
  c.advance_fruitless();
  EXPECT_EQ(c.current_sleep(), 240'000);
}

TEST(DutyCycler, ExponentialCapsAtMaxExponent) {
  DutyConfig cfg = config(SleepScheme::kExponential, 1000);
  cfg.max_backoff_exponent = 3;
  DutyCycler c(cfg);
  c.reset(0);
  for (int i = 0; i < 10; ++i) c.advance_fruitless();
  EXPECT_EQ(c.current_sleep(), 8000);  // 1000 << 3
}

TEST(DutyCycler, ActivityResetsBackoff) {
  DutyCycler c(config(SleepScheme::kExponential));
  c.reset(0);
  c.advance_fruitless();
  c.advance_fruitless();
  EXPECT_GT(c.current_sleep(), 30'000);
  c.notify_activity(500'000);
  EXPECT_EQ(c.current_sleep(), 30'000);
  EXPECT_EQ(c.next_wake(), 530'000);
}

TEST(DutyCycler, FixedStaysConstant) {
  DutyCycler c(config(SleepScheme::kFixed));
  c.reset(0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(c.current_sleep(), 30'000);
    c.advance_fruitless();
  }
}

TEST(DutyCycler, RandomStaysInBand) {
  DutyCycler c(config(SleepScheme::kRandom));
  c.reset(0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(c.current_sleep(), 15'000);
    EXPECT_LE(c.current_sleep(), 45'000);
    c.advance_fruitless();
  }
}

TEST(DutyCycler, ConfigValidation) {
  DutyConfig bad = config(SleepScheme::kFixed);
  bad.initial_sleep_ms = 0;
  EXPECT_THROW(DutyCycler{bad}, Error);
  bad = config(SleepScheme::kFixed);
  bad.wake_window_ms = -1;
  EXPECT_THROW(DutyCycler{bad}, Error);
  bad = config(SleepScheme::kFixed);
  bad.max_backoff_exponent = -1;
  EXPECT_THROW(DutyCycler{bad}, Error);
}

TEST(IdleWindow, WakesStayInsideWindow) {
  const Interval window{1000, 10 * kMsPerMinute};
  for (SleepScheme scheme : {SleepScheme::kExponential,
                             SleepScheme::kFixed, SleepScheme::kRandom}) {
    const auto wakes = simulate_idle_window(config(scheme), window);
    for (const WakeEvent& w : wakes) {
      EXPECT_GE(w.time, window.begin);
      EXPECT_LT(w.time, window.end);
      EXPECT_LE(w.time + w.window, window.end);
      EXPECT_FALSE(w.productive);
    }
  }
  EXPECT_THROW(simulate_idle_window(config(SleepScheme::kFixed),
                                    Interval{5, 5}),
               Error);
}

TEST(IdleWindow, FixedWakeCountMatchesPeriod) {
  // 30-minute window, 30 s sleep + 2 s wake: period 32 s -> 56 wakes.
  const auto wakes = simulate_idle_window(
      config(SleepScheme::kFixed), {0, 30 * kMsPerMinute});
  EXPECT_EQ(wakes.size(), 56u);
}

TEST(IdleWindow, ExponentialFarFewerThanFixed) {
  const Interval window{0, 30 * kMsPerMinute};
  const auto exp_wakes =
      simulate_idle_window(config(SleepScheme::kExponential), window);
  const auto fixed_wakes =
      simulate_idle_window(config(SleepScheme::kFixed), window);
  const auto random_wakes =
      simulate_idle_window(config(SleepScheme::kRandom), window);
  EXPECT_LT(exp_wakes.size(), fixed_wakes.size() / 4);
  EXPECT_LT(exp_wakes.size(), random_wakes.size() / 4);
}

TEST(IdleWindow, LongerSleepCutsRadioOnTime) {
  const Interval window{0, 30 * kMsPerMinute};
  DurationMs prev = std::numeric_limits<DurationMs>::max();
  for (DurationMs sleep_s : {5, 10, 30, 120, 360}) {
    const auto wakes = simulate_idle_window(
        config(SleepScheme::kExponential, sleep_s * kMsPerSecond),
        window);
    const DurationMs on = total_wake_time(wakes);
    EXPECT_LE(on, prev);
    prev = on;
  }
}

TEST(IdleWindow, RandomSchemeDeterministicPerSeed) {
  const Interval window{0, 10 * kMsPerMinute};
  const auto a = simulate_idle_window(config(SleepScheme::kRandom), window);
  const auto b = simulate_idle_window(config(SleepScheme::kRandom), window);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
  }
}

}  // namespace
}  // namespace netmaster::duty
