// Tests for the deterministic RNG layer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace netmaster {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 5.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  EXPECT_THROW(rng.uniform_int(5, 4), Error);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(11);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-3.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMoments) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(5.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.25);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.exponential(-1.0), Error);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  {
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      const double v = rng.normal(10.0, 2.0);
      sum += v;
      sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
  }
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(Rng, PoissonMoments) {
  Rng rng(19);
  EXPECT_EQ(rng.poisson(0.0), 0);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const int v = rng.poisson(3.5);
    EXPECT_GE(v, 0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 3.5, 0.15);
  // Large-mean normal approximation path.
  double big = 0.0;
  for (int i = 0; i < 5000; ++i) big += rng.poisson(200.0);
  EXPECT_NEAR(big / 5000.0, 200.0, 2.0);
  EXPECT_THROW(rng.poisson(-1.0), Error);
}

TEST(Rng, LognormalPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(2.0, 0.5), 0.0);
  }
}

TEST(DeriveSeed, IndependentStreams) {
  // Derived seeds for nearby stream ids should produce uncorrelated
  // generators.
  const auto s0 = derive_seed(42, 0);
  const auto s1 = derive_seed(42, 1);
  EXPECT_NE(s0, s1);
  Rng a(s0), b(s1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(DeriveSeed, DeterministicAndSeedSensitive) {
  EXPECT_EQ(derive_seed(7, 3), derive_seed(7, 3));
  EXPECT_NE(derive_seed(7, 3), derive_seed(8, 3));
}

}  // namespace
}  // namespace netmaster
