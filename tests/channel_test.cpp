// Tests for the signal-strength substrate and the channel-aware
// post-pass (the paper's future-work extension).
#include <gtest/gtest.h>

#include "channel/signal_model.hpp"
#include "common/error.hpp"
#include "policy/baseline.hpp"
#include "policy/netmaster.hpp"
#include "sim/accounting.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster::channel {
namespace {

constexpr TimeMs kDay = kMsPerDay;

SignalTrace day_trace(std::uint64_t seed = 1) {
  SignalConfig cfg;
  cfg.seed = seed;
  return SignalTrace::generate(cfg, kDay);
}

TEST(SignalConfig, Validation) {
  SignalConfig bad;
  bad.base_quality = 1.5;
  EXPECT_THROW(bad.validate(), Error);
  bad = SignalConfig{};
  bad.coherence_ms = 0;
  EXPECT_THROW(bad.validate(), Error);
  bad = SignalConfig{};
  bad.noise_sigma = -0.1;
  EXPECT_THROW(bad.validate(), Error);
  EXPECT_NO_THROW(SignalConfig{}.validate());
}

TEST(SignalTrace, QualityBoundedAndDeterministic) {
  const SignalTrace a = day_trace(7);
  const SignalTrace b = day_trace(7);
  for (TimeMs t = 0; t < kDay; t += 7 * kMsPerMinute) {
    EXPECT_GE(a.quality_at(t), 0.0);
    EXPECT_LE(a.quality_at(t), 1.0);
    EXPECT_DOUBLE_EQ(a.quality_at(t), b.quality_at(t));
  }
  EXPECT_THROW(a.quality_at(-1), Error);
  EXPECT_THROW(a.quality_at(kDay), Error);
}

TEST(SignalTrace, PiecewiseConstantOverCoherence) {
  const SignalTrace s = day_trace();
  const TimeMs seg = 3 * s.coherence();
  EXPECT_DOUBLE_EQ(s.quality_at(seg), s.quality_at(seg + 1));
  EXPECT_DOUBLE_EQ(s.quality_at(seg), s.quality_at(seg + s.coherence() - 1));
}

TEST(SignalTrace, DiurnalShapeNightBeatsEvening) {
  // Average quality around 04:00 should exceed the 18:00 dip when the
  // noise is removed.
  SignalConfig cfg;
  cfg.noise_sigma = 0.0;
  const SignalTrace s = SignalTrace::generate(cfg, kDay);
  EXPECT_GT(s.quality_at(hours(4)), s.quality_at(hours(18)));
}

TEST(SignalTrace, MeanQualityWeightsSegments) {
  const SignalTrace s = day_trace();
  // Mean over a whole segment equals the point value.
  const TimeMs seg = 5 * s.coherence();
  EXPECT_NEAR(s.mean_quality(seg, seg + s.coherence()),
              s.quality_at(seg), 1e-12);
  // Mean over two segments lies between them.
  const double q1 = s.quality_at(seg);
  const double q2 = s.quality_at(seg + s.coherence());
  const double mean = s.mean_quality(seg, seg + 2 * s.coherence());
  EXPECT_GE(mean, std::min(q1, q2) - 1e-12);
  EXPECT_LE(mean, std::max(q1, q2) + 1e-12);
  EXPECT_THROW(s.mean_quality(10, 5), Error);
}

TEST(Multipliers, MonotoneAndAnchored) {
  EXPECT_DOUBLE_EQ(SignalTrace::power_multiplier(1.0), 1.0);
  EXPECT_NEAR(SignalTrace::power_multiplier(0.0), 3.5, 1e-12);
  EXPECT_DOUBLE_EQ(SignalTrace::rate_multiplier(1.0), 1.0);
  EXPECT_DOUBLE_EQ(SignalTrace::rate_multiplier(0.0), 0.25);
  double prev_p = SignalTrace::power_multiplier(0.0);
  double prev_r = SignalTrace::rate_multiplier(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    EXPECT_LT(SignalTrace::power_multiplier(q), prev_p);
    EXPECT_GT(SignalTrace::rate_multiplier(q), prev_r);
    prev_p = SignalTrace::power_multiplier(q);
    prev_r = SignalTrace::rate_multiplier(q);
  }
  EXPECT_THROW(SignalTrace::power_multiplier(1.1), Error);
}

TEST(SignalPenalty, ZeroAtPerfectSignal) {
  SignalConfig cfg;
  cfg.base_quality = 1.0;
  cfg.diurnal_amplitude = 0.0;
  cfg.noise_sigma = 0.0;
  const SignalTrace s = SignalTrace::generate(cfg, kDay);
  const std::vector<sim::ExecutedTransfer> transfers = {
      {0, 1000, 5000}};
  EXPECT_NEAR(signal_energy_penalty_j(transfers, s,
                                      RadioPowerParams::wcdma()),
              0.0, 1e-9);
}

TEST(SignalPenalty, GrowsAsSignalDegrades) {
  const std::vector<sim::ExecutedTransfer> transfers = {
      {0, 1000, 5000}, {1, 60'000, 8000}};
  double prev = -1.0;
  for (double base : {0.9, 0.6, 0.3}) {
    SignalConfig cfg;
    cfg.base_quality = base;
    cfg.diurnal_amplitude = 0.0;
    cfg.noise_sigma = 0.0;
    const SignalTrace s = SignalTrace::generate(cfg, kDay);
    const double p = signal_energy_penalty_j(transfers, s,
                                             RadioPowerParams::wcdma());
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(ChannelAwareness, MovesDeferredTransfersToBetterSignal) {
  const auto profile = synth::make_user(synth::Archetype::kStudent, 2);
  const UserTrace full = synth::generate_trace(profile, 21, 42);
  const UserTrace training = full.slice_days(0, 14);
  const UserTrace eval = full.slice_days(14, 7);

  const policy::NetMasterPolicy nm(training, policy::NetMasterConfig{});
  sim::PolicyOutcome outcome = nm.run(eval);
  const SignalTrace signal =
      SignalTrace::generate(SignalConfig{}, eval.trace_end());
  const RadioPowerParams radio = RadioPowerParams::wcdma();

  const double before =
      signal_energy_penalty_j(outcome.transfers, signal, radio);
  const std::size_t moved =
      apply_channel_awareness(outcome, eval, signal, 10 * kMsPerMinute, radio);
  const double after =
      signal_energy_penalty_j(outcome.transfers, signal, radio);

  EXPECT_GT(moved, 0u);
  EXPECT_LT(after, before);
  // The adjusted schedule must still account cleanly.
  EXPECT_NO_THROW(sim::account(eval, outcome, radio));
}

TEST(ChannelAwareness, NeverMovesInPlaceTransfers) {
  const auto profile = synth::make_user(synth::Archetype::kStudent, 2);
  const UserTrace full = synth::generate_trace(profile, 21, 42);
  const UserTrace training = full.slice_days(0, 14);
  const UserTrace eval = full.slice_days(14, 7);

  const policy::NetMasterPolicy nm(training, policy::NetMasterConfig{});
  sim::PolicyOutcome outcome = nm.run(eval);
  const SignalTrace signal =
      SignalTrace::generate(SignalConfig{}, eval.trace_end());
  apply_channel_awareness(outcome, eval, signal, 10 * kMsPerMinute,
                          RadioPowerParams::wcdma());

  for (const sim::ExecutedTransfer& t : outcome.transfers) {
    const NetworkActivity& act = eval.activities[t.activity_index];
    if (act.user_initiated) {
      EXPECT_EQ(t.start, act.start);  // user traffic untouched
    }
    if (t.start != act.start && t.start > act.start) {
      EXPECT_GE(t.start, act.start);  // causality for deferrals
    }
  }
}

TEST(ChannelAwareness, ZeroWindowIsNoop) {
  const auto profile = synth::make_user(synth::Archetype::kLightUser, 1);
  const UserTrace full = synth::generate_trace(profile, 14, 3);
  const UserTrace training = full.slice_days(0, 7);
  const UserTrace eval = full.slice_days(7, 7);
  const policy::NetMasterPolicy nm(training, policy::NetMasterConfig{});
  sim::PolicyOutcome outcome = nm.run(eval);
  const SignalTrace signal =
      SignalTrace::generate(SignalConfig{}, eval.trace_end());
  EXPECT_EQ(apply_channel_awareness(outcome, eval, signal, 0,
                                     RadioPowerParams::wcdma()), 0u);
  EXPECT_THROW(apply_channel_awareness(outcome, eval, signal, -1,
                                       RadioPowerParams::wcdma()), Error);
}

}  // namespace
}  // namespace netmaster::channel
