// Tests for engine::TraceIndex: structural invariants, session lookups
// against the linear-scan ground truth, bucket totals, and the
// bit-identity of policy outcomes between the shared-index path and the
// one-shot UserTrace path.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "engine/trace_index.hpp"
#include "mining/habits.hpp"
#include "policy/baseline.hpp"
#include "policy/batch.hpp"
#include "policy/delay.hpp"
#include "policy/delay_batch.hpp"
#include "policy/netmaster.hpp"
#include "policy/oracle.hpp"
#include "service/online_sim.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster::engine {
namespace {

/// Two sessions, activities on both sides of every boundary.
UserTrace fixture() {
  UserTrace t;
  t.user = 7;
  t.num_days = 1;
  t.app_names = {"a", "b"};
  t.sessions = {{seconds(100), seconds(160)}, {seconds(300), seconds(400)}};
  t.usages = {{0, seconds(110), seconds(5)},
              {1, seconds(310), seconds(5)}};
  auto act = [](int app, TimeMs start, bool deferrable) {
    NetworkActivity n;
    n.app = static_cast<AppId>(app);
    n.start = start;
    n.duration = seconds(4);
    n.bytes_down = 1000;
    n.deferrable = deferrable;
    n.user_initiated = !deferrable;
    return n;
  };
  t.activities = {act(0, seconds(10), true),    // screen off, deferrable
                  act(0, seconds(100), true),   // session edge: screen on
                  act(1, seconds(120), false),  // foreground
                  act(0, seconds(160), true),   // end edge: screen off
                  act(1, seconds(350), true),   // inside 2nd session
                  act(0, seconds(500), true)};  // tail, screen off
  return t;
}

TEST(TraceIndex, InvariantsHoldOnFixtureAndSynthTraces) {
  const UserTrace t = fixture();
  TraceIndex(t).check_invariants();
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    for (int arch = 0; arch < 3; ++arch) {
      const UserTrace synth_trace = synth::generate_trace(
          synth::make_user(static_cast<synth::Archetype>(arch), 1), 7,
          seed);
      TraceIndex(synth_trace).check_invariants();
    }
  }
}

TEST(TraceIndex, SessionLookupsMatchLinearScan) {
  const UserTrace t = fixture();
  const TraceIndex index(t);
  EXPECT_EQ(index.horizon(), t.trace_end());
  for (TimeMs probe :
       {TimeMs{0}, seconds(99), seconds(100), seconds(159), seconds(160),
        seconds(299), seconds(300), seconds(399), seconds(400),
        seconds(500)}) {
    EXPECT_EQ(index.screen_on_at(probe), t.screen_on_at(probe)) << probe;
  }
  EXPECT_EQ(index.first_session_at_or_after(0), 0u);
  EXPECT_EQ(index.first_session_at_or_after(seconds(100)), 0u);
  EXPECT_EQ(index.first_session_at_or_after(seconds(101)), 1u);
  EXPECT_EQ(index.first_session_at_or_after(seconds(300)), 1u);
  EXPECT_EQ(index.first_session_at_or_after(seconds(301)),
            index.sessions().size());

  EXPECT_EQ(index.next_session_begin(0, -1), seconds(100));
  EXPECT_EQ(index.next_session_begin(seconds(200), -1), seconds(300));
  EXPECT_EQ(index.next_session_begin(seconds(301), seconds(999)),
            seconds(999));

  EXPECT_EQ(index.last_session_begin_in(0, seconds(500)), seconds(300));
  EXPECT_EQ(index.last_session_begin_in(0, seconds(300)), seconds(100));
  EXPECT_EQ(index.last_session_begin_in(0, seconds(100)), -1);
  EXPECT_EQ(index.last_session_begin_in(seconds(150), seconds(250)), -1);
}

TEST(TraceIndex, ClassifiesEveryActivityExactlyOnce) {
  const UserTrace t = fixture();
  const TraceIndex index(t);
  // Ground truth via the policy-layer helper.
  std::size_t deferrable_count = 0;
  for (std::size_t i = 0; i < t.activities.size(); ++i) {
    EXPECT_EQ(index.is_deferrable_screen_off(i),
              policy::is_deferrable_screen_off(t, t.activities[i]))
        << "activity " << i;
    if (index.is_deferrable_screen_off(i)) ++deferrable_count;
  }
  // The ascending list is exactly the set of flagged indices.
  const std::span<const std::uint32_t> listed =
      index.deferrable_screen_off();
  ASSERT_EQ(listed.size(), deferrable_count);
  for (std::size_t k = 0; k < listed.size(); ++k) {
    EXPECT_TRUE(index.is_deferrable_screen_off(listed[k]));
    if (k > 0) {
      EXPECT_LT(listed[k - 1], listed[k]);
    }
  }
  // Expected classification: 0, 3, 5 deferrable screen-off; 1 arrives at
  // a session begin (screen on), 2 is foreground, 4 is inside a session.
  EXPECT_EQ(std::vector<std::uint32_t>(listed.begin(), listed.end()),
            (std::vector<std::uint32_t>{0, 3, 5}));
}

TEST(TraceIndex, HourBucketsMatchManualRecount) {
  const UserTrace t = fixture();
  const TraceIndex index(t);
  const TraceIndex::HourBucket& h0 = index.bucket(0, 0);
  // Both usages start in hour 0; screen-off net activities are the
  // deferrable-screen-off trio, all from app 0.
  EXPECT_EQ(h0.usage_count, 2);
  EXPECT_EQ(h0.net_count, 3);
  EXPECT_DOUBLE_EQ(h0.net_bytes, 3000.0);
  EXPECT_EQ(h0.distinct_net_apps, 1);
  for (int h = 1; h < kHoursPerDay; ++h) {
    EXPECT_EQ(index.bucket(0, h).usage_count, 0) << h;
    EXPECT_EQ(index.bucket(0, h).net_count, 0) << h;
  }
}

void expect_outcome_eq(const sim::PolicyOutcome& a,
                       const sim::PolicyOutcome& b) {
  ASSERT_EQ(a.transfers.size(), b.transfers.size());
  for (std::size_t i = 0; i < a.transfers.size(); ++i) {
    EXPECT_EQ(a.transfers[i].activity_index, b.transfers[i].activity_index);
    EXPECT_EQ(a.transfers[i].start, b.transfers[i].start);
    EXPECT_EQ(a.transfers[i].duration, b.transfers[i].duration);
  }
  EXPECT_EQ(a.blocked.intervals(), b.blocked.intervals());
  ASSERT_EQ(a.wakes.size(), b.wakes.size());
  for (std::size_t i = 0; i < a.wakes.size(); ++i) {
    EXPECT_EQ(a.wakes[i].time, b.wakes[i].time);
    EXPECT_EQ(a.wakes[i].window, b.wakes[i].window);
    EXPECT_EQ(a.wakes[i].productive, b.wakes[i].productive);
  }
  ASSERT_EQ(a.radio_allowed.has_value(), b.radio_allowed.has_value());
  if (a.radio_allowed) {
    EXPECT_EQ(a.radio_allowed->intervals(), b.radio_allowed->intervals());
  }
  EXPECT_EQ(a.interrupts, b.interrupts);
  EXPECT_EQ(a.duty_releases, b.duty_releases);
  EXPECT_EQ(a.deferral_latency_s, b.deferral_latency_s);
}

TEST(TraceIndex, PolicyOutcomesBitIdenticalViaSharedIndex) {
  for (const std::uint64_t seed : {3u, 42u}) {
    const synth::UserProfile profile =
        synth::make_user(synth::Archetype::kCommuter, 1);
    const UserTrace full = synth::generate_trace(profile, 14, seed);
    const UserTrace training = full.slice_days(0, 7);
    const UserTrace eval = full.slice_days(7, 7);
    const TraceIndex index(eval);

    const policy::NetMasterConfig nm_config;
    std::vector<std::unique_ptr<policy::Policy>> policies;
    policies.push_back(std::make_unique<policy::BaselinePolicy>());
    policies.push_back(std::make_unique<policy::DelayPolicy>(seconds(30)));
    policies.push_back(std::make_unique<policy::BatchPolicy>(3));
    policies.push_back(
        std::make_unique<policy::DelayBatchPolicy>(seconds(20)));
    policies.push_back(
        std::make_unique<policy::OraclePolicy>(nm_config.profit));
    policies.push_back(
        std::make_unique<policy::NetMasterPolicy>(training, nm_config));

    for (const auto& p : policies) {
      SCOPED_TRACE(p->name());
      expect_outcome_eq(p->run(eval), p->run(index));
    }

    // The mining fold and the online event loop agree across the two
    // entry points as well.
    const mining::HabitModel via_trace = mining::HabitModel::mine(eval);
    const mining::HabitModel via_index =
        mining::HabitModel::mine(TraceIndex(eval));
    for (const mining::DayKind kind :
         {mining::DayKind::kWeekday, mining::DayKind::kWeekend}) {
      for (int h = 0; h < kHoursPerDay; ++h) {
        EXPECT_DOUBLE_EQ(via_trace.pr_active(kind, h),
                         via_index.pr_active(kind, h));
      }
    }
    const service::OnlineSimResult online_trace =
        service::run_online(training, eval, nm_config);
    const service::OnlineSimResult online_index =
        service::run_online(training, index, nm_config);
    EXPECT_EQ(online_trace.events_processed, online_index.events_processed);
    EXPECT_EQ(online_trace.radio_switches, online_index.radio_switches);
    expect_outcome_eq(online_trace.outcome, online_index.outcome);
  }
}

TEST(TraceIndex, RetiredSourceLifetimeIsCaught) {
  // Regression: the index used to borrow the trace by raw reference,
  // so a moved-from or evicted source was silently read after free.
  // The generation handle turns that into a thrown Error while the
  // arena-backed columns keep replaying.
  const UserTrace t = fixture();
  mem::Arena arena;
  mem::Lifetime owner;
  TraceIndex index(t, arena, owner.handle());
  EXPECT_TRUE(index.source_alive());
  EXPECT_EQ(&index.trace(), &t);
  index.check_invariants();

  owner.retire();  // the owner evicted / moved the trace out
  EXPECT_FALSE(index.source_alive());
  EXPECT_THROW(index.trace(), Error);
  EXPECT_THROW(index.check_invariants(), Error);

  // The self-contained replay path is untouched.
  EXPECT_EQ(index.sessions().size(), t.sessions.size());
  EXPECT_EQ(index.activities().size(), t.activities.size());
  EXPECT_TRUE(index.screen_on_at(seconds(110)));
  EXPECT_EQ(index.deferrable_screen_off().size(), 3u);
  EXPECT_EQ(index.num_days(), t.num_days);
}

TEST(TraceIndex, MovedFromOwnerLifetimeIsCaught) {
  const UserTrace t = fixture();
  mem::Arena arena;
  auto owner = std::make_unique<mem::Lifetime>();
  const TraceIndex index(t, arena, owner->handle());
  EXPECT_TRUE(index.source_alive());
  owner.reset();  // destruction retires, like a store slot being freed
  EXPECT_FALSE(index.source_alive());
  EXPECT_THROW(index.trace(), Error);
}

TEST(TraceIndex, BucketAccessorRejectsOutOfRange) {
  const UserTrace t = fixture();
  const TraceIndex index(t);
  EXPECT_THROW(index.bucket(-1, 0), Error);
  EXPECT_THROW(index.bucket(0, kHoursPerDay), Error);
  EXPECT_THROW(index.bucket(1, 0), Error);
}

}  // namespace
}  // namespace netmaster::engine
