// Tests for the observability subsystem (src/obs/): registry and
// instrument correctness, concurrent updates from parallel_for
// workers, span aggregation and parent attribution, exporter formats,
// and the end-to-end fleet snapshot via NETMASTER_METRICS_OUT.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "eval/fleet.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "policy/netmaster.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster::obs {
namespace {

// ---- Instruments. ----------------------------------------------------

TEST(ObsCounter, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddReset) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsHistogram, CumulativeBucketsAndSummary) {
  Histogram h({1.0, 2.0, 4.0});
  for (double x : {0.5, 1.0, 1.5, 3.0, 100.0}) h.add(x);
  // Bucket i counts samples in (bounds[i-1], bounds[i]].
  EXPECT_EQ(h.bucket_count(0), 2u);  // <= 1
  EXPECT_EQ(h.bucket_count(1), 1u);  // (1, 2]
  EXPECT_EQ(h.bucket_count(2), 1u);  // (2, 4]
  EXPECT_EQ(h.bucket_count(3), 1u);  // +inf overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 21.2);
}

TEST(ObsHistogram, QuantileClampedToObservedRange) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) h.add(3.0);
  EXPECT_GE(h.quantile(0.5), 2.0);
  EXPECT_LE(h.quantile(0.5), 3.0);  // clamped to observed max
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
  EXPECT_THROW(h.quantile(1.5), Error);
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(ObsHistogram, NanRejectedAndReset) {
  Histogram h({1.0});
  h.add(0.5);
  h.add(std::nan(""));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.rejected(), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.rejected(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
}

TEST(ObsHistogram, BadBoundsThrow) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
}

TEST(ObsP2Quantile, ExactBelowFiveSamples) {
  P2Quantile med(0.5);
  EXPECT_DOUBLE_EQ(med.value(), 0.0);
  med.add(3.0);
  med.add(1.0);
  med.add(2.0);
  EXPECT_DOUBLE_EQ(med.value(), 2.0);
  EXPECT_EQ(med.count(), 3u);
}

TEST(ObsP2Quantile, ApproximatesStreamingMedian) {
  P2Quantile med(0.5);
  for (int i = 1; i <= 1001; ++i) med.add(static_cast<double>(i));
  EXPECT_NEAR(med.value(), 501.0, 25.0);
  EXPECT_THROW(P2Quantile(0.0), Error);
  EXPECT_THROW(P2Quantile(1.0), Error);
}

// ---- Registry. -------------------------------------------------------

TEST(ObsRegistry, LookupRegistersOnceAndSnapshots) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);  // same instrument, stable reference
  a.add(7);
  reg.gauge("g").set(1.25);
  reg.histogram("h", {1.0, 2.0}).add(0.5);

  const auto counters = reg.counter_rows();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].name, "x");
  EXPECT_EQ(counters[0].value, 7u);
  const auto gauges = reg.gauge_rows();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(gauges[0].value, 1.25);
  const auto hists = reg.histogram_rows();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].histogram->count(), 1u);

  reg.reset();
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(reg.histogram("h", {}).count(), 0u);  // bounds kept
}

TEST(ObsRegistry, ConcurrentUpdatesFromParallelForAreDeterministic) {
  Registry reg;
  Counter& hits = reg.counter("hits");
  Histogram& lat = reg.histogram("lat", {0.25, 0.5, 1.0});
  constexpr std::size_t kTasks = 1000;
  parallel_for(kTasks, [&](std::size_t i) {
    hits.add(1);
    lat.add(static_cast<double>(i % 4) * 0.25);  // 0, .25, .5, .75
  });
  EXPECT_EQ(hits.value(), kTasks);
  EXPECT_EQ(lat.count(), kTasks);
  EXPECT_EQ(lat.bucket_count(0), 500u);  // <= 0.25 (i.e. 0 and .25)
  EXPECT_EQ(lat.bucket_count(1), 250u);  // (0.25, 0.5]
  EXPECT_EQ(lat.bucket_count(2), 250u);  // (0.5, 1.0]
  EXPECT_DOUBLE_EQ(lat.min(), 0.0);
  EXPECT_DOUBLE_EQ(lat.max(), 0.75);
}

// ---- Timers and spans. -----------------------------------------------

TEST(ObsScopedTimer, MeasuresAndRecordsOnce) {
  Histogram sink({1e6});
  {
    ScopedTimer t(sink);
    EXPECT_GE(t.elapsed_ms(), 0.0);
    const double ms = t.stop();
    EXPECT_GE(ms, 0.0);
    EXPECT_DOUBLE_EQ(t.stop(), ms);  // idempotent
  }
  EXPECT_EQ(sink.count(), 1u);  // destructor did not double-record
}

TEST(ObsSpan, ParentAttributionAndAggregation) {
  Registry reg;
  for (int i = 0; i < 3; ++i) {
    SpanScope outer(reg, "outer");
    SpanScope inner(reg, "inner");
  }
  flush_thread_spans();
  const auto rows = reg.span_rows();
  ASSERT_EQ(rows.size(), 2u);
  bool saw_outer = false, saw_inner = false;
  for (const auto& row : rows) {
    if (row.name == "outer") {
      saw_outer = true;
      EXPECT_EQ(row.parent, "");
      EXPECT_EQ(row.stats.count, 3u);
      EXPECT_GE(row.stats.wall_ms, 0.0);
      EXPECT_GE(row.stats.max_wall_ms, 0.0);
    }
    if (row.name == "inner") {
      saw_inner = true;
      EXPECT_EQ(row.parent, "outer");
      EXPECT_EQ(row.stats.count, 3u);
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST(ObsSpan, WorkerSpansMergeAfterJoin) {
  Registry reg;
  parallel_for(64, [&](std::size_t) { SpanScope s(reg, "task"); });
  flush_thread_spans();  // main thread may have run tasks inline
  std::uint64_t total = 0;
  for (const auto& row : reg.span_rows()) {
    ASSERT_EQ(row.name, "task");
    total += row.stats.count;
  }
  EXPECT_EQ(total, 64u);
}

// ---- Exporters. ------------------------------------------------------

TEST(ObsExport, JsonlLinesAreWellFormed) {
  Registry reg;
  reg.counter("c\"quoted").add(3);
  reg.gauge("g").set(0.5);
  reg.histogram("h", {1.0}).add(2.0);
  {
    SpanScope s(reg, "work");
  }
  flush_thread_spans();
  std::ostringstream os;
  write_jsonl(reg, os);
  std::istringstream is(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":\""), std::string::npos);
  }
  EXPECT_EQ(lines, 4);
  EXPECT_NE(os.str().find("c\\\"quoted"), std::string::npos);
  EXPECT_NE(os.str().find("\"le\":\"+inf\""), std::string::npos);
  EXPECT_NE(os.str().find("\"type\":\"span\""), std::string::npos);
}

TEST(ObsExport, JsonObjectAndTableRender) {
  Registry reg;
  reg.counter("c").add(1);
  std::ostringstream js;
  write_json_object(reg, js);
  EXPECT_EQ(js.str().front(), '{');
  EXPECT_NE(js.str().find("\"counters\":{\"c\":1}"), std::string::npos);
  std::ostringstream table;
  print_table(reg, table);
  EXPECT_NE(table.str().find('c'), std::string::npos);
}

// ---- JSON validity under hostile names and values. -------------------

namespace {

// Minimal recursive-descent JSON checker: accepts exactly the RFC 8259
// grammar the exporters are supposed to emit (no NaN/Infinity tokens,
// no raw control characters, balanced structure). Returns true when
// `text` is one complete JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') return ++pos_, true;
      if (c < 0x20) return false;  // raw control char: invalid
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) ==
                   std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start &&
           std::isdigit(static_cast<unsigned char>(s_[pos_ - 1]));
  }

  bool literal(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool is_valid_json(const std::string& text) {
  return JsonChecker(text).valid();
}

}  // namespace

TEST(ObsExport, JsonNumberHandlesNonFiniteValues) {
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_TRUE(is_valid_json(json_number(1e300)));
  EXPECT_TRUE(is_valid_json(json_number(-0.25)));
}

TEST(ObsExport, HostileNamesAndValuesStayValidJson) {
  Registry reg;
  // Names with every character class json_escape must handle.
  reg.counter("quote\"back\\slash").add(1);
  reg.gauge("ctrl\x01\ttab\nnewline").set(
      std::numeric_limits<double>::infinity());
  reg.gauge("nan gauge").set(std::nan(""));
  reg.histogram("h\"ist", {1.0}).add(0.5);
  {
    SpanScope s(reg, "span\\name\"x");
  }
  flush_thread_spans();

  std::ostringstream object;
  write_json_object(reg, object);
  EXPECT_TRUE(is_valid_json(object.str())) << object.str();
  // Non-finite gauges must surface as null, never as bare inf/nan
  // tokens (the "+inf" bucket label is a quoted string, not a token).
  EXPECT_NE(object.str().find(":null"), std::string::npos);
  EXPECT_EQ(object.str().find(":inf"), std::string::npos);
  EXPECT_EQ(object.str().find(":-inf"), std::string::npos);
  EXPECT_EQ(object.str().find(":nan"), std::string::npos);

  std::ostringstream jsonl;
  write_jsonl(reg, jsonl);
  std::istringstream is(jsonl.str());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_TRUE(is_valid_json(line)) << line;
  }
  EXPECT_EQ(lines, 5);
}

TEST(ObsExport, EnvExportDisabledWhenUnset) {
  ::unsetenv("NETMASTER_METRICS_OUT");
  EXPECT_FALSE(maybe_export_env());
}

// ---- End-to-end: fleet run snapshot. ---------------------------------

TEST(ObsIntegration, FleetRunWritesParseableSnapshot) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "netmaster_obs_test_metrics.jsonl";
  ::setenv("NETMASTER_METRICS_OUT", path.string().c_str(), 1);

  // Trip the policy's degradation path once so the snapshot carries a
  // non-zero fallback counter: one training day is below
  // RobustnessConfig::min_training_days.
  const auto profile = synth::make_user(synth::Archetype::kLightUser, 9);
  const UserTrace short_training = synth::generate_trace(profile, 1, 7);
  const UserTrace eval_trace = synth::generate_trace(profile, 2, 8);
  eval::ExperimentConfig cfg;
  cfg.train_days = 7;
  cfg.eval_days = 3;
  const policy::NetMasterPolicy degraded(short_training, cfg.netmaster);
  ASSERT_TRUE(degraded.degraded());
  degraded.run(eval_trace);

  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  const eval::FleetReport report = eval::run_fleet(
      {synth::make_user(synth::Archetype::kOfficeWorker, 1),
       synth::make_user(synth::Archetype::kNightOwl, 2)},
      suite, cfg);
  ::unsetenv("NETMASTER_METRICS_OUT");
  ASSERT_EQ(report.cells.size(), 2 * suite.size());

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "run_fleet did not write " << path;
  std::string content, line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    content += line;
    content += '\n';
  }
  EXPECT_GT(lines, 5);
  // Per-stage span timings from the fleet pipeline.
  for (const char* span : {"\"name\":\"eval.run_fleet\"",
                           "\"name\":\"fleet.cell\"", "\"name\":\"fleet.mine\"",
                           "\"name\":\"fleet.schedule\"",
                           "\"name\":\"fleet.account\"",
                           "\"name\":\"engine.index_build\""}) {
    EXPECT_NE(content.find(span), std::string::npos) << span;
  }
  // Policy decision counters, including the tripped fallback.
  EXPECT_NE(content.find("policy.netmaster.fallback_taken"),
            std::string::npos);
  EXPECT_NE(content.find("policy.netmaster.models_mined"),
            std::string::npos);
  const auto pos = content.find("policy.netmaster.fallback_taken");
  const auto value_pos = content.find("\"value\":", pos);
  ASSERT_NE(value_pos, std::string::npos);
  EXPECT_NE(content[value_pos + 8], '0');  // counter is non-zero

  fs::remove(path);
}

}  // namespace
}  // namespace netmaster::obs
