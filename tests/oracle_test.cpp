// Tests for the clairvoyant oracle policy.
#include <gtest/gtest.h>

#include "policy/baseline.hpp"
#include "policy/oracle.hpp"
#include "sim/accounting.hpp"

namespace netmaster::policy {
namespace {

UserTrace fixture() {
  UserTrace t;
  t.user = 1;
  t.num_days = 1;
  t.app_names = {"a"};
  t.sessions = {{seconds(100), seconds(160)},
                {seconds(500), seconds(530)}};
  t.usages = {{0, seconds(110), seconds(5)}};
  auto bg = [](TimeMs start) {
    NetworkActivity n;
    n.app = 0;
    n.start = start;
    n.duration = seconds(6);
    n.bytes_down = 2000;
    n.deferrable = true;
    return n;
  };
  t.activities = {bg(seconds(10)), bg(seconds(300)), bg(seconds(700))};
  return t;
}

TEST(Oracle, PlacesTransfersInsideNearestSession) {
  const UserTrace t = fixture();
  const sim::PolicyOutcome o = OraclePolicy().run(t);
  ASSERT_EQ(o.transfers.size(), 3u);
  const IntervalSet sessions = t.screen_on_set();
  for (const sim::ExecutedTransfer& tr : o.transfers) {
    EXPECT_TRUE(sessions.contains(tr.start))
        << "transfer at " << tr.start;
  }
  EXPECT_EQ(o.interrupts, 0u);
  EXPECT_TRUE(o.blocked.empty());
  ASSERT_TRUE(o.radio_allowed.has_value());
}

TEST(Oracle, PrefersCloserSessionAnchor) {
  const UserTrace t = fixture();
  const sim::PolicyOutcome o = OraclePolicy().run(t);
  // Activity at 300 s: distance to session-1 end (160 s) is 140 s,
  // distance to session-2 begin (500 s) is 200 s -> prefetch into
  // session 1.
  for (const sim::ExecutedTransfer& tr : o.transfers) {
    if (tr.activity_index == 1) {
      EXPECT_LT(tr.start, seconds(160));
      EXPECT_GE(tr.start, seconds(100));
    }
    if (tr.activity_index == 2) {
      // After the last session: deferred backward into session 2.
      EXPECT_GE(tr.start, seconds(500));
      EXPECT_LT(tr.start, seconds(530));
    }
  }
}

TEST(Oracle, RespectsCapacity) {
  UserTrace t = fixture();
  sched::ProfitConfig tight;
  tight.bandwidth_kbps = 0.001;  // ~60 B per 60 s session
  const sim::PolicyOutcome o = OraclePolicy(tight).run(t);
  // Nothing fits: all activities run in place.
  for (const sim::ExecutedTransfer& tr : o.transfers) {
    EXPECT_EQ(tr.start, t.activities[tr.activity_index].start);
  }
}

TEST(Oracle, NoSessionsFallsBackToBaselineSchedule) {
  UserTrace t = fixture();
  t.sessions.clear();
  t.usages.clear();
  const sim::PolicyOutcome o = OraclePolicy().run(t);
  for (const sim::ExecutedTransfer& tr : o.transfers) {
    EXPECT_EQ(tr.start, t.activities[tr.activity_index].start);
  }
}

TEST(Oracle, EnergyNeverAboveBaseline) {
  const UserTrace t = fixture();
  const RadioPowerParams radio = RadioPowerParams::wcdma();
  const sim::SimReport base =
      sim::account(t, BaselinePolicy().run(t), radio);
  const sim::SimReport oracle =
      sim::account(t, OraclePolicy().run(t), radio);
  EXPECT_LT(oracle.energy_j, base.energy_j);
  EXPECT_LT(oracle.radio_on_ms, base.radio_on_ms);
  // Same bytes moved either way.
  EXPECT_EQ(oracle.bytes_down, base.bytes_down);
}

TEST(Oracle, LeavesUserInitiatedAlone) {
  UserTrace t = fixture();
  NetworkActivity fg;
  fg.app = 0;
  fg.start = seconds(110);
  fg.duration = seconds(2);
  fg.bytes_down = 100;
  fg.user_initiated = true;
  t.activities.insert(t.activities.begin() + 1, fg);
  std::sort(t.activities.begin(), t.activities.end(),
            [](const NetworkActivity& a, const NetworkActivity& b) {
              return a.start < b.start;
            });
  const sim::PolicyOutcome o = OraclePolicy().run(t);
  for (const sim::ExecutedTransfer& tr : o.transfers) {
    if (t.activities[tr.activity_index].user_initiated) {
      EXPECT_EQ(tr.start, t.activities[tr.activity_index].start);
      EXPECT_EQ(tr.duration, t.activities[tr.activity_index].duration);
    }
  }
}

}  // namespace
}  // namespace netmaster::policy
