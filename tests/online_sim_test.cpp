// Tests for the event-driven online simulator, including the
// cross-validation against the plan-based policy path.
#include <gtest/gtest.h>

#include "policy/baseline.hpp"
#include "policy/netmaster.hpp"
#include "service/online_sim.hpp"
#include "sim/accounting.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster::service {
namespace {

struct Traces {
  UserTrace training;
  UserTrace eval;
};

Traces make_traces(synth::Archetype kind = synth::Archetype::kStudent,
                   std::uint64_t seed = 42) {
  const auto profile = synth::make_user(kind, 2);
  const UserTrace full = synth::generate_trace(profile, 21, seed);
  return {full.slice_days(0, 14), full.slice_days(14, 7)};
}

TEST(OnlineSim, ExecutesEveryActivityOnce) {
  const Traces tr = make_traces();
  const OnlineSimResult r =
      run_online(tr.training, tr.eval, policy::NetMasterConfig{});
  ASSERT_EQ(r.outcome.transfers.size(), tr.eval.activities.size());
  std::vector<bool> seen(tr.eval.activities.size(), false);
  for (const sim::ExecutedTransfer& t : r.outcome.transfers) {
    EXPECT_FALSE(seen[t.activity_index]);
    seen[t.activity_index] = true;
  }
  EXPECT_GT(r.events_processed, tr.eval.activities.size());
  EXPECT_GT(r.radio_switches, 0u);
}

TEST(OnlineSim, AccountsCleanly) {
  const Traces tr = make_traces();
  const OnlineSimResult r =
      run_online(tr.training, tr.eval, policy::NetMasterConfig{});
  EXPECT_NO_THROW(
      sim::account(tr.eval, r.outcome, RadioPowerParams::wcdma()));
}

TEST(OnlineSim, SavesLikeThePolicyPath) {
  // The executive cross-check: the online event loop (greedy
  // nearest-opportunity releases) should land in the same savings
  // regime as the plan-based NetMasterPolicy.
  const Traces tr = make_traces();
  const RadioPowerParams radio = RadioPowerParams::wcdma();
  const sim::SimReport base =
      sim::account(tr.eval, policy::BaselinePolicy().run(tr.eval), radio);

  const OnlineSimResult online =
      run_online(tr.training, tr.eval, policy::NetMasterConfig{});
  const sim::SimReport online_rep =
      sim::account(tr.eval, online.outcome, radio);

  const policy::NetMasterPolicy planned(tr.training,
                                        policy::NetMasterConfig{});
  const sim::SimReport planned_rep =
      sim::account(tr.eval, planned.run(tr.eval), radio);

  // Both save substantially...
  EXPECT_LT(online_rep.energy_j, 0.65 * base.energy_j);
  // ...and agree within a modest band (the planned path may win thanks
  // to prefetching and knapsack placement).
  EXPECT_NEAR(online_rep.energy_j, planned_rep.energy_j,
              0.25 * base.energy_j);
}

TEST(OnlineSim, InterruptsMatchPolicyPath) {
  // The wrong-decision rule is identical in both paths, so the counts
  // must agree exactly.
  for (std::uint64_t seed : {42ull, 7ull, 99ull}) {
    const Traces tr = make_traces(synth::Archetype::kStudent, seed);
    const OnlineSimResult online =
        run_online(tr.training, tr.eval, policy::NetMasterConfig{});
    const policy::NetMasterPolicy planned(tr.training,
                                          policy::NetMasterConfig{});
    EXPECT_EQ(online.outcome.interrupts,
              planned.run(tr.eval).interrupts)
        << "seed " << seed;
  }
}

TEST(OnlineSim, CausalityNeverViolated) {
  // Unlike the plan-based path (whose prefetch is an explicitly
  // sanctioned acausality), the online loop may never execute a
  // transfer before its arrival.
  const Traces tr = make_traces();
  const OnlineSimResult r =
      run_online(tr.training, tr.eval, policy::NetMasterConfig{});
  for (const sim::ExecutedTransfer& t : r.outcome.transfers) {
    EXPECT_GE(t.start, tr.eval.activities[t.activity_index].start);
  }
}

TEST(OnlineSim, ScreenOnReleasesPending) {
  // Hand-built: one background arrival shortly before a session; it
  // must release exactly at the session begin.
  UserTrace training;
  training.user = 1;
  training.num_days = 7;
  training.app_names = {"a"};
  for (int day = 0; day < 7; ++day) {
    const TimeMs at = hour_start(day, 12);
    training.sessions.push_back({at, at + 60'000});
    training.usages.push_back({0, at, 5000});
  }
  UserTrace eval = training;
  NetworkActivity bg;
  bg.app = 0;
  bg.start = hour_start(0, 12) - 10 * kMsPerMinute;
  bg.duration = 4000;
  bg.bytes_down = 100;
  bg.deferrable = true;
  eval.activities.insert(eval.activities.begin(), bg);

  policy::NetMasterConfig cfg;
  cfg.enable_duty = false;  // isolate the screen-on release path
  const OnlineSimResult r = run_online(training, eval, cfg);
  bool found = false;
  for (const sim::ExecutedTransfer& t : r.outcome.transfers) {
    if (eval.activities[t.activity_index].deferrable) {
      EXPECT_EQ(t.start, hour_start(0, 12));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(OnlineSim, DutyWakeReleasesUnpredicted) {
  // No sessions at all: pending transfers must ride duty probes.
  UserTrace training;
  training.user = 1;
  training.num_days = 7;
  training.app_names = {"a"};
  UserTrace eval = training;
  NetworkActivity bg;
  bg.app = 0;
  bg.start = hours(3);
  bg.duration = 2000;
  bg.bytes_down = 50;
  bg.deferrable = true;
  eval.activities.push_back(bg);

  const OnlineSimResult r =
      run_online(training, eval, policy::NetMasterConfig{});
  ASSERT_EQ(r.outcome.transfers.size(), 1u);
  EXPECT_GT(r.outcome.transfers[0].start, bg.start);
  EXPECT_EQ(r.outcome.duty_releases, 1u);
  EXPECT_FALSE(r.outcome.wakes.empty());
}

TEST(OnlineSim, DeterministicAcrossRuns) {
  const Traces tr = make_traces();
  const OnlineSimResult a =
      run_online(tr.training, tr.eval, policy::NetMasterConfig{});
  const OnlineSimResult b =
      run_online(tr.training, tr.eval, policy::NetMasterConfig{});
  ASSERT_EQ(a.outcome.transfers.size(), b.outcome.transfers.size());
  for (std::size_t i = 0; i < a.outcome.transfers.size(); ++i) {
    EXPECT_EQ(a.outcome.transfers[i].start, b.outcome.transfers[i].start);
  }
  EXPECT_EQ(a.events_processed, b.events_processed);
}

}  // namespace
}  // namespace netmaster::service
