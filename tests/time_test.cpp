// Tests for the time model.
#include <gtest/gtest.h>

#include "common/time.hpp"

namespace netmaster {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(seconds(1.5), 1500);
  EXPECT_EQ(minutes(2), 120'000);
  EXPECT_EQ(hours(1), 3'600'000);
  EXPECT_DOUBLE_EQ(to_seconds(2500), 2.5);
  EXPECT_EQ(kMsPerDay, 24 * kMsPerHour);
}

TEST(Time, DayAndHourOf) {
  EXPECT_EQ(day_of(0), 0);
  EXPECT_EQ(day_of(kMsPerDay - 1), 0);
  EXPECT_EQ(day_of(kMsPerDay), 1);
  EXPECT_EQ(hour_of(0), 0);
  EXPECT_EQ(hour_of(kMsPerHour), 1);
  EXPECT_EQ(hour_of(kMsPerDay + 5 * kMsPerHour + 7), 5);
  EXPECT_EQ(hour_of(kMsPerDay - 1), 23);
}

TEST(Time, TimeOfDay) {
  EXPECT_EQ(time_of_day(3 * kMsPerDay + 123), 123);
  EXPECT_EQ(time_of_day(42), 42);
}

TEST(Time, DayAndHourStart) {
  EXPECT_EQ(day_start(0), 0);
  EXPECT_EQ(day_start(2), 2 * kMsPerDay);
  EXPECT_EQ(hour_start(1, 3), kMsPerDay + 3 * kMsPerHour);
  EXPECT_EQ(day_of(hour_start(5, 23)), 5);
  EXPECT_EQ(hour_of(hour_start(5, 23)), 23);
}

TEST(Time, WeekendConvention) {
  // Day 0 is a Monday; days 5 and 6 are the weekend, repeating weekly.
  for (int d : {0, 1, 2, 3, 4}) EXPECT_FALSE(is_weekend(d)) << d;
  for (int d : {5, 6}) EXPECT_TRUE(is_weekend(d)) << d;
  EXPECT_FALSE(is_weekend(7));
  EXPECT_TRUE(is_weekend(12));
  EXPECT_TRUE(is_weekend(13));
  EXPECT_FALSE(is_weekend(14));
}

TEST(Time, RoundTripDayHour) {
  for (int day = 0; day < 10; ++day) {
    for (int hour = 0; hour < kHoursPerDay; ++hour) {
      const TimeMs t = hour_start(day, hour);
      EXPECT_EQ(day_of(t), day);
      EXPECT_EQ(hour_of(t), hour);
    }
  }
}

}  // namespace
}  // namespace netmaster
