// Unit tests for the statistics toolkit.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace netmaster {
namespace {

TEST(StreamingStats, EmptyThrows) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), Error);
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.max(), Error);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 42.0);
}

TEST(StreamingStats, KnownSample) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(StreamingStats, AllEqualSamples) {
  StreamingStats s;
  for (int i = 0; i < 100; ++i) s.add(3.25);
  EXPECT_DOUBLE_EQ(s.mean(), 3.25);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.25);
  EXPECT_DOUBLE_EQ(s.max(), 3.25);
  EXPECT_EQ(s.count(), 100u);
}

TEST(StreamingStats, NanRejected) {
  StreamingStats s;
  s.add(1.0);
  s.add(std::nan(""));
  s.add(3.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.rejected(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 4.0);
  EXPECT_FALSE(std::isnan(s.variance()));
}

TEST(StreamingStats, AllNanBehavesAsEmpty) {
  StreamingStats s;
  s.add(std::nan(""));
  s.add(std::nan(""));
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.rejected(), 2u);
  EXPECT_THROW(s.mean(), Error);
}

TEST(StreamingStats, NegativeValues) {
  StreamingStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
}

TEST(Percentile, Basics) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.125), 1.5);  // interpolated
}

TEST(Percentile, SingleElementAndErrors) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.9), 7.0);
  EXPECT_THROW(percentile({}, 0.5), Error);
  EXPECT_THROW(percentile({1.0}, 1.5), Error);
  EXPECT_THROW(percentile({1.0}, -0.1), Error);
}

TEST(Percentile, NanDroppedBeforeRanking) {
  const std::vector<double> v{5.0, std::nan(""), 1.0, std::nan(""), 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  // An all-NaN sample is empty after filtering; q-range errors still
  // win over emptiness.
  EXPECT_THROW(percentile({std::nan("")}, 0.5), Error);
  EXPECT_THROW(percentile({}, 2.0), Error);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceReturnsZero) {
  const std::vector<double> x{3, 3, 3};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
  EXPECT_DOUBLE_EQ(pearson(y, x), 0.0);
}

TEST(Pearson, Errors) {
  EXPECT_THROW(pearson({1.0}, {1.0, 2.0}), Error);
  EXPECT_THROW(pearson({}, {}), Error);
}

TEST(Pearson, BoundedInUnitInterval) {
  // Arbitrary vectors stay in [-1, 1].
  const std::vector<double> x{0.3, 9.1, 2.2, 7.7, 5.0, 0.1};
  const std::vector<double> y{4.4, 1.0, 8.8, 2.1, 9.9, 3.3};
  const double r = pearson(x, y);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
}

TEST(EmpiricalCdf, DistinctValues) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_NEAR(cdf[0].fraction, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(EmpiricalCdf, DuplicatesCollapse) {
  const auto cdf = empirical_cdf({1.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 1.0);
}

TEST(EmpiricalCdf, EmptyInput) {
  EXPECT_TRUE(empirical_cdf({}).empty());
}

TEST(EmpiricalCdf, SingleSample) {
  const auto cdf = empirical_cdf({4.2});
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 4.2);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 1.0);
}

TEST(EmpiricalCdf, AllEqualCollapsesToOnePoint) {
  const auto cdf = empirical_cdf({2.0, 2.0, 2.0, 2.0});
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 1.0);
}

TEST(EmpiricalCdf, NanDropped) {
  const auto cdf = empirical_cdf({std::nan(""), 1.0, std::nan(""), 2.0});
  ASSERT_EQ(cdf.size(), 2u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.5);
  EXPECT_TRUE(empirical_cdf({std::nan("")}).empty());
}

TEST(CdfQuantile, Lookup) {
  const auto cdf = empirical_cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf_quantile(cdf, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf_quantile(cdf, 0.26), 2.0);
  EXPECT_DOUBLE_EQ(cdf_quantile(cdf, 1.0), 4.0);
  EXPECT_THROW(cdf_quantile({}, 0.5), Error);
}

TEST(Histogram, BinningAndSaturation) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // saturates into bin 0
  h.add(55.0);  // saturates into bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.2);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
}

TEST(Histogram, NanRejected) {
  Histogram h(0.0, 10.0, 5);
  h.add(5.0);
  h.add(std::nan(""));
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.rejected(), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(2), 1.0);  // NaN never dilutes fractions
}

TEST(Histogram, Errors) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.count(2), Error);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);  // empty histogram
}

}  // namespace
}  // namespace netmaster
