// netmasterd — run the streaming NetMaster service on a TCP port.
//
// Serves the line protocol of net/protocol.hpp until an in-band
// `shutdown` request arrives. Drive it with examples/netmasterd_loadgen
// or by hand:
//
//   $ ./netmasterd 4242 &
//   $ printf 'user 1 14 21 mail im\nstats\nshutdown\n' | nc 127.0.0.1 4242
//
//   usage: netmasterd [port] [shards]
//     port    TCP port to listen on; 0 picks an ephemeral one (default 0)
//     shards  worker shards owning per-user state (default 4)
#include <cstdlib>
#include <iostream>

#include "daemon/netmasterd.hpp"
#include "net/transport.hpp"

int main(int argc, char** argv) {
  using namespace netmaster;

  const auto port = static_cast<std::uint16_t>(
      argc > 1 ? std::atoi(argv[1]) : 0);
  const int shards = argc > 2 ? std::atoi(argv[2]) : 4;

  daemon::DaemonConfig config;
  config.num_shards = shards;
  daemon::Netmasterd service(config);

  try {
    net::SocketListener listener(port);
    std::cout << "netmasterd: listening on 127.0.0.1:" << listener.port()
              << " with " << shards << " shard(s)\n"
              << "netmasterd: send `shutdown` to stop\n";
    service.serve(listener);  // blocks until an in-band shutdown
  } catch (const std::exception& e) {
    std::cerr << "netmasterd: " << e.what() << "\n";
    return 1;
  }

  std::cout << "netmasterd: stopped\n";
  return 0;
}
