// Middleware walkthrough: drive the §V component stack explicitly —
// monitoring records into the DB (with its 500 KB write cache), the
// mining component retrains and broadcasts, the scheduling component
// answers real-time radio questions and produces an Algorithm 1 plan.
//
//   $ ./middleware_service [seed]
#include <cstdlib>
#include <iostream>

#include "eval/table.hpp"
#include "service/components.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

int main(int argc, char** argv) {
  using namespace netmaster;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const auto profile = synth::make_user(synth::Archetype::kOfficeWorker, 1);
  const UserTrace full = synth::generate_trace(profile, 21, seed);
  const UserTrace training = full.slice_days(0, 14);
  const UserTrace eval_week = full.slice_days(14, 7);

  // 1. Monitoring component feeds the DB.
  service::RecordStore store;  // 500 KB memory write cache
  service::MonitoringComponent monitor(store);
  monitor.observe(training);
  std::cout << "monitoring: " << monitor.event_records()
            << " event-trigger records, " << monitor.sample_records()
            << " timer samples; DB flushed " << store.flush_count()
            << "x (" << store.bytes_flushed() / 1024 << " kB to flash)\n";

  // 2. Mining component retrains and broadcasts to scheduling.
  service::MiningComponent mining(store);
  service::SchedulingComponent scheduling(policy::NetMasterConfig{});
  mining.subscribe([&](const service::MiningComponent::Broadcast& b) {
    scheduling.on_broadcast(b);
    std::cout << "mining: broadcast delivered (" << b.special.count()
              << " special apps)\n";
  });
  mining.retrain(training.user, training.num_days, training.app_names);

  // 3. Real-time adjustment: radio commands through one night.
  auto cmd = [](service::RadioCommand c) {
    return c == service::RadioCommand::kEnable ? "enable" : "disable";
  };
  const TimeMs night = hour_start(2, 3);  // 3 am
  std::cout << "\nreal-time adjustment at 03:00:\n"
            << "  screen off           -> svc data "
            << cmd(scheduling.on_screen_off(night)) << "\n"
            << "  duty wake, no traffic -> svc data "
            << cmd(scheduling.on_duty_wake(night + 30'000, false)) << "\n"
            << "  duty wake, traffic    -> svc data "
            << cmd(scheduling.on_duty_wake(night + 90'000, true)) << "\n"
            << "  special app foreground-> svc data "
            << cmd(scheduling.on_screen_on(night + 120'000, 0)) << "\n"
            << "  radio switches issued: " << scheduling.radio_switches()
            << "\n";

  // 4. Decision making: plan tomorrow's pending screen-off transfers.
  const mining::SlotPredictor predictor(
      mining::HabitModel::mine(training), mining::PredictorConfig{});
  const mining::DayPrediction pred = predictor.predict_day(0);
  std::vector<NetworkActivity> pending;
  for (const NetworkActivity& n : eval_week.activities) {
    if (day_of(n.start) == 0 && n.deferrable &&
        !eval_week.screen_on_at(n.start) &&
        !pred.active_slots.contains(n.start)) {
      pending.push_back(n);
    }
  }
  const sched::OverlapSolution plan = scheduling.decide(
      pred.active_slots.intervals(), pending);
  std::cout << "\ndecision making: " << pending.size()
            << " pending screen-off transfers, " << plan.assignments.size()
            << " packed into " << pred.active_slots.size()
            << " predicted slots (profit "
            << eval::Table::num(plan.total_profit, 1) << " J)\n";

  // 5. End-to-end: the facade evaluates a full week.
  service::NetMasterService service;
  service.train(training);
  const sim::SimReport report = service.evaluate(eval_week);
  std::cout << "\nend-to-end week: energy "
            << eval::Table::num(report.energy_j, 0) << " J, radio-on "
            << eval::Table::num(to_seconds(report.radio_on_ms) / 60, 0)
            << " min, interrupts " << report.interrupts << "\n";
  return 0;
}
