// Habit explorer: mine a synthetic user's traces and print what
// NetMaster learns — hourly activity probabilities, predicted active
// slots, the Pearson regularity matrices, and the detected special
// apps.
//
//   $ ./habit_explorer [archetype 0-7] [seed]
#include <cstdlib>
#include <iostream>

#include "eval/table.hpp"
#include "mining/habits.hpp"
#include "mining/pearson.hpp"
#include "mining/special_apps.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

int main(int argc, char** argv) {
  using namespace netmaster;

  const int kind = argc > 1 ? std::atoi(argv[1]) : 0;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const auto archetype = static_cast<synth::Archetype>(kind % 8);

  const synth::UserProfile profile = synth::make_user(archetype, 1);
  const UserTrace trace = synth::generate_trace(profile, 21, seed);
  std::cout << "Mining 21 days of '" << profile.name << "' (seed " << seed
            << ", " << trace.usages.size() << " launches, "
            << trace.activities.size() << " transfers)\n\n";

  // Hour-level habit profile.
  const mining::HabitModel model = mining::HabitModel::mine(trace);
  const mining::SlotPredictor predictor(model, mining::PredictorConfig{});
  eval::Table habit({"hour", "Pr[u] weekday", "Pr[u] weekend",
                     "mean launches/h", "screen-off syncs/h"});
  const auto& wd = model.stats(mining::DayKind::kWeekday);
  const auto& we = model.stats(mining::DayKind::kWeekend);
  for (int h = 0; h < kHoursPerDay; ++h) {
    habit.add_row({std::to_string(h), eval::Table::num(wd.pr_active[h], 2),
                   eval::Table::num(we.pr_active[h], 2),
                   eval::Table::num(wd.mean_intensity[h], 1),
                   eval::Table::num(wd.mean_net_count[h], 1)});
  }
  habit.print(std::cout);

  // Predicted user-active slots for one weekday and one weekend day.
  for (int day : {0, 5}) {
    const mining::DayPrediction pred = predictor.predict_day(day);
    std::cout << "\npredicted active slots, day " << day
              << (is_weekend(day) ? " (weekend, delta "
                                  : " (weekday, delta ")
              << predictor.delta_for_day(day) << "): ";
    for (const Interval& iv : pred.active_slots.intervals()) {
      std::cout << '[' << hour_of(iv.begin) << "h-"
                << (time_of_day(iv.end) == 0 ? 24
                                             : hour_of(iv.end - 1) + 1)
                << "h) ";
    }
    std::cout << '\n';
  }

  // Day-to-day regularity (the Fig. 4 statistic).
  const mining::CorrelationMatrix days =
      mining::cross_day_matrix(trace, 8);
  std::cout << "\ncross-day Pearson mean (8 days): "
            << eval::Table::num(days.off_diagonal_mean(), 3) << '\n';

  // Special apps (§IV-C.2).
  const mining::SpecialApps special = mining::SpecialApps::detect(trace);
  std::cout << "special apps (" << special.count() << " of "
            << trace.app_names.size() << "): ";
  for (std::size_t i = 0; i < trace.app_names.size(); ++i) {
    if (special.is_special(static_cast<AppId>(i))) {
      std::cout << trace.app_names[i] << ' ';
    }
  }
  std::cout << '\n';
  return 0;
}
