// Trace inspector: generate (or load) a trace, print its §III profile
// statistics, and demonstrate the CSV round trip.
//
//   $ ./trace_inspector                 # synthesize and inspect
//   $ ./trace_inspector trace.csv       # inspect an existing file
#include <cstdlib>
#include <iostream>

#include "common/stats.hpp"
#include "eval/table.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace netmaster;

  UserTrace trace;
  if (argc > 1) {
    std::cout << "loading " << argv[1] << "\n";
    trace = load_trace(argv[1]);
  } else {
    const auto profile =
        synth::make_user(synth::Archetype::kCommuter, 5);
    trace = synth::generate_trace(profile, 7, 42);
    const std::string path = "commuter_week.csv";
    save_trace(path, trace);
    std::cout << "synthesized one week of '" << profile.name
              << "' and saved it to " << path << "\n";
    // Round-trip check: reload and compare.
    const UserTrace back = load_trace(path);
    std::cout << "round trip "
              << (back.activities == trace.activities ? "OK" : "MISMATCH")
              << "\n";
  }

  std::cout << "\nuser " << trace.user << ", " << trace.num_days
            << " days, " << trace.app_names.size() << " apps, "
            << trace.sessions.size() << " sessions, "
            << trace.usages.size() << " launches, "
            << trace.activities.size() << " transfers\n\n";

  const TrafficSplit split = traffic_split(trace);
  const ScreenUtilization util = screen_utilization(trace);
  eval::Table summary({"metric", "value"});
  summary.add_row({"screen-off activity fraction",
                   eval::Table::pct(split.screen_off_activity_fraction())});
  summary.add_row({"screen-off byte fraction",
                   eval::Table::pct(split.screen_off_byte_fraction())});
  summary.add_row({"avg session (s)",
                   eval::Table::num(util.avg_session_s, 1)});
  summary.add_row({"radio utilization in sessions",
                   eval::Table::pct(util.radio_utilization)});
  const RateSamples rates = transfer_rate_samples(trace);
  if (!rates.screen_on_kbps.empty()) {
    summary.add_row({"p90 screen-on rate (kB/s)",
                     eval::Table::num(
                         percentile(rates.screen_on_kbps, 0.9), 2)});
  }
  if (!rates.screen_off_kbps.empty()) {
    summary.add_row({"p90 screen-off rate (kB/s)",
                     eval::Table::num(
                         percentile(rates.screen_off_kbps, 0.9), 2)});
  }
  summary.print(std::cout);

  std::cout << "\nhourly usage intensity (launches per hour of day):\n";
  const IntensityVector intensity = usage_intensity(trace);
  double peak = 1.0;
  for (double v : intensity) peak = std::max(peak, v);
  for (int h = 0; h < kHoursPerDay; ++h) {
    const int bars = static_cast<int>(40.0 * intensity[h] / peak);
    std::cout << (h < 10 ? " " : "") << h << "h |"
              << std::string(bars, '#') << ' ' << intensity[h] << '\n';
  }
  return 0;
}
