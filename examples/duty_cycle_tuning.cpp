// Duty-cycle tuning: explore the §IV-C.2 sleep schemes over an idle
// night and over real phone usage — how sleep interval, back-off cap
// and scheme trade radio overhead against wake-up latency.
//
//   $ ./duty_cycle_tuning [seed]
#include <cstdlib>
#include <iostream>

#include "duty/duty_cycle.hpp"
#include "eval/experiments.hpp"
#include "eval/table.hpp"
#include "policy/netmaster.hpp"
#include "synth/presets.hpp"

int main(int argc, char** argv) {
  using namespace netmaster;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // Part 1: pure idle window (8-hour night), all schemes and intervals.
  std::cout << "8-hour idle night: wake-ups and radio-on by scheme\n\n";
  eval::Table idle({"scheme", "T (s)", "backoff cap", "wake-ups",
                    "radio-on (s)"});
  const Interval night{0, 8 * kMsPerHour};
  struct Row {
    duty::SleepScheme scheme;
    const char* name;
  };
  for (const Row& row : {Row{duty::SleepScheme::kExponential, "exponential"},
                         Row{duty::SleepScheme::kFixed, "fixed"},
                         Row{duty::SleepScheme::kRandom, "random"}}) {
    for (DurationMs sleep_s : {10, 30, 120}) {
      duty::DutyConfig cfg;
      cfg.scheme = row.scheme;
      cfg.initial_sleep_ms = sleep_s * kMsPerSecond;
      cfg.seed = seed;
      const auto wakes = duty::simulate_idle_window(cfg, night);
      idle.add_row({row.name, std::to_string(sleep_s),
                    std::to_string(1 << cfg.max_backoff_exponent),
                    std::to_string(wakes.size()),
                    eval::Table::num(
                        to_seconds(duty::total_wake_time(wakes)), 0)});
    }
  }
  idle.print(std::cout);

  // Part 2: back-off cap sweep under the full NetMaster policy.
  std::cout << "\nback-off cap sweep under NetMaster (student volunteer)\n\n";
  eval::ExperimentConfig cfg;
  cfg.seed = seed;
  const auto profile = synth::make_user(synth::Archetype::kStudent, 2);
  const eval::VolunteerTraces traces = eval::make_traces(profile, cfg);

  eval::Table sweep({"max backoff", "wake-ups", "duty energy (J)",
                     "duty releases", "mean deferral (s)"});
  for (int exponent : {0, 2, 4, 6, 8}) {
    policy::NetMasterConfig nm = cfg.netmaster;
    nm.duty.max_backoff_exponent = exponent;
    const policy::NetMasterPolicy policy(traces.training, nm);
    const sim::SimReport rep = sim::account(
        traces.eval, policy.run(traces.eval), nm.profit.radio);
    sweep.add_row({std::to_string(1 << exponent),
                   std::to_string(rep.wake_count),
                   eval::Table::num(rep.duty_energy_j, 1),
                   std::to_string(rep.deferred_count),
                   eval::Table::num(rep.mean_deferral_latency_s, 0)});
  }
  sweep.print(std::cout);
  std::cout << "\nlarger caps sleep longer (less probe energy) but make "
               "unpredicted transfers wait longer for a wake-up.\n";
  return 0;
}
