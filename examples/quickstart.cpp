// Quickstart: generate a synthetic user, train NetMaster on two weeks
// of usage, evaluate one week, and print the headline numbers —
// the 30-second tour of the library.
//
//   $ ./quickstart [seed]
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "eval/battery.hpp"
#include "eval/experiments.hpp"
#include "eval/table.hpp"
#include "synth/presets.hpp"

int main(int argc, char** argv) {
  using namespace netmaster;

  eval::ExperimentConfig config;
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  const synth::UserProfile user =
      synth::make_user(synth::Archetype::kOfficeWorker, 1);

  std::cout << "NetMaster quickstart — user '" << user.name
            << "', train " << config.train_days << "d, eval "
            << config.eval_days << "d, seed " << config.seed << "\n\n";

  const eval::VolunteerComparison cmp =
      eval::compare_policies(user, config);

  eval::Table table({"policy", "energy (J)", "saving", "radio-on (min)",
                     "avg down (kB/s)", "affected", "interrupts"});
  for (const eval::ComparisonRow& row : cmp.rows) {
    table.add_row({row.policy, eval::Table::num(row.report.energy_j, 1),
                   eval::Table::pct(row.energy_saving),
                   eval::Table::num(to_seconds(row.report.radio_on_ms) / 60.0, 1),
                   eval::Table::num(row.report.avg_down_rate_kbps, 2),
                   eval::Table::pct(row.report.affected_fraction),
                   std::to_string(row.report.interrupts)});
  }
  table.print(std::cout);

  std::cout << "\nBaseline usages: " << cmp.baseline.total_usages
            << ", activities moved "
            << (cmp.baseline.bytes_down + cmp.baseline.bytes_up) / 1024
            << " kB over " << cmp.baseline.horizon_ms / kMsPerDay
            << " days\n";
  std::cout << "Radio battery drain: stock "
            << eval::Table::pct(eval::battery_fraction_per_day(
                   cmp.rows[0].report.energy_j, config.eval_days))
            << "/day -> NetMaster "
            << eval::Table::pct(eval::battery_fraction_per_day(
                   cmp.rows[2].report.energy_j, config.eval_days))
            << "/day\n";
  return 0;
}
