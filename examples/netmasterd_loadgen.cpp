// netmasterd_loadgen — replay a deterministic synthetic fleet against
// a running netmasterd over TCP.
//
// Builds the same seeded LoadPlan the daemon tests and the throughput
// bench use (archetype-cycling users, events sorted by time with the
// screen-off-before-screen-on tie rule), streams it down one
// connection, then fetches every user's schedule and the daemon stats.
//
//   usage: netmasterd_loadgen <port> [users] [train_days] [eval_days]
//                             [seed] [--shutdown]
//     --shutdown  also stop the daemon after the run
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "daemon/loadgen.hpp"
#include "net/transport.hpp"

int main(int argc, char** argv) {
  using namespace netmaster;

  if (argc < 2) {
    std::cerr << "usage: netmasterd_loadgen <port> [users] [train_days] "
                 "[eval_days] [seed] [--shutdown]\n";
    return 2;
  }
  bool shutdown_after = false;
  if (std::strcmp(argv[argc - 1], "--shutdown") == 0) {
    shutdown_after = true;
    --argc;
  }
  const auto port =
      static_cast<std::uint16_t>(std::atoi(argv[1]));
  daemon::LoadConfig load;
  if (argc > 2) load.users = std::atoi(argv[2]);
  if (argc > 3) load.train_days = std::atoi(argv[3]);
  if (argc > 4) load.eval_days = std::atoi(argv[4]);
  if (argc > 5) load.seed = std::strtoull(argv[5], nullptr, 10);

  try {
    const daemon::LoadPlan plan = daemon::build_load_plan(load);
    const std::vector<std::string> lines =
        daemon::plan_request_lines(plan);
    std::cout << "loadgen: " << plan.users.size() << " users, "
              << plan.events.size() << " events, seed " << load.seed
              << "\n";

    net::SocketConnection conn(net::TcpStream::connect("127.0.0.1", port));
    std::string reply;
    const auto start = std::chrono::steady_clock::now();
    std::size_t errors = 0;
    for (const std::string& line : lines) {
      conn.write_line(line);
      if (!conn.read_line(reply)) {
        std::cerr << "loadgen: connection closed mid-stream\n";
        return 1;
      }
      if (reply.rfind("ok", 0) != 0) {
        ++errors;
        std::cerr << "loadgen: " << line << " -> " << reply << "\n";
      }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    conn.write_line("drain");
    conn.read_line(reply);
    for (const daemon::LoadUser& user : plan.users) {
      conn.write_line("get-schedule " +
                      std::to_string(user.session.user));
      if (conn.read_line(reply)) {
        std::cout << "user " << user.session.user << ": " << reply
                  << "\n";
      }
    }
    conn.write_line("stats");
    if (conn.read_line(reply)) std::cout << reply << "\n";

    std::cout << "loadgen: " << lines.size() << " requests in " << seconds
              << "s ("
              << (seconds > 0.0
                      ? static_cast<double>(lines.size()) / seconds
                      : 0.0)
              << " req/s), " << errors << " errors\n";
    if (shutdown_after) {
      conn.write_line("shutdown");
      conn.read_line(reply);
      std::cout << "loadgen: " << reply << "\n";
    }
    conn.close();
    return errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "loadgen: " << e.what() << "\n";
    return 1;
  }
}
