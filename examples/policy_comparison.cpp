// Policy comparison across the whole 8-user study population: baseline,
// fixed-interval delay, batch-N, delay&batch, NetMaster and the oracle,
// with the full metric set. A wider view than the paper's 3-volunteer
// table (Fig. 7).
//
//   $ ./policy_comparison [seed]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/stats.hpp"
#include "eval/experiments.hpp"
#include "eval/table.hpp"
#include "policy/baseline.hpp"
#include "policy/batch.hpp"
#include "policy/delay.hpp"
#include "policy/delay_batch.hpp"
#include "policy/netmaster.hpp"
#include "policy/oracle.hpp"
#include "synth/presets.hpp"

int main(int argc, char** argv) {
  using namespace netmaster;

  eval::ExperimentConfig cfg;
  if (argc > 1) cfg.seed = std::strtoull(argv[1], nullptr, 10);
  const RadioPowerParams radio = cfg.netmaster.profit.radio;

  std::cout << "Policy comparison over the 8-user study population "
            << "(train " << cfg.train_days << "d, eval " << cfg.eval_days
            << "d, seed " << cfg.seed << ")\n\n";

  StreamingStats nm_saving, oracle_saving;
  for (const synth::UserProfile& profile : synth::study_population()) {
    const eval::VolunteerTraces traces = eval::make_traces(profile, cfg);

    std::vector<std::unique_ptr<policy::Policy>> policies;
    policies.push_back(std::make_unique<policy::BaselinePolicy>());
    policies.push_back(std::make_unique<policy::DelayPolicy>(seconds(60)));
    policies.push_back(std::make_unique<policy::BatchPolicy>(5));
    policies.push_back(
        std::make_unique<policy::DelayBatchPolicy>(seconds(60)));
    policies.push_back(std::make_unique<policy::NetMasterPolicy>(
        traces.training, cfg.netmaster));
    policies.push_back(
        std::make_unique<policy::OraclePolicy>(cfg.netmaster.profit));

    eval::Table table({"policy", "energy (J)", "saving", "radio-on (min)",
                       "avg down (kB/s)", "affected", "deferrals",
                       "mean wait (s)"});
    double base_energy = 0.0;
    for (const auto& p : policies) {
      const sim::SimReport rep =
          sim::account(traces.eval, p->run(traces.eval), radio);
      if (p->name() == "baseline") base_energy = rep.energy_j;
      const double saving =
          base_energy > 0.0 ? 1.0 - rep.energy_j / base_energy : 0.0;
      if (p->name() == "netmaster") nm_saving.add(saving);
      if (p->name() == "oracle") oracle_saving.add(saving);
      table.add_row(
          {p->name(), eval::Table::num(rep.energy_j, 0),
           eval::Table::pct(saving),
           eval::Table::num(to_seconds(rep.radio_on_ms) / 60.0, 1),
           eval::Table::num(rep.avg_down_rate_kbps, 2),
           eval::Table::pct(rep.affected_fraction),
           std::to_string(rep.deferred_count),
           eval::Table::num(rep.mean_deferral_latency_s, 0)});
    }
    std::cout << "== user " << profile.id << " (" << profile.name
              << ") ==\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "population averages: NetMaster saving "
            << eval::Table::pct(nm_saving.mean()) << ", oracle "
            << eval::Table::pct(oracle_saving.mean()) << '\n';
  return 0;
}
