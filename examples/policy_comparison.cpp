// Policy comparison across the whole 8-user study population: the
// standard §VI suite (baseline, oracle, NetMaster, delay&batch at
// 10/20/60 s) extended with fixed delay-60 and batch-5, with the full
// metric set. A wider view than the paper's 3-volunteer table (Fig. 7).
//
// One eval::EvalSession prepares every user's traces, index and
// baseline; one eval::run_fleet call evaluates the whole grid. The
// per-user tables come from the fleet cells and the population
// averages from the per-policy aggregates.
//
//   $ ./policy_comparison [seed]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "eval/fleet.hpp"
#include "eval/session.hpp"
#include "eval/table.hpp"
#include "policy/batch.hpp"
#include "policy/delay.hpp"
#include "synth/presets.hpp"

int main(int argc, char** argv) {
  using namespace netmaster;

  eval::ExperimentConfig cfg;
  if (argc > 1) cfg.seed = std::strtoull(argv[1], nullptr, 10);

  std::cout << "Policy comparison over the 8-user study population "
            << "(train " << cfg.train_days << "d, eval " << cfg.eval_days
            << "d, seed " << cfg.seed << ")\n\n";

  auto suite = eval::standard_policy_suite(cfg.netmaster);
  suite.push_back({"delay-60s",
                   [](const UserTrace&) {
                     return std::make_unique<policy::DelayPolicy>(
                         seconds(60));
                   },
                   {}});
  suite.push_back({"batch-5",
                   [](const UserTrace&) {
                     return std::make_unique<policy::BatchPolicy>(5);
                   },
                   {}});

  const eval::EvalSession session(synth::study_population(), cfg);
  const eval::FleetReport report = eval::run_fleet(session, suite);

  for (std::size_t u = 0; u < session.num_users(); ++u) {
    std::cout << "== user " << session.user_id(u) << " ("
              << session.profile_name(u) << ") ==\n";
    if (!session.ok(u)) {
      std::cout << "  skipped: " << session.prep_error(u) << "\n\n";
      continue;
    }
    eval::Table table({"policy", "energy (J)", "saving", "radio-on (min)",
                       "avg down (kB/s)", "affected", "deferrals",
                       "mean wait (s)"});
    for (std::size_t p = 0; p < suite.size(); ++p) {
      const eval::FleetCell& cell = report.at(u, p);
      if (cell.failed) {
        std::cout << "  " << cell.policy << " failed: " << cell.error
                  << "\n";
        continue;
      }
      const sim::SimReport& rep = cell.report;
      table.add_row(
          {cell.policy, eval::Table::num(rep.energy_j, 0),
           eval::Table::pct(cell.energy_saving),
           eval::Table::num(to_seconds(rep.radio_on_ms) / 60.0, 1),
           eval::Table::num(rep.avg_down_rate_kbps, 2),
           eval::Table::pct(rep.affected_fraction),
           std::to_string(rep.deferred_count),
           eval::Table::num(rep.mean_deferral_latency_s, 0)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  double nm_saving = 0.0, oracle_saving = 0.0;
  for (const eval::FleetAggregate& agg : report.aggregates) {
    if (agg.policy == "netmaster") nm_saving = agg.energy_saving.mean();
    if (agg.policy == "oracle") oracle_saving = agg.energy_saving.mean();
  }
  std::cout << "population averages: NetMaster saving "
            << eval::Table::pct(nm_saving) << ", oracle "
            << eval::Table::pct(oracle_saving) << '\n';
  if (!report.failures.size()) return 0;
  std::cerr << report.failures.size()
            << " isolated failure(s) — see messages above\n";
  return 0;
}
