// netmaster_cli — command-line driver over the library, for working
// with traces on disk:
//
//   netmaster_cli generate <archetype 0-7> <days> <seed> <out.csv>
//   netmaster_cli inspect  <trace.csv>
//   netmaster_cli evaluate <training.csv> <eval.csv> [policy]
//   netmaster_cli compare  [seed]
//
// Policies for `evaluate`: baseline, oracle, netmaster (default),
// delay:<seconds>, batch:<n>, delaybatch:<seconds>.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "eval/battery.hpp"
#include "eval/experiments.hpp"
#include "eval/session.hpp"
#include "eval/table.hpp"
#include "policy/baseline.hpp"
#include "policy/batch.hpp"
#include "policy/delay.hpp"
#include "policy/delay_batch.hpp"
#include "policy/netmaster.hpp"
#include "policy/oracle.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"

namespace {

using namespace netmaster;

int usage() {
  std::cerr
      << "usage:\n"
      << "  netmaster_cli generate <archetype 0-7> <days> <seed> <out.csv>\n"
      << "  netmaster_cli inspect  <trace.csv>\n"
      << "  netmaster_cli evaluate <training.csv> <eval.csv> [policy]\n"
      << "  netmaster_cli compare  [seed]\n"
      << "policies: baseline | oracle | netmaster | delay:<s> | "
         "batch:<n> | delaybatch:<s>\n";
  return 2;
}

std::unique_ptr<policy::Policy> make_policy(const std::string& spec,
                                            const UserTrace& training) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  if (kind == "baseline") return std::make_unique<policy::BaselinePolicy>();
  if (kind == "oracle") return std::make_unique<policy::OraclePolicy>();
  if (kind == "netmaster") {
    return std::make_unique<policy::NetMasterPolicy>(
        training, policy::NetMasterConfig{});
  }
  if (kind == "delay") {
    return std::make_unique<policy::DelayPolicy>(
        seconds(std::strtod(arg.c_str(), nullptr)));
  }
  if (kind == "batch") {
    return std::make_unique<policy::BatchPolicy>(
        static_cast<std::size_t>(std::strtoul(arg.c_str(), nullptr, 10)));
  }
  if (kind == "delaybatch") {
    return std::make_unique<policy::DelayBatchPolicy>(
        seconds(std::strtod(arg.c_str(), nullptr)));
  }
  throw Error("unknown policy spec: " + spec);
}

int cmd_generate(int argc, char** argv) {
  if (argc != 6) return usage();
  const auto archetype =
      static_cast<synth::Archetype>(std::atoi(argv[2]) % 8);
  const int days = std::atoi(argv[3]);
  const auto seed = std::strtoull(argv[4], nullptr, 10);
  const synth::UserProfile profile = synth::make_user(archetype, 1);
  const UserTrace trace = synth::generate_trace(profile, days, seed);
  save_trace(argv[5], trace);
  std::cout << "wrote " << days << " days of '" << profile.name << "' ("
            << trace.activities.size() << " transfers, "
            << trace.usages.size() << " launches) to " << argv[5] << "\n";
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc != 3) return usage();
  const UserTrace trace = load_trace(argv[2]);
  const TrafficSplit split = traffic_split(trace);
  const ScreenUtilization util = screen_utilization(trace);
  eval::Table t({"metric", "value"});
  t.add_row({"user", std::to_string(trace.user)});
  t.add_row({"days", std::to_string(trace.num_days)});
  t.add_row({"apps", std::to_string(trace.app_names.size())});
  t.add_row({"sessions", std::to_string(trace.sessions.size())});
  t.add_row({"launches", std::to_string(trace.usages.size())});
  t.add_row({"transfers", std::to_string(trace.activities.size())});
  t.add_row({"screen-off activity fraction",
             eval::Table::pct(split.screen_off_activity_fraction())});
  t.add_row({"avg session (s)", eval::Table::num(util.avg_session_s, 1)});
  t.add_row({"session radio utilization",
             eval::Table::pct(util.radio_utilization)});
  t.print(std::cout);
  return 0;
}

int cmd_evaluate(int argc, char** argv) {
  if (argc != 4 && argc != 5) return usage();
  const UserTrace training = load_trace(argv[2]);
  const UserTrace eval_trace = load_trace(argv[3]);
  const std::string spec = argc == 5 ? argv[4] : "netmaster";

  const RadioPowerParams radio = RadioPowerParams::wcdma();
  const auto p = make_policy(spec, training);
  const sim::SimReport base = sim::account(
      eval_trace, policy::BaselinePolicy().run(eval_trace), radio);
  const sim::SimReport rep =
      sim::account(eval_trace, p->run(eval_trace), radio);

  eval::Table t({"metric", spec, "baseline"});
  t.add_row({"energy (J)", eval::Table::num(rep.energy_j, 0),
             eval::Table::num(base.energy_j, 0)});
  t.add_row({"saving",
             eval::Table::pct(base.energy_j > 0
                                  ? 1.0 - rep.energy_j / base.energy_j
                                  : 0.0),
             "0%"});
  t.add_row({"radio-on (min)",
             eval::Table::num(to_seconds(rep.radio_on_ms) / 60.0, 1),
             eval::Table::num(to_seconds(base.radio_on_ms) / 60.0, 1)});
  t.add_row({"avg down (kB/s)",
             eval::Table::num(rep.avg_down_rate_kbps, 2),
             eval::Table::num(base.avg_down_rate_kbps, 2)});
  t.add_row({"affected users", eval::Table::pct(rep.affected_fraction, 2),
             "0.00%"});
  t.add_row({"battery/day",
             eval::Table::pct(eval::battery_fraction_per_day(
                 rep.energy_j, eval_trace.num_days)),
             eval::Table::pct(eval::battery_fraction_per_day(
                 base.energy_j, eval_trace.num_days))});
  t.print(std::cout);
  return 0;
}

int cmd_compare(int argc, char** argv) {
  eval::ExperimentConfig cfg;
  if (argc > 2) cfg.seed = std::strtoull(argv[2], nullptr, 10);
  const eval::EvalSession session(synth::volunteer_population(), cfg);
  const auto results = eval::compare_all(session);
  eval::Table t({"volunteer", "policy", "saving", "affected"});
  for (std::size_t u = 0; u < results.size(); ++u) {
    const auto& r = results[u];
    if (!session.ok(u)) {
      std::cerr << "volunteer " << r.user << " (" << r.profile_name
                << ") could not be prepared: " << session.prep_error(u)
                << "\n";
      continue;
    }
    for (const auto& row : r.rows) {
      t.add_row({std::to_string(r.user) + ":" + r.profile_name,
                 row.policy, eval::Table::pct(row.energy_saving),
                 eval::Table::pct(row.report.affected_fraction, 2)});
    }
  }
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "inspect") return cmd_inspect(argc, argv);
    if (cmd == "evaluate") return cmd_evaluate(argc, argv);
    if (cmd == "compare") return cmd_compare(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
