// Fig. 1 — Network activity profiling over the 8-user study population.
//
// (a) Fraction of network activities happening screen-on vs screen-off
//     per user; the paper reports 40.98% screen-off on average.
// (b) Transfer-rate CDF by screen state; the paper reports 90% of
//     screen-off transfers below 1 kB/s and 90% of screen-on transfers
//     below 5 kB/s.
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"
#include "trace/trace_stats.hpp"

namespace {

using namespace netmaster;

constexpr int kDays = 21;  // the paper's 3-week study

TraceSet study_traces() {
  const auto profiles = synth::study_population();
  return synth::generate_population(profiles, kDays,
                                    bench::kDefaultSeed);
}

void print_figure() {
  bench::banner("Fig. 1 — network activity profiling",
                "screen-off = 40.98% of activities; p90 rate < 1 kB/s "
                "(off) / < 5 kB/s (on)");
  const TraceSet traces = study_traces();

  eval::Table a({"user", "screen-on frac", "screen-off frac",
                 "screen-off bytes frac"});
  double off_sum = 0.0;
  std::vector<double> on_rates, off_rates;
  for (const UserTrace& t : traces.users) {
    const TrafficSplit split = traffic_split(t);
    const double off = split.screen_off_activity_fraction();
    off_sum += off;
    a.add_row({std::to_string(t.user), eval::Table::pct(1.0 - off),
               eval::Table::pct(off),
               eval::Table::pct(split.screen_off_byte_fraction())});
    const RateSamples rates = transfer_rate_samples(t);
    on_rates.insert(on_rates.end(), rates.screen_on_kbps.begin(),
                    rates.screen_on_kbps.end());
    off_rates.insert(off_rates.end(), rates.screen_off_kbps.begin(),
                     rates.screen_off_kbps.end());
  }
  std::cout << "\n(a) activity distribution by screen state\n";
  bench::emit(a);
  std::cout << "measured average screen-off fraction: "
            << eval::Table::pct(off_sum /
                                static_cast<double>(traces.users.size()))
            << "  (paper: 40.98%)\n";

  std::cout << "\n(b) transfer-rate CDF (kB/s)\n";
  eval::Table b({"quantile", "screen-on", "screen-off"});
  const auto on_cdf = empirical_cdf(on_rates);
  const auto off_cdf = empirical_cdf(off_rates);
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    b.add_row({eval::Table::pct(q, 0),
               eval::Table::num(cdf_quantile(on_cdf, q), 2),
               eval::Table::num(cdf_quantile(off_cdf, q), 2)});
  }
  bench::emit(b);
  std::cout << "measured p90: screen-on "
            << eval::Table::num(cdf_quantile(on_cdf, 0.9), 2)
            << " kB/s (paper < 5), screen-off "
            << eval::Table::num(cdf_quantile(off_cdf, 0.9), 2)
            << " kB/s (paper < 1)\n\n";
}

void BM_TrafficSplit(benchmark::State& state) {
  const TraceSet traces = study_traces();
  for (auto _ : state) {
    for (const UserTrace& t : traces.users) {
      benchmark::DoNotOptimize(traffic_split(t));
    }
  }
}
BENCHMARK(BM_TrafficSplit);

void BM_GenerateStudyPopulation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(study_traces());
  }
}
BENCHMARK(BM_GenerateStudyPopulation);

}  // namespace

NETMASTER_BENCH_MAIN()
