// Shared scaffolding for the figure-regeneration benches.
//
// Every bench binary prints the paper figure's series as ASCII tables
// (and a paper-vs-measured note), then runs its registered
// google-benchmark timings. Figures are regenerated deterministically
// from the seed printed in the header.
//
// Machine-readable telemetry: everything routed through banner()/
// emit()/record_scalar() is captured by a process-wide recorder and
// dumped as `bench/<binary>.json` when main() finishes — figure series
// (headers + rows), scalar results, and the obs metrics snapshot
// (counters, histograms, spans) in one object. Set
// NETMASTER_BENCH_JSON_DIR to redirect the output directory, and
// NETMASTER_METRICS_OUT to additionally write the JSON-lines metrics
// snapshot.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "eval/table.hpp"
#include "obs/export.hpp"

namespace netmaster::bench {

inline constexpr std::uint64_t kDefaultSeed = 42;

/// Peak resident set size (VmHWM) of this process in bytes, read from
/// /proc/self/status; 0 when the proc interface is unavailable. Every
/// bench JSON carries it so footprint regressions show up in the same
/// dump as the timing ones.
inline std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::uint64_t kib = 0;
      std::istringstream fields(line.substr(6));
      fields >> kib;
      return kib * 1024;
    }
  }
  return 0;
}

/// Captures banners, figure tables and scalar results for the
/// machine-readable bench dump.
class FigureRecorder {
 public:
  void add_banner(std::string figure, std::string claim) {
    banners_.push_back({std::move(figure), std::move(claim)});
  }

  void add_table(const eval::Table& table, std::string name) {
    if (name.empty()) {
      name = "series_" + std::to_string(series_.size() + 1);
    }
    series_.push_back({std::move(name), table.headers(), table.rows()});
  }

  void add_scalar(std::string name, double value) {
    scalars_.push_back({std::move(name), value});
  }

  /// Writes bench/<bench_name>.json (or $NETMASTER_BENCH_JSON_DIR/…).
  /// Failures are reported to stderr, never thrown: telemetry must not
  /// fail a bench.
  void write(const std::string& bench_name) const {
    namespace fs = std::filesystem;
    const char* env_dir = std::getenv("NETMASTER_BENCH_JSON_DIR");
    const fs::path dir =
        (env_dir != nullptr && *env_dir != '\0') ? fs::path(env_dir)
                                                 : fs::path("bench");
    std::error_code ec;
    fs::create_directories(dir, ec);
    const fs::path path = dir / (bench_name + ".json");
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::cerr << "bench: cannot write " << path.string() << "\n";
      return;
    }
    out << "{\"bench\":\"" << obs::json_escape(bench_name)
        << "\",\"seed\":" << kDefaultSeed << ",\"figures\":[";
    for (std::size_t i = 0; i < banners_.size(); ++i) {
      out << (i > 0 ? "," : "") << "{\"figure\":\""
          << obs::json_escape(banners_[i].first) << "\",\"claim\":\""
          << obs::json_escape(banners_[i].second) << "\"}";
    }
    out << "],\"series\":[";
    for (std::size_t i = 0; i < series_.size(); ++i) {
      const Series& s = series_[i];
      out << (i > 0 ? "," : "") << "{\"name\":\""
          << obs::json_escape(s.name) << "\",\"headers\":[";
      for (std::size_t c = 0; c < s.headers.size(); ++c) {
        out << (c > 0 ? "," : "") << '"' << obs::json_escape(s.headers[c])
            << '"';
      }
      out << "],\"rows\":[";
      for (std::size_t r = 0; r < s.rows.size(); ++r) {
        out << (r > 0 ? "," : "") << '[';
        for (std::size_t c = 0; c < s.rows[r].size(); ++c) {
          out << (c > 0 ? "," : "") << '"'
              << obs::json_escape(s.rows[r][c]) << '"';
        }
        out << ']';
      }
      out << "]}";
    }
    out << "],\"scalars\":{\"peak_rss_bytes\":" << peak_rss_bytes();
    for (std::size_t i = 0; i < scalars_.size(); ++i) {
      // json_number keeps a NaN/inf scalar (e.g. a speedup with a
      // zero-time denominator) from corrupting the whole dump.
      out << ",\"" << obs::json_escape(scalars_[i].first)
          << "\":" << obs::json_number(scalars_[i].second);
    }
    out << "},\"metrics\":";
    obs::write_json_object(obs::Registry::global(), out);
    out << "}\n";
  }

 private:
  struct Series {
    std::string name;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  std::vector<std::pair<std::string, std::string>> banners_;
  std::vector<Series> series_;
  std::vector<std::pair<std::string, double>> scalars_;
};

inline FigureRecorder& recorder() {
  static FigureRecorder r;
  return r;
}

/// Prints the figure banner (and records it for the JSON dump).
inline void banner(const std::string& figure, const std::string& claim) {
  std::cout << "==================================================\n"
            << figure << "\n"
            << "paper: " << claim << "\n"
            << "seed: " << kDefaultSeed << "\n"
            << "==================================================\n";
  recorder().add_banner(figure, claim);
}

/// Prints a figure table to stdout and records it as a named series.
inline void emit(const eval::Table& table, const std::string& name = "") {
  table.print(std::cout);
  recorder().add_table(table, name);
}

/// Records one scalar result (e.g. a speedup) for the JSON dump.
inline void record_scalar(const std::string& name, double value) {
  recorder().add_scalar(name, value);
}

/// Dumps the figure JSON and honors NETMASTER_METRICS_OUT. Called by
/// NETMASTER_BENCH_MAIN — also on the bad-flag path, so partial runs
/// still leave telemetry behind.
inline void finalize(const char* argv0) {
  recorder().write(std::filesystem::path(argv0).filename().string());
  obs::maybe_export_env();
}

}  // namespace netmaster::bench

/// Standard main: print the figure (defined per bench as
/// `print_figure()`), then run benchmarks, then dump telemetry.
#define NETMASTER_BENCH_MAIN()                                   \
  int main(int argc, char** argv) {                              \
    print_figure();                                              \
    ::benchmark::Initialize(&argc, argv);                        \
    const bool bad_args =                                        \
        ::benchmark::ReportUnrecognizedArguments(argc, argv);    \
    if (!bad_args) {                                             \
      ::benchmark::RunSpecifiedBenchmarks();                     \
    }                                                            \
    ::benchmark::Shutdown();                                     \
    ::netmaster::bench::finalize(argv[0]);                       \
    return bad_args ? 1 : 0;                                     \
  }
