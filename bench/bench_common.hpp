// Shared scaffolding for the figure-regeneration benches.
//
// Every bench binary prints the paper figure's series as ASCII tables
// (and a paper-vs-measured note), then runs its registered
// google-benchmark timings. Figures are regenerated deterministically
// from the seed printed in the header.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <string>

#include "eval/table.hpp"

namespace netmaster::bench {

inline constexpr std::uint64_t kDefaultSeed = 42;

/// Prints the figure banner.
inline void banner(const std::string& figure, const std::string& claim) {
  std::cout << "==================================================\n"
            << figure << "\n"
            << "paper: " << claim << "\n"
            << "seed: " << kDefaultSeed << "\n"
            << "==================================================\n";
}

}  // namespace netmaster::bench

/// Standard main: print the figure (defined per bench as
/// `print_figure()`), then run benchmarks.
#define NETMASTER_BENCH_MAIN()                                   \
  int main(int argc, char** argv) {                              \
    print_figure();                                              \
    ::benchmark::Initialize(&argc, argv);                        \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {  \
      return 1;                                                  \
    }                                                            \
    ::benchmark::RunSpecifiedBenchmarks();                       \
    ::benchmark::Shutdown();                                     \
    return 0;                                                    \
  }
