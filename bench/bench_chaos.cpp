// Extension — robustness under chaos (the fault-injection spine).
//
// Sweeps fault rates through the full monitoring -> mining -> policy
// pipeline and reports how gracefully NetMaster degrades: energy
// saving, interruption probability, the fraction of users served by
// the safe fallback path, and per-user failure isolation in the fleet
// grid. Also times the chaos machinery itself (injection + repair), so
// its overhead on fleet-scale runs stays visible.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "eval/experiments.hpp"
#include "eval/fleet.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/sanitize.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

constexpr int kUsers = 8;

std::vector<synth::UserProfile> population() {
  std::vector<synth::UserProfile> users;
  users.reserve(kUsers);
  for (int i = 0; i < kUsers; ++i) {
    users.push_back(
        synth::make_user(static_cast<synth::Archetype>(i % 8), i + 1));
  }
  return users;
}

eval::ExperimentConfig config() {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  return cfg;
}

/// Builds the fleet's volunteers with every fault kind applied at
/// `rate` to both halves of each user's data (training raw, eval
/// sanitized — the replay path needs validity).
std::vector<eval::VolunteerTraces> chaos_volunteers(double rate) {
  const eval::ExperimentConfig cfg = config();
  const auto users = population();
  std::vector<eval::VolunteerTraces> volunteers;
  volunteers.reserve(users.size());
  for (std::size_t u = 0; u < users.size(); ++u) {
    eval::ExperimentConfig user_cfg = cfg;
    user_cfg.seed = cfg.seed + u;
    eval::VolunteerTraces v = eval::make_traces(users[u], user_cfg);
    if (rate > 0.0) {
      fault::FaultPlan plan;
      plan.seed = bench::kDefaultSeed + u;
      for (const fault::FaultKind kind : fault::all_fault_kinds()) {
        plan.with(kind, rate);
      }
      v.training = fault::inject_faults(v.training, plan).trace;
      v.eval = fault::sanitize_trace(
                   fault::inject_faults(v.eval, plan).trace)
                   .trace;
    }
    volunteers.push_back(std::move(v));
  }
  return volunteers;
}

void print_figure() {
  bench::banner(
      "Extension — robustness under chaos",
      "graceful degradation: savings shrink, interrupts stay bounded, "
      "no user aborts the fleet (paper §IV-C covers prediction error "
      "only)");
  const eval::ExperimentConfig cfg = config();
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  const std::size_t nm = 2;  // suite order: baseline, oracle, netmaster

  eval::Table t({"fault rate", "saving mean", "saving min",
                 "worst affected", "degraded users", "failed rows"});
  for (const double rate : {0.0, 0.05, 0.1, 0.2, 0.4, 0.7}) {
    const eval::FleetReport report =
        eval::run_fleet(chaos_volunteers(rate), suite, cfg);
    StreamingStats saving;
    double worst_affected = 0.0;
    for (std::size_t u = 0; u < report.num_users; ++u) {
      const eval::FleetCell& cell = report.cell(u, nm);
      if (cell.failed) continue;
      saving.add(cell.energy_saving);
      worst_affected =
          std::max(worst_affected, cell.report.affected_fraction);
    }
    t.add_row({eval::Table::pct(rate, 0),
               eval::Table::pct(saving.mean()),
               eval::Table::pct(saving.min()),
               eval::Table::pct(worst_affected, 2),
               std::to_string(report.aggregates[nm].degraded_cells) +
                   "/" + std::to_string(report.num_users),
               std::to_string(report.failures.size())});
  }

  // Cold start: the whole fleet has one day of history, below the
  // min_training_days gate — every NetMaster cell must take the safe
  // fallback and say so in the report.
  {
    std::vector<eval::VolunteerTraces> volunteers = chaos_volunteers(0.0);
    for (std::size_t u = 0; u < volunteers.size(); ++u) {
      fault::FaultPlan plan;
      plan.seed = bench::kDefaultSeed + u;
      plan.with(fault::FaultKind::kTruncateDays, 1.0);
      volunteers[u].training =
          fault::inject_faults(volunteers[u].training, plan).trace;
    }
    const eval::FleetReport report =
        eval::run_fleet(volunteers, suite, cfg);
    StreamingStats saving;
    double worst_affected = 0.0;
    for (std::size_t u = 0; u < report.num_users; ++u) {
      const eval::FleetCell& cell = report.cell(u, nm);
      saving.add(cell.energy_saving);
      worst_affected =
          std::max(worst_affected, cell.report.affected_fraction);
    }
    t.add_row({"cold start", eval::Table::pct(saving.mean()),
               eval::Table::pct(saving.min()),
               eval::Table::pct(worst_affected, 2),
               std::to_string(report.aggregates[nm].degraded_cells) +
                   "/" + std::to_string(report.num_users),
               std::to_string(report.failures.size())});
  }
  bench::emit(t);
  std::cout << "expected shape: savings degrade smoothly with the "
               "fault rate, zero failed rows (sanitized replay), and "
               "the cold-start fleet runs entirely on the safe "
               "fallback schedule\n\n";
}

// ---- Timings: the chaos machinery itself. ----------------------------

void BM_InjectAllKinds(benchmark::State& state) {
  const eval::VolunteerTraces traces =
      eval::make_traces(population()[0], config());
  fault::FaultPlan plan;
  plan.seed = bench::kDefaultSeed;
  for (const fault::FaultKind kind : fault::all_fault_kinds()) {
    plan.with(kind, 0.2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::inject_faults(traces.training, plan));
  }
}
BENCHMARK(BM_InjectAllKinds)->Unit(benchmark::kMillisecond);

void BM_SanitizeCorrupted(benchmark::State& state) {
  const eval::VolunteerTraces traces =
      eval::make_traces(population()[0], config());
  fault::FaultPlan plan;
  plan.seed = bench::kDefaultSeed;
  for (const fault::FaultKind kind : fault::all_fault_kinds()) {
    plan.with(kind, 0.2);
  }
  const UserTrace corrupted =
      fault::inject_faults(traces.training, plan).trace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::sanitize_trace(corrupted));
  }
}
BENCHMARK(BM_SanitizeCorrupted)->Unit(benchmark::kMillisecond);

void BM_SanitizeCleanPassthrough(benchmark::State& state) {
  // The clean path must cost no more than the copy.
  const eval::VolunteerTraces traces =
      eval::make_traces(population()[0], config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::sanitize_trace(traces.training));
  }
}
BENCHMARK(BM_SanitizeCleanPassthrough)->Unit(benchmark::kMillisecond);

void BM_ChaosFleet8(benchmark::State& state) {
  const eval::ExperimentConfig cfg = config();
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  const auto volunteers = chaos_volunteers(0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::run_fleet(volunteers, suite, cfg));
  }
}
BENCHMARK(BM_ChaosFleet8)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ChaosFleet8Cached(benchmark::State& state) {
  // Same grid, but trace injection + indexing + baselines are paid once
  // in the session instead of on every run.
  const eval::ExperimentConfig cfg = config();
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  static const eval::EvalSession session(chaos_volunteers(0.2), config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::run_fleet(session, suite));
  }
}
BENCHMARK(BM_ChaosFleet8Cached)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

NETMASTER_BENCH_MAIN()
