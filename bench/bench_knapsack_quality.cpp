// §IV-B — Algorithm quality and cost, per solver backend:
// * the SinKnap FPTAS against the exact optimum across ε (the paper
//   fixes ε = 0.1 "to guarantee good performance while control the
//   computational overhead");
// * Algorithm 1 (overlapped multiple knapsack) under every pluggable
//   backend — fptas / exact / greedy / auto — against the brute-force
//   optimum: the paper proves a (1−ε)/2 bound for the FPTAS path and
//   observes the real gap is far smaller (≤ 11.2% worst case, < 5% in
//   81.6% of runs);
// * the reusable-SchedWorkspace speedup (steady-state solves with one
//   workspace vs. a fresh workspace per call);
// * solver timing across instance sizes and backends (the bench part).
//
// Scalars recorded for CI: `approx_ratio_<backend>` (worst observed
// Algorithm 1 ratio vs. optimum, asserted ≥ (1−ε)/2 for the guaranteed
// backends) and `workspace_reuse_speedup` (asserted ≥ 1.0).
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "sched/knapsack.hpp"
#include "sched/overlap.hpp"
#include "sched/solver.hpp"

namespace {

using namespace netmaster;

std::vector<sched::KnapItem> random_items(Rng& rng, int n,
                                          std::int64_t max_weight) {
  std::vector<sched::KnapItem> items;
  items.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    items.push_back({i, rng.uniform(1.0, 100.0),
                     rng.uniform_int(1, max_weight)});
  }
  return items;
}

struct OverlapInstance {
  std::vector<sched::OverlapSlot> slots;
  std::vector<sched::OverlapItem> items;
};

OverlapInstance random_overlap(Rng& rng, int n_items, int n_slots) {
  OverlapInstance inst;
  for (int s = 0; s < n_slots; ++s) {
    inst.slots.push_back({s, rng.uniform_int(50, 250)});
  }
  for (int i = 0; i < n_items; ++i) {
    const int prev = static_cast<int>(rng.uniform_int(0, n_slots - 2));
    inst.items.push_back({i, rng.uniform_int(10, 120),
                          rng.uniform(1.0, 50.0), prev, prev + 1});
  }
  return inst;
}

constexpr sched::SolverChoice kBackends[] = {
    sched::SolverChoice::kFptas, sched::SolverChoice::kExact,
    sched::SolverChoice::kGreedy, sched::SolverChoice::kAuto};

/// Wall time of `iterations` Algorithm 1 solves. `reuse` keeps one
/// workspace across calls (the steady state of a fleet sweep); fresh
/// mode constructs a workspace per call, which is what every solve paid
/// before the solver layer (maps + DP tables reallocated each time).
double time_solves_ms(const OverlapInstance& inst, int iterations,
                      bool reuse) {
  sched::SolverOptions options;  // fptas, eps = 0.1
  sched::SchedWorkspace shared;
  // Warm-up outside the timed region (first-touch allocations, caches).
  sched::solve_overlapped(inst.slots, inst.items, options, shared);
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    if (reuse) {
      benchmark::DoNotOptimize(
          sched::solve_overlapped(inst.slots, inst.items, options, shared));
    } else {
      sched::SchedWorkspace fresh;
      benchmark::DoNotOptimize(
          sched::solve_overlapped(inst.slots, inst.items, options, fresh));
    }
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

void print_figure() {
  bench::banner("§IV-B — approximation quality per solver backend",
                "FPTAS >= (1-eps)·OPT; Algorithm 1 >= (1-eps)/2·OPT, "
                "observed gap far smaller");

  std::cout << "\nSinKnap FPTAS vs exact optimum (n=40, 200 instances "
               "per eps)\n";
  eval::Table t({"eps", "guarantee", "worst ratio", "mean ratio"});
  for (double eps : {0.01, 0.05, 0.1, 0.25, 0.5, 0.9}) {
    double worst = 1.0, sum = 0.0;
    Rng rng(bench::kDefaultSeed);
    const int kRuns = 200;
    for (int run = 0; run < kRuns; ++run) {
      const auto items = random_items(rng, 40, 60);
      const std::int64_t cap = rng.uniform_int(100, 600);
      const double exact = sched::knapsack_exact(items, cap).profit;
      const double approx = sched::knapsack_fptas(items, cap, eps).profit;
      const double ratio = exact > 0.0 ? approx / exact : 1.0;
      worst = std::min(worst, ratio);
      sum += ratio;
    }
    t.add_row({eval::Table::num(eps, 2), eval::Table::num(1.0 - eps, 2),
               eval::Table::num(worst, 4),
               eval::Table::num(sum / kRuns, 4)});
  }
  bench::emit(t, "fptas_vs_exact");

  // Algorithm 1 under every backend vs. the brute-force optimum — the
  // same 200 seeded instances per backend so ratios are comparable.
  std::cout << "\nAlgorithm 1 backends vs brute-force optimum "
               "(12 items, 4 slots, 200 instances, eps=0.1)\n";
  eval::Table o({"backend", "guarantee", "worst ratio", "mean ratio",
                 "runs within 5% of OPT", "exact slot-solves"});
  for (const sched::SolverChoice backend : kBackends) {
    sched::SolverOptions options;
    options.choice = backend;
    sched::SchedWorkspace ws;
    double worst = 1.0, sum = 0.0;
    int within5 = 0;
    std::size_t exact_slot_solves = 0;
    Rng rng(bench::kDefaultSeed + 1);
    const int kRuns = 200;
    for (int run = 0; run < kRuns; ++run) {
      const auto inst = random_overlap(rng, 12, 4);
      const double exact =
          sched::solve_overlapped_exact(inst.slots, inst.items)
              .total_profit;
      sched::SolveStats stats;
      const double approx =
          sched::solve_overlapped(inst.slots, inst.items, options, ws,
                                  &stats)
              .total_profit;
      const double ratio = exact > 0.0 ? approx / exact : 1.0;
      worst = std::min(worst, ratio);
      sum += ratio;
      if (ratio >= 0.95) ++within5;
      exact_slot_solves += stats.slot_solves_exact;
    }
    const bool guaranteed = backend != sched::SolverChoice::kGreedy;
    o.add_row({sched::to_string(backend),
               guaranteed ? eval::Table::num(0.45, 2) : "none",
               eval::Table::num(worst, 4), eval::Table::num(sum / kRuns, 4),
               eval::Table::pct(static_cast<double>(within5) / kRuns),
               eval::Table::num(static_cast<double>(exact_slot_solves), 0)});
    bench::record_scalar(std::string("approx_ratio_") +
                             sched::to_string(backend),
                         worst);
  }
  bench::emit(o, "backend_comparison");
  std::cout << "paper: worst observed gap 11.2%, within 5% of optimal in "
               "81.6% of tests\n";

  // Workspace reuse: the satellite perf claim, measured. One warm
  // workspace across 500 solves vs. a fresh workspace per solve, on the
  // realistic fleet shape — many predicted slots, a few pending items
  // each — where per-call allocation (maps, per-slot vectors, DP rows)
  // is a large share of the solve.
  std::cout << "\nSchedWorkspace reuse (Algorithm 1, 80 items, 60 slots, "
               "500 solves)\n";
  Rng rng(bench::kDefaultSeed + 2);
  const OverlapInstance inst = random_overlap(rng, 80, 60);
  const int kIters = 500;
  double reused_ms = 1e300, fresh_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {  // best-of-3 to shed scheduler noise
    reused_ms = std::min(reused_ms, time_solves_ms(inst, kIters, true));
    fresh_ms = std::min(fresh_ms, time_solves_ms(inst, kIters, false));
  }
  const double speedup = fresh_ms > 0.0 ? fresh_ms / reused_ms : 1.0;
  eval::Table w({"mode", "time for 500 solves (ms)", "per solve (us)"});
  w.add_row({"fresh workspace per call", eval::Table::num(fresh_ms, 2),
             eval::Table::num(1000.0 * fresh_ms / kIters, 1)});
  w.add_row({"reused workspace", eval::Table::num(reused_ms, 2),
             eval::Table::num(1000.0 * reused_ms / kIters, 1)});
  bench::emit(w, "workspace_reuse");
  std::cout << "workspace-reuse speedup: " << eval::Table::num(speedup, 2)
            << "x (steady-state fleet sweeps pay the reused cost)\n\n";
  bench::record_scalar("workspace_reuse_speedup", speedup);
}

void BM_Fptas(benchmark::State& state) {
  Rng rng(bench::kDefaultSeed);
  const auto items =
      random_items(rng, static_cast<int>(state.range(0)), 60);
  const std::int64_t cap = 40 * state.range(0);
  const double eps = static_cast<double>(state.range(1)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::knapsack_fptas(items, cap, eps));
  }
}
BENCHMARK(BM_Fptas)
    ->Args({50, 10})
    ->Args({200, 10})
    ->Args({800, 10})
    ->Args({200, 1})
    ->Args({200, 50})
    ->Unit(benchmark::kMicrosecond);

void BM_ExactDp(benchmark::State& state) {
  Rng rng(bench::kDefaultSeed);
  const auto items =
      random_items(rng, static_cast<int>(state.range(0)), 60);
  const std::int64_t cap = 40 * state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::knapsack_exact(items, cap));
  }
}
BENCHMARK(BM_ExactDp)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);

/// Args: {items, backend index into kBackends}. Reuses one workspace —
/// the steady state the fleet path runs in.
void BM_Algorithm1(benchmark::State& state) {
  Rng rng(bench::kDefaultSeed);
  const auto inst =
      random_overlap(rng, static_cast<int>(state.range(0)), 8);
  sched::SolverOptions options;
  options.choice = kBackends[static_cast<std::size_t>(state.range(1))];
  sched::SchedWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::solve_overlapped(inst.slots, inst.items, options, ws));
  }
}
BENCHMARK(BM_Algorithm1)
    ->Args({50, 0})
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({200, 2})
    ->Args({200, 3})
    ->Unit(benchmark::kMicrosecond);

/// Fresh workspace per call — what every solve paid before the solver
/// layer. Compare against BM_Algorithm1 {200, 0}.
void BM_Algorithm1FreshWorkspace(benchmark::State& state) {
  Rng rng(bench::kDefaultSeed);
  const auto inst =
      random_overlap(rng, static_cast<int>(state.range(0)), 8);
  const sched::SolverOptions options;
  for (auto _ : state) {
    sched::SchedWorkspace fresh;
    benchmark::DoNotOptimize(
        sched::solve_overlapped(inst.slots, inst.items, options, fresh));
  }
}
BENCHMARK(BM_Algorithm1FreshWorkspace)
    ->Arg(200)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

NETMASTER_BENCH_MAIN()
