// §IV-B — Algorithm quality and cost:
// * the SinKnap FPTAS against the exact optimum across ε (the paper
//   fixes ε = 0.1 "to guarantee good performance while control the
//   computational overhead");
// * Algorithm 1 (overlapped multiple knapsack) against the brute-force
//   optimum — the paper proves a (1−ε)/2 bound and observes the real
//   gap is far smaller (≤ 11.2% worst case, < 5% in 81.6% of runs);
// * solver timing across instance sizes (the bench part).
#include <iostream>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "sched/knapsack.hpp"
#include "sched/overlap.hpp"

namespace {

using namespace netmaster;

std::vector<sched::KnapItem> random_items(Rng& rng, int n,
                                          std::int64_t max_weight) {
  std::vector<sched::KnapItem> items;
  items.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    items.push_back({i, rng.uniform(1.0, 100.0),
                     rng.uniform_int(1, max_weight)});
  }
  return items;
}

struct OverlapInstance {
  std::vector<sched::OverlapSlot> slots;
  std::vector<sched::OverlapItem> items;
};

OverlapInstance random_overlap(Rng& rng, int n_items, int n_slots) {
  OverlapInstance inst;
  for (int s = 0; s < n_slots; ++s) {
    inst.slots.push_back({s, rng.uniform_int(50, 250)});
  }
  for (int i = 0; i < n_items; ++i) {
    const int prev = static_cast<int>(rng.uniform_int(0, n_slots - 2));
    inst.items.push_back({i, rng.uniform_int(10, 120),
                          rng.uniform(1.0, 50.0), prev, prev + 1});
  }
  return inst;
}

void print_figure() {
  bench::banner("§IV-B — approximation quality",
                "FPTAS >= (1-eps)·OPT; Algorithm 1 >= (1-eps)/2·OPT, "
                "observed gap far smaller");

  std::cout << "\nSinKnap FPTAS vs exact optimum (n=40, 200 instances "
               "per eps)\n";
  eval::Table t({"eps", "guarantee", "worst ratio", "mean ratio"});
  for (double eps : {0.01, 0.05, 0.1, 0.25, 0.5, 0.9}) {
    double worst = 1.0, sum = 0.0;
    Rng rng(bench::kDefaultSeed);
    const int kRuns = 200;
    for (int run = 0; run < kRuns; ++run) {
      const auto items = random_items(rng, 40, 60);
      const std::int64_t cap = rng.uniform_int(100, 600);
      const double exact = sched::knapsack_exact(items, cap).profit;
      const double approx = sched::knapsack_fptas(items, cap, eps).profit;
      const double ratio = exact > 0.0 ? approx / exact : 1.0;
      worst = std::min(worst, ratio);
      sum += ratio;
    }
    t.add_row({eval::Table::num(eps, 2), eval::Table::num(1.0 - eps, 2),
               eval::Table::num(worst, 4),
               eval::Table::num(sum / kRuns, 4)});
  }
  bench::emit(t);

  std::cout << "\nAlgorithm 1 (and plain greedy) vs brute-force optimum "
               "(12 items, 4 slots, 200 instances, eps=0.1)\n";
  double worst = 1.0, sum = 0.0;
  double greedy_worst = 1.0, greedy_sum = 0.0;
  int within5 = 0;
  Rng rng(bench::kDefaultSeed + 1);
  const int kRuns = 200;
  for (int run = 0; run < kRuns; ++run) {
    const auto inst = random_overlap(rng, 12, 4);
    const double exact =
        sched::solve_overlapped_exact(inst.slots, inst.items).total_profit;
    const double approx =
        sched::solve_overlapped(inst.slots, inst.items, 0.1).total_profit;
    const double greedy =
        sched::solve_overlapped_greedy(inst.slots, inst.items)
            .total_profit;
    const double ratio = exact > 0.0 ? approx / exact : 1.0;
    const double greedy_ratio = exact > 0.0 ? greedy / exact : 1.0;
    worst = std::min(worst, ratio);
    greedy_worst = std::min(greedy_worst, greedy_ratio);
    sum += ratio;
    greedy_sum += greedy_ratio;
    if (ratio >= 0.95) ++within5;
  }
  eval::Table o({"solver", "guarantee", "worst ratio", "mean ratio",
                 "runs within 5% of OPT"});
  o.add_row({"Algorithm 1", eval::Table::num(0.45, 2),
             eval::Table::num(worst, 4), eval::Table::num(sum / kRuns, 4),
             eval::Table::pct(static_cast<double>(within5) / kRuns)});
  o.add_row({"ratio greedy", "none", eval::Table::num(greedy_worst, 4),
             eval::Table::num(greedy_sum / kRuns, 4), "-"});
  bench::emit(o);
  std::cout << "paper: worst observed gap 11.2%, within 5% of optimal in "
               "81.6% of tests\n\n";
}

void BM_Fptas(benchmark::State& state) {
  Rng rng(bench::kDefaultSeed);
  const auto items =
      random_items(rng, static_cast<int>(state.range(0)), 60);
  const std::int64_t cap = 40 * state.range(0);
  const double eps = static_cast<double>(state.range(1)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::knapsack_fptas(items, cap, eps));
  }
}
BENCHMARK(BM_Fptas)
    ->Args({50, 10})
    ->Args({200, 10})
    ->Args({800, 10})
    ->Args({200, 1})
    ->Args({200, 50})
    ->Unit(benchmark::kMicrosecond);

void BM_ExactDp(benchmark::State& state) {
  Rng rng(bench::kDefaultSeed);
  const auto items =
      random_items(rng, static_cast<int>(state.range(0)), 60);
  const std::int64_t cap = 40 * state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::knapsack_exact(items, cap));
  }
}
BENCHMARK(BM_ExactDp)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);

void BM_Algorithm1(benchmark::State& state) {
  Rng rng(bench::kDefaultSeed);
  const auto inst =
      random_overlap(rng, static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::solve_overlapped(inst.slots, inst.items, 0.1));
  }
}
BENCHMARK(BM_Algorithm1)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);

}  // namespace

NETMASTER_BENCH_MAIN()
