// Extension — population scale-out (§VII future work).
//
// The paper's evaluation covers 3 volunteers and promises to "recruit
// more volunteers" — here we scale the synthetic population to 8/16/32
// diverse users and report the distribution of NetMaster's saving (and
// its battery-life meaning), plus the thread-scaling of the experiment
// harness itself.
#include <iostream>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "eval/battery.hpp"
#include "eval/experiments.hpp"
#include "policy/baseline.hpp"
#include "policy/netmaster.hpp"
#include "sim/accounting.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

/// N users cycling through the archetypes with per-user seeds.
std::vector<synth::UserProfile> population(int n) {
  std::vector<synth::UserProfile> users;
  users.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    users.push_back(synth::make_user(
        static_cast<synth::Archetype>(i % 8), i + 1));
  }
  return users;
}

struct UserResult {
  double saving = 0.0;
  double affected = 0.0;
  double baseline_battery = 0.0;   // battery fraction/day, stock
  double netmaster_battery = 0.0;  // battery fraction/day, NetMaster
};

std::vector<UserResult> run_population(int n, unsigned max_threads = 0) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto users = population(n);
  std::vector<UserResult> results(users.size());
  parallel_for(
      users.size(),
      [&](std::size_t i) {
        eval::ExperimentConfig user_cfg = cfg;
        user_cfg.seed = cfg.seed + i;
        const eval::VolunteerTraces traces =
            eval::make_traces(users[i], user_cfg);
        const RadioPowerParams radio = cfg.netmaster.profit.radio;
        const sim::SimReport base = sim::account(
            traces.eval, policy::BaselinePolicy().run(traces.eval), radio);
        const policy::NetMasterPolicy nm(traces.training, cfg.netmaster);
        const sim::SimReport rep =
            sim::account(traces.eval, nm.run(traces.eval), radio);
        UserResult& r = results[i];
        if (base.energy_j > 0.0) {
          r.saving = 1.0 - rep.energy_j / base.energy_j;
        }
        r.affected = rep.affected_fraction;
        r.baseline_battery = eval::battery_fraction_per_day(
            base.energy_j, user_cfg.eval_days);
        r.netmaster_battery = eval::battery_fraction_per_day(
            rep.energy_j, user_cfg.eval_days);
      },
      max_threads);
  return results;
}

void print_figure() {
  bench::banner("Extension — population scale-out",
                "saving distribution over 8/16/32 diverse users "
                "(paper: 3 volunteers, more as future work)");
  eval::Table t({"users", "saving mean", "saving min", "saving max",
                 "stddev", "worst affected", "battery/day stock",
                 "battery/day netmaster"});
  for (int n : {8, 16, 32}) {
    const auto results = run_population(n);
    StreamingStats saving, battery_base, battery_nm;
    double worst_affected = 0.0;
    for (const UserResult& r : results) {
      saving.add(r.saving);
      battery_base.add(r.baseline_battery);
      battery_nm.add(r.netmaster_battery);
      worst_affected = std::max(worst_affected, r.affected);
    }
    t.add_row({std::to_string(n), eval::Table::pct(saving.mean()),
               eval::Table::pct(saving.min()),
               eval::Table::pct(saving.max()),
               eval::Table::pct(saving.stddev()),
               eval::Table::pct(worst_affected, 2),
               eval::Table::pct(battery_base.mean()),
               eval::Table::pct(battery_nm.mean())});
  }
  t.print(std::cout);
  std::cout << "expected shape: savings hold across a diverse "
               "population; interrupts stay < 1% for every user\n\n";
}

void BM_Population16(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_population(16, threads));
  }
}
BENCHMARK(BM_Population16)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

NETMASTER_BENCH_MAIN()
