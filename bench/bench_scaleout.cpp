// Extension — population scale-out (§VII future work).
//
// The paper's evaluation covers 3 volunteers and promises to "recruit
// more volunteers" — here we scale the synthetic population to 8/16/32
// diverse users and report the distribution of NetMaster's saving (and
// its battery-life meaning), plus the thread-scaling of the experiment
// harness itself.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "obs/span.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "engine/trace_index.hpp"
#include "eval/battery.hpp"
#include "eval/experiments.hpp"
#include "eval/fleet.hpp"
#include "eval/session.hpp"
#include "policy/baseline.hpp"
#include "policy/netmaster.hpp"
#include "sim/accounting.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

/// N users cycling through the archetypes with per-user seeds.
std::vector<synth::UserProfile> population(int n) {
  std::vector<synth::UserProfile> users;
  users.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    users.push_back(synth::make_user(
        static_cast<synth::Archetype>(i % 8), i + 1));
  }
  return users;
}

struct UserResult {
  double saving = 0.0;
  double affected = 0.0;
  double baseline_battery = 0.0;   // battery fraction/day, stock
  double netmaster_battery = 0.0;  // battery fraction/day, NetMaster
};

std::vector<UserResult> run_population(int n, unsigned max_threads = 0) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto users = population(n);
  std::vector<UserResult> results(users.size());
  parallel_for(
      users.size(),
      [&](std::size_t i) {
        eval::ExperimentConfig user_cfg = cfg;
        user_cfg.seed = cfg.seed + i;
        const eval::VolunteerTraces traces =
            eval::make_traces(users[i], user_cfg);
        const RadioPowerParams radio = cfg.netmaster.profit.radio;
        const sim::SimReport base = sim::account(
            traces.eval, policy::BaselinePolicy().run(traces.eval), radio);
        const policy::NetMasterPolicy nm(traces.training, cfg.netmaster);
        const sim::SimReport rep =
            sim::account(traces.eval, nm.run(traces.eval), radio);
        UserResult& r = results[i];
        if (base.energy_j > 0.0) {
          r.saving = 1.0 - rep.energy_j / base.energy_j;
        }
        r.affected = rep.affected_fraction;
        r.baseline_battery = eval::battery_fraction_per_day(
            base.energy_j, user_cfg.eval_days);
        r.netmaster_battery = eval::battery_fraction_per_day(
            rep.energy_j, user_cfg.eval_days);
      },
      max_threads);
  return results;
}

void print_fleet_figure();
void print_memory_figure();

void print_figure() {
  bench::banner("Extension — population scale-out",
                "saving distribution over 8/16/32 diverse users "
                "(paper: 3 volunteers, more as future work)");
  eval::Table t({"users", "saving mean", "saving min", "saving max",
                 "stddev", "worst affected", "battery/day stock",
                 "battery/day netmaster"});
  for (int n : {8, 16, 32}) {
    const auto results = run_population(n);
    StreamingStats saving, battery_base, battery_nm;
    double worst_affected = 0.0;
    for (const UserResult& r : results) {
      saving.add(r.saving);
      battery_base.add(r.baseline_battery);
      battery_nm.add(r.netmaster_battery);
      worst_affected = std::max(worst_affected, r.affected);
    }
    t.add_row({std::to_string(n), eval::Table::pct(saving.mean()),
               eval::Table::pct(saving.min()),
               eval::Table::pct(saving.max()),
               eval::Table::pct(saving.stddev()),
               eval::Table::pct(worst_affected, 2),
               eval::Table::pct(battery_base.mean()),
               eval::Table::pct(battery_nm.mean())});
  }
  bench::emit(t, "population_scaleout");
  std::cout << "expected shape: savings hold across a diverse "
               "population; interrupts stay < 1% for every user\n\n";
  print_fleet_figure();
}

// ---- Fleet vs legacy N-user × all-policies sweep. ----
//
// The legacy path is the shape the eval layer had before the engine
// refactor: each (user, policy) cell regenerates the volunteer's traces
// (the per-point sweeps called make_traces per point per profile) and
// each policy rebuilds its own session state from the raw trace.
// The fleet path (eval::run_fleet over an eval::EvalSession) generates
// and indexes every user's trace once, shares the engine::TraceIndex
// across all policies, and parallelizes over the full N×M grid. The
// sweep-level amortization of the same cache is measured in
// bench_fig8_delay_sweep / bench_fig9_batch_sweep.

std::vector<double> legacy_sweep_energy(
    const std::vector<synth::UserProfile>& users,
    const eval::ExperimentConfig& cfg,
    const std::vector<eval::PolicySpec>& suite) {
  const RadioPowerParams radio = cfg.netmaster.profit.radio;
  std::vector<double> energy(users.size() * suite.size());
  parallel_for(users.size(), [&](std::size_t u) {
    for (std::size_t p = 0; p < suite.size(); ++p) {
      const eval::VolunteerTraces traces = eval::make_traces(users[u], cfg);
      const auto pol = suite[p].make(traces.training);
      const sim::SimReport rep =
          sim::account(traces.eval, pol->run(traces.eval), radio);
      energy[u * suite.size() + p] = rep.energy_j;
    }
  });
  return energy;
}

std::vector<double> fleet_sweep_energy(
    const std::vector<synth::UserProfile>& users,
    const eval::ExperimentConfig& cfg,
    const std::vector<eval::PolicySpec>& suite) {
  const eval::FleetReport report = eval::run_fleet(users, suite, cfg);
  std::vector<double> energy(report.cells.size());
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    energy[c] = report.cells[c].report.energy_j;
  }
  return energy;
}

template <typename F>
double best_of_ms(int reps, F&& f) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    obs::ScopedTimer timer;
    f();
    const double ms = timer.stop();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

void print_fleet_figure() {
  bench::banner("Engine refactor — fleet sweep vs legacy per-cell path",
                "one shared TraceIndex per user across all policies "
                "(refactor target: >= 1.3x)");
  eval::Table t({"users", "policies", "legacy ms", "fleet ms", "speedup",
                 "results"});
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  for (int n : {8, 16, 32}) {
    const auto users = population(n);

    const std::vector<double> legacy =
        legacy_sweep_energy(users, cfg, suite);
    const std::vector<double> fleet = fleet_sweep_energy(users, cfg, suite);
    NM_REQUIRE(legacy.size() == fleet.size(),
               "sweep paths must produce the same cell grid");
    bool identical = true;
    for (std::size_t c = 0; c < legacy.size(); ++c) {
      if (legacy[c] != fleet[c]) identical = false;
    }

    const double legacy_ms =
        best_of_ms(2, [&] { legacy_sweep_energy(users, cfg, suite); });
    const double fleet_ms =
        best_of_ms(2, [&] { fleet_sweep_energy(users, cfg, suite); });
    const double speedup = fleet_ms > 0.0 ? legacy_ms / fleet_ms : 0.0;
    bench::record_scalar("fleet_speedup_" + std::to_string(n) + "_users",
                         speedup);
    t.add_row({std::to_string(n), std::to_string(suite.size()),
               eval::Table::num(legacy_ms, 1), eval::Table::num(fleet_ms, 1),
               eval::Table::num(speedup, 2) + "x",
               identical ? "bit-identical" : "MISMATCH"});
  }
  bench::emit(t, "fleet_vs_legacy");
  std::cout << "expected shape: speedup >= 1.3x at every population size; "
               "cell energies bit-identical between paths\n\n";
  print_memory_figure();
}

// ---- Memory architecture — all-resident vs spill-to-disk fleet. ----
//
// "before" is the all-resident shape the eval layer had prior to the
// memory refactor: every user's AoS traces stay hydrated for the whole
// run (UserStore cap 0) next to the per-user index arenas. "after"
// runs the same fleet with a small cache cap, so AoS traces spill to
// disk blobs and the steady-state footprint is the arena-backed SoA
// columns plus the bounded blob cache. Spilling is a memory policy,
// not a semantic one: every cell's accounting must stay bit-identical
// to the golden all-resident replay.

void print_memory_figure() {
  bench::banner(
      "Memory architecture — arena + SoA columns + spill-to-disk store",
      "bounded resident footprint at fleet scale "
      "(refactor target: >= 2x users per GB, bit-identical results)");
  eval::Table t({"users", "before MB", "after MB", "users/GB before",
                 "users/GB after", "gain", "replay ns/event", "results"});
  eval::ExperimentConfig resident_cfg;
  resident_cfg.seed = bench::kDefaultSeed;
  const auto suite = eval::standard_policy_suite(resident_cfg.netmaster);
  constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
  constexpr double kMiB = 1024.0 * 1024.0;
  for (int n : {8, 16, 32}) {
    const auto users = population(n);

    const eval::EvalSession resident(users, resident_cfg);
    const eval::FleetReport golden = eval::run_fleet(resident, suite);
    const double before_bytes =
        static_cast<double>(resident.store().resident_bytes()) +
        static_cast<double>(resident.arena_bytes());

    eval::ExperimentConfig spill_cfg = resident_cfg;
    spill_cfg.store.cache_cap_bytes = 256 * 1024;
    const eval::EvalSession spilled(users, spill_cfg);
    std::size_t events = 0;
    for (std::size_t u = 0; u < spilled.num_users(); ++u) {
      events += spilled.index(u).activities().size();
    }
    obs::ScopedTimer timer;
    const eval::FleetReport report = eval::run_fleet(spilled, suite);
    const double replay_ms = timer.stop();
    const double after_bytes =
        static_cast<double>(spilled.store().resident_bytes()) +
        static_cast<double>(spilled.arena_bytes());
    NM_REQUIRE(spilled.store().evictions() > 0,
               "the spill bench must actually exceed its cache cap");

    bool identical = report.cells.size() == golden.cells.size();
    for (std::size_t c = 0; identical && c < report.cells.size(); ++c) {
      identical = report.cells[c].report.energy_j ==
                      golden.cells[c].report.energy_j &&
                  report.cells[c].report.radio_on_ms ==
                      golden.cells[c].report.radio_on_ms;
    }

    const double per_gb_before =
        before_bytes > 0.0 ? n * kGiB / before_bytes : 0.0;
    const double per_gb_after =
        after_bytes > 0.0 ? n * kGiB / after_bytes : 0.0;
    const double gain =
        per_gb_before > 0.0 ? per_gb_after / per_gb_before : 0.0;
    const std::size_t total_events = events * suite.size();
    const double ns_per_event =
        total_events > 0 ? replay_ms * 1e6 / total_events : 0.0;
    const std::string tag = "_" + std::to_string(n) + "_users";
    bench::record_scalar("mem_users_per_gb_before" + tag, per_gb_before);
    bench::record_scalar("mem_users_per_gb_after" + tag, per_gb_after);
    bench::record_scalar("mem_footprint_gain" + tag, gain);
    bench::record_scalar("mem_replay_ns_per_event" + tag, ns_per_event);
    bench::record_scalar("mem_store_evictions" + tag,
                         static_cast<double>(spilled.store().evictions()));
    bench::record_scalar("mem_spill_bit_identical" + tag,
                         identical ? 1.0 : 0.0);
    t.add_row({std::to_string(n), eval::Table::num(before_bytes / kMiB, 1),
               eval::Table::num(after_bytes / kMiB, 1),
               eval::Table::num(per_gb_before, 0),
               eval::Table::num(per_gb_after, 0),
               eval::Table::num(gain, 2) + "x",
               eval::Table::num(ns_per_event, 1),
               identical ? "bit-identical" : "MISMATCH"});
  }
  bench::emit(t, "memory_architecture");
  std::cout << "expected shape: >= 2x users per GB at every population "
               "size; spilled replay bit-identical to the golden "
               "all-resident run\n\n";
}

void BM_LegacySweep16(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  const auto users = population(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy_sweep_energy(users, cfg, suite));
  }
}
BENCHMARK(BM_LegacySweep16)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FleetSweep16(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  const auto users = population(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet_sweep_energy(users, cfg, suite));
  }
}
BENCHMARK(BM_FleetSweep16)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SpillSweep16(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  cfg.store.cache_cap_bytes = 256 * 1024;
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  const eval::EvalSession session(population(16), cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::run_fleet(session, suite));
  }
}
BENCHMARK(BM_SpillSweep16)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Population16(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_population(16, threads));
  }
}
BENCHMARK(BM_Population16)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

NETMASTER_BENCH_MAIN()
