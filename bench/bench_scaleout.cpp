// Extension — population scale-out (§VII future work).
//
// The paper's evaluation covers 3 volunteers and promises to "recruit
// more volunteers" — here we scale the synthetic population to 8/16/32
// diverse users and report the distribution of NetMaster's saving (and
// its battery-life meaning), plus the thread-scaling of the experiment
// harness itself.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "obs/span.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "eval/battery.hpp"
#include "eval/experiments.hpp"
#include "eval/fleet.hpp"
#include "policy/baseline.hpp"
#include "policy/netmaster.hpp"
#include "sim/accounting.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

/// N users cycling through the archetypes with per-user seeds.
std::vector<synth::UserProfile> population(int n) {
  std::vector<synth::UserProfile> users;
  users.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    users.push_back(synth::make_user(
        static_cast<synth::Archetype>(i % 8), i + 1));
  }
  return users;
}

struct UserResult {
  double saving = 0.0;
  double affected = 0.0;
  double baseline_battery = 0.0;   // battery fraction/day, stock
  double netmaster_battery = 0.0;  // battery fraction/day, NetMaster
};

std::vector<UserResult> run_population(int n, unsigned max_threads = 0) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto users = population(n);
  std::vector<UserResult> results(users.size());
  parallel_for(
      users.size(),
      [&](std::size_t i) {
        eval::ExperimentConfig user_cfg = cfg;
        user_cfg.seed = cfg.seed + i;
        const eval::VolunteerTraces traces =
            eval::make_traces(users[i], user_cfg);
        const RadioPowerParams radio = cfg.netmaster.profit.radio;
        const sim::SimReport base = sim::account(
            traces.eval, policy::BaselinePolicy().run(traces.eval), radio);
        const policy::NetMasterPolicy nm(traces.training, cfg.netmaster);
        const sim::SimReport rep =
            sim::account(traces.eval, nm.run(traces.eval), radio);
        UserResult& r = results[i];
        if (base.energy_j > 0.0) {
          r.saving = 1.0 - rep.energy_j / base.energy_j;
        }
        r.affected = rep.affected_fraction;
        r.baseline_battery = eval::battery_fraction_per_day(
            base.energy_j, user_cfg.eval_days);
        r.netmaster_battery = eval::battery_fraction_per_day(
            rep.energy_j, user_cfg.eval_days);
      },
      max_threads);
  return results;
}

void print_fleet_figure();

void print_figure() {
  bench::banner("Extension — population scale-out",
                "saving distribution over 8/16/32 diverse users "
                "(paper: 3 volunteers, more as future work)");
  eval::Table t({"users", "saving mean", "saving min", "saving max",
                 "stddev", "worst affected", "battery/day stock",
                 "battery/day netmaster"});
  for (int n : {8, 16, 32}) {
    const auto results = run_population(n);
    StreamingStats saving, battery_base, battery_nm;
    double worst_affected = 0.0;
    for (const UserResult& r : results) {
      saving.add(r.saving);
      battery_base.add(r.baseline_battery);
      battery_nm.add(r.netmaster_battery);
      worst_affected = std::max(worst_affected, r.affected);
    }
    t.add_row({std::to_string(n), eval::Table::pct(saving.mean()),
               eval::Table::pct(saving.min()),
               eval::Table::pct(saving.max()),
               eval::Table::pct(saving.stddev()),
               eval::Table::pct(worst_affected, 2),
               eval::Table::pct(battery_base.mean()),
               eval::Table::pct(battery_nm.mean())});
  }
  bench::emit(t, "population_scaleout");
  std::cout << "expected shape: savings hold across a diverse "
               "population; interrupts stay < 1% for every user\n\n";
  print_fleet_figure();
}

// ---- Fleet vs legacy N-user × all-policies sweep. ----
//
// The legacy path is the shape the eval layer had before the engine
// refactor: each (user, policy) cell regenerates the volunteer's traces
// (the per-point sweeps called make_traces per point per profile) and
// each policy rebuilds its own session state from the raw trace.
// The fleet path (eval::run_fleet over an eval::EvalSession) generates
// and indexes every user's trace once, shares the engine::TraceIndex
// across all policies, and parallelizes over the full N×M grid. The
// sweep-level amortization of the same cache is measured in
// bench_fig8_delay_sweep / bench_fig9_batch_sweep.

std::vector<double> legacy_sweep_energy(
    const std::vector<synth::UserProfile>& users,
    const eval::ExperimentConfig& cfg,
    const std::vector<eval::PolicySpec>& suite) {
  const RadioPowerParams radio = cfg.netmaster.profit.radio;
  std::vector<double> energy(users.size() * suite.size());
  parallel_for(users.size(), [&](std::size_t u) {
    for (std::size_t p = 0; p < suite.size(); ++p) {
      const eval::VolunteerTraces traces = eval::make_traces(users[u], cfg);
      const auto pol = suite[p].make(traces.training);
      const sim::SimReport rep =
          sim::account(traces.eval, pol->run(traces.eval), radio);
      energy[u * suite.size() + p] = rep.energy_j;
    }
  });
  return energy;
}

std::vector<double> fleet_sweep_energy(
    const std::vector<synth::UserProfile>& users,
    const eval::ExperimentConfig& cfg,
    const std::vector<eval::PolicySpec>& suite) {
  const eval::FleetReport report = eval::run_fleet(users, suite, cfg);
  std::vector<double> energy(report.cells.size());
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    energy[c] = report.cells[c].report.energy_j;
  }
  return energy;
}

template <typename F>
double best_of_ms(int reps, F&& f) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    obs::ScopedTimer timer;
    f();
    const double ms = timer.stop();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

void print_fleet_figure() {
  bench::banner("Engine refactor — fleet sweep vs legacy per-cell path",
                "one shared TraceIndex per user across all policies "
                "(refactor target: >= 1.3x)");
  eval::Table t({"users", "policies", "legacy ms", "fleet ms", "speedup",
                 "results"});
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  for (int n : {8, 16, 32}) {
    const auto users = population(n);

    const std::vector<double> legacy =
        legacy_sweep_energy(users, cfg, suite);
    const std::vector<double> fleet = fleet_sweep_energy(users, cfg, suite);
    NM_REQUIRE(legacy.size() == fleet.size(),
               "sweep paths must produce the same cell grid");
    bool identical = true;
    for (std::size_t c = 0; c < legacy.size(); ++c) {
      if (legacy[c] != fleet[c]) identical = false;
    }

    const double legacy_ms =
        best_of_ms(2, [&] { legacy_sweep_energy(users, cfg, suite); });
    const double fleet_ms =
        best_of_ms(2, [&] { fleet_sweep_energy(users, cfg, suite); });
    const double speedup = fleet_ms > 0.0 ? legacy_ms / fleet_ms : 0.0;
    bench::record_scalar("fleet_speedup_" + std::to_string(n) + "_users",
                         speedup);
    t.add_row({std::to_string(n), std::to_string(suite.size()),
               eval::Table::num(legacy_ms, 1), eval::Table::num(fleet_ms, 1),
               eval::Table::num(speedup, 2) + "x",
               identical ? "bit-identical" : "MISMATCH"});
  }
  bench::emit(t, "fleet_vs_legacy");
  std::cout << "expected shape: speedup >= 1.3x at every population size; "
               "cell energies bit-identical between paths\n\n";
}

void BM_LegacySweep16(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  const auto users = population(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy_sweep_energy(users, cfg, suite));
  }
}
BENCHMARK(BM_LegacySweep16)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FleetSweep16(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  const auto users = population(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet_sweep_energy(users, cfg, suite));
  }
}
BENCHMARK(BM_FleetSweep16)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Population16(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_population(16, threads));
  }
}
BENCHMARK(BM_Population16)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

NETMASTER_BENCH_MAIN()
