// Extension — population scale-out (§VII future work).
//
// The paper's evaluation covers 3 volunteers and promises to "recruit
// more volunteers" — here we scale the synthetic population to 8/16/32
// diverse users and report the distribution of NetMaster's saving (and
// its battery-life meaning), plus the thread-scaling of the experiment
// harness itself.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <limits>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "obs/span.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "engine/trace_index.hpp"
#include "eval/battery.hpp"
#include "eval/experiments.hpp"
#include "eval/fleet.hpp"
#include "eval/session.hpp"
#include "policy/baseline.hpp"
#include "policy/netmaster.hpp"
#include "sim/accounting.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

/// N users cycling through the archetypes with per-user seeds.
std::vector<synth::UserProfile> population(int n) {
  std::vector<synth::UserProfile> users;
  users.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    users.push_back(synth::make_user(
        static_cast<synth::Archetype>(i % 8), i + 1));
  }
  return users;
}

struct UserResult {
  double saving = 0.0;
  double affected = 0.0;
  double baseline_battery = 0.0;   // battery fraction/day, stock
  double netmaster_battery = 0.0;  // battery fraction/day, NetMaster
};

std::vector<UserResult> run_population(int n, unsigned max_threads = 0) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto users = population(n);
  std::vector<UserResult> results(users.size());
  parallel_for(
      users.size(),
      [&](std::size_t i) {
        eval::ExperimentConfig user_cfg = cfg;
        user_cfg.seed = cfg.seed + i;
        const eval::VolunteerTraces traces =
            eval::make_traces(users[i], user_cfg);
        const RadioModel radio = cfg.netmaster.profit.radio;
        const sim::SimReport base = sim::account(
            traces.eval, policy::BaselinePolicy().run(traces.eval), radio);
        const policy::NetMasterPolicy nm(traces.training, cfg.netmaster);
        const sim::SimReport rep =
            sim::account(traces.eval, nm.run(traces.eval), radio);
        UserResult& r = results[i];
        if (base.energy_j > 0.0) {
          r.saving = 1.0 - rep.energy_j / base.energy_j;
        }
        r.affected = rep.affected_fraction;
        r.baseline_battery = eval::battery_fraction_per_day(
            base.energy_j, user_cfg.eval_days);
        r.netmaster_battery = eval::battery_fraction_per_day(
            rep.energy_j, user_cfg.eval_days);
      },
      max_threads);
  return results;
}

void print_fleet_figure();
void print_memory_figure();
void print_skew_figure();

void print_figure() {
  bench::banner("Extension — population scale-out",
                "saving distribution over 8/16/32 diverse users "
                "(paper: 3 volunteers, more as future work)");
  eval::Table t({"users", "saving mean", "saving min", "saving max",
                 "stddev", "worst affected", "battery/day stock",
                 "battery/day netmaster"});
  for (int n : {8, 16, 32}) {
    const auto results = run_population(n);
    StreamingStats saving, battery_base, battery_nm;
    double worst_affected = 0.0;
    for (const UserResult& r : results) {
      saving.add(r.saving);
      battery_base.add(r.baseline_battery);
      battery_nm.add(r.netmaster_battery);
      worst_affected = std::max(worst_affected, r.affected);
    }
    t.add_row({std::to_string(n), eval::Table::pct(saving.mean()),
               eval::Table::pct(saving.min()),
               eval::Table::pct(saving.max()),
               eval::Table::pct(saving.stddev()),
               eval::Table::pct(worst_affected, 2),
               eval::Table::pct(battery_base.mean()),
               eval::Table::pct(battery_nm.mean())});
  }
  bench::emit(t, "population_scaleout");
  std::cout << "expected shape: savings hold across a diverse "
               "population; interrupts stay < 1% for every user\n\n";
  print_fleet_figure();
}

// ---- Fleet vs legacy N-user × all-policies sweep. ----
//
// The legacy path is the shape the eval layer had before the engine
// refactor: each (user, policy) cell regenerates the volunteer's traces
// (the per-point sweeps called make_traces per point per profile) and
// each policy rebuilds its own session state from the raw trace.
// The fleet path (eval::run_fleet over an eval::EvalSession) generates
// and indexes every user's trace once, shares the engine::TraceIndex
// across all policies, and parallelizes over the full N×M grid. The
// sweep-level amortization of the same cache is measured in
// bench_fig8_delay_sweep / bench_fig9_batch_sweep.

std::vector<double> legacy_sweep_energy(
    const std::vector<synth::UserProfile>& users,
    const eval::ExperimentConfig& cfg,
    const std::vector<eval::PolicySpec>& suite) {
  const RadioModel radio = cfg.netmaster.profit.radio;
  std::vector<double> energy(users.size() * suite.size());
  parallel_for(users.size(), [&](std::size_t u) {
    for (std::size_t p = 0; p < suite.size(); ++p) {
      const eval::VolunteerTraces traces = eval::make_traces(users[u], cfg);
      const auto pol = suite[p].make(traces.training);
      const sim::SimReport rep =
          sim::account(traces.eval, pol->run(traces.eval), radio);
      energy[u * suite.size() + p] = rep.energy_j;
    }
  });
  return energy;
}

std::vector<double> fleet_sweep_energy(
    const std::vector<synth::UserProfile>& users,
    const eval::ExperimentConfig& cfg,
    const std::vector<eval::PolicySpec>& suite) {
  const eval::FleetReport report = eval::run_fleet(users, suite, cfg);
  std::vector<double> energy(report.cells.size());
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    energy[c] = report.cells[c].report.energy_j;
  }
  return energy;
}

template <typename F>
double best_of_ms(int reps, F&& f) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    obs::ScopedTimer timer;
    f();
    const double ms = timer.stop();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

void print_fleet_figure() {
  bench::banner("Engine refactor — fleet sweep vs legacy per-cell path",
                "one shared TraceIndex per user across all policies "
                "(refactor target: >= 1.3x)");
  eval::Table t({"users", "policies", "legacy ms", "fleet ms", "speedup",
                 "results"});
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  for (int n : {8, 16, 32}) {
    const auto users = population(n);

    const std::vector<double> legacy =
        legacy_sweep_energy(users, cfg, suite);
    const std::vector<double> fleet = fleet_sweep_energy(users, cfg, suite);
    NM_REQUIRE(legacy.size() == fleet.size(),
               "sweep paths must produce the same cell grid");
    bool identical = true;
    for (std::size_t c = 0; c < legacy.size(); ++c) {
      if (legacy[c] != fleet[c]) identical = false;
    }

    const double legacy_ms =
        best_of_ms(2, [&] { legacy_sweep_energy(users, cfg, suite); });
    const double fleet_ms =
        best_of_ms(2, [&] { fleet_sweep_energy(users, cfg, suite); });
    const double speedup = fleet_ms > 0.0 ? legacy_ms / fleet_ms : 0.0;
    bench::record_scalar("fleet_speedup_" + std::to_string(n) + "_users",
                         speedup);
    t.add_row({std::to_string(n), std::to_string(suite.size()),
               eval::Table::num(legacy_ms, 1), eval::Table::num(fleet_ms, 1),
               eval::Table::num(speedup, 2) + "x",
               identical ? "bit-identical" : "MISMATCH"});
  }
  bench::emit(t, "fleet_vs_legacy");
  std::cout << "expected shape: speedup >= 1.3x at every population size; "
               "cell energies bit-identical between paths\n\n";
  print_memory_figure();
}

// ---- Memory architecture — all-resident vs spill-to-disk fleet. ----
//
// "before" is the all-resident shape the eval layer had prior to the
// memory refactor: every user's AoS traces stay hydrated for the whole
// run (UserStore cap 0) next to the per-user index arenas. "after"
// runs the same fleet with a small cache cap, so AoS traces spill to
// disk blobs and the steady-state footprint is the arena-backed SoA
// columns plus the bounded blob cache. Spilling is a memory policy,
// not a semantic one: every cell's accounting must stay bit-identical
// to the golden all-resident replay.

void print_memory_figure() {
  bench::banner(
      "Memory architecture — arena + SoA columns + spill-to-disk store",
      "bounded resident footprint at fleet scale "
      "(refactor target: >= 2x users per GB, bit-identical results)");
  eval::Table t({"users", "before MB", "after MB", "users/GB before",
                 "users/GB after", "gain", "replay ns/event", "results"});
  eval::ExperimentConfig resident_cfg;
  resident_cfg.seed = bench::kDefaultSeed;
  const auto suite = eval::standard_policy_suite(resident_cfg.netmaster);
  constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
  constexpr double kMiB = 1024.0 * 1024.0;
  for (int n : {8, 16, 32}) {
    const auto users = population(n);

    const eval::EvalSession resident(users, resident_cfg);
    const eval::FleetReport golden = eval::run_fleet(resident, suite);
    const double before_bytes =
        static_cast<double>(resident.store().resident_bytes()) +
        static_cast<double>(resident.arena_bytes());

    eval::ExperimentConfig spill_cfg = resident_cfg;
    spill_cfg.store.cache_cap_bytes = 256 * 1024;
    const eval::EvalSession spilled(users, spill_cfg);
    std::size_t events = 0;
    for (std::size_t u = 0; u < spilled.num_users(); ++u) {
      events += spilled.index(u).activities().size();
    }
    obs::ScopedTimer timer;
    const eval::FleetReport report = eval::run_fleet(spilled, suite);
    const double replay_ms = timer.stop();
    const double after_bytes =
        static_cast<double>(spilled.store().resident_bytes()) +
        static_cast<double>(spilled.arena_bytes());
    NM_REQUIRE(spilled.store().evictions() > 0,
               "the spill bench must actually exceed its cache cap");

    bool identical = report.cells.size() == golden.cells.size();
    for (std::size_t c = 0; identical && c < report.cells.size(); ++c) {
      identical = report.cells[c].report.energy_j ==
                      golden.cells[c].report.energy_j &&
                  report.cells[c].report.radio_on_ms ==
                      golden.cells[c].report.radio_on_ms;
    }

    const double per_gb_before =
        before_bytes > 0.0 ? n * kGiB / before_bytes : 0.0;
    const double per_gb_after =
        after_bytes > 0.0 ? n * kGiB / after_bytes : 0.0;
    const double gain =
        per_gb_before > 0.0 ? per_gb_after / per_gb_before : 0.0;
    const std::size_t total_events = events * suite.size();
    const double ns_per_event =
        total_events > 0 ? replay_ms * 1e6 / total_events : 0.0;
    const std::string tag = "_" + std::to_string(n) + "_users";
    bench::record_scalar("mem_users_per_gb_before" + tag, per_gb_before);
    bench::record_scalar("mem_users_per_gb_after" + tag, per_gb_after);
    bench::record_scalar("mem_footprint_gain" + tag, gain);
    bench::record_scalar("mem_replay_ns_per_event" + tag, ns_per_event);
    bench::record_scalar("mem_store_evictions" + tag,
                         static_cast<double>(spilled.store().evictions()));
    bench::record_scalar("mem_spill_bit_identical" + tag,
                         identical ? 1.0 : 0.0);
    t.add_row({std::to_string(n), eval::Table::num(before_bytes / kMiB, 1),
               eval::Table::num(after_bytes / kMiB, 1),
               eval::Table::num(per_gb_before, 0),
               eval::Table::num(per_gb_after, 0),
               eval::Table::num(gain, 2) + "x",
               eval::Table::num(ns_per_event, 1),
               identical ? "bit-identical" : "MISMATCH"});
  }
  bench::emit(t, "memory_architecture");
  std::cout << "expected shape: >= 2x users per GB at every population "
               "size; spilled replay bit-identical to the golden "
               "all-resident run\n\n";
  print_skew_figure();
}

// ---- Work-stealing job graph vs barrier stages on a skewed fleet. ----
//
// The barrier shape is the pre-job-system pipeline: a static-stride
// parallel_for over per-user preparation, a full join, then another
// static-stride parallel_for over the N×M cell grid. With a
// heavy-tailed fleet (one user with 10 weeks of evaluation trace among
// one-week users) every stage waits for its slowest straggler twice.
// The graph path (the shipping run_fleet) hangs each user's cells off
// its own prepare task, so light users' rows drain while the heavy
// user is still indexing.
//
// This container is not guaranteed 8 cores, so the >= 8-thread
// comparison is *modeled* from per-task durations measured
// single-threaded: the barrier model is the max static-stride worker
// sum per stage (summed across stages), the graph model is greedy list
// scheduling of the prepare -> cells DAG onto 8 workers. The measured
// wall ratio at 8 threads is recorded alongside as a separate scalar.

/// Heavy-tailed fleet: user 0 carries 70 evaluation days, user 1 four
/// weeks, everyone else one week. Training is 14 days for all, so
/// mining cost is uniform and the skew is in the replay horizon.
std::vector<eval::VolunteerTraces> skewed_fleet(int n) {
  std::vector<eval::VolunteerTraces> fleet;
  fleet.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    eval::ExperimentConfig cfg;
    cfg.seed = bench::kDefaultSeed + static_cast<std::uint64_t>(i);
    cfg.train_days = 14;
    cfg.eval_days = i == 0 ? 70 : i == 1 ? 28 : 7;
    fleet.push_back(eval::make_traces(
        synth::make_user(static_cast<synth::Archetype>(i % 8), i + 1),
        cfg));
  }
  return fleet;
}

struct BarrierRun {
  std::vector<double> energies;  ///< n*m cell energies, user-major
  std::vector<double> prep_ms;   ///< per-user stage-1 task durations
  std::vector<double> cell_ms;   ///< per-cell stage-2 task durations
  double wall_ms = 0.0;
};

/// The pre-job-system pipeline, replicated on static_parallel_for:
/// stage 1 prepares every user's index behind a barrier, stage 2 runs
/// the cell grid behind another.
BarrierRun run_barrier(const std::vector<eval::VolunteerTraces>& fleet,
                       const std::vector<eval::PolicySpec>& suite,
                       const RadioModel& radio, unsigned threads) {
  const std::size_t n = fleet.size();
  const std::size_t m = suite.size();
  BarrierRun out;
  out.energies.assign(n * m, 0.0);
  out.prep_ms.assign(n, 0.0);
  out.cell_ms.assign(n * m, 0.0);
  std::vector<std::unique_ptr<engine::TraceIndex>> indexes(n);
  obs::ScopedTimer wall;
  static_parallel_for(
      n,
      [&](std::size_t u) {
        obs::ScopedTimer timer;
        fleet[u].eval.validate();
        indexes[u] = std::make_unique<engine::TraceIndex>(fleet[u].eval);
        out.prep_ms[u] = timer.stop();
      },
      threads);
  static_parallel_for(
      n * m,
      [&](std::size_t c) {
        obs::ScopedTimer timer;
        const std::size_t u = c / m;
        const auto pol = suite[c % m].make(fleet[u].training);
        out.energies[c] =
            sim::account(fleet[u].eval, pol->run(*indexes[u]), radio)
                .energy_j;
        out.cell_ms[c] = timer.stop();
      },
      threads);
  out.wall_ms = wall.stop();
  return out;
}

/// Modeled makespan of the barrier pipeline at `workers`: per stage,
/// the max static-stride per-worker sum (index i -> worker i % W, the
/// partition static_parallel_for uses); stages add because of the full
/// join between them.
double barrier_makespan(const std::vector<double>& prep_ms,
                        const std::vector<double>& cell_ms, int workers,
                        std::vector<double>& busy) {
  busy.assign(static_cast<std::size_t>(workers), 0.0);
  double makespan = 0.0;
  for (const std::vector<double>* stage : {&prep_ms, &cell_ms}) {
    std::vector<double> per(static_cast<std::size_t>(workers), 0.0);
    for (std::size_t i = 0; i < stage->size(); ++i) {
      per[i % workers] += (*stage)[i];
    }
    double stage_max = 0.0;
    for (int w = 0; w < workers; ++w) {
      busy[static_cast<std::size_t>(w)] += per[static_cast<std::size_t>(w)];
      stage_max = std::max(stage_max, per[static_cast<std::size_t>(w)]);
    }
    makespan += stage_max;
  }
  return makespan;
}

/// Modeled makespan of the dependency graph at `workers`: greedy list
/// scheduling of prepare(u) -> {cells of u} — repeatedly assign the
/// schedulable task with the earliest possible start to the worker that
/// can start it earliest (ties by submission index, then worker).
double graph_makespan(const std::vector<double>& prep_ms,
                      const std::vector<double>& cell_ms, std::size_t m,
                      int workers, std::vector<double>& busy) {
  const std::size_t n = prep_ms.size();
  std::vector<double> free_at(static_cast<std::size_t>(workers), 0.0);
  busy.assign(static_cast<std::size_t>(workers), 0.0);
  struct Cand {
    double release;
    double dur;
    std::size_t idx;  // < n: prepare task for user idx
  };
  std::vector<Cand> ready;
  for (std::size_t u = 0; u < n; ++u) {
    ready.push_back({0.0, prep_ms[u], u});
  }
  double makespan = 0.0;
  while (!ready.empty()) {
    std::size_t best = 0;
    std::size_t best_w = 0;
    double best_start = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < ready.size(); ++i) {
      for (std::size_t w = 0; w < free_at.size(); ++w) {
        const double start = std::max(ready[i].release, free_at[w]);
        if (start < best_start ||
            (start == best_start && ready[i].idx < ready[best].idx)) {
          best_start = start;
          best = i;
          best_w = w;
        }
      }
    }
    const Cand task = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    const double done = best_start + task.dur;
    free_at[best_w] = done;
    busy[best_w] += task.dur;
    makespan = std::max(makespan, done);
    if (task.idx < n) {  // a prepare completed: release its row
      for (std::size_t p = 0; p < m; ++p) {
        ready.push_back({done, cell_ms[task.idx * m + p],
                         n + task.idx * m + p});
      }
    }
  }
  return makespan;
}

/// Nearest-rank p10 of per-worker utilization — the straggler gauge:
/// how busy the *least* loaded decile of workers is over the run.
double utilization_p10(const std::vector<double>& busy, double makespan) {
  if (makespan <= 0.0 || busy.empty()) return 0.0;
  std::vector<double> util;
  util.reserve(busy.size());
  for (const double b : busy) util.push_back(b / makespan);
  std::sort(util.begin(), util.end());
  const std::size_t rank =
      std::max<std::size_t>(1, (util.size() * 10 + 99) / 100);
  return util[rank - 1];
}

void print_skew_figure() {
  bench::banner(
      "Work-stealing job graph vs barrier stages — skewed fleet",
      "per-user dependency chains on a heavy-tailed population "
      "(refactor target: >= 1.15x modeled at 8 workers, bit-identical)");
  constexpr int kWorkers = 8;
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  const RadioModel radio = cfg.netmaster.profit.radio;
  const auto fleet = skewed_fleet(16);

  // Per-task durations measured single-threaded, element-wise best of
  // three passes to shave scheduler noise off the makespan models.
  BarrierRun seq = run_barrier(fleet, suite, radio, 1);
  for (int rep = 0; rep < 2; ++rep) {
    const BarrierRun again = run_barrier(fleet, suite, radio, 1);
    for (std::size_t u = 0; u < seq.prep_ms.size(); ++u) {
      seq.prep_ms[u] = std::min(seq.prep_ms[u], again.prep_ms[u]);
    }
    for (std::size_t c = 0; c < seq.cell_ms.size(); ++c) {
      seq.cell_ms[c] = std::min(seq.cell_ms[c], again.cell_ms[c]);
    }
  }

  // The shipping graph path must be bit-identical to the barrier
  // replica, cell for cell.
  const eval::FleetReport report =
      eval::run_fleet(fleet, suite, cfg, kWorkers);
  NM_REQUIRE(report.cells.size() == seq.energies.size(),
             "graph and barrier paths must produce the same cell grid");
  bool identical = true;
  for (std::size_t c = 0; c < seq.energies.size(); ++c) {
    if (report.cells[c].report.energy_j != seq.energies[c]) {
      identical = false;
    }
  }
  NM_REQUIRE(identical,
             "job-graph fleet must be bit-identical to the barrier path");

  // Modeled makespans at 8 workers from the measured durations.
  std::vector<double> busy_barrier;
  std::vector<double> busy_graph;
  const double barrier_model =
      barrier_makespan(seq.prep_ms, seq.cell_ms, kWorkers, busy_barrier);
  const double graph_model = graph_makespan(seq.prep_ms, seq.cell_ms,
                                            suite.size(), kWorkers,
                                            busy_graph);
  const double speedup =
      graph_model > 0.0 ? barrier_model / graph_model : 0.0;
  const double p10_barrier = utilization_p10(busy_barrier, barrier_model);
  const double p10_graph = utilization_p10(busy_graph, graph_model);

  // Measured walls at 8 threads (on a 1-core container both degenerate
  // to the serial sum — recorded, not gated).
  const double barrier_wall = best_of_ms(
      2, [&] { run_barrier(fleet, suite, radio, kWorkers); });
  const double graph_wall = best_of_ms(
      2, [&] { eval::run_fleet(fleet, suite, cfg, kWorkers); });
  const double wall_speedup =
      graph_wall > 0.0 ? barrier_wall / graph_wall : 0.0;

  eval::Table t({"path", "modeled ms @8w", "util p10", "measured ms @8t",
                 "results"});
  t.add_row({"barrier stages", eval::Table::num(barrier_model, 1),
             eval::Table::pct(p10_barrier),
             eval::Table::num(barrier_wall, 1), "reference"});
  t.add_row({"job graph", eval::Table::num(graph_model, 1),
             eval::Table::pct(p10_graph), eval::Table::num(graph_wall, 1),
             identical ? "bit-identical" : "MISMATCH"});
  bench::emit(t, "skewed_fleet_jobgraph");
  bench::record_scalar("skew_speedup_8t", speedup);
  bench::record_scalar("skew_wall_speedup_8t", wall_speedup);
  bench::record_scalar("skew_util_p10_barrier", p10_barrier);
  bench::record_scalar("skew_util_p10_graph", p10_graph);
  bench::record_scalar("skew_bit_identical", identical ? 1.0 : 0.0);
  std::cout << "expected shape: >= 1.15x modeled speedup at 8 workers "
               "with a higher utilization floor; cell energies "
               "bit-identical between paths\n\n";
}

void BM_LegacySweep16(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  const auto users = population(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy_sweep_energy(users, cfg, suite));
  }
}
BENCHMARK(BM_LegacySweep16)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FleetSweep16(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  const auto users = population(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet_sweep_energy(users, cfg, suite));
  }
}
BENCHMARK(BM_FleetSweep16)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SpillSweep16(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  cfg.store.cache_cap_bytes = 256 * 1024;
  const auto suite = eval::standard_policy_suite(cfg.netmaster);
  const eval::EvalSession session(population(16), cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::run_fleet(session, suite));
  }
}
BENCHMARK(BM_SpillSweep16)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Population16(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_population(16, threads));
  }
}
BENCHMARK(BM_Population16)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

NETMASTER_BENCH_MAIN()
