// Fig. 4 — Pearson correlation of one user's hourly usage vectors
// across days (the paper shows user 4 over 8 days, average 0.8171):
// a single user's pattern repeats day to day, so it is predictable.
#include <iostream>

#include "bench_common.hpp"
#include "mining/pearson.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

constexpr int kDays = 21;
constexpr int kMatrixDays = 8;  // the paper's Fig. 4 spans 8 days

UserTrace subject_trace() {
  // The paper's Fig. 4 subject is user 4; our study population's user 4
  // is the commuter archetype.
  const auto profiles = synth::study_population();
  return synth::generate_trace(profiles[3], kDays, bench::kDefaultSeed);
}

void print_figure() {
  bench::banner("Fig. 4 — cross-day Pearson matrix (user 4)",
                "average 0.8171 (high intra-user correlation)");
  const UserTrace trace = subject_trace();
  const mining::CorrelationMatrix m =
      mining::cross_day_matrix(trace, kMatrixDays);

  std::vector<std::string> headers{"day"};
  for (std::size_t j = 0; j < m.n; ++j) {
    headers.push_back(std::to_string(j + 1));
  }
  eval::Table t(headers);
  for (std::size_t i = 0; i < m.n; ++i) {
    std::vector<std::string> row{std::to_string(i + 1)};
    for (std::size_t j = 0; j < m.n; ++j) {
      row.push_back(eval::Table::num(m.at(i, j), 2));
    }
    t.add_row(std::move(row));
  }
  bench::emit(t);

  // The full-study statistic: per-user cross-day mean over all users.
  const auto profiles = synth::study_population();
  double sum = 0.0;
  for (const auto& profile : profiles) {
    const UserTrace u =
        synth::generate_trace(profile, kDays, bench::kDefaultSeed);
    sum += mining::cross_day_matrix(u, kDays).off_diagonal_mean();
  }
  std::cout << "measured: user-4 mean "
            << eval::Table::num(m.off_diagonal_mean(), 4)
            << " (paper: 0.8171); all-user cross-day mean "
            << eval::Table::num(sum / static_cast<double>(profiles.size()),
                                4)
            << " (paper: 0.54)\n\n";
}

void BM_CrossDayMatrix(benchmark::State& state) {
  const UserTrace trace = subject_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::cross_day_matrix(trace, kMatrixDays));
  }
}
BENCHMARK(BM_CrossDayMatrix);

}  // namespace

NETMASTER_BENCH_MAIN()
