// Extension — non-stationary users and drift adaptation (ROADMAP 5).
//
// Sweeps drift archetype (stationary / abrupt / gradual / seasonal)
// against the detector-driven adaptation loop (off vs on) and reports
// how much of the savings lost to a stale model the adaptive executive
// recovers, at what interruption cost. The reference for "lost" is a
// prescient run whose model is mined from the drifted evaluation trace
// itself — the ceiling any adaptation could reach on the same events.
// The stationary row doubles as the regression golden: with no drift,
// detector-on must replay bit-identically to detector-off (no alarms,
// no refreshes), which the CI smoke asserts from the emitted scalars.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "engine/trace_index.hpp"
#include "eval/session.hpp"
#include "policy/baseline.hpp"
#include "service/online_sim.hpp"
#include "sim/accounting.hpp"
#include "synth/drift.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

// Drift pairs whose habit structures genuinely differ. Drifting toward
// a habit-adjacent archetype is nearly energy-neutral for the online
// executive (batching at screen-on and duty wakes is model-free), so
// the population picks base → target pairs that shift activity volume
// and waking hours — the regime where a stale model measurably costs
// energy through mistimed releases and fruitless duty probes.
struct DriftUser {
  synth::Archetype base;
  synth::Archetype target;
};

constexpr DriftUser kUsers[] = {
    {synth::Archetype::kLightUser, synth::Archetype::kOfficeWorker},
    {synth::Archetype::kLightUser, synth::Archetype::kNightOwl},
    {synth::Archetype::kLightUser, synth::Archetype::kHeavyMessenger},
    {synth::Archetype::kCommuter, synth::Archetype::kNightOwl},
    {synth::Archetype::kCommuter, synth::Archetype::kHeavyMessenger},
    {synth::Archetype::kRetiree, synth::Archetype::kNightOwl},
};
constexpr int kNumUsers = static_cast<int>(std::size(kUsers));

// Long evaluation window: the detector needs a few days to alarm and
// the refreshed model then needs days to pay the alarm back, so a
// one-week horizon would under-report the achievable recovery.
eval::ExperimentConfig config() {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  cfg.train_days = 14;
  cfg.eval_days = 35;
  return cfg;
}

synth::DriftSpec spec_for(synth::DriftKind kind, synth::Archetype target) {
  synth::DriftSpec spec;
  spec.kind = kind;
  spec.target = target;
  spec.onset_day = 2;  // eval-relative: the mined model goes stale early
  spec.ramp_days = 7;
  spec.period_days = 14;
  return spec;
}

const char* kind_name(synth::DriftKind kind) {
  switch (kind) {
    case synth::DriftKind::kNone: return "stationary";
    case synth::DriftKind::kAbrupt: return "abrupt";
    case synth::DriftKind::kGradual: return "gradual";
    case synth::DriftKind::kSeasonal: return "seasonal";
  }
  return "?";
}

/// One user's prepared state for a drift kind, index built once and
/// shared by every detector cell. The traces live behind a stable
/// pointer because the index borrows them by address.
struct PreparedUser {
  std::unique_ptr<eval::VolunteerTraces> traces;
  std::unique_ptr<engine::TraceIndex> index;
  double baseline_energy_j = 0.0;
};

std::vector<PreparedUser> prepare(synth::DriftKind kind) {
  const eval::ExperimentConfig cfg = config();
  const RadioPowerParams radio = RadioPowerParams::wcdma();
  std::vector<PreparedUser> users;
  users.reserve(kNumUsers);
  for (int u = 0; u < kNumUsers; ++u) {
    eval::ExperimentConfig user_cfg = cfg;
    user_cfg.seed = cfg.seed + static_cast<std::uint64_t>(u);
    PreparedUser p;
    p.traces =
        std::make_unique<eval::VolunteerTraces>(eval::make_drifting_traces(
            synth::make_user(kUsers[u].base, u + 1), user_cfg,
            spec_for(kind, kUsers[u].target)));
    p.index = std::make_unique<engine::TraceIndex>(p.traces->eval);
    p.baseline_energy_j =
        sim::account(p.traces->eval,
                     policy::BaselinePolicy().run(p.traces->eval), radio)
            .energy_j;
    users.push_back(std::move(p));
  }
  return users;
}

enum class Cell {
  kDetectorOff,  ///< stale model, no adaptation
  kDetectorOn,   ///< full detect → re-mine → hot-swap loop
  kPrescient,    ///< model mined from the drifted eval itself (ceiling)
};

struct CellResult {
  double energy_j = 0.0;           ///< exact sum over users
  double baseline_energy_j = 0.0;
  StreamingStats saving;           ///< per-user 1 − E / E_baseline
  double worst_affected = 0.0;
  std::size_t alarms = 0;
  std::size_t refreshes = 0;

  double saving_agg() const { return 1.0 - energy_j / baseline_energy_j; }
};

CellResult run_cell(const std::vector<PreparedUser>& users, Cell cell) {
  const eval::ExperimentConfig cfg = config();
  const RadioPowerParams radio = RadioPowerParams::wcdma();
  service::AdaptationConfig adapt;
  adapt.enable = cell == Cell::kDetectorOn;
  CellResult out;
  for (const PreparedUser& p : users) {
    const UserTrace& training = cell == Cell::kPrescient
                                    ? p.traces->eval
                                    : p.traces->training;
    const service::OnlineSimResult r =
        service::run_online(training, *p.index, cfg.netmaster, adapt);
    const sim::SimReport rep =
        sim::account(p.traces->eval, r.outcome, radio);
    out.energy_j += rep.energy_j;
    out.baseline_energy_j += p.baseline_energy_j;
    out.saving.add(1.0 - rep.energy_j / p.baseline_energy_j);
    out.worst_affected =
        std::max(out.worst_affected, rep.affected_fraction);
    out.alarms += r.drift_alarms;
    out.refreshes += r.model_refreshes;
  }
  return out;
}

void print_figure() {
  bench::banner(
      "Extension — drift adaptation (detector on vs off)",
      "a stale model bleeds savings under habit drift; the detector + "
      "re-mine loop recovers most of the loss while the stationary run "
      "stays bit-identical (paper assumes stationary users)");

  const std::vector<synth::DriftKind> kinds = {
      synth::DriftKind::kNone, synth::DriftKind::kAbrupt,
      synth::DriftKind::kGradual, synth::DriftKind::kSeasonal};

  eval::Table t({"drift", "detector", "saving", "saving min",
                 "worst affected", "alarms", "refreshes"});

  double stationary_saving = 0.0;
  double stationary_affected = 0.0;
  for (const synth::DriftKind kind : kinds) {
    const std::vector<PreparedUser> users = prepare(kind);
    const CellResult off = run_cell(users, Cell::kDetectorOff);
    const CellResult on = run_cell(users, Cell::kDetectorOn);
    const CellResult pre = run_cell(users, Cell::kPrescient);
    for (const auto* cell : {&off, &on}) {
      t.add_row({kind_name(kind), cell == &on ? "on" : "off",
                 eval::Table::pct(cell->saving_agg()),
                 eval::Table::pct(cell->saving.min()),
                 eval::Table::pct(cell->worst_affected, 2),
                 std::to_string(cell->alarms),
                 std::to_string(cell->refreshes)});
    }

    const std::string name = kind_name(kind);
    bench::record_scalar("drift_saving_" + name + "_off",
                         off.saving_agg());
    bench::record_scalar("drift_saving_" + name + "_on", on.saving_agg());
    bench::record_scalar("drift_saving_" + name + "_prescient",
                         pre.saving_agg());
    bench::record_scalar("drift_affected_" + name + "_on",
                         on.worst_affected);
    bench::record_scalar("drift_alarms_" + name,
                         static_cast<double>(on.alarms));
    bench::record_scalar("drift_refreshes_" + name,
                         static_cast<double>(on.refreshes));

    if (kind == synth::DriftKind::kNone) {
      stationary_saving = off.saving_agg();
      stationary_affected = off.worst_affected;
      // The regression golden: with no drift the adaptation loop must
      // be pure observation — same schedule bit for bit, no refreshes.
      const bool bitwise =
          off.energy_j == on.energy_j && on.refreshes == 0;
      bench::record_scalar("drift_stationary_bitwise",
                           bitwise ? 1.0 : 0.0);
    } else {
      // Recovery: the share of the drift-induced saving loss — stale
      // detector-off vs the prescient ceiling on the same traces —
      // the adaptive run wins back.
      const double lost = pre.saving_agg() - off.saving_agg();
      const double recovered = on.saving_agg() - off.saving_agg();
      bench::record_scalar("drift_recovery_" + name,
                           lost > 0.0 ? recovered / lost : 1.0);
    }
  }
  bench::record_scalar("drift_saving_stationary", stationary_saving);
  bench::record_scalar("drift_affected_stationary", stationary_affected);

  bench::emit(t);
  std::cout << "expected shape: detector-off savings sag under every "
               "drift kind; detector-on claws back >= 50% of the loss "
               "on the changepoint kinds (abrupt, gradual) with bounded "
               "interrupts, a smaller share on seasonal (each mode flip "
               "re-stales the freshly adopted model), and the "
               "stationary pair is bit-identical with zero refreshes\n\n";
}

// ---- Timings: the drift machinery itself. ----------------------------

void BM_DetectorSeedAndMonitor(benchmark::State& state) {
  // Full detector life-cycle: seed on 14 training days, adopt, then
  // monitor 35 evaluation days.
  const eval::ExperimentConfig cfg = config();
  const eval::VolunteerTraces traces = eval::make_drifting_traces(
      synth::make_user(kUsers[0].base, 1), cfg,
      spec_for(synth::DriftKind::kAbrupt, kUsers[0].target));
  const engine::TraceIndex train_idx(traces.training);
  const engine::TraceIndex eval_idx(traces.eval);
  for (auto _ : state) {
    mining::DriftDetector detector;
    detector.observe_index(train_idx);
    detector.notify_adapted();
    detector.observe_index(eval_idx);
    benchmark::DoNotOptimize(detector.score());
  }
}
BENCHMARK(BM_DetectorSeedAndMonitor)->Unit(benchmark::kMicrosecond);

void BM_IncrementalFoldDay(benchmark::State& state) {
  const eval::ExperimentConfig cfg = config();
  const eval::VolunteerTraces traces = eval::make_traces(
      synth::make_user(synth::Archetype::kOfficeWorker, 1), cfg);
  const engine::TraceIndex index(traces.training);
  const mining::DayContribution day =
      mining::IncrementalHabitMiner::summarize_day(0, index);
  mining::IncrementalHabitMiner miner(mining::IncrementalConfig{0.12});
  for (auto _ : state) {
    miner.observe_summary(day);
    benchmark::DoNotOptimize(miner.effective_days(day.kind));
  }
}
BENCHMARK(BM_IncrementalFoldDay)->Unit(benchmark::kNanosecond);

void BM_AdaptiveReplayAbrupt(benchmark::State& state) {
  const eval::ExperimentConfig cfg = config();
  const eval::VolunteerTraces traces = eval::make_drifting_traces(
      synth::make_user(kUsers[0].base, 1), cfg,
      spec_for(synth::DriftKind::kAbrupt, kUsers[0].target));
  const engine::TraceIndex index(traces.eval);
  service::AdaptationConfig adapt;
  adapt.enable = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        service::run_online(traces.training, index, cfg.netmaster, adapt));
  }
}
BENCHMARK(BM_AdaptiveReplayAbrupt)->Unit(benchmark::kMillisecond);

void BM_PlainReplayAbrupt(benchmark::State& state) {
  // The no-adaptation reference for the loop's overhead.
  const eval::ExperimentConfig cfg = config();
  const eval::VolunteerTraces traces = eval::make_drifting_traces(
      synth::make_user(kUsers[0].base, 1), cfg,
      spec_for(synth::DriftKind::kAbrupt, kUsers[0].target));
  const engine::TraceIndex index(traces.eval);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        service::run_online(traces.training, index, cfg.netmaster));
  }
}
BENCHMARK(BM_PlainReplayAbrupt)->Unit(benchmark::kMillisecond);

}  // namespace

NETMASTER_BENCH_MAIN()
