// netmasterd service throughput (ROADMAP item 1).
//
// Where the figure benches replay recorded traces in batch, this bench
// drives the long-lived daemon with the deterministic load generator
// and reports what a deployment would care about: sustained ingest
// events/sec through the sharded pipeline (folds, incremental mining
// and model builds riding along), per-request latency quantiles for
// the blocking enqueue, wire-protocol line throughput, and — the
// correctness anchor — a batch-equivalence scalar that is 1.0 only
// when every streamed schedule matches the batch policy path bit for
// bit (CI gates on it).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "daemon/loadgen.hpp"
#include "daemon/netmasterd.hpp"
#include "engine/trace_index.hpp"
#include "net/protocol.hpp"
#include "policy/netmaster.hpp"

namespace {

using namespace netmaster;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// p-th quantile of a latency sample (microseconds), by selection.
double quantile_us(std::vector<double>& sample, double p) {
  if (sample.empty()) return 0.0;
  const std::size_t k = std::min(
      sample.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sample.size())));
  std::nth_element(sample.begin(), sample.begin() + static_cast<long>(k),
                   sample.end());
  return sample[k];
}

bool outcomes_bitwise_equal(const sim::PolicyOutcome& a,
                            const sim::PolicyOutcome& b) {
  if (a.transfers.size() != b.transfers.size()) return false;
  for (std::size_t i = 0; i < a.transfers.size(); ++i) {
    if (a.transfers[i].activity_index != b.transfers[i].activity_index ||
        a.transfers[i].start != b.transfers[i].start ||
        a.transfers[i].duration != b.transfers[i].duration) {
      return false;
    }
  }
  return a.interrupts == b.interrupts &&
         a.duty_releases == b.duty_releases;
}

daemon::LoadPlan make_plan() {
  daemon::LoadConfig load;
  load.users = 8;  // one of each archetype
  load.train_days = 14;
  load.eval_days = 7;
  load.seed = bench::kDefaultSeed;
  return daemon::build_load_plan(load);
}

void print_figure() {
  bench::banner(
      "netmasterd streaming-service throughput",
      "long-lived middleware: continuous monitoring feeds incremental "
      "per-day mining (decay 0 == batch, Section V)");

  const daemon::LoadPlan plan = make_plan();

  // ---- Direct-API ingest throughput + enqueue latency tail. ----
  daemon::DaemonConfig config;
  config.num_shards = 4;
  daemon::Netmasterd svc(config);
  for (const daemon::LoadUser& user : plan.users) {
    svc.add_user(user.session);
  }
  std::vector<double> latency_us;
  latency_us.reserve(plan.events.size());
  const Clock::time_point ingest_start = Clock::now();
  for (const daemon::LoadEvent& event : plan.events) {
    const Clock::time_point t0 = Clock::now();
    svc.ingest(event.user, event.record);
    latency_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - t0)
            .count());
  }
  for (const daemon::LoadUser& user : plan.users) {
    svc.finish_user(user.session.user);
  }
  svc.drain();  // everything folded, mined, schedulable
  const double ingest_s = seconds_since(ingest_start);
  const double events_per_sec =
      ingest_s > 0.0 ? static_cast<double>(plan.events.size()) / ingest_s
                     : 0.0;

  // ---- The correctness anchor: streamed == batch, bit for bit. ----
  bool all_equal = true;
  for (const daemon::LoadUser& user : plan.users) {
    const daemon::ScheduleResult streamed =
        svc.schedule(user.session.user);
    const policy::NetMasterPolicy batch(user.training, config.policy);
    const sim::PolicyOutcome expected =
        batch.run(engine::TraceIndex(user.eval));
    all_equal = all_equal && streamed.model_version == 1 &&
                outcomes_bitwise_equal(streamed.outcome, expected);
  }
  const double equivalence = all_equal ? 1.0 : 0.0;

  // ---- Wire-protocol line throughput (parse + dispatch + reply). ----
  daemon::Netmasterd wire;
  const std::vector<std::string> lines = daemon::plan_request_lines(plan);
  const Clock::time_point wire_start = Clock::now();
  for (const std::string& line : lines) wire.handle_line(line);
  wire.drain();
  const double wire_s = seconds_since(wire_start);
  const double lines_per_sec =
      wire_s > 0.0 ? static_cast<double>(lines.size()) / wire_s : 0.0;

  const double p50 = quantile_us(latency_us, 0.50);
  const double p90 = quantile_us(latency_us, 0.90);
  const double p99 = quantile_us(latency_us, 0.99);

  eval::Table t({"surface", "requests", "seconds", "req/sec", "p50 us",
                 "p90 us", "p99 us"});
  t.add_row({"direct ingest", std::to_string(plan.events.size()),
             eval::Table::num(ingest_s, 3),
             eval::Table::num(events_per_sec, 0), eval::Table::num(p50, 2),
             eval::Table::num(p90, 2), eval::Table::num(p99, 2)});
  t.add_row({"wire lines", std::to_string(lines.size()),
             eval::Table::num(wire_s, 3),
             eval::Table::num(lines_per_sec, 0), "-", "-", "-"});
  bench::emit(t, "service_throughput");

  eval::Table eq({"check", "value"});
  eq.add_row({"batch equivalence (1 = bit-for-bit)",
              eval::Table::num(equivalence, 0)});
  eq.add_row({"users", std::to_string(plan.users.size())});
  eq.add_row({"days folded per user",
              std::to_string(plan.users.empty()
                                 ? 0
                                 : plan.users[0].session.num_days)});
  bench::emit(eq, "equivalence");

  bench::record_scalar("daemon_events_per_sec", events_per_sec);
  bench::record_scalar("daemon_wire_lines_per_sec", lines_per_sec);
  bench::record_scalar("daemon_ingest_p50_us", p50);
  bench::record_scalar("daemon_ingest_p90_us", p90);
  bench::record_scalar("daemon_ingest_p99_us", p99);
  bench::record_scalar("daemon_batch_equivalence", equivalence);
}

// ---- Micro benches. --------------------------------------------------

void BM_ParseIngestLine(benchmark::State& state) {
  const std::string line = "ingest 3 net 1600 2 5000 1024 256 1 0";
  net::Request req;
  std::string error;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_request(line, req, error));
  }
}
BENCHMARK(BM_ParseIngestLine);

void BM_FormatIngestLine(benchmark::State& state) {
  const net::Request req =
      net::make_net_request(3, 1600, 2, 5000, 1024, 256, true, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::format_request(req));
  }
}
BENCHMARK(BM_FormatIngestLine);

void BM_ScheduleRoundTrip(benchmark::State& state) {
  // Cached-schedule request: measures the synchronous command round
  // trip through a shard queue (enqueue, worker dispatch, future).
  static daemon::Netmasterd* svc = [] {
    daemon::LoadConfig load;
    load.users = 1;
    auto* d = new daemon::Netmasterd();
    daemon::replay_plan(daemon::build_load_plan(load), *d);
    d->schedule(0);  // warm the cache
    return d;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc->schedule(0));
  }
}
BENCHMARK(BM_ScheduleRoundTrip);

}  // namespace

NETMASTER_BENCH_MAIN()
