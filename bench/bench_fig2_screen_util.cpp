// Fig. 2 — Screen-on time utilization per user: average screen-session
// length vs the part of it carrying traffic. The paper reports an
// average radio utilization ratio of 45.14% (over half of screen-on
// radio time is wasted).
#include <iostream>

#include "bench_common.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"
#include "trace/trace_stats.hpp"

namespace {

using namespace netmaster;

constexpr int kDays = 21;

TraceSet study_traces() {
  return synth::generate_population(synth::study_population(), kDays,
                                    bench::kDefaultSeed);
}

void print_figure() {
  bench::banner("Fig. 2 — screen-on time utilization",
                "average radio utilization ratio 45.14%");
  const TraceSet traces = study_traces();

  eval::Table t({"user", "avg session (s)", "utilized (s)",
                 "utilization"});
  double util_sum = 0.0;
  for (const UserTrace& trace : traces.users) {
    const ScreenUtilization u = screen_utilization(trace);
    util_sum += u.radio_utilization;
    t.add_row({std::to_string(trace.user),
               eval::Table::num(u.avg_session_s, 1),
               eval::Table::num(u.avg_utilized_s, 1),
               eval::Table::pct(u.radio_utilization)});
  }
  bench::emit(t);
  std::cout << "measured average utilization: "
            << eval::Table::pct(
                   util_sum / static_cast<double>(traces.users.size()))
            << "  (paper: 45.14%)\n\n";
}

void BM_ScreenUtilization(benchmark::State& state) {
  const TraceSet traces = study_traces();
  for (auto _ : state) {
    for (const UserTrace& t : traces.users) {
      benchmark::DoNotOptimize(screen_utilization(t));
    }
  }
}
BENCHMARK(BM_ScreenUtilization);

}  // namespace

NETMASTER_BENCH_MAIN()
