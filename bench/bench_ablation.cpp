// Ablation — component knock-out study (DESIGN.md): the full system
// versus NetMaster with prediction, duty cycling, or special-app
// tracking disabled, quantifying each component's contribution to
// energy saving and user experience.
#include <iostream>

#include "bench_common.hpp"
#include "eval/experiments.hpp"
#include "policy/baseline.hpp"
#include "policy/netmaster.hpp"
#include "sim/accounting.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

void print_figure() {
  bench::banner("Ablation — NetMaster component knock-outs",
                "each component's contribution to saving / UX");
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto rows =
      eval::ablation_study(synth::volunteer_population(), cfg);

  eval::Table t({"variant", "energy saving", "affected users",
                 "mean deferral (s)", "duty wake-ups"});
  for (const auto& row : rows) {
    t.add_row({row.variant, eval::Table::pct(row.energy_saving),
               eval::Table::pct(row.affected_fraction, 2),
               eval::Table::num(row.mean_deferral_latency_s, 1),
               eval::Table::num(row.wake_count, 0)});
  }
  bench::emit(t);
  std::cout << "expectation: disabling prediction pushes everything "
               "through the duty path (higher latency); disabling the "
               "duty cycle strands unpredicted transfers; disabling "
               "special apps raises interrupts\n";

  // ε sensitivity end to end (the paper fixes ε = 0.1 "to guarantee
  // good performance while control the computational overhead").
  std::cout << "\nSinKnap ε sensitivity (end-to-end, 3 volunteers)\n";
  eval::Table e({"eps", "energy saving", "affected users"});
  for (double eps : {0.01, 0.1, 0.5, 0.9}) {
    double saving = 0.0, affected = 0.0;
    for (const synth::UserProfile& profile :
         synth::volunteer_population()) {
      const eval::VolunteerTraces traces =
          eval::make_traces(profile, cfg);
      policy::NetMasterConfig nm = cfg.netmaster;
      nm.eps = eps;
      const policy::NetMasterPolicy p(traces.training, nm);
      const policy::BaselinePolicy baseline;
      const RadioPowerParams& radio = cfg.netmaster.profit.radio;
      const sim::SimReport base =
          sim::account(traces.eval, baseline.run(traces.eval), radio);
      const sim::SimReport rep =
          sim::account(traces.eval, p.run(traces.eval), radio);
      if (base.energy_j > 0.0) {
        saving += 1.0 - rep.energy_j / base.energy_j;
      }
      affected += rep.affected_fraction;
    }
    e.add_row({eval::Table::num(eps, 2), eval::Table::pct(saving / 3.0),
               eval::Table::pct(affected / 3.0, 2)});
  }
  bench::emit(e);
  std::cout << "expected shape: savings barely move with ε on trace "
               "workloads (capacity rarely binds) — ε = 0.1 is a safe "
               "default\n\n";
}

void BM_AblationFull(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const std::vector<synth::UserProfile> one = {
      synth::volunteer_population().front()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::ablation_study(one, cfg));
  }
}
BENCHMARK(BM_AblationFull)->Unit(benchmark::kMillisecond);

}  // namespace

NETMASTER_BENCH_MAIN()
