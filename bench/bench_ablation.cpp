// Ablation — component knock-out study (DESIGN.md): the full system
// versus NetMaster with prediction, duty cycling, or special-app
// tracking disabled, quantifying each component's contribution to
// energy saving and user experience. Both the knock-out table and the
// ε-sensitivity table replay against one cached EvalSession.
#include <iostream>

#include "bench_common.hpp"
#include "eval/experiments.hpp"
#include "eval/fleet.hpp"
#include "eval/session.hpp"
#include "eval/sweep.hpp"
#include "policy/netmaster.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

void print_figure() {
  bench::banner("Ablation — NetMaster component knock-outs",
                "each component's contribution to saving / UX");
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const eval::EvalSession session(synth::volunteer_population(), cfg);
  const auto rows = eval::ablation_study(session);

  eval::Table t({"variant", "energy saving", "affected users",
                 "mean deferral (s)", "duty wake-ups"});
  for (const auto& row : rows) {
    t.add_row({row.variant, eval::Table::pct(row.energy_saving),
               eval::Table::pct(row.affected_fraction, 2),
               eval::Table::num(row.mean_deferral_latency_s, 1),
               eval::Table::num(row.wake_count, 0)});
  }
  bench::emit(t);
  std::cout << "expectation: disabling prediction pushes everything "
               "through the duty path (higher latency); disabling the "
               "duty cycle strands unpredicted transfers; disabling "
               "special apps raises interrupts\n";

  // ε sensitivity end to end (the paper fixes ε = 0.1 "to guarantee
  // good performance while control the computational overhead"). One
  // more sweep over the same session: the points are ε values and each
  // point's roster is a single NetMaster variant.
  std::cout << "\nSinKnap ε sensitivity (end-to-end, 3 volunteers)\n";
  eval::Table e({"eps", "energy saving", "affected users"});
  const std::vector<double> eps_values = {0.01, 0.1, 0.5, 0.9};
  eval::sweep(
      session, eps_values,
      [&cfg](double eps) {
        policy::NetMasterConfig nm = cfg.netmaster;
        nm.eps = eps;
        std::vector<eval::PolicySpec> specs;
        specs.push_back(
            {"netmaster-eps",
             [nm](const UserTrace& training) {
               return std::make_unique<policy::NetMasterPolicy>(training,
                                                                nm);
             },
             {}});
        return specs;
      },
      [&](double eps, const eval::FleetReport& report) {
        double saving = 0.0, affected = 0.0;
        std::size_t n = 0;
        for (std::size_t u = 0; u < report.num_users; ++u) {
          const eval::FleetCell& cell = report.at(u, 0);
          if (cell.failed) continue;
          ++n;
          saving += cell.energy_saving;
          affected += cell.report.affected_fraction;
        }
        const double count = n > 0 ? static_cast<double>(n) : 1.0;
        e.add_row({eval::Table::num(eps, 2),
                   eval::Table::pct(saving / count),
                   eval::Table::pct(affected / count, 2)});
        return 0;
      });
  bench::emit(e);
  std::cout << "expected shape: savings barely move with ε on trace "
               "workloads (capacity rarely binds) — ε = 0.1 is a safe "
               "default\n\n";

  // Solver ablation: same session, one NetMaster column per SinKnap
  // backend (fptas / greedy / auto — exact is excluded: byte-scale
  // slot capacities blow its weight-indexed table).
  std::cout << "SinKnap backend ablation (end-to-end, 3 volunteers)\n";
  eval::Table s({"solver", "energy saving", "affected users",
                 "mean deferral (s)"});
  for (const auto& row : eval::solver_ablation_study(session)) {
    s.add_row({row.solver, eval::Table::pct(row.energy_saving),
               eval::Table::pct(row.affected_fraction, 2),
               eval::Table::num(row.mean_deferral_latency_s, 1)});
  }
  bench::emit(s);
  std::cout << "expected shape: backends agree on trace workloads "
               "(capacity rarely binds, so greedy already packs "
               "everything the FPTAS does)\n\n";
}

void BM_AblationFull(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const std::vector<synth::UserProfile> one = {
      synth::volunteer_population().front()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::ablation_study(one, cfg));
  }
}
BENCHMARK(BM_AblationFull)->Unit(benchmark::kMillisecond);

void BM_AblationFullCached(benchmark::State& state) {
  static const eval::EvalSession session = [] {
    eval::ExperimentConfig cfg;
    cfg.seed = bench::kDefaultSeed;
    return eval::EvalSession(
        std::vector<synth::UserProfile>{synth::volunteer_population().front()},
        cfg);
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::ablation_study(session));
  }
}
BENCHMARK(BM_AblationFullCached)->Unit(benchmark::kMillisecond);

}  // namespace

NETMASTER_BENCH_MAIN()
