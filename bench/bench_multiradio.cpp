// Multi-radio figure — pluggable radio profiles and Wi-Fi co-scheduling.
//
// One sweep grid over the streaming population compares, per cellular
// generation (WCDMA / LTE CDRX / NR CDRX), the single-radio NetMaster
// schedule against the radio-aware co-scheduler that may offload
// activities to predicted Wi-Fi presence windows. Every point carries
// its own RadioSet override on the PolicySpec, so the whole comparison
// runs as ONE fleet over shared per-user indexes; cross-profile energy
// ratios are computed here from the raw cell energies against each
// point's own baseline column.
//
// Absorbs the retired bench_ext_lte: the WCDMA-vs-LTE rows of that
// figure are the first two single-radio points of this one.
//
// CI smoke gates (scalars):
//   * multiradio_cosched_beats_single == 1 — for every cellular
//     generation the co-scheduled energy is at or below the
//     single-radio energy, hence min(cosched) <= min(single);
//   * wcdma_bit_identical == 1 — the sweep's WCDMA single-radio column
//     equals a plain run_fleet through the seed configuration bit for
//     bit (the generalized accounting path reproduces the golden).
#include <cmath>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "eval/session.hpp"
#include "eval/sweep.hpp"
#include "policy/baseline.hpp"
#include "policy/netmaster.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

struct RadioPoint {
  std::string name;
  RadioModel cellular;
  bool wifi_offload = false;
};

std::vector<RadioPoint> radio_points() {
  return {
      {"WCDMA", RadioModel::wcdma(), false},
      {"WCDMA+WiFi", RadioModel::wcdma(), true},
      {"LTE", RadioModel::lte_cdrx(), false},
      {"LTE+WiFi", RadioModel::lte_cdrx(), true},
      {"NR", RadioModel::nr_cdrx(), false},
      {"NR+WiFi", RadioModel::nr_cdrx(), true},
  };
}

/// Roster of one point: a baseline column and a NetMaster column, both
/// accounted under the point's radio models.
std::vector<eval::PolicySpec> point_roster(
    const eval::ExperimentConfig& base, const RadioPoint& point) {
  policy::NetMasterConfig nm = base.netmaster;
  nm.profit.radio = point.cellular;
  nm.enable_wifi_offload = point.wifi_offload;
  RadioSet radios;
  radios.cellular = point.cellular;

  std::vector<eval::PolicySpec> roster;
  roster.push_back({"baseline[" + point.name + "]",
                    [](const UserTrace&) {
                      return std::make_unique<policy::BaselinePolicy>();
                    },
                    {},
                    radios});
  roster.push_back({"netmaster[" + point.name + "]",
                    [nm](const UserTrace& training) {
                      return std::make_unique<policy::NetMasterPolicy>(
                          training, nm);
                    },
                    {},
                    radios});
  return roster;
}

struct PointResult {
  std::string name;
  bool wifi_offload = false;
  double baseline_j = 0.0;
  double netmaster_j = 0.0;
  DurationMs radio_on_ms = 0;
  std::size_t interrupts = 0;
  std::size_t wifi_transfers = 0;
};

PointResult reduce_point(const RadioPoint& point,
                         const eval::FleetReport& report) {
  PointResult r;
  r.name = point.name;
  r.wifi_offload = point.wifi_offload;
  r.baseline_j = report.aggregates[0].total_energy_j;
  r.netmaster_j = report.aggregates[1].total_energy_j;
  for (std::size_t u = 0; u < report.num_users; ++u) {
    const eval::FleetCell& cell = report.at(u, 1);
    if (cell.failed) continue;
    r.radio_on_ms += cell.report.radio_on_ms;
    r.interrupts += cell.report.interrupts;
    r.wifi_transfers += cell.report.wifi_transfer_count;
  }
  return r;
}

void print_figure() {
  bench::banner(
      "Multi-radio — radio profiles and Wi-Fi co-scheduling",
      "the scheduler chooses which radio, not just when: offloading "
      "streaming flows to predicted Wi-Fi presence windows beats every "
      "single-radio schedule");

  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const eval::EvalSession session(synth::streaming_population(), cfg);

  const std::vector<RadioPoint> points = radio_points();
  const std::vector<PointResult> results = eval::sweep(
      session, points,
      [&](const RadioPoint& p) { return point_roster(cfg, p); },
      reduce_point);

  eval::Table t({"radio", "baseline (J)", "netmaster (J)", "saving",
                 "radio-on (s)", "interrupts", "wifi transfers"});
  for (const PointResult& r : results) {
    const double saving =
        r.baseline_j > 0.0 ? 1.0 - r.netmaster_j / r.baseline_j : 0.0;
    t.add_row({r.name, eval::Table::num(r.baseline_j, 0),
               eval::Table::num(r.netmaster_j, 0), eval::Table::pct(saving),
               eval::Table::num(to_seconds(r.radio_on_ms), 0),
               std::to_string(r.interrupts),
               std::to_string(r.wifi_transfers)});
  }
  bench::emit(t, "multiradio");

  // Gate 1: per generation, co-scheduling never loses to single-radio.
  double best_single = std::numeric_limits<double>::infinity();
  double best_cosched = std::numeric_limits<double>::infinity();
  bool cosched_beats = true;
  std::size_t cosched_wifi_transfers = 0;
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const PointResult& single = results[i];
    const PointResult& cosched = results[i + 1];
    if (cosched.netmaster_j > single.netmaster_j) cosched_beats = false;
    best_single = std::min(best_single, single.netmaster_j);
    best_cosched = std::min(best_cosched, cosched.netmaster_j);
    cosched_wifi_transfers += cosched.wifi_transfers;
  }
  // A co-scheduler that never offloads would "beat" vacuously.
  if (cosched_wifi_transfers == 0) cosched_beats = false;

  // Gate 2: the sweep's WCDMA single-radio column is bit-identical to a
  // plain fleet run through the session's seed configuration (no
  // per-spec radio override, the exact pre-multi-radio code path).
  std::vector<eval::PolicySpec> plain;
  plain.push_back({"netmaster",
                   [nm = cfg.netmaster](const UserTrace& training) {
                     return std::make_unique<policy::NetMasterPolicy>(
                         training, nm);
                   },
                   {}});
  const eval::FleetReport golden = eval::run_fleet(session, plain);
  const bool bit_identical =
      golden.aggregates[0].total_energy_j == results[0].netmaster_j;

  bench::record_scalar("multiradio_cosched_energy_j", best_cosched);
  bench::record_scalar("best_single_radio_energy_j", best_single);
  bench::record_scalar("multiradio_cosched_beats_single",
                       cosched_beats ? 1.0 : 0.0);
  bench::record_scalar("cosched_wifi_transfers",
                       static_cast<double>(cosched_wifi_transfers));
  bench::record_scalar("wcdma_bit_identical", bit_identical ? 1.0 : 0.0);

  std::cout << "expected shape: every +WiFi row at or below its "
               "single-radio row; bulk podcast downloads offload, tiny "
               "syncs stay cellular\n\n";
}

void BM_MultiradioSweep(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const eval::EvalSession session(synth::streaming_population(), cfg);
  const std::vector<RadioPoint> points = radio_points();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::sweep(
        session, points,
        [&](const RadioPoint& p) { return point_roster(cfg, p); },
        reduce_point));
  }
}
BENCHMARK(BM_MultiradioSweep)->Unit(benchmark::kMillisecond);

}  // namespace

NETMASTER_BENCH_MAIN()
