// Fig. 8 — Off-line analysis of the fixed-interval delay method over
// delay intervals 0–600 s:
// (a) radio-on time reduced by up to 36.7%, energy by only 9.2%;
// (b) bandwidth utilization increased by up to 33.05%;
// (c) the fraction of affected user activities grows with the interval,
//     exceeding 40% at 600 s — delay alone cannot close the gap.
//
// Also measures what the EvalSession cache buys this figure: the sweep
// used to pay trace generation + indexing + baseline accounting per
// point; now the session is built once and all 13 points replay against
// it in a single (point × user × policy) grid.
#include <iostream>

#include "bench_common.hpp"
#include "eval/experiments.hpp"
#include "eval/session.hpp"
#include "obs/span.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

const std::vector<double> kDelays = {0,  1,  2,  3,   4,   5,   10,
                                     20, 30, 60, 120, 300, 600};

template <typename F>
double best_of_ms(int reps, F&& f) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    obs::ScopedTimer timer;
    f();
    const double ms = timer.stop();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

/// The pre-session cost model: every sweep point builds its own
/// throwaway session (trace gen + index + baseline per profile), which
/// is exactly what calling the profile-entry runner once per point did.
std::vector<eval::SweepPoint> per_point_delay_sweep(
    const std::vector<synth::UserProfile>& volunteers,
    const eval::ExperimentConfig& cfg) {
  std::vector<eval::SweepPoint> points;
  points.reserve(kDelays.size());
  for (const double d : kDelays) {
    points.push_back(eval::delay_sweep(volunteers, {d}, cfg).front());
  }
  return points;
}

void print_amortization(const eval::EvalSession& session,
                        const std::vector<eval::SweepPoint>& cached_points,
                        const std::vector<synth::UserProfile>& volunteers,
                        const eval::ExperimentConfig& cfg) {
  const auto per_point = per_point_delay_sweep(volunteers, cfg);
  bool identical = per_point.size() == cached_points.size();
  for (std::size_t i = 0; identical && i < per_point.size(); ++i) {
    identical = per_point[i].energy_saving == cached_points[i].energy_saving &&
                per_point[i].radio_on_reduction ==
                    cached_points[i].radio_on_reduction &&
                per_point[i].bandwidth_increase ==
                    cached_points[i].bandwidth_increase &&
                per_point[i].affected_fraction ==
                    cached_points[i].affected_fraction;
  }

  const double per_point_ms =
      best_of_ms(2, [&] { per_point_delay_sweep(volunteers, cfg); });
  const double cached_ms =
      best_of_ms(2, [&] { eval::delay_sweep(session, kDelays); });
  const double speedup = cached_ms > 0.0 ? per_point_ms / cached_ms : 0.0;
  bench::record_scalar("session_sweep_speedup", speedup);
  bench::record_scalar("per_point_sweep_ms", per_point_ms);
  bench::record_scalar("cached_session_sweep_ms", cached_ms);

  eval::Table t({"points", "per-point sessions (ms)",
                 "cached session (ms)", "speedup", "results"});
  t.add_row({std::to_string(kDelays.size()),
             eval::Table::num(per_point_ms, 1),
             eval::Table::num(cached_ms, 1),
             eval::Table::num(speedup, 2) + "x",
             identical ? "bit-identical" : "MISMATCH"});
  bench::emit(t, "session_amortization");
  std::cout << "expected shape: the cached session pays trace gen + "
               "indexing + baseline once instead of once per point\n\n";
}

void print_figure() {
  bench::banner("Fig. 8 — delay-interval sweep (0–600 s)",
                "at 600 s: radio-on -36.7%, energy -9.2%, bandwidth "
                "+33.05%, affected > 40%");
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto volunteers = synth::volunteer_population();
  const eval::EvalSession session(volunteers, cfg);
  const auto points = eval::delay_sweep(session, kDelays);

  eval::Table t({"delay (s)", "energy saving", "radio-on reduction",
                 "bandwidth increase", "affected users"});
  for (const auto& p : points) {
    t.add_row({eval::Table::num(p.x, 0), eval::Table::pct(p.energy_saving),
               eval::Table::pct(p.radio_on_reduction),
               eval::Table::pct(p.bandwidth_increase),
               eval::Table::pct(p.affected_fraction)});
  }
  bench::emit(t);
  const auto& last = points.back();
  std::cout << "measured at 600 s: energy "
            << eval::Table::pct(last.energy_saving)
            << " (paper 9.2%), radio-on "
            << eval::Table::pct(last.radio_on_reduction)
            << " (paper 36.7%), bandwidth "
            << eval::Table::pct(last.bandwidth_increase)
            << " (paper 33.05%), affected "
            << eval::Table::pct(last.affected_fraction)
            << " (paper > 40%)\n\n";

  print_amortization(session, points, volunteers, cfg);
}

const eval::EvalSession& shared_session() {
  static const eval::EvalSession session = [] {
    eval::ExperimentConfig cfg;
    cfg.seed = bench::kDefaultSeed;
    return eval::EvalSession(synth::volunteer_population(), cfg);
  }();
  return session;
}

void BM_DelaySweepPoint(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto volunteers = synth::volunteer_population();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::delay_sweep(
        volunteers, {static_cast<double>(state.range(0))}, cfg));
  }
}
BENCHMARK(BM_DelaySweepPoint)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_DelaySweepPointCached(benchmark::State& state) {
  const eval::EvalSession& session = shared_session();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::delay_sweep(
        session, {static_cast<double>(state.range(0))}));
  }
}
BENCHMARK(BM_DelaySweepPointCached)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_DelaySweepFullCached(benchmark::State& state) {
  const eval::EvalSession& session = shared_session();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::delay_sweep(session, kDelays));
  }
}
BENCHMARK(BM_DelaySweepFullCached)->Unit(benchmark::kMillisecond);

}  // namespace

NETMASTER_BENCH_MAIN()
