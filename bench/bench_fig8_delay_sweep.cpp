// Fig. 8 — Off-line analysis of the fixed-interval delay method over
// delay intervals 0–600 s:
// (a) radio-on time reduced by up to 36.7%, energy by only 9.2%;
// (b) bandwidth utilization increased by up to 33.05%;
// (c) the fraction of affected user activities grows with the interval,
//     exceeding 40% at 600 s — delay alone cannot close the gap.
#include <iostream>

#include "bench_common.hpp"
#include "eval/experiments.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

const std::vector<double> kDelays = {0,  1,  2,  3,   4,   5,   10,
                                     20, 30, 60, 120, 300, 600};

void print_figure() {
  bench::banner("Fig. 8 — delay-interval sweep (0–600 s)",
                "at 600 s: radio-on -36.7%, energy -9.2%, bandwidth "
                "+33.05%, affected > 40%");
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto points =
      eval::delay_sweep(synth::volunteer_population(), kDelays, cfg);

  eval::Table t({"delay (s)", "energy saving", "radio-on reduction",
                 "bandwidth increase", "affected users"});
  for (const auto& p : points) {
    t.add_row({eval::Table::num(p.x, 0), eval::Table::pct(p.energy_saving),
               eval::Table::pct(p.radio_on_reduction),
               eval::Table::pct(p.bandwidth_increase),
               eval::Table::pct(p.affected_fraction)});
  }
  bench::emit(t);
  const auto& last = points.back();
  std::cout << "measured at 600 s: energy "
            << eval::Table::pct(last.energy_saving)
            << " (paper 9.2%), radio-on "
            << eval::Table::pct(last.radio_on_reduction)
            << " (paper 36.7%), bandwidth "
            << eval::Table::pct(last.bandwidth_increase)
            << " (paper 33.05%), affected "
            << eval::Table::pct(last.affected_fraction)
            << " (paper > 40%)\n\n";
}

void BM_DelaySweepPoint(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto volunteers = synth::volunteer_population();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::delay_sweep(
        volunteers, {static_cast<double>(state.range(0))}, cfg));
  }
}
BENCHMARK(BM_DelaySweepPoint)->Arg(60)->Unit(benchmark::kMillisecond);

}  // namespace

NETMASTER_BENCH_MAIN()
