// §VI-B — User experience: the chance that NetMaster makes a wrong
// decision (blocks the network when the user needs it) stays under 1%.
// The paper observed 1 wrong decision in 319 tracked data-settings
// visits.
#include <iostream>

#include "bench_common.hpp"
#include "eval/experiments.hpp"
#include "policy/netmaster.hpp"
#include "sim/accounting.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

void print_figure() {
  bench::banner("§VI-B — user-experience / wrong decisions",
                "interrupt chance < 1% (1 of 319 in the paper)");
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;

  eval::Table t({"volunteer", "usages", "affected", "interrupts",
                 "affected fraction", "mean deferral (s)"});
  double worst = 0.0;
  for (const synth::UserProfile& profile : synth::volunteer_population()) {
    const eval::VolunteerTraces traces = eval::make_traces(profile, cfg);
    const policy::NetMasterPolicy policy(traces.training, cfg.netmaster);
    const sim::SimReport rep = sim::account(
        traces.eval, policy.run(traces.eval), cfg.netmaster.profit.radio);
    worst = std::max(worst, rep.affected_fraction);
    t.add_row({std::to_string(profile.id) + ":" + profile.name,
               std::to_string(rep.total_usages),
               std::to_string(rep.affected_usages),
               std::to_string(rep.interrupts),
               eval::Table::pct(rep.affected_fraction, 2),
               eval::Table::num(rep.mean_deferral_latency_s, 1)});
  }
  bench::emit(t);
  std::cout << "measured worst-case interrupt chance: "
            << eval::Table::pct(worst, 2) << " (paper: < 1%)\n\n";
}

void BM_NetMasterRun(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto profile = synth::volunteer_population().front();
  const eval::VolunteerTraces traces = eval::make_traces(profile, cfg);
  const policy::NetMasterPolicy policy(traces.training, cfg.netmaster);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.run(traces.eval));
  }
}
BENCHMARK(BM_NetMasterRun)->Unit(benchmark::kMillisecond);

}  // namespace

NETMASTER_BENCH_MAIN()
