// Fig. 3 — Pearson correlation of hourly usage vectors across the 8
// study users. The paper reports an average of 0.1353: usage habits
// differ strongly between users, so no fixed-interval scheme fits all.
#include <iostream>

#include "bench_common.hpp"
#include "mining/pearson.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

constexpr int kDays = 21;

TraceSet study_traces() {
  return synth::generate_population(synth::study_population(), kDays,
                                    bench::kDefaultSeed);
}

void print_figure() {
  bench::banner("Fig. 3 — cross-user Pearson matrix",
                "average 0.1353 (low cross-user correlation)");
  const TraceSet traces = study_traces();
  const mining::CorrelationMatrix m = mining::cross_user_matrix(traces);

  std::vector<std::string> headers{"user"};
  for (std::size_t j = 0; j < m.n; ++j) {
    headers.push_back(std::to_string(traces.users[j].user));
  }
  eval::Table t(headers);
  for (std::size_t i = 0; i < m.n; ++i) {
    std::vector<std::string> row{std::to_string(traces.users[i].user)};
    for (std::size_t j = 0; j < m.n; ++j) {
      row.push_back(eval::Table::num(m.at(i, j), 2));
    }
    t.add_row(std::move(row));
  }
  bench::emit(t);
  std::cout << "measured off-diagonal mean: "
            << eval::Table::num(m.off_diagonal_mean(), 4)
            << "  (paper: 0.1353)\n\n";
}

void BM_CrossUserMatrix(benchmark::State& state) {
  const TraceSet traces = study_traces();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::cross_user_matrix(traces));
  }
}
BENCHMARK(BM_CrossUserMatrix);

}  // namespace

NETMASTER_BENCH_MAIN()
