// Fig. 5 — One-week per-app usage pattern for user 3: only 8 of the 23
// installed apps are ever used (and have network activity); the
// dominant messenger accounts for 669 launches — 59% of all usage.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "mining/special_apps.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"
#include "trace/trace_stats.hpp"

namespace {

using namespace netmaster;

constexpr int kDays = 7;  // the figure covers one week

UserTrace subject_trace() {
  const auto profiles = synth::study_population();
  return synth::generate_trace(profiles[2], kDays,
                               bench::kDefaultSeed);  // user 3
}

void print_figure() {
  bench::banner("Fig. 5 — one-week program pattern (user 3)",
                "8 of 23 apps used+networked; top app 59% of usage");
  const UserTrace trace = subject_trace();

  const auto counts = per_app_usage_counts(trace);
  const auto intensity = per_app_intensity(trace);
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;

  // Apps sorted by usage, used ones only.
  std::vector<std::size_t> order(counts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return counts[a] > counts[b];
  });

  eval::Table t({"app", "launches", "share", "peak hour", "peak/h"});
  for (std::size_t idx : order) {
    if (counts[idx] == 0) continue;
    const auto& hours = intensity[idx];
    const auto peak = std::max_element(hours.begin(), hours.end());
    t.add_row({trace.app_names[idx], std::to_string(counts[idx]),
               eval::Table::pct(static_cast<double>(counts[idx]) /
                                static_cast<double>(total)),
               std::to_string(peak - hours.begin()),
               eval::Table::num(*peak, 0)});
  }
  bench::emit(t);

  const mining::SpecialApps special = mining::SpecialApps::detect(trace);
  std::cout << "measured: " << active_networked_app_count(trace) << " of "
            << trace.app_names.size()
            << " apps used with network activity (paper: 8 of 23); "
            << "special apps detected: " << special.count() << "\n";
  const std::size_t top = counts[order.front()];
  std::cout << "top app '" << trace.app_names[order.front()] << "' share: "
            << eval::Table::pct(static_cast<double>(top) /
                                static_cast<double>(total))
            << " (paper: 59%)\n\n";
}

void BM_SpecialAppDetection(benchmark::State& state) {
  const UserTrace trace = subject_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::SpecialApps::detect(trace));
  }
}
BENCHMARK(BM_SpecialAppDetection);

}  // namespace

NETMASTER_BENCH_MAIN()
