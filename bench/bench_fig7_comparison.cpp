// Fig. 7 — The headline evaluation over the 3 volunteers:
// (a) radio energy saving: NetMaster 77.8% on average, within 5% of the
//     oracle in most runs; naive delay-and-batch 22.54%;
// (b) radio-on time: NetMaster removes 75.39% of inefficient radio-on
//     time;
// (c) bandwidth utilization: download 3.84x, upload 2.63x on average;
//     peak rates unchanged.
#include <iostream>

#include "bench_common.hpp"
#include "eval/experiments.hpp"
#include "eval/session.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

eval::ExperimentConfig config() {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  return cfg;
}

void print_figure() {
  bench::banner("Fig. 7 — NetMaster vs baselines (3 volunteers)",
                "energy -77.8%, radio-on -75.39%, bandwidth x3.84/x2.63, "
                "oracle gap < 5%");
  const eval::EvalSession session(synth::volunteer_population(), config());
  const auto results = eval::compare_all(session);

  std::cout << "\n(a) radio energy saving\n";
  eval::Table a({"volunteer", "policy", "energy (J)", "saving",
                 "gap to oracle"});
  double nm_saving = 0.0, db_saving = 0.0;
  int db_count = 0;
  for (const auto& r : results) {
    double oracle_saving = 0.0;
    for (const auto& row : r.rows) {
      if (row.policy == "oracle") oracle_saving = row.energy_saving;
    }
    for (const auto& row : r.rows) {
      const double gap = oracle_saving - row.energy_saving;
      a.add_row({std::to_string(r.user) + ":" + r.profile_name, row.policy,
                 eval::Table::num(row.report.energy_j, 0),
                 eval::Table::pct(row.energy_saving),
                 row.policy == "baseline" ? "-" : eval::Table::pct(gap)});
      if (row.policy == "netmaster") nm_saving += row.energy_saving;
      if (row.policy.rfind("delay", 0) == 0) {
        db_saving += row.energy_saving;
        ++db_count;
      }
    }
  }
  bench::emit(a);
  std::cout << "measured: NetMaster avg saving "
            << eval::Table::pct(nm_saving /
                                static_cast<double>(results.size()))
            << " (paper 77.8%); delay&batch avg "
            << eval::Table::pct(db_saving / std::max(db_count, 1))
            << " (paper 22.54%)\n";

  std::cout << "\n(b) radio-on time (ratios of baseline radio-on)\n";
  eval::Table b({"volunteer", "power-on/radio-on", "radio-on (netmaster)",
                 "radio-off gain"});
  double saved = 0.0;
  for (const auto& r : results) {
    double nm_fraction = 1.0;
    for (const auto& row : r.rows) {
      if (row.policy == "netmaster") nm_fraction = row.radio_on_fraction;
    }
    saved += 1.0 - nm_fraction;
    b.add_row({std::to_string(r.user) + ":" + r.profile_name,
               eval::Table::num(
                   static_cast<double>(r.baseline.screen_on_ms) /
                       static_cast<double>(r.baseline.radio_on_ms),
                   2),
               eval::Table::pct(nm_fraction),
               eval::Table::pct(1.0 - nm_fraction)});
  }
  bench::emit(b);
  std::cout << "measured: NetMaster removes "
            << eval::Table::pct(saved / static_cast<double>(results.size()))
            << " of radio-on time (paper 75.39%)\n";

  std::cout << "\n(c) bandwidth utilization increase (NetMaster / baseline)\n";
  eval::Table c({"volunteer", "down avg", "up avg", "down peak",
                 "up peak"});
  double down = 0.0, up = 0.0;
  for (const auto& r : results) {
    for (const auto& row : r.rows) {
      if (row.policy != "netmaster") continue;
      down += row.down_rate_ratio;
      up += row.up_rate_ratio;
      c.add_row({std::to_string(r.user) + ":" + r.profile_name,
                 eval::Table::num(row.down_rate_ratio, 2) + "x",
                 eval::Table::num(row.up_rate_ratio, 2) + "x",
                 eval::Table::num(row.peak_down_ratio, 2) + "x",
                 eval::Table::num(row.peak_up_ratio, 2) + "x"});
    }
  }
  bench::emit(c);
  std::cout << "measured: avg download "
            << eval::Table::num(down / static_cast<double>(results.size()),
                                2)
            << "x (paper 3.84x), upload "
            << eval::Table::num(up / static_cast<double>(results.size()), 2)
            << "x (paper 2.63x); peak ~1x (paper: unchanged)\n\n";
}

void BM_CompareOneVolunteer(benchmark::State& state) {
  const auto volunteers = synth::volunteer_population();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval::compare_policies(volunteers.front(), config()));
  }
}
BENCHMARK(BM_CompareOneVolunteer)->Unit(benchmark::kMillisecond);

void BM_CompareAllCached(benchmark::State& state) {
  static const eval::EvalSession session(synth::volunteer_population(),
                                         config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::compare_all(session));
  }
}
BENCHMARK(BM_CompareAllCached)->Unit(benchmark::kMillisecond);

}  // namespace

NETMASTER_BENCH_MAIN()
