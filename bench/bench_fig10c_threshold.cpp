// Fig. 10(c) — Prediction-threshold sweep δ ∈ [0, 0.5]: prediction
// accuracy (usages inside predicted active slots) falls as δ grows
// while energy saving (relative to the oracle) rises; the curves cross
// near δ = 0.37. The paper nevertheless picks δ = 0.2 / 0.1
// (weekday/weekend) because not interrupting users comes first.
#include <iostream>

#include "bench_common.hpp"
#include "eval/experiments.hpp"
#include "eval/session.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

const std::vector<double> kDeltas = {0.0,  0.05, 0.1,  0.15, 0.2, 0.25,
                                     0.3,  0.35, 0.4,  0.45, 0.5};

void print_figure() {
  bench::banner("Fig. 10c — prediction-threshold sweep",
                "accuracy falls / saving rises with δ; crossover ≈ 0.37");
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const eval::EvalSession session(synth::study_population(), cfg);
  const auto points = eval::threshold_sweep(session, kDeltas);

  eval::Table t({"delta", "prediction accuracy", "energy saving"});
  double crossover = -1.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    t.add_row({eval::Table::num(p.delta, 2), eval::Table::pct(p.accuracy),
               eval::Table::pct(p.energy_saving)});
    if (crossover < 0.0 && i > 0 &&
        points[i - 1].accuracy >= points[i - 1].energy_saving &&
        p.accuracy < p.energy_saving) {
      // Linear interpolation of the crossing point.
      const double d0 = points[i - 1].accuracy - points[i - 1].energy_saving;
      const double d1 = p.accuracy - p.energy_saving;
      crossover = points[i - 1].delta +
                  (p.delta - points[i - 1].delta) * d0 / (d0 - d1);
    }
  }
  bench::emit(t);
  if (crossover >= 0.0) {
    std::cout << "measured crossover: delta ≈ "
              << eval::Table::num(crossover, 2) << " (paper: 0.37)\n\n";
  } else {
    std::cout << "measured crossover: none in sweep range (paper: 0.37)\n\n";
  }
}

void BM_ThresholdPoint(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto profiles = synth::volunteer_population();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval::threshold_sweep(profiles, {0.2}, cfg));
  }
}
BENCHMARK(BM_ThresholdPoint)->Unit(benchmark::kMillisecond);

void BM_ThresholdPointCached(benchmark::State& state) {
  static const eval::EvalSession session = [] {
    eval::ExperimentConfig cfg;
    cfg.seed = bench::kDefaultSeed;
    return eval::EvalSession(synth::volunteer_population(), cfg);
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::threshold_sweep(session, {0.2}));
  }
}
BENCHMARK(BM_ThresholdPointCached)->Unit(benchmark::kMillisecond);

}  // namespace

NETMASTER_BENCH_MAIN()
