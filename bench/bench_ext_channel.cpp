// Extension — channel-aware scheduling (§VI-A future work).
//
// The paper observes that NetMaster cannot lift *peak* rates because
// "the peak rate is determined by the channel state" and defers channel
// awareness to future work. This bench supplies that experiment over
// our signal substrate: per-policy signal-adjusted radio energy, and
// the gain from the Bartendr-style post-pass that shifts deferred
// transfers toward good-signal moments.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "channel/signal_model.hpp"
#include "eval/experiments.hpp"
#include "policy/baseline.hpp"
#include "policy/netmaster.hpp"
#include "policy/oracle.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

void print_figure() {
  bench::banner("Extension — channel-aware scheduling",
                "future work in the paper: schedule around channel "
                "state (Bartendr-style)");
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const RadioModel radio = cfg.netmaster.profit.radio;

  eval::Table t({"volunteer", "policy", "RRC energy (J)",
                 "signal penalty (J)", "total (J)", "moved"});
  double saved_sum = 0.0;
  int rows = 0;
  for (const synth::UserProfile& profile : synth::volunteer_population()) {
    const eval::VolunteerTraces traces = eval::make_traces(profile, cfg);
    channel::SignalConfig sig_cfg;
    sig_cfg.seed = cfg.seed + static_cast<std::uint64_t>(profile.id);
    const channel::SignalTrace signal =
        channel::SignalTrace::generate(sig_cfg, traces.eval.trace_end());

    const policy::BaselinePolicy baseline;
    const policy::NetMasterPolicy nm(traces.training, cfg.netmaster);

    struct Arm {
      std::string name;
      sim::PolicyOutcome outcome;
      std::size_t moved = 0;
    };
    std::vector<Arm> arms;
    arms.push_back({"baseline", baseline.run(traces.eval), 0});
    arms.push_back({"netmaster", nm.run(traces.eval), 0});
    Arm aware{"netmaster+channel", nm.run(traces.eval), 0};
    aware.moved = channel::apply_channel_awareness(
        aware.outcome, traces.eval, signal, 15 * kMsPerMinute, radio);
    arms.push_back(std::move(aware));

    double plain_total = 0.0;
    for (const Arm& arm : arms) {
      const sim::SimReport rep =
          sim::account(traces.eval, arm.outcome, radio);
      const double penalty = channel::signal_energy_penalty_j(
          arm.outcome.transfers, signal, radio);
      const double total = rep.energy_j + penalty;
      if (arm.name == "netmaster") plain_total = total;
      if (arm.name == "netmaster+channel" && plain_total > 0.0) {
        saved_sum += 1.0 - total / plain_total;
        ++rows;
      }
      t.add_row({std::to_string(profile.id) + ":" + profile.name,
                 arm.name, eval::Table::num(rep.energy_j, 0),
                 eval::Table::num(penalty, 0),
                 eval::Table::num(total, 0),
                 std::to_string(arm.moved)});
    }
  }
  bench::emit(t);
  std::cout << "channel awareness saves a further "
            << eval::Table::pct(saved_sum / std::max(rows, 1))
            << " of NetMaster's signal-adjusted energy (paper: future "
               "work, no reference value)\n\n";
}

void BM_ChannelAwarePass(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto profile = synth::volunteer_population().front();
  const eval::VolunteerTraces traces = eval::make_traces(profile, cfg);
  const policy::NetMasterPolicy nm(traces.training, cfg.netmaster);
  const sim::PolicyOutcome outcome = nm.run(traces.eval);
  const channel::SignalTrace signal = channel::SignalTrace::generate(
      channel::SignalConfig{}, traces.eval.trace_end());
  for (auto _ : state) {
    sim::PolicyOutcome copy = outcome;
    benchmark::DoNotOptimize(channel::apply_channel_awareness(
        copy, traces.eval, signal, 15 * kMsPerMinute,
        RadioPowerParams::wcdma()));
  }
}
BENCHMARK(BM_ChannelAwarePass)->Unit(benchmark::kMillisecond);

}  // namespace

NETMASTER_BENCH_MAIN()
