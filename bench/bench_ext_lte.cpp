// Extension — LTE radio profile.
//
// The paper evaluates on China Unicom WCDMA and draws its power numbers
// partly from the LTE measurement study it cites ([11], Huang et al.).
// This bench re-runs the Fig. 7a comparison under the LTE profile
// (fast promotion, high connected power, long DRX tail): the same
// scheduling logic should save a comparable or larger fraction, since
// LTE's tail energy is even more dominant.
#include <iostream>

#include "bench_common.hpp"
#include "eval/experiments.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

eval::ExperimentConfig config_for(const RadioPowerParams& radio) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  cfg.netmaster.profit.radio = radio;
  return cfg;
}

void print_figure() {
  bench::banner("Extension — WCDMA vs LTE radio profiles",
                "same scheduling logic across radio generations");
  struct Profile {
    const char* name;
    RadioPowerParams radio;
  };
  const Profile profiles[] = {
      {"WCDMA", RadioPowerParams::wcdma()},
      {"LTE", RadioPowerParams::lte()},
  };

  eval::Table t({"radio", "policy", "energy (J)", "saving",
                 "radio-on reduction"});
  for (const Profile& prof : profiles) {
    const auto results = eval::compare_all(synth::volunteer_population(),
                                           config_for(prof.radio));
    double nm_saving = 0.0, oracle_saving = 0.0, radio_cut = 0.0;
    double base_energy = 0.0, nm_energy = 0.0;
    for (const auto& r : results) {
      base_energy += r.baseline.energy_j;
      for (const auto& row : r.rows) {
        if (row.policy == "netmaster") {
          nm_saving += row.energy_saving;
          nm_energy += row.report.energy_j;
          radio_cut += 1.0 - row.radio_on_fraction;
        }
        if (row.policy == "oracle") oracle_saving += row.energy_saving;
      }
    }
    const auto n = static_cast<double>(results.size());
    t.add_row({prof.name, "baseline", eval::Table::num(base_energy, 0),
               "0%", "-"});
    t.add_row({prof.name, "netmaster", eval::Table::num(nm_energy, 0),
               eval::Table::pct(nm_saving / n),
               eval::Table::pct(radio_cut / n)});
    t.add_row({prof.name, "oracle", "-",
               eval::Table::pct(oracle_saving / n), "-"});
  }
  bench::emit(t);
  std::cout << "expected shape: savings comparable across radio "
               "generations; LTE pays more per tail but promotes "
               "faster\n\n";
}

void BM_LteComparison(benchmark::State& state) {
  const auto profile = synth::volunteer_population().front();
  const auto cfg = config_for(RadioPowerParams::lte());
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::compare_policies(profile, cfg));
  }
}
BENCHMARK(BM_LteComparison)->Unit(benchmark::kMillisecond);

}  // namespace

NETMASTER_BENCH_MAIN()
