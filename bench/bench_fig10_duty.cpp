// Fig. 10(a)/(b) — Duty-cycle parameter analysis:
// (a) radio-on fraction against the number of wake-ups for sleep
//     intervals from 5 s to 360 s — longer sleeps cut radio-on time;
// (b) cumulative wake-ups over a 30-minute idle window: the
//     exponential scheme wakes far less often than fixed, which beats
//     random.
#include <iostream>

#include "bench_common.hpp"
#include "duty/duty_cycle.hpp"

namespace {

using namespace netmaster;

constexpr DurationMs kWindowMs = 30 * kMsPerMinute;

duty::DutyConfig config_for(duty::SleepScheme scheme, DurationMs sleep) {
  duty::DutyConfig cfg;
  cfg.scheme = scheme;
  cfg.initial_sleep_ms = sleep;
  cfg.seed = bench::kDefaultSeed;
  return cfg;
}

void print_figure() {
  bench::banner("Fig. 10a/b — duty-cycle schemes",
                "longer sleeps cut radio-on; exponential << fixed < "
                "random wake-ups over 30 min");

  std::cout << "\n(a) exponential scheme: radio-on fraction vs sleep "
               "interval (30-min idle window)\n";
  eval::Table a({"sleep (s)", "wake-ups", "radio-on (s)",
                 "radio-on fraction"});
  for (DurationMs sleep_s : {5, 10, 20, 30, 120, 360}) {
    const auto wakes = duty::simulate_idle_window(
        config_for(duty::SleepScheme::kExponential,
                   sleep_s * kMsPerSecond),
        {0, kWindowMs});
    const DurationMs on = duty::total_wake_time(wakes);
    a.add_row({std::to_string(sleep_s), std::to_string(wakes.size()),
               eval::Table::num(to_seconds(on), 0),
               eval::Table::pct(static_cast<double>(on) /
                                static_cast<double>(kWindowMs), 2)});
  }
  bench::emit(a);

  std::cout << "\n(b) wake-ups over 30 idle minutes (T = 30 s)\n";
  eval::Table b({"minute", "exponential", "fixed", "random"});
  const auto exp_wakes = duty::simulate_idle_window(
      config_for(duty::SleepScheme::kExponential, 30 * kMsPerSecond),
      {0, kWindowMs});
  const auto fixed_wakes = duty::simulate_idle_window(
      config_for(duty::SleepScheme::kFixed, 30 * kMsPerSecond),
      {0, kWindowMs});
  const auto random_wakes = duty::simulate_idle_window(
      config_for(duty::SleepScheme::kRandom, 30 * kMsPerSecond),
      {0, kWindowMs});
  auto count_until = [](const std::vector<duty::WakeEvent>& wakes,
                        TimeMs t) {
    std::size_t n = 0;
    for (const auto& w : wakes) {
      if (w.time <= t) ++n;
    }
    return n;
  };
  for (int minute : {5, 10, 15, 20, 25, 30}) {
    const TimeMs t = minute * kMsPerMinute;
    b.add_row({std::to_string(minute),
               std::to_string(count_until(exp_wakes, t)),
               std::to_string(count_until(fixed_wakes, t)),
               std::to_string(count_until(random_wakes, t))});
  }
  bench::emit(b);
  std::cout << "measured totals: exponential " << exp_wakes.size()
            << ", fixed " << fixed_wakes.size() << ", random "
            << random_wakes.size()
            << " (paper shape: exponential far below the others)\n\n";
}

void BM_ExponentialIdleWindow(benchmark::State& state) {
  const auto cfg = config_for(duty::SleepScheme::kExponential,
                              30 * kMsPerSecond);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        duty::simulate_idle_window(cfg, {0, kWindowMs}));
  }
}
BENCHMARK(BM_ExponentialIdleWindow);

}  // namespace

NETMASTER_BENCH_MAIN()
