// Fig. 9 — Off-line analysis of the batch method over batch sizes
// 0–10 (under the ≤1% interrupt constraint the paper applies):
// radio-on time shrinks by up to 17.7% and bandwidth utilization grows
// by up to 17.6%, but the curve flattens past 5 batched activities —
// users rarely have more than 5 transfers outstanding at once.
//
// Like Fig. 8, the sweep runs against one cached EvalSession; the
// amortization table quantifies the win over per-point sessions.
#include <iostream>

#include "bench_common.hpp"
#include "eval/experiments.hpp"
#include "eval/session.hpp"
#include "obs/span.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

const std::vector<std::size_t> kSizes = {0, 1, 2, 3, 4, 5, 6, 8, 10};

template <typename F>
double best_of_ms(int reps, F&& f) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    obs::ScopedTimer timer;
    f();
    const double ms = timer.stop();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

std::vector<eval::SweepPoint> per_point_batch_sweep(
    const std::vector<synth::UserProfile>& volunteers,
    const eval::ExperimentConfig& cfg) {
  std::vector<eval::SweepPoint> points;
  points.reserve(kSizes.size());
  for (const std::size_t n : kSizes) {
    points.push_back(eval::batch_sweep(volunteers, {n}, cfg).front());
  }
  return points;
}

void print_amortization(const eval::EvalSession& session,
                        const std::vector<eval::SweepPoint>& cached_points,
                        const std::vector<synth::UserProfile>& volunteers,
                        const eval::ExperimentConfig& cfg) {
  const auto per_point = per_point_batch_sweep(volunteers, cfg);
  bool identical = per_point.size() == cached_points.size();
  for (std::size_t i = 0; identical && i < per_point.size(); ++i) {
    identical = per_point[i].energy_saving == cached_points[i].energy_saving &&
                per_point[i].radio_on_reduction ==
                    cached_points[i].radio_on_reduction &&
                per_point[i].bandwidth_increase ==
                    cached_points[i].bandwidth_increase &&
                per_point[i].affected_fraction ==
                    cached_points[i].affected_fraction;
  }

  const double per_point_ms =
      best_of_ms(2, [&] { per_point_batch_sweep(volunteers, cfg); });
  const double cached_ms =
      best_of_ms(2, [&] { eval::batch_sweep(session, kSizes); });
  const double speedup = cached_ms > 0.0 ? per_point_ms / cached_ms : 0.0;
  bench::record_scalar("session_sweep_speedup", speedup);
  bench::record_scalar("per_point_sweep_ms", per_point_ms);
  bench::record_scalar("cached_session_sweep_ms", cached_ms);

  eval::Table t({"points", "per-point sessions (ms)",
                 "cached session (ms)", "speedup", "results"});
  t.add_row({std::to_string(kSizes.size()),
             eval::Table::num(per_point_ms, 1),
             eval::Table::num(cached_ms, 1),
             eval::Table::num(speedup, 2) + "x",
             identical ? "bit-identical" : "MISMATCH"});
  bench::emit(t, "session_amortization");
  std::cout << "expected shape: the cached session pays trace gen + "
               "indexing + baseline once instead of once per point\n\n";
}

void print_figure() {
  bench::banner("Fig. 9 — batch-size sweep (0–10)",
                "radio-on -17.7%, bandwidth +17.6%, plateau past 5");
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto volunteers = synth::volunteer_population();
  const eval::EvalSession session(volunteers, cfg);
  const auto points = eval::batch_sweep(session, kSizes);

  eval::Table t({"batch size", "energy saving", "radio-on reduction",
                 "bandwidth increase", "affected users"});
  for (const auto& p : points) {
    t.add_row({eval::Table::num(p.x, 0), eval::Table::pct(p.energy_saving),
               eval::Table::pct(p.radio_on_reduction),
               eval::Table::pct(p.bandwidth_increase),
               eval::Table::pct(p.affected_fraction)});
  }
  bench::emit(t);
  const auto& five = points[5];
  const auto& last = points.back();
  std::cout << "measured at 5: radio-on "
            << eval::Table::pct(five.radio_on_reduction)
            << ", bandwidth " << eval::Table::pct(five.bandwidth_increase)
            << "; at 10: radio-on "
            << eval::Table::pct(last.radio_on_reduction) << ", bandwidth "
            << eval::Table::pct(last.bandwidth_increase)
            << " (paper: -17.7% / +17.6%, flat past 5)\n\n";

  print_amortization(session, points, volunteers, cfg);
}

const eval::EvalSession& shared_session() {
  static const eval::EvalSession session = [] {
    eval::ExperimentConfig cfg;
    cfg.seed = bench::kDefaultSeed;
    return eval::EvalSession(synth::volunteer_population(), cfg);
  }();
  return session;
}

void BM_BatchSweepPoint(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto volunteers = synth::volunteer_population();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::batch_sweep(
        volunteers, {static_cast<std::size_t>(state.range(0))}, cfg));
  }
}
BENCHMARK(BM_BatchSweepPoint)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_BatchSweepPointCached(benchmark::State& state) {
  const eval::EvalSession& session = shared_session();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::batch_sweep(
        session, {static_cast<std::size_t>(state.range(0))}));
  }
}
BENCHMARK(BM_BatchSweepPointCached)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_BatchSweepFullCached(benchmark::State& state) {
  const eval::EvalSession& session = shared_session();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::batch_sweep(session, kSizes));
  }
}
BENCHMARK(BM_BatchSweepFullCached)->Unit(benchmark::kMillisecond);

}  // namespace

NETMASTER_BENCH_MAIN()
