// Fig. 9 — Off-line analysis of the batch method over batch sizes
// 0–10 (under the ≤1% interrupt constraint the paper applies):
// radio-on time shrinks by up to 17.7% and bandwidth utilization grows
// by up to 17.6%, but the curve flattens past 5 batched activities —
// users rarely have more than 5 transfers outstanding at once.
#include <iostream>

#include "bench_common.hpp"
#include "eval/experiments.hpp"
#include "synth/presets.hpp"

namespace {

using namespace netmaster;

const std::vector<std::size_t> kSizes = {0, 1, 2, 3, 4, 5, 6, 8, 10};

void print_figure() {
  bench::banner("Fig. 9 — batch-size sweep (0–10)",
                "radio-on -17.7%, bandwidth +17.6%, plateau past 5");
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto points =
      eval::batch_sweep(synth::volunteer_population(), kSizes, cfg);

  eval::Table t({"batch size", "energy saving", "radio-on reduction",
                 "bandwidth increase", "affected users"});
  for (const auto& p : points) {
    t.add_row({eval::Table::num(p.x, 0), eval::Table::pct(p.energy_saving),
               eval::Table::pct(p.radio_on_reduction),
               eval::Table::pct(p.bandwidth_increase),
               eval::Table::pct(p.affected_fraction)});
  }
  bench::emit(t);
  const auto& five = points[5];
  const auto& last = points.back();
  std::cout << "measured at 5: radio-on "
            << eval::Table::pct(five.radio_on_reduction)
            << ", bandwidth " << eval::Table::pct(five.bandwidth_increase)
            << "; at 10: radio-on "
            << eval::Table::pct(last.radio_on_reduction) << ", bandwidth "
            << eval::Table::pct(last.bandwidth_increase)
            << " (paper: -17.7% / +17.6%, flat past 5)\n\n";
}

void BM_BatchSweepPoint(benchmark::State& state) {
  eval::ExperimentConfig cfg;
  cfg.seed = bench::kDefaultSeed;
  const auto volunteers = synth::volunteer_population();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::batch_sweep(
        volunteers, {static_cast<std::size_t>(state.range(0))}, cfg));
  }
}
BENCHMARK(BM_BatchSweepPoint)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

NETMASTER_BENCH_MAIN()
