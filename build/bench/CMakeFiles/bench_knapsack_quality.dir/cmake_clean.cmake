file(REMOVE_RECURSE
  "CMakeFiles/bench_knapsack_quality.dir/bench_knapsack_quality.cpp.o"
  "CMakeFiles/bench_knapsack_quality.dir/bench_knapsack_quality.cpp.o.d"
  "bench_knapsack_quality"
  "bench_knapsack_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_knapsack_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
