# Empty dependencies file for bench_knapsack_quality.
# This may be replaced when dependencies are built.
