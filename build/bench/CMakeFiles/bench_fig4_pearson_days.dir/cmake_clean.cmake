file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_pearson_days.dir/bench_fig4_pearson_days.cpp.o"
  "CMakeFiles/bench_fig4_pearson_days.dir/bench_fig4_pearson_days.cpp.o.d"
  "bench_fig4_pearson_days"
  "bench_fig4_pearson_days.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pearson_days.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
