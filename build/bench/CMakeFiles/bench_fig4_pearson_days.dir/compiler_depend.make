# Empty compiler generated dependencies file for bench_fig4_pearson_days.
# This may be replaced when dependencies are built.
