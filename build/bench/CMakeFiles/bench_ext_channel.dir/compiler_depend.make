# Empty compiler generated dependencies file for bench_ext_channel.
# This may be replaced when dependencies are built.
