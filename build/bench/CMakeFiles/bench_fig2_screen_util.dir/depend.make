# Empty dependencies file for bench_fig2_screen_util.
# This may be replaced when dependencies are built.
