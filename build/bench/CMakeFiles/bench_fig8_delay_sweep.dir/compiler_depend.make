# Empty compiler generated dependencies file for bench_fig8_delay_sweep.
# This may be replaced when dependencies are built.
