# Empty compiler generated dependencies file for bench_fig5_app_pattern.
# This may be replaced when dependencies are built.
