# Empty dependencies file for bench_ux_interrupts.
# This may be replaced when dependencies are built.
