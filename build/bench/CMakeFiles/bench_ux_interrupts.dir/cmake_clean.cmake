file(REMOVE_RECURSE
  "CMakeFiles/bench_ux_interrupts.dir/bench_ux_interrupts.cpp.o"
  "CMakeFiles/bench_ux_interrupts.dir/bench_ux_interrupts.cpp.o.d"
  "bench_ux_interrupts"
  "bench_ux_interrupts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ux_interrupts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
