# Empty dependencies file for bench_fig3_pearson_users.
# This may be replaced when dependencies are built.
