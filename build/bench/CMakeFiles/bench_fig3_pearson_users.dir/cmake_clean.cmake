file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_pearson_users.dir/bench_fig3_pearson_users.cpp.o"
  "CMakeFiles/bench_fig3_pearson_users.dir/bench_fig3_pearson_users.cpp.o.d"
  "bench_fig3_pearson_users"
  "bench_fig3_pearson_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_pearson_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
