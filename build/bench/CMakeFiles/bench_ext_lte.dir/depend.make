# Empty dependencies file for bench_ext_lte.
# This may be replaced when dependencies are built.
