file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_lte.dir/bench_ext_lte.cpp.o"
  "CMakeFiles/bench_ext_lte.dir/bench_ext_lte.cpp.o.d"
  "bench_ext_lte"
  "bench_ext_lte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_lte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
