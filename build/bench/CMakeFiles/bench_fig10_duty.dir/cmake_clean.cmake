file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_duty.dir/bench_fig10_duty.cpp.o"
  "CMakeFiles/bench_fig10_duty.dir/bench_fig10_duty.cpp.o.d"
  "bench_fig10_duty"
  "bench_fig10_duty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_duty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
