file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_profiling.dir/bench_fig1_profiling.cpp.o"
  "CMakeFiles/bench_fig1_profiling.dir/bench_fig1_profiling.cpp.o.d"
  "bench_fig1_profiling"
  "bench_fig1_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
