file(REMOVE_RECURSE
  "CMakeFiles/nm_common.dir/interval.cpp.o"
  "CMakeFiles/nm_common.dir/interval.cpp.o.d"
  "CMakeFiles/nm_common.dir/stats.cpp.o"
  "CMakeFiles/nm_common.dir/stats.cpp.o.d"
  "libnm_common.a"
  "libnm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
