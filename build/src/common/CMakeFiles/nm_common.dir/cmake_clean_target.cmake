file(REMOVE_RECURSE
  "libnm_common.a"
)
