file(REMOVE_RECURSE
  "libnm_channel.a"
)
