file(REMOVE_RECURSE
  "CMakeFiles/nm_channel.dir/signal_model.cpp.o"
  "CMakeFiles/nm_channel.dir/signal_model.cpp.o.d"
  "libnm_channel.a"
  "libnm_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
