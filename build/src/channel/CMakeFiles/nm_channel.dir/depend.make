# Empty dependencies file for nm_channel.
# This may be replaced when dependencies are built.
