# Empty dependencies file for nm_synth.
# This may be replaced when dependencies are built.
