file(REMOVE_RECURSE
  "libnm_synth.a"
)
