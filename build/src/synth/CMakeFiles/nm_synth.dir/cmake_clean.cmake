file(REMOVE_RECURSE
  "CMakeFiles/nm_synth.dir/generator.cpp.o"
  "CMakeFiles/nm_synth.dir/generator.cpp.o.d"
  "CMakeFiles/nm_synth.dir/presets.cpp.o"
  "CMakeFiles/nm_synth.dir/presets.cpp.o.d"
  "libnm_synth.a"
  "libnm_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
