# Empty compiler generated dependencies file for nm_policy.
# This may be replaced when dependencies are built.
