file(REMOVE_RECURSE
  "libnm_policy.a"
)
