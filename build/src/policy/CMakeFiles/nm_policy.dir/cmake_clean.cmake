file(REMOVE_RECURSE
  "CMakeFiles/nm_policy.dir/baseline.cpp.o"
  "CMakeFiles/nm_policy.dir/baseline.cpp.o.d"
  "CMakeFiles/nm_policy.dir/batch.cpp.o"
  "CMakeFiles/nm_policy.dir/batch.cpp.o.d"
  "CMakeFiles/nm_policy.dir/delay.cpp.o"
  "CMakeFiles/nm_policy.dir/delay.cpp.o.d"
  "CMakeFiles/nm_policy.dir/delay_batch.cpp.o"
  "CMakeFiles/nm_policy.dir/delay_batch.cpp.o.d"
  "CMakeFiles/nm_policy.dir/netmaster.cpp.o"
  "CMakeFiles/nm_policy.dir/netmaster.cpp.o.d"
  "CMakeFiles/nm_policy.dir/oracle.cpp.o"
  "CMakeFiles/nm_policy.dir/oracle.cpp.o.d"
  "CMakeFiles/nm_policy.dir/policy.cpp.o"
  "CMakeFiles/nm_policy.dir/policy.cpp.o.d"
  "libnm_policy.a"
  "libnm_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
