
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/baseline.cpp" "src/policy/CMakeFiles/nm_policy.dir/baseline.cpp.o" "gcc" "src/policy/CMakeFiles/nm_policy.dir/baseline.cpp.o.d"
  "/root/repo/src/policy/batch.cpp" "src/policy/CMakeFiles/nm_policy.dir/batch.cpp.o" "gcc" "src/policy/CMakeFiles/nm_policy.dir/batch.cpp.o.d"
  "/root/repo/src/policy/delay.cpp" "src/policy/CMakeFiles/nm_policy.dir/delay.cpp.o" "gcc" "src/policy/CMakeFiles/nm_policy.dir/delay.cpp.o.d"
  "/root/repo/src/policy/delay_batch.cpp" "src/policy/CMakeFiles/nm_policy.dir/delay_batch.cpp.o" "gcc" "src/policy/CMakeFiles/nm_policy.dir/delay_batch.cpp.o.d"
  "/root/repo/src/policy/netmaster.cpp" "src/policy/CMakeFiles/nm_policy.dir/netmaster.cpp.o" "gcc" "src/policy/CMakeFiles/nm_policy.dir/netmaster.cpp.o.d"
  "/root/repo/src/policy/oracle.cpp" "src/policy/CMakeFiles/nm_policy.dir/oracle.cpp.o" "gcc" "src/policy/CMakeFiles/nm_policy.dir/oracle.cpp.o.d"
  "/root/repo/src/policy/policy.cpp" "src/policy/CMakeFiles/nm_policy.dir/policy.cpp.o" "gcc" "src/policy/CMakeFiles/nm_policy.dir/policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/nm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/nm_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/duty/CMakeFiles/nm_duty.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/nm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/nm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
