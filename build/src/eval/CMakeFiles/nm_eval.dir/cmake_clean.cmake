file(REMOVE_RECURSE
  "CMakeFiles/nm_eval.dir/experiments.cpp.o"
  "CMakeFiles/nm_eval.dir/experiments.cpp.o.d"
  "CMakeFiles/nm_eval.dir/table.cpp.o"
  "CMakeFiles/nm_eval.dir/table.cpp.o.d"
  "libnm_eval.a"
  "libnm_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
