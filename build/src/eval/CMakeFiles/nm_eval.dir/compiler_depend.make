# Empty compiler generated dependencies file for nm_eval.
# This may be replaced when dependencies are built.
