file(REMOVE_RECURSE
  "libnm_eval.a"
)
