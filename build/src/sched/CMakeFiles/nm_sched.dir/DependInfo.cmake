
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/instance.cpp" "src/sched/CMakeFiles/nm_sched.dir/instance.cpp.o" "gcc" "src/sched/CMakeFiles/nm_sched.dir/instance.cpp.o.d"
  "/root/repo/src/sched/knapsack.cpp" "src/sched/CMakeFiles/nm_sched.dir/knapsack.cpp.o" "gcc" "src/sched/CMakeFiles/nm_sched.dir/knapsack.cpp.o.d"
  "/root/repo/src/sched/overlap.cpp" "src/sched/CMakeFiles/nm_sched.dir/overlap.cpp.o" "gcc" "src/sched/CMakeFiles/nm_sched.dir/overlap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mining/CMakeFiles/nm_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/nm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/nm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
