# Empty compiler generated dependencies file for nm_sched.
# This may be replaced when dependencies are built.
