file(REMOVE_RECURSE
  "libnm_sched.a"
)
