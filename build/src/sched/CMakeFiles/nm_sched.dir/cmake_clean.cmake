file(REMOVE_RECURSE
  "CMakeFiles/nm_sched.dir/instance.cpp.o"
  "CMakeFiles/nm_sched.dir/instance.cpp.o.d"
  "CMakeFiles/nm_sched.dir/knapsack.cpp.o"
  "CMakeFiles/nm_sched.dir/knapsack.cpp.o.d"
  "CMakeFiles/nm_sched.dir/overlap.cpp.o"
  "CMakeFiles/nm_sched.dir/overlap.cpp.o.d"
  "libnm_sched.a"
  "libnm_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
