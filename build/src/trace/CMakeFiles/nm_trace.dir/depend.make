# Empty dependencies file for nm_trace.
# This may be replaced when dependencies are built.
