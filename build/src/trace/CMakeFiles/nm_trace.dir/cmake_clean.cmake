file(REMOVE_RECURSE
  "CMakeFiles/nm_trace.dir/trace.cpp.o"
  "CMakeFiles/nm_trace.dir/trace.cpp.o.d"
  "CMakeFiles/nm_trace.dir/trace_io.cpp.o"
  "CMakeFiles/nm_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/nm_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/nm_trace.dir/trace_stats.cpp.o.d"
  "libnm_trace.a"
  "libnm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
