file(REMOVE_RECURSE
  "libnm_trace.a"
)
