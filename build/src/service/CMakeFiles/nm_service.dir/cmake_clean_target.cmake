file(REMOVE_RECURSE
  "libnm_service.a"
)
