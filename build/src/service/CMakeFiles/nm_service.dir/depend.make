# Empty dependencies file for nm_service.
# This may be replaced when dependencies are built.
