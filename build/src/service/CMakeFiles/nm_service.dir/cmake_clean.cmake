file(REMOVE_RECURSE
  "CMakeFiles/nm_service.dir/components.cpp.o"
  "CMakeFiles/nm_service.dir/components.cpp.o.d"
  "CMakeFiles/nm_service.dir/monitoring.cpp.o"
  "CMakeFiles/nm_service.dir/monitoring.cpp.o.d"
  "CMakeFiles/nm_service.dir/online_sim.cpp.o"
  "CMakeFiles/nm_service.dir/online_sim.cpp.o.d"
  "CMakeFiles/nm_service.dir/record_store.cpp.o"
  "CMakeFiles/nm_service.dir/record_store.cpp.o.d"
  "libnm_service.a"
  "libnm_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
