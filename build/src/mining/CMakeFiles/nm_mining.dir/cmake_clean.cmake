file(REMOVE_RECURSE
  "CMakeFiles/nm_mining.dir/habits.cpp.o"
  "CMakeFiles/nm_mining.dir/habits.cpp.o.d"
  "CMakeFiles/nm_mining.dir/pearson.cpp.o"
  "CMakeFiles/nm_mining.dir/pearson.cpp.o.d"
  "CMakeFiles/nm_mining.dir/special_apps.cpp.o"
  "CMakeFiles/nm_mining.dir/special_apps.cpp.o.d"
  "libnm_mining.a"
  "libnm_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
