# Empty dependencies file for nm_mining.
# This may be replaced when dependencies are built.
