file(REMOVE_RECURSE
  "libnm_mining.a"
)
