
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mining/habits.cpp" "src/mining/CMakeFiles/nm_mining.dir/habits.cpp.o" "gcc" "src/mining/CMakeFiles/nm_mining.dir/habits.cpp.o.d"
  "/root/repo/src/mining/pearson.cpp" "src/mining/CMakeFiles/nm_mining.dir/pearson.cpp.o" "gcc" "src/mining/CMakeFiles/nm_mining.dir/pearson.cpp.o.d"
  "/root/repo/src/mining/special_apps.cpp" "src/mining/CMakeFiles/nm_mining.dir/special_apps.cpp.o" "gcc" "src/mining/CMakeFiles/nm_mining.dir/special_apps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/nm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
