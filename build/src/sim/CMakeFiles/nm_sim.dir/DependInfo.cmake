
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/accounting.cpp" "src/sim/CMakeFiles/nm_sim.dir/accounting.cpp.o" "gcc" "src/sim/CMakeFiles/nm_sim.dir/accounting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/nm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/duty/CMakeFiles/nm_duty.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/nm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
