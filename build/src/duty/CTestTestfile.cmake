# CMake generated Testfile for 
# Source directory: /root/repo/src/duty
# Build directory: /root/repo/build/src/duty
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
