file(REMOVE_RECURSE
  "CMakeFiles/nm_duty.dir/duty_cycle.cpp.o"
  "CMakeFiles/nm_duty.dir/duty_cycle.cpp.o.d"
  "libnm_duty.a"
  "libnm_duty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_duty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
