# Empty compiler generated dependencies file for nm_duty.
# This may be replaced when dependencies are built.
