file(REMOVE_RECURSE
  "libnm_duty.a"
)
