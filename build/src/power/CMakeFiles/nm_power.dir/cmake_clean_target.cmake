file(REMOVE_RECURSE
  "libnm_power.a"
)
