file(REMOVE_RECURSE
  "CMakeFiles/nm_power.dir/radio_model.cpp.o"
  "CMakeFiles/nm_power.dir/radio_model.cpp.o.d"
  "libnm_power.a"
  "libnm_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nm_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
