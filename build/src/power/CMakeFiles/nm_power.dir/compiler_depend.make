# Empty compiler generated dependencies file for nm_power.
# This may be replaced when dependencies are built.
