file(REMOVE_RECURSE
  "CMakeFiles/middleware_service.dir/middleware_service.cpp.o"
  "CMakeFiles/middleware_service.dir/middleware_service.cpp.o.d"
  "middleware_service"
  "middleware_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
