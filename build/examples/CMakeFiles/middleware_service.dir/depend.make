# Empty dependencies file for middleware_service.
# This may be replaced when dependencies are built.
