# Empty dependencies file for duty_cycle_tuning.
# This may be replaced when dependencies are built.
