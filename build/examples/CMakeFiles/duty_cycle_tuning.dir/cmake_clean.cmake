file(REMOVE_RECURSE
  "CMakeFiles/duty_cycle_tuning.dir/duty_cycle_tuning.cpp.o"
  "CMakeFiles/duty_cycle_tuning.dir/duty_cycle_tuning.cpp.o.d"
  "duty_cycle_tuning"
  "duty_cycle_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duty_cycle_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
