# Empty dependencies file for netmaster_cli.
# This may be replaced when dependencies are built.
