file(REMOVE_RECURSE
  "CMakeFiles/netmaster_cli.dir/netmaster_cli.cpp.o"
  "CMakeFiles/netmaster_cli.dir/netmaster_cli.cpp.o.d"
  "netmaster_cli"
  "netmaster_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmaster_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
