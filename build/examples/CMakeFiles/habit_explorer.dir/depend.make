# Empty dependencies file for habit_explorer.
# This may be replaced when dependencies are built.
