file(REMOVE_RECURSE
  "CMakeFiles/habit_explorer.dir/habit_explorer.cpp.o"
  "CMakeFiles/habit_explorer.dir/habit_explorer.cpp.o.d"
  "habit_explorer"
  "habit_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/habit_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
