# Empty dependencies file for radio_model_test.
# This may be replaced when dependencies are built.
