file(REMOVE_RECURSE
  "CMakeFiles/radio_model_test.dir/radio_model_test.cpp.o"
  "CMakeFiles/radio_model_test.dir/radio_model_test.cpp.o.d"
  "radio_model_test"
  "radio_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
