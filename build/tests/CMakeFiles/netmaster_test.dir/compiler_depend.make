# Empty compiler generated dependencies file for netmaster_test.
# This may be replaced when dependencies are built.
