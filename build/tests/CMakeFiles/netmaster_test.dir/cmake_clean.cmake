file(REMOVE_RECURSE
  "CMakeFiles/netmaster_test.dir/netmaster_test.cpp.o"
  "CMakeFiles/netmaster_test.dir/netmaster_test.cpp.o.d"
  "netmaster_test"
  "netmaster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmaster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
