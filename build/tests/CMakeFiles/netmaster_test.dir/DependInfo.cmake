
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netmaster_test.cpp" "tests/CMakeFiles/netmaster_test.dir/netmaster_test.cpp.o" "gcc" "tests/CMakeFiles/netmaster_test.dir/netmaster_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/nm_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/nm_service.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/nm_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/nm_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/nm_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/nm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/nm_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/duty/CMakeFiles/nm_duty.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/nm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/nm_power.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
