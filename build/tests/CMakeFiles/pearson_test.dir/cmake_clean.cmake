file(REMOVE_RECURSE
  "CMakeFiles/pearson_test.dir/pearson_test.cpp.o"
  "CMakeFiles/pearson_test.dir/pearson_test.cpp.o.d"
  "pearson_test"
  "pearson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pearson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
