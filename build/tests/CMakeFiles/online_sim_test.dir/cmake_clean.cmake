file(REMOVE_RECURSE
  "CMakeFiles/online_sim_test.dir/online_sim_test.cpp.o"
  "CMakeFiles/online_sim_test.dir/online_sim_test.cpp.o.d"
  "online_sim_test"
  "online_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
