file(REMOVE_RECURSE
  "CMakeFiles/duty_test.dir/duty_test.cpp.o"
  "CMakeFiles/duty_test.dir/duty_test.cpp.o.d"
  "duty_test"
  "duty_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
