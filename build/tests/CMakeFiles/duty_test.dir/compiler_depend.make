# Empty compiler generated dependencies file for duty_test.
# This may be replaced when dependencies are built.
