// Habit mining and hour-level prediction (§IV-A steps 1–2, §IV-C.1).
//
// The miner consumes a training trace and produces per-hour statistics
// split by day kind (weekday / weekend, the paper's two δ regimes):
//   - Pr[u(ti)]: fraction of history days with any foreground usage in
//     hour ti (Eq. 2),
//   - Pr[n(ti)]: fraction of (app, day) pairs with screen-off network
//     activity in hour ti (Eq. 3),
//   - mean screen-off activity count and bytes per hour (workload shape
//     for the scheduler).
//
// The predictor thresholds Pr[u] at δ to produce the user-active slot
// set U for a day (adjacent qualifying hours merge into variable-length
// slots), and exposes Pr[u(t)] for the penalty integral of Eq. 4.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/interval.hpp"
#include "common/time.hpp"
#include "engine/trace_index.hpp"
#include "trace/trace.hpp"

namespace netmaster::mining {

/// Day regime. The paper applies different interrupt budgets to
/// weekdays (δ = 0.2) and weekends (δ = 0.1).
enum class DayKind { kWeekday = 0, kWeekend = 1 };

inline DayKind day_kind(int day) {
  return is_weekend(day) ? DayKind::kWeekend : DayKind::kWeekday;
}

/// Extra shrink applied to a regime whose (effective) history is a
/// single day. One day pins pr_active to 0/1, so the binomial standard
/// error vanishes and the raw k/(k+1) factor alone would report 0.5 —
/// above the default robustness gate — for history that is barely
/// evidence. The penalty keeps one-day regimes (fresh post-drift
/// re-mines, truncated training) below the default min_confidence until
/// a second day accumulates.
inline constexpr double kSingleDayRegimePenalty = 0.4;

/// Per-slot estimate confidence from an effective day count `k` (> 0;
/// fractional under decayed incremental mining) and the slot's
/// pr_active estimate `p`: a sample-size factor k/(k+1) shrunk by the
/// binomial standard error sqrt(p(1-p)/k), with the single-day penalty
/// above for k <= 1. Shared by the batch and incremental miners so
/// decay = 0 reproduces batch confidences bit for bit.
double slot_confidence(double k, double p);

/// Per-hour habit statistics for one day regime.
struct HourStats {
  std::array<double, kHoursPerDay> pr_active{};   ///< Eq. 2 numerator/k
  std::array<double, kHoursPerDay> pr_net{};      ///< Eq. 3
  std::array<double, kHoursPerDay> mean_intensity{};
  std::array<double, kHoursPerDay> mean_net_count{};  ///< screen-off
  std::array<double, kHoursPerDay> mean_net_bytes{};  ///< screen-off
  /// Per-slot estimate confidence in [0, 1]: shrinks with the binomial
  /// standard error of pr_active and with small day counts (0 when the
  /// regime was never observed). Does not include the data-quality
  /// factor — see HabitModel::confidence.
  std::array<double, kHoursPerDay> confidence{};
  int days_observed = 0;
};

/// Mined habit model of one user.
class HabitModel {
 public:
  /// Mines a training trace (all its days). Tolerant: corrupted input
  /// is repaired through fault::sanitize_trace first, and the repair
  /// ledger's quality score scales the model's confidence. Valid
  /// traces mine bit-identically to the index overload.
  static HabitModel mine(const UserTrace& history);

  /// Mines from a prebuilt index (the per-hour buckets are exactly the
  /// statistics Eqs. 2–3 consume); shares the index across consumers
  /// instead of rescanning the trace. The caller vouches for the
  /// indexed trace (fleet paths validate before indexing).
  static HabitModel mine(const engine::TraceIndex& history);

  /// Windowed mine: folds only the days in [first_day, last_day) of the
  /// index, keeping their absolute day kinds (weekday/weekend phase is
  /// preserved, days outside the window contribute nothing — not even
  /// as empty observations). This is the drift-adaptation refresh path:
  /// re-mine from the post-changepoint window of the monitored history.
  /// mine(index) == mine(index, 0, index.num_days()) bit for bit.
  static HabitModel mine(const engine::TraceIndex& history, int first_day,
                         int last_day);

  /// Scales the model's data-quality factor by `factor` in [0, 1] —
  /// every per-slot and pooled confidence shrinks with it. Used by the
  /// sanitizer ledger and by the drift-adaptation confidence ramp
  /// (a freshly re-mined model is not trusted at full strength until
  /// enough post-drift days accumulate).
  void scale_confidence(double factor);

  const HourStats& stats(DayKind kind) const {
    return stats_[static_cast<std::size_t>(kind)];
  }

  /// Pr[u] at an absolute trace time (hour-level resolution), using the
  /// regime of the day containing t.
  double pr_active_at(TimeMs t) const;

  /// Pr[u] for a given regime and hour of day.
  double pr_active(DayKind kind, int hour) const;

  /// Per-slot confidence in [0, 1]: the regime's per-hour estimate
  /// confidence scaled by the training data quality.
  double confidence(DayKind kind, int hour) const;

  /// Confidence pooled over both regimes (weighted by days observed);
  /// 0 when the model saw no training days at all. NetMasterPolicy
  /// compares this against its robustness threshold.
  double overall_confidence() const;

  /// Total training days folded into the model (both regimes).
  int training_days() const {
    return stats_[0].days_observed + stats_[1].days_observed;
  }

  /// Fraction of training events that survived sanitation (1 for clean
  /// training input).
  double data_quality() const { return data_quality_; }

 private:
  friend class IncrementalHabitMiner;  ///< snapshots fill stats_ directly

  std::array<HourStats, 2> stats_{};
  double data_quality_ = 1.0;
};

/// Configuration of the slot predictor.
struct PredictorConfig {
  double delta_weekday = 0.2;  ///< interrupt budget δ on weekdays
  double delta_weekend = 0.1;  ///< δ on weekends
};

/// The predicted slot structure for one day.
struct DayPrediction {
  int day = 0;
  /// User-active slot set U (absolute trace times, merged hours).
  IntervalSet active_slots;
  /// Screen-off network-active slots Tn: hours outside U where history
  /// shows screen-off traffic (Eq. 3's Pr[n] > 0 restricted to ti ∉ U).
  IntervalSet net_slots;
};

/// Thresholds a HabitModel into daily slot predictions.
class SlotPredictor {
 public:
  SlotPredictor(HabitModel model, PredictorConfig config);

  const HabitModel& model() const { return model_; }
  const PredictorConfig& config() const { return config_; }

  /// δ in effect for the given day.
  double delta_for_day(int day) const;

  /// Predicted slots for one (absolute) day index.
  DayPrediction predict_day(int day) const;

  /// True when instant t falls in a predicted user-active slot.
  bool is_predicted_active(TimeMs t) const;

  /// Integral of Pr[u(t)]·dt over [from, to) in probability·seconds —
  /// the second factor of the paper's penalty ΔP (Eq. 4).
  double active_probability_integral(TimeMs from, TimeMs to) const;

  /// Predicted Wi-Fi presence windows for one (absolute) day: the hours
  /// whose Pr[u] is at least `min_probability` (adjacent hours merge).
  /// High-probability habit hours are the hours the user reliably
  /// spends at a routine location — home or office, i.e. at a familiar
  /// AP — so the threshold (deliberately stricter than the δ slot
  /// threshold) is the habit model's proxy for Wi-Fi availability, in
  /// the spirit of predictive green wireless access. The multi-radio
  /// co-scheduler offers these windows as offload knapsacks.
  IntervalSet presence_windows(int day, double min_probability) const;

 private:
  HabitModel model_;
  PredictorConfig config_;
};

/// Prediction accuracy on an evaluation trace: the fraction of actual
/// foreground usages that fall inside the predicted active slots
/// (the paper's Fig. 10c definition).
double prediction_accuracy(const SlotPredictor& predictor,
                           const UserTrace& eval);

}  // namespace netmaster::mining
