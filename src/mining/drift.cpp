#include "mining/drift.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace netmaster::mining {

namespace {

// Divergence blend. Raw probability gaps alone have poor signal-to-
// noise (the fast bank's few-day window keeps |Δpr| around 0.05 even
// under stationarity), so the blend leans on the slot-flip term: hours
// whose fast and slow banks disagree about δ-threshold slot membership
// — the structure the scheduler actually consumes — flip rarely under
// stationary noise but wholesale under a habit shift.
constexpr double kActiveWeight = 0.45;
constexpr double kNetWeight = 0.15;
constexpr double kFlipWeight = 0.40;

// Reference days required before a regime's divergence is measured at
// all (floor learning); alarming additionally needs the reference past
// the full warmup.
constexpr int kMinReferenceDays = 2;

struct DriftMetrics {
  obs::Counter& days;
  obs::Counter& alarms;
  obs::Histogram& score;
};

DriftMetrics& drift_metrics() {
  static DriftMetrics metrics{
      obs::Registry::global().counter("mining.drift.days_observed"),
      obs::Registry::global().counter("mining.drift.alarms"),
      obs::Registry::global().histogram("mining.drift.score",
                                        obs::fraction_bounds()),
  };
  return metrics;
}

}  // namespace

DriftDetector::DriftDetector(DriftConfig config)
    : config_(config),
      fast_(IncrementalConfig{config.fast_decay}),
      slow_(IncrementalConfig{config.slow_decay}) {
  // The bank constructors already require decays in [0, 1); the
  // detector additionally needs the fast bank to forget faster than
  // the slow one, or the divergence is identically zero.
  NM_REQUIRE(config.fast_decay > config.slow_decay,
             "fast_decay must exceed slow_decay");
  NM_REQUIRE(std::isfinite(config.predictor.delta_weekday) &&
                 config.predictor.delta_weekday > 0.0 &&
                 config.predictor.delta_weekday < 1.0 &&
                 std::isfinite(config.predictor.delta_weekend) &&
                 config.predictor.delta_weekend > 0.0 &&
                 config.predictor.delta_weekend < 1.0,
             "slot-flip deltas must lie in (0, 1)");
  NM_REQUIRE(std::isfinite(config.divergence_full_scale) &&
                 config.divergence_full_scale > 0.0,
             "divergence_full_scale must be finite and positive");
  NM_REQUIRE(std::isfinite(config.ph_delta) && config.ph_delta >= 0.0,
             "ph_delta must be finite and non-negative");
  NM_REQUIRE(std::isfinite(config.ph_lambda) && config.ph_lambda > 0.0,
             "ph_lambda must be finite and positive");
  NM_REQUIRE(std::isfinite(config.ph_lambda_weekend_scale) &&
                 config.ph_lambda_weekend_scale >= 1.0,
             "ph_lambda_weekend_scale must be finite and >= 1");
  NM_REQUIRE(config.warmup_days >= 0,
             "warmup_days must be non-negative");
  NM_REQUIRE(std::isfinite(config.anchor_days) && config.anchor_days >= 0.0,
             "anchor_days must be finite and non-negative");
  NM_REQUIRE(config.reference_lag_days >= 0,
             "reference_lag_days must be non-negative");
}

void DriftDetector::observe_day(int day,
                                const engine::TraceIndex& index) {
  observe_summary(day,
                  IncrementalHabitMiner::summarize_day(day, index));
}

void DriftDetector::observe_summary(int day, DayContribution today) {
  fast_.observe_summary(today);
  ++tick_;
  pending_.emplace_back(tick_, std::move(today));
  // Days older than the reference lag graduate into the slow bank.
  while (!pending_.empty() &&
         tick_ - pending_.front().first >= config_.reference_lag_days) {
    slow_.observe_summary(pending_.front().second);
    pending_.pop_front();
  }
  last_day_ = day;

  const DayKind kind = day_kind(day);
  RegimeState& st = states_[static_cast<std::size_t>(kind)];

  const double delta = kind == DayKind::kWeekday
                           ? config_.predictor.delta_weekday
                           : config_.predictor.delta_weekend;
  double div = 0.0;
  for (int h = 0; h < kHoursPerDay; ++h) {
    const double fast_a = fast_.pr_active(kind, h);
    const double slow_a = slow_.pr_active(kind, h);
    const double gap_a = std::abs(fast_a - slow_a);
    // A flip counts in proportion to how decisively the banks disagree
    // relative to the slot threshold: an estimate hovering at δ flips
    // on hairline sampling noise (the dominant weekend false-positive
    // source for sparse users), while a genuine habit shift moves
    // pr_active across δ by a wide margin.
    const bool flip = (fast_a > delta) != (slow_a > delta);
    const double flip_w = flip ? std::min(1.0, gap_a / delta) : 0.0;
    div += kActiveWeight * gap_a +
           kNetWeight *
               std::abs(fast_.pr_net(kind, h) - slow_.pr_net(kind, h)) +
           kFlipWeight * flip_w;
  }
  div /= kHoursPerDay;
  st.last_divergence = div;

  DriftMetrics& metrics = drift_metrics();
  metrics.days.add(1);

  // The fast bank needs a few regime days before the fast-slow gap
  // measures anything but initialization transients, and the lagged
  // reference at least kMinReferenceDays — before that the regime is
  // fully gated. Alarming is stricter: it additionally waits for the
  // reference to pass the full warmup and for the floor to hold at
  // least one sample, because against a two-day reference the gap
  // measures sampling noise (the dominant weekend false-positive
  // source on short horizons).
  if (fast_.days_observed(kind) <= config_.warmup_days ||
      slow_.days_observed(kind) < kMinReferenceDays) {
    metrics.score.add(score());
    return;
  }
  const bool armed = slow_.days_observed(kind) > config_.warmup_days &&
                     st.mean_days > 0;
  const double lambda = kind == DayKind::kWeekend
                            ? config_.ph_lambda *
                                  config_.ph_lambda_weekend_scale
                            : config_.ph_lambda;

  // Page–Hinkley: cumulative deviation above the running mean (plus
  // the ph_delta tolerance), referenced to its own running minimum.
  // The minimum starts at the 0 the cumsum itself starts from, so a
  // divergence jump on the very first post-(re)set day already counts.
  // The reference mean deliberately EXCLUDES today's sample (a drifted
  // day must be measured against the stationary floor, not against a
  // mean it has already pulled up), and stops updating once alarmed so
  // an unhandled drift cannot launder itself into the baseline.
  const double reference =
      st.mean_days > 0 ? st.mean_divergence : div;
  if (armed) {
    // The positive increment is capped at +2·ph_delta: an alarm then
    // always stands on multiple elevated days of the regime, so a
    // single-day outlier (a sparse user's quirky weekend) cannot alarm
    // no matter how far it diverges, while a sustained shift still
    // accumulates to the threshold in days.
    st.ph_cum += std::min(div - reference - config_.ph_delta,
                          2.0 * config_.ph_delta);
    if (st.ph_cum < st.ph_min) {
      st.ph_min = st.ph_cum;
      st.ph_min_day = day;
    }
    st.ph = st.ph_cum - st.ph_min;
    if (st.ph > lambda && !st.alarmed) {
      st.alarmed = true;
      st.alarm_day = day;
      metrics.alarms.add(1);
    }
  }
  if (!st.alarmed) {
    // Robust floor update: clip the folded sample to reference + δ so
    // stationary noise (≈ ±δ) passes through nearly unbiased while a
    // drifted run of high-divergence days cannot drag the floor up
    // fast enough to suppress its own changepoint statistic.
    const double clipped = std::min(div, reference + config_.ph_delta);
    ++st.mean_days;
    st.mean_divergence += (clipped - st.mean_divergence) / st.mean_days;
  }
  metrics.score.add(score());
}

void DriftDetector::observe_index(const engine::TraceIndex& index) {
  for (int d = 0; d < index.num_days(); ++d) observe_day(d, index);
}

double DriftDetector::score(DayKind kind) const {
  const RegimeState& st = state(kind);
  if (fast_.days_observed(kind) <= config_.warmup_days ||
      slow_.days_observed(kind) < kMinReferenceDays) {
    return 0.0;
  }
  // Level component: excess divergence above the learned stationary
  // floor — the floor itself varies per archetype (noisy users sit
  // near 0.15, quiet ones near 0.05), so the raw level carries no
  // drift information.
  const double excess =
      std::max(0.0, st.last_divergence - st.mean_divergence);
  const double level = excess / config_.divergence_full_scale;
  const double lambda = kind == DayKind::kWeekend
                            ? config_.ph_lambda *
                                  config_.ph_lambda_weekend_scale
                            : config_.ph_lambda;
  const double changepoint = st.ph / lambda;
  return std::clamp(std::max(level, changepoint), 0.0, 1.0);
}

double DriftDetector::score() const {
  return std::max(score(DayKind::kWeekday), score(DayKind::kWeekend));
}

bool DriftDetector::alarmed() const {
  return states_[0].alarmed || states_[1].alarmed;
}

int DriftDetector::alarm_day() const {
  int day = -1;
  for (const RegimeState& st : states_) {
    if (!st.alarmed) continue;
    if (day < 0 || st.alarm_day < day) day = st.alarm_day;
  }
  return day;
}

int DriftDetector::changepoint_day() const {
  // Onset estimate of the earliest-alarming regime: the Page–Hinkley
  // statistic was at its minimum just before the mean shifted, so the
  // day after the minimum is the first post-drift day.
  int best_alarm = -1;
  int onset = -1;
  for (const RegimeState& st : states_) {
    if (!st.alarmed) continue;
    if (best_alarm < 0 || st.alarm_day < best_alarm) {
      best_alarm = st.alarm_day;
      onset = st.ph_min_day + 1;
    }
  }
  return onset;
}

void DriftDetector::notify_adapted() {
  // Only a drift that actually alarmed re-bases the reference: the
  // re-mined model then reflects the recent habits, so the slow bank
  // adopts the fast one (re-anchored so post-adoption days cannot
  // overrun it) and the buffered lag days — already inside the adopted
  // counters — are dropped. A seed-time or voluntary adoption keeps
  // the lagged reference: it is already consistent with the model, and
  // swapping it for the fast bank would re-introduce the correlated
  // ramp the lag exists to avoid. In both cases the changepoint
  // statistics restart while the running divergence mean is kept — it
  // is the learned stationary noise floor, and discarding it would
  // make the statistic adopt a post-onset divergence level as
  // "normal".
  if (alarmed()) {
    slow_.adopt_counters(fast_);
    if (config_.anchor_days > 0.0) {
      slow_.rescale_weights(config_.anchor_days);
    }
    pending_.clear();
  }
  for (RegimeState& st : states_) {
    st.last_divergence = 0.0;
    // Keep the learned floor value but cut its sample weight: the
    // divergence floor shifts between epochs (the reference bank's
    // size changes), and a heavy stale mean would mask the next drift.
    // The clipped update still stops a drift from laundering itself
    // into the re-converging mean.
    st.mean_days = std::min(st.mean_days, 3);
    st.ph_cum = 0.0;
    st.ph_min = 0.0;
    st.ph = 0.0;
    // -1 sentinel: caller day numbers may restart on the next index
    // (seed → monitor), so the pre-adaptation day is meaningless as a
    // changepoint reference; "never dipped" maps to onset day 0.
    st.ph_min_day = -1;
    st.alarmed = false;
    st.alarm_day = -1;
  }
}

}  // namespace netmaster::mining
