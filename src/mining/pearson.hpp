// Usage-pattern correlation analysis (the paper's Eq. 1 and Figs. 3–4).
//
// Usage vectors are 24-dimensional hourly intensity vectors. The paper
// correlates them (a) across users — low average (~0.14), showing no
// one-size-fits-all schedule exists — and (b) across days of one user —
// high average (~0.82), showing per-user habits are predictable.
#pragma once

#include <vector>

#include "trace/trace.hpp"
#include "trace/trace_stats.hpp"

namespace netmaster::mining {

/// Square matrix of Pearson coefficients, row-major.
struct CorrelationMatrix {
  std::size_t n = 0;
  std::vector<double> values;  // n*n, values[i*n+j]

  double at(std::size_t i, std::size_t j) const { return values[i * n + j]; }

  /// Mean of the off-diagonal entries (the statistic the paper reports).
  double off_diagonal_mean() const;
};

/// Pearson matrix between the whole-trace intensity vectors of every
/// pair of users (Fig. 3).
CorrelationMatrix cross_user_matrix(const TraceSet& traces);

/// Pearson matrix between the per-day intensity vectors of one user
/// over days [0, days) (Fig. 4 uses the first 8 days).
CorrelationMatrix cross_day_matrix(const UserTrace& trace, int days);

}  // namespace netmaster::mining
