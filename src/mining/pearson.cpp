#include "mining/pearson.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace netmaster::mining {

namespace {

std::vector<double> to_vector(const IntensityVector& v) {
  return std::vector<double>(v.begin(), v.end());
}

}  // namespace

double CorrelationMatrix::off_diagonal_mean() const {
  if (n < 2) return 0.0;
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      sum += at(i, j);
      ++count;
    }
  }
  return sum / static_cast<double>(count);
}

CorrelationMatrix cross_user_matrix(const TraceSet& traces) {
  CorrelationMatrix m;
  m.n = traces.users.size();
  m.values.assign(m.n * m.n, 1.0);

  std::vector<std::vector<double>> vectors;
  vectors.reserve(m.n);
  for (const UserTrace& trace : traces.users) {
    vectors.push_back(to_vector(usage_intensity(trace)));
  }
  for (std::size_t i = 0; i < m.n; ++i) {
    for (std::size_t j = i + 1; j < m.n; ++j) {
      const double r = pearson(vectors[i], vectors[j]);
      m.values[i * m.n + j] = r;
      m.values[j * m.n + i] = r;
    }
  }
  return m;
}

CorrelationMatrix cross_day_matrix(const UserTrace& trace, int days) {
  NM_REQUIRE(days > 0 && days <= trace.num_days,
             "day count out of trace range");
  CorrelationMatrix m;
  m.n = static_cast<std::size_t>(days);
  m.values.assign(m.n * m.n, 1.0);

  std::vector<std::vector<double>> vectors;
  vectors.reserve(m.n);
  for (int d = 0; d < days; ++d) {
    vectors.push_back(to_vector(usage_intensity_for_day(trace, d)));
  }
  for (std::size_t i = 0; i < m.n; ++i) {
    for (std::size_t j = i + 1; j < m.n; ++j) {
      const double r = pearson(vectors[i], vectors[j]);
      m.values[i * m.n + j] = r;
      m.values[j * m.n + i] = r;
    }
  }
  return m;
}

}  // namespace netmaster::mining
