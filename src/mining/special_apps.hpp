// "Special Apps" detection (§IV-C.2).
//
// Special apps are the apps "used at least once along with network
// activities" in the training history — the small set whose foreground
// appearance reliably signals a user-driven network need. The real-time
// adjustment layer powers the radio on when one of them comes to the
// foreground outside predicted slots. Newly-installed (never-seen) apps
// default to special, matching the paper's conservative rule.
#pragma once

#include <vector>

#include "trace/trace.hpp"

namespace netmaster::mining {

class SpecialApps {
 public:
  /// Detects special apps from a training trace.
  static SpecialApps detect(const UserTrace& history);

  /// True for special apps; also true for app ids beyond the training
  /// population (newly installed apps are special until observed).
  bool is_special(AppId app) const;

  /// Number of detected special apps (the paper's "8 out of 23").
  std::size_t count() const;

  const std::vector<bool>& flags() const { return special_; }

 private:
  std::vector<bool> special_;
};

}  // namespace netmaster::mining
