#include "mining/incremental.hpp"

#include <cmath>

#include "common/error.hpp"

namespace netmaster::mining {

IncrementalHabitMiner::IncrementalHabitMiner(IncrementalConfig config)
    : config_(config) {
  NM_REQUIRE(std::isfinite(config.decay) && config.decay >= 0.0 &&
                 config.decay < 1.0,
             "decay must be in [0, 1)");
}

DayContribution IncrementalHabitMiner::summarize_day(
    int day, const engine::TraceIndex& index) {
  NM_REQUIRE(day >= 0 && day < index.num_days(),
             "observed day out of the index range");
  DayContribution c;
  c.kind = day_kind(day);
  const std::size_t num_apps = index.num_apps();
  for (int h = 0; h < kHoursPerDay; ++h) {
    const engine::TraceIndex::HourBucket& bucket = index.bucket(day, h);
    if (bucket.usage_count > 0) c.active[h] = 1.0;
    c.intensity[h] = bucket.usage_count;
    c.net_count[h] = bucket.net_count;
    c.net_bytes[h] = bucket.net_bytes;
    if (num_apps > 0) {
      c.net[h] = static_cast<double>(bucket.distinct_net_apps) /
                 static_cast<double>(num_apps);
    }
  }
  return c;
}

void IncrementalHabitMiner::observe_summary(const DayContribution& day) {
  RegimeCounters& r = regimes_[static_cast<std::size_t>(day.kind)];

  // Forget, then fold — the same per-day contributions the batch miner
  // accumulates, so the keep-everything case stays bit-identical
  // (x * 1.0 == x for every finite x, and adding the contribution is
  // the same addition the batch fold performs).
  const double keep = 1.0 - config_.decay;
  if (keep != 1.0 && r.weight > 0.0) {
    for (int h = 0; h < kHoursPerDay; ++h) {
      r.active[h] *= keep;
      r.net[h] *= keep;
      r.intensity[h] *= keep;
      r.net_count[h] *= keep;
      r.net_bytes[h] *= keep;
    }
    r.weight *= keep;
  }
  for (int h = 0; h < kHoursPerDay; ++h) {
    r.active[h] += day.active[h];
    r.net[h] += day.net[h];
    r.intensity[h] += day.intensity[h];
    r.net_count[h] += day.net_count[h];
    r.net_bytes[h] += day.net_bytes[h];
  }
  r.weight += 1.0;
  ++r.days;
}

void IncrementalHabitMiner::observe_day(int day,
                                        const engine::TraceIndex& index) {
  observe_summary(summarize_day(day, index));
}

void IncrementalHabitMiner::observe_index(
    const engine::TraceIndex& index) {
  for (int d = 0; d < index.num_days(); ++d) observe_day(d, index);
}

void IncrementalHabitMiner::rescale_weights(double target_days) {
  NM_REQUIRE(std::isfinite(target_days) && target_days > 0.0,
             "target_days must be finite and positive");
  for (RegimeCounters& r : regimes_) {
    if (r.weight <= 0.0) continue;
    const double factor = target_days / r.weight;
    for (int h = 0; h < kHoursPerDay; ++h) {
      r.active[h] *= factor;
      r.net[h] *= factor;
      r.intensity[h] *= factor;
      r.net_count[h] *= factor;
      r.net_bytes[h] *= factor;
    }
    r.weight = target_days;
  }
}

double IncrementalHabitMiner::pr_active(DayKind kind, int hour) const {
  NM_REQUIRE(hour >= 0 && hour < kHoursPerDay, "hour out of range");
  const RegimeCounters& r = regime(kind);
  return r.weight > 0.0 ? r.active[hour] / r.weight : 0.0;
}

double IncrementalHabitMiner::pr_net(DayKind kind, int hour) const {
  NM_REQUIRE(hour >= 0 && hour < kHoursPerDay, "hour out of range");
  const RegimeCounters& r = regime(kind);
  return r.weight > 0.0 ? r.net[hour] / r.weight : 0.0;
}

double IncrementalHabitMiner::mean_intensity(DayKind kind,
                                             int hour) const {
  NM_REQUIRE(hour >= 0 && hour < kHoursPerDay, "hour out of range");
  const RegimeCounters& r = regime(kind);
  return r.weight > 0.0 ? r.intensity[hour] / r.weight : 0.0;
}

HabitModel IncrementalHabitMiner::snapshot(double data_quality) const {
  NM_REQUIRE(std::isfinite(data_quality) && data_quality >= 0.0 &&
                 data_quality <= 1.0,
             "data_quality must be in [0, 1]");
  HabitModel model;
  model.data_quality_ = data_quality;
  for (std::size_t i = 0; i < regimes_.size(); ++i) {
    const RegimeCounters& r = regimes_[i];
    HourStats& s = model.stats_[i];
    s.days_observed = r.days;
    if (r.weight <= 0.0) continue;  // confidence stays all-zero
    const double k = r.weight;
    for (int h = 0; h < kHoursPerDay; ++h) {
      s.pr_active[h] = r.active[h] / k;
      s.pr_net[h] = r.net[h] / k;
      s.mean_intensity[h] = r.intensity[h] / k;
      s.mean_net_count[h] = r.net_count[h] / k;
      s.mean_net_bytes[h] = r.net_bytes[h] / k;
      s.confidence[h] = slot_confidence(k, s.pr_active[h]);
    }
  }
  return model;
}

}  // namespace netmaster::mining
