// Incremental habit mining over exponentially-decayed per-slot counters
// (ROADMAP items 1 and 5).
//
// The batch miner rebuilds a HabitModel from the whole training window;
// a long-lived middleware instead folds each completed day into running
// per-(regime, hour) accumulators. This miner maintains exactly the
// statistics Eqs. 2–3 consume — pr_active / pr_net occupancy sums and
// the intensity/net workload means — per DayKind, one day at a time,
// with a `decay` knob that forgets old days geometrically:
//
//   sums ← sums · (1 − decay) + today,   weight ← weight · (1 − decay) + 1
//
// applied per regime when a day of that regime arrives. Estimates are
// sums / weight, so decay = 0 degenerates to the plain per-day sums and
// a snapshot() reproduces the batch HabitModel::mine result bit for
// bit on the same index (regression-tested in drift_test). The decayed
// `weight` is the effective day count feeding the shared confidence
// formula: a heavily-decayed history is worth fewer days of evidence.
//
// These counters are the substrate for the drift detector (two banks at
// different decays, see drift.hpp) and for ROADMAP item 1's streaming
// mining (per-event ingestion folds into the same per-day buckets).
#pragma once

#include <array>
#include <cstdint>

#include "common/time.hpp"
#include "engine/trace_index.hpp"
#include "mining/habits.hpp"

namespace netmaster::mining {

struct IncrementalConfig {
  /// Per-day forgetting factor in [0, 1): each new day of a regime
  /// scales that regime's accumulated history by (1 − decay). 0 keeps
  /// everything (batch-equivalent); larger values track recent habits
  /// with an effective window of roughly 1/decay days per regime.
  double decay = 0.0;
};

/// One day's additive contribution to the per-slot counters, detached
/// from the TraceIndex it came from. Lets a caller buffer days and
/// fold them later (the drift detector feeds its reference bank with a
/// lag, long after the source index may be gone).
struct DayContribution {
  DayKind kind = DayKind::kWeekday;
  std::array<double, kHoursPerDay> active{};
  std::array<double, kHoursPerDay> net{};
  std::array<double, kHoursPerDay> intensity{};
  std::array<double, kHoursPerDay> net_count{};
  std::array<double, kHoursPerDay> net_bytes{};
};

/// Streaming per-slot habit counters, one day at a time.
class IncrementalHabitMiner {
 public:
  explicit IncrementalHabitMiner(IncrementalConfig config = {});

  const IncrementalConfig& config() const { return config_; }

  /// Extracts day `day`'s contribution without folding it anywhere.
  static DayContribution summarize_day(int day,
                                       const engine::TraceIndex& index);

  /// Folds one extracted day into its regime (decay, then add).
  void observe_summary(const DayContribution& day);

  /// Folds day `day` of the index into the day's regime. Days must be
  /// fed in increasing order for the decay semantics to mean "recent
  /// days weigh more" (not enforced — the counters themselves are
  /// order-agnostic in the decay=0 case).
  void observe_day(int day, const engine::TraceIndex& index);

  /// Folds every day of the index in order (seed from batch history).
  void observe_index(const engine::TraceIndex& index);

  /// Replaces this miner's accumulated counters with `other`'s while
  /// keeping its own decay config. The drift detector uses this to
  /// re-anchor the slow bank onto the recent-habit bank after an
  /// adaptation: from here on the copied history decays at this
  /// miner's own rate.
  void adopt_counters(const IncrementalHabitMiner& other) {
    regimes_ = other.regimes_;
  }

  /// Rescales every non-empty regime's counters so its decayed weight
  /// becomes `target_days`. Probability and mean estimates (ratios of
  /// counters to weight) are unchanged; only the inertia against
  /// future days moves. The drift detector uses this to anchor the
  /// re-based reference bank: a freshly-adopted fast bank carries only
  /// a few effective days, and without re-weighting the reference
  /// would be overrun by post-adoption days within a week — erasing
  /// the very divergence a sustained drift should keep producing.
  void rescale_weights(double target_days);

  /// Days ever folded into the given regime (undecayed count).
  int days_observed(DayKind kind) const {
    return regime(kind).days;
  }
  int days_observed() const {
    return regimes_[0].days + regimes_[1].days;
  }

  /// Decayed effective day count of the regime (equals days_observed
  /// when decay = 0).
  double effective_days(DayKind kind) const {
    return regime(kind).weight;
  }

  /// Current decayed estimates for one regime slot (0 before any day of
  /// the regime was observed).
  double pr_active(DayKind kind, int hour) const;
  double pr_net(DayKind kind, int hour) const;
  double mean_intensity(DayKind kind, int hour) const;

  /// Snapshots the counters into a HabitModel whose confidence uses the
  /// decayed effective day counts. With decay = 0 the snapshot is
  /// bit-for-bit the batch HabitModel::mine of the same observed days.
  /// `data_quality` scales the model's confidence (the sanitizer's
  /// ledger score when the observed days came through repair).
  HabitModel snapshot(double data_quality = 1.0) const;

 private:
  struct RegimeCounters {
    double weight = 0.0;  ///< decayed day count
    int days = 0;         ///< undecayed day count
    std::array<double, kHoursPerDay> active{};     ///< 1{any usage}
    std::array<double, kHoursPerDay> net{};        ///< distinct apps / m
    std::array<double, kHoursPerDay> intensity{};  ///< usage counts
    std::array<double, kHoursPerDay> net_count{};
    std::array<double, kHoursPerDay> net_bytes{};
  };

  const RegimeCounters& regime(DayKind kind) const {
    return regimes_[static_cast<std::size_t>(kind)];
  }

  IncrementalConfig config_;
  std::array<RegimeCounters, 2> regimes_{};
};

}  // namespace netmaster::mining
