#include "mining/habits.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace netmaster::mining {

HabitModel HabitModel::mine(const UserTrace& history) {
  history.validate();
  HabitModel model;

  // Per-(day, hour) occupancy flags and accumulators.
  const int days = history.num_days;
  std::vector<std::array<bool, kHoursPerDay>> used(
      days, std::array<bool, kHoursPerDay>{});
  std::vector<std::array<int, kHoursPerDay>> usage_count(
      days, std::array<int, kHoursPerDay>{});
  std::vector<std::array<int, kHoursPerDay>> net_count(
      days, std::array<int, kHoursPerDay>{});
  std::vector<std::array<double, kHoursPerDay>> net_bytes(
      days, std::array<double, kHoursPerDay>{});
  // Eq. 3 counts (app, day) pairs: track which apps were active per
  // (day, hour) so the denominator m*k is honoured.
  const std::size_t num_apps = history.app_names.size();
  std::vector<std::vector<bool>> app_net(
      days, std::vector<bool>(num_apps * kHoursPerDay, false));

  for (const AppUsage& u : history.usages) {
    const int d = day_of(u.time);
    const int h = hour_of(u.time);
    used[d][h] = true;
    ++usage_count[d][h];
  }
  for (const NetworkActivity& n : history.activities) {
    if (history.screen_on_at(n.start)) continue;  // screen-off only
    const int d = day_of(n.start);
    const int h = hour_of(n.start);
    ++net_count[d][h];
    net_bytes[d][h] += static_cast<double>(n.total_bytes());
    app_net[d][static_cast<std::size_t>(n.app) * kHoursPerDay + h] = true;
  }

  for (int d = 0; d < days; ++d) {
    auto& s = model.stats_[static_cast<std::size_t>(day_kind(d))];
    ++s.days_observed;
    for (int h = 0; h < kHoursPerDay; ++h) {
      if (used[d][h]) s.pr_active[h] += 1.0;
      s.mean_intensity[h] += usage_count[d][h];
      s.mean_net_count[h] += net_count[d][h];
      s.mean_net_bytes[h] += net_bytes[d][h];
      if (num_apps > 0) {
        int apps_active = 0;
        for (std::size_t a = 0; a < num_apps; ++a) {
          if (app_net[d][a * kHoursPerDay + h]) ++apps_active;
        }
        s.pr_net[h] += static_cast<double>(apps_active) /
                       static_cast<double>(num_apps);
      }
    }
  }

  for (auto& s : model.stats_) {
    if (s.days_observed == 0) continue;
    const auto k = static_cast<double>(s.days_observed);
    for (int h = 0; h < kHoursPerDay; ++h) {
      s.pr_active[h] /= k;
      s.pr_net[h] /= k;
      s.mean_intensity[h] /= k;
      s.mean_net_count[h] /= k;
      s.mean_net_bytes[h] /= k;
    }
  }
  return model;
}

double HabitModel::pr_active_at(TimeMs t) const {
  NM_REQUIRE(t >= 0, "time must be non-negative");
  return pr_active(day_kind(day_of(t)), hour_of(t));
}

double HabitModel::pr_active(DayKind kind, int hour) const {
  NM_REQUIRE(hour >= 0 && hour < kHoursPerDay, "hour out of range");
  return stats_[static_cast<std::size_t>(kind)].pr_active[hour];
}

SlotPredictor::SlotPredictor(HabitModel model, PredictorConfig config)
    : model_(std::move(model)), config_(config) {
  NM_REQUIRE(config.delta_weekday >= 0.0 && config.delta_weekday <= 1.0,
             "delta_weekday must be a probability");
  NM_REQUIRE(config.delta_weekend >= 0.0 && config.delta_weekend <= 1.0,
             "delta_weekend must be a probability");
}

double SlotPredictor::delta_for_day(int day) const {
  return is_weekend(day) ? config_.delta_weekend : config_.delta_weekday;
}

DayPrediction SlotPredictor::predict_day(int day) const {
  NM_REQUIRE(day >= 0, "day must be non-negative");
  DayPrediction pred;
  pred.day = day;
  const DayKind kind = day_kind(day);
  const HourStats& s = model_.stats(kind);
  const double delta = delta_for_day(day);

  for (int h = 0; h < kHoursPerDay; ++h) {
    const TimeMs begin = hour_start(day, h);
    const TimeMs end = begin + kMsPerHour;
    // Eq. 2: active when Pr[u] exceeds the threshold. The paper's
    // impact-based rule sets thr(u) so that Pr[u] in every *inactive*
    // slot stays at or below δ, i.e. thr(u) is the smallest value
    // strictly above δ — "Pr[u] > δ" implements exactly that.
    if (s.pr_active[h] > delta) {
      pred.active_slots.add(begin, end);  // adjacent hours auto-merge
    } else if (s.pr_net[h] > 0.0) {
      // Eq. 3 restricted to ti ∉ U.
      pred.net_slots.add(begin, end);
    }
  }
  return pred;
}

bool SlotPredictor::is_predicted_active(TimeMs t) const {
  const HourStats& s = model_.stats(day_kind(day_of(t)));
  return s.pr_active[static_cast<std::size_t>(hour_of(t))] >
         delta_for_day(day_of(t));
}

double SlotPredictor::active_probability_integral(TimeMs from,
                                                  TimeMs to) const {
  NM_REQUIRE(from >= 0 && to >= from, "integral bounds must be ordered");
  double integral = 0.0;
  TimeMs t = from;
  while (t < to) {
    // Advance to the next hour boundary (or `to`, whichever first).
    const TimeMs hour_end =
        (t / kMsPerHour + 1) * kMsPerHour;
    const TimeMs seg_end = std::min(hour_end, to);
    integral += model_.pr_active_at(t) * to_seconds(seg_end - t);
    t = seg_end;
  }
  return integral;
}

double prediction_accuracy(const SlotPredictor& predictor,
                           const UserTrace& eval) {
  if (eval.usages.empty()) return 1.0;
  std::size_t inside = 0;
  for (const AppUsage& u : eval.usages) {
    if (predictor.is_predicted_active(u.time)) ++inside;
  }
  return static_cast<double>(inside) /
         static_cast<double>(eval.usages.size());
}

}  // namespace netmaster::mining
