#include "mining/habits.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "fault/sanitize.hpp"

namespace netmaster::mining {

double slot_confidence(double k, double p) {
  const double stderr_p = std::sqrt(p * (1.0 - p) / k);
  double c = std::clamp(k / (k + 1.0) * (1.0 - stderr_p), 0.0, 1.0);
  if (k <= 1.0) c *= kSingleDayRegimePenalty;
  return c;
}

HabitModel HabitModel::mine(const UserTrace& history) {
  const fault::SanitizeResult repaired = fault::sanitize_trace(history);
  HabitModel model = mine(engine::TraceIndex(repaired.trace));
  model.data_quality_ = repaired.report.quality();
  return model;
}

HabitModel HabitModel::mine(const engine::TraceIndex& history) {
  return mine(history, 0, history.num_days());
}

HabitModel HabitModel::mine(const engine::TraceIndex& history,
                            int first_day, int last_day) {
  NM_REQUIRE(first_day >= 0 && first_day <= last_day &&
                 last_day <= history.num_days(),
             "mining window out of range");
  HabitModel model;

  // The index's per-(day, hour) buckets hold exactly the occupancy
  // flags and accumulators Eqs. 2–3 need; fold them into the two day
  // regimes. Eq. 3 counts (app, day) pairs: the bucket's distinct-app
  // count over the denominator m*k honours that.
  const std::size_t num_apps = history.num_apps();
  for (int d = first_day; d < last_day; ++d) {
    auto& s = model.stats_[static_cast<std::size_t>(day_kind(d))];
    ++s.days_observed;
    for (int h = 0; h < kHoursPerDay; ++h) {
      const engine::TraceIndex::HourBucket& bucket = history.bucket(d, h);
      if (bucket.usage_count > 0) s.pr_active[h] += 1.0;
      s.mean_intensity[h] += bucket.usage_count;
      s.mean_net_count[h] += bucket.net_count;
      s.mean_net_bytes[h] += bucket.net_bytes;
      if (num_apps > 0) {
        s.pr_net[h] += static_cast<double>(bucket.distinct_net_apps) /
                       static_cast<double>(num_apps);
      }
    }
  }

  for (auto& s : model.stats_) {
    if (s.days_observed == 0) continue;  // confidence stays all-zero
    const auto k = static_cast<double>(s.days_observed);
    for (int h = 0; h < kHoursPerDay; ++h) {
      s.pr_active[h] /= k;
      s.pr_net[h] /= k;
      s.mean_intensity[h] /= k;
      s.mean_net_count[h] /= k;
      s.mean_net_bytes[h] /= k;
      s.confidence[h] = slot_confidence(k, s.pr_active[h]);
    }
  }
  return model;
}

void HabitModel::scale_confidence(double factor) {
  NM_REQUIRE(std::isfinite(factor) && factor >= 0.0 && factor <= 1.0,
             "confidence scale must be in [0, 1]");
  data_quality_ *= factor;
}

double HabitModel::confidence(DayKind kind, int hour) const {
  NM_REQUIRE(hour >= 0 && hour < kHoursPerDay, "hour out of range");
  return stats_[static_cast<std::size_t>(kind)].confidence[hour] *
         data_quality_;
}

double HabitModel::overall_confidence() const {
  double weighted = 0.0;
  int total_days = 0;
  for (const auto& s : stats_) {
    if (s.days_observed == 0) continue;
    double sum = 0.0;
    for (int h = 0; h < kHoursPerDay; ++h) sum += s.confidence[h];
    weighted += sum / kHoursPerDay * s.days_observed;
    total_days += s.days_observed;
  }
  if (total_days == 0) return 0.0;
  return weighted / total_days * data_quality_;
}

double HabitModel::pr_active_at(TimeMs t) const {
  NM_REQUIRE(t >= 0, "time must be non-negative");
  return pr_active(day_kind(day_of(t)), hour_of(t));
}

double HabitModel::pr_active(DayKind kind, int hour) const {
  NM_REQUIRE(hour >= 0 && hour < kHoursPerDay, "hour out of range");
  return stats_[static_cast<std::size_t>(kind)].pr_active[hour];
}

SlotPredictor::SlotPredictor(HabitModel model, PredictorConfig config)
    : model_(std::move(model)), config_(config) {
  NM_REQUIRE(config.delta_weekday >= 0.0 && config.delta_weekday <= 1.0,
             "delta_weekday must be a probability");
  NM_REQUIRE(config.delta_weekend >= 0.0 && config.delta_weekend <= 1.0,
             "delta_weekend must be a probability");
}

double SlotPredictor::delta_for_day(int day) const {
  return is_weekend(day) ? config_.delta_weekend : config_.delta_weekday;
}

DayPrediction SlotPredictor::predict_day(int day) const {
  NM_REQUIRE(day >= 0, "day must be non-negative");
  DayPrediction pred;
  pred.day = day;
  const DayKind kind = day_kind(day);
  const HourStats& s = model_.stats(kind);
  const double delta = delta_for_day(day);

  for (int h = 0; h < kHoursPerDay; ++h) {
    const TimeMs begin = hour_start(day, h);
    const TimeMs end = begin + kMsPerHour;
    // Eq. 2: active when Pr[u] exceeds the threshold. The paper's
    // impact-based rule sets thr(u) so that Pr[u] in every *inactive*
    // slot stays at or below δ, i.e. thr(u) is the smallest value
    // strictly above δ — "Pr[u] > δ" implements exactly that.
    if (s.pr_active[h] > delta) {
      pred.active_slots.add(begin, end);  // adjacent hours auto-merge
    } else if (s.pr_net[h] > 0.0) {
      // Eq. 3 restricted to ti ∉ U.
      pred.net_slots.add(begin, end);
    }
  }
  return pred;
}

bool SlotPredictor::is_predicted_active(TimeMs t) const {
  const HourStats& s = model_.stats(day_kind(day_of(t)));
  return s.pr_active[static_cast<std::size_t>(hour_of(t))] >
         delta_for_day(day_of(t));
}

IntervalSet SlotPredictor::presence_windows(int day,
                                            double min_probability) const {
  NM_REQUIRE(day >= 0, "day must be non-negative");
  NM_REQUIRE(min_probability >= 0.0 && min_probability <= 1.0,
             "min_probability must be a probability");
  IntervalSet windows;
  const HourStats& s = model_.stats(day_kind(day));
  for (int h = 0; h < kHoursPerDay; ++h) {
    if (s.pr_active[h] >= min_probability) {
      const TimeMs begin = hour_start(day, h);
      windows.add(begin, begin + kMsPerHour);  // adjacent hours auto-merge
    }
  }
  return windows;
}

double SlotPredictor::active_probability_integral(TimeMs from,
                                                  TimeMs to) const {
  NM_REQUIRE(from >= 0 && to >= from, "integral bounds must be ordered");
  double integral = 0.0;
  TimeMs t = from;
  while (t < to) {
    // Advance to the next hour boundary (or `to`, whichever first).
    const TimeMs hour_end =
        (t / kMsPerHour + 1) * kMsPerHour;
    const TimeMs seg_end = std::min(hour_end, to);
    integral += model_.pr_active_at(t) * to_seconds(seg_end - t);
    t = seg_end;
  }
  return integral;
}

double prediction_accuracy(const SlotPredictor& predictor,
                           const UserTrace& eval) {
  if (eval.usages.empty()) return 1.0;
  std::size_t inside = 0;
  for (const AppUsage& u : eval.usages) {
    if (predictor.is_predicted_active(u.time)) ++inside;
  }
  return static_cast<double>(inside) /
         static_cast<double>(eval.usages.size());
}

}  // namespace netmaster::mining
