// Habit-drift detection over the incremental counters (ROADMAP item 5).
//
// Real users are non-stationary: travel, schedule changes and seasonal
// modes move the per-hour habit structure the miner recovered, and a
// stale HabitModel then schedules against slots that no longer exist.
// The detector watches the monitoring stream one day at a time through
// two IncrementalHabitMiner banks per user:
//
//   fast — high decay, tracks the last handful of days,
//   slow — low decay, tracks the long-horizon habit structure.
//
// Per regime, the daily divergence is the mean absolute gap between the
// banks' pr_active / pr_net estimates (in [0, 1] by construction). Two
// signals are derived from it:
//
//   * a normalized divergence level (divergence / full_scale, clamped),
//   * a Page–Hinkley changepoint statistic: the cumulative sum of
//     (divergence − running mean − delta) minus its running minimum.
//     The statistic stays near 0 under stationary noise and grows
//     linearly once the divergence mean shifts; it alarms above
//     `ph_lambda`, and the day of the running minimum estimates the
//     changepoint onset (the re-mine window start for adaptation).
//
// The per-regime drift score is the larger of the two signals, in
// [0, 1]. Scores feed policy::RobustnessConfig (high drift lowers
// effective model confidence toward the safe fallback schedule) and the
// online adaptation loop (service/online_sim.*), which re-mines from
// the post-changepoint window when the detector alarms.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <utility>

#include "engine/trace_index.hpp"
#include "mining/incremental.hpp"

namespace netmaster::mining {

struct DriftConfig {
  /// Decay of the recent-habit counter bank (effective window ~8
  /// days). Short windows track drift faster but also follow benign
  /// multi-day excursions (a noisy week of a stationary user), which
  /// is the dominant false-positive source.
  double fast_decay = 0.12;
  /// Decay of the reference bank. The default 0 makes it a pure
  /// running average over the epoch since the last adaptation, which
  /// keeps the *stationary* fast-vs-slow divergence flat after the
  /// first few days: any window-limited slow bank instead produces a
  /// weeks-long divergence ramp as the two windows separate, and the
  /// changepoint statistic reads that ramp as drift.
  double slow_decay = 0.0;
  /// Days a completed day is buffered before it is folded into the
  /// reference bank. With a lag of about one fast window the two banks
  /// never share recent days, so the stationary divergence floor is
  /// the same while seeding and while monitoring — without the lag the
  /// correlated seeding phase learns a floor far below the monitoring
  /// one and the changepoint statistic reads the difference as drift.
  int reference_lag_days = 8;
  /// Pseudo-weight (in days) the reference bank is re-anchored to at
  /// notify_adapted(). The adopted fast counters carry only a few
  /// effective days; without re-weighting, post-adoption days overrun
  /// the reference within a week and a sustained drift's divergence
  /// fades before the changepoint statistic can integrate it. 0
  /// disables re-anchoring.
  double anchor_days = 14.0;
  /// δ thresholds used for the slot-flip component of the divergence:
  /// an hour whose fast and slow banks disagree about slot membership
  /// (pr_active above/below δ) is a scheduling-relevant flip. Matches
  /// the predictor the policy runs with.
  PredictorConfig predictor;
  /// Excess divergence above the learned stationary floor that maps to
  /// score 1.0 (an office→night-owl flip sustains an excess near 0.15;
  /// stationary noise stays under ~0.05).
  double divergence_full_scale = 0.15;
  /// Page–Hinkley tolerance: divergence drift below `ph_delta`/day
  /// above the learned stationary mean is treated as noise. The daily
  /// increment is also *capped* at +2·ph_delta, so an alarm always
  /// stands on at least ph_lambda / (2·ph_delta) elevated regime days
  /// (minus drain): a single outlier day cannot alarm however far it
  /// diverges, while a sustained shift accumulates within a week.
  double ph_delta = 0.025;
  /// Page–Hinkley alarm threshold (weekday regime).
  double ph_lambda = 0.08;
  /// Multiplier on ph_lambda for the weekend regime. Weekends supply
  /// only 2 of 7 days, so the weekend banks' divergence estimates are
  /// far noisier than the weekday ones, and elevated weekend days
  /// cluster (two per calendar weekend) with few intervening samples
  /// to drain the statistic. Holding the same threshold for both
  /// regimes makes sparse-user weekends the dominant false-positive
  /// source; scaling the weekend threshold restores a matched false-
  /// positive rate at the cost of roughly one extra calendar week of
  /// weekend-only drift latency.
  double ph_lambda_weekend_scale = 2.0;
  /// Days of a regime to observe before its signals count (the fast
  /// bank needs a few days before fast-vs-slow gaps mean anything).
  int warmup_days = 4;
};

/// Per-user, per-regime drift detector over the monitoring day stream.
class DriftDetector {
 public:
  /// Validates the config with NM_REQUIRE: decays in [0, 1) with
  /// fast > slow, thresholds finite and positive, warmup non-negative.
  explicit DriftDetector(DriftConfig config = {});

  const DriftConfig& config() const { return config_; }

  /// Folds day `day` of the index into both banks and updates the
  /// day-regime's divergence and Page–Hinkley state.
  void observe_day(int day, const engine::TraceIndex& index);

  /// Same, from an already-summarized day (the streaming daemon builds
  /// contributions from its 2-day reconstruction window instead of a
  /// full-history index). `day` supplies the regime/changepoint day
  /// number; `summary.kind` must match day_kind(day).
  void observe_summary(int day, DayContribution summary);

  /// Seeds the detector with a whole history index (training window).
  void observe_index(const engine::TraceIndex& index);

  int days_observed() const { return fast_.days_observed(); }
  int last_observed_day() const { return last_day_; }

  /// Latest per-day divergence of the regime (0 before warmup data).
  double divergence(DayKind kind) const {
    return state(kind).last_divergence;
  }
  /// Current Page–Hinkley statistic of the regime.
  double ph_statistic(DayKind kind) const { return state(kind).ph; }
  /// Learned stationary divergence floor of the regime (running mean).
  double mean_divergence(DayKind kind) const {
    return state(kind).mean_divergence;
  }

  /// Drift score of one regime in [0, 1].
  double score(DayKind kind) const;
  /// Overall drift score: the worst regime past warmup.
  double score() const;

  /// True once any regime's Page–Hinkley statistic crossed ph_lambda
  /// (sticky until notify_adapted()).
  bool alarmed() const;
  /// Day the first still-standing alarm fired; -1 when not alarmed.
  int alarm_day() const;
  /// Estimated drift onset: the day after the alarmed regime's
  /// Page–Hinkley minimum; -1 when not alarmed.
  int changepoint_day() const;

  /// Acknowledges a model (re-)adoption and resets the changepoint
  /// statistics — but not the learned stationary noise floor. If an
  /// alarm was standing (a real drift was just handled), the reference
  /// bank additionally adopts the recent-habit bank re-anchored at
  /// `anchor_days`, so the detector watches for the *next* drift
  /// instead of re-alarming on the one just handled; without an alarm
  /// (seed-time adoption) the lagged reference is already consistent
  /// with the adopted model and is kept as is.
  void notify_adapted();

 private:
  struct RegimeState {
    double last_divergence = 0.0;
    double mean_divergence = 0.0;  ///< running mean (post-warmup days)
    int mean_days = 0;
    double ph_cum = 0.0;
    double ph_min = 0.0;
    double ph = 0.0;
    int ph_min_day = -1;
    bool alarmed = false;
    int alarm_day = -1;
  };

  const RegimeState& state(DayKind kind) const {
    return states_[static_cast<std::size_t>(kind)];
  }

  DriftConfig config_;
  IncrementalHabitMiner fast_;
  IncrementalHabitMiner slow_;
  /// Completed days waiting out the reference lag before entering the
  /// slow bank (front = oldest), stamped with the monotone observation
  /// tick. Stored as detached contributions so the source index need
  /// not outlive the call, and tick-stamped because caller day numbers
  /// restart between indexes (seed with a training index, then monitor
  /// an eval index whose days start at 0 again).
  std::deque<std::pair<int, DayContribution>> pending_;
  std::array<RegimeState, 2> states_{};
  int last_day_ = -1;
  int tick_ = 0;  ///< total observe_day calls, immune to day restarts
};

}  // namespace netmaster::mining
