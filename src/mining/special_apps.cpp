#include "mining/special_apps.hpp"

#include <algorithm>

namespace netmaster::mining {

SpecialApps SpecialApps::detect(const UserTrace& history) {
  SpecialApps result;
  const std::size_t n = history.app_names.size();
  std::vector<bool> used(n, false);
  std::vector<bool> networked(n, false);
  // Tolerate corrupt ids (negative / past the app table): such records
  // simply contribute no evidence. Callers feeding raw monitoring data
  // must not crash the miner.
  for (const AppUsage& u : history.usages) {
    if (u.app >= 0 && static_cast<std::size_t>(u.app) < n) {
      used[static_cast<std::size_t>(u.app)] = true;
    }
  }
  for (const NetworkActivity& a : history.activities) {
    if (a.app >= 0 && static_cast<std::size_t>(a.app) < n) {
      networked[static_cast<std::size_t>(a.app)] = true;
    }
  }
  result.special_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.special_[i] = used[i] && networked[i];
  }
  return result;
}

bool SpecialApps::is_special(AppId app) const {
  if (app < 0) return false;
  const auto idx = static_cast<std::size_t>(app);
  if (idx >= special_.size()) return true;  // unseen app: conservative
  return special_[idx];
}

std::size_t SpecialApps::count() const {
  return static_cast<std::size_t>(
      std::count(special_.begin(), special_.end(), true));
}

}  // namespace netmaster::mining
