// Trace data model.
//
// A `UserTrace` is the ground-truth record of one user's smartphone usage
// over a number of days: screen sessions (screen on and unlocked), app
// foreground interactions, and network activities. Traces are either
// synthesized (netmaster::synth) or loaded from CSV (trace_io), and are
// consumed by the mining layer (habit extraction), the simulator
// (workload replay), and the profiling benches (Figs. 1–5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/interval.hpp"
#include "common/time.hpp"

namespace netmaster {

using UserId = int;
using AppId = int;

/// A contiguous period with the screen on and the keyboard unlocked —
/// the paper's "user active" condition.
struct ScreenSession {
  TimeMs begin = 0;
  TimeMs end = 0;

  Interval interval() const { return {begin, end}; }
  DurationMs length() const { return end - begin; }

  friend bool operator==(const ScreenSession&, const ScreenSession&) =
      default;
};

/// One foreground interaction with an app (the unit of the paper's
/// "usage intensity": total times of usage in an hour).
struct AppUsage {
  AppId app = 0;
  TimeMs time = 0;          ///< moment the interaction starts
  DurationMs duration = 0;  ///< foreground dwell time

  friend bool operator==(const AppUsage&, const AppUsage&) = default;
};

/// One network transfer performed by an app.
struct NetworkActivity {
  AppId app = 0;
  TimeMs start = 0;
  DurationMs duration = 0;       ///< active transfer time
  std::int64_t bytes_down = 0;
  std::int64_t bytes_up = 0;
  bool user_initiated = false;   ///< triggered by a foreground interaction
  bool deferrable = false;       ///< background sync-type; a policy may
                                 ///< reschedule it without hurting the user

  TimeMs end() const { return start + duration; }
  std::int64_t total_bytes() const { return bytes_down + bytes_up; }
  /// Mean transfer rate in kB/s (0 for zero-duration records).
  double rate_kbps() const;

  friend bool operator==(const NetworkActivity&, const NetworkActivity&) =
      default;
};

/// Complete record of one user's usage over `num_days` days.
///
/// Invariants (enforced by `validate()`): all event vectors sorted by
/// time, all timestamps within [0, num_days * kMsPerDay), screen sessions
/// disjoint, app ids within [0, app_names.size()).
struct UserTrace {
  UserId user = 0;
  int num_days = 0;
  std::vector<std::string> app_names;     ///< index == AppId
  std::vector<ScreenSession> sessions;    ///< sorted by begin, disjoint
  std::vector<AppUsage> usages;           ///< sorted by time
  std::vector<NetworkActivity> activities;  ///< sorted by start

  TimeMs trace_end() const {
    return static_cast<TimeMs>(num_days) * kMsPerDay;
  }

  /// Screen-on time as a canonical interval set.
  IntervalSet screen_on_set() const;

  /// True when the screen is on at instant t.
  bool screen_on_at(TimeMs t) const;

  /// Throws netmaster::Error if any invariant is violated.
  void validate() const;

  /// Restricts the trace to days [first_day, first_day + count), shifting
  /// timestamps so the slice starts at t = 0. Activities straddling the
  /// slice edge are clipped out. Used to split traces into training and
  /// evaluation windows.
  UserTrace slice_days(int first_day, int count) const;
};

/// A population of user traces (e.g. the paper's 8 trace-study users or
/// 3 evaluation volunteers).
struct TraceSet {
  std::vector<UserTrace> users;
};

}  // namespace netmaster
