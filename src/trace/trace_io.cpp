#include "trace/trace_io.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

namespace netmaster {

namespace {

[[noreturn]] void parse_fail(int line, const std::string& msg) {
  std::ostringstream os;
  os << "trace parse error at line " << line << ": " << msg;
  throw TraceParseError(os.str());
}

/// Splits a CSV line on commas. App names contain no commas by model
/// construction (validated on write).
std::vector<std::string_view> split_csv(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = line.find(',', pos);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(pos));
      break;
    }
    fields.push_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return fields;
}

std::int64_t parse_int(std::string_view field, int line) {
  if (field.empty()) parse_fail(line, "empty integer field");
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec == std::errc::result_out_of_range) {
    parse_fail(line,
               "integer out of range: '" + std::string(field) + "'");
  }
  if (ec != std::errc{}) {
    parse_fail(line, "expected integer, got '" + std::string(field) + "'");
  }
  if (ptr != field.data() + field.size()) {
    parse_fail(line, "trailing garbage after integer: '" +
                         std::string(field) + "'");
  }
  return value;
}

bool parse_bool(std::string_view field, int line) {
  const std::int64_t v = parse_int(field, line);
  if (v != 0 && v != 1) parse_fail(line, "expected 0/1 flag");
  return v == 1;
}

void expect_fields(const std::vector<std::string_view>& f, std::size_t n,
                   int line, const char* kind) {
  if (f.size() != n) {
    std::ostringstream os;
    os << kind << " record needs " << n << " fields, got " << f.size();
    parse_fail(line, os.str());
  }
}

}  // namespace

void write_trace(std::ostream& os, const UserTrace& trace) {
  trace.validate();
  os << "# netmaster-trace v1\n";
  os << "user," << trace.user << ",days," << trace.num_days << '\n';
  for (std::size_t i = 0; i < trace.app_names.size(); ++i) {
    NM_REQUIRE(trace.app_names[i].find(',') == std::string::npos,
               "app names must not contain commas");
    os << "app," << i << ',' << trace.app_names[i] << '\n';
  }
  for (const ScreenSession& s : trace.sessions) {
    os << "screen," << s.begin << ',' << s.end << '\n';
  }
  for (const AppUsage& u : trace.usages) {
    os << "usage," << u.app << ',' << u.time << ',' << u.duration << '\n';
  }
  for (const NetworkActivity& n : trace.activities) {
    os << "net," << n.app << ',' << n.start << ',' << n.duration << ','
       << n.bytes_down << ',' << n.bytes_up << ','
       << (n.user_initiated ? 1 : 0) << ',' << (n.deferrable ? 1 : 0)
       << '\n';
  }
}

UserTrace read_trace(std::istream& is) {
  UserTrace trace;
  bool saw_header = false;
  std::string line;
  int lineno = 0;

  while (std::getline(is, line)) {
    ++lineno;
    // CRLF tolerance: traces recorded on-device are routinely shipped
    // through Windows tooling; strip the carriage return rather than
    // baking it into the last field of every record.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    const auto fields = split_csv(line);
    const std::string_view kind = fields.front();

    if (kind == "user") {
      expect_fields(fields, 4, lineno, "user");
      if (fields[2] != "days") parse_fail(lineno, "expected 'days' field");
      trace.user = static_cast<UserId>(parse_int(fields[1], lineno));
      trace.num_days = static_cast<int>(parse_int(fields[3], lineno));
      saw_header = true;
    } else if (kind == "app") {
      expect_fields(fields, 3, lineno, "app");
      const auto id = parse_int(fields[1], lineno);
      if (id != static_cast<std::int64_t>(trace.app_names.size())) {
        parse_fail(lineno, "app ids must be dense and in order");
      }
      trace.app_names.emplace_back(fields[2]);
    } else if (kind == "screen") {
      expect_fields(fields, 3, lineno, "screen");
      trace.sessions.push_back(
          {parse_int(fields[1], lineno), parse_int(fields[2], lineno)});
    } else if (kind == "usage") {
      expect_fields(fields, 4, lineno, "usage");
      trace.usages.push_back({static_cast<AppId>(parse_int(fields[1], lineno)),
                              parse_int(fields[2], lineno),
                              parse_int(fields[3], lineno)});
    } else if (kind == "net") {
      expect_fields(fields, 8, lineno, "net");
      NetworkActivity n;
      n.app = static_cast<AppId>(parse_int(fields[1], lineno));
      n.start = parse_int(fields[2], lineno);
      n.duration = parse_int(fields[3], lineno);
      n.bytes_down = parse_int(fields[4], lineno);
      n.bytes_up = parse_int(fields[5], lineno);
      n.user_initiated = parse_bool(fields[6], lineno);
      n.deferrable = parse_bool(fields[7], lineno);
      trace.activities.push_back(n);
    } else {
      parse_fail(lineno, "unknown record kind '" + std::string(kind) + "'");
    }
  }

  if (!saw_header) {
    throw TraceParseError("trace parse error: missing 'user' header record");
  }

  std::sort(trace.sessions.begin(), trace.sessions.end(),
            [](const ScreenSession& a, const ScreenSession& b) {
              return a.begin < b.begin;
            });
  std::sort(trace.usages.begin(), trace.usages.end(),
            [](const AppUsage& a, const AppUsage& b) {
              return a.time < b.time;
            });
  std::sort(trace.activities.begin(), trace.activities.end(),
            [](const NetworkActivity& a, const NetworkActivity& b) {
              return a.start < b.start;
            });
  trace.validate();
  return trace;
}

void save_trace(const std::string& path, const UserTrace& trace) {
  std::ofstream os(path);
  NM_REQUIRE(os.good(), "cannot open trace file for writing: " + path);
  write_trace(os, trace);
  NM_REQUIRE(os.good(), "write failed for trace file: " + path);
}

UserTrace load_trace(const std::string& path) {
  std::ifstream is(path);
  NM_REQUIRE(is.good(), "cannot open trace file for reading: " + path);
  return read_trace(is);
}

}  // namespace netmaster
