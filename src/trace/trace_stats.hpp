// Trace profiling statistics — the measurements behind the paper's
// motivation study (Figs. 1, 2, 5) and the inputs to the mining layer.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace netmaster {

/// Split of network traffic by screen state (Fig. 1a).
struct TrafficSplit {
  std::int64_t bytes_screen_on = 0;
  std::int64_t bytes_screen_off = 0;
  std::size_t activities_screen_on = 0;
  std::size_t activities_screen_off = 0;

  /// Fraction of activities happening with the screen off (the paper's
  /// headline 40.98%). 0 for traffic-free traces.
  double screen_off_activity_fraction() const;
  /// Fraction of bytes moved with the screen off.
  double screen_off_byte_fraction() const;
};

/// Classifies each activity by the screen state at its start.
TrafficSplit traffic_split(const UserTrace& trace);

/// Per-activity mean transfer rates (kB/s), split by screen state at the
/// activity's start. Zero-duration activities are skipped (they have no
/// defined rate). Feed into empirical_cdf for Fig. 1b.
struct RateSamples {
  std::vector<double> screen_on_kbps;
  std::vector<double> screen_off_kbps;
};

RateSamples transfer_rate_samples(const UserTrace& trace);

/// Screen-on time utilization (Fig. 2).
struct ScreenUtilization {
  double avg_session_s = 0.0;       ///< mean screen-session length
  double avg_utilized_s = 0.0;      ///< mean per-session time with traffic
  double radio_utilization = 0.0;   ///< utilized / total screen-on time
};

ScreenUtilization screen_utilization(const UserTrace& trace);

/// 24-dim usage-intensity vector: total foreground interactions per
/// hour of day, summed over all days (the paper's "intensity").
using IntensityVector = std::array<double, kHoursPerDay>;

/// Intensity over the whole trace.
IntensityVector usage_intensity(const UserTrace& trace);

/// Intensity of one day only (hour buckets of that day).
IntensityVector usage_intensity_for_day(const UserTrace& trace, int day);

/// Per-app intensity over the whole trace (Fig. 5): result[app][hour].
std::vector<IntensityVector> per_app_intensity(const UserTrace& trace);

/// Total foreground interaction count per app.
std::vector<std::size_t> per_app_usage_counts(const UserTrace& trace);

/// Number of apps with at least one usage AND at least one network
/// activity — the candidates for "Special Apps" (Fig. 5 reports 8 of 23).
std::size_t active_networked_app_count(const UserTrace& trace);

}  // namespace netmaster
