// CSV serialization for traces.
//
// The format is a single text stream per UserTrace:
//
//   # netmaster-trace v1
//   user,<id>,days,<n>
//   app,<id>,<name>            (one line per app, ids dense from 0)
//   screen,<begin_ms>,<end_ms>
//   usage,<app>,<time_ms>,<duration_ms>
//   net,<app>,<start_ms>,<duration_ms>,<down>,<up>,<user_init>,<deferrable>
//
// Record lines may appear in any order; parsing re-sorts and validates.
// Blank lines and lines starting with '#' are ignored.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace netmaster {

/// Raised on malformed trace input; carries line number context.
class TraceParseError : public Error {
 public:
  using Error::Error;
};

/// Writes a trace in the v1 text format.
void write_trace(std::ostream& os, const UserTrace& trace);

/// Parses a trace from the v1 text format. Throws TraceParseError on
/// malformed input and netmaster::Error when the parsed trace violates
/// model invariants.
UserTrace read_trace(std::istream& is);

/// Convenience file wrappers. Throw netmaster::Error on I/O failure.
void save_trace(const std::string& path, const UserTrace& trace);
UserTrace load_trace(const std::string& path);

}  // namespace netmaster
