#include "trace/trace_stats.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/interval.hpp"

namespace netmaster {

double TrafficSplit::screen_off_activity_fraction() const {
  const std::size_t total = activities_screen_on + activities_screen_off;
  if (total == 0) return 0.0;
  return static_cast<double>(activities_screen_off) /
         static_cast<double>(total);
}

double TrafficSplit::screen_off_byte_fraction() const {
  const std::int64_t total = bytes_screen_on + bytes_screen_off;
  if (total == 0) return 0.0;
  return static_cast<double>(bytes_screen_off) /
         static_cast<double>(total);
}

TrafficSplit traffic_split(const UserTrace& trace) {
  TrafficSplit split;
  for (const NetworkActivity& n : trace.activities) {
    if (trace.screen_on_at(n.start)) {
      split.bytes_screen_on += n.total_bytes();
      ++split.activities_screen_on;
    } else {
      split.bytes_screen_off += n.total_bytes();
      ++split.activities_screen_off;
    }
  }
  return split;
}

RateSamples transfer_rate_samples(const UserTrace& trace) {
  RateSamples samples;
  for (const NetworkActivity& n : trace.activities) {
    if (n.duration <= 0) continue;
    auto& bucket = trace.screen_on_at(n.start) ? samples.screen_on_kbps
                                               : samples.screen_off_kbps;
    bucket.push_back(n.rate_kbps());
  }
  return samples;
}

ScreenUtilization screen_utilization(const UserTrace& trace) {
  ScreenUtilization util;
  if (trace.sessions.empty()) return util;

  IntervalSet traffic;
  for (const NetworkActivity& n : trace.activities) {
    traffic.add(n.start, n.end());
  }

  DurationMs total_on = 0;
  DurationMs total_utilized = 0;
  for (const ScreenSession& s : trace.sessions) {
    total_on += s.length();
    total_utilized += traffic.overlap_length(s.begin, s.end);
  }

  const auto n = static_cast<double>(trace.sessions.size());
  util.avg_session_s = to_seconds(total_on) / n;
  util.avg_utilized_s = to_seconds(total_utilized) / n;
  util.radio_utilization =
      total_on > 0 ? static_cast<double>(total_utilized) /
                         static_cast<double>(total_on)
                   : 0.0;
  return util;
}

IntensityVector usage_intensity(const UserTrace& trace) {
  IntensityVector intensity{};
  for (const AppUsage& u : trace.usages) {
    intensity[static_cast<std::size_t>(hour_of(u.time))] += 1.0;
  }
  return intensity;
}

IntensityVector usage_intensity_for_day(const UserTrace& trace, int day) {
  NM_REQUIRE(day >= 0 && day < trace.num_days, "day out of trace range");
  IntensityVector intensity{};
  for (const AppUsage& u : trace.usages) {
    if (day_of(u.time) == day) {
      intensity[static_cast<std::size_t>(hour_of(u.time))] += 1.0;
    }
  }
  return intensity;
}

std::vector<IntensityVector> per_app_intensity(const UserTrace& trace) {
  std::vector<IntensityVector> result(trace.app_names.size(),
                                      IntensityVector{});
  for (const AppUsage& u : trace.usages) {
    result[static_cast<std::size_t>(u.app)]
          [static_cast<std::size_t>(hour_of(u.time))] += 1.0;
  }
  return result;
}

std::vector<std::size_t> per_app_usage_counts(const UserTrace& trace) {
  std::vector<std::size_t> counts(trace.app_names.size(), 0);
  for (const AppUsage& u : trace.usages) {
    ++counts[static_cast<std::size_t>(u.app)];
  }
  return counts;
}

std::size_t active_networked_app_count(const UserTrace& trace) {
  std::vector<bool> used(trace.app_names.size(), false);
  std::vector<bool> networked(trace.app_names.size(), false);
  for (const AppUsage& u : trace.usages) {
    used[static_cast<std::size_t>(u.app)] = true;
  }
  for (const NetworkActivity& n : trace.activities) {
    networked[static_cast<std::size_t>(n.app)] = true;
  }
  std::size_t count = 0;
  for (std::size_t i = 0; i < used.size(); ++i) {
    if (used[i] && networked[i]) ++count;
  }
  return count;
}

}  // namespace netmaster
