#include "trace/trace.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace netmaster {

double NetworkActivity::rate_kbps() const {
  if (duration <= 0) return 0.0;
  return static_cast<double>(total_bytes()) / 1000.0 / to_seconds(duration);
}

IntervalSet UserTrace::screen_on_set() const {
  IntervalSet set;
  for (const ScreenSession& s : sessions) set.add(s.begin, s.end);
  return set;
}

bool UserTrace::screen_on_at(TimeMs t) const {
  auto it = std::lower_bound(
      sessions.begin(), sessions.end(), t,
      [](const ScreenSession& s, TimeMs v) { return s.end <= v; });
  return it != sessions.end() && it->begin <= t && t < it->end;
}

void UserTrace::validate() const {
  NM_REQUIRE(num_days > 0, "trace must cover at least one day");
  const TimeMs end = trace_end();

  TimeMs prev_end = 0;
  for (const ScreenSession& s : sessions) {
    NM_REQUIRE(s.begin < s.end, "screen session must be non-empty");
    NM_REQUIRE(s.begin >= prev_end,
               "screen sessions must be sorted and disjoint");
    NM_REQUIRE(s.end <= end, "screen session beyond trace end");
    prev_end = s.end;
  }

  TimeMs prev = 0;
  for (const AppUsage& u : usages) {
    NM_REQUIRE(u.time >= prev, "app usages must be sorted by time");
    NM_REQUIRE(u.time >= 0 && u.time < end, "app usage outside trace");
    NM_REQUIRE(u.duration >= 0, "app usage duration must be non-negative");
    NM_REQUIRE(u.app >= 0 &&
                   static_cast<std::size_t>(u.app) < app_names.size(),
               "app usage references unknown app id");
    prev = u.time;
  }

  prev = 0;
  for (const NetworkActivity& n : activities) {
    NM_REQUIRE(n.start >= prev, "activities must be sorted by start");
    NM_REQUIRE(n.start >= 0 && n.start < end, "activity outside trace");
    NM_REQUIRE(n.duration >= 0, "activity duration must be non-negative");
    NM_REQUIRE(n.start + n.duration <= end,
               "activity must finish within the trace");
    NM_REQUIRE(n.bytes_down >= 0 && n.bytes_up >= 0,
               "activity byte counts must be non-negative");
    NM_REQUIRE(n.app >= 0 &&
                   static_cast<std::size_t>(n.app) < app_names.size(),
               "activity references unknown app id");
    prev = n.start;
  }
}

UserTrace UserTrace::slice_days(int first_day, int count) const {
  NM_REQUIRE(first_day >= 0 && count > 0 && first_day + count <= num_days,
             "day slice out of range");
  const TimeMs lo = day_start(first_day);
  const TimeMs hi = day_start(first_day + count);

  UserTrace out;
  out.user = user;
  out.num_days = count;
  out.app_names = app_names;

  for (const ScreenSession& s : sessions) {
    const Interval clipped = intersect(s.interval(), Interval{lo, hi});
    if (!clipped.empty()) {
      out.sessions.push_back({clipped.begin - lo, clipped.end - lo});
    }
  }
  for (const AppUsage& u : usages) {
    if (u.time >= lo && u.time < hi) {
      out.usages.push_back({u.app, u.time - lo, u.duration});
    }
  }
  for (const NetworkActivity& n : activities) {
    if (n.start >= lo && n.start < hi) {
      NetworkActivity shifted = n;
      shifted.start -= lo;
      // Clip transfers straddling the slice edge.
      shifted.duration =
          std::min<DurationMs>(shifted.duration, (hi - lo) - shifted.start);
      out.activities.push_back(shifted);
    }
  }
  return out;
}

}  // namespace netmaster
