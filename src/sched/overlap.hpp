// Multiple knapsack with overlapped itemsets — the paper's Algorithm 1.
//
// Each deferrable screen-off activity (item) sits between two adjacent
// predicted user-active slots and may be scheduled into either one
// (prefetch into the earlier slot or defer into the later slot), so the
// per-slot itemsets overlap. Algorithm 1 solves this with a
// (1−ε)/2-approximation:
//   1. Duplication — put each item into both candidate slots.
//   2. Sorting — order each slot's items by profit/weight.
//   3. Dynamic programming — run SinKnap (the (1−ε) FPTAS) per slot.
//   4. Filtering — an item chosen twice keeps the slot with smaller
//      C(ti) − V(nj) and is deleted from the other; then GreedyAdd
//      fills remaining capacity with unassigned items.
//
// `solve_overlapped_exact` is a brute-force ground truth for small
// instances, used to verify the (1−ε)/2 bound empirically.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "power/radio_model.hpp"

namespace netmaster::sched {

/// One schedulable activity. Profit is ΔE − ΔP; per the paper a
/// duplicated item has the same profit in both candidate slots.
///
/// The multi-radio extension allows a per-candidate override: when
/// `prev_profit` / `next_profit` is set (non-NaN) the duplicated copy
/// in that slot carries the override instead of `profit` — a Wi-Fi
/// window candidate values the same bytes differently than a cellular
/// slot (different isolated cost, association overhead, deferral
/// window). NaN (the default) keeps the paper's shared-profit
/// convention, and every solver then behaves exactly as before.
struct OverlapItem {
  int id = 0;
  std::int64_t weight = 0;  ///< V(n), bytes
  double profit = 0.0;      ///< ΔE − ΔP
  int prev_slot = -1;       ///< index of the preceding active slot, or -1
  int next_slot = -1;       ///< index of the following active slot, or -1
  double prev_profit = std::numeric_limits<double>::quiet_NaN();
  double next_profit = std::numeric_limits<double>::quiet_NaN();

  /// Effective profit of this item inside candidate `slot_index`.
  double profit_in(int slot_index) const {
    if (slot_index == prev_slot && !std::isnan(prev_profit)) {
      return prev_profit;
    }
    if (slot_index == next_slot && !std::isnan(next_profit)) {
      return next_profit;
    }
    return profit;
  }
};

/// One user-active slot acting as a knapsack. `radio` tags which
/// interface the slot's transfers execute on — predicted user-active
/// slots are cellular piggyback windows, predicted Wi-Fi presence
/// windows carry offloads; the solver itself never branches on it.
struct OverlapSlot {
  int id = 0;
  std::int64_t capacity = 0;  ///< C(ti) = Bandwidth · |ti|, bytes
  RadioId radio = RadioId::kCellular;
};

/// item -> slot assignment (slot_index indexes the input slot span).
struct OverlapAssignment {
  int item_id = 0;
  int slot_index = 0;

  friend bool operator==(const OverlapAssignment&,
                         const OverlapAssignment&) = default;
};

struct OverlapSolution {
  std::vector<OverlapAssignment> assignments;  ///< each item at most once
  double total_profit = 0.0;
  std::vector<std::int64_t> slot_used;  ///< bytes packed per slot index
};

/// Algorithm 1. eps in (0,1); the result is feasible (per-slot weight
/// within capacity, each item assigned at most once, only to one of its
/// two candidate slots) and totals at least (1−ε)/2 of the optimum.
/// Delegates to the backend-parameterized overload in sched/solver.hpp
/// with the FPTAS backend and the calling thread's workspace.
OverlapSolution solve_overlapped(std::span<const OverlapSlot> slots,
                                 std::span<const OverlapItem> items,
                                 double eps);

/// Exhaustive optimum (each item: prev / next / unassigned). Guarded to
/// small instances (items <= 18).
OverlapSolution solve_overlapped_exact(std::span<const OverlapSlot> slots,
                                       std::span<const OverlapItem> items);

/// Naive baseline for the ablation benches: global ratio-greedy
/// assignment (best profit/weight first, into whichever candidate slot
/// has room, preferring the tighter fit). No approximation guarantee —
/// this is what Algorithm 1's DP step buys over plain greedy.
OverlapSolution solve_overlapped_greedy(std::span<const OverlapSlot> slots,
                                        std::span<const OverlapItem> items);

/// Validates feasibility of a solution against an instance; throws
/// netmaster::Error on violation. Used by tests and by the policy layer
/// as a defensive check.
void check_feasible(std::span<const OverlapSlot> slots,
                    std::span<const OverlapItem> items,
                    const OverlapSolution& solution);

}  // namespace netmaster::sched
