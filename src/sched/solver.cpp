#include "sched/solver.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"

namespace netmaster::sched {

const char* to_string(SolverChoice choice) {
  switch (choice) {
    case SolverChoice::kFptas:
      return "fptas";
    case SolverChoice::kExact:
      return "exact";
    case SolverChoice::kGreedy:
      return "greedy";
    case SolverChoice::kAuto:
      return "auto";
  }
  return "unknown";
}

SolverChoice parse_solver_choice(std::string_view name) {
  if (name == "fptas") return SolverChoice::kFptas;
  if (name == "exact") return SolverChoice::kExact;
  if (name == "greedy") return SolverChoice::kGreedy;
  if (name == "auto") return SolverChoice::kAuto;
  NM_REQUIRE(false, "unknown solver choice: " + std::string(name));
}

void SolverOptions::validate() const {
  NM_REQUIRE(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
  NM_REQUIRE(auto_exact_cells > 0, "auto_exact_cells must be positive");
  // The auto backend trusts this ceiling to keep the exact kernel
  // within its hard limits (capacity <= 4e6, n*(cap+1) <= 4e8).
  NM_REQUIRE(auto_exact_cells <= 400'000'000,
             "auto_exact_cells exceeds the exact DP instance limit");
}

SchedWorkspace& thread_workspace() {
  thread_local SchedWorkspace workspace;
  return workspace;
}

namespace {

class FptasSolver final : public SinKnapSolver {
 public:
  SolverChoice choice() const override { return SolverChoice::kFptas; }
  KnapResult solve(std::span<const KnapItem> items, std::int64_t capacity,
                   const SolverOptions& options, SchedWorkspace& ws,
                   std::uint64_t& dp_cells) const override {
    return knapsack_fptas(items, capacity, options.eps, ws, &dp_cells);
  }
};

class ExactSolver final : public SinKnapSolver {
 public:
  SolverChoice choice() const override { return SolverChoice::kExact; }
  KnapResult solve(std::span<const KnapItem> items, std::int64_t capacity,
                   const SolverOptions& /*options*/, SchedWorkspace& ws,
                   std::uint64_t& dp_cells) const override {
    return knapsack_exact(items, capacity, ws, &dp_cells);
  }
};

class GreedySolver final : public SinKnapSolver {
 public:
  SolverChoice choice() const override { return SolverChoice::kGreedy; }
  KnapResult solve(std::span<const KnapItem> items, std::int64_t capacity,
                   const SolverOptions& /*options*/, SchedWorkspace& ws,
                   std::uint64_t& dp_cells) const override {
    return knapsack_greedy(items, capacity, ws, &dp_cells);
  }
};

class AutoSolver final : public SinKnapSolver {
 public:
  SolverChoice choice() const override { return SolverChoice::kAuto; }

  SolverChoice resolve(std::size_t n, std::int64_t capacity,
                       const SolverOptions& options) const override {
    if (n == 0 || capacity < 0) return SolverChoice::kFptas;
    // Weight-indexed exact table vs. the FPTAS worst case
    // O(n^2 * ceil(n/eps)); doubles sidestep overflow on huge
    // capacities (bytes can reach hundreds of MB per slot).
    const auto nd = static_cast<double>(n);
    const double exact_cells = nd * (static_cast<double>(capacity) + 1.0);
    const double fptas_cells = nd * nd * std::ceil(nd / options.eps);
    if (exact_cells <= static_cast<double>(options.auto_exact_cells) &&
        exact_cells <= fptas_cells) {
      return SolverChoice::kExact;
    }
    return SolverChoice::kFptas;
  }

  KnapResult solve(std::span<const KnapItem> items, std::int64_t capacity,
                   const SolverOptions& options, SchedWorkspace& ws,
                   std::uint64_t& dp_cells) const override {
    return solver_for(resolve(items.size(), capacity, options))
        .solve(items, capacity, options, ws, dp_cells);
  }
};

}  // namespace

const SinKnapSolver& solver_for(SolverChoice choice) {
  static const FptasSolver fptas;
  static const ExactSolver exact;
  static const GreedySolver greedy;
  static const AutoSolver auto_solver;
  switch (choice) {
    case SolverChoice::kFptas:
      return fptas;
    case SolverChoice::kExact:
      return exact;
    case SolverChoice::kGreedy:
      return greedy;
    case SolverChoice::kAuto:
      return auto_solver;
  }
  NM_REQUIRE(false, "unknown solver choice");
}

}  // namespace netmaster::sched
