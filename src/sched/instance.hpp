// Profit model and scheduling-instance construction (§IV-A step 3).
//
// Bridges the mined predictions and the radio power model to the
// abstract overlapped-knapsack solver:
//   - ΔE(n)  = isolated radio energy of the activity minus its marginal
//              cost when piggybacked into an already-on radio period
//              (the paper's g function over the RRC model),
//   - ΔP(n)  = Eq. 4: the et-scaled product of the deferral window
//              length and the integral of Pr[u(t)] across it,
//   - C(ti)  = Eq. 5: carrier bandwidth times the slot length.
//
// Items are built per activity with candidate slots = the adjacent
// predicted user-active slots; the paper's convention computes ΔP (and
// hence the item profit) once, for the forward deferral window, and
// reuses it for the duplicated copy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/interval.hpp"
#include "mining/habits.hpp"
#include "power/radio_model.hpp"
#include "sched/overlap.hpp"
#include "trace/trace.hpp"

namespace netmaster::sched {

/// Parameters of the profit/penalty/capacity model.
struct ProfitConfig {
  RadioPowerParams radio = RadioPowerParams::wcdma();
  /// Eq. 4 scaling factor, converting (window seconds × probability
  /// seconds) into joules. Chosen so a deferral of ~30 min across a
  /// Pr=0.5 region roughly cancels one activity's tail saving.
  double et_j_per_s2 = 2e-6;
  /// Eq. 5 average carrier bandwidth in kB/s (WCDMA-era figure).
  double bandwidth_kbps = 25.0;
};

/// Energy the policy saves by absorbing this activity into a slot where
/// the radio is on anyway: the isolated-cost/piggyback-cost difference.
double energy_saving_j(const NetworkActivity& activity,
                       const ProfitConfig& config);

/// Eq. 4 penalty for deferring an activity at `from` to slot anchor
/// `to` (from <= to or to <= from, both directions are charged by
/// window length).
double deferral_penalty_j(TimeMs from, TimeMs to,
                          const mining::SlotPredictor& predictor,
                          const ProfitConfig& config);

/// Eq. 5 slot capacity in bytes.
std::int64_t slot_capacity_bytes(const Interval& slot,
                                 const ProfitConfig& config);

/// A fully-built scheduling instance for one horizon.
struct Instance {
  std::vector<OverlapSlot> slots;
  std::vector<Interval> slot_windows;   ///< parallel to slots
  std::vector<OverlapItem> items;
  /// items[i] corresponds to pending[item_activity[i]] in the builder's
  /// input span.
  std::vector<std::size_t> item_activity;
  /// Activities that were not schedulable (no adjacent slot).
  std::vector<std::size_t> unschedulable;
};

/// Builds the overlapped-knapsack instance: one knapsack per predicted
/// user-active slot, one item per pending deferrable activity, with
/// candidate slots the nearest active slots before/after the activity.
/// Activities already inside an active slot are excluded (they run
/// for free) and reported in neither list.
Instance build_instance(std::span<const Interval> active_slots,
                        std::span<const NetworkActivity> pending,
                        const mining::SlotPredictor& predictor,
                        const ProfitConfig& config);

/// The anchor time at which an activity assigned to a slot executes:
/// the slot's end for a preceding slot (latest prefetch moment) and the
/// slot's begin for a following slot (earliest deferral moment) —
/// minimizing the deferral window either way.
TimeMs assignment_anchor(const Interval& slot, TimeMs activity_time);

}  // namespace netmaster::sched
