// Profit model and scheduling-instance construction (§IV-A step 3).
//
// Bridges the mined predictions and the radio power model to the
// abstract overlapped-knapsack solver:
//   - ΔE(n)  = isolated radio energy of the activity minus its marginal
//              cost when piggybacked into an already-on radio period
//              (the paper's g function over the RRC model),
//   - ΔP(n)  = Eq. 4: the et-scaled product of the deferral window
//              length and the integral of Pr[u(t)] across it,
//   - C(ti)  = Eq. 5: carrier bandwidth times the slot length.
//
// Items are built per activity with candidate slots = the adjacent
// predicted user-active slots; the paper's convention computes ΔP (and
// hence the item profit) once, for the forward deferral window, and
// reuses it for the duplicated copy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/interval.hpp"
#include "mining/habits.hpp"
#include "power/radio_model.hpp"
#include "sched/overlap.hpp"
#include "trace/trace.hpp"

namespace netmaster::sched {

/// Parameters of the profit/penalty/capacity model.
struct ProfitConfig {
  /// Cellular radio model (the paper's two-tail WCDMA machine by
  /// default; RadioPowerParams converts implicitly, so call sites may
  /// still assign the compact parameterisation).
  RadioModel radio = RadioModel::wcdma();
  /// Eq. 4 scaling factor, converting (window seconds × probability
  /// seconds) into joules. Chosen so a deferral of ~30 min across a
  /// Pr=0.5 region roughly cancels one activity's tail saving.
  double et_j_per_s2 = 2e-6;
  /// Eq. 5 average carrier bandwidth in kB/s (WCDMA-era figure).
  double bandwidth_kbps = 25.0;

  // Multi-radio co-scheduling (build_multiradio_instance only; the
  // single-radio builder ignores these).
  /// Wi-Fi interface model, accounted independently of the cellular
  /// data switch.
  RadioModel wifi = RadioModel::wifi();
  /// Achievable WLAN goodput in kB/s — an order of magnitude above the
  /// WCDMA-era carrier figure, which is exactly why offloading a long
  /// streaming flow is profitable despite the association cost.
  double wifi_bandwidth_kbps = 400.0;
};

/// Energy the policy saves by absorbing this activity into a slot where
/// the radio is on anyway: the isolated-cost/piggyback-cost difference.
double energy_saving_j(const NetworkActivity& activity,
                       const ProfitConfig& config);

/// Eq. 4 penalty for deferring an activity at `from` to slot anchor
/// `to` (from <= to or to <= from, both directions are charged by
/// window length).
double deferral_penalty_j(TimeMs from, TimeMs to,
                          const mining::SlotPredictor& predictor,
                          const ProfitConfig& config);

/// Eq. 5 slot capacity in bytes.
std::int64_t slot_capacity_bytes(const Interval& slot,
                                 const ProfitConfig& config);

/// A fully-built scheduling instance for one horizon.
struct Instance {
  std::vector<OverlapSlot> slots;
  std::vector<Interval> slot_windows;   ///< parallel to slots
  std::vector<OverlapItem> items;
  /// items[i] corresponds to pending[item_activity[i]] in the builder's
  /// input span.
  std::vector<std::size_t> item_activity;
  /// Activities that were not schedulable (no adjacent slot).
  std::vector<std::size_t> unschedulable;
  /// Slots [0, num_cellular_slots) are predicted user-active (cellular)
  /// slots; anything after are Wi-Fi presence windows. The single-radio
  /// builder leaves every slot cellular.
  std::size_t num_cellular_slots = 0;
};

/// Builds the overlapped-knapsack instance: one knapsack per predicted
/// user-active slot, one item per pending deferrable activity, with
/// candidate slots the nearest active slots before/after the activity.
/// Activities already inside an active slot are excluded (they run
/// for free) and reported in neither list.
Instance build_instance(std::span<const Interval> active_slots,
                        std::span<const NetworkActivity> pending,
                        const mining::SlotPredictor& predictor,
                        const ProfitConfig& config);

/// The anchor time at which an activity assigned to a slot executes:
/// the slot's end for a preceding slot (latest prefetch moment) and the
/// slot's begin for a following slot (earliest deferral moment) —
/// minimizing the deferral window either way.
TimeMs assignment_anchor(const Interval& slot, TimeMs activity_time);

/// Executed duration of an activity offloaded to Wi-Fi: the same bytes
/// at the WLAN goodput, never slower than the cellular execution and
/// never shorter than one tick.
DurationMs wifi_transfer_ms(const NetworkActivity& activity,
                            const ProfitConfig& config);

/// Radio-selection profit term: energy saved by carrying the activity
/// on Wi-Fi instead of an isolated cellular transfer — the cellular
/// isolated cost (promotion + transfer + full tail) minus the isolated
/// Wi-Fi cost of the same bytes (scan/associate + the shorter WLAN
/// transfer + PSM tail). Can be negative for tiny transfers whose
/// association burst outweighs the cellular tail.
double wifi_offload_saving_j(const NetworkActivity& activity,
                             const ProfitConfig& config);

/// Multi-radio instance: the cellular slots and candidate structure of
/// build_instance, plus one knapsack per predicted Wi-Fi presence
/// window (appended after the cellular slots, tagged RadioId::kWifi,
/// capacity from the WLAN goodput). Each pending activity gets at most
/// two candidates: its best cellular slot (the paper's forward-anchor
/// convention) and the Wi-Fi window containing or next following its
/// arrival, each carrying its own profit (per-candidate overrides on
/// the OverlapItem). Activities with no cellular candidate can still be
/// scheduled through a Wi-Fi window. With no Wi-Fi windows this reduces
/// exactly to build_instance.
Instance build_multiradio_instance(std::span<const Interval> active_slots,
                                   std::span<const Interval> wifi_windows,
                                   std::span<const NetworkActivity> pending,
                                   const mining::SlotPredictor& predictor,
                                   const ProfitConfig& config);

}  // namespace netmaster::sched
