// Pluggable scheduler-solver layer.
//
// The paper fixes one backend for SinKnap (the Ibarra–Kim FPTAS); this
// layer turns that into a choice. A `SinKnapSolver` is a single-knapsack
// backend behind Algorithm 1's per-slot DP step:
//
//   - `kFptas`  — the (1−ε) profit-scaling DP (the paper's SinKnap and
//                 the default; preserves pre-refactor schedules
//                 bit for bit),
//   - `kExact`  — weight-indexed exact DP, for capacity-bounded
//                 instances (tests, benches, small slots),
//   - `kGreedy` — ratio greedy per slot, no guarantee, the cheap end of
//                 the quality/cost tradeoff (EStreamer-style heuristic
//                 burst shaping),
//   - `kAuto`   — per-call choice: exact when the weight-indexed table
//                 n·(capacity+1) is small enough to beat the
//                 profit-scaling table, FPTAS otherwise.
//
// `SchedWorkspace` is the reusable per-thread scratch behind every
// solve: DP tables, the duplicated per-slot itemsets, and the flat
// id→item index that replaces the `std::map`s the seed-era
// `solve_overlapped` rebuilt twice per call. Fleet sweeps invoke the
// solver per slot × per user × per policy × per sweep point; with a
// reused workspace the steady state allocates nothing. Workspaces are
// single-owner and not thread-safe: use `thread_workspace()` (one per
// thread, including per `parallel_for` worker) or a locally owned
// instance, never one workspace from two threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "sched/knapsack.hpp"
#include "sched/overlap.hpp"

namespace netmaster::sched {

/// Which single-knapsack backend Algorithm 1 runs per slot.
enum class SolverChoice {
  kFptas,   ///< (1−ε) profit-scaling DP — the paper's SinKnap (default)
  kExact,   ///< exact weight-indexed DP (throws on oversized capacities)
  kGreedy,  ///< per-slot ratio greedy, no approximation guarantee
  kAuto,    ///< exact when cheap enough, FPTAS otherwise
};

/// Stable lower-case name ("fptas", "exact", "greedy", "auto").
const char* to_string(SolverChoice choice);

/// Inverse of to_string; throws netmaster::Error on an unknown name.
SolverChoice parse_solver_choice(std::string_view name);

/// Solver configuration threaded from NetMasterConfig down to the
/// per-slot kernels.
struct SolverOptions {
  SolverChoice choice = SolverChoice::kFptas;
  double eps = 0.1;  ///< FPTAS quality knob (§V-C), in (0, 1)
  /// kAuto ceiling on the exact DP table n·(capacity+1); above it the
  /// FPTAS runs regardless of the cost comparison. Kept well under the
  /// exact kernel's hard 4e8-cell limit so auto never throws on size.
  std::int64_t auto_exact_cells = 1'000'000;

  /// Throws netmaster::Error on out-of-range values.
  void validate() const;
};

/// Per-call solve report for instrumentation: what ran, how big it was,
/// and how far the result sits from the fractional upper bound.
struct SolveStats {
  SolverChoice requested = SolverChoice::kFptas;
  std::size_t items = 0;             ///< overlapped items in the instance
  std::size_t slots = 0;             ///< knapsacks in the instance
  std::size_t duplicated_items = 0;  ///< Σ per-slot itemset sizes
  std::size_t slot_solves_fptas = 0;   ///< per-slot backend actually taken
  std::size_t slot_solves_exact = 0;
  std::size_t slot_solves_greedy = 0;
  std::uint64_t dp_cells = 0;  ///< DP cells touched across all slots
  double profit = 0.0;         ///< solution profit
  /// Σ per-slot fractional bounds over the duplicated itemsets — an
  /// upper bound on the overlapped optimum (loose by up to 2×).
  double upper_bound = 0.0;
  /// (upper_bound − profit) / upper_bound, clamped to [0, 1]; 0 when
  /// the bound is non-positive.
  double gap = 0.0;
};

/// Reusable solver scratch. Buffers grow monotonically and are reused
/// across solves; contents between calls are unspecified. The members
/// are an implementation detail of the sched kernels — callers should
/// treat the type as opaque and only construct / reuse / destroy it.
class SchedWorkspace {
 public:
  SchedWorkspace() = default;
  SchedWorkspace(const SchedWorkspace&) = delete;
  SchedWorkspace& operator=(const SchedWorkspace&) = delete;
  SchedWorkspace(SchedWorkspace&&) = default;
  SchedWorkspace& operator=(SchedWorkspace&&) = default;

  /// Lifetime solve count through this workspace (reuse telemetry).
  std::uint64_t solves() const { return solves_; }

  // ---- single-knapsack scratch (kernels in knapsack.cpp) ----
  std::vector<std::size_t> order;        ///< ratio ordering
  std::vector<std::size_t> candidates;   ///< FPTAS candidate positions
  std::vector<std::int64_t> scaled;      ///< FPTAS scaled profits
  std::vector<std::int64_t> min_weight;  ///< FPTAS DP row
  std::vector<double> best;              ///< exact DP row
  std::vector<std::uint64_t> take_bits;  ///< flat DP choice bit-matrix

  // ---- Algorithm 1 scratch (overlap.cpp) ----
  std::vector<std::vector<KnapItem>> slot_items;  ///< duplicated itemsets
  std::vector<std::vector<int>> chosen_per_slot;
  /// Flat id→item index, sorted by id: replaces the per-call
  /// `std::map<int, const OverlapItem*>`s.
  std::vector<std::pair<int, const OverlapItem*>> id_index;
  std::vector<int> cand_slot[2];          ///< per item: chosen slots
  std::vector<std::uint8_t> cand_count;   ///< per item: 0, 1 or 2
  std::vector<std::uint8_t> assigned;     ///< per item: taken flag
  std::vector<std::int64_t> used;         ///< feasibility check scratch
  std::vector<std::uint8_t> times_assigned;

  std::uint64_t solves_ = 0;  ///< bumped by solve_overlapped
};

/// The calling thread's workspace (function-local thread_local): one
/// per thread, created on first use, destroyed at thread exit. Inside
/// `parallel_for` each worker thread gets its own, reused across every
/// task that worker runs within (and across) loop invocations on that
/// thread.
SchedWorkspace& thread_workspace();

/// Single-knapsack backend interface (the paper's SinKnap, pluggable).
/// Implementations are stateless; all scratch lives in the workspace.
class SinKnapSolver {
 public:
  virtual ~SinKnapSolver() = default;

  virtual SolverChoice choice() const = 0;
  const char* name() const { return to_string(choice()); }

  /// The concrete backend this solver runs for an (n, capacity)
  /// instance under `options` — the identity except for kAuto, which
  /// resolves to kExact or kFptas per call.
  virtual SolverChoice resolve(std::size_t /*n*/, std::int64_t /*capacity*/,
                               const SolverOptions& /*options*/) const {
    return choice();
  }

  /// Solves one 0/1 knapsack using `ws` scratch; adds the DP cells
  /// touched to `dp_cells`. Result contract matches knapsack.hpp.
  virtual KnapResult solve(std::span<const KnapItem> items,
                           std::int64_t capacity,
                           const SolverOptions& options, SchedWorkspace& ws,
                           std::uint64_t& dp_cells) const = 0;
};

/// The (stateless, immortal) solver for a backend choice.
const SinKnapSolver& solver_for(SolverChoice choice);

/// Backend-parameterized Algorithm 1. Same contract as the
/// overlap.hpp `solve_overlapped` (which delegates here with
/// `SolverChoice::kFptas` and the calling thread's workspace), plus:
/// the per-slot SinKnap step runs whichever backend `options` picks,
/// all scratch comes from `ws`, and per-call solve stats are written
/// to `*stats` (when non-null) and recorded through `obs::` either
/// way. With default options the returned schedule is bit-for-bit
/// identical to the pre-solver-layer implementation.
OverlapSolution solve_overlapped(std::span<const OverlapSlot> slots,
                                 std::span<const OverlapItem> items,
                                 const SolverOptions& options,
                                 SchedWorkspace& ws,
                                 SolveStats* stats = nullptr);

// ---- Workspace-parameterized kernels (implemented in knapsack.cpp).
// The knapsack.hpp free functions delegate here with the calling
// thread's workspace; hot paths pass an explicit workspace to skip even
// the thread_local lookup. `dp_cells`, when non-null, accumulates the
// DP cells touched. Results are bit-for-bit identical to the
// allocation-per-call seed kernels. ----

KnapResult knapsack_exact(std::span<const KnapItem> items,
                          std::int64_t capacity, SchedWorkspace& ws,
                          std::uint64_t* dp_cells = nullptr);
KnapResult knapsack_greedy(std::span<const KnapItem> items,
                           std::int64_t capacity, SchedWorkspace& ws,
                           std::uint64_t* dp_cells = nullptr);
KnapResult knapsack_fptas(std::span<const KnapItem> items,
                          std::int64_t capacity, double eps,
                          SchedWorkspace& ws,
                          std::uint64_t* dp_cells = nullptr);

}  // namespace netmaster::sched
