// 0/1 knapsack solvers.
//
// The paper reduces its scheduling problem to single-knapsack
// subproblems solved with the Ibarra–Kim FPTAS ("SinKnap", a (1−ε)
// approximation via profit scaling + dynamic programming). We provide:
//   - `knapsack_fptas`   — the (1−ε)-approximate profit-scaling DP,
//   - `knapsack_greedy`  — ratio greedy (used by Algorithm 1's
//                          GreedyAdd step),
//   - `knapsack_exact`   — exact weight-indexed DP for small capacities
//                          (ground truth in tests and quality benches),
//   - `fractional_upper_bound` — LP relaxation bound for instrumentation.
//
// Items carry double profits and int64 weights (bytes).
//
// Each solver also has a workspace-parameterized overload (declared in
// sched/solver.hpp) that reuses caller-owned scratch; the free
// functions below delegate to those with the calling thread's
// `SchedWorkspace`, so results are identical either way.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace netmaster::sched {

/// One knapsack item. `id` is an opaque caller tag carried through.
struct KnapItem {
  int id = 0;
  double profit = 0.0;
  std::int64_t weight = 0;
};

/// Solver output: the chosen item ids plus totals.
struct KnapResult {
  std::vector<int> chosen;  ///< ids of selected items
  double profit = 0.0;
  std::int64_t weight = 0;
};

/// Exact DP over weights, O(n * capacity). Intended for capacities up to
/// a few million (tests/benches); throws for absurd capacities.
KnapResult knapsack_exact(std::span<const KnapItem> items,
                          std::int64_t capacity);

/// Classic ratio greedy: sort by profit/weight nonincreasing, take what
/// fits. No approximation guarantee alone, but used as Algorithm 1's
/// final augmentation where any addition only helps.
KnapResult knapsack_greedy(std::span<const KnapItem> items,
                           std::int64_t capacity);

/// (1−ε)-approximate solver via profit scaling + profit-indexed DP
/// (Ibarra & Kim, JACM 1975 lineage). eps in (0, 1); smaller eps means
/// better quality and more work: O(n^2 * ceil(n/eps)) time in the worst
/// case. Items with non-positive profit or weight exceeding capacity
/// are never chosen; zero-weight positive-profit items are always
/// chosen.
KnapResult knapsack_fptas(std::span<const KnapItem> items,
                          std::int64_t capacity, double eps);

/// Upper bound from the fractional (LP) relaxation; >= OPT always.
double fractional_upper_bound(std::span<const KnapItem> items,
                              std::int64_t capacity);

}  // namespace netmaster::sched
