#include "sched/overlap.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "sched/knapsack.hpp"
#include "sched/solver.hpp"

namespace netmaster::sched {

namespace {

/// Per-item checks shared by every overlap solver. Id uniqueness is
/// checked separately (by `build_id_index` on the hot path, or a local
/// sort for the baseline solvers) so the hot path never builds a map.
void validate_instance_common(std::span<const OverlapSlot> slots,
                              std::span<const OverlapItem> items) {
  for (const OverlapSlot& slot : slots) {
    NM_REQUIRE(slot.capacity >= 0, "slot capacity must be non-negative");
  }
  const int n = static_cast<int>(slots.size());
  for (const OverlapItem& item : items) {
    NM_REQUIRE(item.weight >= 0, "item weight must be non-negative");
    NM_REQUIRE(std::isfinite(item.profit), "item profits must be finite");
    // Per-candidate overrides: NaN is the "use the shared profit"
    // sentinel; anything else must be finite like the base profit.
    NM_REQUIRE(std::isnan(item.prev_profit) ||
                   std::isfinite(item.prev_profit),
               "per-candidate profits must be finite");
    NM_REQUIRE(std::isnan(item.next_profit) ||
                   std::isfinite(item.next_profit),
               "per-candidate profits must be finite");
    NM_REQUIRE(item.prev_slot >= -1 && item.prev_slot < n,
               "prev_slot out of range");
    NM_REQUIRE(item.next_slot >= -1 && item.next_slot < n,
               "next_slot out of range");
    NM_REQUIRE(item.prev_slot != item.next_slot || item.prev_slot == -1,
               "candidate slots must differ");
  }
}

void validate_instance(std::span<const OverlapSlot> slots,
                       std::span<const OverlapItem> items) {
  validate_instance_common(slots, items);
  std::vector<int> ids;
  ids.reserve(items.size());
  for (const OverlapItem& item : items) ids.push_back(item.id);
  std::sort(ids.begin(), ids.end());
  NM_REQUIRE(std::adjacent_find(ids.begin(), ids.end()) == ids.end(),
             "item ids must be unique");
}

/// Rebuilds the workspace's flat id→item index (sorted by id). This is
/// the replacement for the seed-era `std::map<int, const OverlapItem*>`
/// that was built twice per solve: one reused vector, one sort, binary
/// search lookups, and iterating positions 0..n−1 walks items in
/// ascending-id order exactly like map iteration did.
void build_id_index(std::span<const OverlapItem> items, SchedWorkspace& ws) {
  auto& index = ws.id_index;
  index.clear();
  index.reserve(items.size());
  for (const OverlapItem& item : items) index.emplace_back(item.id, &item);
  std::sort(index.begin(), index.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < index.size(); ++i) {
    NM_REQUIRE(index[i - 1].first != index[i].first,
               "item ids must be unique");
  }
}

/// Position of `id` in the sorted index, or npos when absent.
std::size_t index_position(const SchedWorkspace& ws, int id) {
  const auto& index = ws.id_index;
  const auto it = std::lower_bound(
      index.begin(), index.end(), id,
      [](const auto& entry, int value) { return entry.first < value; });
  if (it == index.end() || it->first != id) {
    return static_cast<std::size_t>(-1);
  }
  return static_cast<std::size_t>(it - index.begin());
}

/// check_feasible body against an already-built ws.id_index.
void check_feasible_indexed(std::span<const OverlapSlot> slots,
                            std::span<const OverlapItem> items,
                            const OverlapSolution& solution,
                            SchedWorkspace& ws) {
  ws.used.assign(slots.size(), 0);
  ws.times_assigned.assign(items.size(), 0);
  double profit = 0.0;
  for (const OverlapAssignment& a : solution.assignments) {
    const std::size_t pos = index_position(ws, a.item_id);
    NM_REQUIRE(pos != static_cast<std::size_t>(-1),
               "assignment references unknown item");
    const OverlapItem& item = *ws.id_index[pos].second;
    NM_REQUIRE(a.slot_index == item.prev_slot ||
                   a.slot_index == item.next_slot,
               "item assigned to a non-candidate slot");
    NM_REQUIRE(++ws.times_assigned[pos] == 1,
               "item assigned more than once");
    ws.used[static_cast<std::size_t>(a.slot_index)] += item.weight;
    profit += item.profit_in(a.slot_index);
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    NM_REQUIRE(ws.used[i] <= slots[i].capacity, "slot capacity exceeded");
  }
  NM_REQUIRE(std::abs(profit - solution.total_profit) <=
                 1e-6 * std::max(1.0, std::abs(profit)),
             "reported profit does not match assignments");
}

/// Fractional (LP) bound over an already ratio-sorted per-slot itemset —
/// same result as `fractional_upper_bound`, without re-sorting.
double sorted_fractional_bound(const std::vector<KnapItem>& sorted,
                               std::int64_t capacity) {
  double bound = 0.0;
  std::int64_t remaining = capacity;
  for (const KnapItem& item : sorted) {
    if (item.profit <= 0.0) continue;
    if (item.weight <= remaining) {
      bound += item.profit;
      remaining -= item.weight;
    } else {
      if (item.weight > 0 && remaining > 0) {
        bound += item.profit * static_cast<double>(remaining) /
                 static_cast<double>(item.weight);
      }
      break;
    }
  }
  return bound;
}

}  // namespace

void check_feasible(std::span<const OverlapSlot> slots,
                    std::span<const OverlapItem> items,
                    const OverlapSolution& solution) {
  SchedWorkspace& ws = thread_workspace();
  build_id_index(items, ws);
  check_feasible_indexed(slots, items, solution, ws);
}

OverlapSolution solve_overlapped(std::span<const OverlapSlot> slots,
                                 std::span<const OverlapItem> items,
                                 const SolverOptions& options,
                                 SchedWorkspace& ws, SolveStats* stats_out) {
  options.validate();
  validate_instance_common(slots, items);
  build_id_index(items, ws);  // also enforces id uniqueness
  ++ws.solves_;

  const SinKnapSolver& solver = solver_for(options.choice);
  SolveStats stats;
  stats.requested = options.choice;
  stats.items = items.size();
  stats.slots = slots.size();

  // Step 1 (duplication): per-slot itemsets, each item in both
  // candidate slots. The outer vector only grows; per-slot vectors keep
  // their capacity across solves.
  auto& slot_items = ws.slot_items;
  if (slot_items.size() < slots.size()) slot_items.resize(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) slot_items[s].clear();
  for (const OverlapItem& item : items) {
    for (int s : {item.prev_slot, item.next_slot}) {
      if (s >= 0) {
        // The duplicated copy carries the candidate's effective profit
        // (the shared profit unless the item overrides this slot).
        slot_items[static_cast<std::size_t>(s)].push_back(
            {item.id, item.profit_in(s), item.weight});
      }
    }
  }

  // Step 2 (sorting) + step 3 (SinKnap per slot). The FPTAS does not
  // require sorted input, but we keep the paper's ordering so the
  // per-slot itemsets match Algorithm 1 line by line (and ties in the
  // later greedy step resolve in ratio order). The backend choice is
  // resolved per slot: identity for the concrete solvers, per-instance
  // cost comparison for kAuto.
  auto& chosen_per_slot = ws.chosen_per_slot;
  if (chosen_per_slot.size() < slots.size()) {
    chosen_per_slot.resize(slots.size());
  }
  for (std::size_t s = 0; s < slots.size(); ++s) {
    auto& list = slot_items[s];
    std::sort(list.begin(), list.end(),
              [](const KnapItem& a, const KnapItem& b) {
                if (a.weight == 0 || b.weight == 0) {
                  if (a.weight == 0 && b.weight == 0)
                    return a.profit > b.profit;
                  return a.weight == 0;
                }
                return a.profit * static_cast<double>(b.weight) >
                       b.profit * static_cast<double>(a.weight);
              });
    stats.duplicated_items += list.size();
    stats.upper_bound += sorted_fractional_bound(list, slots[s].capacity);

    const SolverChoice resolved =
        solver.resolve(list.size(), slots[s].capacity, options);
    switch (resolved) {
      case SolverChoice::kFptas:
        ++stats.slot_solves_fptas;
        break;
      case SolverChoice::kExact:
        ++stats.slot_solves_exact;
        break;
      case SolverChoice::kGreedy:
        ++stats.slot_solves_greedy;
        break;
      case SolverChoice::kAuto:
        NM_ASSERT(false, "auto must resolve to a concrete backend");
        break;
    }
    chosen_per_slot[s] = solver_for(resolved)
                             .solve(list, slots[s].capacity, options, ws,
                                    stats.dp_cells)
                             .chosen;
  }

  // Step 4a (filtering): an item selected in both slots keeps the slot
  // with the smaller C(ti) − V(nj) — the tighter fit — leaving the
  // roomier slot free for GreedyAdd. Candidate slots are gathered into
  // flat per-position scratch (position in the sorted id index), and
  // the position walk below visits items in ascending-id order, exactly
  // like the seed-era `std::map<int, std::vector<int>>` iteration.
  const std::size_t n = items.size();
  ws.cand_slot[0].resize(n);
  ws.cand_slot[1].resize(n);
  ws.cand_count.assign(n, 0);
  ws.assigned.assign(n, 0);
  for (std::size_t s = 0; s < slots.size(); ++s) {
    for (int id : chosen_per_slot[s]) {
      const std::size_t pos = index_position(ws, id);
      NM_ASSERT(pos != static_cast<std::size_t>(-1),
                "SinKnap chose an unknown item");
      NM_ASSERT(ws.cand_count[pos] < 2, "item chosen in more than 2 slots");
      ws.cand_slot[ws.cand_count[pos]][pos] = static_cast<int>(s);
      ++ws.cand_count[pos];
    }
  }

  OverlapSolution solution;
  solution.slot_used.assign(slots.size(), 0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    if (ws.cand_count[pos] == 0) continue;
    const OverlapItem& item = *ws.id_index[pos].second;
    int slot = ws.cand_slot[0][pos];
    if (ws.cand_count[pos] == 2) {
      const int c0 = ws.cand_slot[0][pos];
      const int c1 = ws.cand_slot[1][pos];
      // With per-candidate profits the two copies are no longer worth
      // the same: keep the more profitable slot. Equal profits (the
      // paper's shared-profit convention) fall back to Algorithm 1's
      // rule: keep the slot with the smaller C(ti) − V(nj).
      const double p0 = item.profit_in(c0);
      const double p1 = item.profit_in(c1);
      if (p0 != p1) {
        slot = p0 > p1 ? c0 : c1;
      } else {
        const std::int64_t r0 =
            slots[static_cast<std::size_t>(c0)].capacity - item.weight;
        const std::int64_t r1 =
            slots[static_cast<std::size_t>(c1)].capacity - item.weight;
        slot = r0 <= r1 ? c0 : c1;
      }
    }
    solution.assignments.push_back({item.id, slot});
    solution.slot_used[static_cast<std::size_t>(slot)] += item.weight;
    solution.total_profit += item.profit_in(slot);
    ws.assigned[pos] = 1;
  }

  // Capacity cannot overflow after filtering: each slot only lost items
  // relative to its feasible SinKnap packing.
  // Step 4b (GreedyAdd): fill residual capacity with still-unassigned
  // items, best ratio first.
  for (std::size_t s = 0; s < slots.size(); ++s) {
    std::int64_t residual = slots[s].capacity - solution.slot_used[s];
    for (const KnapItem& ki : slot_items[s]) {  // already ratio-sorted
      const std::size_t pos = index_position(ws, ki.id);
      if (ws.assigned[pos] != 0 || ki.profit <= 0.0) continue;
      if (ki.weight <= residual) {
        solution.assignments.push_back({ki.id, static_cast<int>(s)});
        solution.slot_used[s] += ki.weight;
        solution.total_profit += ki.profit;
        residual -= ki.weight;
        ws.assigned[pos] = 1;
      }
    }
  }

  check_feasible_indexed(slots, items, solution, ws);

  stats.profit = solution.total_profit;
  if (stats.upper_bound > 0.0) {
    stats.gap = std::clamp(
        (stats.upper_bound - stats.profit) / stats.upper_bound, 0.0, 1.0);
  }

  struct SolverMetrics {
    obs::Counter& solves;
    obs::Counter& items;
    obs::Counter& slots;
    obs::Counter& dp_cells;
    obs::Counter& backend_fptas;
    obs::Counter& backend_exact;
    obs::Counter& backend_greedy;
    obs::Histogram& gap;
  };
  static SolverMetrics metrics{
      obs::Registry::global().counter("sched.solver.solves"),
      obs::Registry::global().counter("sched.solver.items"),
      obs::Registry::global().counter("sched.solver.slots"),
      obs::Registry::global().counter("sched.solver.dp_cells"),
      obs::Registry::global().counter("sched.solver.slot_solves.fptas"),
      obs::Registry::global().counter("sched.solver.slot_solves.exact"),
      obs::Registry::global().counter("sched.solver.slot_solves.greedy"),
      obs::Registry::global().histogram("sched.solver.gap",
                                        obs::fraction_bounds()),
  };
  metrics.solves.add(1);
  metrics.items.add(stats.items);
  metrics.slots.add(stats.slots);
  metrics.dp_cells.add(stats.dp_cells);
  metrics.backend_fptas.add(stats.slot_solves_fptas);
  metrics.backend_exact.add(stats.slot_solves_exact);
  metrics.backend_greedy.add(stats.slot_solves_greedy);
  metrics.gap.add(stats.gap);

  if (stats_out != nullptr) *stats_out = stats;
  return solution;
}

OverlapSolution solve_overlapped(std::span<const OverlapSlot> slots,
                                 std::span<const OverlapItem> items,
                                 double eps) {
  SolverOptions options;
  options.eps = eps;
  return solve_overlapped(slots, items, options, thread_workspace());
}

OverlapSolution solve_overlapped_greedy(std::span<const OverlapSlot> slots,
                                        std::span<const OverlapItem> items) {
  validate_instance(slots, items);

  // Order by the best candidate's profit/weight ratio (identical to the
  // plain item ratio under the shared-profit convention).
  const auto best_profit = [](const OverlapItem& item) {
    double best = std::numeric_limits<double>::lowest();
    for (int s : {item.prev_slot, item.next_slot}) {
      if (s >= 0) best = std::max(best, item.profit_in(s));
    }
    return best;
  };
  std::vector<std::size_t> order(items.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const OverlapItem& x = items[a];
    const OverlapItem& y = items[b];
    const double px = best_profit(x);
    const double py = best_profit(y);
    if (x.weight == 0 || y.weight == 0) {
      if (x.weight == 0 && y.weight == 0) return px > py;
      return x.weight == 0;
    }
    return px * static_cast<double>(y.weight) >
           py * static_cast<double>(x.weight);
  });

  OverlapSolution solution;
  solution.slot_used.assign(slots.size(), 0);
  for (std::size_t idx : order) {
    const OverlapItem& item = items[idx];
    int best = -1;
    std::int64_t best_residual = 0;
    double best_p = 0.0;
    for (int s : {item.prev_slot, item.next_slot}) {
      if (s < 0) continue;
      const double p = item.profit_in(s);
      if (p <= 0.0) continue;  // never pack an unprofitable candidate
      const std::int64_t residual =
          slots[static_cast<std::size_t>(s)].capacity -
          solution.slot_used[static_cast<std::size_t>(s)];
      if (residual < item.weight) continue;
      // Prefer the higher-profit candidate; ties (the shared-profit
      // convention) keep the tighter fit.
      if (best < 0 || p > best_p || (p == best_p && residual < best_residual)) {
        best = s;
        best_residual = residual;
        best_p = p;
      }
    }
    if (best < 0) continue;
    solution.assignments.push_back({item.id, best});
    solution.slot_used[static_cast<std::size_t>(best)] += item.weight;
    solution.total_profit += best_p;
  }

  check_feasible(slots, items, solution);
  return solution;
}

OverlapSolution solve_overlapped_exact(std::span<const OverlapSlot> slots,
                                       std::span<const OverlapItem> items) {
  validate_instance(slots, items);
  NM_REQUIRE(items.size() <= 18, "exact solver limited to 18 items");

  std::vector<std::int64_t> used(slots.size(), 0);
  std::vector<int> choice(items.size(), -1);  // -1 none, else slot index

  OverlapSolution best;
  best.slot_used.assign(slots.size(), 0);
  double best_profit = -1.0;

  // Depth-first enumeration with capacity pruning.
  auto recurse = [&](auto&& self, std::size_t i, double profit) -> void {
    if (i == items.size()) {
      if (profit > best_profit) {
        best_profit = profit;
        best.assignments.clear();
        for (std::size_t j = 0; j < items.size(); ++j) {
          if (choice[j] >= 0) {
            best.assignments.push_back({items[j].id, choice[j]});
          }
        }
        best.total_profit = profit;
        best.slot_used = used;
      }
      return;
    }
    const OverlapItem& item = items[i];
    // Skip.
    choice[i] = -1;
    self(self, i + 1, profit);
    // Assign to each feasible candidate (only if profitable — dropping
    // non-positive candidates never hurts the optimum). The profit is
    // per candidate: a Wi-Fi copy may be worth more than the cellular
    // one.
    for (int s : {item.prev_slot, item.next_slot}) {
      if (s < 0) continue;
      const double p = item.profit_in(s);
      if (p <= 0.0) continue;
      auto& u = used[static_cast<std::size_t>(s)];
      if (u + item.weight <=
          slots[static_cast<std::size_t>(s)].capacity) {
        u += item.weight;
        choice[i] = s;
        self(self, i + 1, profit + p);
        choice[i] = -1;
        u -= item.weight;
      }
    }
  };
  recurse(recurse, 0, 0.0);

  check_feasible(slots, items, best);
  return best;
}

}  // namespace netmaster::sched
