#include "sched/overlap.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"
#include "sched/knapsack.hpp"

namespace netmaster::sched {

namespace {

void validate_instance(std::span<const OverlapSlot> slots,
                       std::span<const OverlapItem> items) {
  for (const OverlapSlot& slot : slots) {
    NM_REQUIRE(slot.capacity >= 0, "slot capacity must be non-negative");
  }
  const int n = static_cast<int>(slots.size());
  std::map<int, int> seen_ids;
  for (const OverlapItem& item : items) {
    NM_REQUIRE(item.weight >= 0, "item weight must be non-negative");
    NM_REQUIRE(item.prev_slot >= -1 && item.prev_slot < n,
               "prev_slot out of range");
    NM_REQUIRE(item.next_slot >= -1 && item.next_slot < n,
               "next_slot out of range");
    NM_REQUIRE(item.prev_slot != item.next_slot || item.prev_slot == -1,
               "candidate slots must differ");
    NM_REQUIRE(++seen_ids[item.id] == 1, "item ids must be unique");
  }
}

}  // namespace

void check_feasible(std::span<const OverlapSlot> slots,
                    std::span<const OverlapItem> items,
                    const OverlapSolution& solution) {
  std::map<int, const OverlapItem*> by_id;
  for (const OverlapItem& item : items) by_id[item.id] = &item;

  std::vector<std::int64_t> used(slots.size(), 0);
  std::map<int, int> times_assigned;
  double profit = 0.0;
  for (const OverlapAssignment& a : solution.assignments) {
    const auto it = by_id.find(a.item_id);
    NM_REQUIRE(it != by_id.end(), "assignment references unknown item");
    const OverlapItem& item = *it->second;
    NM_REQUIRE(a.slot_index == item.prev_slot ||
                   a.slot_index == item.next_slot,
               "item assigned to a non-candidate slot");
    NM_REQUIRE(++times_assigned[a.item_id] == 1,
               "item assigned more than once");
    used[static_cast<std::size_t>(a.slot_index)] += item.weight;
    profit += item.profit;
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    NM_REQUIRE(used[i] <= slots[i].capacity, "slot capacity exceeded");
  }
  NM_REQUIRE(std::abs(profit - solution.total_profit) <=
                 1e-6 * std::max(1.0, std::abs(profit)),
             "reported profit does not match assignments");
}

OverlapSolution solve_overlapped(std::span<const OverlapSlot> slots,
                                 std::span<const OverlapItem> items,
                                 double eps) {
  NM_REQUIRE(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
  validate_instance(slots, items);

  std::map<int, const OverlapItem*> by_id;
  for (const OverlapItem& item : items) by_id[item.id] = &item;

  // Step 1 (duplication): per-slot itemsets, each item in both
  // candidate slots.
  std::vector<std::vector<KnapItem>> slot_items(slots.size());
  for (const OverlapItem& item : items) {
    for (int s : {item.prev_slot, item.next_slot}) {
      if (s >= 0) {
        slot_items[static_cast<std::size_t>(s)].push_back(
            {item.id, item.profit, item.weight});
      }
    }
  }

  // Step 2 (sorting) + step 3 (SinKnap per slot). The FPTAS does not
  // require sorted input, but we keep the paper's ordering so the
  // per-slot itemsets match Algorithm 1 line by line (and ties in the
  // later greedy step resolve in ratio order).
  std::vector<std::vector<int>> chosen_per_slot(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    auto& list = slot_items[s];
    std::sort(list.begin(), list.end(),
              [](const KnapItem& a, const KnapItem& b) {
                if (a.weight == 0 || b.weight == 0) {
                  if (a.weight == 0 && b.weight == 0)
                    return a.profit > b.profit;
                  return a.weight == 0;
                }
                return a.profit * static_cast<double>(b.weight) >
                       b.profit * static_cast<double>(a.weight);
              });
    chosen_per_slot[s] =
        knapsack_fptas(list, slots[s].capacity, eps).chosen;
  }

  // Step 4a (filtering): an item selected in both slots keeps the slot
  // with the smaller C(ti) − V(nj) — the tighter fit — leaving the
  // roomier slot free for GreedyAdd.
  std::map<int, std::vector<int>> slots_of_item;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    for (int id : chosen_per_slot[s]) {
      slots_of_item[id].push_back(static_cast<int>(s));
    }
  }

  OverlapSolution solution;
  solution.slot_used.assign(slots.size(), 0);
  std::map<int, bool> assigned;
  for (const auto& [id, cand] : slots_of_item) {
    const OverlapItem& item = *by_id.at(id);
    int slot = cand.front();
    if (cand.size() == 2) {
      const std::int64_t r0 =
          slots[static_cast<std::size_t>(cand[0])].capacity - item.weight;
      const std::int64_t r1 =
          slots[static_cast<std::size_t>(cand[1])].capacity - item.weight;
      slot = r0 <= r1 ? cand[0] : cand[1];
    }
    solution.assignments.push_back({id, slot});
    solution.slot_used[static_cast<std::size_t>(slot)] += item.weight;
    solution.total_profit += item.profit;
    assigned[id] = true;
  }

  // Capacity cannot overflow after filtering: each slot only lost items
  // relative to its feasible SinKnap packing.
  // Step 4b (GreedyAdd): fill residual capacity with still-unassigned
  // items, best ratio first.
  for (std::size_t s = 0; s < slots.size(); ++s) {
    std::int64_t residual =
        slots[s].capacity - solution.slot_used[s];
    for (const KnapItem& ki : slot_items[s]) {  // already ratio-sorted
      if (assigned.count(ki.id) || ki.profit <= 0.0) continue;
      if (ki.weight <= residual) {
        solution.assignments.push_back({ki.id, static_cast<int>(s)});
        solution.slot_used[s] += ki.weight;
        solution.total_profit += ki.profit;
        residual -= ki.weight;
        assigned[ki.id] = true;
      }
    }
  }

  check_feasible(slots, items, solution);
  return solution;
}

OverlapSolution solve_overlapped_greedy(std::span<const OverlapSlot> slots,
                                        std::span<const OverlapItem> items) {
  validate_instance(slots, items);

  std::vector<std::size_t> order(items.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const OverlapItem& x = items[a];
    const OverlapItem& y = items[b];
    if (x.weight == 0 || y.weight == 0) {
      if (x.weight == 0 && y.weight == 0) return x.profit > y.profit;
      return x.weight == 0;
    }
    return x.profit * static_cast<double>(y.weight) >
           y.profit * static_cast<double>(x.weight);
  });

  OverlapSolution solution;
  solution.slot_used.assign(slots.size(), 0);
  for (std::size_t idx : order) {
    const OverlapItem& item = items[idx];
    if (item.profit <= 0.0) continue;
    int best = -1;
    std::int64_t best_residual = 0;
    for (int s : {item.prev_slot, item.next_slot}) {
      if (s < 0) continue;
      const std::int64_t residual =
          slots[static_cast<std::size_t>(s)].capacity -
          solution.slot_used[static_cast<std::size_t>(s)];
      if (residual < item.weight) continue;
      if (best < 0 || residual < best_residual) {
        best = s;
        best_residual = residual;
      }
    }
    if (best < 0) continue;
    solution.assignments.push_back({item.id, best});
    solution.slot_used[static_cast<std::size_t>(best)] += item.weight;
    solution.total_profit += item.profit;
  }

  check_feasible(slots, items, solution);
  return solution;
}

OverlapSolution solve_overlapped_exact(std::span<const OverlapSlot> slots,
                                       std::span<const OverlapItem> items) {
  validate_instance(slots, items);
  NM_REQUIRE(items.size() <= 18, "exact solver limited to 18 items");

  std::vector<std::int64_t> used(slots.size(), 0);
  std::vector<int> choice(items.size(), -1);  // -1 none, else slot index

  OverlapSolution best;
  best.slot_used.assign(slots.size(), 0);
  double best_profit = -1.0;

  // Depth-first enumeration with capacity pruning.
  auto recurse = [&](auto&& self, std::size_t i, double profit) -> void {
    if (i == items.size()) {
      if (profit > best_profit) {
        best_profit = profit;
        best.assignments.clear();
        for (std::size_t j = 0; j < items.size(); ++j) {
          if (choice[j] >= 0) {
            best.assignments.push_back({items[j].id, choice[j]});
          }
        }
        best.total_profit = profit;
        best.slot_used = used;
      }
      return;
    }
    const OverlapItem& item = items[i];
    // Skip.
    choice[i] = -1;
    self(self, i + 1, profit);
    // Assign to each feasible candidate (only if profitable — dropping
    // non-positive items never hurts the optimum).
    if (item.profit > 0.0) {
      for (int s : {item.prev_slot, item.next_slot}) {
        if (s < 0) continue;
        auto& u = used[static_cast<std::size_t>(s)];
        if (u + item.weight <=
            slots[static_cast<std::size_t>(s)].capacity) {
          u += item.weight;
          choice[i] = s;
          self(self, i + 1, profit + item.profit);
          choice[i] = -1;
          u -= item.weight;
        }
      }
    }
  };
  recurse(recurse, 0, 0.0);

  check_feasible(slots, items, best);
  return best;
}

}  // namespace netmaster::sched
