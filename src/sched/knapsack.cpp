#include "sched/knapsack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "sched/solver.hpp"

namespace netmaster::sched {

namespace {

/// Fills `order` with item indices sorted by profit/weight nonincreasing
/// (zero-weight first). Reuses the caller's buffer.
void ratio_order(std::span<const KnapItem> items,
                 std::vector<std::size_t>& order) {
  order.resize(items.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const KnapItem& x = items[a];
    const KnapItem& y = items[b];
    // Compare x.profit/x.weight vs y.profit/y.weight without division;
    // zero-weight items sort first (infinite ratio).
    if (x.weight == 0 || y.weight == 0) {
      if (x.weight == 0 && y.weight == 0) return x.profit > y.profit;
      return x.weight == 0;
    }
    return x.profit * static_cast<double>(y.weight) >
           y.profit * static_cast<double>(x.weight);
  });
}

void validate_items(std::span<const KnapItem> items) {
  for (const KnapItem& item : items) {
    NM_REQUIRE(item.weight >= 0, "item weights must be non-negative");
    NM_REQUIRE(std::isfinite(item.profit), "item profits must be finite");
  }
}

// ---- Flat bit-matrix helpers for the DP "take" tables. The seed
// kernels used vector<vector<bool>>; a single reused uint64 buffer
// keeps the same 1-bit-per-cell footprint without per-row allocation.
// Row width is in words; cell (row, col) lives at
// bits[row * row_words + col / 64]. ----

inline std::size_t bit_row_words(std::size_t cols) { return (cols + 63) / 64; }

inline void bit_set(std::vector<std::uint64_t>& bits, std::size_t row_words,
                    std::size_t row, std::size_t col) {
  bits[row * row_words + col / 64] |= std::uint64_t{1} << (col % 64);
}

inline bool bit_get(const std::vector<std::uint64_t>& bits,
                    std::size_t row_words, std::size_t row, std::size_t col) {
  return (bits[row * row_words + col / 64] >> (col % 64)) & 1;
}

}  // namespace

KnapResult knapsack_exact(std::span<const KnapItem> items,
                          std::int64_t capacity, SchedWorkspace& ws,
                          std::uint64_t* dp_cells) {
  NM_REQUIRE(capacity >= 0, "capacity must be non-negative");
  validate_items(items);
  const std::size_t n = items.size();
  const auto cap = static_cast<std::size_t>(capacity);
  NM_REQUIRE(cap <= 4'000'000, "exact DP capacity too large");
  NM_REQUIRE(n * (cap + 1) <= 400'000'000,
             "exact DP instance too large");

  // best[w] = max profit using a prefix of items within weight w;
  // take bit (i, c) records whether item i was taken at that cell.
  std::vector<double>& best = ws.best;
  best.assign(cap + 1, 0.0);
  const std::size_t row_words = bit_row_words(cap + 1);
  std::vector<std::uint64_t>& take = ws.take_bits;
  take.assign(n * row_words, 0);

  std::uint64_t cells = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = static_cast<std::size_t>(items[i].weight);
    const double p = items[i].profit;
    if (p <= 0.0 || w > cap) continue;  // never beneficial
    cells += static_cast<std::uint64_t>(cap + 1 - w);
    for (std::size_t c = cap + 1; c-- > w;) {
      const double candidate = best[c - w] + p;
      if (candidate > best[c]) {
        best[c] = candidate;
        bit_set(take, row_words, i, c);
      }
    }
  }

  KnapResult result;
  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (bit_get(take, row_words, i, c)) {
      result.chosen.push_back(items[i].id);
      result.profit += items[i].profit;
      result.weight += items[i].weight;
      c -= static_cast<std::size_t>(items[i].weight);
    }
  }
  std::reverse(result.chosen.begin(), result.chosen.end());
  if (dp_cells != nullptr) *dp_cells += cells;
  return result;
}

KnapResult knapsack_greedy(std::span<const KnapItem> items,
                           std::int64_t capacity, SchedWorkspace& ws,
                           std::uint64_t* dp_cells) {
  NM_REQUIRE(capacity >= 0, "capacity must be non-negative");
  validate_items(items);
  ratio_order(items, ws.order);
  KnapResult result;
  std::int64_t remaining = capacity;
  for (std::size_t idx : ws.order) {
    const KnapItem& item = items[idx];
    if (item.profit <= 0.0) continue;
    if (item.weight <= remaining) {
      result.chosen.push_back(item.id);
      result.profit += item.profit;
      result.weight += item.weight;
      remaining -= item.weight;
    }
  }
  (void)dp_cells;  // no DP table; the greedy touches no cells
  return result;
}

KnapResult knapsack_fptas(std::span<const KnapItem> items,
                          std::int64_t capacity, double eps,
                          SchedWorkspace& ws, std::uint64_t* dp_cells) {
  NM_REQUIRE(capacity >= 0, "capacity must be non-negative");
  NM_REQUIRE(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
  validate_items(items);

  // Partition: always-take zero-weight profitable items; candidates are
  // profitable items that fit.
  KnapResult result;
  std::vector<std::size_t>& candidates = ws.candidates;
  candidates.clear();
  for (std::size_t i = 0; i < items.size(); ++i) {
    const KnapItem& item = items[i];
    if (item.profit <= 0.0 || item.weight > capacity) continue;
    if (item.weight == 0) {
      result.chosen.push_back(item.id);
      result.profit += item.profit;
    } else {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) return result;

  double pmax = 0.0;
  for (std::size_t i : candidates) pmax = std::max(pmax, items[i].profit);
  const auto n = static_cast<double>(candidates.size());
  const double scale = eps * pmax / n;
  NM_ASSERT(scale > 0.0, "profit scale must be positive");

  // Scaled profits; total bounded by n * (n/eps + 1).
  std::vector<std::int64_t>& scaled = ws.scaled;
  scaled.resize(candidates.size());
  std::int64_t total_scaled = 0;
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    scaled[k] = static_cast<std::int64_t>(
        std::floor(items[candidates[k]].profit / scale));
    total_scaled += scaled[k];
  }
  NM_REQUIRE(total_scaled <= 50'000'000,
             "FPTAS profit table too large; increase eps");
  NM_REQUIRE(static_cast<double>(candidates.size()) *
                 static_cast<double>(total_scaled + 1) <=
             4e8, "FPTAS choice table too large; increase eps");

  // min_weight[s] = least weight achieving scaled profit exactly s.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t>& min_weight = ws.min_weight;
  min_weight.assign(static_cast<std::size_t>(total_scaled) + 1, kInf);
  min_weight[0] = 0;
  const std::size_t row_words =
      bit_row_words(static_cast<std::size_t>(total_scaled) + 1);
  std::vector<std::uint64_t>& take = ws.take_bits;
  take.assign(candidates.size() * row_words, 0);

  std::int64_t reach = 0;  // highest scaled profit reachable so far
  std::uint64_t dp_iterations = 0;  // DP cells touched, for telemetry
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    const KnapItem& item = items[candidates[k]];
    const std::int64_t sp = scaled[k];
    if (sp == 0) continue;  // contributes < scale; GreedyAdd-style callers
                            // can still pick it up, the bound holds anyway
    reach = std::min(reach + sp, total_scaled);
    dp_iterations += static_cast<std::uint64_t>(reach - sp + 1);
    for (std::int64_t s = reach; s >= sp; --s) {
      const std::int64_t base = min_weight[static_cast<std::size_t>(s - sp)];
      if (base == kInf) continue;
      const std::int64_t w = base + item.weight;
      if (w < min_weight[static_cast<std::size_t>(s)]) {
        min_weight[static_cast<std::size_t>(s)] = w;
        bit_set(take, row_words, k, static_cast<std::size_t>(s));
      }
    }
  }

  std::int64_t best_s = 0;
  for (std::int64_t s = total_scaled; s > 0; --s) {
    if (min_weight[static_cast<std::size_t>(s)] <= capacity) {
      best_s = s;
      break;
    }
  }

  // Reconstruct the chosen set.
  std::int64_t s = best_s;
  for (std::size_t k = candidates.size(); k-- > 0;) {
    if (s > 0 && bit_get(take, row_words, k, static_cast<std::size_t>(s))) {
      const KnapItem& item = items[candidates[k]];
      result.chosen.push_back(item.id);
      result.profit += item.profit;
      result.weight += item.weight;
      s -= scaled[k];
    }
  }
  NM_ASSERT(s == 0, "FPTAS reconstruction must consume the profit");
  NM_ASSERT(result.weight <= capacity, "FPTAS result exceeds capacity");

  struct KnapsackMetrics {
    obs::Counter& solves;
    obs::Counter& iterations;
  };
  static KnapsackMetrics metrics{
      obs::Registry::global().counter("sched.knapsack.solves"),
      obs::Registry::global().counter("sched.knapsack.iterations"),
  };
  metrics.solves.add(1);
  metrics.iterations.add(dp_iterations);
  if (dp_cells != nullptr) *dp_cells += dp_iterations;
  return result;
}

// ---- Workspace-free entry points: delegate to the kernels above with
// the calling thread's reusable workspace. ----

KnapResult knapsack_exact(std::span<const KnapItem> items,
                          std::int64_t capacity) {
  return knapsack_exact(items, capacity, thread_workspace());
}

KnapResult knapsack_greedy(std::span<const KnapItem> items,
                           std::int64_t capacity) {
  return knapsack_greedy(items, capacity, thread_workspace());
}

KnapResult knapsack_fptas(std::span<const KnapItem> items,
                          std::int64_t capacity, double eps) {
  return knapsack_fptas(items, capacity, eps, thread_workspace());
}

double fractional_upper_bound(std::span<const KnapItem> items,
                              std::int64_t capacity) {
  NM_REQUIRE(capacity >= 0, "capacity must be non-negative");
  validate_items(items);
  std::vector<std::size_t> order;
  ratio_order(items, order);
  double bound = 0.0;
  std::int64_t remaining = capacity;
  for (std::size_t idx : order) {
    const KnapItem& item = items[idx];
    if (item.profit <= 0.0) continue;
    if (item.weight <= remaining) {
      bound += item.profit;
      remaining -= item.weight;
    } else {
      if (item.weight > 0 && remaining > 0) {
        bound += item.profit * static_cast<double>(remaining) /
                 static_cast<double>(item.weight);
      }
      break;
    }
  }
  return bound;
}

}  // namespace netmaster::sched
