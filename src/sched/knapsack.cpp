#include "sched/knapsack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace netmaster::sched {

namespace {

/// Items sorted by profit/weight nonincreasing (zero-weight first).
std::vector<std::size_t> ratio_order(std::span<const KnapItem> items) {
  std::vector<std::size_t> order(items.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const KnapItem& x = items[a];
    const KnapItem& y = items[b];
    // Compare x.profit/x.weight vs y.profit/y.weight without division;
    // zero-weight items sort first (infinite ratio).
    if (x.weight == 0 || y.weight == 0) {
      if (x.weight == 0 && y.weight == 0) return x.profit > y.profit;
      return x.weight == 0;
    }
    return x.profit * static_cast<double>(y.weight) >
           y.profit * static_cast<double>(x.weight);
  });
  return order;
}

void validate_items(std::span<const KnapItem> items) {
  for (const KnapItem& item : items) {
    NM_REQUIRE(item.weight >= 0, "item weights must be non-negative");
    NM_REQUIRE(std::isfinite(item.profit), "item profits must be finite");
  }
}

}  // namespace

KnapResult knapsack_exact(std::span<const KnapItem> items,
                          std::int64_t capacity) {
  NM_REQUIRE(capacity >= 0, "capacity must be non-negative");
  validate_items(items);
  const std::size_t n = items.size();
  const auto cap = static_cast<std::size_t>(capacity);
  NM_REQUIRE(cap <= 4'000'000, "exact DP capacity too large");
  NM_REQUIRE(n * (cap + 1) <= 400'000'000,
             "exact DP instance too large");

  // best[w] = max profit using a prefix of items within weight w;
  // take[i] records, per weight, whether item i was taken at that cell.
  std::vector<double> best(cap + 1, 0.0);
  std::vector<std::vector<bool>> take(n);

  for (std::size_t i = 0; i < n; ++i) {
    take[i].assign(cap + 1, false);
    const auto w = static_cast<std::size_t>(items[i].weight);
    const double p = items[i].profit;
    if (p <= 0.0 || w > cap) continue;  // never beneficial
    for (std::size_t c = cap + 1; c-- > w;) {
      const double candidate = best[c - w] + p;
      if (candidate > best[c]) {
        best[c] = candidate;
        take[i][c] = true;
      }
    }
  }

  KnapResult result;
  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (take[i][c]) {
      result.chosen.push_back(items[i].id);
      result.profit += items[i].profit;
      result.weight += items[i].weight;
      c -= static_cast<std::size_t>(items[i].weight);
    }
  }
  std::reverse(result.chosen.begin(), result.chosen.end());
  return result;
}

KnapResult knapsack_greedy(std::span<const KnapItem> items,
                           std::int64_t capacity) {
  NM_REQUIRE(capacity >= 0, "capacity must be non-negative");
  validate_items(items);
  KnapResult result;
  std::int64_t remaining = capacity;
  for (std::size_t idx : ratio_order(items)) {
    const KnapItem& item = items[idx];
    if (item.profit <= 0.0) continue;
    if (item.weight <= remaining) {
      result.chosen.push_back(item.id);
      result.profit += item.profit;
      result.weight += item.weight;
      remaining -= item.weight;
    }
  }
  return result;
}

KnapResult knapsack_fptas(std::span<const KnapItem> items,
                          std::int64_t capacity, double eps) {
  NM_REQUIRE(capacity >= 0, "capacity must be non-negative");
  NM_REQUIRE(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
  validate_items(items);

  // Partition: always-take zero-weight profitable items; candidates are
  // profitable items that fit.
  KnapResult result;
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const KnapItem& item = items[i];
    if (item.profit <= 0.0 || item.weight > capacity) continue;
    if (item.weight == 0) {
      result.chosen.push_back(item.id);
      result.profit += item.profit;
    } else {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) return result;

  double pmax = 0.0;
  for (std::size_t i : candidates) pmax = std::max(pmax, items[i].profit);
  const auto n = static_cast<double>(candidates.size());
  const double scale = eps * pmax / n;
  NM_ASSERT(scale > 0.0, "profit scale must be positive");

  // Scaled profits; total bounded by n * (n/eps + 1).
  std::vector<std::int64_t> scaled(candidates.size());
  std::int64_t total_scaled = 0;
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    scaled[k] = static_cast<std::int64_t>(
        std::floor(items[candidates[k]].profit / scale));
    total_scaled += scaled[k];
  }
  NM_REQUIRE(total_scaled <= 50'000'000,
             "FPTAS profit table too large; increase eps");
  NM_REQUIRE(static_cast<double>(candidates.size()) *
                 static_cast<double>(total_scaled + 1) <=
             4e8, "FPTAS choice table too large; increase eps");

  // min_weight[s] = least weight achieving scaled profit exactly s.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> min_weight(
      static_cast<std::size_t>(total_scaled) + 1, kInf);
  min_weight[0] = 0;
  std::vector<std::vector<bool>> take(candidates.size());

  std::int64_t reach = 0;  // highest scaled profit reachable so far
  std::uint64_t dp_iterations = 0;  // DP cells touched, for telemetry
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    const KnapItem& item = items[candidates[k]];
    const std::int64_t sp = scaled[k];
    take[k].assign(static_cast<std::size_t>(total_scaled) + 1, false);
    if (sp == 0) continue;  // contributes < scale; GreedyAdd-style callers
                            // can still pick it up, the bound holds anyway
    reach = std::min(reach + sp, total_scaled);
    dp_iterations += static_cast<std::uint64_t>(reach - sp + 1);
    for (std::int64_t s = reach; s >= sp; --s) {
      const std::int64_t base = min_weight[static_cast<std::size_t>(s - sp)];
      if (base == kInf) continue;
      const std::int64_t w = base + item.weight;
      if (w < min_weight[static_cast<std::size_t>(s)]) {
        min_weight[static_cast<std::size_t>(s)] = w;
        take[k][static_cast<std::size_t>(s)] = true;
      }
    }
  }

  std::int64_t best_s = 0;
  for (std::int64_t s = total_scaled; s > 0; --s) {
    if (min_weight[static_cast<std::size_t>(s)] <= capacity) {
      best_s = s;
      break;
    }
  }

  // Reconstruct the chosen set.
  std::int64_t s = best_s;
  for (std::size_t k = candidates.size(); k-- > 0;) {
    if (s > 0 && take[k][static_cast<std::size_t>(s)]) {
      const KnapItem& item = items[candidates[k]];
      result.chosen.push_back(item.id);
      result.profit += item.profit;
      result.weight += item.weight;
      s -= scaled[k];
    }
  }
  NM_ASSERT(s == 0, "FPTAS reconstruction must consume the profit");
  NM_ASSERT(result.weight <= capacity, "FPTAS result exceeds capacity");

  struct KnapsackMetrics {
    obs::Counter& solves;
    obs::Counter& iterations;
  };
  static KnapsackMetrics metrics{
      obs::Registry::global().counter("sched.knapsack.solves"),
      obs::Registry::global().counter("sched.knapsack.iterations"),
  };
  metrics.solves.add(1);
  metrics.iterations.add(dp_iterations);
  return result;
}

double fractional_upper_bound(std::span<const KnapItem> items,
                              std::int64_t capacity) {
  NM_REQUIRE(capacity >= 0, "capacity must be non-negative");
  validate_items(items);
  double bound = 0.0;
  std::int64_t remaining = capacity;
  for (std::size_t idx : ratio_order(items)) {
    const KnapItem& item = items[idx];
    if (item.profit <= 0.0) continue;
    if (item.weight <= remaining) {
      bound += item.profit;
      remaining -= item.weight;
    } else {
      if (item.weight > 0 && remaining > 0) {
        bound += item.profit * static_cast<double>(remaining) /
                 static_cast<double>(item.weight);
      }
      break;
    }
  }
  return bound;
}

}  // namespace netmaster::sched
