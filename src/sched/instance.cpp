#include "sched/instance.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace netmaster::sched {

double energy_saving_j(const NetworkActivity& activity,
                       const ProfitConfig& config) {
  return isolated_activity_energy(activity.duration, config.radio) -
         piggybacked_activity_energy(activity.duration, config.radio);
}

double deferral_penalty_j(TimeMs from, TimeMs to,
                          const mining::SlotPredictor& predictor,
                          const ProfitConfig& config) {
  const TimeMs lo = std::min(from, to);
  const TimeMs hi = std::max(from, to);
  const double window_s = to_seconds(hi - lo);
  const double pr_integral_s =
      predictor.active_probability_integral(lo, hi);
  return config.et_j_per_s2 * window_s * pr_integral_s;
}

std::int64_t slot_capacity_bytes(const Interval& slot,
                                 const ProfitConfig& config) {
  NM_REQUIRE(config.bandwidth_kbps > 0.0, "bandwidth must be positive");
  return static_cast<std::int64_t>(config.bandwidth_kbps * 1000.0 *
                                   to_seconds(slot.length()));
}

TimeMs assignment_anchor(const Interval& slot, TimeMs activity_time) {
  if (slot.end <= activity_time) return slot.end;    // preceding slot
  if (slot.begin >= activity_time) return slot.begin;  // following slot
  return activity_time;  // activity already inside the slot
}

Instance build_instance(std::span<const Interval> active_slots,
                        std::span<const NetworkActivity> pending,
                        const mining::SlotPredictor& predictor,
                        const ProfitConfig& config) {
  Instance inst;
  inst.slot_windows.assign(active_slots.begin(), active_slots.end());
  std::sort(inst.slot_windows.begin(), inst.slot_windows.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  for (std::size_t i = 0; i < inst.slot_windows.size(); ++i) {
    NM_REQUIRE(i == 0 ||
                   inst.slot_windows[i].begin >= inst.slot_windows[i - 1].end,
               "active slots must be disjoint");
    inst.slots.push_back(
        {static_cast<int>(i),
         slot_capacity_bytes(inst.slot_windows[i], config)});
  }

  int next_id = 0;
  for (std::size_t a = 0; a < pending.size(); ++a) {
    const NetworkActivity& act = pending[a];
    NM_REQUIRE(act.deferrable, "only deferrable activities are schedulable");

    // Locate the first slot beginning after the activity.
    const auto after = std::upper_bound(
        inst.slot_windows.begin(), inst.slot_windows.end(), act.start,
        [](TimeMs t, const Interval& s) { return t < s.begin; });
    const int next_slot =
        after == inst.slot_windows.end()
            ? -1
            : static_cast<int>(after - inst.slot_windows.begin());
    int prev_slot = -1;
    if (after != inst.slot_windows.begin()) {
      const auto before = std::prev(after);
      if (before->end > act.start) continue;  // already inside a slot
      prev_slot = static_cast<int>(before - inst.slot_windows.begin());
    }
    if (prev_slot < 0 && next_slot < 0) {
      inst.unschedulable.push_back(a);
      continue;
    }

    // The paper computes one ΔP per activity (the forward deferral
    // window, Eq. 4) and reuses it for the duplicated copy; fall back
    // to the prefetch window when no following slot exists.
    const TimeMs anchor =
        next_slot >= 0
            ? assignment_anchor(
                  inst.slot_windows[static_cast<std::size_t>(next_slot)],
                  act.start)
            : assignment_anchor(
                  inst.slot_windows[static_cast<std::size_t>(prev_slot)],
                  act.start);

    OverlapItem item;
    item.id = next_id++;
    item.weight = act.total_bytes();
    item.profit = energy_saving_j(act, config) -
                  deferral_penalty_j(act.start, anchor, predictor, config);
    item.prev_slot = prev_slot;
    item.next_slot = next_slot;
    inst.items.push_back(item);
    inst.item_activity.push_back(a);
  }
  return inst;
}

}  // namespace netmaster::sched
