#include "sched/instance.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace netmaster::sched {

double energy_saving_j(const NetworkActivity& activity,
                       const ProfitConfig& config) {
  return isolated_activity_energy(activity.duration, config.radio) -
         piggybacked_activity_energy(activity.duration, config.radio);
}

double deferral_penalty_j(TimeMs from, TimeMs to,
                          const mining::SlotPredictor& predictor,
                          const ProfitConfig& config) {
  const TimeMs lo = std::min(from, to);
  const TimeMs hi = std::max(from, to);
  const double window_s = to_seconds(hi - lo);
  const double pr_integral_s =
      predictor.active_probability_integral(lo, hi);
  return config.et_j_per_s2 * window_s * pr_integral_s;
}

std::int64_t slot_capacity_bytes(const Interval& slot,
                                 const ProfitConfig& config) {
  NM_REQUIRE(config.bandwidth_kbps > 0.0, "bandwidth must be positive");
  return static_cast<std::int64_t>(config.bandwidth_kbps * 1000.0 *
                                   to_seconds(slot.length()));
}

TimeMs assignment_anchor(const Interval& slot, TimeMs activity_time) {
  if (slot.end <= activity_time) return slot.end;    // preceding slot
  if (slot.begin >= activity_time) return slot.begin;  // following slot
  return activity_time;  // activity already inside the slot
}

Instance build_instance(std::span<const Interval> active_slots,
                        std::span<const NetworkActivity> pending,
                        const mining::SlotPredictor& predictor,
                        const ProfitConfig& config) {
  Instance inst;
  inst.slot_windows.assign(active_slots.begin(), active_slots.end());
  std::sort(inst.slot_windows.begin(), inst.slot_windows.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  for (std::size_t i = 0; i < inst.slot_windows.size(); ++i) {
    NM_REQUIRE(i == 0 ||
                   inst.slot_windows[i].begin >= inst.slot_windows[i - 1].end,
               "active slots must be disjoint");
    inst.slots.push_back(
        {static_cast<int>(i),
         slot_capacity_bytes(inst.slot_windows[i], config)});
  }

  inst.num_cellular_slots = inst.slots.size();

  int next_id = 0;
  for (std::size_t a = 0; a < pending.size(); ++a) {
    const NetworkActivity& act = pending[a];
    NM_REQUIRE(act.deferrable, "only deferrable activities are schedulable");

    // Locate the first slot beginning after the activity.
    const auto after = std::upper_bound(
        inst.slot_windows.begin(), inst.slot_windows.end(), act.start,
        [](TimeMs t, const Interval& s) { return t < s.begin; });
    const int next_slot =
        after == inst.slot_windows.end()
            ? -1
            : static_cast<int>(after - inst.slot_windows.begin());
    int prev_slot = -1;
    if (after != inst.slot_windows.begin()) {
      const auto before = std::prev(after);
      if (before->end > act.start) continue;  // already inside a slot
      prev_slot = static_cast<int>(before - inst.slot_windows.begin());
    }
    if (prev_slot < 0 && next_slot < 0) {
      inst.unschedulable.push_back(a);
      continue;
    }

    // The paper computes one ΔP per activity (the forward deferral
    // window, Eq. 4) and reuses it for the duplicated copy; fall back
    // to the prefetch window when no following slot exists.
    const TimeMs anchor =
        next_slot >= 0
            ? assignment_anchor(
                  inst.slot_windows[static_cast<std::size_t>(next_slot)],
                  act.start)
            : assignment_anchor(
                  inst.slot_windows[static_cast<std::size_t>(prev_slot)],
                  act.start);

    OverlapItem item;
    item.id = next_id++;
    item.weight = act.total_bytes();
    item.profit = energy_saving_j(act, config) -
                  deferral_penalty_j(act.start, anchor, predictor, config);
    item.prev_slot = prev_slot;
    item.next_slot = next_slot;
    inst.items.push_back(item);
    inst.item_activity.push_back(a);
  }
  return inst;
}

DurationMs wifi_transfer_ms(const NetworkActivity& activity,
                            const ProfitConfig& config) {
  NM_REQUIRE(config.wifi_bandwidth_kbps > 0.0,
             "wifi bandwidth must be positive");
  // kB/s is bytes-per-millisecond, so the division lands in ms.
  const double ms = static_cast<double>(activity.total_bytes()) /
                    config.wifi_bandwidth_kbps;
  const DurationMs dur =
      static_cast<DurationMs>(std::llround(std::ceil(ms)));
  return std::clamp<DurationMs>(dur, 1,
                                std::max<DurationMs>(activity.duration, 1));
}

double wifi_offload_saving_j(const NetworkActivity& activity,
                             const ProfitConfig& config) {
  return isolated_activity_energy(activity.duration, config.radio) -
         isolated_activity_energy(wifi_transfer_ms(activity, config),
                                  config.wifi);
}

Instance build_multiradio_instance(std::span<const Interval> active_slots,
                                   std::span<const Interval> wifi_windows,
                                   std::span<const NetworkActivity> pending,
                                   const mining::SlotPredictor& predictor,
                                   const ProfitConfig& config) {
  Instance inst;
  inst.slot_windows.assign(active_slots.begin(), active_slots.end());
  std::sort(inst.slot_windows.begin(), inst.slot_windows.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  for (std::size_t i = 0; i < inst.slot_windows.size(); ++i) {
    NM_REQUIRE(i == 0 ||
                   inst.slot_windows[i].begin >= inst.slot_windows[i - 1].end,
               "active slots must be disjoint");
    inst.slots.push_back(
        {static_cast<int>(i),
         slot_capacity_bytes(inst.slot_windows[i], config)});
  }
  const std::size_t num_cell = inst.slot_windows.size();
  inst.num_cellular_slots = num_cell;

  // Wi-Fi presence windows become knapsacks of their own, appended
  // after the cellular slots and sized by the WLAN goodput.
  std::vector<Interval> wifi(wifi_windows.begin(), wifi_windows.end());
  std::sort(wifi.begin(), wifi.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  for (std::size_t i = 0; i < wifi.size(); ++i) {
    NM_REQUIRE(i == 0 || wifi[i].begin >= wifi[i - 1].end,
               "wifi windows must be disjoint");
    OverlapSlot slot;
    slot.id = static_cast<int>(num_cell + i);
    slot.capacity = static_cast<std::int64_t>(
        config.wifi_bandwidth_kbps * 1000.0 * to_seconds(wifi[i].length()));
    slot.radio = RadioId::kWifi;
    inst.slots.push_back(slot);
    inst.slot_windows.push_back(wifi[i]);
  }

  int next_id = 0;
  for (std::size_t a = 0; a < pending.size(); ++a) {
    const NetworkActivity& act = pending[a];
    NM_REQUIRE(act.deferrable, "only deferrable activities are schedulable");

    // Cellular candidates, over the cellular prefix only — identical
    // to build_instance's adjacent-slot search.
    const auto cell_begin = inst.slot_windows.begin();
    const auto cell_end = cell_begin + static_cast<std::ptrdiff_t>(num_cell);
    const auto after = std::upper_bound(
        cell_begin, cell_end, act.start,
        [](TimeMs t, const Interval& s) { return t < s.begin; });
    const int next_slot =
        after == cell_end ? -1 : static_cast<int>(after - cell_begin);
    int prev_slot = -1;
    if (after != cell_begin) {
      const auto before = std::prev(after);
      if (before->end > act.start) continue;  // already inside a slot
      prev_slot = static_cast<int>(before - cell_begin);
    }

    // Wi-Fi candidate: the presence window containing the arrival
    // (immediate offload, no deferral) or the next one after it.
    int wifi_slot = -1;
    {
      const auto wafter = std::upper_bound(
          wifi.begin(), wifi.end(), act.start,
          [](TimeMs t, const Interval& w) { return t < w.begin; });
      if (wafter != wifi.begin() && std::prev(wafter)->end > act.start) {
        wifi_slot = static_cast<int>(std::prev(wafter) - wifi.begin());
      } else if (wafter != wifi.end()) {
        wifi_slot = static_cast<int>(wafter - wifi.begin());
      }
    }

    if (prev_slot < 0 && next_slot < 0 && wifi_slot < 0) {
      inst.unschedulable.push_back(a);
      continue;
    }

    OverlapItem item;
    item.id = next_id++;
    item.weight = act.total_bytes();

    double cell_profit = 0.0;
    if (prev_slot >= 0 || next_slot >= 0) {
      const TimeMs anchor =
          next_slot >= 0
              ? assignment_anchor(
                    inst.slot_windows[static_cast<std::size_t>(next_slot)],
                    act.start)
              : assignment_anchor(
                    inst.slot_windows[static_cast<std::size_t>(prev_slot)],
                    act.start);
      cell_profit =
          energy_saving_j(act, config) -
          deferral_penalty_j(act.start, anchor, predictor, config);
    }

    if (wifi_slot < 0) {
      // No Wi-Fi coverage: exactly the single-radio item.
      item.profit = cell_profit;
      item.prev_slot = prev_slot;
      item.next_slot = next_slot;
    } else {
      // Two candidates with their own profits: the paper's forward
      // cellular slot (next if it exists, else the prefetch slot) and
      // the Wi-Fi window. The Eq. 4 deferral penalty applies to the
      // Wi-Fi deferral window the same way it does to a cellular one.
      const Interval& wifi_win =
          inst.slot_windows[num_cell + static_cast<std::size_t>(wifi_slot)];
      const TimeMs wifi_anchor = assignment_anchor(wifi_win, act.start);
      const double wifi_profit =
          wifi_offload_saving_j(act, config) -
          deferral_penalty_j(act.start, wifi_anchor, predictor, config);
      const int cell = next_slot >= 0 ? next_slot : prev_slot;
      item.prev_slot = cell;  // may be -1: Wi-Fi-only coverage
      item.next_slot = static_cast<int>(num_cell) + wifi_slot;
      item.profit = cell >= 0 ? cell_profit : wifi_profit;
      if (cell >= 0) item.prev_profit = cell_profit;
      item.next_profit = wifi_profit;
    }
    inst.items.push_back(item);
    inst.item_activity.push_back(a);
  }
  return inst;
}

}  // namespace netmaster::sched
