// Small statistics toolkit: streaming moments, percentiles, empirical
// CDFs and fixed-bin histograms. Used by trace profiling (Fig. 1/2),
// the mining layer, and every bench reporter.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace netmaster {

/// Streaming mean/variance/min/max over doubles (Welford's algorithm).
/// NaN samples are rejected (counted via rejected(), never folded in)
/// so one poisoned measurement cannot corrupt the whole series — the
/// contract the obs-layer histograms rely on.
class StreamingStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  /// NaN samples seen and ignored by add().
  std::size_t rejected() const { return rejected_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  std::size_t rejected_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// q in [0, 1]. Sorts a copy; fine for bench-sized samples. NaN values
/// are dropped first (they have no order); an all-NaN sample is empty.
double percentile(std::vector<double> values, double q);

/// Pearson correlation coefficient of two equal-length vectors (the
/// paper's Eq. 1). Returns 0 when either vector has zero variance
/// (the paper's usage vectors are all-zero overnight for some users;
/// correlation against a constant is undefined, 0 is the neutral choice).
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;     ///< sample value
  double fraction = 0.0;  ///< P(X <= value)
};

/// Empirical CDF of a sample, one point per distinct value. NaN values
/// are dropped first.
std::vector<CdfPoint> empirical_cdf(std::vector<double> values);

/// Smallest value v such that P(X <= v) >= q under the empirical CDF.
double cdf_quantile(const std::vector<CdfPoint>& cdf, double q);

/// Fixed-width histogram over [lo, hi) with saturating edge bins.
/// NaN samples are rejected (counted, never binned).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  /// NaN samples seen and ignored by add().
  std::size_t rejected() const { return rejected_; }
  /// Center value of a bin.
  double bin_center(std::size_t bin) const;
  /// Fraction of samples in the bin (0 when empty histogram).
  double fraction(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace netmaster
