#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace netmaster {

void StreamingStats::add(double x) {
  if (std::isnan(x)) {
    ++rejected_;
    return;
  }
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::mean() const {
  NM_REQUIRE(count_ > 0, "mean of empty sample");
  return mean_;
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::min() const {
  NM_REQUIRE(count_ > 0, "min of empty sample");
  return min_;
}

double StreamingStats::max() const {
  NM_REQUIRE(count_ > 0, "max of empty sample");
  return max_;
}

double percentile(std::vector<double> values, double q) {
  NM_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  values.erase(std::remove_if(values.begin(), values.end(),
                              [](double v) { return std::isnan(v); }),
               values.end());
  NM_REQUIRE(!values.empty(), "percentile of empty sample");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  NM_REQUIRE(x.size() == y.size(), "pearson inputs must be equal length");
  NM_REQUIRE(!x.empty(), "pearson of empty vectors");
  const auto n = static_cast<double>(x.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> values) {
  std::vector<CdfPoint> cdf;
  values.erase(std::remove_if(values.begin(), values.end(),
                              [](double v) { return std::isnan(v); }),
               values.end());
  if (values.empty()) return cdf;
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Collapse runs of equal values into one point at the run's end.
    if (i + 1 < values.size() && values[i + 1] == values[i]) continue;
    cdf.push_back({values[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

double cdf_quantile(const std::vector<CdfPoint>& cdf, double q) {
  NM_REQUIRE(!cdf.empty(), "quantile of empty CDF");
  NM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  for (const CdfPoint& p : cdf) {
    if (p.fraction >= q) return p.value;
  }
  return cdf.back().value;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  NM_REQUIRE(hi > lo, "histogram range must be non-empty");
  NM_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  if (std::isnan(x)) {
    ++rejected_;
    return;
  }
  std::size_t bin;
  if (x < lo_) {
    bin = 0;
  } else if (x >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  NM_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  NM_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

}  // namespace netmaster
