// Deterministic random-number generation.
//
// Every stochastic component in the library (workload synthesis, random
// duty-cycle scheme, random knapsack instances in tests/benches) draws
// from an explicitly-seeded Rng. There is no global RNG and no wall-clock
// seeding anywhere, so every experiment is reproducible from its printed
// seed.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded through
// SplitMix64, which is the recommended seeding procedure and also lets a
// single user-facing seed fan out into independent per-stream seeds.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace netmaster {

/// SplitMix64 step: used for seed expansion and as a cheap stateless
/// mixer for deriving per-entity sub-seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives an independent stream seed from (seed, stream_id) without
/// consuming generator state. Used to give every synthetic user / app /
/// day its own reproducible stream.
constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                    std::uint64_t stream_id) {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
  return splitmix64(s);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x4d595df4d0f33173ULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    NM_REQUIRE(lo <= hi, "uniform range must be ordered");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    NM_REQUIRE(lo <= hi, "uniform_int range must be ordered");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64 * span
    // which is irrelevant for simulation workloads.
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * span;
    return lo + static_cast<std::int64_t>(product >> 64);
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean) {
    NM_REQUIRE(mean > 0.0, "exponential mean must be positive");
    double u = uniform();
    // uniform() < 1 strictly, but guard the log argument anyway.
    if (u >= 1.0) u = std::nextafter(1.0, 0.0);
    return -mean * std::log1p(-u);
  }

  /// Normal variate via Box–Muller (polar-free single-value form).
  double normal(double mean, double stddev) {
    NM_REQUIRE(stddev >= 0.0, "normal stddev must be non-negative");
    // Two fresh uniforms per call: simple and branch-free; the simulator
    // is not bottlenecked on variate generation.
    double u1 = uniform();
    if (u1 <= 0.0) u1 = std::nextafter(0.0, 1.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return mean + stddev * mag * std::cos(kTwoPi * u2);
  }

  /// Log-normal variate parameterized by the underlying normal(mu, sigma).
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Poisson variate (Knuth's method; fine for the small means used by
  /// the workload generator, with a normal approximation past 64).
  int poisson(double mean) {
    NM_REQUIRE(mean >= 0.0, "poisson mean must be non-negative");
    if (mean == 0.0) return 0;
    if (mean > 64.0) {
      const double draw = normal(mean, std::sqrt(mean));
      return draw < 0.0 ? 0 : static_cast<int>(draw + 0.5);
    }
    const double limit = std::exp(-mean);
    double product = 1.0;
    int count = -1;
    do {
      ++count;
      product *= uniform();
    } while (product > limit);
    return count;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace netmaster
