#include "common/interval.hpp"

#include <algorithm>

namespace netmaster {

IntervalSet::IntervalSet(std::vector<Interval> intervals) {
  std::erase_if(intervals, [](const Interval& iv) { return iv.empty(); });
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  for (const Interval& iv : intervals) {
    if (!intervals_.empty() && iv.begin <= intervals_.back().end) {
      intervals_.back().end = std::max(intervals_.back().end, iv.end);
    } else {
      intervals_.push_back(iv);
    }
  }
}

void IntervalSet::add(TimeMs begin, TimeMs end) {
  if (begin >= end) return;

  // Find the first existing interval whose end reaches begin (candidates
  // for merging) and the first whose begin exceeds end.
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), begin,
      [](const Interval& iv, TimeMs b) { return iv.end < b; });
  auto last = std::upper_bound(
      first, intervals_.end(), end,
      [](TimeMs e, const Interval& iv) { return e < iv.begin; });

  if (first == last) {
    intervals_.insert(first, Interval{begin, end});
    return;
  }
  // Merge [first, last) with the new interval in place.
  first->begin = std::min(first->begin, begin);
  first->end = std::max(std::prev(last)->end, end);
  intervals_.erase(std::next(first), last);
}

void IntervalSet::add(const IntervalSet& other) {
  for (const Interval& iv : other.intervals_) add(iv);
}

DurationMs IntervalSet::total_length() const {
  DurationMs total = 0;
  for (const Interval& iv : intervals_) total += iv.length();
  return total;
}

DurationMs IntervalSet::overlap_length(TimeMs begin, TimeMs end) const {
  if (begin >= end) return 0;
  DurationMs total = 0;
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), begin,
      [](const Interval& iv, TimeMs b) { return iv.end <= b; });
  for (; it != intervals_.end() && it->begin < end; ++it) {
    total += intersect(*it, Interval{begin, end}).length();
  }
  return total;
}

bool IntervalSet::contains(TimeMs t) const {
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), t,
      [](const Interval& iv, TimeMs v) { return iv.end <= v; });
  return it != intervals_.end() && it->contains(t);
}

IntervalSet IntervalSet::complement(TimeMs begin, TimeMs end) const {
  IntervalSet out;
  if (begin >= end) return out;
  TimeMs cursor = begin;
  for (const Interval& iv : intervals_) {
    if (iv.end <= cursor) continue;
    if (iv.begin >= end) break;
    if (iv.begin > cursor) out.add(cursor, std::min(iv.begin, end));
    cursor = std::max(cursor, iv.end);
    if (cursor >= end) break;
  }
  if (cursor < end) out.add(cursor, end);
  return out;
}

}  // namespace netmaster
