// parallel_for — embarrassingly-parallel loops over the work-stealing
// job system (jobs::WorkerPool / jobs::TaskGraph).
//
// The signature and semantics of the old barrier implementation are
// preserved: every experiment in this library is deterministic per
// index and tasks write only their own result slots, so results stay
// bit-identical regardless of worker count or steal order. Failures
// rethrow the *lowest-index* task error as a ParallelTaskError
// (deterministic in the input, not in thread timing); foreign
// (non-std::exception) throwables pass through unchanged.
//
// The legacy static-stride thread fan-out is retained verbatim as
// static_parallel_for: it is the "barrier" reference comparator the
// scale-out bench measures the job graph against, and a fallback
// callers can pin themselves to if they ever need stride-partitioned
// execution.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "jobs/job_system.hpp"
#include "jobs/threads.hpp"
#include "obs/metrics.hpp"

namespace netmaster {

namespace detail {

/// Cached references into the global registry — resolved once, so the
/// per-task cost is two clock reads and a few relaxed atomics.
struct ParallelMetrics {
  obs::Counter& invocations;
  obs::Counter& tasks;
  obs::Histogram& task_ms;
  obs::Histogram& worker_utilization;

  static ParallelMetrics& get() {
    static ParallelMetrics m{
        obs::Registry::global().counter("parallel.invocations"),
        obs::Registry::global().counter("parallel.tasks"),
        obs::Registry::global().histogram("parallel.task_ms",
                                          obs::latency_bounds_ms()),
        obs::Registry::global().histogram("parallel.worker_utilization",
                                          obs::fraction_bounds()),
    };
    return m;
  }
};

}  // namespace detail

/// Failure of one parallel_for task, carrying which index threw and the
/// original message. The original exception rides along as `cause()` so
/// callers can still inspect its concrete type.
class ParallelTaskError : public Error {
 public:
  ParallelTaskError(std::size_t index, const std::string& what,
                    std::exception_ptr cause)
      : Error("parallel_for task " + std::to_string(index) +
              " failed: " + what),
        index_(index),
        cause_(std::move(cause)) {}

  /// The loop index whose invocation threw.
  std::size_t index() const { return index_; }
  /// The exception originally thrown by the task.
  const std::exception_ptr& cause() const { return cause_; }

 private:
  std::size_t index_;
  std::exception_ptr cause_;
};

namespace detail {

/// Per-task instrumentation: wall time lands in parallel.task_ms and
/// parallel.tasks *whether or not the call throws* — failure-heavy
/// chaos runs must not under-report load.
template <typename Fn>
void timed_call(Fn& fn, std::size_t i, double& busy_ms) {
  ParallelMetrics& metrics = ParallelMetrics::get();
  const auto t0 = std::chrono::steady_clock::now();
  const auto record = [&] {
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    metrics.task_ms.add(ms);
    metrics.tasks.add(1);
    busy_ms += ms;
  };
  try {
    fn(i);
  } catch (...) {
    record();
    throw;
  }
  record();
}

/// Rethrown-from-a-catch-block helper: wraps the in-flight exception as
/// a ParallelTaskError; foreign throwables pass through untouched.
inline std::exception_ptr wrap_current(std::size_t index) {
  try {
    throw;
  } catch (const std::exception& e) {
    return std::make_exception_ptr(
        ParallelTaskError(index, e.what(), std::current_exception()));
  } catch (...) {
    return std::current_exception();  // foreign type: pass through
  }
}

}  // namespace detail

/// Invokes fn(i) for every i in [0, count) on the work-stealing pool
/// (up to `max_threads` workers; 0 = default_max_threads()). fn must be
/// safe to call concurrently for distinct indices. When invocations
/// throw, the failure at the lowest index is rethrown on the caller as
/// a ParallelTaskError naming that index; non-std::exception throwables
/// are rethrown unchanged. With one worker the loop runs inline and
/// stops at the first failure (earlier work preserved); with more, the
/// remaining independent tasks run to completion before the rethrow.
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn,
                  unsigned max_threads = 0) {
  if (count == 0) return;
  unsigned requested =
      max_threads != 0 ? max_threads : default_max_threads();
  if (requested == 0) requested = 1;

  detail::ParallelMetrics& metrics = detail::ParallelMetrics::get();
  metrics.invocations.add(1);

  if (requested <= 1 || count == 1) {
    const auto loop_start = std::chrono::steady_clock::now();
    double busy_ms = 0.0;
    const auto record_utilization = [&] {
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() -
                                 loop_start)
                                 .count();
      if (wall_ms > 0.0) {
        metrics.worker_utilization.add(std::min(1.0, busy_ms / wall_ms));
      }
    };
    for (std::size_t i = 0; i < count; ++i) {
      try {
        detail::timed_call(fn, i, busy_ms);
      } catch (...) {
        record_utilization();
        std::rethrow_exception(detail::wrap_current(i));
      }
    }
    record_utilization();
    return;
  }

  // Pool path: one independent task per index, each writing nothing but
  // its caller-owned slot, so the graph's determinism contract holds.
  // The graph stores the lowest-submission-index failure, which is
  // exactly the lowest loop index since tasks are added in order.
  jobs::TaskGraph graph;
  for (std::size_t i = 0; i < count; ++i) {
    graph.add([&fn, i] {
      double busy_ms = 0.0;  // the graph tracks per-worker busy time
      try {
        detail::timed_call(fn, i, busy_ms);
      } catch (...) {
        std::rethrow_exception(detail::wrap_current(i));
      }
    });
  }
  const auto record_utilization = [&] {
    const double wall_ms = graph.wall_ms();
    if (wall_ms <= 0.0) return;
    for (std::size_t w = 0; w < graph.num_worker_slots(); ++w) {
      const double busy = graph.worker_busy_ms(w);
      if (busy > 0.0) {
        metrics.worker_utilization.add(std::min(1.0, busy / wall_ms));
      }
    }
  };
  try {
    jobs::run_graph(graph, requested);
  } catch (...) {
    record_utilization();
    throw;
  }
  record_utilization();
}

/// The pre-job-system implementation: plain std::thread fan-out with
/// static index partitioning and a full join barrier. Kept as the
/// reference comparator for the barrier-vs-graph scale-out figure and
/// for callers that explicitly want stride-partitioned threads. Same
/// error semantics as parallel_for (lowest index wins; the throwing
/// worker abandons its remaining stride, others run to completion).
template <typename Fn>
void static_parallel_for(std::size_t count, Fn&& fn,
                         unsigned max_threads = 0) {
  if (count == 0) return;
  unsigned hw = max_threads != 0 ? max_threads : default_max_threads();
  if (hw == 0) hw = 1;
  const std::size_t workers = std::min<std::size_t>(hw, count);

  detail::ParallelMetrics& metrics = detail::ParallelMetrics::get();
  metrics.invocations.add(1);
  const auto loop_start = std::chrono::steady_clock::now();
  const auto record_utilization = [&](double busy_ms) {
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - loop_start)
                               .count();
    if (wall_ms > 0.0) {
      metrics.worker_utilization.add(std::min(1.0, busy_ms / wall_ms));
    }
  };

  if (workers <= 1) {
    double busy_ms = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        detail::timed_call(fn, i, busy_ms);
      } catch (...) {
        record_utilization(busy_ms);
        std::rethrow_exception(detail::wrap_current(i));
      }
    }
    record_utilization(busy_ms);
    return;
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      double busy_ms = 0.0;
      for (std::size_t i = w; i < count; i += workers) {
        try {
          detail::timed_call(fn, i, busy_ms);
        } catch (...) {
          const std::exception_ptr wrapped = detail::wrap_current(i);
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (i < first_error_index) {
            first_error_index = i;
            first_error = wrapped;
          }
          record_utilization(busy_ms);
          return;  // this worker stops; others run to completion
        }
      }
      record_utilization(busy_ms);
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace netmaster
