// Minimal shared-memory parallel loop for embarrassingly-parallel
// experiment sweeps (per-volunteer runs, parameter grids). Plain
// std::thread fan-out with static index partitioning: every experiment
// in this library is deterministic per index, so static scheduling
// keeps results bit-identical regardless of thread count.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace netmaster {

namespace detail {

/// Cached references into the global registry — resolved once, so the
/// per-task cost is two clock reads and a few relaxed atomics.
struct ParallelMetrics {
  obs::Counter& invocations;
  obs::Counter& tasks;
  obs::Histogram& task_ms;
  obs::Histogram& worker_utilization;

  static ParallelMetrics& get() {
    static ParallelMetrics m{
        obs::Registry::global().counter("parallel.invocations"),
        obs::Registry::global().counter("parallel.tasks"),
        obs::Registry::global().histogram("parallel.task_ms",
                                          obs::latency_bounds_ms()),
        obs::Registry::global().histogram("parallel.worker_utilization",
                                          obs::fraction_bounds()),
    };
    return m;
  }
};

}  // namespace detail

/// Failure of one parallel_for task, carrying which index threw and the
/// original message. The original exception rides along as `cause()` so
/// callers can still inspect its concrete type.
class ParallelTaskError : public Error {
 public:
  ParallelTaskError(std::size_t index, const std::string& what,
                    std::exception_ptr cause)
      : Error("parallel_for task " + std::to_string(index) +
              " failed: " + what),
        index_(index),
        cause_(std::move(cause)) {}

  /// The loop index whose invocation threw.
  std::size_t index() const { return index_; }
  /// The exception originally thrown by the task.
  const std::exception_ptr& cause() const { return cause_; }

 private:
  std::size_t index_;
  std::exception_ptr cause_;
};

/// Default worker cap when a parallel_for caller passes 0: the
/// NETMASTER_THREADS environment variable (read once per process) when
/// set to a positive integer, hardware_concurrency otherwise. Lets CI
/// rerun the whole suite single-threaded to flush nondeterminism
/// without plumbing a thread count through every entry point.
inline unsigned default_max_threads() {
  static const unsigned cached = [] {
    if (const char* env = std::getenv("NETMASTER_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<unsigned>(v);
    }
    return std::thread::hardware_concurrency();
  }();
  return cached;
}

/// Invokes fn(i) for every i in [0, count), distributing indices across
/// up to `max_threads` hardware threads (0 = default_max_threads()).
/// fn must be safe to call concurrently for distinct indices. When
/// invocations throw, the failure at the lowest index (deterministic in
/// the input, not in thread timing) is rethrown on the caller as a
/// ParallelTaskError naming that index; non-std::exception throwables
/// are rethrown unchanged.
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn,
                  unsigned max_threads = 0) {
  if (count == 0) return;
  unsigned hw = max_threads != 0 ? max_threads : default_max_threads();
  if (hw == 0) hw = 1;
  const std::size_t workers =
      std::min<std::size_t>(hw, count);

  using ParallelClock = std::chrono::steady_clock;
  detail::ParallelMetrics& metrics = detail::ParallelMetrics::get();
  metrics.invocations.add(1);
  const auto loop_start = ParallelClock::now();
  // Per-task wall time feeds the latency histogram; the per-worker sum
  // of task time over the loop's wall time is that worker's
  // utilization (1.0 = never idle, low values = starved by skew).
  auto timed_call = [&](auto&& call, std::size_t i, double& busy_ms) {
    const auto t0 = ParallelClock::now();
    call(i);
    const double ms =
        std::chrono::duration<double, std::milli>(ParallelClock::now() - t0)
            .count();
    metrics.task_ms.add(ms);
    metrics.tasks.add(1);
    busy_ms += ms;
  };
  auto record_utilization = [&](double busy_ms) {
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               ParallelClock::now() - loop_start)
                               .count();
    if (wall_ms > 0.0) {
      metrics.worker_utilization.add(std::min(1.0, busy_ms / wall_ms));
    }
  };

  auto wrap_current = [](std::size_t index) -> std::exception_ptr {
    try {
      throw;
    } catch (const std::exception& e) {
      return std::make_exception_ptr(
          ParallelTaskError(index, e.what(), std::current_exception()));
    } catch (...) {
      return std::current_exception();  // foreign type: pass through
    }
  };

  if (workers <= 1) {
    double busy_ms = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        timed_call(fn, i, busy_ms);
      } catch (...) {
        record_utilization(busy_ms);
        std::rethrow_exception(wrap_current(i));
      }
    }
    record_utilization(busy_ms);
    return;
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      double busy_ms = 0.0;
      for (std::size_t i = w; i < count; i += workers) {
        try {
          timed_call(fn, i, busy_ms);
        } catch (...) {
          const std::exception_ptr wrapped = wrap_current(i);
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (i < first_error_index) {
            first_error_index = i;
            first_error = wrapped;
          }
          record_utilization(busy_ms);
          return;  // this worker stops; others run to completion
        }
      }
      record_utilization(busy_ms);
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace netmaster
