// Minimal shared-memory parallel loop for embarrassingly-parallel
// experiment sweeps (per-volunteer runs, parameter grids). Plain
// std::thread fan-out with static index partitioning: every experiment
// in this library is deterministic per index, so static scheduling
// keeps results bit-identical regardless of thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace netmaster {

/// Invokes fn(i) for every i in [0, count), distributing indices across
/// up to `max_threads` hardware threads (0 = hardware_concurrency).
/// fn must be safe to call concurrently for distinct indices. The first
/// exception thrown by any invocation is rethrown on the caller.
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn,
                  unsigned max_threads = 0) {
  if (count == 0) return;
  unsigned hw = max_threads != 0 ? max_threads
                                 : std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const std::size_t workers =
      std::min<std::size_t>(hw, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      try {
        for (std::size_t i = w; i < count; i += workers) fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace netmaster
