// Half-open time intervals [begin, end) and canonical interval sets.
//
// Interval sets are the workhorse of radio accounting: radio-on time is
// the measure of a union of transfer-induced intervals, and the paper's
// penalty term charges overlapping deferral windows only once — i.e. it
// is also a measure of a union.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"

namespace netmaster {

/// A half-open time interval [begin, end). Empty when begin == end.
struct Interval {
  TimeMs begin = 0;
  TimeMs end = 0;

  constexpr DurationMs length() const { return end - begin; }
  constexpr bool empty() const { return begin >= end; }
  constexpr bool contains(TimeMs t) const { return begin <= t && t < end; }

  friend constexpr bool operator==(const Interval&, const Interval&) =
      default;
};

/// Returns the (possibly empty) intersection of two intervals.
constexpr Interval intersect(const Interval& a, const Interval& b) {
  const TimeMs lo = a.begin > b.begin ? a.begin : b.begin;
  const TimeMs hi = a.end < b.end ? a.end : b.end;
  return lo < hi ? Interval{lo, hi} : Interval{lo, lo};
}

/// True when the two intervals share at least one point.
constexpr bool overlaps(const Interval& a, const Interval& b) {
  return a.begin < b.end && b.begin < a.end;
}

/// A set of disjoint, sorted, non-empty half-open intervals. Insertion
/// keeps the canonical form (merging any overlapping or adjacent
/// intervals), so `total_length()` is the exact measure of the union.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Builds a canonical set from arbitrary (unsorted, overlapping)
  /// intervals; empty inputs are dropped.
  explicit IntervalSet(std::vector<Interval> intervals);

  /// Adds [begin, end), merging with existing intervals as needed.
  /// No-op when the interval is empty. Amortized O(log n) when additions
  /// arrive roughly in time order (the common case in the simulator).
  void add(TimeMs begin, TimeMs end);
  void add(const Interval& iv) { add(iv.begin, iv.end); }

  /// Union with another set.
  void add(const IntervalSet& other);

  /// Total measure of the union, in ms.
  DurationMs total_length() const;

  /// Measure of the intersection of this set with [begin, end).
  DurationMs overlap_length(TimeMs begin, TimeMs end) const;

  /// True when t is covered by some interval.
  bool contains(TimeMs t) const;

  bool empty() const { return intervals_.empty(); }
  std::size_t size() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Complement of this set within the clip window [begin, end).
  IntervalSet complement(TimeMs begin, TimeMs end) const;

 private:
  std::vector<Interval> intervals_;  // sorted, disjoint, non-empty
};

}  // namespace netmaster
