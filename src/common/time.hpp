// Time model used across the library.
//
// All timestamps are int64 milliseconds since the start of a trace
// ("trace epoch", t = 0 is midnight of day 0). Millisecond resolution is
// fine for radio accounting (RRC timers are seconds-scale) while avoiding
// floating-point drift in long traces. Mining operates on hour-of-day
// buckets derived from these timestamps.
#pragma once

#include <cstdint>

namespace netmaster {

/// Milliseconds since trace epoch (midnight of day 0).
using TimeMs = std::int64_t;

/// A length of time in milliseconds.
using DurationMs = std::int64_t;

inline constexpr DurationMs kMsPerSecond = 1000;
inline constexpr DurationMs kMsPerMinute = 60 * kMsPerSecond;
inline constexpr DurationMs kMsPerHour = 60 * kMsPerMinute;
inline constexpr DurationMs kMsPerDay = 24 * kMsPerHour;
inline constexpr int kHoursPerDay = 24;

/// Converts whole seconds to TimeMs/DurationMs.
constexpr DurationMs seconds(double s) {
  return static_cast<DurationMs>(s * static_cast<double>(kMsPerSecond));
}

/// Converts whole minutes to DurationMs.
constexpr DurationMs minutes(double m) {
  return static_cast<DurationMs>(m * static_cast<double>(kMsPerMinute));
}

/// Converts whole hours to DurationMs.
constexpr DurationMs hours(double h) {
  return static_cast<DurationMs>(h * static_cast<double>(kMsPerHour));
}

/// Converts a duration to fractional seconds (for reporting/energy math).
constexpr double to_seconds(DurationMs d) {
  return static_cast<double>(d) / static_cast<double>(kMsPerSecond);
}

/// Day index (0-based) containing timestamp t. Negative times are not a
/// valid trace position; callers must pass t >= 0.
constexpr int day_of(TimeMs t) { return static_cast<int>(t / kMsPerDay); }

/// Hour of day (0..23) containing timestamp t.
constexpr int hour_of(TimeMs t) {
  return static_cast<int>((t % kMsPerDay) / kMsPerHour);
}

/// Millisecond offset of t within its day (0 .. kMsPerDay-1).
constexpr TimeMs time_of_day(TimeMs t) { return t % kMsPerDay; }

/// Timestamp of midnight beginning day `day`.
constexpr TimeMs day_start(int day) {
  return static_cast<TimeMs>(day) * kMsPerDay;
}

/// Timestamp of the start of `hour` on `day`.
constexpr TimeMs hour_start(int day, int hour) {
  return day_start(day) + static_cast<TimeMs>(hour) * kMsPerHour;
}

/// True when `day` falls on a weekend under the convention that day 0 is
/// a Monday (so days 5 and 6 of each week are Saturday/Sunday). The synth
/// generator and the mining predictor share this convention.
constexpr bool is_weekend(int day) {
  const int dow = day % 7;
  return dow == 5 || dow == 6;
}

}  // namespace netmaster
