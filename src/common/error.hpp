// Error-handling primitives shared by every netmaster module.
//
// The library reports contract violations by throwing `netmaster::Error`
// (a std::runtime_error subclass carrying the failing expression and
// location). Recoverable conditions (e.g. malformed trace rows) are
// reported through return values or dedicated exception types declared
// next to the API that raises them; NM_REQUIRE is reserved for caller
// contract violations and NM_ASSERT for internal invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace netmaster {

/// Exception thrown on contract or invariant violation anywhere in the
/// library. Carries a human-readable message with file/line context.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace netmaster

/// Validates a caller-supplied precondition; throws netmaster::Error on
/// failure. Always enabled (these guard the public API surface).
#define NM_REQUIRE(expr, msg)                                              \
  do {                                                                     \
    if (!(expr))                                                           \
      ::netmaster::detail::raise("precondition", #expr, __FILE__,          \
                                 __LINE__, (msg));                         \
  } while (false)

/// Validates an internal invariant; throws netmaster::Error on failure.
/// Always enabled — the simulator is cheap enough that we never trade
/// invariant checking for speed.
#define NM_ASSERT(expr, msg)                                               \
  do {                                                                     \
    if (!(expr))                                                           \
      ::netmaster::detail::raise("invariant", #expr, __FILE__, __LINE__,   \
                                 (msg));                                   \
  } while (false)
