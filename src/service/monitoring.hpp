// Monitoring component (§V-A).
//
// Records the four feature groups (time, App, cellular network, screen)
// into the RecordStore using the paper's hybrid trigger model:
//   - event triggers for state variables (screen transitions, app
//     foreground changes),
//   - time triggers for byte counters — a 1-second timer while the
//     screen is on and a 30-second timer while it is off.
//
// On a real phone the triggers are Android broadcasts; here the
// component replays a ground-truth UserTrace through the same record
// pipeline, producing exactly the store contents the mining component
// would see in deployment.
#pragma once

#include <cstddef>

#include "service/record_store.hpp"
#include "trace/trace.hpp"

namespace netmaster::service {

struct MonitoringConfig {
  DurationMs screen_on_sample_ms = 1 * kMsPerSecond;
  DurationMs screen_off_sample_ms = 30 * kMsPerSecond;
};

class MonitoringComponent {
 public:
  MonitoringComponent(RecordStore& store, MonitoringConfig config = {});

  /// Replays a trace through the trigger pipeline, appending records.
  /// Returns the number of records emitted.
  std::size_t observe(const UserTrace& trace);

  std::size_t event_records() const { return event_records_; }
  std::size_t sample_records() const { return sample_records_; }

 private:
  RecordStore& store_;
  MonitoringConfig config_;
  std::size_t event_records_ = 0;
  std::size_t sample_records_ = 0;
};

}  // namespace netmaster::service
