// Event-driven online simulator.
//
// policy::NetMasterPolicy computes a whole-horizon plan (prediction +
// Algorithm 1 + real-time adjustment rules applied analytically). This
// module is its executive-layer cross-check: a genuine discrete-event
// loop that replays the evaluation trace event by event — screen edges,
// network arrivals, duty-cycle timers, midnight re-predictions — and
// makes every decision online, using only the mined model and the
// events seen so far. Deferred transfers are released at the first real
// radio opportunity (screen-on, duty wake, predicted slot begin), i.e.
// the greedy nearest-opportunity rule; the knapsack-planned placement
// lives in the policy path. Agreement between the two paths (tested in
// online_sim_test) validates the real-time adjustment machinery.
#pragma once

#include <cstddef>

#include "engine/trace_index.hpp"
#include "policy/netmaster.hpp"
#include "sched/solver.hpp"
#include "sim/outcome.hpp"
#include "trace/trace.hpp"

namespace netmaster::service {

struct OnlineSimResult {
  sim::PolicyOutcome outcome;      ///< accountable like any policy run
  std::size_t events_processed = 0;
  std::size_t radio_switches = 0;  ///< svc data enable/disable calls
  /// Advisory whole-horizon Algorithm 1 plan, computed once per run
  /// with the configured solver backend over the same mined model and
  /// deferrable classification as the policy path. The event loop's
  /// executed releases stay nearest-opportunity — the plan only feeds
  /// instrumentation (and lets tests compare the online path's solver
  /// stats against the policy path's).
  std::size_t planned_assignments = 0;
  sched::SolveStats plan_stats;
};

/// Trains on `training`, then replays the indexed eval trace through
/// the event loop. Fleet-scale callers share the index with the policy
/// path.
OnlineSimResult run_online(const UserTrace& training,
                           const engine::TraceIndex& eval,
                           const policy::NetMasterConfig& config);

/// One-shot convenience: indexes `eval` and replays it.
OnlineSimResult run_online(const UserTrace& training,
                           const UserTrace& eval,
                           const policy::NetMasterConfig& config);

}  // namespace netmaster::service
