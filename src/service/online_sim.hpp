// Event-driven online simulator.
//
// policy::NetMasterPolicy computes a whole-horizon plan (prediction +
// Algorithm 1 + real-time adjustment rules applied analytically). This
// module is its executive-layer cross-check: a genuine discrete-event
// loop that replays the evaluation trace event by event — screen edges,
// network arrivals, duty-cycle timers, midnight re-predictions — and
// makes every decision online, using only the mined model and the
// events seen so far. Deferred transfers are released at the first real
// radio opportunity (screen-on, duty wake, predicted slot begin), i.e.
// the greedy nearest-opportunity rule; the knapsack-planned placement
// lives in the policy path. Agreement between the two paths (tested in
// online_sim_test) validates the real-time adjustment machinery.
#pragma once

#include <cstddef>

#include "engine/trace_index.hpp"
#include "mining/drift.hpp"
#include "policy/netmaster.hpp"
#include "sched/solver.hpp"
#include "sim/outcome.hpp"
#include "trace/trace.hpp"

namespace netmaster::service {

/// Online drift adaptation (ROADMAP item 5). When enabled, the
/// executive keeps monitoring the evaluation stream: each completed day
/// is appended to a RecordStore and folded into a mining::DriftDetector
/// at the midnight tick. When the detector alarms, the mining component
/// re-mines a fresh model from the store's post-changepoint window and
/// the predictor hot-swaps to it — rate-limited with exponential
/// backoff, and only when the re-mined model clears the robustness
/// gate (its confidence is ramped down until enough post-drift days
/// accumulated, so a one-day model never takes over).
struct AdaptationConfig {
  bool enable = false;
  mining::DriftConfig detector;
  /// Longest re-mine window: the refresh mines records from
  /// [max(changepoint, day − window_days), day).
  int window_days = 14;
  /// Days between refresh attempts (rate limit; grows by
  /// backoff_factor after a rejected refresh, resets on adoption).
  int min_refresh_gap_days = 2;
  int backoff_factor = 2;
  /// A freshly re-mined model's confidence is scaled by
  /// min(1, window_len / confidence_ramp_days): fewer post-drift days
  /// than this leave it partially trusted (possibly below the adoption
  /// gate — the next attempt sees more days).
  int confidence_ramp_days = 3;
};

struct OnlineSimResult {
  sim::PolicyOutcome outcome;      ///< accountable like any policy run
  std::size_t events_processed = 0;
  std::size_t radio_switches = 0;  ///< svc data enable/disable calls
  /// Advisory whole-horizon Algorithm 1 plan, computed once per run
  /// with the configured solver backend over the same mined model and
  /// deferrable classification as the policy path. The event loop's
  /// executed releases stay nearest-opportunity — the plan only feeds
  /// instrumentation (and lets tests compare the online path's solver
  /// stats against the policy path's).
  std::size_t planned_assignments = 0;
  sched::SolveStats plan_stats;

  // Drift-adaptation telemetry (all zero when adaptation is off).
  double final_drift_score = 0.0;  ///< detector score at the horizon
  std::size_t drift_alarms = 0;    ///< distinct detector alarms
  std::size_t model_refreshes = 0; ///< re-mined models actually adopted
  int first_alarm_day = -1;        ///< eval day of the first alarm
};

/// Trains on `training`, then replays the indexed eval trace through
/// the event loop. Fleet-scale callers share the index with the policy
/// path.
OnlineSimResult run_online(const UserTrace& training,
                           const engine::TraceIndex& eval,
                           const policy::NetMasterConfig& config);

/// One-shot convenience: indexes `eval` and replays it.
OnlineSimResult run_online(const UserTrace& training,
                           const UserTrace& eval,
                           const policy::NetMasterConfig& config);

/// Adaptive replay: like run_online, plus the drift-adaptation loop of
/// AdaptationConfig. With adapt.enable == false this is exactly
/// run_online (no detector, no store, bit-identical schedule). The
/// evaluation index must share the training trace's weekday phase
/// (slice at multiples of 7 days), as for NetMasterPolicy.
OnlineSimResult run_online(const UserTrace& training,
                           const engine::TraceIndex& eval,
                           const policy::NetMasterConfig& config,
                           const AdaptationConfig& adapt);

}  // namespace netmaster::service
