#include "service/record_store.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace netmaster::service {

RecordStore::RecordStore(std::size_t cache_bytes)
    : cache_capacity_(std::max<std::size_t>(cache_bytes / sizeof(Record),
                                            1)) {}

void RecordStore::append(const Record& record) {
  cache_.push_back(record);
  if (cache_.size() >= cache_capacity_) flush();
}

void RecordStore::flush() {
  if (cache_.empty()) return;
  bytes_flushed_ += cache_.size() * sizeof(Record);
  ++flush_count_;
  flash_.insert(flash_.end(), cache_.begin(), cache_.end());
  cache_.clear();
}

std::vector<Record> RecordStore::all_records() const {
  std::vector<Record> out = flash_;
  out.insert(out.end(), cache_.begin(), cache_.end());
  return out;
}

UserTrace RecordStore::to_trace(UserId user, int num_days,
                                std::vector<std::string> app_names) const {
  UserTrace trace = reconstruct(user, num_days, std::move(app_names));
  trace.validate();
  return trace;
}

fault::SanitizeResult RecordStore::to_trace_tolerant(
    UserId user, int num_days,
    std::vector<std::string> app_names) const {
  return fault::sanitize_trace(
      reconstruct(user, num_days, std::move(app_names)));
}

UserTrace RecordStore::reconstruct(
    UserId user, int num_days,
    std::vector<std::string> app_names) const {
  UserTrace trace;
  trace.user = user;
  trace.num_days = num_days;
  trace.app_names = std::move(app_names);
  const TimeMs horizon = trace.trace_end();

  TimeMs screen_on_since = -1;
  for (const Record& r : all_records()) {
    switch (r.kind) {
      case RecordKind::kScreenOn:
        if (screen_on_since < 0) screen_on_since = r.time;
        break;
      case RecordKind::kScreenOff:
        if (screen_on_since >= 0 && r.time > screen_on_since) {
          trace.sessions.push_back({screen_on_since, r.time});
        }
        screen_on_since = -1;
        break;
      case RecordKind::kAppForeground:
        trace.usages.push_back({r.app, r.time, r.duration});
        break;
      case RecordKind::kNetworkActivity: {
        NetworkActivity n;
        n.app = r.app;
        n.start = r.time;
        n.duration = r.duration;
        n.bytes_down = r.bytes_down;
        n.bytes_up = r.bytes_up;
        n.user_initiated = r.user_initiated;
        n.deferrable = r.deferrable;
        trace.activities.push_back(n);
        break;
      }
      case RecordKind::kNetworkSample:
        // Counter samples inform live decisions; the reconstructed
        // trace uses the per-activity records instead.
        break;
    }
  }
  if (screen_on_since >= 0 && screen_on_since < horizon) {
    trace.sessions.push_back({screen_on_since, horizon});
  }

  std::stable_sort(trace.sessions.begin(), trace.sessions.end(),
            [](const ScreenSession& a, const ScreenSession& b) {
              return a.begin < b.begin;
            });
  std::stable_sort(trace.usages.begin(), trace.usages.end(),
            [](const AppUsage& a, const AppUsage& b) {
              return a.time < b.time;
            });
  std::stable_sort(trace.activities.begin(), trace.activities.end(),
            [](const NetworkActivity& a, const NetworkActivity& b) {
              return a.start < b.start;
            });
  return trace;
}

}  // namespace netmaster::service
