#include "service/online_sim.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "duty/duty_cycle.hpp"
#include "engine/radio_timeline.hpp"
#include "fault/sanitize.hpp"
#include "mining/drift.hpp"
#include "mining/habits.hpp"
#include "mining/special_apps.hpp"
#include "service/record_store.hpp"
#include "policy/policy.hpp"
#include "sched/instance.hpp"
#include "sched/solver.hpp"

namespace netmaster::service {

namespace {

enum class EventKind {
  kMidnight,   // re-predict the day's active slots
  kScreenOn,   // real session begins: radio opportunity
  kScreenOff,  // session ends: duty cycle re-arms
  kArrival,    // network activity wants to run
  kDutyWake,   // periodic probe while idle outside slots
};

struct Event {
  TimeMs time = 0;
  EventKind kind = EventKind::kMidnight;
  std::size_t index = 0;  // activity index for kArrival

  // Priority-queue ordering: earliest first; on ties, midnight and
  // screen edges before arrivals before probes (a transfer arriving
  // exactly at a screen edge sees the radio up).
  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return static_cast<int>(a.kind) > static_cast<int>(b.kind);
  }
};

struct PendingTransfer {
  std::size_t index;
  TimeMs arrival;
  DurationMs duration;
};

}  // namespace

OnlineSimResult run_online(const UserTrace& training,
                           const UserTrace& eval,
                           const policy::NetMasterConfig& config) {
  return run_online(training, engine::TraceIndex(eval), config);
}

OnlineSimResult run_online(const UserTrace& training,
                           const engine::TraceIndex& index,
                           const policy::NetMasterConfig& config) {
  return run_online(training, index, config, AdaptationConfig{});
}

OnlineSimResult run_online(const UserTrace& training,
                           const engine::TraceIndex& index,
                           const policy::NetMasterConfig& config,
                           const AdaptationConfig& adapt) {
  const UserTrace& eval = index.trace();
  eval.validate();
  const TimeMs horizon = index.horizon();
  if (adapt.enable) {
    NM_REQUIRE(adapt.window_days > 0, "window_days must be positive");
    NM_REQUIRE(adapt.min_refresh_gap_days > 0,
               "min_refresh_gap_days must be positive");
    NM_REQUIRE(adapt.backoff_factor >= 1,
               "backoff_factor must be at least 1");
    NM_REQUIRE(adapt.confidence_ramp_days > 0,
               "confidence_ramp_days must be positive");
  }

  // ---- Mined state (the §V mining broadcast). ----
  // Mutable: the drift-adaptation loop may hot-swap a re-mined model.
  mining::SlotPredictor predictor(mining::HabitModel::mine(training),
                                  config.predictor);
  const mining::SpecialApps special = mining::SpecialApps::detect(training);

  OnlineSimResult result;
  sim::PolicyOutcome& out = result.outcome;
  out.policy_name = "netmaster-online";
  out.radio_allowed = IntervalSet{};

  // ---- Advisory whole-horizon plan (§IV, Algorithm 1). ----
  // The event loop below releases deferred transfers greedily at the
  // first real radio opportunity; the knapsack placement lives in the
  // policy path. The same mined model and deferrable classification
  // still feed Algorithm 1 once per run here, so the online path rides
  // the pluggable-solver layer and reports solve stats — without
  // changing a single executed transfer.
  if (config.enable_prediction) {
    IntervalSet plan_active;
    for (int day = 0; day < eval.num_days; ++day) {
      plan_active.add(predictor.predict_day(day).active_slots);
    }
    const std::vector<Interval>& plan_slots = plan_active.intervals();
    std::vector<NetworkActivity> plan_pending;
    for (std::size_t i = 0; i < eval.activities.size(); ++i) {
      if (index.is_deferrable_screen_off(i) &&
          !plan_active.contains(eval.activities[i].start)) {
        plan_pending.push_back(eval.activities[i]);
      }
    }
    if (!plan_slots.empty() && !plan_pending.empty()) {
      const sched::Instance inst = sched::build_instance(
          plan_slots, plan_pending, predictor, config.profit);
      sched::SolverOptions solver_options;
      solver_options.choice = config.solver;
      solver_options.eps = config.eps;
      const sched::OverlapSolution plan = sched::solve_overlapped(
          inst.slots, inst.items, solver_options,
          sched::thread_workspace(), &result.plan_stats);
      result.planned_assignments = plan.assignments.size();
    }
  }

  // ---- Event queue seeding. ----
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  for (int day = 0; day < eval.num_days; ++day) {
    queue.push({day_start(day), EventKind::kMidnight, 0});
  }
  for (const ScreenSession& s : eval.sessions) {
    queue.push({s.begin, EventKind::kScreenOn, 0});
    queue.push({s.end, EventKind::kScreenOff, 0});
  }
  for (std::size_t i = 0; i < eval.activities.size(); ++i) {
    queue.push({eval.activities[i].start, EventKind::kArrival, i});
  }

  // ---- Executive state. ----
  IntervalSet today_slots;  // predicted active slots of the current day
  bool screen_on = false;
  duty::DutyCycler cycler(config.duty);
  bool duty_armed = false;
  TimeMs expected_wake = -1;  // invalidates stale queued probe events
  std::vector<PendingTransfer> pending;

  // ---- Drift-adaptation state (the continued §V mining loop). ----
  // The monitoring component keeps recording during evaluation: each
  // completed day lands in the store and feeds the detector at the
  // midnight tick; an alarm triggers a windowed re-mine from the store.
  mining::DriftDetector detector(adapt.detector);
  RecordStore store;
  std::size_t rec_session = 0;  // store-feed cursors into the eval trace
  std::size_t rec_usage = 0;
  std::size_t rec_activity = 0;
  int next_refresh_day = 0;
  int refresh_gap = adapt.min_refresh_gap_days;
  bool alarm_pending = false;  // alarm raised, refresh not yet adopted
  if (adapt.enable) {
    // Seed the banks with the (sanitized, as the miner sees it)
    // training history, then re-anchor: drift is measured relative to
    // the habits the deployed model was mined from. This keeps every
    // later changepoint estimate in evaluation-day space.
    const fault::SanitizeResult seeded = fault::sanitize_trace(training);
    detector.observe_index(engine::TraceIndex(seeded.trace));
    detector.notify_adapted();
  }

  auto record_completed_day = [&](int d) {
    const TimeMs day_end = day_start(d + 1);
    for (; rec_session < eval.sessions.size() &&
           eval.sessions[rec_session].begin < day_end;
         ++rec_session) {
      Record on;
      on.kind = RecordKind::kScreenOn;
      on.time = eval.sessions[rec_session].begin;
      store.append(on);
      Record off;
      off.kind = RecordKind::kScreenOff;
      off.time = eval.sessions[rec_session].end;
      store.append(off);
    }
    for (; rec_usage < eval.usages.size() &&
           eval.usages[rec_usage].time < day_end;
         ++rec_usage) {
      const AppUsage& u = eval.usages[rec_usage];
      Record r;
      r.kind = RecordKind::kAppForeground;
      r.time = u.time;
      r.app = u.app;
      r.duration = u.duration;
      store.append(r);
    }
    for (; rec_activity < eval.activities.size() &&
           eval.activities[rec_activity].start < day_end;
         ++rec_activity) {
      const NetworkActivity& a = eval.activities[rec_activity];
      Record r;
      r.kind = RecordKind::kNetworkActivity;
      r.time = a.start;
      r.app = a.app;
      r.bytes_down = a.bytes_down;
      r.bytes_up = a.bytes_up;
      r.duration = a.duration;
      r.user_initiated = a.user_initiated;
      r.deferrable = a.deferrable;
      store.append(r);
    }
  };

  // Windowed model refresh from the store. Adopted only when the fresh
  // model clears the same robustness gate the policy path applies —
  // with its confidence ramped by how many post-drift days back it,
  // so a refresh right after the alarm may be (correctly) rejected and
  // retried once more days accumulate.
  auto attempt_refresh = [&](int day) {
    const int changepoint =
        std::clamp(detector.changepoint_day(), 0, day - 1);
    const int start = std::max(changepoint, day - adapt.window_days);
    const fault::SanitizeResult repaired =
        store.to_trace_tolerant(eval.user, day, eval.app_names);
    const engine::TraceIndex seen(repaired.trace);
    mining::HabitModel fresh = mining::HabitModel::mine(seen, start, day);
    fresh.scale_confidence(repaired.report.quality());
    fresh.scale_confidence(
        std::min(1.0, static_cast<double>(day - start) /
                          static_cast<double>(adapt.confidence_ramp_days)));
    if (fresh.training_days() >= config.robustness.min_training_days &&
        fresh.overall_confidence() >= config.robustness.min_confidence) {
      predictor = mining::SlotPredictor(std::move(fresh), config.predictor);
      detector.notify_adapted();
      alarm_pending = false;
      ++result.model_refreshes;
      refresh_gap = adapt.min_refresh_gap_days;
    } else {
      refresh_gap *= adapt.backoff_factor;
    }
    next_refresh_day = day + refresh_gap;
  };

  auto in_slot = [&](TimeMs t) {
    return config.enable_prediction && today_slots.contains(t);
  };

  auto execute = [&](std::size_t activity, TimeMs at, DurationMs duration,
                     TimeMs arrival) {
    const TimeMs release = std::clamp<TimeMs>(
        std::max(at, arrival), arrival, horizon - duration);
    out.transfers.push_back({activity, release, duration});
    if (release > arrival) {
      out.deferral_latency_s.push_back(to_seconds(release - arrival));
    }
  };

  auto release_all_pending = [&](TimeMs at) {
    for (const PendingTransfer& p : pending) {
      execute(p.index, at, p.duration, p.arrival);
    }
    const bool any = !pending.empty();
    pending.clear();
    return any;
  };

  auto arm_duty = [&](TimeMs now) {
    if (!config.enable_duty) {
      duty_armed = false;
      return;
    }
    cycler.reset(now);
    duty_armed = true;
    ++result.radio_switches;  // svc data disable
    expected_wake = cycler.next_wake();
    if (expected_wake < horizon) {
      queue.push({expected_wake, EventKind::kDutyWake, 0});
    }
  };

  // The radio starts down for the night-to-be.
  arm_duty(0);

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    if (ev.time >= horizon) continue;
    ++result.events_processed;

    switch (ev.kind) {
      case EventKind::kMidnight: {
        const int day = day_of(ev.time);
        if (adapt.enable && day > 0) {
          record_completed_day(day - 1);
          detector.observe_day(day - 1, index);
          if (detector.alarmed()) {
            if (!alarm_pending) {
              alarm_pending = true;
              ++result.drift_alarms;
              if (result.first_alarm_day < 0) {
                result.first_alarm_day = detector.alarm_day();
              }
            }
            if (day >= next_refresh_day) attempt_refresh(day);
          }
        }
        today_slots = predictor.predict_day(day).active_slots;
        break;
      }

      case EventKind::kScreenOn: {
        screen_on = true;
        ++result.radio_switches;  // real-time adjustment powers radio
        release_all_pending(ev.time);
        duty_armed = false;  // session owns the radio
        break;
      }

      case EventKind::kScreenOff: {
        screen_on = false;
        arm_duty(ev.time);
        break;
      }

      case EventKind::kArrival: {
        const NetworkActivity& act = eval.activities[ev.index];
        // The precomputed classification agrees with the event-loop
        // screen state: screen edges sort before same-time arrivals, so
        // `screen_on` here equals screen_on_at(act.start).
        if (!index.is_deferrable_screen_off(ev.index)) {
          execute(ev.index, act.start, act.duration, act.start);
          // Wrong-decision check (§VI-B): user-driven traffic outside
          // predicted slots finds the radio down unless the app is
          // special.
          if (act.user_initiated && !screen_on && !in_slot(act.start)) {
            const bool rescued = config.enable_special_apps &&
                                 special.is_special(act.app);
            if (!rescued) ++out.interrupts;
          }
          break;
        }
        // Deferrable, screen off: hold for the next radio opportunity.
        pending.push_back({ev.index, act.start,
                           policy::deferred_duration(act.duration)});
        if (!config.enable_duty && !config.enable_prediction) {
          // Nothing will ever release it: run in place (ablation).
          release_all_pending(act.start);
        }
        break;
      }

      case EventKind::kDutyWake: {
        // Stale timers: only the probe the cycler currently expects
        // counts; earlier re-arms invalidate queued events.
        if (!duty_armed || screen_on || ev.time != expected_wake) break;
        if (in_slot(ev.time)) {
          // A predicted active slot is a radio opportunity in itself:
          // release and let the slot own the radio until it closes.
          release_all_pending(ev.time);
          cycler.notify_activity(ev.time);
        } else {
          const DurationMs window = std::min<DurationMs>(
              config.duty.wake_window_ms, horizon - ev.time);
          const bool productive = release_all_pending(ev.time);
          out.wakes.push_back({ev.time, window, productive});
          if (productive) {
            ++out.duty_releases;
            cycler.notify_activity(ev.time + window);
          } else {
            cycler.advance_fruitless();
          }
        }
        expected_wake = cycler.next_wake();
        if (expected_wake < horizon) {
          queue.push({expected_wake, EventKind::kDutyWake, 0});
        }
        break;
      }
    }
  }
  // Anything still pending at the horizon runs at the last moment.
  release_all_pending(horizon);

  // Dormancy-grace windows for the data switch, as in the policy path.
  engine::RadioTimeline timeline(horizon);
  timeline.allow_transfers(out.transfers, policy::kDormancyGraceMs);
  out.radio_allowed = std::move(timeline).build();

  if (adapt.enable) {
    result.final_drift_score = detector.score();
    out.drift_score = result.final_drift_score;
  }
  return result;
}

}  // namespace netmaster::service
