#include "service/components.hpp"

#include "common/error.hpp"
#include "sched/instance.hpp"

namespace netmaster::service {

MiningComponent::MiningComponent(const RecordStore& store)
    : store_(store) {}

void MiningComponent::subscribe(Listener listener) {
  NM_REQUIRE(listener != nullptr, "listener must be callable");
  listeners_.push_back(std::move(listener));
}

void MiningComponent::retrain(UserId user, int num_days,
                              std::vector<std::string> app_names) {
  // Tolerant path: a store holding damaged monitoring records must
  // degrade the model, not kill the retrain cycle.
  const fault::SanitizeResult repaired =
      store_.to_trace_tolerant(user, num_days, std::move(app_names));
  Broadcast broadcast{mining::HabitModel::mine(repaired.trace),
                      mining::SpecialApps::detect(repaired.trace),
                      repaired.report};
  latest_ = broadcast;
  for (const Listener& listener : listeners_) listener(broadcast);
}

SchedulingComponent::SchedulingComponent(policy::NetMasterConfig config)
    : config_(config), duty_(config.duty) {}

void SchedulingComponent::on_broadcast(
    const MiningComponent::Broadcast& broadcast) {
  predictor_.emplace(broadcast.model, config_.predictor);
  special_ = broadcast.special;
}

RadioCommand SchedulingComponent::set_radio(bool on) {
  if (on != radio_on_) {
    radio_on_ = on;
    ++radio_switches_;
  }
  return on ? RadioCommand::kEnable : RadioCommand::kDisable;
}

RadioCommand SchedulingComponent::on_screen_on(TimeMs now,
                                               AppId foreground_app) {
  // Inside a predicted active slot the radio is on by plan; outside,
  // the special-app check decides (§IV-C.2 "usage outside the
  // predicted slots").
  if (predictor_ && predictor_->is_predicted_active(now)) {
    return set_radio(true);
  }
  const bool special = !config_.enable_special_apps ||
                       !special_ ||
                       special_->is_special(foreground_app);
  return set_radio(special);
}

RadioCommand SchedulingComponent::on_screen_off(TimeMs now) {
  duty_.notify_activity(now);
  // Outside predicted slots the duty cycle takes over (radio down
  // until the next probe); inside them the plan keeps the radio up.
  if (predictor_ && predictor_->is_predicted_active(now)) {
    return set_radio(true);
  }
  return set_radio(false);
}

RadioCommand SchedulingComponent::on_duty_wake(TimeMs now,
                                               bool traffic_detected) {
  if (traffic_detected) {
    duty_.notify_activity(now);
    return set_radio(true);
  }
  duty_.advance_fruitless();
  return set_radio(false);
}

sched::OverlapSolution SchedulingComponent::decide(
    std::span<const Interval> active_slots,
    std::span<const NetworkActivity> pending) const {
  NM_REQUIRE(predictor_.has_value(),
             "decide() requires a mining broadcast first");
  const sched::Instance inst = sched::build_instance(
      active_slots, pending, *predictor_, config_.profit);
  sched::SolverOptions solver_options;
  solver_options.choice = config_.solver;
  solver_options.eps = config_.eps;
  return sched::solve_overlapped(inst.slots, inst.items, solver_options,
                                 sched::thread_workspace(), &last_stats_);
}

NetMasterService::NetMasterService(policy::NetMasterConfig config)
    : config_(config), store_(), monitoring_(store_), mining_(store_),
      scheduling_(config) {
  mining_.subscribe([this](const MiningComponent::Broadcast& b) {
    scheduling_.on_broadcast(b);
  });
}

void NetMasterService::train(const UserTrace& training) {
  monitoring_.observe(training);
  mining_.retrain(training.user, training.num_days, training.app_names);
  training_ = training;
}

sim::SimReport NetMasterService::evaluate(const UserTrace& eval) const {
  NM_REQUIRE(training_.has_value(), "train() must be called first");
  policy::NetMasterPolicy policy(*training_, config_);
  const sim::PolicyOutcome outcome = policy.run(eval);
  return sim::account(eval, outcome, config_.profit.radio);
}

}  // namespace netmaster::service
