#include "service/monitoring.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace netmaster::service {

MonitoringComponent::MonitoringComponent(RecordStore& store,
                                         MonitoringConfig config)
    : store_(store), config_(config) {
  NM_REQUIRE(config.screen_on_sample_ms > 0 &&
                 config.screen_off_sample_ms > 0,
             "sample periods must be positive");
}

std::size_t MonitoringComponent::observe(const UserTrace& trace) {
  trace.validate();
  const std::size_t before = store_.size();

  // Event-triggered records, merged in time order.
  struct Event {
    TimeMs time;
    Record record;
  };
  std::vector<Event> events;
  events.reserve(trace.sessions.size() * 2 + trace.usages.size() +
                 trace.activities.size());

  for (const ScreenSession& s : trace.sessions) {
    events.push_back({s.begin, {RecordKind::kScreenOn, s.begin, -1, 0, 0,
                                0, false, false}});
    events.push_back({s.end, {RecordKind::kScreenOff, s.end, -1, 0, 0, 0,
                              false, false}});
  }
  for (const AppUsage& u : trace.usages) {
    events.push_back({u.time, {RecordKind::kAppForeground, u.time, u.app,
                               0, 0, u.duration, false, false}});
  }
  for (const NetworkActivity& n : trace.activities) {
    events.push_back({n.start,
                      {RecordKind::kNetworkActivity, n.start, n.app,
                       n.bytes_down, n.bytes_up, n.duration,
                       n.user_initiated, n.deferrable}});
  }
  std::stable_sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.time < b.time; });

  // Time-triggered byte-counter samples: walk the timeline, switching
  // the sample period at screen edges. Cumulative counters follow the
  // activity list.
  std::size_t samples = 0;
  {
    const TimeMs horizon = trace.trace_end();
    std::size_t next_activity = 0;
    std::int64_t rx = 0, tx = 0;
    TimeMs t = 0;
    while (t < horizon) {
      const bool on = trace.screen_on_at(t);
      const DurationMs period =
          on ? config_.screen_on_sample_ms : config_.screen_off_sample_ms;
      const TimeMs next = std::min<TimeMs>(t + period, horizon);
      while (next_activity < trace.activities.size() &&
             trace.activities[next_activity].start < next) {
        rx += trace.activities[next_activity].bytes_down;
        tx += trace.activities[next_activity].bytes_up;
        ++next_activity;
      }
      store_.append({RecordKind::kNetworkSample, next, -1, rx, tx, 0,
                     false, false});
      ++samples;
      t = next;
    }
  }
  sample_records_ += samples;

  for (const Event& e : events) {
    store_.append(e.record);
    ++event_records_;
  }
  return store_.size() - before;
}

}  // namespace netmaster::service
