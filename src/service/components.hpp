// Mining and scheduling components plus the NetMasterService facade
// (§V, Fig. 6).
//
// MiningComponent wraps the habit miner: it rebuilds the HabitModel and
// SpecialApps from the RecordStore and broadcasts fresh predictions to
// its listener (the scheduling component) — the paper's hourly
// re-prediction cycle.
//
// SchedulingComponent holds the NetMaster policy configuration
// (ε = 0.1 decision making) and the real-time adjustment state: the
// radio switch (the `svc data enable/disable` analogue) and the duty
// cycler.
//
// NetMasterService wires monitoring → DB → mining → scheduling exactly
// as Fig. 6 draws them, and exposes the end-to-end train/evaluate flow
// used by examples and integration tests.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mining/habits.hpp"
#include "mining/special_apps.hpp"
#include "policy/netmaster.hpp"
#include "service/monitoring.hpp"
#include "service/record_store.hpp"
#include "sim/accounting.hpp"

namespace netmaster::service {

/// Mining component: records -> habit model + special apps, broadcast
/// to subscribers on every retrain.
class MiningComponent {
 public:
  struct Broadcast {
    mining::HabitModel model;
    mining::SpecialApps special;
    /// Repair ledger of the store->trace reconstruction. A non-clean
    /// report means the monitoring layer handed over damaged records
    /// that were repaired (not fatal) before mining.
    fault::SanitizeReport repair;
  };
  using Listener = std::function<void(const Broadcast&)>;

  explicit MiningComponent(const RecordStore& store);

  void subscribe(Listener listener);

  /// Rebuilds the model from the store's records and notifies
  /// subscribers. `num_days`/`app_names` describe the recorded span.
  void retrain(UserId user, int num_days,
               std::vector<std::string> app_names);

  const std::optional<Broadcast>& latest() const { return latest_; }

 private:
  const RecordStore& store_;
  std::vector<Listener> listeners_;
  std::optional<Broadcast> latest_;
};

/// Radio switch states issued by the real-time adjustment (§V-C.2).
enum class RadioCommand { kEnable, kDisable };

/// Scheduling component: decision making + real-time adjustment.
class SchedulingComponent {
 public:
  explicit SchedulingComponent(policy::NetMasterConfig config);

  /// Receives a mining broadcast (fresh model).
  void on_broadcast(const MiningComponent::Broadcast& broadcast);

  bool has_model() const { return predictor_.has_value(); }

  /// Real-time adjustment hooks. Each returns the radio command the
  /// component issues, mirroring the svc data enable/disable child
  /// process of §V-C.
  RadioCommand on_screen_on(TimeMs now, AppId foreground_app);
  RadioCommand on_screen_off(TimeMs now);
  RadioCommand on_duty_wake(TimeMs now, bool traffic_detected);

  /// Decision making: the scheduling plan for pending activities
  /// (delegates to Algorithm 1 through the policy layer's instance
  /// builder, using the configured solver backend). Requires a model.
  sched::OverlapSolution decide(
      std::span<const Interval> active_slots,
      std::span<const NetworkActivity> pending) const;

  /// Solve report of the most recent decide() call (zero-initialized
  /// before the first decision): backend taken, DP cells, bound gap.
  const sched::SolveStats& last_solve_stats() const { return last_stats_; }

  const policy::NetMasterConfig& config() const { return config_; }
  std::size_t radio_switches() const { return radio_switches_; }

 private:
  policy::NetMasterConfig config_;
  std::optional<mining::SlotPredictor> predictor_;
  std::optional<mining::SpecialApps> special_;
  duty::DutyCycler duty_;
  bool radio_on_ = false;
  std::size_t radio_switches_ = 0;
  mutable sched::SolveStats last_stats_;

  RadioCommand set_radio(bool on);
};

/// End-to-end facade: monitor a training trace, retrain, then evaluate
/// a policy run over an evaluation trace.
class NetMasterService {
 public:
  explicit NetMasterService(policy::NetMasterConfig config = {});

  /// Feeds a training trace through monitoring into the DB and
  /// retrains the mining component.
  void train(const UserTrace& training);

  /// Runs the full NetMaster policy over an evaluation trace using the
  /// mined model; requires train() first.
  sim::SimReport evaluate(const UserTrace& eval) const;

  const RecordStore& store() const { return store_; }
  const MiningComponent& mining() const { return mining_; }
  SchedulingComponent& scheduling() { return scheduling_; }

 private:
  policy::NetMasterConfig config_;
  RecordStore store_;
  MonitoringComponent monitoring_;
  MiningComponent mining_;
  SchedulingComponent scheduling_;
  std::optional<UserTrace> training_;
};

}  // namespace netmaster::service
