// The middleware's database (§V, "DB" in Fig. 6) with the §V-A write
// cache: "frequently writing records to flash is energy-inefficient...
// we use 500KB cache in memory to batch multiple writes together."
//
// Records are the four §V-A features (time, app, cellular network,
// screen), appended by the monitoring component and replayed by the
// mining component. The store models the memory-cache/flash split:
// appends land in the cache; when the cache exceeds its capacity it
// flushes to "flash" (an in-memory backing vector plus counters that
// stand in for the storage energy cost).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "fault/sanitize.hpp"
#include "trace/trace.hpp"

namespace netmaster::service {

/// Record kinds, mirroring the §V-A feature groups.
enum class RecordKind : std::uint8_t {
  kScreenOn,
  kScreenOff,
  kAppForeground,   ///< app moved to the foreground (event trigger)
  kNetworkSample,   ///< time-triggered rx/tx byte-counter sample
  kNetworkActivity, ///< reconstructed transfer (start + bytes)
};

/// One monitoring record. Fixed-size by design (what a row in the
/// on-phone SQLite table would be).
struct Record {
  RecordKind kind = RecordKind::kScreenOn;
  TimeMs time = 0;
  AppId app = -1;
  std::int64_t bytes_down = 0;
  std::int64_t bytes_up = 0;
  DurationMs duration = 0;
  bool user_initiated = false;
  bool deferrable = false;

  friend bool operator==(const Record&, const Record&) = default;
};

/// Append-only store with a bounded memory write-cache.
class RecordStore {
 public:
  /// `cache_bytes` is the memory cache capacity (the paper uses 500 KB).
  explicit RecordStore(std::size_t cache_bytes = 500 * 1024);

  /// Appends a record to the cache; flushes to flash when full.
  void append(const Record& record);

  /// Forces any cached records to flash.
  void flush();

  /// All durably-stored records plus whatever is still cached, in
  /// append order. (Reads see the cache — queries must not lose the
  /// most recent events.)
  std::vector<Record> all_records() const;

  std::size_t size() const { return flash_.size() + cache_.size(); }
  std::size_t cached() const { return cache_.size(); }

  /// Number of cache->flash flushes so far (each models one expensive
  /// flash write burst).
  std::size_t flush_count() const { return flush_count_; }
  /// Total bytes pushed to flash.
  std::size_t bytes_flushed() const { return bytes_flushed_; }

  /// Reconstructs a UserTrace (for the mining component) from the
  /// records, given the app table and day count. Throws on records a
  /// valid trace cannot hold (strict path).
  UserTrace to_trace(UserId user, int num_days,
                     std::vector<std::string> app_names) const;

  /// Tolerant reconstruction: runs the same rebuild, then repairs the
  /// result through fault::sanitize_trace instead of throwing. The
  /// repair ledger tells the mining layer how much monitoring data had
  /// to be discarded.
  fault::SanitizeResult to_trace_tolerant(
      UserId user, int num_days,
      std::vector<std::string> app_names) const;

 private:
  /// Shared rebuild; makes no validity promises.
  UserTrace reconstruct(UserId user, int num_days,
                        std::vector<std::string> app_names) const;

  std::size_t cache_capacity_;
  std::vector<Record> cache_;
  std::vector<Record> flash_;
  std::size_t flush_count_ = 0;
  std::size_t bytes_flushed_ = 0;
};

}  // namespace netmaster::service
