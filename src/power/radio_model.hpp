// Cellular radio power model.
//
// Radio energy on 3G/4G is dominated by RRC state residency, not by the
// bits moved: a transfer promotes the radio to the high-power connected
// state (DCH on WCDMA), and after the transfer the radio lingers in
// high-power "tail" states (DCH tail, then FACH) before demoting to
// IDLE. The paper's energy function g(t) is exactly this model, with
// parameters taken from Huang et al. (MobiSys'12) and Qian et al.; we
// expose a WCDMA parameter set (the evaluation ISP is China Unicom
// WCDMA) and an LTE DRX variant mapped onto the same two-tail machine.
//
// `account_transfers` integrates state power over the trajectory induced
// by a set of transfer intervals — the single source of truth for radio
// energy and radio-on time across the simulator, the scheduler's profit
// model, and the oracle baseline.
#pragma once

#include <cstdint>

#include "common/interval.hpp"
#include "common/time.hpp"

namespace netmaster {

/// RRC states of the two-tail machine. On WCDMA these are literally
/// IDLE/FACH/DCH; on LTE, kConnected maps to RRC_CONNECTED continuous
/// reception and kTail1/kTail2 to the long/short DRX tail phases.
enum class RrcState { kIdle, kFach, kDch, kPromo };

/// Parameters of the radio power model. Powers are milliwatts; durations
/// are milliseconds.
struct RadioPowerParams {
  double idle_mw = 0.0;    ///< radio share while fully idle
  double fach_mw = 460.0;  ///< low-speed shared-channel / short-DRX power
  double dch_mw = 800.0;   ///< dedicated-channel / connected power
  double promo_mw = 550.0; ///< power during state promotion

  DurationMs promo_idle_ms = 2000;  ///< IDLE -> DCH promotion delay
  DurationMs promo_fach_ms = 1500;  ///< FACH -> DCH promotion delay
  DurationMs dch_tail_ms = 5000;    ///< DCH inactivity timer (tail 1)
  DurationMs fach_tail_ms = 12000;  ///< FACH inactivity timer (tail 2)

  /// China-Unicom-style WCDMA profile (the paper's testbed carrier).
  static RadioPowerParams wcdma();
  /// LTE profile mapped onto the two-tail machine: fast promotion,
  /// single long high-power tail, short low-power DRX tail.
  static RadioPowerParams lte();

  /// Total tail window after the last transfer before reaching IDLE.
  DurationMs total_tail_ms() const { return dch_tail_ms + fach_tail_ms; }

  /// Throws netmaster::Error when any parameter is out of domain.
  void validate() const;
};

/// Result of integrating the power model over a transfer set.
struct RadioAccounting {
  double energy_j = 0.0;      ///< total radio energy (joules)
  DurationMs radio_on_ms = 0; ///< time in any non-IDLE state
  DurationMs active_ms = 0;   ///< DCH time actually moving data
  DurationMs tail_dch_ms = 0; ///< DCH tail (no data)
  DurationMs tail_fach_ms = 0;///< FACH tail
  DurationMs promo_ms = 0;    ///< time spent promoting
  int promotions = 0;         ///< number of IDLE/FACH -> DCH promotions

  DurationMs tail_ms() const { return tail_dch_ms + tail_fach_ms; }
  /// Fraction of energy spent on tails + promotions rather than data.
  double overhead_fraction() const;
};

/// Integrates the power model over the union of `transfers`, clipping
/// the trailing tail at `horizon_end` (end of the accounting window).
/// Transfers starting during a promotion or while DCH is active continue
/// the connected period without a new promotion; the model shifts each
/// transfer's completion by its promotion delay, as real radios do.
///
/// When `radio_allowed` is non-null it models a policy-controlled data
/// switch (NetMaster's `svc data disable`): inactivity tails survive
/// only while inside the allowed set and are cut — radio straight to
/// IDLE — at its boundaries. Every transfer must lie inside the allowed
/// set; a transfer arriving after a cut always pays a cold promotion.
/// Null means the stock radio: tails always run to completion.
RadioAccounting account_transfers(const IntervalSet& transfers,
                                  const RadioPowerParams& params,
                                  TimeMs horizon_end,
                                  const IntervalSet* radio_allowed = nullptr);

/// The paper's g(t): radio energy of a single isolated transfer of the
/// given duration — promotion from IDLE, DCH for the transfer, then the
/// full two-phase tail. This is the energy *saved* when a screen-off
/// activity is absorbed into an already-on radio period.
double isolated_activity_energy(DurationMs transfer_ms,
                                const RadioPowerParams& params);

/// Marginal energy of extending an already-connected DCH period by
/// `transfer_ms` (no promotion, no extra tail) — the cost of the same
/// transfer when piggybacked onto a user-active slot.
double piggybacked_activity_energy(DurationMs transfer_ms,
                                   const RadioPowerParams& params);

}  // namespace netmaster
