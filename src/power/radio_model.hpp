// Radio power models.
//
// Radio energy on cellular is dominated by RRC state residency, not by
// the bits moved: a transfer promotes the radio to the high-power
// connected state (DCH on WCDMA), and after the transfer the radio
// lingers in high-power "tail" states (DCH tail, then FACH) before
// demoting to IDLE. The paper's energy function g(t) is exactly this
// model, with parameters taken from Huang et al. (MobiSys'12) and Qian
// et al.
//
// The machine is described, not hardwired: `RadioModel` is an N-tier
// state machine — a connected/active state, an ordered chain of up to
// `kMaxRadioTiers` inactivity-tail tiers (each with its own power,
// duration, and re-promotion delay when a transfer arrives inside it),
// a cold IDLE->connected promotion, and an optional association cost
// charged per cold attach (Wi-Fi scan/associate). The historical
// `RadioPowerParams` (WCDMA IDLE/FACH/DCH) is a two-tail instantiation
// and converts implicitly, so the paper profile and all its goldens are
// unchanged. Factory profiles cover WCDMA, LTE CDRX, NR CDRX, and
// Wi-Fi PSM.
//
// `account_transfers` integrates state power over the trajectory induced
// by a set of transfer intervals — the single source of truth for radio
// energy and radio-on time across the simulator, the scheduler's profit
// model, and the oracle baseline.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/interval.hpp"
#include "common/time.hpp"

namespace netmaster {

/// RRC states of the two-tail machine. On WCDMA these are literally
/// IDLE/FACH/DCH; on LTE, kConnected maps to RRC_CONNECTED continuous
/// reception and kTail1/kTail2 to the long/short DRX tail phases.
enum class RrcState { kIdle, kFach, kDch, kPromo };

/// Which physical radio interface a transfer (or scheduler slot) runs
/// on. The co-scheduler assigns each transfer one of these along with
/// its time; accounting keeps an independent state machine per radio.
enum class RadioId : std::uint8_t { kCellular = 0, kWifi = 1 };

constexpr const char* radio_id_name(RadioId id) {
  return id == RadioId::kWifi ? "wifi" : "cellular";
}

/// Technology family of a RadioModel — descriptive only; the accounting
/// never branches on it.
enum class RadioKind : std::uint8_t { kWcdma, kLteCdrx, kNrCdrx, kWifi };

constexpr const char* radio_kind_name(RadioKind kind) {
  switch (kind) {
    case RadioKind::kWcdma: return "wcdma";
    case RadioKind::kLteCdrx: return "lte_cdrx";
    case RadioKind::kNrCdrx: return "nr_cdrx";
    case RadioKind::kWifi: return "wifi";
  }
  return "unknown";
}

/// Maximum inactivity-tail tiers a RadioModel may chain. Four covers
/// every profile in the literature (NR CDRX: inactivity + short DRX +
/// long DRX + release tail) and keeps RadioAccounting a flat struct.
constexpr std::size_t kMaxRadioTiers = 4;

/// One tier of the ordered inactivity-tail chain. After the connected
/// period ends the radio dwells `duration_ms` at `power_mw`, then falls
/// to the next tier (or IDLE after the last). A transfer arriving while
/// the radio is inside this tier pays `promo_ms` to re-promote.
struct TailTier {
  double power_mw = 0.0;
  DurationMs duration_ms = 0;
  DurationMs promo_ms = 0;
};

/// Parameters of the two-tail WCDMA-style power model. Powers are
/// milliwatts; durations are milliseconds. Kept as the compact paper
/// parameterisation; converts implicitly to the generalized RadioModel
/// (tail 0 = DCH tail, tail 1 = FACH tail).
struct RadioPowerParams {
  double idle_mw = 0.0;    ///< radio share while fully idle
  double fach_mw = 460.0;  ///< low-speed shared-channel / short-DRX power
  double dch_mw = 800.0;   ///< dedicated-channel / connected power
  double promo_mw = 550.0; ///< power during state promotion

  DurationMs promo_idle_ms = 2000;  ///< IDLE -> DCH promotion delay
  DurationMs promo_fach_ms = 1500;  ///< FACH -> DCH promotion delay
  DurationMs dch_tail_ms = 5000;    ///< DCH inactivity timer (tail 1)
  DurationMs fach_tail_ms = 12000;  ///< FACH inactivity timer (tail 2)

  /// China-Unicom-style WCDMA profile (the paper's testbed carrier).
  static RadioPowerParams wcdma();
  /// LTE profile mapped onto the two-tail machine: fast promotion,
  /// single long high-power tail, short low-power DRX tail.
  static RadioPowerParams lte();

  /// Total tail window after the last transfer before reaching IDLE.
  DurationMs total_tail_ms() const { return dch_tail_ms + fach_tail_ms; }

  /// Throws netmaster::Error when any parameter is out of domain.
  void validate() const;
};

/// Descriptive N-tier radio power model: connected/active power, a cold
/// IDLE promotion, an ordered inactivity-tail chain, and an optional
/// association cost paid on every cold attach (Wi-Fi scan + associate;
/// zero for cellular). Default-constructed it is the WCDMA profile.
struct RadioModel {
  RadioKind kind = RadioKind::kWcdma;
  double idle_mw = 0.0;     ///< radio share while fully idle
  double active_mw = 800.0; ///< connected power while moving data
  double promo_mw = 550.0;  ///< power during promotions and association
  DurationMs promo_idle_ms = 2000;  ///< IDLE -> connected promotion delay

  /// Association cost charged once per cold attach, before the IDLE
  /// promotion (Wi-Fi scan/associate; 0 disables — cellular stays
  /// camped on the network, so attach is just the RRC promotion).
  double assoc_mw = 0.0;
  DurationMs assoc_ms = 0;

  std::array<TailTier, kMaxRadioTiers> tails = {
      TailTier{800.0, 5000, 0}, TailTier{460.0, 12000, 1500},
      TailTier{}, TailTier{}};
  std::size_t num_tails = 2;

  RadioModel() = default;
  /// Implicit: the paper's two-tail machine is the canonical two-tier
  /// instantiation (tail 0 = DCH tail at dch_mw, re-promotion free;
  /// tail 1 = FACH tail at fach_mw, re-promotion promo_fach_ms).
  RadioModel(const RadioPowerParams& params);  // NOLINT(runtime/explicit)

  /// The paper's WCDMA profile — identical numbers to
  /// RadioPowerParams::wcdma(), bit-for-bit through accounting.
  static RadioModel wcdma();
  /// LTE CDRX: fast promotion, short continuous-reception inactivity
  /// tier, long low-duty DRX tail (same numbers as
  /// RadioPowerParams::lte()).
  static RadioModel lte_cdrx();
  /// NR (5G) CDRX: higher connected power, three-tier tail chain
  /// (inactivity, short DRX, long DRX) with per-tier wake costs.
  static RadioModel nr_cdrx();
  /// Wi-Fi PSM: cheap active state, a single short PSM-exit tail, and a
  /// scan/associate cost charged per cold attach.
  static RadioModel wifi();

  /// Total tail window after the last transfer before reaching IDLE.
  DurationMs total_tail_ms() const {
    DurationMs total = 0;
    for (std::size_t i = 0; i < num_tails; ++i) total += tails[i].duration_ms;
    return total;
  }

  /// Power of a duty-cycle wake probe: network attach without a
  /// dedicated channel — the cheapest non-idle tier (the FACH level on
  /// the two-tail machine), or the active power for tail-less models.
  double probe_mw() const {
    return num_tails > 0 ? tails[num_tails - 1].power_mw : active_mw;
  }

  /// Throws netmaster::Error when any parameter is out of domain:
  /// non-finite or negative powers, negative durations, more tiers than
  /// kMaxRadioTiers, or a non-monotone tail chain (tail powers must not
  /// exceed the active power and must be non-increasing along the
  /// chain — an inactivity chain that heats up is a description bug).
  void validate() const;
};

/// The pair of radio interfaces the multi-radio accountant and the
/// co-scheduler know about, indexed by RadioId.
struct RadioSet {
  RadioModel cellular = RadioModel::wcdma();
  RadioModel wifi = RadioModel::wifi();

  const RadioModel& model(RadioId id) const {
    return id == RadioId::kWifi ? wifi : cellular;
  }
  void validate() const {
    cellular.validate();
    wifi.validate();
  }
};

/// Result of integrating a power model over a transfer set. Tail time
/// is kept per tier (index-aligned with RadioModel::tails); the legacy
/// DCH/FACH names read tiers 0 and 1.
struct RadioAccounting {
  double energy_j = 0.0;      ///< total radio energy (joules)
  DurationMs radio_on_ms = 0; ///< time in any non-IDLE state
  DurationMs active_ms = 0;   ///< connected time actually moving data
  std::array<DurationMs, kMaxRadioTiers> tail_tier_ms = {0, 0, 0, 0};
  DurationMs promo_ms = 0;    ///< time spent promoting
  DurationMs assoc_ms = 0;    ///< time spent in scan/associate
  int promotions = 0;         ///< number of paid promotions
  int associations = 0;       ///< number of paid cold attaches

  DurationMs tail_dch_ms() const { return tail_tier_ms[0]; }
  DurationMs tail_fach_ms() const { return tail_tier_ms[1]; }
  DurationMs tail_ms() const {
    DurationMs total = 0;
    for (const DurationMs t : tail_tier_ms) total += t;
    return total;
  }
  /// Fraction of energy spent on tails + promotions rather than data.
  double overhead_fraction() const;
};

/// Integrates the power model over the union of `transfers`, clipping
/// the trailing tail at `horizon_end` (end of the accounting window).
/// Transfers starting during a promotion or while the connected state
/// is active continue the connected period without a new promotion; the
/// model shifts each transfer's completion by its promotion delay, as
/// real radios do. A cold attach additionally pays the association cost
/// before the promotion when the model has one.
///
/// When `radio_allowed` is non-null it models a policy-controlled data
/// switch (NetMaster's `svc data disable`): inactivity tails survive
/// only while inside the allowed set and are cut — radio straight to
/// IDLE — at its boundaries. Every transfer must lie inside the allowed
/// set; a transfer arriving after a cut always pays a cold promotion.
/// Null means the stock radio: tails always run to completion.
///
/// This is the branchy reference implementation — the differential-fuzz
/// oracle for the vectorized engine::account_columns kernel.
RadioAccounting account_transfers(const IntervalSet& transfers,
                                  const RadioModel& model,
                                  TimeMs horizon_end,
                                  const IntervalSet* radio_allowed = nullptr);

/// The paper's g(t): radio energy of a single isolated transfer of the
/// given duration — cold attach (association + promotion from IDLE),
/// the connected period, then the full tail chain. This is the energy
/// *saved* when a screen-off activity is absorbed into an already-on
/// radio period.
double isolated_activity_energy(DurationMs transfer_ms,
                                const RadioModel& model);

/// Marginal energy of extending an already-connected period by
/// `transfer_ms` (no promotion, no extra tail) — the cost of the same
/// transfer when piggybacked onto a user-active slot.
double piggybacked_activity_energy(DurationMs transfer_ms,
                                   const RadioModel& model);

}  // namespace netmaster
