#include "power/radio_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace netmaster {

namespace {

/// mW * ms -> joules.
constexpr double energy_joules(double mw, DurationMs ms) {
  return mw * static_cast<double>(ms) * 1e-6;
}

constexpr TimeMs kFar = std::numeric_limits<TimeMs>::max() / 4;

/// End of the allowed window containing t; t itself when t is not
/// covered (radio cut immediately); +inf-ish when unrestricted.
TimeMs allowed_until(const IntervalSet* allowed, TimeMs t) {
  if (allowed == nullptr) return kFar;
  const auto& ivs = allowed->intervals();
  const auto it = std::lower_bound(
      ivs.begin(), ivs.end(), t,
      [](const Interval& iv, TimeMs v) { return iv.end <= v; });
  if (it != ivs.end() && it->begin <= t) return it->end;
  return t;
}

}  // namespace

RadioPowerParams RadioPowerParams::wcdma() { return RadioPowerParams{}; }

RadioPowerParams RadioPowerParams::lte() {
  RadioPowerParams p;
  p.idle_mw = 11.0;
  p.fach_mw = 1060.0;   // short-DRX tail power
  p.dch_mw = 1210.0;    // RRC_CONNECTED continuous reception
  p.promo_mw = 1210.0;
  p.promo_idle_ms = 260;
  p.promo_fach_ms = 0;  // DRX -> active needs no RRC promotion
  p.dch_tail_ms = 200;  // continuous-reception inactivity timer
  p.fach_tail_ms = 11400;  // DRX tail before RRC_IDLE
  return p;
}

void RadioPowerParams::validate() const {
  NM_REQUIRE(idle_mw >= 0 && fach_mw >= 0 && dch_mw >= 0 && promo_mw >= 0,
             "power levels must be non-negative");
  NM_REQUIRE(promo_idle_ms >= 0 && promo_fach_ms >= 0,
             "promotion delays must be non-negative");
  NM_REQUIRE(dch_tail_ms >= 0 && fach_tail_ms >= 0,
             "tail timers must be non-negative");
}

RadioModel::RadioModel(const RadioPowerParams& params) {
  kind = RadioKind::kWcdma;
  idle_mw = params.idle_mw;
  active_mw = params.dch_mw;
  promo_mw = params.promo_mw;
  promo_idle_ms = params.promo_idle_ms;
  assoc_mw = 0.0;
  assoc_ms = 0;
  tails[0] = TailTier{params.dch_mw, params.dch_tail_ms, 0};
  tails[1] = TailTier{params.fach_mw, params.fach_tail_ms,
                      params.promo_fach_ms};
  tails[2] = TailTier{};
  tails[3] = TailTier{};
  num_tails = 2;
}

RadioModel RadioModel::wcdma() { return RadioModel(RadioPowerParams::wcdma()); }

RadioModel RadioModel::lte_cdrx() {
  RadioModel m(RadioPowerParams::lte());
  m.kind = RadioKind::kLteCdrx;
  return m;
}

RadioModel RadioModel::nr_cdrx() {
  // 5G NR numbers in the spirit of the 3GPP CDRX power studies: hot
  // connected state, then inactivity -> short DRX -> long DRX before
  // RRC_IDLE, each tier cheaper and slower to wake from than the last.
  RadioModel m;
  m.kind = RadioKind::kNrCdrx;
  m.idle_mw = 15.0;
  m.active_mw = 1650.0;
  m.promo_mw = 1650.0;
  m.promo_idle_ms = 120;
  m.assoc_mw = 0.0;
  m.assoc_ms = 0;
  m.tails[0] = TailTier{1650.0, 100, 0};    // inactivity timer
  m.tails[1] = TailTier{1100.0, 2000, 5};   // short-cycle DRX
  m.tails[2] = TailTier{700.0, 8000, 25};   // long-cycle DRX
  m.tails[3] = TailTier{};
  m.num_tails = 3;
  return m;
}

RadioModel RadioModel::wifi() {
  // Wi-Fi PSM: the active state is far cheaper per millisecond than
  // cellular, the tail is a short PSM-exit linger, but a cold attach
  // pays a scan + associate burst before any data moves.
  RadioModel m;
  m.kind = RadioKind::kWifi;
  m.idle_mw = 10.0;
  m.active_mw = 350.0;
  m.promo_mw = 300.0;
  m.promo_idle_ms = 80;
  m.assoc_mw = 500.0;
  m.assoc_ms = 2500;
  m.tails[0] = TailTier{280.0, 200, 0};  // PSM-exit linger
  m.tails[1] = TailTier{};
  m.tails[2] = TailTier{};
  m.tails[3] = TailTier{};
  m.num_tails = 1;
  return m;
}

void RadioModel::validate() const {
  NM_REQUIRE(std::isfinite(idle_mw) && std::isfinite(active_mw) &&
                 std::isfinite(promo_mw) && std::isfinite(assoc_mw),
             "radio model powers must be finite");
  NM_REQUIRE(idle_mw >= 0 && active_mw >= 0 && promo_mw >= 0 && assoc_mw >= 0,
             "radio model powers must be non-negative");
  NM_REQUIRE(promo_idle_ms >= 0, "promotion delay must be non-negative");
  NM_REQUIRE(assoc_ms >= 0, "association time must be non-negative");
  NM_REQUIRE(num_tails <= kMaxRadioTiers,
             "tail chain exceeds kMaxRadioTiers");
  double prev_mw = active_mw;
  for (std::size_t i = 0; i < num_tails; ++i) {
    const TailTier& tier = tails[i];
    NM_REQUIRE(std::isfinite(tier.power_mw),
               "tail tier power must be finite");
    NM_REQUIRE(tier.power_mw >= 0, "tail tier power must be non-negative");
    NM_REQUIRE(tier.duration_ms >= 0,
               "tail tier duration must be non-negative");
    NM_REQUIRE(tier.promo_ms >= 0,
               "tail tier promotion delay must be non-negative");
    NM_REQUIRE(tier.power_mw <= prev_mw,
               "tail chain power must be non-increasing");
    prev_mw = tier.power_mw;
  }
}

double RadioAccounting::overhead_fraction() const {
  // Everything that is not active transfer time is overhead. Using the
  // time breakdown avoids carrying the parameter set into the result.
  const auto total = static_cast<double>(radio_on_ms);
  if (total <= 0.0) return 0.0;
  return static_cast<double>(tail_ms() + promo_ms + assoc_ms) / total;
}

RadioAccounting account_transfers(const IntervalSet& transfers,
                                  const RadioModel& model,
                                  TimeMs horizon_end,
                                  const IntervalSet* radio_allowed) {
  model.validate();
  RadioAccounting acc;

  // `connected_until` is the end of the current connected period,
  // including the attach/promotion shift applied to each transfer. A
  // sentinel below any valid timestamp marks "never connected yet".
  constexpr TimeMs kNever = std::numeric_limits<TimeMs>::min();
  TimeMs connected_until = kNever;
  const DurationMs total_tail = model.total_tail_ms();

  // Charges the tail chain that ran from `from` until `stop`: the span
  // drains through the tiers in order, each bounded by its own timer.
  const auto charge_tail = [&](TimeMs from, TimeMs stop) {
    DurationMs span = std::max<DurationMs>(stop - from, 0);
    for (std::size_t i = 0; i < model.num_tails; ++i) {
      const DurationMs d = std::min(span, model.tails[i].duration_ms);
      acc.tail_tier_ms[i] += d;
      span -= d;
    }
  };

  for (const Interval& iv : transfers.intervals()) {
    NM_REQUIRE(iv.end <= horizon_end,
               "transfer extends beyond the accounting horizon");
    if (radio_allowed != nullptr) {
      NM_REQUIRE(radio_allowed->contains(iv.begin),
                 "transfer outside the radio-allowed set");
    }
    const DurationMs dur = iv.length();
    TimeMs active_begin = iv.begin;
    DurationMs promo = 0;
    bool cold = false;

    if (connected_until == kNever) {
      cold = true;
    } else if (iv.begin <= connected_until) {
      // Arrives while the connected state is still busy (possibly
      // during a promotion shift): the connected period simply extends.
      active_begin = connected_until;
    } else {
      // The radio was tailing after the previous transfer; the tail
      // survives until the allowed window closes (or forever when
      // unrestricted).
      const TimeMs cut = allowed_until(radio_allowed, connected_until);
      const TimeMs warm_end = connected_until + total_tail;
      const TimeMs tail_stop = std::min({iv.begin, cut, warm_end});
      charge_tail(connected_until, tail_stop);

      if (iv.begin <= cut && iv.begin < warm_end) {
        // Inside some surviving tier: pay that tier's re-promotion.
        TimeMs boundary = connected_until;
        for (std::size_t i = 0; i < model.num_tails; ++i) {
          boundary += model.tails[i].duration_ms;
          if (iv.begin < boundary) {
            promo = model.tails[i].promo_ms;
            break;
          }
        }
      } else {
        // The radio reached IDLE (tail expired or was cut).
        cold = true;
      }
    }

    DurationMs assoc = 0;
    if (cold) {
      promo = model.promo_idle_ms;
      assoc = model.assoc_ms;
      acc.assoc_ms += assoc;
      acc.associations += assoc > 0;
    }
    if (promo > 0) ++acc.promotions;
    acc.promo_ms += promo;
    acc.active_ms += dur;
    connected_until = active_begin + assoc + promo + dur;
  }

  // Trailing tail after the final transfer, clipped at the horizon and
  // the allowed window.
  if (connected_until != kNever && connected_until < horizon_end) {
    const TimeMs cut = allowed_until(radio_allowed, connected_until);
    const TimeMs stop =
        std::min({horizon_end, cut, connected_until + total_tail});
    charge_tail(connected_until, stop);
  }

  acc.radio_on_ms = acc.active_ms + acc.promo_ms + acc.assoc_ms;
  for (std::size_t i = 0; i < model.num_tails; ++i) {
    acc.radio_on_ms += acc.tail_tier_ms[i];
  }
  // Term order matters: active, then the tail chain in order, then
  // promotion, then association. The two-tail profile reproduces the
  // historical sum bit for bit (the association term contributes an
  // exact +0.0 there).
  acc.energy_j = energy_joules(model.active_mw, acc.active_ms);
  for (std::size_t i = 0; i < model.num_tails; ++i) {
    acc.energy_j += energy_joules(model.tails[i].power_mw,
                                  acc.tail_tier_ms[i]);
  }
  acc.energy_j += energy_joules(model.promo_mw, acc.promo_ms);
  acc.energy_j += energy_joules(model.assoc_mw, acc.assoc_ms);
  return acc;
}

double isolated_activity_energy(DurationMs transfer_ms,
                                const RadioModel& model) {
  NM_REQUIRE(transfer_ms >= 0, "transfer duration must be non-negative");
  double energy = energy_joules(model.assoc_mw, model.assoc_ms) +
                  energy_joules(model.promo_mw, model.promo_idle_ms);
  // When the first tail tier runs at connected power (the WCDMA DCH
  // tail), fold it into the active term as one multiply — this is the
  // exact historical expression, kept bit-for-bit.
  std::size_t first = 0;
  if (model.num_tails > 0 && model.tails[0].power_mw == model.active_mw) {
    energy += energy_joules(model.active_mw,
                            transfer_ms + model.tails[0].duration_ms);
    first = 1;
  } else {
    energy += energy_joules(model.active_mw, transfer_ms);
  }
  for (std::size_t i = first; i < model.num_tails; ++i) {
    energy += energy_joules(model.tails[i].power_mw,
                            model.tails[i].duration_ms);
  }
  return energy;
}

double piggybacked_activity_energy(DurationMs transfer_ms,
                                   const RadioModel& model) {
  NM_REQUIRE(transfer_ms >= 0, "transfer duration must be non-negative");
  return energy_joules(model.active_mw, transfer_ms);
}

}  // namespace netmaster
