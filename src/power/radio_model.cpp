#include "power/radio_model.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace netmaster {

namespace {

/// mW * ms -> joules.
constexpr double energy_joules(double mw, DurationMs ms) {
  return mw * static_cast<double>(ms) * 1e-6;
}

constexpr TimeMs kFar = std::numeric_limits<TimeMs>::max() / 4;

/// End of the allowed window containing t; t itself when t is not
/// covered (radio cut immediately); +inf-ish when unrestricted.
TimeMs allowed_until(const IntervalSet* allowed, TimeMs t) {
  if (allowed == nullptr) return kFar;
  const auto& ivs = allowed->intervals();
  const auto it = std::lower_bound(
      ivs.begin(), ivs.end(), t,
      [](const Interval& iv, TimeMs v) { return iv.end <= v; });
  if (it != ivs.end() && it->begin <= t) return it->end;
  return t;
}

}  // namespace

RadioPowerParams RadioPowerParams::wcdma() { return RadioPowerParams{}; }

RadioPowerParams RadioPowerParams::lte() {
  RadioPowerParams p;
  p.idle_mw = 11.0;
  p.fach_mw = 1060.0;   // short-DRX tail power
  p.dch_mw = 1210.0;    // RRC_CONNECTED continuous reception
  p.promo_mw = 1210.0;
  p.promo_idle_ms = 260;
  p.promo_fach_ms = 0;  // DRX -> active needs no RRC promotion
  p.dch_tail_ms = 200;  // continuous-reception inactivity timer
  p.fach_tail_ms = 11400;  // DRX tail before RRC_IDLE
  return p;
}

void RadioPowerParams::validate() const {
  NM_REQUIRE(idle_mw >= 0 && fach_mw >= 0 && dch_mw >= 0 && promo_mw >= 0,
             "power levels must be non-negative");
  NM_REQUIRE(promo_idle_ms >= 0 && promo_fach_ms >= 0,
             "promotion delays must be non-negative");
  NM_REQUIRE(dch_tail_ms >= 0 && fach_tail_ms >= 0,
             "tail timers must be non-negative");
}

double RadioAccounting::overhead_fraction() const {
  // Everything that is not active transfer time is overhead. Using the
  // time breakdown avoids carrying the parameter set into the result.
  const auto total = static_cast<double>(radio_on_ms);
  if (total <= 0.0) return 0.0;
  return static_cast<double>(tail_ms() + promo_ms) / total;
}

RadioAccounting account_transfers(const IntervalSet& transfers,
                                  const RadioPowerParams& params,
                                  TimeMs horizon_end,
                                  const IntervalSet* radio_allowed) {
  params.validate();
  RadioAccounting acc;

  // `connected_until` is the end of the current DCH-active period,
  // including the promotion shift applied to each transfer. A sentinel
  // below any valid timestamp marks "never connected yet".
  constexpr TimeMs kNever = std::numeric_limits<TimeMs>::min();
  TimeMs connected_until = kNever;

  // Charges the tail that ran from `connected_until` until `stop`
  // (bounded by the tail timers themselves).
  const auto charge_tail = [&](TimeMs from, TimeMs stop) {
    const DurationMs span = std::max<DurationMs>(stop - from, 0);
    const DurationMs dch = std::min(span, params.dch_tail_ms);
    acc.tail_dch_ms += dch;
    acc.tail_fach_ms += std::min(span - dch, params.fach_tail_ms);
  };

  for (const Interval& iv : transfers.intervals()) {
    NM_REQUIRE(iv.end <= horizon_end,
               "transfer extends beyond the accounting horizon");
    if (radio_allowed != nullptr) {
      NM_REQUIRE(radio_allowed->contains(iv.begin),
                 "transfer outside the radio-allowed set");
    }
    const DurationMs dur = iv.length();
    TimeMs active_begin = iv.begin;
    DurationMs promo = 0;

    if (connected_until == kNever) {
      promo = params.promo_idle_ms;
    } else if (iv.begin <= connected_until) {
      // Arrives while DCH is still busy (possibly during a promotion
      // shift): the connected period simply extends.
      active_begin = connected_until;
    } else {
      // The radio was tailing after the previous transfer; the tail
      // survives until the allowed window closes (or forever when
      // unrestricted).
      const TimeMs cut = allowed_until(radio_allowed, connected_until);
      const TimeMs warm_dch_end = connected_until + params.dch_tail_ms;
      const TimeMs warm_fach_end = warm_dch_end + params.fach_tail_ms;
      const TimeMs tail_stop =
          std::min({iv.begin, cut, warm_fach_end});
      charge_tail(connected_until, tail_stop);

      if (iv.begin <= cut && iv.begin < warm_dch_end) {
        // Still in the DCH tail: no promotion.
      } else if (iv.begin <= cut && iv.begin < warm_fach_end) {
        promo = params.promo_fach_ms;
      } else {
        // The radio reached IDLE (tail expired or was cut).
        promo = params.promo_idle_ms;
      }
    }

    if (promo > 0) ++acc.promotions;
    acc.promo_ms += promo;
    acc.active_ms += dur;
    connected_until = active_begin + promo + dur;
  }

  // Trailing tail after the final transfer, clipped at the horizon and
  // the allowed window.
  if (connected_until != kNever && connected_until < horizon_end) {
    const TimeMs cut = allowed_until(radio_allowed, connected_until);
    const TimeMs stop = std::min(
        {horizon_end, cut,
         connected_until + params.dch_tail_ms + params.fach_tail_ms});
    charge_tail(connected_until, stop);
  }

  acc.radio_on_ms =
      acc.active_ms + acc.tail_dch_ms + acc.tail_fach_ms + acc.promo_ms;
  acc.energy_j = energy_joules(params.dch_mw, acc.active_ms) +
                 energy_joules(params.dch_mw, acc.tail_dch_ms) +
                 energy_joules(params.fach_mw, acc.tail_fach_ms) +
                 energy_joules(params.promo_mw, acc.promo_ms);
  return acc;
}

double isolated_activity_energy(DurationMs transfer_ms,
                                const RadioPowerParams& params) {
  NM_REQUIRE(transfer_ms >= 0, "transfer duration must be non-negative");
  return energy_joules(params.promo_mw, params.promo_idle_ms) +
         energy_joules(params.dch_mw, transfer_ms + params.dch_tail_ms) +
         energy_joules(params.fach_mw, params.fach_tail_ms);
}

double piggybacked_activity_energy(DurationMs transfer_ms,
                                   const RadioPowerParams& params) {
  NM_REQUIRE(transfer_ms >= 0, "transfer duration must be non-negative");
  return energy_joules(params.dch_mw, transfer_ms);
}

}  // namespace netmaster
