#include "channel/signal_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace netmaster::channel {

namespace {

/// Diurnal quality offset: best in the small hours, dipping through
/// commute and office hours.
double diurnal_shape(TimeMs t) {
  const double hour = static_cast<double>(time_of_day(t)) /
                      static_cast<double>(kMsPerHour);
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  // Minimum around 18:00, maximum around 04:00 local.
  return std::cos(kTwoPi * (hour - 4.0) / 24.0);
}

}  // namespace

void SignalConfig::validate() const {
  NM_REQUIRE(base_quality >= 0.0 && base_quality <= 1.0,
             "base quality must be in [0,1]");
  NM_REQUIRE(diurnal_amplitude >= 0.0 && noise_sigma >= 0.0,
             "amplitudes must be non-negative");
  NM_REQUIRE(coherence_ms > 0, "coherence time must be positive");
}

SignalTrace SignalTrace::generate(const SignalConfig& config,
                                  TimeMs horizon) {
  config.validate();
  NM_REQUIRE(horizon > 0, "horizon must be positive");

  SignalTrace trace;
  trace.horizon_ = horizon;
  trace.coherence_ = config.coherence_ms;
  const auto segments = static_cast<std::size_t>(
      (horizon + config.coherence_ms - 1) / config.coherence_ms);
  trace.segments_.reserve(segments);

  Rng rng(derive_seed(config.seed, 0x516AA1));
  // AR(1) slow fading so adjacent segments correlate.
  double fading = 0.0;
  constexpr double kRho = 0.8;
  for (std::size_t s = 0; s < segments; ++s) {
    const TimeMs mid = static_cast<TimeMs>(s) * config.coherence_ms +
                       config.coherence_ms / 2;
    fading = kRho * fading +
             std::sqrt(1.0 - kRho * kRho) *
                 rng.normal(0.0, config.noise_sigma);
    const double q = config.base_quality +
                     config.diurnal_amplitude * diurnal_shape(mid) +
                     fading;
    trace.segments_.push_back(std::clamp(q, 0.0, 1.0));
  }
  return trace;
}

double SignalTrace::quality_at(TimeMs t) const {
  NM_REQUIRE(t >= 0 && t < horizon_, "time outside the signal trace");
  const auto idx = static_cast<std::size_t>(t / coherence_);
  return segments_[std::min(idx, segments_.size() - 1)];
}

double SignalTrace::mean_quality(TimeMs begin, TimeMs end) const {
  NM_REQUIRE(begin >= 0 && end <= horizon_ && begin <= end,
             "window outside the signal trace");
  if (begin == end) return quality_at(std::min(begin, horizon_ - 1));
  double weighted = 0.0;
  TimeMs t = begin;
  while (t < end) {
    const TimeMs seg_end =
        std::min<TimeMs>((t / coherence_ + 1) * coherence_, end);
    weighted += quality_at(t) * static_cast<double>(seg_end - t);
    t = seg_end;
  }
  return weighted / static_cast<double>(end - begin);
}

double SignalTrace::power_multiplier(double quality) {
  NM_REQUIRE(quality >= 0.0 && quality <= 1.0,
             "quality must be in [0,1]");
  // 1x at quality 1, 3.5x at quality 0 (convex: the edge hurts most).
  return 1.0 + 2.5 * (1.0 - quality) * (1.0 - quality);
}

double SignalTrace::rate_multiplier(double quality) {
  NM_REQUIRE(quality >= 0.0 && quality <= 1.0,
             "quality must be in [0,1]");
  return 0.25 + 0.75 * quality;
}

double signal_energy_penalty_j(
    const std::vector<sim::ExecutedTransfer>& transfers,
    const SignalTrace& signal, const RadioModel& model) {
  double penalty = 0.0;
  for (const sim::ExecutedTransfer& t : transfers) {
    if (t.duration <= 0) continue;
    const double q = signal.mean_quality(
        t.start, std::min(t.start + t.duration, signal.horizon()));
    const double mult = SignalTrace::power_multiplier(q);
    penalty += model.active_mw * static_cast<double>(t.duration) * 1e-6 *
               (mult - 1.0);
  }
  return penalty;
}

std::size_t apply_channel_awareness(sim::PolicyOutcome& outcome,
                                    const UserTrace& eval,
                                    const SignalTrace& signal,
                                    DurationMs window_ms,
                                    const RadioModel& model) {
  NM_REQUIRE(window_ms >= 0, "window must be non-negative");
  model.validate();
  const TimeMs horizon = eval.trace_end();
  NM_REQUIRE(signal.horizon() >= horizon,
             "signal trace must cover the evaluation horizon");
  if (window_ms == 0) return 0;

  // Order transfers by executed start and cut them into batches:
  // consecutive transfers whose gap is below a promotion + dormancy
  // grace share one radio power-up.
  std::vector<std::size_t> order(outcome.transfers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return outcome.transfers[a].start < outcome.transfers[b].start;
  });
  const DurationMs reach = model.promo_idle_ms + 3000;

  // Per-batch signal-power cost of a shift delta.
  const auto batch_cost = [&](const std::vector<std::size_t>& batch,
                              DurationMs delta) {
    double cost = 0.0;
    for (std::size_t i : batch) {
      const sim::ExecutedTransfer& t = outcome.transfers[i];
      const TimeMs begin = t.start + delta;
      const double q = signal.mean_quality(
          begin, std::min<TimeMs>(begin + t.duration, horizon));
      cost += model.active_mw * static_cast<double>(t.duration) * 1e-6 *
              SignalTrace::power_multiplier(q);
    }
    return cost;
  };

  std::size_t moved = 0;
  std::size_t pos = 0;
  while (pos < order.size()) {
    // Collect one batch.
    std::vector<std::size_t> batch{order[pos]};
    TimeMs batch_end = outcome.transfers[order[pos]].start +
                       outcome.transfers[order[pos]].duration;
    std::size_t next = pos + 1;
    while (next < order.size() &&
           outcome.transfers[order[next]].start <= batch_end + reach) {
      batch.push_back(order[next]);
      batch_end = std::max<TimeMs>(
          batch_end, outcome.transfers[order[next]].start +
                         outcome.transfers[order[next]].duration);
      ++next;
    }
    pos = next;

    // Only batches made purely of policy-deferred transfers may move
    // (an in-place member pins the batch: it is user-driven or a
    // real-time release).
    bool movable = true;
    TimeMs min_delta = -window_ms;  // earliest allowed shift
    TimeMs max_delta = window_ms;
    for (std::size_t i : batch) {
      const sim::ExecutedTransfer& t = outcome.transfers[i];
      const NetworkActivity& act = eval.activities[t.activity_index];
      if (t.start == act.start) {
        movable = false;
        break;
      }
      if (t.start > act.start) {
        // Forward deferral: never move before the arrival.
        min_delta = std::max<TimeMs>(min_delta, act.start - t.start);
      }
      min_delta = std::max<TimeMs>(min_delta, -t.start);
      max_delta = std::min<TimeMs>(
          max_delta, horizon - (t.start + t.duration));
    }
    if (!movable || batch.empty() || min_delta > max_delta) continue;

    // Scan candidate shifts on the signal's coherence grid.
    const double current = batch_cost(batch, 0);
    double best_cost = current;
    DurationMs best_delta = 0;
    const DurationMs step = signal.coherence();
    for (DurationMs delta = (min_delta / step) * step; delta <= max_delta;
         delta += step) {
      const DurationMs d = std::clamp(delta, min_delta, max_delta);
      const double cost = batch_cost(batch, d);
      if (cost < best_cost - 1e-9) {
        best_cost = cost;
        best_delta = d;
      }
    }
    // Shift only for a meaningful gain (> 2% of the batch's cost).
    if (best_delta != 0 && best_cost < current * 0.98) {
      for (std::size_t i : batch) {
        sim::ExecutedTransfer& t = outcome.transfers[i];
        t.start += best_delta;
        if (outcome.radio_allowed.has_value()) {
          outcome.radio_allowed->add(t.start, t.start + t.duration);
        }
        ++moved;
      }
    }
  }
  return moved;
}

}  // namespace netmaster::channel
