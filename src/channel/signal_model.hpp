// Cellular signal-strength substrate — the paper's future-work hook.
//
// §VI-A notes that NetMaster does not improve *peak* rates because "the
// peak rate is determined by the channel state, no matter what
// scheduling scheme is used. We include this part in our future work."
// This module supplies that missing piece: a deterministic synthetic
// signal-quality trace (diurnal shape + slow fading, piecewise constant
// over a coherence time), the standard energy/rate consequences of
// signal quality (transmitting at the cell edge costs several times the
// power — the Bartendr observation), and a channel-aware post-pass that
// nudges policy-deferred transfers toward good-signal moments.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "power/radio_model.hpp"
#include "sim/outcome.hpp"
#include "trace/trace.hpp"

namespace netmaster::channel {

/// Parameters of the synthetic signal trace. Quality lives in [0, 1]
/// (0 = cell edge, 1 = excellent).
struct SignalConfig {
  double base_quality = 0.65;
  /// Diurnal swing: stronger at night (empty cell), weaker during
  /// commute/office hours (load + indoor attenuation).
  double diurnal_amplitude = 0.15;
  /// Slow-fading noise per coherence segment.
  double noise_sigma = 0.12;
  /// Length of a piecewise-constant quality segment.
  DurationMs coherence_ms = 10 * kMsPerMinute;
  std::uint64_t seed = 0;

  void validate() const;
};

/// Deterministic piecewise-constant signal-quality trace.
class SignalTrace {
 public:
  /// Generates quality over [0, horizon).
  static SignalTrace generate(const SignalConfig& config, TimeMs horizon);

  double quality_at(TimeMs t) const;
  /// Mean quality over [begin, end) (length-weighted over segments).
  double mean_quality(TimeMs begin, TimeMs end) const;

  TimeMs horizon() const { return horizon_; }
  DurationMs coherence() const { return coherence_; }

  /// Transmit-power multiplier relative to good signal: ~1x at
  /// excellent quality, ~3.5x at the cell edge (Bartendr-style).
  static double power_multiplier(double quality);
  /// Achievable-rate multiplier: ~1x at excellent quality, ~0.25x at
  /// the cell edge.
  static double rate_multiplier(double quality);

 private:
  TimeMs horizon_ = 0;
  DurationMs coherence_ = 1;
  std::vector<double> segments_;  // quality per coherence segment
};

/// Extra active-state energy a transfer schedule pays for signal
/// conditions: for each executed transfer, active-state energy scaled
/// by (power_multiplier(mean quality during the transfer) − 1). Added
/// on top of the base RRC accounting, which assumes nominal signal.
/// Takes any RadioModel (RadioPowerParams converts implicitly).
double signal_energy_penalty_j(
    const std::vector<sim::ExecutedTransfer>& transfers,
    const SignalTrace& signal, const RadioModel& model);

/// Channel-aware post-pass (the future-work extension), Bartendr
/// style: the executed schedule is decomposed into *batches* (transfers
/// sharing one radio power-up: gaps below promotion+grace), and each
/// batch consisting purely of policy-deferred transfers may shift as a
/// unit by up to ±window — never before any member's arrival, always
/// inside the horizon — to the nearby position with the least
/// signal-power cost. Shifting whole batches preserves the RRC
/// structure exactly (same promotions, same tails), so every move is a
/// pure win. Returns the number of transfers moved.
std::size_t apply_channel_awareness(sim::PolicyOutcome& outcome,
                                    const UserTrace& eval,
                                    const SignalTrace& signal,
                                    DurationMs window_ms,
                                    const RadioModel& model);

}  // namespace netmaster::channel
