#include "policy/batch.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace netmaster::policy {

BatchPolicy::BatchPolicy(std::size_t max_batch) : max_batch_(max_batch) {}

std::string BatchPolicy::name() const {
  std::ostringstream os;
  os << "batch(" << max_batch_ << ")";
  return os.str();
}

sim::PolicyOutcome BatchPolicy::run(const engine::TraceIndex& eval) const {
  sim::PolicyOutcome outcome;
  outcome.policy_name = name();
  const TimeMs horizon = eval.horizon();
  const mem::ActivityColumns& activities = eval.activities();
  const mem::SessionColumns& sessions = eval.sessions();

  struct Pending {
    std::size_t index;
    TimeMs arrival;
    DurationMs duration;
  };
  std::vector<Pending> queue;

  auto flush = [&](TimeMs at) {
    for (const Pending& p : queue) {
      const DurationMs dur = deferred_duration(p.duration);
      const TimeMs release = clamp_release(at, dur, horizon, p.arrival);
      if (release > p.arrival) {
        outcome.transfers.push_back({p.index, release, dur});
        outcome.blocked.add(p.arrival, release);
        outcome.deferral_latency_s.push_back(
            to_seconds(release - p.arrival));
      } else {
        outcome.transfers.push_back({p.index, p.arrival, p.duration});
      }
    }
    queue.clear();
  };

  // Screen-on edges flush the queue: iterate activities and sessions in
  // time order.
  auto session = sessions.begin();

  for (std::size_t i = 0; i < activities.size(); ++i) {
    const NetworkActivity act = activities[i];
    // Flush at any screen-on edge preceding this activity.
    while (session != sessions.end() && session->begin <= act.start) {
      flush(session->begin);
      ++session;
    }
    if (!eval.is_deferrable_screen_off(i) || max_batch_ <= 1) {
      outcome.transfers.push_back({i, act.start, act.duration});
      continue;
    }
    queue.push_back({i, act.start, act.duration});
    if (queue.size() >= max_batch_) flush(act.start);
  }
  // Remaining queue flushes at the next screen-on edge, else at the
  // horizon.
  if (!queue.empty()) {
    const TimeMs flush_at =
        session != sessions.end() ? session->begin : horizon;
    flush(flush_at);
  }
  return outcome;
}

}  // namespace netmaster::policy
