// Batch-N aggregation ([2]): screen-off deferrable activities are held
// in a queue; when N are pending they are all released together. The
// queue also flushes when the user turns the screen on (the radio comes
// up anyway) and at the end of the horizon. §VI-C sweeps N from 0 to 10
// (Fig. 9); N <= 1 degenerates to the baseline for this traffic class.
#pragma once

#include <cstddef>

#include "policy/policy.hpp"

namespace netmaster::policy {

class BatchPolicy final : public Policy {
 public:
  explicit BatchPolicy(std::size_t max_batch);

  using Policy::run;

  std::string name() const override;
  sim::PolicyOutcome run(const engine::TraceIndex& eval) const override;

  std::size_t max_batch() const { return max_batch_; }

 private:
  std::size_t max_batch_;
};

}  // namespace netmaster::policy
