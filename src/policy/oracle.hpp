// Clairvoyant oracle: the offline optimum the paper uses as ground
// truth ("we apply off-line analysis to derive the optimal results for
// each volunteer", §VI-A). Knowing the actual screen sessions, it packs
// every deferrable screen-off activity inside the nearest real screen
// session with spare capacity, so the radio never powers up for
// background traffic alone. No duty cycling, no interrupts.
#pragma once

#include "policy/policy.hpp"
#include "sched/instance.hpp"

namespace netmaster::policy {

class OraclePolicy final : public Policy {
 public:
  /// `profit` supplies the capacity model (Eq. 5 bandwidth); the oracle
  /// itself needs no prediction.
  explicit OraclePolicy(sched::ProfitConfig profit = {});

  using Policy::run;

  std::string name() const override { return "oracle"; }
  sim::PolicyOutcome run(const engine::TraceIndex& eval) const override;

 private:
  sched::ProfitConfig profit_;
};

}  // namespace netmaster::policy
