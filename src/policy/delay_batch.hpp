// Combined "naive delay and batch" ([10]/[2], the Fig. 7 comparison
// arms): screen-off deferrable activities queue up and the whole queue
// is released when the oldest entry has waited the configured interval
// — or earlier, when the user turns the screen on and the radio comes
// up anyway. This is the strongest fixed-interval baseline the paper
// compares against (22.54% average energy saving).
#pragma once

#include "common/time.hpp"
#include "policy/policy.hpp"

namespace netmaster::policy {

class DelayBatchPolicy final : public Policy {
 public:
  explicit DelayBatchPolicy(DurationMs interval_ms);

  using Policy::run;

  std::string name() const override;
  sim::PolicyOutcome run(const engine::TraceIndex& eval) const override;

  DurationMs interval_ms() const { return interval_ms_; }

 private:
  DurationMs interval_ms_;
};

}  // namespace netmaster::policy
