#include "policy/netmaster.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "engine/radio_timeline.hpp"
#include "obs/metrics.hpp"
#include "policy/delay_batch.hpp"
#include "sched/overlap.hpp"
#include "sched/solver.hpp"

namespace netmaster::policy {

namespace {

/// Decision/degradation telemetry, resolved once per process.
struct NetMasterMetrics {
  obs::Counter& models_mined;
  obs::Counter& degraded_models;
  obs::Counter& runs;
  obs::Counter& fallback_taken;
  obs::Counter& interrupts;
  obs::Counter& duty_releases;
  obs::Counter& drift_fallbacks;

  static NetMasterMetrics& get() {
    obs::Registry& reg = obs::Registry::global();
    static NetMasterMetrics m{
        reg.counter("policy.netmaster.models_mined"),
        reg.counter("policy.netmaster.degraded_models"),
        reg.counter("policy.netmaster.runs"),
        reg.counter("policy.netmaster.fallback_taken"),
        reg.counter("policy.netmaster.interrupts"),
        reg.counter("policy.netmaster.duty_releases"),
        // Degradations *caused* by drift (the model alone would have
        // cleared the gate) — grouped with the detector's metrics.
        reg.counter("mining.drift.fallbacks"),
    };
    return m;
  }
};

/// Releases a fallback activity at the radio opportunity `at` (never
/// before its arrival, always inside the horizon).
void release_fallback(sim::PolicyOutcome& outcome,
                      const std::vector<NetworkActivity>& pending,
                      const std::vector<std::size_t>& pending_index,
                      std::size_t p, TimeMs at, TimeMs horizon) {
  const NetworkActivity& act = pending[p];
  const DurationMs dur = deferred_duration(act.duration);
  const TimeMs release = std::clamp<TimeMs>(
      std::max(at, act.start), act.start, horizon - dur);
  if (release > act.start) {
    outcome.transfers.push_back({pending_index[p], release, dur});
    outcome.deferral_latency_s.push_back(to_seconds(release - act.start));
  } else {
    outcome.transfers.push_back({pending_index[p], act.start, act.duration});
  }
}

}  // namespace

NetMasterPolicy::NetMasterPolicy(const UserTrace& training,
                                 NetMasterConfig config)
    : config_(config),
      predictor_(mining::HabitModel::mine(training), config.predictor),
      special_(mining::SpecialApps::detect(training)) {
  validate_and_gate();
}

NetMasterPolicy::NetMasterPolicy(mining::HabitModel model,
                                 mining::SpecialApps special,
                                 NetMasterConfig config)
    : config_(config),
      predictor_(std::move(model), config.predictor),
      special_(std::move(special)) {
  validate_and_gate();
}

void NetMasterPolicy::validate_and_gate() {
  const NetMasterConfig& config = config_;
  NM_REQUIRE(config.eps > 0.0 && config.eps < 1.0,
             "eps must be in (0, 1)");
  NM_REQUIRE(config.robustness.min_confidence >= 0.0 &&
                 config.robustness.min_confidence <= 1.0,
             "min_confidence must be a probability");
  NM_REQUIRE(config.robustness.fallback_interval_ms > 0,
             "fallback interval must be positive");
  NM_REQUIRE(std::isfinite(config.robustness.drift_score) &&
                 config.robustness.drift_score >= 0.0 &&
                 config.robustness.drift_score <= 1.0,
             "drift_score must be in [0, 1]");
  NM_REQUIRE(std::isfinite(config.robustness.drift_confidence_gain) &&
                 config.robustness.drift_confidence_gain >= 0.0,
             "drift_confidence_gain must be finite and non-negative");
  NM_REQUIRE(config.wifi_presence_delta >= 0.0 &&
                 config.wifi_presence_delta <= 1.0,
             "wifi_presence_delta must be a probability");
  if (config.enable_wifi_offload) {
    config.profit.wifi.validate();
  }

  // Degradation gate: refuse to act on a model mined from too little
  // or too damaged history. The reason string is surfaced through
  // PolicyOutcome / SimReport so fleet reports show which users ran
  // degraded.
  const mining::HabitModel& model = predictor_.model();
  // Drift discounts the model before the gate. The discount factor is
  // exactly 1.0 at drift 0, so the stationary gate stays bitwise what
  // it always was.
  const double drift_discount =
      1.0 - std::min(1.0, config.robustness.drift_confidence_gain *
                              config.robustness.drift_score);
  const double effective_confidence =
      model.overall_confidence() * drift_discount;
  std::ostringstream why;
  bool drift_degraded = false;
  if (model.training_days() < config.robustness.min_training_days) {
    why << "training days " << model.training_days() << " < "
        << config.robustness.min_training_days;
  } else if (effective_confidence < config.robustness.min_confidence) {
    why << "model confidence " << effective_confidence << " < "
        << config.robustness.min_confidence << " (data quality "
        << model.data_quality() << ")";
    if (config.robustness.drift_score > 0.0) {
      why << " (drift score " << config.robustness.drift_score << ")";
      drift_degraded =
          model.overall_confidence() >= config.robustness.min_confidence;
    }
  }
  degraded_reason_ = why.str();
  NetMasterMetrics& metrics = NetMasterMetrics::get();
  metrics.models_mined.add(1);
  if (degraded()) metrics.degraded_models.add(1);
  if (drift_degraded) metrics.drift_fallbacks.add(1);
}

sim::PolicyOutcome NetMasterPolicy::run(
    const engine::TraceIndex& eval) const {
  NetMasterMetrics& metrics = NetMasterMetrics::get();
  metrics.runs.add(1);
  if (degraded()) {
    // Safe fallback: the strongest model-free baseline. Keep this
    // policy's name on the outcome so grids stay keyed consistently,
    // but flag the path so reports can tell the runs apart.
    metrics.fallback_taken.add(1);
    DelayBatchPolicy fallback(config_.robustness.fallback_interval_ms);
    sim::PolicyOutcome outcome = fallback.run(eval);
    outcome.policy_name = name();
    outcome.path = sim::ExecutionPath::kDegradedFallback;
    outcome.degraded_reason = degraded_reason_;
    outcome.drift_score = config_.robustness.drift_score;
    return outcome;
  }

  sim::PolicyOutcome outcome;
  outcome.policy_name = name();
  outcome.drift_score = config_.robustness.drift_score;
  const TimeMs horizon = eval.horizon();
  const mem::SessionColumns& sessions = eval.sessions();
  const mem::ActivityColumns& activities = eval.activities();
  const std::size_t num_sessions = sessions.size();

  // NetMaster drives the data switch ("turns off radio whenever
  // necessary", §VI-A): after each transfer the radio keeps a short
  // dormancy grace, then the real-time adjustment forces it down —
  // during screen-off time *and* inside user active slots. The timeline
  // collects the allowed windows (slots when slot-powered, per-transfer
  // grace at the end of run()); the accountant adds the transfers and
  // duty probes themselves.
  engine::RadioTimeline timeline(horizon);

  // ---- Prediction: the user-active slot set U over the horizon. ----
  IntervalSet active;
  if (config_.enable_prediction) {
    for (int day = 0; day < eval.num_days(); ++day) {
      active.add(predictor_.predict_day(day).active_slots);
    }
  }
  const std::vector<Interval>& slot_windows = active.intervals();
  if (config_.slot_powered_radio) timeline.allow_windows(slot_windows);

  // ---- Wi-Fi presence prediction (multi-radio co-scheduling). ----
  // The habit model's high-probability hours proxy for being at a
  // familiar AP; each merged window becomes an offload knapsack.
  IntervalSet wifi_presence;
  if (config_.enable_wifi_offload && config_.enable_prediction) {
    for (int day = 0; day < eval.num_days(); ++day) {
      wifi_presence.add(
          predictor_.presence_windows(day, config_.wifi_presence_delta));
    }
  }
  const std::vector<Interval>& wifi_windows = wifi_presence.intervals();

  // ---- Classification pass. ----
  // Deferrable screen-off activities are held for a real radio-on
  // opportunity; everything else runs untouched.
  std::vector<NetworkActivity> pending;     // outside U: knapsack path
  std::vector<std::size_t> pending_index;   // -> eval activity index
  for (std::size_t i = 0; i < activities.size(); ++i) {
    const NetworkActivity act = activities[i];
    const bool in_slot = active.contains(act.start);
    if (eval.is_deferrable_screen_off(i)) {
      if (!in_slot) {
        pending.push_back(act);
        pending_index.push_back(i);
        continue;
      }
      if (config_.slot_powered_radio) {
        // Fig. 10c configuration: traffic inside U runs untouched on
        // the already-powered radio.
        outcome.transfers.push_back({i, act.start, act.duration});
        continue;
      }
      // Inside a predicted active slot: the user is expected soon. Hold
      // the transfer for the next real session; if the user never shows
      // before the slot closes, run at the slot boundary.
      TimeMs release = eval.next_session_begin(act.start, horizon);
      const auto slot = std::lower_bound(
          slot_windows.begin(), slot_windows.end(), act.start,
          [](const Interval& s, TimeMs t) { return s.end <= t; });
      NM_ASSERT(slot != slot_windows.end() && slot->contains(act.start),
                "active-set lookup must find the containing slot");
      const DurationMs dur = deferred_duration(act.duration);
      release = std::min(release, slot->end);
      release = std::clamp<TimeMs>(release, act.start, horizon - dur);
      if (release > act.start) {
        outcome.transfers.push_back({i, release, dur});
        outcome.deferral_latency_s.push_back(
            to_seconds(release - act.start));
      } else {
        outcome.transfers.push_back({i, act.start, act.duration});
      }
      continue;
    }

    outcome.transfers.push_back({i, act.start, act.duration});
    // Wrong-decision accounting (§VI-B): a user-driven transfer outside
    // the predicted slots finds the radio off; the special-app check of
    // the real-time adjustment rescues it unless disabled or the app is
    // not special.
    if (act.user_initiated && !in_slot) {
      const bool rescued = config_.enable_special_apps &&
                           special_.is_special(act.app);
      if (!rescued) ++outcome.interrupts;
    }
  }

  // ---- Knapsack scheduling over the pending set (§IV, Algorithm 1). ----
  std::map<std::size_t, int> assignment;  // pending idx -> slot index
  if ((!slot_windows.empty() || !wifi_windows.empty()) && !pending.empty()) {
    // With no Wi-Fi windows the multi-radio builder reduces exactly to
    // build_instance; call the single-radio builder anyway so the
    // baseline path stays byte-for-byte what it always was.
    const sched::Instance inst =
        wifi_windows.empty()
            ? sched::build_instance(slot_windows, pending, predictor_,
                                    config_.profit)
            : sched::build_multiradio_instance(slot_windows, wifi_windows,
                                               pending, predictor_,
                                               config_.profit);
    sched::SolverOptions solver_options;
    solver_options.choice = config_.solver;
    solver_options.eps = config_.eps;
    const sched::OverlapSolution sol = sched::solve_overlapped(
        inst.slots, inst.items, solver_options, sched::thread_workspace());
    for (const sched::OverlapAssignment& a : sol.assignments) {
      assignment[inst.item_activity[static_cast<std::size_t>(a.item_id)]] =
          a.slot_index;
    }
  }

  std::vector<std::size_t> fallback;  // pending indices for duty path
  for (std::size_t p = 0; p < pending.size(); ++p) {
    const NetworkActivity& act = pending[p];
    const auto it = assignment.find(p);
    if (it == assignment.end()) {
      fallback.push_back(p);
      continue;
    }
    if (static_cast<std::size_t>(it->second) >= slot_windows.size()) {
      // Wi-Fi offload: the same bytes execute on the WLAN inside the
      // assigned presence window — immediately when the arrival is
      // already covered, at the window's begin otherwise. Wi-Fi does
      // not ride the cellular data switch, so no session search.
      const Interval& win = wifi_windows[static_cast<std::size_t>(
          it->second) - slot_windows.size()];
      const DurationMs dur = sched::wifi_transfer_ms(act, config_.profit);
      const TimeMs release = std::clamp<TimeMs>(
          std::max(act.start, win.begin), act.start, horizon - dur);
      outcome.transfers.push_back(
          {pending_index[p], release, dur, RadioId::kWifi});
      if (release > act.start) {
        outcome.deferral_latency_s.push_back(
            to_seconds(release - act.start));
      }
      continue;
    }
    const Interval& slot =
        slot_windows[static_cast<std::size_t>(it->second)];
    const DurationMs dur = deferred_duration(act.duration);
    TimeMs release;
    if (slot.end <= act.start) {
      // Prefetch into the preceding slot: the app is triggered to sync
      // while the user is active, during a real session late in the
      // slot; if the user never appeared, at the slot boundary.
      const TimeMs sess_begin =
          eval.last_session_begin_in(slot.begin, slot.end);
      release = sess_begin >= 0
                    ? sess_begin
                    : std::max(slot.begin, slot.end - dur);
      release = std::clamp<TimeMs>(release, 0, horizon - dur);
      outcome.transfers.push_back({pending_index[p], release, dur});
      continue;
    }
    // Defer toward the following slot, riding the first real session
    // after the arrival (the real-time adjustment powers the radio for
    // any session, even one before the slot). If no session shows up by
    // the slot's end, run at the planned slot begin.
    const std::size_t sess = eval.first_session_at_or_after(act.start);
    if (sess < num_sessions && sessions.begin_at(sess) <= slot.end) {
      release = sessions.begin_at(sess);
    } else {
      release = slot.begin;
    }
    release = std::clamp<TimeMs>(release, act.start, horizon - dur);
    if (release > act.start) {
      outcome.transfers.push_back({pending_index[p], release, dur});
      outcome.deferral_latency_s.push_back(
          to_seconds(release - act.start));
    } else {
      outcome.transfers.push_back(
          {pending_index[p], act.start, act.duration});
    }
  }

  // ---- Duty-cycle fallback path (§IV-C.2). ----
  // The duty cycler owns every window outside U. Radio opportunities
  // inside such a window are the periodic wake-up probes plus any real
  // screen session (real-time adjustment); the window's end is a free
  // opportunity too, since a predicted active slot begins there.
  std::sort(fallback.begin(), fallback.end(),
            [&](std::size_t a, std::size_t b) {
              return pending[a].start < pending[b].start;
            });

  auto finalize = [&]() {
    metrics.interrupts.add(outcome.interrupts);
    metrics.duty_releases.add(outcome.duty_releases);
    timeline.allow_transfers(outcome.transfers, kDormancyGraceMs);
    outcome.radio_allowed = std::move(timeline).build();
    return std::move(outcome);
  };

  if (!config_.enable_duty) {
    // Ablation: no probes; fall back to the next predicted slot or real
    // session, else run in place.
    for (std::size_t p : fallback) {
      const NetworkActivity& act = pending[p];
      TimeMs release = act.start;
      const auto after = std::upper_bound(
          slot_windows.begin(), slot_windows.end(), act.start,
          [](TimeMs t, const Interval& s) { return t < s.begin; });
      if (after != slot_windows.end()) release = after->begin;
      const TimeMs sess_begin = eval.next_session_begin(act.start, horizon);
      if (sess_begin < release) release = sess_begin;
      release_fallback(outcome, pending, pending_index, p, release,
                       horizon);
    }
    return finalize();
  }

  auto next_fb = fallback.begin();
  const IntervalSet inactive = active.complement(0, horizon);
  for (const Interval& window : inactive.intervals()) {
    duty::DutyCycler cycler(config_.duty);
    cycler.reset(window.begin);
    std::size_t sess = eval.first_session_at_or_after(window.begin);

    while (true) {
      const TimeMs wake = cycler.next_wake();
      const TimeMs sess_begin =
          (sess < num_sessions && sessions.begin_at(sess) < window.end)
              ? sessions.begin_at(sess)
              : window.end;
      if (sess_begin <= wake) {
        if (sess_begin >= window.end) break;
        // Real session pre-empts the probe: serve pending arrivals,
        // then restart the back-off after the session.
        while (next_fb != fallback.end() &&
               pending[*next_fb].start <= sess_begin) {
          release_fallback(outcome, pending, pending_index, *next_fb,
                           sess_begin, horizon);
          ++next_fb;
        }
        cycler.notify_activity(sessions.end_at(sess));
        ++sess;
        continue;
      }
      if (wake >= window.end) break;
      // Probe: productive when an arrival is waiting.
      bool productive = false;
      while (next_fb != fallback.end() &&
             pending[*next_fb].start <= wake) {
        release_fallback(outcome, pending, pending_index, *next_fb, wake,
                         horizon);
        ++outcome.duty_releases;
        ++next_fb;
        productive = true;
      }
      const DurationMs probe_window = std::min<DurationMs>(
          config_.duty.wake_window_ms, window.end - wake);
      outcome.wakes.push_back({wake, probe_window, productive});
      if (productive) {
        cycler.notify_activity(wake + probe_window);
      } else {
        cycler.advance_fruitless();
      }
    }
    // The window ends at a predicted active slot (or the horizon):
    // anything still waiting rides the slot's radio.
    while (next_fb != fallback.end() &&
           pending[*next_fb].start < window.end) {
      release_fallback(outcome, pending, pending_index, *next_fb,
                       window.end, horizon);
      ++next_fb;
    }
  }
  // Arrivals the walk never reached run in place (no inactive window
  // covered them — only possible when prediction marked everything
  // active).
  for (; next_fb != fallback.end(); ++next_fb) {
    const NetworkActivity& act = pending[*next_fb];
    outcome.transfers.push_back(
        {pending_index[*next_fb], act.start, act.duration});
  }

  return finalize();
}

}  // namespace netmaster::policy
