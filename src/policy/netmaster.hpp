// NetMasterPolicy — the paper's full system as an online policy.
//
// Construction mines the training trace (habit model + special apps).
// At run time, for each evaluation day it predicts the user-active slot
// set U (Eq. 2 with the δ thresholds) and the screen-off network-active
// structure, builds the overlapped-knapsack instance over the pending
// deferrable activities (§IV-A step 3), solves it with Algorithm 1
// (ε = 0.1 by default, §V-C), and executes:
//
//   * activities assigned to a following slot release at that slot's
//     begin — unless the user actually turns the screen on first, in
//     which case the real-time adjustment powers the radio and the
//     transfer piggybacks on the real session;
//   * activities assigned to a preceding slot are prefetched: the app
//     is triggered to sync during the slot (the transfer executes at
//     the end of the slot);
//   * unassigned / unpredicted activities fall back to the duty-cycle
//     path: they release at the next wake-up probe (exponential
//     back-off by default, §IV-C.2);
//   * foreground usage outside predicted slots powers the radio when
//     the app is a "Special App"; otherwise the user must re-enable
//     data manually — a wrong decision, counted as an interrupt
//     (§VI-B).
//
// Ablation switches knock out prediction, duty cycling, or special-app
// tracking for the component analysis bench.
#pragma once

#include <cstdint>

#include "duty/duty_cycle.hpp"
#include "mining/habits.hpp"
#include "mining/special_apps.hpp"
#include "policy/policy.hpp"
#include "sched/instance.hpp"
#include "sched/solver.hpp"

namespace netmaster::policy {

/// Guard rails for running on untrusted training data. When the mined
/// habit model is too weak to trust — too few training days survived,
/// or the pooled confidence (which folds in the sanitizer's
/// data-quality score) is below threshold — NetMaster refuses to bet on
/// its predictions and substitutes the safe delay-batch schedule, which
/// needs no model at all. The taken path is reported in the outcome.
struct RobustnessConfig {
  double min_confidence = 0.25;  ///< HabitModel::overall_confidence gate
  int min_training_days = 2;     ///< Eq. 2 needs at least a flip of days
  /// Deferral interval of the substituted DelayBatchPolicy.
  DurationMs fallback_interval_ms = 60 * 1000;

  /// Habit-drift score in [0, 1] from a mining::DriftDetector watching
  /// the monitoring stream (0 = stationary / no detector). Drift
  /// discounts the model before the gate: the effective confidence is
  ///   overall_confidence * (1 − min(1, drift_confidence_gain * score)),
  /// so a model mined before a habit change stops clearing
  /// min_confidence and the policy falls back to the safe delay-batch
  /// schedule until the adaptation loop re-mines. A score of 0 leaves
  /// the gate bitwise unchanged.
  double drift_score = 0.0;
  /// Drift-to-discount slope; 1 means a fully-drifted user (score 1)
  /// zeroes the model's effective confidence.
  double drift_confidence_gain = 1.0;
};

struct NetMasterConfig {
  mining::PredictorConfig predictor;  ///< δ = 0.2 weekday / 0.1 weekend
  sched::ProfitConfig profit;
  double eps = 0.1;  ///< SinKnap ε (§V-C)
  /// Which SinKnap backend Algorithm 1 runs per slot. The default
  /// (FPTAS) reproduces the paper's schedules bit for bit; `kGreedy`
  /// trades the (1−ε)/2 guarantee for speed and `kAuto` upgrades small
  /// slots to the exact DP. See sched/solver.hpp.
  sched::SolverChoice solver = sched::SolverChoice::kFptas;
  duty::DutyConfig duty;
  RobustnessConfig robustness;

  // Ablation switches (all on = the paper's system).
  bool enable_prediction = true;
  bool enable_duty = true;
  bool enable_special_apps = true;

  /// Multi-radio co-scheduling: when set (and prediction is enabled),
  /// the knapsack also offers the habit model's predicted Wi-Fi
  /// presence windows as offload knapsacks (profit.wifi /
  /// profit.wifi_bandwidth_kbps describe the WLAN), and activities the
  /// solver assigns there execute on Wi-Fi instead of cellular. Off by
  /// default: the paper's single-radio system is the baseline and all
  /// its schedules stay bit-identical.
  bool enable_wifi_offload = false;
  /// Pr[u] threshold for SlotPredictor::presence_windows — hours at
  /// least this habitual are assumed to be spent at a familiar AP.
  /// Deliberately stricter than the δ slot thresholds.
  double wifi_presence_delta = 0.55;

  /// When set, the radio stays powered across whole predicted active
  /// slots (tails run freely inside U) and in-slot traffic is left
  /// untouched, instead of the default aggressive in-slot dormancy.
  /// This is the configuration of the paper's Fig. 10c threshold sweep:
  /// it makes the δ tradeoff visible — small δ widens U and wastes
  /// radio-on time, large δ narrows U and risks the user.
  bool slot_powered_radio = false;
};

class NetMasterPolicy final : public Policy {
 public:
  /// Mines `training` and fixes the configuration. Tolerant: corrupted
  /// training data is sanitized by the miner and, when too much is lost
  /// (see RobustnessConfig), the policy degrades to the safe delay-batch
  /// schedule instead of acting on an untrustworthy model. The
  /// evaluation trace handed to run() must share the training trace's
  /// app population and weekday alignment (slice evaluation windows at
  /// multiples of 7 days so Eq. 2's weekday/weekend split stays valid).
  NetMasterPolicy(const UserTrace& training, NetMasterConfig config);

  /// Model-injection construction: runs on an externally-mined model
  /// and special-app set instead of mining a training trace. This is
  /// the daemon/online path — IncrementalHabitMiner::snapshot() and a
  /// SpecialApps detected from the reconstructed history plug straight
  /// in, through the same validation and degradation gate. With the
  /// model mined from the same trace, both constructors produce
  /// bit-identical policies.
  NetMasterPolicy(mining::HabitModel model, mining::SpecialApps special,
                  NetMasterConfig config);

  using Policy::run;

  std::string name() const override { return "netmaster"; }
  sim::PolicyOutcome run(const engine::TraceIndex& eval) const override;

  const mining::SlotPredictor& predictor() const { return predictor_; }
  const mining::SpecialApps& special_apps() const { return special_; }
  const NetMasterConfig& config() const { return config_; }

  /// True when run() will take the degraded fallback path.
  bool degraded() const { return !degraded_reason_.empty(); }
  /// Why the policy degraded; empty on the normal path.
  const std::string& degraded_reason() const { return degraded_reason_; }

 private:
  /// Shared tail of both constructors: config validation plus the
  /// degradation gate (sets degraded_reason_, bumps metrics).
  void validate_and_gate();

  NetMasterConfig config_;
  mining::SlotPredictor predictor_;
  mining::SpecialApps special_;
  std::string degraded_reason_;
};

}  // namespace netmaster::policy
