// Stock-Android baseline: every activity runs when its app asked for
// it; the radio follows demand plus the RRC tail. This is the
// "Without NetMaster" arm of §VI-A and the denominator of every
// energy-saving fraction.
#pragma once

#include "policy/policy.hpp"

namespace netmaster::policy {

class BaselinePolicy final : public Policy {
 public:
  using Policy::run;

  std::string name() const override { return "baseline"; }
  sim::PolicyOutcome run(const engine::TraceIndex& eval) const override;
};

}  // namespace netmaster::policy
